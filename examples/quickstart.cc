// Quickstart: adaptive seed minimization in ~40 lines.
//
// Builds a small probabilistic social graph, asks ASTI (the TRIM
// instantiation) to influence at least η = 50 of its 200 users, and prints
// the select-observe round trace. Shows the three core API pieces:
// GraphBuilder/generators -> AdaptiveWorld -> RunAdaptivePolicy.

#include <iostream>

#include "core/asti.h"
#include "core/trim.h"
#include "diffusion/world.h"
#include "graph/generators.h"

int main() {
  using namespace asti;

  // 1. A 200-node power-law social network with weighted-cascade edge
  //    probabilities (p(u,v) = 1/indeg(v)), the paper's standard setting.
  Rng graph_rng(42);
  auto graph = BuildWeightedGraph(MakeBarabasiAlbert(200, 2, graph_rng),
                                  WeightScheme::kWeightedCascade);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Graph: " << graph->NumNodes() << " nodes, " << graph->NumEdges()
            << " directed edges\n";

  // 2. A hidden world: one sampled IC realization the policy cannot see.
  const NodeId eta = 50;
  Rng world_rng(7);
  AdaptiveWorld world(*graph, DiffusionModel::kIndependentCascade, eta, world_rng);

  // 3. The adaptive policy: TRIM selects the node with (approximately)
  //    maximal expected marginal *truncated* spread each round.
  Trim trim(*graph, DiffusionModel::kIndependentCascade, TrimOptions{0.5});
  Rng policy_rng(13);
  const AdaptiveRunTrace trace = RunAdaptivePolicy(world, trim, policy_rng);

  std::cout << "Target eta = " << eta << "; reached "
            << trace.total_activated << " active nodes with "
            << trace.NumSeeds() << " seeds in " << trace.rounds.size()
            << " rounds:\n";
  for (const RoundRecord& round : trace.rounds) {
    std::cout << "  round " << round.round << ": seed " << round.seeds[0]
              << " activated " << round.newly_activated << " nodes (shortfall was "
              << round.shortfall_before << ", estimate "
              << round.estimated_gain << ", " << round.num_samples
              << " mRR-sets)\n";
  }
  std::cout << (trace.target_reached ? "Success" : "FAILED") << " in "
            << trace.seconds << "s\n";
  return trace.target_reached ? 0 : 1;
}
