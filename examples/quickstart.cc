// Quickstart: adaptive seed minimization in ~40 lines.
//
// Builds a small probabilistic social graph, registers it in a
// GraphCatalog, asks the SeedMinEngine to influence at least η = 50 of
// its 200 users with ASTI (the TRIM instantiation), and prints the
// select-observe round trace. Shows the four core API pieces:
// GraphBuilder/generators -> GraphCatalog -> SeedMinEngine ->
// SolveRequest/SolveResult.

#include <iostream>

#include "api/graph_catalog.h"
#include "api/seedmin_engine.h"
#include "graph/generators.h"

int main() {
  using namespace asti;

  // 1. A 200-node power-law social network with weighted-cascade edge
  //    probabilities (p(u,v) = 1/indeg(v)), the paper's standard setting.
  Rng graph_rng(42);
  auto graph = BuildWeightedGraph(MakeBarabasiAlbert(200, 2, graph_rng),
                                  WeightScheme::kWeightedCascade);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Graph: " << graph->NumNodes() << " nodes, " << graph->NumEdges()
            << " directed edges\n";

  // 2. The catalog: named, immutable graph snapshots a resident service
  //    can serve, hot-swap, and retire. Registering moves the graph in.
  GraphCatalog catalog;
  if (auto registered = catalog.Register("social", std::move(graph).value());
      !registered.ok()) {
    std::cerr << registered.status().ToString() << "\n";
    return 1;
  }

  // 3. The engine: one multi-tenant façade over every algorithm in the
  //    registry, routing each request to the catalog graph it names.
  SeedMinEngine engine(catalog);

  // 4. The query: graph name, algorithm, model, threshold and RNG seed in
  //    one struct. The hidden IC realization the policy plays against is
  //    derived from the request seed; keep_traces retains the per-round
  //    records.
  SolveRequest request;
  request.graph = "social";
  request.algorithm = AlgorithmId::kAsti;
  request.model = DiffusionModel::kIndependentCascade;
  request.eta = 50;
  request.seed = 7;
  request.keep_traces = true;
  StatusOr<SolveResult> solved = engine.Solve(request);
  if (!solved.ok()) {  // bad requests come back as Status, not a crash
    std::cerr << solved.status().ToString() << "\n";
    return 1;
  }

  const AdaptiveRunTrace& trace = solved->traces.front();
  std::cout << "Target eta = " << request.eta << "; reached "
            << trace.total_activated << " active nodes with "
            << trace.NumSeeds() << " seeds in " << trace.rounds.size()
            << " rounds:\n";
  for (const RoundRecord& round : trace.rounds) {
    std::cout << "  round " << round.round << ": seed " << round.seeds[0]
              << " activated " << round.newly_activated << " nodes (shortfall was "
              << round.shortfall_before << ", estimate "
              << round.estimated_gain << ", " << round.num_samples
              << " mRR-sets)\n";
  }
  std::cout << (trace.target_reached ? "Success" : "FAILED") << " in "
            << trace.seconds << "s\n";
  return trace.target_reached ? 0 : 1;
}
