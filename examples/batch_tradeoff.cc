// Batch-size tradeoff — operating ASTI under a latency budget (§4).
//
// Every adaptive round costs a real-world observation window (wait for the
// cascade to settle before seeding again). TRIM-B amortizes that by
// seeding b users per round at a small cost in total seeds. This example
// sweeps b through the SolveRequest batch_size override (any b, not just
// the canonical 2/4/8) and frames the result as "campaign latency (rounds)
// vs sample budget (seeds)" so a practitioner can pick their point on the
// curve.

#include <iostream>

#include "api/graph_catalog.h"
#include "api/seedmin_engine.h"
#include "benchutil/table.h"
#include "graph/datasets.h"

int main() {
  using namespace asti;
  GraphCatalog catalog;
  const auto nethept = RegisterSurrogate(catalog, DatasetId::kNetHept, 0.5, 5);
  if (!nethept.ok()) {
    std::cerr << nethept.status().ToString() << "\n";
    return 1;
  }
  const NodeId eta = static_cast<NodeId>(nethept->num_nodes() / 10);
  const size_t repeats = 5;
  std::cout << "Latency/budget tradeoff on a collaboration network: n="
            << nethept->num_nodes() << ", eta=" << eta << ", " << repeats
            << " hidden worlds per batch size\n\n";

  SeedMinEngine engine(catalog);
  TextTable table({"batch b", "rounds (latency)", "seeds (budget)",
                   "selection time (s)", "reached"});
  for (NodeId batch : {1, 2, 4, 8, 16}) {
    SolveRequest request;
    request.graph = nethept->name();
    request.algorithm = AlgorithmId::kAsti;
    request.batch_size = batch;  // b = 1 runs TRIM, b > 1 runs TRIM-B
    request.eta = eta;
    request.realizations = repeats;
    request.seed = 800;  // same hidden worlds for every batch size
    request.keep_traces = true;
    StatusOr<SolveResult> solved = engine.Solve(request);
    if (!solved.ok()) {
      std::cerr << solved.status().ToString() << "\n";
      return 1;
    }
    double rounds = 0.0;
    for (const auto& trace : solved->traces) {
      rounds += static_cast<double>(trace.rounds.size());
    }
    table.AddRow({std::to_string(batch), FormatDouble(rounds / repeats, 1),
                  FormatDouble(solved->aggregate.mean_seeds, 1),
                  FormatDouble(solved->aggregate.mean_seconds, 3),
                  std::to_string(solved->aggregate.runs_reaching_target) + "/" +
                      std::to_string(repeats)});
  }
  table.Print(std::cout);
  std::cout << "\nReading the table: rounds shrink ~linearly in b (campaign "
               "finishes sooner) while the seed budget grows only mildly — "
               "the paper's §6.2 conclusion that a well-chosen b balances "
               "efficiency and effectiveness.\n";
  return 0;
}
