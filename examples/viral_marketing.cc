// Viral marketing scenario — the paper's §1 motivation.
//
// An advertiser must get a product in front of at least 5% of a social
// network by handing out free samples, each sample costing real money.
// Compares three strategies over the same hidden propagation worlds:
//   * ASTI (adaptive, truncated-influence greedy — the paper's algorithm),
//   * ATEUC (non-adaptive one-shot selection),
//   * adaptive highest-degree heuristic (what a naive growth team does).
// Reports samples spent, campaign reliability, and wasted reach.

#include <iostream>

#include "benchutil/experiment.h"
#include "benchutil/table.h"
#include "graph/datasets.h"

int main(int argc, char** argv) {
  using namespace asti;
  (void)argc;
  (void)argv;

  // An Epinions-like trust network at laptop scale.
  auto graph = MakeSurrogateDataset(DatasetId::kEpinions, 0.12, 99);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  const NodeId eta = static_cast<NodeId>(graph->NumNodes() / 20);  // 5% reach
  const size_t campaigns = 8;
  std::cout << "Viral marketing on a trust network: n=" << graph->NumNodes()
            << ", target reach eta=" << eta << ", " << campaigns
            << " simulated campaigns\n\n";

  TextTable table({"strategy", "avg samples", "campaigns reaching target",
                   "avg reach", "max overshoot"});
  for (AlgorithmId strategy : {AlgorithmId::kAsti, AlgorithmId::kAteuc,
                               AlgorithmId::kBisection, AlgorithmId::kDegree}) {
    CellConfig config;
    config.eta = eta;
    config.algorithm = strategy;
    config.realizations = campaigns;
    config.seed = 2024;
    const CellResult result = RunCell(*graph, config);
    table.AddRow({AlgorithmName(strategy),
                  FormatDouble(result.aggregate.mean_seeds, 1),
                  std::to_string(result.aggregate.runs_reaching_target) + "/" +
                      std::to_string(campaigns),
                  FormatDouble(result.aggregate.mean_spread, 0),
                  FormatDouble(100.0 * (result.aggregate.max_spread - eta) / eta, 0) +
                      "%"});
  }
  table.Print(std::cout);
  std::cout << "\nReading the table: the adaptive strategies hit the target on "
               "every campaign; ASTI does it with the fewest free samples. The "
               "one-shot strategy can either miss its reach goal outright or "
               "burn samples on overshoot.\n";
  return 0;
}
