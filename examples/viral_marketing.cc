// Viral marketing scenario — the paper's §1 motivation.
//
// An advertiser must get a product in front of at least 5% of a social
// network by handing out free samples, each sample costing real money.
// Compares four strategies over the same hidden propagation worlds:
//   * ASTI (adaptive, truncated-influence greedy — the paper's algorithm),
//   * ATEUC (non-adaptive one-shot selection),
//   * bisection-on-k (the pre-ATEUC literature's transformation),
//   * adaptive highest-degree heuristic (what a naive growth team does).
// All four run as one SolveBatch on a shared SeedMinEngine serving an
// Epinions surrogate out of a GraphCatalog — the requests name their
// graph, are admitted into the engine's bounded queue and served by its
// driver pool (SolveBatch uses blocking admission, so batches of any size
// throttle rather than reject), and because every request's RNG streams
// derive from its own seed, each row is bit-identical to a solo run.

#include <iostream>
#include <vector>

#include "api/graph_catalog.h"
#include "api/seedmin_engine.h"
#include "benchutil/table.h"
#include "graph/datasets.h"

int main(int argc, char** argv) {
  using namespace asti;
  (void)argc;
  (void)argv;

  // An Epinions-like trust network at laptop scale, registered under its
  // canonical catalog name.
  GraphCatalog catalog;
  const auto epinions = RegisterSurrogate(catalog, DatasetId::kEpinions, 0.12, 99);
  if (!epinions.ok()) {
    std::cerr << epinions.status().ToString() << "\n";
    return 1;
  }
  const NodeId eta = static_cast<NodeId>(epinions->num_nodes() / 20);  // 5% reach
  const size_t campaigns = 8;
  std::cout << "Viral marketing on a trust network: n=" << epinions->num_nodes()
            << ", target reach eta=" << eta << ", " << campaigns
            << " simulated campaigns\n\n";

  SeedMinEngine engine(catalog);
  std::vector<SolveRequest> requests;
  for (AlgorithmId strategy : {AlgorithmId::kAsti, AlgorithmId::kAteuc,
                               AlgorithmId::kBisection, AlgorithmId::kDegree}) {
    SolveRequest request;
    request.graph = epinions->name();
    request.algorithm = strategy;
    request.eta = eta;
    request.realizations = campaigns;
    request.seed = 2024;  // same seed => same hidden worlds for every strategy
    requests.push_back(request);
  }
  const std::vector<StatusOr<SolveResult>> results = engine.SolveBatch(requests);

  TextTable table({"strategy", "avg samples", "campaigns reaching target",
                   "avg reach", "max overshoot"});
  for (const StatusOr<SolveResult>& solved : results) {
    if (!solved.ok()) {
      std::cerr << solved.status().ToString() << "\n";
      return 1;
    }
    const SolveResult& result = *solved;
    table.AddRow({AlgorithmName(result.algorithm),
                  FormatDouble(result.aggregate.mean_seeds, 1),
                  std::to_string(result.aggregate.runs_reaching_target) + "/" +
                      std::to_string(campaigns),
                  FormatDouble(result.aggregate.mean_spread, 0),
                  FormatDouble(100.0 * (result.aggregate.max_spread - eta) / eta, 0) +
                      "%"});
  }
  table.Print(std::cout);
  std::cout << "\nReading the table: the adaptive strategies hit the target on "
               "every campaign; ASTI does it with the fewest free samples. The "
               "one-shot strategies can either miss their reach goal outright "
               "or burn samples on overshoot.\n";
  return 0;
}
