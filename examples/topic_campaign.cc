// Topic-aware campaigns — the §2 extension in action.
//
// One social network, one per-topic influence profile, three products with
// different topic mixtures (a sports gadget, a cooking box, a crossover).
// Each campaign's mixture-weighted IC graph is registered as its own
// catalog snapshot, and ONE multi-tenant SeedMinEngine serves all three —
// requests are routed per campaign by graph name through the unchanged
// ASTI stack, showing that the seed sets, budgets, and even the best
// ambassadors differ per campaign.

#include <iostream>

#include "api/graph_catalog.h"
#include "api/seedmin_engine.h"
#include "benchutil/table.h"
#include "diffusion/topic_model.h"
#include "graph/datasets.h"

int main() {
  using namespace asti;
  auto base = MakeSurrogateDataset(DatasetId::kNetHept, 0.3, 77);
  if (!base.ok()) {
    std::cerr << base.status().ToString() << "\n";
    return 1;
  }
  Rng profile_rng(123);
  const TopicProfile profile = MakeRandomTopicProfile(*base, 2, profile_rng);
  const NodeId eta = base->NumNodes() / 25;
  std::cout << "Topic-aware campaigns on n=" << base->NumNodes()
            << " network, target eta=" << eta << " per campaign\n\n";

  struct Campaign {
    const char* name;
    const char* graph;  // catalog name for this campaign's weighted snapshot
    TopicMixture mixture;
  };
  const std::vector<Campaign> campaigns = {
      {"sports gadget (topic A)", "campaign-sports", {1.0, 0.0}},
      {"cooking box (topic B)", "campaign-cooking", {0.0, 1.0}},
      {"crossover product", "campaign-crossover", {0.5, 0.5}},
  };

  // Every campaign graph lives in one catalog; one engine serves them all.
  GraphCatalog catalog;
  for (const Campaign& campaign : campaigns) {
    auto graph = BuildCampaignGraph(profile, campaign.mixture);
    if (!graph.ok()) {
      std::cerr << graph.status().ToString() << "\n";
      return 1;
    }
    if (auto registered = catalog.Register(campaign.graph, std::move(graph).value());
        !registered.ok()) {
      std::cerr << registered.status().ToString() << "\n";
      return 1;
    }
  }
  SeedMinEngine engine(catalog);

  TextTable table({"campaign", "seeds", "rounds", "spread", "first seed"});
  for (const Campaign& campaign : campaigns) {
    SolveRequest request;
    request.graph = campaign.graph;
    request.algorithm = AlgorithmId::kAsti;
    request.eta = eta;
    request.seed = 55;  // same hidden-randomness stream across campaigns
    request.keep_traces = true;
    StatusOr<SolveResult> solved = engine.Solve(request);
    if (!solved.ok()) {
      std::cerr << solved.status().ToString() << "\n";
      return 1;
    }
    const AdaptiveRunTrace& trace = solved->traces.front();
    table.AddRow({campaign.name, std::to_string(trace.NumSeeds()),
                  std::to_string(trace.rounds.size()),
                  std::to_string(trace.total_activated),
                  "node " + std::to_string(trace.seeds.front())});
  }
  table.Print(std::cout);
  std::cout << "\nReading the table: the same network needs different "
               "budgets — and different ambassadors — per product, because "
               "each campaign reweights every edge by its topic mixture. "
               "One engine served all three campaign graphs out of the "
               "catalog; the ASTI machinery is reused verbatim on each.\n";
  return 0;
}
