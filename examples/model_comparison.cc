// Diffusion-model comparison — the same campaign under IC and LT (§2.1).
//
// The library treats the propagation model as a parameter: samplers,
// simulators and selectors all dispatch on DiffusionModel. This example
// runs identical ASTI campaigns under independent cascade and linear
// threshold on one network and contrasts seeds, spread and runtime —
// exhibiting the paper's observation that LT runs faster and needs fewer
// seeds at the same threshold.

#include <iostream>

#include "benchutil/experiment.h"
#include "benchutil/table.h"
#include "graph/datasets.h"

int main() {
  using namespace asti;
  auto graph = MakeSurrogateDataset(DatasetId::kYoutube, 0.1, 17);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  const NodeId eta = static_cast<NodeId>(graph->NumNodes() / 10);
  std::cout << "IC vs LT on a friendship network: n=" << graph->NumNodes()
            << ", m=" << graph->NumEdges() << ", eta=" << eta << "\n\n";

  TextTable table({"model", "algorithm", "avg seeds", "avg spread", "avg time (s)",
                   "reached"});
  for (DiffusionModel model :
       {DiffusionModel::kIndependentCascade, DiffusionModel::kLinearThreshold}) {
    for (AlgorithmId algorithm : {AlgorithmId::kAsti, AlgorithmId::kAsti4}) {
      CellConfig config;
      config.model = model;
      config.eta = eta;
      config.algorithm = algorithm;
      config.realizations = 5;
      config.seed = 4242;
      const CellResult result = RunCell(*graph, config);
      table.AddRow({DiffusionModelName(model), AlgorithmName(algorithm),
                    FormatDouble(result.aggregate.mean_seeds, 1),
                    FormatDouble(result.aggregate.mean_spread, 0),
                    FormatDouble(result.aggregate.mean_seconds, 3),
                    std::to_string(result.aggregate.runs_reaching_target) + "/5"});
    }
  }
  table.Print(std::cout);
  std::cout << "\nReading the table: the same code path serves both models; "
               "LT campaigns finish faster (reverse traversals follow at most "
               "one in-edge per node) and tend to need fewer seeds, matching "
               "the paper's Figures 6-7.\n";
  return 0;
}
