// Diffusion-model comparison — the same campaign under IC and LT (§2.1).
//
// The library treats the propagation model as a parameter: one
// SeedMinEngine serves identical ASTI campaigns under independent cascade
// and linear threshold on one network (the model is just a SolveRequest
// field) and contrasts seeds, spread and runtime — exhibiting the paper's
// observation that LT runs faster and needs fewer seeds at the same
// threshold. The four (model, algorithm) queries are submitted
// asynchronously and gathered in order.

#include <future>
#include <iostream>
#include <vector>

#include "api/graph_catalog.h"
#include "api/seedmin_engine.h"
#include "benchutil/table.h"
#include "graph/datasets.h"

int main() {
  using namespace asti;
  GraphCatalog catalog;
  const auto youtube = RegisterSurrogate(catalog, DatasetId::kYoutube, 0.1, 17);
  if (!youtube.ok()) {
    std::cerr << youtube.status().ToString() << "\n";
    return 1;
  }
  const NodeId eta = static_cast<NodeId>(youtube->num_nodes() / 10);
  std::cout << "IC vs LT on a friendship network: n=" << youtube->num_nodes()
            << ", m=" << youtube->num_edges() << ", eta=" << eta << "\n\n";

  // Four drivers serve the four queries concurrently; the admission queue
  // would absorb (or, with block_when_full, throttle) anything beyond
  // drivers + max_queue_depth in a real serving deployment.
  SeedMinEngine::ServingOptions options;
  options.num_drivers = 4;
  SeedMinEngine engine(catalog, options);
  std::vector<std::future<StatusOr<SolveResult>>> futures;
  std::vector<DiffusionModel> models;
  for (DiffusionModel model :
       {DiffusionModel::kIndependentCascade, DiffusionModel::kLinearThreshold}) {
    for (AlgorithmId algorithm : {AlgorithmId::kAsti, AlgorithmId::kAsti4}) {
      SolveRequest request;
      request.graph = youtube->name();
      request.model = model;
      request.eta = eta;
      request.algorithm = algorithm;
      request.realizations = 5;
      request.seed = 4242;
      futures.push_back(engine.SubmitAsync(request));
      models.push_back(model);
    }
  }

  TextTable table({"model", "algorithm", "avg seeds", "avg spread", "avg time (s)",
                   "reached"});
  for (size_t i = 0; i < futures.size(); ++i) {
    StatusOr<SolveResult> solved = futures[i].get();
    if (!solved.ok()) {
      std::cerr << solved.status().ToString() << "\n";
      return 1;
    }
    const SolveResult& result = *solved;
    table.AddRow({DiffusionModelName(models[i]), AlgorithmName(result.algorithm),
                  FormatDouble(result.aggregate.mean_seeds, 1),
                  FormatDouble(result.aggregate.mean_spread, 0),
                  FormatDouble(result.aggregate.mean_seconds, 3),
                  std::to_string(result.aggregate.runs_reaching_target) + "/5"});
  }
  table.Print(std::cout);
  std::cout << "\nReading the table: the same code path serves both models; "
               "LT campaigns finish faster (reverse traversals follow at most "
               "one in-edge per node) and tend to need fewer seeds, matching "
               "the paper's Figures 6-7.\n";
  return 0;
}
