// asm_tool — command-line adaptive seed minimization on your own graph.
//
// The "bring your own data" entry point: load a weighted edge list and/or
// name a built-in surrogate, pick a diffusion model, algorithm, and
// threshold, and get the per-round trace plus an optional archive file.
// Graphs are registered in a GraphCatalog and queries are routed by name
// through the SeedMinEngine façade, so every algorithm in the registry —
// including the non-adaptive ATEUC/Bisection baselines — is available,
// bad inputs come back as readable errors instead of crashes, and runs
// follow the §6 protocol (hidden worlds derived from --seed, shared
// across algorithms).
//
// Usage:
//   asm_tool --graph-file edges.txt --eta 500
//   asm_tool --graph nethept --scale 0.2 --eta-fraction 0.05
//            --model LT --algorithm ASTI-4 --runs 3 --save-traces out.tr
//   asm_tool --list-algorithms
//   asm_tool --list-graphs
//
// Flags: --graph NAME (catalog graph to query: a built-in surrogate name
// from --list-graphs, or "custom" when --graph-file is given; --dataset
// is an accepted legacy alias) | --graph-file PATH (load a weighted edge
// list and register it as "custom"), --shards K (serve the graph from K
// edge-balanced shards — results are bit-identical to unsharded serving;
// with --snapshot-dir, a sharded snapshot set <name>.plan +
// <name>.shardXofK.asms is preferred over the monolithic file, and
// --save-snapshot writes one), --scale S (surrogate size
// multiplier), --eta N | --eta-fraction F, --model IC|LT,
// --algorithm NAME (see --list-algorithms; ASTI-b accepts any b >= 1),
// --epsilon E, --threads T (1 = sequential, 0 = all cores), --runs R,
// --seed S, --timeout SECONDS (abandon the run with DeadlineExceeded past
// the budget; unset = no deadline), --no-cache (sample full-residual
// collections into a request-private cache instead of the engine's shared
// one — an A/B timing knob; seeds/spreads/traces are bit-identical either
// way), --save-traces PATH, --quiet, --metrics (print the request's phase
// profile — including cache_hit and reused-vs-extended set counts — and
// the engine's metrics snapshot in Prometheus text format after the run),
// --apply-delta FILE (mutate the target graph before solving: FILE is an
// EdgeDelta batch in text or binary ASMD form — see src/delta/README.md —
// applied through SwapWithDelta, so the query serves the minted epoch;
// the minted graph is digest-identical to a from-scratch rebuild of the
// mutated edge list, and a sharded target is re-planned with the same
// shard count).
//
// Snapshot persistence (src/store/, ASMS files):
//   --snapshot-dir DIR     before building a surrogate, try DIR/<name>.asms
//                          (mmap-registered, cache warm-started from any
//                          persisted collection prefixes); also the default
//                          destination for --save-snapshot.
//   --save-snapshot [PATH] after the run, persist the served graph plus the
//                          sealed sampler-cache prefixes it accumulated
//                          (default PATH: DIR/<name>.asms).
//   --load-snapshot PATH   register a specific snapshot file for this run.
//   --snapshot-compact     with --save-snapshot: omit the reverse CSR
//                          (~half the file; rebuilt on load).
//   --verify-snapshot PATH full checksum validation of a snapshot; exits.
//   --convert-asmg IN --snapshot-out OUT
//                          rewrite a legacy ASMG v1 graph file as an ASMS
//                          snapshot (name from --graph, default
//                          "converted"); exits.

#include <filesystem>
#include <iostream>

#include "api/graph_catalog.h"
#include "api/seedmin_engine.h"
#include "api/snapshot_serving.h"
#include "delta/catalog_delta.h"
#include "delta/delta_io.h"
#include "obs/export.h"
#include "benchutil/cli.h"
#include "benchutil/table.h"
#include "core/trace_io.h"
#include "graph/datasets.h"
#include "graph/edge_list_io.h"
#include "shard/sharded_store.h"
#include "shard/topology.h"
#include "store/snapshot_store.h"

namespace asti {
namespace {

constexpr const char* kCustomGraphName = "custom";

// Populates the catalog with the requested graph(s) and returns the name
// the query should route to: --graph-file registers "custom"; a --graph /
// --dataset value naming a built-in surrogate registers that; with
// neither, the NetHEPT surrogate is the default target. With --shards K
// (K > 1) the target ends up registered with a ShardTopology, either
// loaded from a sharded snapshot set or planned in memory.
StatusOr<std::string> PopulateCatalog(const CommandLine& cli,
                                      const GraphFlagSelection& flags,
                                      GraphCatalog& catalog) {
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 7));
  std::string target = flags.graph;

  if (cli.Has("graph-file")) {
    auto file = LoadEdgeList(cli.GetString("graph-file", ""));
    if (!file.ok()) return file.status();
    auto graph = BuildGraphFromEdgeList(*file);
    if (!graph.ok()) return graph.status();
    auto registered = catalog.Register(kCustomGraphName, std::move(graph).value());
    if (!registered.ok()) return registered.status();
    if (target.empty()) target = kCustomGraphName;
  }
  if (cli.Has("load-snapshot")) {
    auto registered = RegisterSnapshotFile(catalog, cli.GetString("load-snapshot", ""));
    if (!registered.ok()) return registered.status();
    if (target.empty()) target = registered->name();
  }
  if (target.empty()) target = CanonicalDatasetName(DatasetId::kNetHept);

  // A snapshot directory outranks rebuilding a surrogate: registering from
  // the mapped file costs page faults and carries the persisted sampler
  // cache, so repeat invocations skip both graph construction and the
  // first request's sampling. With --shards > 1, a sharded snapshot set
  // (<name>.plan + per-shard ASMS files) outranks the monolithic file —
  // NotFound falls through so a plain <name>.asms still serves, resharded
  // in memory below.
  if (!catalog.Get(target).ok() && cli.Has("snapshot-dir")) {
    const std::string dir = cli.GetString("snapshot-dir", "");
    if (flags.shards > 1) {
      auto sharded = LoadShardedSnapshot(dir, target);
      if (sharded.ok()) {
        auto registered = catalog.Register(target, sharded->graph,
                                           sharded->weight_scheme,
                                           /*warm=*/nullptr, sharded->topology);
        if (!registered.ok()) return registered.status();
      } else if (sharded.status().code() != StatusCode::kNotFound) {
        return sharded.status();
      }
    }
    if (!catalog.Get(target).ok()) {
      const store::SnapshotStore snapshots(dir);
      auto loaded = snapshots.Load(target);
      if (loaded.ok()) {
        auto registered = catalog.Register(
            target, std::make_shared<const DirectedGraph>(std::move(loaded->graph)),
            loaded->weight_scheme, std::move(loaded->warm));
        if (!registered.ok()) return registered.status();
      } else if (loaded.status().code() != StatusCode::kNotFound) {
        return loaded.status();
      }
    }
  }

  if (!catalog.Get(target).ok()) {
    // Not loaded from a file: the name must be a built-in surrogate.
    auto id = DatasetIdFromName(target);
    if (!id.ok()) {
      // Spell out the migration: --graph used to take an edge-list path.
      return Status::NotFound(
          "no catalog graph or built-in dataset named '" + target +
          "' (see --list-graphs; to load a weighted edge-list file, use "
          "--graph-file PATH)");
    }
    auto registered =
        RegisterSurrogate(catalog, *id, cli.GetDouble("scale", 0.2), seed);
    if (!registered.ok()) return registered.status();
    target = registered->name();  // canonical spelling
  }

  // In-memory reshard: --shards K against a graph that arrived without a
  // topology (surrogate, edge list, monolithic snapshot). Swapping the
  // same snapshot back in with a plan bumps the epoch, which is the
  // honest record — the serving configuration of the name changed.
  if (flags.shards > 1) {
    auto current = catalog.Get(target);
    if (current.ok() && current->shard_topology() == nullptr) {
      auto topology = MakeShardTopology(current->graph(), flags.shards);
      if (!topology.ok()) return topology.status();
      auto swapped =
          catalog.Swap(target, current->snapshot, current->weight_scheme(),
                       current->warm_collections(), std::move(topology).value());
      if (!swapped.ok()) return swapped.status();
    }
  }
  return target;
}

int ListAlgorithms() {
  TextTable table({"id", "kind", "paper name"});
  for (const AlgorithmInfo& info : AlgorithmRegistry::List()) {
    table.AddRow({info.name, info.adaptive ? "adaptive" : "one-shot",
                  info.paper_name});
  }
  table.Print(std::cout);
  std::cout << "\nASTI-b is accepted for any batch size b >= 1 "
               "(b = 1 is plain TRIM = ASTI; b > 1 runs TRIM-B with that b).\n";
  return 0;
}

int ListGraphs() {
  TextTable table({"name", "kind", "paper n", "paper m",
                   "surrogate n (scale 1)", "surrogate m (scale 1)"});
  for (const DatasetInfo& info : AllDatasets()) {
    table.AddRow({CanonicalDatasetName(info.id),
                  info.undirected ? "undirected" : "directed",
                  FormatDouble(info.paper_nodes, 0), FormatDouble(info.paper_edges, 0),
                  std::to_string(info.surrogate_nodes),
                  std::to_string(info.surrogate_edges)});
  }
  table.Print(std::cout);
  std::cout << "\nAny of these names registers its surrogate (sized by "
               "--scale) in the serving catalog; --graph-file PATH registers "
               "your own weighted edge list as 'custom'.\n";
  return 0;
}

// Standalone snapshot utilities (no solve): returns an exit code, or -1
// when no utility flag was given and the normal query path should run.
int RunSnapshotUtility(const CommandLine& cli) {
  if (cli.Has("verify-snapshot")) {
    const std::string path = cli.GetString("verify-snapshot", "");
    const Status status = store::VerifySnapshotFile(path);
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
    std::cout << "snapshot OK: " << path << " (every section checksum verified)\n";
    return 0;
  }
  if (cli.Has("convert-asmg")) {
    const std::string in = cli.GetString("convert-asmg", "");
    const std::string out = cli.GetString("snapshot-out", "");
    if (out.empty()) {
      std::cerr << "--convert-asmg requires --snapshot-out PATH\n";
      return 1;
    }
    const std::string name = cli.GetString("graph", "converted");
    const Status status =
        store::ConvertAsmgV1(in, out, name, WeightScheme::kWeightedCascade);
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
    std::cout << "converted " << in << " -> " << out << " (graph '" << name << "')\n";
    return 0;
  }
  return -1;
}

int Run(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  if (cli.Has("list-algorithms")) return ListAlgorithms();
  if (cli.Has("list-graphs")) return ListGraphs();
  if (const int code = RunSnapshotUtility(cli); code >= 0) return code;

  GraphCatalog catalog;
  // Shared graph-flag parsing (benchutil/cli): --graph/--graphs/--shards.
  // --dataset stays an asm_tool-only legacy alias, folded in as the
  // default so an explicit --graph still wins.
  const GraphFlagSelection graph_flags =
      ParseGraphFlags(cli, cli.GetString("dataset", ""));
  auto target = PopulateCatalog(cli, graph_flags, catalog);
  if (!target.ok()) {
    std::cerr << "graph: " << target.status().ToString() << "\n";
    return 1;
  }
  // Epoch minting: apply an EdgeDelta batch to the target before solving.
  // The solve below then routes to the minted epoch like any post-swap
  // request would in a live deployment.
  if (cli.Has("apply-delta")) {
    const std::string delta_path = cli.GetString("apply-delta", "");
    auto delta = LoadDeltaFile(delta_path);
    if (!delta.ok()) {
      std::cerr << "delta: " << delta.status().ToString() << "\n";
      return 1;
    }
    auto swapped = SwapWithDelta(catalog, *target, *delta);
    if (!swapped.ok()) {
      std::cerr << "delta: " << swapped.status().ToString() << "\n";
      return 1;
    }
    std::cout << "delta: " << delta_path << " applied (+" << swapped->stats.inserted
              << " -" << swapped->stats.deleted << " ~" << swapped->stats.reweighted
              << " edges, " << swapped->stats.rows_touched << " rows) -> epoch "
              << swapped->ref.epoch() << " digest 0x" << std::hex
              << swapped->minted_digest << std::dec
              << (swapped->resharded ? " (re-planned shards)" : "") << "\n";
  }

  const auto ref = catalog.Get(*target);
  if (!ref.ok()) {
    std::cerr << "graph: " << ref.status().ToString() << "\n";
    return 1;
  }
  const NodeId n = ref->num_nodes();
  NodeId eta = static_cast<NodeId>(cli.GetInt("eta", 0));
  if (eta == 0) {
    eta = static_cast<NodeId>(cli.GetDouble("eta-fraction", 0.05) * n);
  }

  const std::string algorithm_name = cli.GetString("algorithm", "ASTI");
  auto spec = AlgorithmRegistry::Parse(algorithm_name);
  if (!spec.ok()) {
    std::cerr << spec.status().ToString() << "\n";
    return 1;
  }

  SolveRequest request;
  request.graph = *target;
  request.algorithm = spec->id;
  request.batch_size = spec->batch_size;
  request.model = cli.GetString("model", "IC") == "LT"
                      ? DiffusionModel::kLinearThreshold
                      : DiffusionModel::kIndependentCascade;
  request.eta = eta;
  request.keep_traces = true;  // round tables + --save-traces
  // Flags read directly rather than via ApplyRequestOverrides: asm_tool is
  // a user tool, and the bench-harness ASM_BENCH_* env knobs must never
  // silently change a run. --runs is the documented spelling
  // (--realizations accepted as an alias); --seed 7 matches the surrogate
  // default, so one seed governs the whole invocation.
  request.epsilon = cli.GetDouble("epsilon", request.epsilon);
  request.seed = static_cast<uint64_t>(cli.GetInt("seed", 7));
  // Signed reads guarded before the size_t casts: a negative value must
  // come back as a readable error, not wrap to ~2^64 runs or workers.
  const int64_t runs = cli.GetInt("runs", cli.GetInt("realizations", 1));
  if (runs < 1) {
    std::cerr << "InvalidArgument: --runs must be >= 1, got " << runs << "\n";
    return 1;
  }
  request.realizations = static_cast<size_t>(runs);
  // A wall-clock budget for the whole invocation (all runs): past it the
  // engine's cooperative cancellation unwinds at the next chunk/round
  // boundary and the tool reports DeadlineExceeded instead of hanging on
  // an over-ambitious eta. 0 or negative is rejected — an already-expired
  // deadline would just burn the graph-loading work.
  if (cli.Has("timeout")) {
    const double timeout = cli.GetDouble("timeout", 0.0);
    if (timeout <= 0.0) {
      std::cerr << "InvalidArgument: --timeout must be > 0 seconds, got "
                << timeout << "\n";
      return 1;
    }
    request.deadline = DeadlineAfter(timeout);
  }
  // A/B knob only: the shared and private cache paths produce bit-identical
  // results (key-derived streams); --no-cache just skips cross-request reuse.
  request.use_shared_cache = !cli.Has("no-cache");
  const int64_t threads = cli.GetInt("threads", 1);
  if (threads < 0) {
    std::cerr << "InvalidArgument: --threads must be >= 0, got " << threads << "\n";
    return 1;
  }
  const bool quiet = cli.Has("quiet");

  std::cout << "graph: " << ref->name() << " (epoch " << ref->epoch() << ") n=" << n
            << " m=" << ref->num_edges()
            << "  model=" << DiffusionModelName(request.model) << "  eta=" << eta
            << "  algorithm=" << algorithm_name << "\n";
  if (ref->shard_topology() != nullptr) {
    // The on-disk plan's shard count wins over --shards when they differ
    // (a sharded snapshot set fixes its own K).
    const ShardTopology& topology = *ref->shard_topology();
    std::cout << "sharding: " << topology.num_shards() << " shards, edge cuts";
    for (uint32_t k = 0; k < topology.num_shards(); ++k) {
      std::cout << ' ' << topology.plan.shard_edges[k];
    }
    std::cout << "\n";
  }

  // --threads read directly (not NumThreadsOverride): a lingering
  // ASM_BENCH_THREADS export must not silently flip the user's run onto a
  // different (sequential vs pooled) stream protocol.
  SeedMinEngine engine(catalog, {static_cast<size_t>(threads)});
  StatusOr<SolveResult> solved = engine.Solve(request);
  if (!solved.ok()) {
    std::cerr << solved.status().ToString() << "\n";
    return 1;
  }
  const SolveResult& result = *solved;

  for (size_t run = 0; run < result.traces.size(); ++run) {
    const AdaptiveRunTrace& trace = result.traces[run];
    if (!quiet && !trace.rounds.empty()) {
      TextTable table({"round", "seeds", "activated", "shortfall", "samples"});
      for (const RoundRecord& round : trace.rounds) {
        std::string seeds;
        for (NodeId s : round.seeds) {
          // append(): GCC 12 -Wrestrict false-positives on char* +
          // to_string temporaries under -O2 (PR 105651).
          if (!seeds.empty()) seeds.append(",");
          seeds.append(std::to_string(s));
        }
        table.AddRow({std::to_string(round.round), seeds,
                      std::to_string(round.newly_activated),
                      std::to_string(round.shortfall_before),
                      std::to_string(round.num_samples)});
      }
      std::cout << "\nrun " << run + 1 << ":\n";
      table.Print(std::cout);
    }
    std::cout << "run " << run + 1 << ": " << trace.NumSeeds() << " seeds, "
              << trace.total_activated << " activated, " << trace.seconds << "s\n";
  }
  std::cout << "\nsummary: " << Summarize(result.aggregate) << " [graph "
            << result.graph_name << "@" << result.graph_epoch << "]\n";

  if (cli.Has("metrics")) {
    const RequestProfile& profile = result.profile;
    std::cout << "\nprofile: total=" << profile.total_seconds
              << "s sampling=" << profile.sampling_seconds
              << "s coverage=" << profile.coverage_seconds
              << "s certify=" << profile.certify_seconds
              << "s sets=" << profile.sets_generated
              << " cache_hit=" << (profile.cache_hit ? "true" : "false")
              << " sets_reused=" << profile.sets_reused
              << " sets_extended=" << profile.sets_extended
              << " collection_bytes=" << profile.collection_bytes
              << " shared_collection_bytes=" << profile.shared_collection_bytes
              << "\n\n"
              << ExportPrometheusText(engine.metrics_snapshot());
  }

  if (cli.Has("save-snapshot") && graph_flags.shards > 1) {
    // Sharded save is a multi-file set, so it needs the directory form.
    // It persists the graph only — sealed sampler-cache prefixes stay a
    // monolithic-snapshot feature.
    if (!cli.Has("snapshot-dir")) {
      std::cerr << "--save-snapshot with --shards needs --snapshot-dir DIR\n";
      return 1;
    }
    const std::string dir = cli.GetString("snapshot-dir", "");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const uint32_t shards = ref->shard_topology() != nullptr
                                ? ref->shard_topology()->num_shards()
                                : graph_flags.shards;
    const Status status = SaveShardedSnapshot(ref->graph(), *target,
                                              ref->weight_scheme(), shards, dir);
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
    std::cout << "sharded snapshot (" << shards << " shards) saved under " << dir
              << " (" << ShardPlanPath(dir, *target) << ")\n";
  } else if (cli.Has("save-snapshot")) {
    std::string path = cli.GetString("save-snapshot", "");
    if (path == "1") path.clear();  // bare flag (no PATH value)
    if (path.empty()) {
      if (!cli.Has("snapshot-dir")) {
        std::cerr << "--save-snapshot needs a PATH argument or --snapshot-dir DIR\n";
        return 1;
      }
      const std::string dir = cli.GetString("snapshot-dir", "");
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      path = store::SnapshotStore(dir).PathFor(*target);
    }
    // Persists the graph AND the sealed sampler-cache prefixes the run just
    // left behind, so the next invocation warm-starts from disk.
    const Status status = engine.SaveSnapshot(*target, path,
                                              !cli.Has("snapshot-compact"));
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
    std::cout << "snapshot saved to " << path << "\n";
  }

  if (cli.Has("save-traces")) {
    const std::string path = cli.GetString("save-traces", "");
    const Status status = SaveTraces(result.traces, path);
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
    std::cout << "traces archived to " << path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace asti

int main(int argc, char** argv) { return asti::Run(argc, argv); }
