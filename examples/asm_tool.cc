// asm_tool — command-line adaptive seed minimization on your own graph.
//
// The "bring your own data" entry point: load a weighted edge list (or
// name a built-in surrogate), pick a diffusion model, algorithm, and
// threshold, and get the per-round trace plus an optional archive file.
// Queries are served by the SeedMinEngine façade, so every algorithm in
// the registry — including the non-adaptive ATEUC/Bisection baselines —
// is available, bad inputs come back as readable errors instead of
// crashes, and runs follow the §6 protocol (hidden worlds derived from
// --seed, shared across algorithms).
//
// Usage:
//   asm_tool --graph edges.txt --eta 500
//   asm_tool --dataset nethept --scale 0.2 --eta-fraction 0.05
//            --model LT --algorithm ASTI-4 --runs 3 --save-traces out.tr
//   asm_tool --list-algorithms
//
// Flags: --graph PATH | --dataset NAME [--scale S], --eta N |
// --eta-fraction F, --model IC|LT, --algorithm NAME (see
// --list-algorithms; ASTI-b accepts any b >= 1), --epsilon E, --threads T
// (1 = sequential, 0 = all cores), --runs R, --seed S,
// --timeout SECONDS (abandon the run with DeadlineExceeded past the
// budget; unset = no deadline), --save-traces PATH, --quiet.

#include <iostream>

#include "api/seedmin_engine.h"
#include "benchutil/cli.h"
#include "benchutil/table.h"
#include "core/trace_io.h"
#include "graph/datasets.h"
#include "graph/edge_list_io.h"

namespace asti {
namespace {

StatusOr<DirectedGraph> LoadGraph(const CommandLine& cli) {
  if (cli.Has("graph")) {
    auto file = LoadEdgeList(cli.GetString("graph", ""));
    if (!file.ok()) return file.status();
    return BuildGraphFromEdgeList(*file);
  }
  const std::string dataset = cli.GetString("dataset", "nethept");
  auto id = DatasetIdFromName(dataset);
  if (!id.ok()) return id.status();
  return MakeSurrogateDataset(*id, cli.GetDouble("scale", 0.2),
                              static_cast<uint64_t>(cli.GetInt("seed", 7)));
}

int ListAlgorithms() {
  TextTable table({"id", "kind", "paper name"});
  for (const AlgorithmInfo& info : AlgorithmRegistry::List()) {
    table.AddRow({info.name, info.adaptive ? "adaptive" : "one-shot",
                  info.paper_name});
  }
  table.Print(std::cout);
  std::cout << "\nASTI-b is accepted for any batch size b >= 1 "
               "(b = 1 is plain TRIM = ASTI; b > 1 runs TRIM-B with that b).\n";
  return 0;
}

int Run(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  if (cli.Has("list-algorithms")) return ListAlgorithms();

  auto graph = LoadGraph(cli);
  if (!graph.ok()) {
    std::cerr << "graph: " << graph.status().ToString() << "\n";
    return 1;
  }
  const NodeId n = graph->NumNodes();
  NodeId eta = static_cast<NodeId>(cli.GetInt("eta", 0));
  if (eta == 0) {
    eta = static_cast<NodeId>(cli.GetDouble("eta-fraction", 0.05) * n);
  }

  const std::string algorithm_name = cli.GetString("algorithm", "ASTI");
  auto spec = AlgorithmRegistry::Parse(algorithm_name);
  if (!spec.ok()) {
    std::cerr << spec.status().ToString() << "\n";
    return 1;
  }

  SolveRequest request;
  request.algorithm = spec->id;
  request.batch_size = spec->batch_size;
  request.model = cli.GetString("model", "IC") == "LT"
                      ? DiffusionModel::kLinearThreshold
                      : DiffusionModel::kIndependentCascade;
  request.eta = eta;
  request.keep_traces = true;  // round tables + --save-traces
  // Flags read directly rather than via ApplyRequestOverrides: asm_tool is
  // a user tool, and the bench-harness ASM_BENCH_* env knobs must never
  // silently change a run. --runs is the documented spelling
  // (--realizations accepted as an alias); --seed 7 matches LoadGraph's
  // surrogate default, so one seed governs the whole invocation.
  request.epsilon = cli.GetDouble("epsilon", request.epsilon);
  request.seed = static_cast<uint64_t>(cli.GetInt("seed", 7));
  // Signed reads guarded before the size_t casts: a negative value must
  // come back as a readable error, not wrap to ~2^64 runs or workers.
  const int64_t runs = cli.GetInt("runs", cli.GetInt("realizations", 1));
  if (runs < 1) {
    std::cerr << "InvalidArgument: --runs must be >= 1, got " << runs << "\n";
    return 1;
  }
  request.realizations = static_cast<size_t>(runs);
  // A wall-clock budget for the whole invocation (all runs): past it the
  // engine's cooperative cancellation unwinds at the next chunk/round
  // boundary and the tool reports DeadlineExceeded instead of hanging on
  // an over-ambitious eta. 0 or negative is rejected — an already-expired
  // deadline would just burn the graph-loading work.
  if (cli.Has("timeout")) {
    const double timeout = cli.GetDouble("timeout", 0.0);
    if (timeout <= 0.0) {
      std::cerr << "InvalidArgument: --timeout must be > 0 seconds, got "
                << timeout << "\n";
      return 1;
    }
    request.deadline = DeadlineAfter(timeout);
  }
  const int64_t threads = cli.GetInt("threads", 1);
  if (threads < 0) {
    std::cerr << "InvalidArgument: --threads must be >= 0, got " << threads << "\n";
    return 1;
  }
  const bool quiet = cli.Has("quiet");

  std::cout << "graph: n=" << n << " m=" << graph->NumEdges()
            << "  model=" << DiffusionModelName(request.model) << "  eta=" << eta
            << "  algorithm=" << algorithm_name << "\n";

  // --threads read directly (not NumThreadsOverride): a lingering
  // ASM_BENCH_THREADS export must not silently flip the user's run onto a
  // different (sequential vs pooled) stream protocol.
  SeedMinEngine engine(*graph, {static_cast<size_t>(threads)});
  StatusOr<SolveResult> solved = engine.Solve(request);
  if (!solved.ok()) {
    std::cerr << solved.status().ToString() << "\n";
    return 1;
  }
  const SolveResult& result = *solved;

  for (size_t run = 0; run < result.traces.size(); ++run) {
    const AdaptiveRunTrace& trace = result.traces[run];
    if (!quiet && !trace.rounds.empty()) {
      TextTable table({"round", "seeds", "activated", "shortfall", "samples"});
      for (const RoundRecord& round : trace.rounds) {
        std::string seeds;
        for (NodeId s : round.seeds) {
          // append(): GCC 12 -Wrestrict false-positives on char* +
          // to_string temporaries under -O2 (PR 105651).
          if (!seeds.empty()) seeds.append(",");
          seeds.append(std::to_string(s));
        }
        table.AddRow({std::to_string(round.round), seeds,
                      std::to_string(round.newly_activated),
                      std::to_string(round.shortfall_before),
                      std::to_string(round.num_samples)});
      }
      std::cout << "\nrun " << run + 1 << ":\n";
      table.Print(std::cout);
    }
    std::cout << "run " << run + 1 << ": " << trace.NumSeeds() << " seeds, "
              << trace.total_activated << " activated, " << trace.seconds << "s\n";
  }
  std::cout << "\nsummary: " << Summarize(result.aggregate) << "\n";

  if (cli.Has("save-traces")) {
    const std::string path = cli.GetString("save-traces", "");
    const Status status = SaveTraces(result.traces, path);
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
    std::cout << "traces archived to " << path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace asti

int main(int argc, char** argv) { return asti::Run(argc, argv); }
