// asm_tool — command-line adaptive seed minimization on your own graph.
//
// The "bring your own data" entry point: load a weighted edge list (or
// name a built-in surrogate), pick a diffusion model, algorithm, and
// threshold, and get the per-round trace plus an optional archive file.
//
// Usage:
//   asm_tool --graph edges.txt --eta 500
//   asm_tool --dataset nethept --scale 0.2 --eta-fraction 0.05 \
//            --model LT --algorithm ASTI-4 --runs 3 --save-traces out.tr
//
// Flags: --graph PATH | --dataset NAME [--scale S], --eta N |
// --eta-fraction F, --model IC|LT, --algorithm ASTI|ASTI-b|AdaptIM|Degree,
// --epsilon E, --threads T (1 = sequential, 0 = all cores), --runs R,
// --seed S, --save-traces PATH, --quiet.

#include <iostream>
#include <memory>

#include "baselines/adaptim.h"
#include "baselines/degree_adaptive.h"
#include "benchutil/cli.h"
#include "benchutil/table.h"
#include "core/asti.h"
#include "core/trace_io.h"
#include "core/trim.h"
#include "core/trim_b.h"
#include "diffusion/world.h"
#include "graph/datasets.h"
#include "graph/edge_list_io.h"

namespace asti {
namespace {

StatusOr<DirectedGraph> LoadGraph(const CommandLine& cli) {
  if (cli.Has("graph")) {
    auto file = LoadEdgeList(cli.GetString("graph", ""));
    if (!file.ok()) return file.status();
    return BuildGraphFromEdgeList(*file);
  }
  const std::string dataset = cli.GetString("dataset", "nethept");
  auto id = DatasetIdFromName(dataset);
  if (!id.ok()) return id.status();
  return MakeSurrogateDataset(*id, cli.GetDouble("scale", 0.2),
                              static_cast<uint64_t>(cli.GetInt("seed", 7)));
}

StatusOr<std::unique_ptr<RoundSelector>> MakeSelector(const CommandLine& cli,
                                                      const DirectedGraph& graph,
                                                      DiffusionModel model) {
  const std::string name = cli.GetString("algorithm", "ASTI");
  const double epsilon = cli.GetDouble("epsilon", 0.5);
  const size_t num_threads = static_cast<size_t>(cli.GetInt("threads", 1));
  if (name == "ASTI") {
    TrimOptions options;
    options.epsilon = epsilon;
    options.num_threads = num_threads;
    return std::unique_ptr<RoundSelector>(std::make_unique<Trim>(graph, model, options));
  }
  if (name.rfind("ASTI-", 0) == 0) {
    const int batch = std::atoi(name.c_str() + 5);
    if (batch < 1) return Status::InvalidArgument("bad batch size in '" + name + "'");
    TrimBOptions options;
    options.epsilon = epsilon;
    options.batch_size = static_cast<NodeId>(batch);
    options.num_threads = num_threads;
    return std::unique_ptr<RoundSelector>(std::make_unique<TrimB>(graph, model, options));
  }
  if (name == "AdaptIM") {
    AdaptImOptions options;
    options.epsilon = epsilon;
    options.num_threads = num_threads;
    return std::unique_ptr<RoundSelector>(
        std::make_unique<AdaptIm>(graph, model, options));
  }
  if (name == "Degree") {
    return std::unique_ptr<RoundSelector>(std::make_unique<DegreeAdaptive>(graph));
  }
  return Status::InvalidArgument("unknown algorithm '" + name +
                                 "' (ASTI, ASTI-b, AdaptIM, Degree)");
}

int Run(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  auto graph = LoadGraph(cli);
  if (!graph.ok()) {
    std::cerr << "graph: " << graph.status().ToString() << "\n";
    return 1;
  }
  const NodeId n = graph->NumNodes();
  NodeId eta = static_cast<NodeId>(cli.GetInt("eta", 0));
  if (eta == 0) {
    eta = static_cast<NodeId>(cli.GetDouble("eta-fraction", 0.05) * n);
  }
  if (eta < 1 || eta > n) {
    std::cerr << "eta " << eta << " outside [1, " << n << "]\n";
    return 1;
  }
  const DiffusionModel model = cli.GetString("model", "IC") == "LT"
                                   ? DiffusionModel::kLinearThreshold
                                   : DiffusionModel::kIndependentCascade;
  const size_t runs = static_cast<size_t>(cli.GetInt("runs", 1));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 7));
  const bool quiet = cli.Has("quiet");

  std::cout << "graph: n=" << n << " m=" << graph->NumEdges()
            << "  model=" << DiffusionModelName(model) << "  eta=" << eta
            << "  algorithm=" << cli.GetString("algorithm", "ASTI") << "\n";

  std::vector<AdaptiveRunTrace> traces;
  for (size_t run = 0; run < runs; ++run) {
    auto selector = MakeSelector(cli, *graph, model);
    if (!selector.ok()) {
      std::cerr << selector.status().ToString() << "\n";
      return 1;
    }
    Rng world_rng(seed * 1000003 + run);
    AdaptiveWorld world(*graph, model, eta, world_rng);
    Rng rng(seed * 7777 + run);
    traces.push_back(RunAdaptivePolicy(world, **selector, rng));
    const AdaptiveRunTrace& trace = traces.back();
    if (!quiet) {
      TextTable table({"round", "seeds", "activated", "shortfall", "samples"});
      for (const RoundRecord& round : trace.rounds) {
        std::string seeds;
        for (NodeId s : round.seeds) seeds += (seeds.empty() ? "" : ",") +
                                              std::to_string(s);
        table.AddRow({std::to_string(round.round), seeds,
                      std::to_string(round.newly_activated),
                      std::to_string(round.shortfall_before),
                      std::to_string(round.num_samples)});
      }
      std::cout << "\nrun " << run + 1 << ":\n";
      table.Print(std::cout);
    }
    std::cout << "run " << run + 1 << ": " << trace.NumSeeds() << " seeds, "
              << trace.total_activated << " activated, " << trace.seconds << "s\n";
  }
  const RunAggregate aggregate = Aggregate(traces);
  std::cout << "\nsummary: " << Summarize(aggregate) << "\n";

  if (cli.Has("save-traces")) {
    const std::string path = cli.GetString("save-traces", "");
    const Status status = SaveTraces(traces, path);
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
    std::cout << "traces archived to " << path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace asti

int main(int argc, char** argv) { return asti::Run(argc, argv); }
