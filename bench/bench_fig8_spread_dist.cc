// Figure 8 — spread across 20 realizations on NetHEPT, ASTI vs ATEUC,
// under both IC and LT.
//
// The paper's reliability plot: ATEUC's non-adaptive seed set undershoots
// η on ~25-30% of realizations and overshoots by >50% on others, while
// ASTI meets η on every realization and stays close to it.

#include <algorithm>
#include <iostream>

#include "benchutil/cli.h"
#include "benchutil/experiment.h"
#include "benchutil/table.h"
#include "graph/datasets.h"

int main(int argc, char** argv) {
  using namespace asti;
  const CommandLine cli(argc, argv);
  const double scale = EnvDouble("ASM_BENCH_SCALE", cli.GetDouble("scale", 1.0));
  const size_t realizations =
      EnvSize("ASM_BENCH_REALIZATIONS_FIG8",
              static_cast<size_t>(cli.GetInt("realizations", 20)));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 7));

  auto graph = MakeSurrogateDataset(DatasetId::kNetHept, scale, seed);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  // The paper's NetHEPT threshold 153 corresponds to eta/n ~= 0.01.
  const NodeId eta =
      std::max<NodeId>(1, static_cast<NodeId>(0.01 * graph->NumNodes()));

  std::cout << "Figure 8: spread per realization on NetHEPT surrogate (n="
            << graph->NumNodes() << ", eta=" << eta << ", " << realizations
            << " realizations)\n";
  for (DiffusionModel model :
       {DiffusionModel::kIndependentCascade, DiffusionModel::kLinearThreshold}) {
    CellConfig config;
    config.model = model;
    config.eta = eta;
    config.realizations = realizations;
    config.seed = seed;
    config.num_threads = NumThreadsOverride(cli);
    config.algorithm = AlgorithmId::kAsti;
    const CellResult asti = RunCell(*graph, config);
    config.algorithm = AlgorithmId::kAteuc;
    const CellResult ateuc = RunCell(*graph, config);

    std::cout << "\n[" << DiffusionModelName(model) << " model] threshold = " << eta
              << "\n";
    TextTable table({"realization", "ASTI spread", "ATEUC spread", "ATEUC verdict"});
    size_t under = 0;
    size_t over50 = 0;
    for (size_t r = 0; r < realizations; ++r) {
      std::string verdict = "ok";
      if (ateuc.spreads[r] < eta) {
        verdict = "UNDER";
        ++under;
      } else if (ateuc.spreads[r] > 1.5 * eta) {
        verdict = "over +50%";
        ++over50;
      }
      table.AddRow({std::to_string(r + 1), FormatDouble(asti.spreads[r], 0),
                    FormatDouble(ateuc.spreads[r], 0), verdict});
    }
    table.Print(std::cout);
    std::cout << "ASTI reached eta on " << asti.aggregate.runs_reaching_target << "/"
              << realizations << " realizations; ATEUC undershot " << under
              << " and overshot by >50% on " << over50 << ".\n";
  }
  std::cout << "\nShape check (paper Fig. 8): ASTI meets the threshold on "
               "every realization and hugs it; ATEUC misses a nontrivial "
               "fraction and wildly overshoots on others.\n";
  return 0;
}
