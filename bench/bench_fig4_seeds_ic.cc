// Figure 4 — number of seed nodes vs threshold η/n under the IC model.
//
// The paper's headline plot: across four datasets and five thresholds,
// ASTI/ASTI-b/AdaptIM select far fewer seeds than ATEUC (30-65% fewer),
// AdaptIM ≈ ASTI, and batched variants cost a few extra seeds. "(miss)"
// marks cells where the algorithm failed to reach η on some realization —
// only ATEUC ever earns it.

#include <iostream>

#include "benchutil/sweep.h"
#include "benchutil/table.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace asti;
  SweepOptions options;
  options.base.model = DiffusionModel::kIndependentCascade;
  ApplyStandardOverrides(argc, argv, options);

  std::cout << "Figure 4: number of seeds vs threshold (IC model), scale="
            << options.scale << ", realizations=" << options.base.realizations << "\n";
  const auto cells = RunEvaluationSweep(options, [](const SweepCell& cell) {
    ASM_LOG(kInfo) << GetDatasetInfo(cell.dataset).name << " eta/n="
                   << cell.eta_fraction << " " << AlgorithmName(cell.algorithm)
                   << ": " << Summarize(cell.result.aggregate);
  });

  for (DatasetId dataset : options.datasets) {
    std::cout << "\n(" << GetDatasetInfo(dataset).name << ")\n";
    std::vector<std::string> header = {"eta/n"};
    for (AlgorithmId algorithm : options.algorithms) {
      header.push_back(AlgorithmName(algorithm));
    }
    TextTable table(header);
    for (double eta_fraction : EtaFractionsFor(dataset)) {
      std::vector<std::string> row = {FormatDouble(eta_fraction, 2)};
      for (AlgorithmId algorithm : options.algorithms) {
        for (const SweepCell& cell : cells) {
          if (cell.dataset == dataset && cell.eta_fraction == eta_fraction &&
              cell.algorithm == algorithm) {
            std::string text = FormatDouble(cell.result.aggregate.mean_seeds, 1);
            if (!cell.result.always_reached) text += " (miss)";
            row.push_back(text);
          }
        }
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
  std::cout << "\nShape check (paper Fig. 4): ATEUC needs ~30-65% more seeds "
               "than ASTI; AdaptIM tracks ASTI; ASTI-2/4/8 add a few seeds; "
               "only ATEUC shows (miss) cells.\n";
  return 0;
}
