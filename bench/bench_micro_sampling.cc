// Micro-benchmarks (google-benchmark) for the sampling substrate:
// RR vs mRR generation under IC and LT, coverage argmax, greedy coverage,
// forward simulation, and realization sampling.
//
// Not a paper figure — these isolate the primitives whose costs compose
// into Figures 5/7 (e.g. LT reverse traversals are cheaper than IC ones,
// mRR-set cost scales with OPT_i/η_i · m_i).
//
// The BM_*Profiled / BM_Obs* group pins the observability overhead
// contract: with metrics off (null profile) sampling must be
// indistinguishable from the bare loop (< 2%, i.e. noise), the absolute
// cost of a live span (two steady_clock reads) must stay tens of ns so
// production's per-batch spans amortize it below 2%, and the metric
// primitives themselves must be nanosecond-scale.

#include <benchmark/benchmark.h>

#include <numeric>

#include "coverage/lazy_greedy.h"
#include "coverage/max_coverage.h"
#include "diffusion/forward_sim.h"
#include "graph/datasets.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sampling/mrr_set.h"
#include "sampling/root_size.h"
#include "sampling/rr_set.h"
#include "sampling/shared_collection.h"

namespace asti {
namespace {

const DirectedGraph& BenchGraph() {
  static const DirectedGraph graph = [] {
    auto result = MakeSurrogateDataset(DatasetId::kNetHept, 0.3, 7);
    ASM_CHECK(result.ok());
    return std::move(result).value();
  }();
  return graph;
}

std::vector<NodeId> AllNodes(NodeId n) {
  std::vector<NodeId> nodes(n);
  std::iota(nodes.begin(), nodes.end(), 0);
  return nodes;
}

void BM_RrSetGeneration(benchmark::State& state) {
  const DirectedGraph& graph = BenchGraph();
  const DiffusionModel model = static_cast<DiffusionModel>(state.range(0));
  RrSampler sampler(graph, model);
  RrCollection collection(graph.NumNodes());
  const auto candidates = AllNodes(graph.NumNodes());
  Rng rng(1);
  for (auto _ : state) {
    sampler.Generate(candidates, nullptr, collection, rng);
    if (collection.NumSets() > 100000) {
      state.PauseTiming();
      collection.Clear();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RrSetGeneration)
    ->Arg(static_cast<int>(DiffusionModel::kIndependentCascade))
    ->Arg(static_cast<int>(DiffusionModel::kLinearThreshold));

// RR generation with the request-profile instrumentation attached, at a
// deliberately finer grain than production (a span per Generate call
// instead of per batch). Arg 0 runs with a null profile (spans are
// no-ops, no clock reads — the enable_metrics=false path) and must match
// BM_RrSetGeneration within noise (< 2%). Arg 1 runs a live profile and
// exposes the absolute span cost — two steady_clock reads + accumulate,
// tens of ns per call — which production pays once per *batch* of
// hundreds-to-thousands of sets, keeping profiled sampling within 2% of
// bare end to end.
void BM_RrSetGenerationProfiled(benchmark::State& state) {
  const DirectedGraph& graph = BenchGraph();
  RrSampler sampler(graph, DiffusionModel::kIndependentCascade);
  RrCollection collection(graph.NumNodes());
  const auto candidates = AllNodes(graph.NumNodes());
  Rng rng(1);  // same stream as BM_RrSetGeneration: identical work
  RequestProfile storage;
  RequestProfile* profile = state.range(0) == 0 ? nullptr : &storage;
  for (auto _ : state) {
    {
      PhaseSpan span(profile, RequestPhase::kSampling);
      sampler.Generate(candidates, nullptr, collection, rng);
    }
    NoteSampling(profile, 1, collection.MemoryBytes());
    if (collection.NumSets() > 100000) {
      state.PauseTiming();
      collection.Clear();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RrSetGenerationProfiled)->Arg(0)->Arg(1);

void BM_MrrSetGeneration(benchmark::State& state) {
  const DirectedGraph& graph = BenchGraph();
  const DiffusionModel model = static_cast<DiffusionModel>(state.range(0));
  const NodeId eta = static_cast<NodeId>(graph.NumNodes() / state.range(1));
  MrrSampler sampler(graph, model);
  RootSizeSampler root_size(graph.NumNodes(), eta);
  RrCollection collection(graph.NumNodes());
  const auto candidates = AllNodes(graph.NumNodes());
  Rng rng(2);
  for (auto _ : state) {
    sampler.Generate(candidates, nullptr, root_size.Sample(rng), collection, rng);
    if (collection.NumSets() > 20000) {
      state.PauseTiming();
      collection.Clear();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MrrSetGeneration)
    ->Args({static_cast<int>(DiffusionModel::kIndependentCascade), 100})
    ->Args({static_cast<int>(DiffusionModel::kIndependentCascade), 20})
    ->Args({static_cast<int>(DiffusionModel::kLinearThreshold), 100})
    ->Args({static_cast<int>(DiffusionModel::kLinearThreshold), 20});

void BM_CoverageArgMax(benchmark::State& state) {
  const DirectedGraph& graph = BenchGraph();
  RrSampler sampler(graph, DiffusionModel::kIndependentCascade);
  RrCollection collection(graph.NumNodes());
  const auto candidates = AllNodes(graph.NumNodes());
  Rng rng(3);
  for (int i = 0; i < 4096; ++i) sampler.Generate(candidates, nullptr, collection, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(collection.ArgMaxCoverage());
  }
}
BENCHMARK(BM_CoverageArgMax);

void BM_GreedyMaxCoverage(benchmark::State& state) {
  const DirectedGraph& graph = BenchGraph();
  RrSampler sampler(graph, DiffusionModel::kIndependentCascade);
  RrCollection collection(graph.NumNodes());
  const auto candidates = AllNodes(graph.NumNodes());
  Rng rng(4);
  for (int i = 0; i < 4096; ++i) sampler.Generate(candidates, nullptr, collection, rng);
  const NodeId budget = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyMaxCoverage(collection, budget));
  }
}
BENCHMARK(BM_GreedyMaxCoverage)->Arg(1)->Arg(8)->Arg(64);

void BM_LazyGreedyMaxCoverage(benchmark::State& state) {
  const DirectedGraph& graph = BenchGraph();
  RrSampler sampler(graph, DiffusionModel::kIndependentCascade);
  RrCollection collection(graph.NumNodes());
  const auto candidates = AllNodes(graph.NumNodes());
  Rng rng(4);  // same stream as BM_GreedyMaxCoverage for a fair instance
  for (int i = 0; i < 4096; ++i) sampler.Generate(candidates, nullptr, collection, rng);
  const NodeId budget = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LazyGreedyMaxCoverage(collection, budget));
  }
}
BENCHMARK(BM_LazyGreedyMaxCoverage)->Arg(1)->Arg(8)->Arg(64);

void BM_IcRealizationSampling(benchmark::State& state) {
  const DirectedGraph& graph = BenchGraph();
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Realization::SampleIc(graph, rng));
  }
}
BENCHMARK(BM_IcRealizationSampling);

void BM_ForwardPropagation(benchmark::State& state) {
  const DirectedGraph& graph = BenchGraph();
  Rng rng(6);
  const Realization realization = Realization::SampleIc(graph, rng);
  ForwardSimulator simulator(graph);
  const std::vector<NodeId> seeds = {0, 1, 2, 3, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.Propagate(realization, seeds));
  }
}
BENCHMARK(BM_ForwardPropagation);

// --- Shared-collection substrate ----------------------------------------

// Growing a SharedRrCollection along a doubling ladder (batch, 2·batch,
// 4·batch, 8·batch): measures the chunk-publish + coverage-checkpoint
// overhead the sampler cache adds on top of bare generation into an owned
// collection. Per-set streams are index-derived, as in the cache.
void BM_SharedCollectionExtend(benchmark::State& state) {
  const DirectedGraph& graph = BenchGraph();
  RrSampler sampler(graph, DiffusionModel::kIndependentCascade);
  const auto candidates = AllNodes(graph.NumNodes());
  const Rng base(42);
  const size_t batch = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SharedRrCollection shared(graph.NumNodes());
    state.ResumeTiming();
    for (size_t target = batch; target <= batch * 8; target *= 2) {
      shared.ExtendTo(target, [&](size_t first, size_t count, RrCollection& staging) {
        for (size_t i = 0; i < count; ++i) {
          Rng rng = base.Split(first + i);
          sampler.Generate(candidates, nullptr, staging, rng);
        }
      });
    }
    benchmark::DoNotOptimize(shared.SealedSets());
  }
  state.SetItemsProcessed(state.iterations() * batch * 8);
}
BENCHMARK(BM_SharedCollectionExtend)->Arg(64)->Arg(512);

const RrCollection& OwnedBenchCollection() {
  static const RrCollection collection = [] {
    const DirectedGraph& graph = BenchGraph();
    RrCollection c(graph.NumNodes());
    RrSampler sampler(graph, DiffusionModel::kIndependentCascade);
    const auto candidates = AllNodes(graph.NumNodes());
    const Rng base(9);
    for (size_t i = 0; i < 4096; ++i) {
      Rng rng = base.Split(i);
      sampler.Generate(candidates, nullptr, c, rng);
    }
    return c;
  }();
  return collection;
}

const SharedRrCollection& SharedBenchCollection() {
  static SharedRrCollection* shared = [] {
    const DirectedGraph& graph = BenchGraph();
    auto* s = new SharedRrCollection(graph.NumNodes());
    RrSampler sampler(graph, DiffusionModel::kIndependentCascade);
    const auto candidates = AllNodes(graph.NumNodes());
    const Rng base(9);  // same streams as OwnedBenchCollection: same sets
    s->ExtendTo(4096, [&](size_t first, size_t count, RrCollection& staging) {
      for (size_t i = 0; i < count; ++i) {
        Rng rng = base.Split(first + i);
        sampler.Generate(candidates, nullptr, staging, rng);
      }
    });
    return s;
  }();
  return *shared;
}

// Scanning every set's node span through the three read surfaces that the
// coverage solvers now see. Arg 0 reads the owned RrCollection directly;
// arg 1 reads it through a borrowed CollectionView; arg 2 reads the same
// sets through a shared-prefix view (single chunk). The view arms expose
// the absolute cost of view dispatch — one predictable branch plus a part
// indirection in CollectionView::Set, sub-ns per set even on this bare
// size() scan — and must time identically to each other (borrow vs shared
// prefix is free). Real solver loops touch every node of each set, so the
// dispatch amortizes below noise (< 2%) end to end; the engine-level pin
// for that is MetricsOnAndOffProduceBitIdenticalResults plus the
// throughput bench's warm-speedup, which would regress if views taxed the
// coverage path.
void BM_CollectionViewRead(benchmark::State& state) {
  const RrCollection& owned = OwnedBenchCollection();
  const int mode = static_cast<int>(state.range(0));
  size_t total = 0;
  if (mode == 0) {
    for (auto _ : state) {
      for (size_t i = 0; i < owned.NumSets(); ++i) total += owned.Set(i).size();
      benchmark::DoNotOptimize(total);
    }
  } else {
    const CollectionView view = mode == 1
                                    ? CollectionView(owned)
                                    : SharedBenchCollection().Prefix(owned.NumSets());
    for (auto _ : state) {
      for (size_t i = 0; i < view.NumSets(); ++i) total += view.Set(i).size();
      benchmark::DoNotOptimize(total);
    }
  }
  state.SetItemsProcessed(state.iterations() * owned.NumSets());
}
BENCHMARK(BM_CollectionViewRead)->Arg(0)->Arg(1)->Arg(2);

// --- Observability primitives -------------------------------------------

// One sharded-counter increment; with --benchmark_threads > 1 (or the
// ->Threads levels below) every thread lands on its own cache line.
void BM_ObsShardedCounterAdd(benchmark::State& state) {
  static ShardedCounter counter;
  for (auto _ : state) {
    counter.Add(1);
  }
  if (state.thread_index() == 0) benchmark::DoNotOptimize(counter.Value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsShardedCounterAdd)->Threads(1)->Threads(4);

// One histogram record: a bit_width bucket index plus two relaxed adds.
// The varying value sweeps bucket indices so the branch predictor cannot
// memorize one bucket.
void BM_ObsHistogramRecord(benchmark::State& state) {
  static LogHistogram histogram;
  uint64_t value = 1;
  for (auto _ : state) {
    histogram.Record(value);
    value = value * 6364136223846793005ull + 1442695040888963407ull;
    value >>= 40;  // keep values in the realistic ns..ms bucket range
  }
  benchmark::DoNotOptimize(histogram.Snapshot().Count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramRecord);

}  // namespace
}  // namespace asti

BENCHMARK_MAIN();
