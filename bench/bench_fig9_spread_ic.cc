// Figure 9 (Appendix C) — influence spread vs threshold under the IC model.
//
// All algorithms achieve comparable spread; ATEUC's grows slightly larger
// at big η (it buys reliability with extra seeds), and large-batch ASTI-8
// overshoots at small η where one batch already exceeds the target.

#include <iostream>

#include "benchutil/sweep.h"
#include "benchutil/table.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace asti;
  SweepOptions options;
  options.base.model = DiffusionModel::kIndependentCascade;
  ApplyStandardOverrides(argc, argv, options);

  std::cout << "Figure 9: average spread vs threshold (IC model), scale="
            << options.scale << ", realizations=" << options.base.realizations << "\n";
  const auto cells = RunEvaluationSweep(options, [](const SweepCell& cell) {
    ASM_LOG(kInfo) << GetDatasetInfo(cell.dataset).name << " eta/n="
                   << cell.eta_fraction << " " << AlgorithmName(cell.algorithm)
                   << ": " << Summarize(cell.result.aggregate);
  });

  for (DatasetId dataset : options.datasets) {
    std::cout << "\n(" << GetDatasetInfo(dataset).name << ")\n";
    std::vector<std::string> header = {"eta/n", "eta"};
    for (AlgorithmId algorithm : options.algorithms) {
      header.push_back(AlgorithmName(algorithm));
    }
    TextTable table(header);
    for (double eta_fraction : EtaFractionsFor(dataset)) {
      std::vector<std::string> row = {FormatDouble(eta_fraction, 2), ""};
      for (AlgorithmId algorithm : options.algorithms) {
        for (const SweepCell& cell : cells) {
          if (cell.dataset == dataset && cell.eta_fraction == eta_fraction &&
              cell.algorithm == algorithm) {
            row[1] = std::to_string(cell.eta);
            row.push_back(FormatDouble(cell.result.aggregate.mean_spread, 0));
          }
        }
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
  std::cout << "\nShape check (paper Fig. 9): spreads cluster near eta for "
               "the adaptive algorithms; ASTI-8 overshoots at the smallest "
               "eta; ATEUC trends slightly above the adaptive algorithms as "
               "eta grows.\n";
  return 0;
}
