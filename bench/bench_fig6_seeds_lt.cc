// Figure 6 — number of seed nodes vs threshold η/n under the LT model.
//
// Same grid as Figure 4 with the linear threshold model; the paper reports
// the same ordering (ASTI ≈ AdaptIM < ASTI-b < ATEUC) with generally fewer
// seeds than under IC.

#include <iostream>

#include "benchutil/sweep.h"
#include "benchutil/table.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace asti;
  SweepOptions options;
  options.base.model = DiffusionModel::kLinearThreshold;
  ApplyStandardOverrides(argc, argv, options);

  std::cout << "Figure 6: number of seeds vs threshold (LT model), scale="
            << options.scale << ", realizations=" << options.base.realizations << "\n";
  const auto cells = RunEvaluationSweep(options, [](const SweepCell& cell) {
    ASM_LOG(kInfo) << GetDatasetInfo(cell.dataset).name << " eta/n="
                   << cell.eta_fraction << " " << AlgorithmName(cell.algorithm)
                   << ": " << Summarize(cell.result.aggregate);
  });

  for (DatasetId dataset : options.datasets) {
    std::cout << "\n(" << GetDatasetInfo(dataset).name << ")\n";
    std::vector<std::string> header = {"eta/n"};
    for (AlgorithmId algorithm : options.algorithms) {
      header.push_back(AlgorithmName(algorithm));
    }
    TextTable table(header);
    for (double eta_fraction : EtaFractionsFor(dataset)) {
      std::vector<std::string> row = {FormatDouble(eta_fraction, 2)};
      for (AlgorithmId algorithm : options.algorithms) {
        for (const SweepCell& cell : cells) {
          if (cell.dataset == dataset && cell.eta_fraction == eta_fraction &&
              cell.algorithm == algorithm) {
            std::string text = FormatDouble(cell.result.aggregate.mean_seeds, 1);
            if (!cell.result.always_reached) text += " (miss)";
            row.push_back(text);
          }
        }
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
  std::cout << "\nShape check (paper Fig. 6): same ordering as Fig. 4; all "
               "algorithms need fewer seeds under LT than under IC.\n";
  return 0;
}
