// Theory validation — Lemmas 3.8 and 3.9 measured on a live ASTI run.
//
// Lemma 3.8: the expected cost of one mRR-set in round i is
// O(OPT_i/η_i · m_i)  — we record edges examined per set against that
// predictor. Lemma 3.9: the number of mRR-sets TRIM generates is
// O(η_i ln n_i / (ε² OPT_i)) — we record TRIM's sample count against that
// predictor. Both ratios (measured / predicted) should stay bounded and
// roughly flat across rounds; that flatness is the paper's argument for
// why per-round cost is independent of the round index (§3.5).

#include <algorithm>
#include <cmath>
#include <iostream>

#include "benchutil/cli.h"
#include "benchutil/table.h"
#include "core/asti.h"
#include "core/trim.h"
#include "diffusion/world.h"
#include "graph/datasets.h"
#include "sampling/mrr_set.h"
#include "sampling/root_size.h"

int main(int argc, char** argv) {
  using namespace asti;
  const CommandLine cli(argc, argv);
  const double scale = EnvDouble("ASM_BENCH_SCALE", cli.GetDouble("scale", 0.5));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 7));
  const double epsilon = cli.GetDouble("epsilon", 0.5);

  auto graph = MakeSurrogateDataset(DatasetId::kNetHept, scale, seed);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  const NodeId n = graph->NumNodes();
  const size_t m = graph->NumEdges();
  const NodeId eta = std::max<NodeId>(2, n / 5);  // eta/n = 0.2: many rounds
  std::cout << "Lemma 3.8/3.9 validation on NetHEPT surrogate (n=" << n
            << ", m=" << m << ", eta=" << eta << ", eps=" << epsilon << ")\n\n";

  // Drive ASTI manually so per-round sampling cost can be isolated.
  Rng world_rng(seed + 1);
  AdaptiveWorld world(*graph, DiffusionModel::kIndependentCascade, eta, world_rng);
  Rng rng(seed + 2);

  TextTable table({"round", "n_i", "eta_i", "OPT_i~", "sets", "pred sets",
                   "ratio39", "edges/set", "pred cost", "ratio38"});
  size_t round = 0;
  while (!world.TargetReached() && round < 200) {
    ++round;
    const NodeId ni = world.NumInactive();
    const NodeId eta_i = world.Shortfall();

    Trim trim(*graph, DiffusionModel::kIndependentCascade, TrimOptions{epsilon});
    ResidualView view;
    view.active = &world.ActiveMask();
    view.inactive_nodes = &world.InactiveNodes();
    view.shortfall = eta_i;

    // Separate instrumented sampler measuring edges/set at this state.
    MrrSampler probe(*graph, DiffusionModel::kIndependentCascade);
    RootSizeSampler root_size(ni, eta_i);
    RrCollection probe_sets(n);
    const size_t probe_count = 64;
    for (size_t i = 0; i < probe_count; ++i) {
      probe.Generate(*view.inactive_nodes, view.active, root_size.Sample(rng),
                     probe_sets, rng);
    }
    const double edges_per_set =
        static_cast<double>(probe.cost().edges_examined) / probe_count;

    const SelectionResult selection = trim.SelectBatch(view, rng);
    // OPT_i proxy: the selected node's own estimated truncated gain.
    const double opt = std::max(1.0, selection.estimated_marginal_gain);

    const double predicted_sets = static_cast<double>(eta_i) * std::log(ni) /
                                  (epsilon * epsilon * opt);
    const double predicted_cost =
        opt / static_cast<double>(eta_i) * static_cast<double>(m);
    if (round <= 12 || round % 5 == 0) {
      table.AddRow({std::to_string(round), std::to_string(ni), std::to_string(eta_i),
                    FormatDouble(opt, 1), std::to_string(selection.num_samples),
                    FormatDouble(predicted_sets, 0),
                    FormatDouble(selection.num_samples / predicted_sets, 2),
                    FormatDouble(edges_per_set, 1), FormatDouble(predicted_cost, 1),
                    FormatDouble(edges_per_set / predicted_cost, 3)});
    }
    world.Observe(selection.seeds);
  }
  table.Print(std::cout);
  std::cout << "\nShape check: ratio39 (measured sets / Lemma 3.9 predictor) "
               "and ratio38 (measured edges-per-set / Lemma 3.8 predictor) "
               "stay bounded and do not grow with the round index — the "
               "paper's 'counterintuitive' per-round cost independence.\n";
  return 0;
}
