// SeedMinEngine serving throughput: queries/s vs concurrent drivers, plus
// an admission-saturation measurement.
//
// Not a paper figure — measures the src/api/ serving front. One resident
// engine (shared pool + admission queue) serves Q mixed-algorithm
// SolveRequests at each requested driver concurrency: all requests are
// submitted up front and the engine's fixed driver pool is the
// concurrency bound (no per-request threads since the admission rework).
// Each request's RNG streams derive from its own seed, so the per-request
// results — and therefore the cross-client determinism checksum printed
// per row — must be identical at every concurrency level; the binary
// exits non-zero on a mismatch, like bench_parallel_scaling.
//
// The saturation phase rebuilds the engine with a deliberately tiny
// admission capacity and rejection (non-blocking) policy, bursts every
// query at it, and reports admitted/rejected counts — the backpressure a
// real traffic front sees — re-checking that every admitted result is
// bit-identical to its unsaturated run.
//
//   --clients 1,2,4,8     driver-concurrency levels to sweep
//   --queries 24          requests per level
//   --threads 0           engine pool size (0 = all cores, 1 = sequential)
//   --drivers 0           driver threads (0 = match the client level)
//   --queue-depth 64      waiting-room slots beyond the drivers
//   --sat-drivers 2       saturation phase: driver threads
//   --sat-queue 4         saturation phase: waiting-room slots
//   --eta-fraction 0.05   per-request threshold
//   --scale 1.0           graph size multiplier
//   --model ic|lt
//   --json PATH           machine-readable results (CI artifact)

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/seedmin_engine.h"
#include "benchutil/cli.h"
#include "benchutil/table.h"
#include "benchutil/timer.h"
#include "graph/generators.h"
#include "util/check.h"

namespace asti {
namespace {

// Order-sensitive digest over one request's observable outcome.
uint64_t OneResultChecksum(const SolveResult& result) {
  uint64_t digest = 0xcbf29ce484222325ULL;
  auto mix = [&digest](uint64_t word) {
    word *= 0x100000001b3ULL;
    digest ^= word + (digest << 6) + (digest >> 2);
  };
  for (const AdaptiveRunTrace& trace : result.traces) {
    for (NodeId seed : trace.seeds) mix(seed);
    mix(trace.total_activated);
  }
  for (size_t count : result.seed_counts) mix(count);
  return digest;
}

// Combined digest across every request, in request order.
uint64_t BatchChecksum(const std::vector<uint64_t>& per_request) {
  uint64_t digest = 0x84222325cbf29ce4ULL;
  for (uint64_t word : per_request) {
    word *= 0x100000001b3ULL;
    digest ^= word + (digest << 6) + (digest >> 2);
  }
  return digest;
}

struct LevelRow {
  size_t clients = 0;
  size_t drivers = 0;
  double rate = 0.0;
  double speedup = 1.0;
  uint64_t checksum = 0;
};

}  // namespace
}  // namespace asti

int main(int argc, char** argv) {
  using namespace asti;
  const CommandLine cli(argc, argv);
  const double scale = EnvDouble("ASM_BENCH_SCALE", cli.GetDouble("scale", 1.0));
  const size_t queries = EnvSize("ASM_BENCH_QUERIES",
                                 static_cast<size_t>(cli.GetInt("queries", 24)));
  ASM_CHECK(queries >= 1) << "--queries must be >= 1";
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 7));
  const DiffusionModel model = cli.GetString("model", "ic") == "lt"
                                   ? DiffusionModel::kLinearThreshold
                                   : DiffusionModel::kIndependentCascade;
  const std::vector<size_t> client_counts =
      ParseSizeList(cli.GetString("clients", "1,2,4,8"), "--clients", 1);
  const size_t pool_threads = NumThreadsOverride(cli, 0);
  // Guarded casts: a negative flag must fail readably, not wrap to ~2^64
  // drivers/slots and crash the engine constructor.
  auto count_flag = [&cli](const char* name, int64_t fallback) {
    const int64_t value = cli.GetInt(name, fallback);
    ASM_CHECK(value >= 0) << "--" << name << " must be >= 0, got " << value;
    return static_cast<size_t>(value);
  };
  const size_t drivers_override = count_flag("drivers", 0);
  const size_t queue_depth = count_flag("queue-depth", 64);
  const size_t sat_drivers = count_flag("sat-drivers", 2);
  const size_t sat_queue = count_flag("sat-queue", 4);
  const std::string json_path = cli.GetString("json", "");

  // Power-law generator graph, the regime of the paper's datasets.
  const NodeId n = static_cast<NodeId>(8000 * scale);
  const size_t m = static_cast<size_t>(48000 * scale);
  Rng graph_rng(seed);
  auto graph = BuildWeightedGraph(MakeChungLu(n, m, 2.1, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASM_CHECK(graph.ok()) << graph.status().ToString();
  const NodeId eta = std::max<NodeId>(
      1, static_cast<NodeId>(cli.GetDouble("eta-fraction", 0.05) *
                             graph->NumNodes()));

  // The request mix: the TRIM family plus the degree heuristic, each query
  // with its own seed (query i is reproducible in isolation).
  const AlgorithmId mix[] = {AlgorithmId::kAsti, AlgorithmId::kAsti4,
                             AlgorithmId::kDegree};
  std::vector<SolveRequest> requests;
  for (size_t i = 0; i < queries; ++i) {
    SolveRequest request;
    request.algorithm = mix[i % (sizeof(mix) / sizeof(mix[0]))];
    request.model = model;
    request.eta = eta;
    request.seed = seed + 1000 + i;
    request.keep_traces = true;  // checksummed
    requests.push_back(request);
  }

  std::cout << "SeedMinEngine serving throughput on Chung-Lu graph (n="
            << graph->NumNodes() << ", m=" << graph->NumEdges()
            << ", model=" << DiffusionModelName(model) << ", eta=" << eta
            << ", queries/level=" << queries << ", pool threads="
            << (pool_threads == 0 ? std::string("hw") : std::to_string(pool_threads))
            << ", queue depth=" << queue_depth << ")\n\n";

  TextTable table({"clients", "drivers", "queries/s", "speedup", "checksum"});
  std::vector<LevelRow> rows;
  std::vector<uint64_t> reference_digests;  // per request, from level 1
  double base_rate = 0.0;
  uint64_t reference_checksum = 0;
  bool deterministic = true;
  for (size_t clients : client_counts) {
    // The engine's driver pool IS the concurrency under test: D drivers
    // execute admitted requests, blocking admission absorbs the rest.
    SeedMinEngine::Options options;
    options.num_threads = pool_threads;
    options.num_drivers = drivers_override != 0 ? drivers_override : clients;
    options.max_queue_depth = std::max(queue_depth, queries);  // never reject here
    options.block_when_full = true;
    SeedMinEngine engine(*graph, options);

    WallTimer timer;
    std::vector<std::future<StatusOr<SolveResult>>> futures;
    futures.reserve(requests.size());
    for (const SolveRequest& request : requests) {
      futures.push_back(engine.SubmitAsync(request));
    }
    std::vector<uint64_t> digests;
    digests.reserve(futures.size());
    for (auto& future : futures) {
      const StatusOr<SolveResult> solved = future.get();
      ASM_CHECK(solved.ok()) << solved.status().ToString();
      digests.push_back(OneResultChecksum(*solved));
    }
    const double seconds = timer.Seconds();

    const uint64_t checksum = BatchChecksum(digests);
    if (reference_digests.empty()) {
      reference_digests = digests;
      reference_checksum = checksum;
    }
    deterministic = deterministic && checksum == reference_checksum;
    const double rate = static_cast<double>(queries) / seconds;
    if (base_rate == 0.0) base_rate = rate;
    LevelRow row;
    row.clients = clients;
    row.drivers = options.num_drivers;
    row.rate = rate;
    row.speedup = rate / base_rate;
    row.checksum = checksum;
    rows.push_back(row);
    table.AddRow({std::to_string(clients), std::to_string(row.drivers),
                  FormatDouble(rate, 1), FormatDouble(row.speedup) + "x",
                  std::to_string(checksum % 1000000)});
  }
  table.Print(std::cout);
  std::cout << "\nResult checksum identical across client counts: "
            << (deterministic ? "yes" : "NO — determinism violated") << "\n";

  // --- Saturation: burst everything at a tiny rejecting queue ------------
  SeedMinEngine::Options sat_options;
  sat_options.num_threads = pool_threads;
  sat_options.num_drivers = sat_drivers;
  sat_options.max_queue_depth = sat_queue;
  sat_options.block_when_full = false;  // rejection is the point
  size_t admitted = 0;
  size_t rejected = 0;
  bool admitted_match_reference = true;
  {
    SeedMinEngine engine(*graph, sat_options);
    std::vector<std::future<StatusOr<SolveResult>>> futures;
    futures.reserve(requests.size());
    for (const SolveRequest& request : requests) {
      futures.push_back(engine.SubmitAsync(request));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      const StatusOr<SolveResult> solved = futures[i].get();
      if (solved.ok()) {
        ++admitted;
        admitted_match_reference = admitted_match_reference &&
                                   OneResultChecksum(*solved) == reference_digests[i];
      } else {
        ASM_CHECK(solved.status().code() == StatusCode::kResourceExhausted)
            << solved.status().ToString();
        ++rejected;
      }
    }
    const AdmissionQueue::Stats stats = engine.admission_stats();
    ASM_CHECK(stats.rejected == rejected);
  }
  const size_t capacity = sat_drivers + sat_queue;
  std::cout << "\nSaturation burst (" << queries << " submissions at capacity "
            << capacity << " = " << sat_drivers << " drivers + " << sat_queue
            << " queue slots): " << admitted << " admitted, " << rejected
            << " rejected (ResourceExhausted)\n"
            << "Admitted results bit-identical to unsaturated runs: "
            << (admitted_match_reference ? "yes" : "NO — determinism violated")
            << "\n";
  deterministic = deterministic && admitted_match_reference;

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    ASM_CHECK(out.good()) << "cannot open --json path " << json_path;
    out << "{\n"
        << "  \"graph\": {\"nodes\": " << graph->NumNodes()
        << ", \"edges\": " << graph->NumEdges() << "},\n"
        << "  \"model\": \"" << DiffusionModelName(model) << "\",\n"
        << "  \"eta\": " << eta << ",\n"
        << "  \"queries_per_level\": " << queries << ",\n"
        << "  \"pool_threads\": " << pool_threads << ",\n"
        << "  \"levels\": [";
    for (size_t i = 0; i < rows.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n")
          << "    {\"clients\": " << rows[i].clients
          << ", \"drivers\": " << rows[i].drivers
          << ", \"queries_per_s\": " << rows[i].rate
          << ", \"speedup\": " << rows[i].speedup
          << ", \"checksum\": " << rows[i].checksum << "}";
    }
    out << "\n  ],\n"
        << "  \"saturation\": {\"capacity\": " << capacity
        << ", \"drivers\": " << sat_drivers << ", \"queue_depth\": " << sat_queue
        << ", \"submitted\": " << queries << ", \"admitted\": " << admitted
        << ", \"rejected\": " << rejected << "},\n"
        << "  \"deterministic\": " << (deterministic ? "true" : "false") << "\n"
        << "}\n";
  }
  return deterministic ? 0 : 1;
}
