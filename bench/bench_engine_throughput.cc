// SeedMinEngine serving throughput: queries/s vs concurrent clients.
//
// Not a paper figure — measures the src/api/ serving front. One resident
// engine (shared pool) serves Q mixed-algorithm SolveRequests at each
// requested client concurrency: C requests are kept in flight via
// SubmitAsync until the queue drains. Each request's RNG streams derive
// from its own seed, so the per-request results — and therefore the
// cross-client determinism checksum printed per row — must be identical at
// every concurrency level; the binary exits non-zero on a mismatch, like
// bench_parallel_scaling.
//
//   --clients 1,2,4,8     client concurrency levels to sweep
//   --queries 24          requests per level
//   --threads 0           engine pool size (0 = all cores, 1 = sequential)
//   --eta-fraction 0.05   per-request threshold
//   --scale 1.0           graph size multiplier
//   --model ic|lt

#include <chrono>
#include <cstdint>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/seedmin_engine.h"
#include "benchutil/cli.h"
#include "benchutil/table.h"
#include "benchutil/timer.h"
#include "graph/generators.h"
#include "util/check.h"

namespace asti {
namespace {

// Order-sensitive digest over every request's observable outcome.
uint64_t ResultChecksum(const std::vector<StatusOr<SolveResult>>& results) {
  uint64_t digest = 0xcbf29ce484222325ULL;
  auto mix = [&digest](uint64_t word) {
    word *= 0x100000001b3ULL;
    digest ^= word + (digest << 6) + (digest >> 2);
  };
  for (const StatusOr<SolveResult>& solved : results) {
    ASM_CHECK(solved.ok()) << solved.status().ToString();
    for (const AdaptiveRunTrace& trace : solved->traces) {
      for (NodeId seed : trace.seeds) mix(seed);
      mix(trace.total_activated);
    }
    for (size_t count : solved->seed_counts) mix(count);
  }
  return digest;
}

}  // namespace
}  // namespace asti

int main(int argc, char** argv) {
  using namespace asti;
  const CommandLine cli(argc, argv);
  const double scale = EnvDouble("ASM_BENCH_SCALE", cli.GetDouble("scale", 1.0));
  const size_t queries = EnvSize("ASM_BENCH_QUERIES",
                                 static_cast<size_t>(cli.GetInt("queries", 24)));
  ASM_CHECK(queries >= 1) << "--queries must be >= 1";
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 7));
  const DiffusionModel model = cli.GetString("model", "ic") == "lt"
                                   ? DiffusionModel::kLinearThreshold
                                   : DiffusionModel::kIndependentCascade;
  const std::vector<size_t> client_counts =
      ParseSizeList(cli.GetString("clients", "1,2,4,8"), "--clients", 1);
  const size_t pool_threads = NumThreadsOverride(cli, 0);

  // Power-law generator graph, the regime of the paper's datasets.
  const NodeId n = static_cast<NodeId>(8000 * scale);
  const size_t m = static_cast<size_t>(48000 * scale);
  Rng graph_rng(seed);
  auto graph = BuildWeightedGraph(MakeChungLu(n, m, 2.1, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASM_CHECK(graph.ok()) << graph.status().ToString();
  const NodeId eta = std::max<NodeId>(
      1, static_cast<NodeId>(cli.GetDouble("eta-fraction", 0.05) *
                             graph->NumNodes()));

  // The request mix: the TRIM family plus the degree heuristic, each query
  // with its own seed (query i is reproducible in isolation).
  const AlgorithmId mix[] = {AlgorithmId::kAsti, AlgorithmId::kAsti4,
                             AlgorithmId::kDegree};
  std::vector<SolveRequest> requests;
  for (size_t i = 0; i < queries; ++i) {
    SolveRequest request;
    request.algorithm = mix[i % (sizeof(mix) / sizeof(mix[0]))];
    request.model = model;
    request.eta = eta;
    request.seed = seed + 1000 + i;
    request.keep_traces = true;  // checksummed
    requests.push_back(request);
  }

  SeedMinEngine engine(*graph, {pool_threads});
  std::cout << "SeedMinEngine serving throughput on Chung-Lu graph (n="
            << graph->NumNodes() << ", m=" << graph->NumEdges()
            << ", model=" << DiffusionModelName(model) << ", eta=" << eta
            << ", queries/level=" << queries << ", pool="
            << (engine.pool() != nullptr ? engine.pool()->NumThreads() : 1)
            << " threads)\n\n";

  TextTable table({"clients", "queries/s", "speedup", "checksum"});
  double base_rate = 0.0;
  uint64_t reference_checksum = 0;
  bool deterministic = true;
  for (size_t clients : client_counts) {
    std::vector<StatusOr<SolveResult>> results;
    for (size_t i = 0; i < requests.size(); ++i) {
      results.emplace_back(Status::Internal("not served"));
    }
    WallTimer timer;
    // Sliding window: keep `clients` requests in flight until all served.
    // Harvest ANY ready future (not just the oldest) so one slow request
    // can't head-of-line-block the window and under-fill the concurrency
    // level being measured.
    std::vector<std::pair<size_t, std::future<StatusOr<SolveResult>>>> in_flight;
    size_t next = 0;
    while (next < requests.size() || !in_flight.empty()) {
      while (next < requests.size() && in_flight.size() < clients) {
        in_flight.emplace_back(next, engine.SubmitAsync(requests[next]));
        ++next;
      }
      bool harvested = false;
      for (size_t j = 0; j < in_flight.size(); ++j) {
        if (in_flight[j].second.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
          results[in_flight[j].first] = in_flight[j].second.get();
          in_flight.erase(in_flight.begin() + static_cast<ptrdiff_t>(j));
          harvested = true;
          break;
        }
      }
      if (!harvested) {
        in_flight.front().second.wait_for(std::chrono::milliseconds(1));
      }
    }
    const double seconds = timer.Seconds();
    const uint64_t checksum = ResultChecksum(results);
    if (reference_checksum == 0) reference_checksum = checksum;
    deterministic = deterministic && checksum == reference_checksum;
    const double rate = static_cast<double>(queries) / seconds;
    if (base_rate == 0.0) base_rate = rate;
    table.AddRow({std::to_string(clients), FormatDouble(rate, 1),
                  FormatDouble(rate / base_rate) + "x",
                  std::to_string(checksum % 1000000)});
  }
  table.Print(std::cout);
  std::cout << "\nResult checksum identical across client counts: "
            << (deterministic ? "yes" : "NO — determinism violated") << "\n";
  return deterministic ? 0 : 1;
}
