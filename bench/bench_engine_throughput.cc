// SeedMinEngine serving throughput: queries/s vs concurrent drivers, an
// admission-saturation measurement, and a multi-graph mixed-workload
// phase over the GraphCatalog.
//
// Not a paper figure — measures the src/api/ serving front. One resident
// engine (catalog + shared pool + admission queue) serves Q
// mixed-algorithm SolveRequests at each requested driver concurrency: all
// requests are submitted up front and the engine's fixed driver pool is
// the concurrency bound (no per-request threads since the admission
// rework). Each request's RNG streams derive from its own seed, so the
// per-request results — and therefore the cross-client determinism
// checksum printed per row — must be identical at every concurrency
// level; the binary exits non-zero on a mismatch, like
// bench_parallel_scaling.
//
// The saturation phase rebuilds the engine with a deliberately tiny
// admission capacity and rejection (non-blocking) policy, bursts every
// query at it, and reports admitted/rejected counts — the backpressure a
// real traffic front sees — re-checking that every admitted result is
// bit-identical to its unsaturated run.
//
// The hot-repeat phase runs the same query set twice on one resident
// engine: the cold pass seeds the per-(graph, epoch) sampler cache, the
// warm pass reads its sealed prefixes. It reports cold vs warm queries/s
// and the warm cache hit rate, and re-checks that warm results are
// bit-identical to cold ones (the certified-reuse contract).
//
// The cold-start phase writes the main graph to disk twice — a legacy
// ASMG v1 edge file and an ASMS snapshot (src/store/) — and times both
// registration paths into fresh catalogs: ASMG pays an O(m) parse plus
// reverse-CSR rebuild, the snapshot registers by mmap with O(sections)
// structural validation, so its time stays flat as the graph grows. It
// also measures time-to-first-solve each way and a warm start: sealed RR
// prefixes saved by a seeded engine are adopted by a process-fresh
// engine built from the file alone, which must reproduce the reference
// results bit-for-bit while hitting the adopted cache.
//
// The mixed-workload phase routes one request stream round-robin across
// the --graphs catalog entries on ONE engine, reports per-graph queries/s,
// and re-checks the multi-tenant determinism contract: each result must be
// bit-identical to its solo run on the same snapshot, even while an
// unrelated graph is hot-swapped (GraphCatalog::Swap) mid-workload.
//
// The sharded-serving phase registers the main snapshot behind a
// --shards-way ShardTopology (src/shard/) in a fresh catalog and reruns
// the sweep's query set: every result must be bit-identical to the
// unsharded reference digests, and the per-shard RR-set counters from the
// engine's metrics must all be nonzero (work actually fanned out).
//
// The churn phase is the production load harness for dynamic graphs
// (src/delta/): an OPEN-LOOP trace — Poisson arrivals submitted on
// schedule regardless of completions, so queueing is visible instead of
// absorbed by a closed loop — runs against one engine while a churner
// thread mints new epochs mid-run (MakeRandomDelta + SwapWithDelta).
// In-flight requests finish on their pinned epochs; the phase reports
// request p50/p99/p999 from the engine's histograms, the swap-blackout
// quantiles (wall time inside GraphCatalog::Swap), and checks that the
// post-churn catalog graph is DIGEST-IDENTICAL to replaying the same
// deltas through the from-scratch GraphBuilder rebuild path.
//
//   --clients 1,2,4,8     driver-concurrency levels to sweep
//   --queries 24          requests per level
//   --threads 0           engine pool size (0 = all cores, 1 = sequential)
//   --drivers 0           driver threads (0 = match the client level)
//   --queue-depth 64      waiting-room slots beyond the drivers
//   --sat-drivers 2       saturation phase: driver threads
//   --sat-queue 4         saturation phase: waiting-room slots
//   --graph bench-a       catalog graph for the sweep/saturation phases
//   --graphs bench-a,bench-b
//                         graphs for the mixed-workload phase; built-in
//                         dataset names register their surrogates on demand
//   --shards 2            shard count for the sharded-serving phase (the
//                         phase always runs with at least 2 shards)
//   --churn-queries Q     churn phase: open-loop arrivals (default --queries)
//   --churn-deltas D      churn phase: epoch-minting deltas applied mid-run
//                         (default 3)
//   --churn-rate R        churn phase: offered arrival rate in queries/s
//                         (default: the hot-repeat cold rate, floor 1)
//   --eta-fraction 0.05   per-request threshold
//   --snapshot-dir DIR    where the cold-start phase writes its temp
//                         graph files (default: system temp dir)
//   --scale 1.0           graph size multiplier
//   --model ic|lt
//   --json PATH           machine-readable results (CI artifact)
//   --metrics-out PATH    dump the mixed-phase engine's metrics snapshot
//                         in Prometheus text format (CI artifact)
//
// Latency columns (p50/p99/p999 per level, per-graph queue wait, and the
// hot-swap blackout) come from the engine's metrics_snapshot() histograms
// — the same numbers a production scrape would see — not from bench-side
// timing.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/graph_catalog.h"
#include "api/seedmin_engine.h"
#include "api/snapshot_serving.h"
#include "delta/apply.h"
#include "delta/catalog_delta.h"
#include "delta/churn.h"
#include "benchutil/cli.h"
#include "benchutil/table.h"
#include "benchutil/timer.h"
#include "graph/binary_io.h"
#include "graph/generators.h"
#include "obs/export.h"
#include "obs/histogram.h"
#include "shard/topology.h"
#include "store/snapshot_store.h"
#include "util/check.h"

namespace asti {
namespace {

// Order-sensitive digest over one request's observable outcome, including
// the snapshot identity the engine reports back.
uint64_t OneResultChecksum(const SolveResult& result) {
  uint64_t digest = 0xcbf29ce484222325ULL;
  auto mix = [&digest](uint64_t word) {
    word *= 0x100000001b3ULL;
    digest ^= word + (digest << 6) + (digest >> 2);
  };
  for (const AdaptiveRunTrace& trace : result.traces) {
    for (NodeId seed : trace.seeds) mix(seed);
    mix(trace.total_activated);
  }
  for (size_t count : result.seed_counts) mix(count);
  mix(result.graph_epoch);
  for (char c : result.graph_name) mix(static_cast<uint64_t>(c));
  return digest;
}

// Combined digest across every request, in request order.
uint64_t BatchChecksum(const std::vector<uint64_t>& per_request) {
  uint64_t digest = 0x84222325cbf29ce4ULL;
  for (uint64_t word : per_request) {
    word *= 0x100000001b3ULL;
    digest ^= word + (digest << 6) + (digest >> 2);
  }
  return digest;
}

struct LevelRow {
  size_t clients = 0;
  size_t drivers = 0;
  double rate = 0.0;
  double speedup = 1.0;
  uint64_t checksum = 0;
  // Request-latency quantiles from the engine's metrics histograms, in
  // seconds (merged across all (graph, algorithm) label sets).
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

struct MixedGraphRow {
  std::string name;
  size_t queries = 0;
  double rate = 0.0;
  uint64_t checksum = 0;
  // Queue-wait quantiles for requests routed to this graph, in seconds.
  double queue_p50 = 0.0;
  double queue_p99 = 0.0;
};

constexpr double kNanos = 1e-9;

// Quantile of a merged nanosecond histogram, in seconds.
double QuantileSeconds(const HistogramData& data, double q) {
  return data.Count() == 0 ? 0.0 : static_cast<double>(data.Quantile(q)) * kNanos;
}

}  // namespace
}  // namespace asti

int main(int argc, char** argv) {
  using namespace asti;
  const CommandLine cli(argc, argv);
  const double scale = EnvDouble("ASM_BENCH_SCALE", cli.GetDouble("scale", 1.0));
  const size_t queries = EnvSize("ASM_BENCH_QUERIES",
                                 static_cast<size_t>(cli.GetInt("queries", 24)));
  ASM_CHECK(queries >= 1) << "--queries must be >= 1";
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 7));
  const DiffusionModel model = cli.GetString("model", "ic") == "lt"
                                   ? DiffusionModel::kLinearThreshold
                                   : DiffusionModel::kIndependentCascade;
  const std::vector<size_t> client_counts =
      ParseSizeList(cli.GetString("clients", "1,2,4,8"), "--clients", 1);
  const size_t pool_threads = NumThreadsOverride(cli, 0);
  // Guarded casts: a negative flag must fail readably, not wrap to ~2^64
  // drivers/slots and crash the engine constructor.
  auto count_flag = [&cli](const char* name, int64_t fallback) {
    const int64_t value = cli.GetInt(name, fallback);
    ASM_CHECK(value >= 0) << "--" << name << " must be >= 0, got " << value;
    return static_cast<size_t>(value);
  };
  const size_t drivers_override = count_flag("drivers", 0);
  const size_t queue_depth = count_flag("queue-depth", 64);
  const size_t sat_drivers = count_flag("sat-drivers", 2);
  const size_t sat_queue = count_flag("sat-queue", 4);
  const std::string json_path = cli.GetString("json", "");
  const double eta_fraction = cli.GetDouble("eta-fraction", 0.05);
  // Shared --graph/--graphs/--shards parsing (benchutil/cli).
  const GraphFlagSelection graph_flags =
      ParseGraphFlags(cli, "bench-a", "bench-a,bench-b");

  // The serving catalog. Two built-in power-law generator graphs (the
  // regime of the paper's datasets) with different structure seeds;
  // further names requested via --graph/--graphs register the matching
  // dataset surrogate on demand.
  GraphCatalog catalog;
  {
    Rng rng_a(seed);
    auto bench_a =
        BuildWeightedGraph(MakeChungLu(static_cast<NodeId>(8000 * scale),
                                       static_cast<size_t>(48000 * scale), 2.1, rng_a),
                           WeightScheme::kWeightedCascade);
    ASM_CHECK(bench_a.ok()) << bench_a.status().ToString();
    ASM_CHECK(catalog.Register("bench-a", std::move(bench_a).value()).ok());
    Rng rng_b(seed + 1);
    auto bench_b =
        BuildWeightedGraph(MakeChungLu(static_cast<NodeId>(6000 * scale),
                                       static_cast<size_t>(30000 * scale), 2.3, rng_b),
                           WeightScheme::kWeightedCascade);
    ASM_CHECK(bench_b.ok()) << bench_b.status().ToString();
    ASM_CHECK(catalog.Register("bench-b", std::move(bench_b).value()).ok());
  }
  auto ensure_graph = [&catalog, scale, seed](const std::string& name) -> GraphRef {
    if (auto ref = catalog.Get(name); ref.ok()) return *ref;
    auto id = DatasetIdFromName(name);
    ASM_CHECK(id.ok()) << "--graph(s) name '" << name
                       << "' is neither a registered bench graph nor a built-in "
                          "dataset: " << id.status().ToString();
    // Dataset names are case-insensitive but register under the canonical
    // lowercase spelling — look that up before registering so resolving
    // the same dataset twice reuses the entry instead of colliding.
    if (auto ref = catalog.Get(CanonicalDatasetName(*id)); ref.ok()) return *ref;
    auto registered = RegisterSurrogate(catalog, *id, scale, seed);
    ASM_CHECK(registered.ok()) << registered.status().ToString();
    return *registered;
  };
  auto eta_for = [eta_fraction](const GraphRef& ref) {
    return std::max<NodeId>(1, static_cast<NodeId>(eta_fraction *
                                                   static_cast<double>(ref.num_nodes())));
  };

  const GraphRef main_graph = ensure_graph(graph_flags.graph);
  const NodeId eta = eta_for(main_graph);

  // The request mix: the TRIM family plus the degree heuristic, each query
  // with its own seed (query i is reproducible in isolation).
  const AlgorithmId mix[] = {AlgorithmId::kAsti, AlgorithmId::kAsti4,
                             AlgorithmId::kDegree};
  std::vector<SolveRequest> requests;
  for (size_t i = 0; i < queries; ++i) {
    SolveRequest request;
    request.graph = main_graph.name();
    request.algorithm = mix[i % (sizeof(mix) / sizeof(mix[0]))];
    request.model = model;
    request.eta = eta;
    request.seed = seed + 1000 + i;
    request.keep_traces = true;  // checksummed
    requests.push_back(request);
  }

  std::cout << "SeedMinEngine serving throughput on catalog graph '"
            << main_graph.name() << "' (n=" << main_graph.num_nodes()
            << ", m=" << main_graph.num_edges()
            << ", model=" << DiffusionModelName(model) << ", eta=" << eta
            << ", queries/level=" << queries << ", pool threads="
            << (pool_threads == 0 ? std::string("hw") : std::to_string(pool_threads))
            << ", queue depth=" << queue_depth << ")\n\n";

  TextTable table({"clients", "drivers", "queries/s", "speedup", "p50 ms",
                   "p99 ms", "p999 ms", "checksum"});
  std::vector<LevelRow> rows;
  std::vector<uint64_t> reference_digests;  // per request, from level 1
  double base_rate = 0.0;
  uint64_t reference_checksum = 0;
  bool deterministic = true;
  for (size_t clients : client_counts) {
    // The engine's driver pool IS the concurrency under test: D drivers
    // execute admitted requests, blocking admission absorbs the rest.
    SeedMinEngine::ServingOptions options;
    options.num_threads = pool_threads;
    options.num_drivers = drivers_override != 0 ? drivers_override : clients;
    options.max_queue_depth = std::max(queue_depth, queries);  // never reject here
    options.block_when_full = true;
    SeedMinEngine engine(catalog, options);

    WallTimer timer;
    std::vector<std::future<StatusOr<SolveResult>>> futures;
    futures.reserve(requests.size());
    for (const SolveRequest& request : requests) {
      futures.push_back(engine.SubmitAsync(request));
    }
    std::vector<uint64_t> digests;
    digests.reserve(futures.size());
    for (auto& future : futures) {
      const StatusOr<SolveResult> solved = future.get();
      ASM_CHECK(solved.ok()) << solved.status().ToString();
      digests.push_back(OneResultChecksum(*solved));
    }
    const double seconds = timer.Seconds();

    // End-to-end request latency as the engine's own histograms saw it,
    // merged across all (graph, algorithm) label sets of this level.
    const MetricsSnapshot snapshot = engine.metrics_snapshot();
    const HistogramData latency =
        snapshot.MergedHistogram("asti_request_latency_seconds");

    const uint64_t checksum = BatchChecksum(digests);
    if (reference_digests.empty()) {
      reference_digests = digests;
      reference_checksum = checksum;
    }
    deterministic = deterministic && checksum == reference_checksum;
    const double rate = static_cast<double>(queries) / seconds;
    if (base_rate == 0.0) base_rate = rate;
    LevelRow row;
    row.clients = clients;
    row.drivers = options.num_drivers;
    row.rate = rate;
    row.speedup = rate / base_rate;
    row.checksum = checksum;
    row.p50 = QuantileSeconds(latency, 0.50);
    row.p99 = QuantileSeconds(latency, 0.99);
    row.p999 = QuantileSeconds(latency, 0.999);
    rows.push_back(row);
    table.AddRow({std::to_string(clients), std::to_string(row.drivers),
                  FormatDouble(rate, 1), FormatDouble(row.speedup) + "x",
                  FormatDouble(row.p50 * 1e3), FormatDouble(row.p99 * 1e3),
                  FormatDouble(row.p999 * 1e3),
                  std::to_string(checksum % 1000000)});
  }
  table.Print(std::cout);
  std::cout << "\nResult checksum identical across client counts: "
            << (deterministic ? "yes" : "NO — determinism violated") << "\n";

  // --- Saturation: burst everything at a tiny rejecting queue ------------
  SeedMinEngine::ServingOptions sat_options;
  sat_options.num_threads = pool_threads;
  sat_options.num_drivers = sat_drivers;
  sat_options.max_queue_depth = sat_queue;
  sat_options.block_when_full = false;  // rejection is the point
  size_t admitted = 0;
  size_t rejected = 0;
  bool admitted_match_reference = true;
  {
    SeedMinEngine engine(catalog, sat_options);
    std::vector<std::future<StatusOr<SolveResult>>> futures;
    futures.reserve(requests.size());
    for (const SolveRequest& request : requests) {
      futures.push_back(engine.SubmitAsync(request));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      const StatusOr<SolveResult> solved = futures[i].get();
      if (solved.ok()) {
        ++admitted;
        admitted_match_reference = admitted_match_reference &&
                                   OneResultChecksum(*solved) == reference_digests[i];
      } else {
        ASM_CHECK(solved.status().code() == StatusCode::kResourceExhausted)
            << solved.status().ToString();
        ++rejected;
      }
    }
    const SeedMinEngine::EngineStats stats = engine.admission_stats();
    ASM_CHECK(stats.queue.rejected == rejected);
  }
  const size_t capacity = sat_drivers + sat_queue;
  std::cout << "\nSaturation burst (" << queries << " submissions at capacity "
            << capacity << " = " << sat_drivers << " drivers + " << sat_queue
            << " queue slots): " << admitted << " admitted, " << rejected
            << " rejected (ResourceExhausted)\n"
            << "Admitted results bit-identical to unsaturated runs: "
            << (admitted_match_reference ? "yes" : "NO — determinism violated")
            << "\n";
  deterministic = deterministic && admitted_match_reference;

  // --- Hot repeat: cold vs warm sampler cache on one resident engine ------
  // The same query set twice on ONE engine: the first pass pays the
  // full-residual sampling and seeds the per-graph sampler cache, the
  // second rides its sealed prefixes. Reported: queries/s cold vs warm,
  // and the warm pass's cache hit rate among cache-using requests (the
  // degree heuristic never samples). Results must be bit-identical across
  // the two passes — that is the certified-reuse contract.
  double cold_rate = 0.0;
  double warm_rate = 0.0;
  double warm_hit_rate = 0.0;
  size_t warm_cache_users = 0;
  bool repeat_deterministic = true;
  {
    SeedMinEngine::ServingOptions options;
    options.num_threads = pool_threads;
    options.num_drivers =
        drivers_override != 0 ? drivers_override : client_counts.back();
    options.max_queue_depth = std::max(queue_depth, queries);
    options.block_when_full = true;
    SeedMinEngine engine(catalog, options);
    size_t warm_hits = 0;
    auto pass = [&](bool warm) -> double {
      WallTimer timer;
      std::vector<std::future<StatusOr<SolveResult>>> futures;
      futures.reserve(requests.size());
      for (const SolveRequest& request : requests) {
        futures.push_back(engine.SubmitAsync(request));
      }
      for (size_t i = 0; i < futures.size(); ++i) {
        const StatusOr<SolveResult> solved = futures[i].get();
        ASM_CHECK(solved.ok()) << solved.status().ToString();
        repeat_deterministic = repeat_deterministic &&
                               OneResultChecksum(*solved) == reference_digests[i];
        if (warm) {
          const RequestProfile& profile = solved->profile;
          if (profile.sets_reused + profile.sets_extended > 0) {
            ++warm_cache_users;
            if (profile.cache_hit) ++warm_hits;
          }
        }
      }
      return static_cast<double>(queries) / timer.Seconds();
    };
    cold_rate = pass(/*warm=*/false);
    warm_rate = pass(/*warm=*/true);
    warm_hit_rate = warm_cache_users == 0
                        ? 0.0
                        : static_cast<double>(warm_hits) /
                              static_cast<double>(warm_cache_users);
  }
  std::cout << "\nHot repeat on one engine (sampler cache cold -> warm): "
            << FormatDouble(cold_rate, 1) << " -> " << FormatDouble(warm_rate, 1)
            << " queries/s (" << FormatDouble(warm_rate / cold_rate) << "x), warm "
               "hit rate "
            << FormatDouble(warm_hit_rate) << " over " << warm_cache_users
            << " cache-using queries\n"
            << "Warm results bit-identical to cold runs: "
            << (repeat_deterministic ? "yes" : "NO — determinism violated") << "\n";
  deterministic = deterministic && repeat_deterministic;

  // --- Cold start: parse-register vs mmap-register from disk --------------
  // The main graph goes to disk twice: a legacy ASMG v1 edge file and an
  // ASMS snapshot. Registering from the ASMG file pays an O(m) parse plus
  // the reverse-CSR rebuild; RegisterSnapshotFile maps the ASMS file and
  // validates O(sections) structurally, so its cost stays flat as m grows.
  // Both paths are timed as min-over-repeats (registration only) and as
  // time-to-first-solve (registration + one query on a fresh engine), and
  // the mmap-backed result must be bit-identical to the heap-backed
  // reference digest. The warm-start leg then saves a snapshot WITH the
  // sealed RR prefixes of a seeded engine, reopens it in a fresh
  // catalog+engine, and reruns the whole query set: results must match the
  // reference digests while the first pass rides the adopted prefixes.
  double parse_register_s = std::numeric_limits<double>::infinity();
  double mmap_register_s = std::numeric_limits<double>::infinity();
  double parse_first_solve_s = 0.0;
  double mmap_first_solve_s = 0.0;
  double warm_start_hit_rate = 0.0;
  size_t warm_start_cache_users = 0;
  uint64_t warm_sets_adopted = 0;
  bool cold_start_deterministic = true;
  {
    const std::filesystem::path snapshot_dir =
        cli.Has("snapshot-dir")
            ? std::filesystem::path(cli.GetString("snapshot-dir", ""))
            : std::filesystem::temp_directory_path() / "asti_bench_cold_start";
    std::filesystem::create_directories(snapshot_dir);
    const std::string asmg_path = (snapshot_dir / "cold-start.asmg").string();
    const std::string asms_path = (snapshot_dir / "cold-start.asms").string();
    const std::string warm_path = (snapshot_dir / "cold-start-warm.asms").string();
    ASM_CHECK(SaveGraphBinary(main_graph.graph(), asmg_path).ok());
    {
      const Status saved =
          store::WriteSnapshot(main_graph.graph(), main_graph.name(),
                               main_graph.weight_scheme(), {}, asms_path);
      ASM_CHECK(saved.ok()) << saved.ToString();
    }

    // Registration only, min over repeats (denoises fs cache warmup).
    constexpr int kColdRepeats = 5;
    for (int repeat = 0; repeat < kColdRepeats; ++repeat) {
      {
        GraphCatalog fresh;
        WallTimer timer;
        auto loaded = LoadGraphBinary(asmg_path);
        ASM_CHECK(loaded.ok()) << loaded.status().ToString();
        ASM_CHECK(fresh.Register(main_graph.name(), std::move(*loaded),
                                 main_graph.weight_scheme())
                      .ok());
        parse_register_s = std::min(parse_register_s, timer.Seconds());
      }
      {
        GraphCatalog fresh;
        WallTimer timer;
        const auto registered = RegisterSnapshotFile(fresh, asms_path);
        ASM_CHECK(registered.ok()) << registered.status().ToString();
        mmap_register_s = std::min(mmap_register_s, timer.Seconds());
      }
    }

    // Time-to-first-solve: register + one query on a fresh engine. The
    // mmap path's result is checked against the heap-backed reference.
    auto first_solve = [&](bool use_mmap) {
      GraphCatalog fresh;
      WallTimer timer;
      if (use_mmap) {
        const auto registered = RegisterSnapshotFile(fresh, asms_path);
        ASM_CHECK(registered.ok()) << registered.status().ToString();
      } else {
        auto loaded = LoadGraphBinary(asmg_path);
        ASM_CHECK(loaded.ok()) << loaded.status().ToString();
        ASM_CHECK(fresh.Register(main_graph.name(), std::move(*loaded),
                                 main_graph.weight_scheme())
                      .ok());
      }
      SeedMinEngine::ServingOptions options;
      options.num_threads = pool_threads;
      SeedMinEngine engine(fresh, options);
      const StatusOr<SolveResult> solved = engine.Solve(requests.front());
      ASM_CHECK(solved.ok()) << solved.status().ToString();
      const double seconds = timer.Seconds();
      cold_start_deterministic =
          cold_start_deterministic &&
          OneResultChecksum(*solved) == reference_digests.front();
      return seconds;
    };
    parse_first_solve_s = first_solve(/*use_mmap=*/false);
    mmap_first_solve_s = first_solve(/*use_mmap=*/true);

    // Warm start: seed a cache, persist its sealed prefixes, adopt them in
    // a process-fresh catalog+engine built from the file alone.
    {
      GraphCatalog seeding_catalog;
      const auto registered = RegisterSnapshotFile(seeding_catalog, asms_path);
      ASM_CHECK(registered.ok()) << registered.status().ToString();
      SeedMinEngine::ServingOptions options;
      options.num_threads = pool_threads;
      SeedMinEngine seeding_engine(seeding_catalog, options);
      for (const SolveRequest& request : requests) {
        const StatusOr<SolveResult> solved = seeding_engine.Solve(request);
        ASM_CHECK(solved.ok()) << solved.status().ToString();
      }
      const Status saved =
          seeding_engine.SaveSnapshot(main_graph.name(), warm_path);
      ASM_CHECK(saved.ok()) << saved.ToString();
    }
    {
      GraphCatalog warm_catalog;
      const auto registered = RegisterSnapshotFile(warm_catalog, warm_path);
      ASM_CHECK(registered.ok()) << registered.status().ToString();
      SeedMinEngine::ServingOptions options;
      options.num_threads = pool_threads;
      SeedMinEngine engine(warm_catalog, options);
      size_t warm_hits = 0;
      for (size_t i = 0; i < requests.size(); ++i) {
        const StatusOr<SolveResult> solved = engine.Solve(requests[i]);
        ASM_CHECK(solved.ok()) << solved.status().ToString();
        cold_start_deterministic = cold_start_deterministic &&
                                   OneResultChecksum(*solved) ==
                                       reference_digests[i];
        const RequestProfile& profile = solved->profile;
        if (profile.sets_reused + profile.sets_extended > 0) {
          ++warm_start_cache_users;
          if (profile.cache_hit) ++warm_hits;
        }
      }
      warm_start_hit_rate = warm_start_cache_users == 0
                                ? 0.0
                                : static_cast<double>(warm_hits) /
                                      static_cast<double>(warm_start_cache_users);
      const MetricsSnapshot warm_metrics = engine.metrics_snapshot();
      for (const CounterSample& counter : warm_metrics.counters) {
        if (counter.name == "asti_sampler_cache_sets_adopted_total") {
          warm_sets_adopted += counter.value;
        }
      }
    }
    std::filesystem::remove(asmg_path);
    std::filesystem::remove(asms_path);
    std::filesystem::remove(warm_path);
  }
  std::cout << "\nCold start (register '" << main_graph.name()
            << "' from disk, min of 5): parse+rebuild "
            << FormatDouble(parse_register_s * 1e3) << "ms vs mmap "
            << FormatDouble(mmap_register_s * 1e3) << "ms ("
            << FormatDouble(mmap_register_s > 0.0
                                ? parse_register_s / mmap_register_s
                                : 0.0)
            << "x); first solve " << FormatDouble(parse_first_solve_s * 1e3)
            << "ms vs " << FormatDouble(mmap_first_solve_s * 1e3) << "ms\n"
            << "Warm start from persisted prefixes: hit rate "
            << FormatDouble(warm_start_hit_rate) << " over "
            << warm_start_cache_users << " cache-using queries, "
            << warm_sets_adopted << " sets adopted\n"
            << "Snapshot-served results bit-identical to heap-backed runs: "
            << (cold_start_deterministic ? "yes" : "NO — determinism violated")
            << "\n";
  deterministic = deterministic && cold_start_deterministic;

  // --- Mixed workload: one engine, many graphs, hot-swap under load ------
  const std::vector<std::string>& mixed_names = graph_flags.graphs;
  std::vector<GraphRef> mixed_refs;
  mixed_refs.reserve(mixed_names.size());
  for (const std::string& name : mixed_names) mixed_refs.push_back(ensure_graph(name));

  std::vector<SolveRequest> mixed_requests;
  for (size_t i = 0; i < queries; ++i) {
    const GraphRef& ref = mixed_refs[i % mixed_refs.size()];
    SolveRequest request;
    request.graph = ref.name();
    request.algorithm = mix[i % (sizeof(mix) / sizeof(mix[0]))];
    request.model = model;
    request.eta = eta_for(ref);
    request.seed = seed + 5000 + i;
    request.keep_traces = true;
    mixed_requests.push_back(request);
  }

  // Solo reference pass: every mixed request on its own, no interleaving.
  std::vector<uint64_t> mixed_solo;
  {
    SeedMinEngine::ServingOptions options;
    options.num_threads = pool_threads;
    SeedMinEngine engine(catalog, options);
    for (const SolveRequest& request : mixed_requests) {
      const StatusOr<SolveResult> solved = engine.Solve(request);
      ASM_CHECK(solved.ok()) << solved.status().ToString();
      mixed_solo.push_back(OneResultChecksum(*solved));
    }
  }

  // Interleaved pass on one multi-tenant engine, with an unrelated graph
  // being hot-swapped while the workload drains: the pinned-snapshot
  // contract says no result may move.
  size_t hot_swap_epochs = 0;
  std::map<std::string, MixedGraphRow> per_graph;
  bool mixed_deterministic = true;
  // Wall time each GraphCatalog::Swap holds the workload's attention: the
  // "blackout" during which a lookup of the swapped name could observe
  // neither the old epoch retired nor the new one published. Recorded in
  // an obs histogram so the same merge/quantile path as the engine metrics
  // reports it.
  LogHistogram swap_blackout;
  MetricsSnapshot mixed_snapshot;
  {
    Rng hot_rng(seed + 99);
    auto hot = BuildWeightedGraph(
        MakeChungLu(std::max<NodeId>(64, static_cast<NodeId>(500 * scale)),
                    std::max<size_t>(128, static_cast<size_t>(2000 * scale)), 2.1,
                    hot_rng),
        WeightScheme::kWeightedCascade);
    ASM_CHECK(hot.ok()) << hot.status().ToString();
    ASM_CHECK(catalog.Register("hot-swap-target", std::move(*hot)).ok());

    SeedMinEngine::ServingOptions options;
    options.num_threads = pool_threads;
    options.num_drivers =
        drivers_override != 0 ? drivers_override : client_counts.back();
    options.max_queue_depth = std::max(queue_depth, queries);
    options.block_when_full = true;
    SeedMinEngine engine(catalog, options);

    WallTimer timer;
    std::vector<std::future<StatusOr<SolveResult>>> futures;
    futures.reserve(mixed_requests.size());
    for (const SolveRequest& request : mixed_requests) {
      futures.push_back(engine.SubmitAsync(request));
    }
    // Swap the unrelated graph a few times while requests are in flight.
    for (size_t swap = 0; swap < 3; ++swap) {
      Rng swap_rng(seed + 200 + swap);
      auto replacement = BuildWeightedGraph(
          MakeChungLu(std::max<NodeId>(64, static_cast<NodeId>(500 * scale)),
                      std::max<size_t>(128, static_cast<size_t>(2000 * scale)), 2.1,
                      swap_rng),
          WeightScheme::kWeightedCascade);
      ASM_CHECK(replacement.ok()) << replacement.status().ToString();
      WallTimer swap_timer;
      const auto swapped =
          catalog.Swap("hot-swap-target", std::move(*replacement));
      swap_blackout.Record(static_cast<uint64_t>(swap_timer.Seconds() / kNanos));
      ASM_CHECK(swapped.ok()) << swapped.status().ToString();
      hot_swap_epochs = swapped->epoch();
    }
    std::vector<std::vector<uint64_t>> digests_by_graph;
    for (size_t i = 0; i < futures.size(); ++i) {
      const StatusOr<SolveResult> solved = futures[i].get();
      ASM_CHECK(solved.ok()) << solved.status().ToString();
      const uint64_t digest = OneResultChecksum(*solved);
      mixed_deterministic = mixed_deterministic && digest == mixed_solo[i];
      MixedGraphRow& row = per_graph[solved->graph_name];
      row.name = solved->graph_name;
      ++row.queries;
      row.checksum ^= digest;
    }
    const double seconds = timer.Seconds();
    mixed_snapshot = engine.metrics_snapshot();
    for (auto& [name, row] : per_graph) {
      row.rate = static_cast<double>(row.queries) / seconds;
      const HistogramData waits =
          mixed_snapshot.MergedHistogram("asti_queue_wait_seconds", "graph", name);
      row.queue_p50 = QuantileSeconds(waits, 0.50);
      row.queue_p99 = QuantileSeconds(waits, 0.99);
    }
    ASM_CHECK(catalog.Retire("hot-swap-target").ok());
  }

  std::cout << "\nMixed workload (" << queries << " queries round-robin over "
            << mixed_refs.size() << " graphs, one engine, "
            << hot_swap_epochs - 1 << " hot-swaps of an unrelated graph):\n";
  TextTable mixed_table({"graph", "queries", "queries/s", "queue p50 ms",
                         "queue p99 ms", "checksum"});
  for (const auto& [name, row] : per_graph) {
    mixed_table.AddRow({row.name, std::to_string(row.queries),
                        FormatDouble(row.rate, 1),
                        FormatDouble(row.queue_p50 * 1e3),
                        FormatDouble(row.queue_p99 * 1e3),
                        std::to_string(row.checksum % 1000000)});
  }
  mixed_table.Print(std::cout);
  const HistogramData blackout = swap_blackout.Snapshot();
  std::cout << "Hot-swap blackout (catalog.Swap wall time): max="
            << FormatDouble(static_cast<double>(blackout.MaxValue()) * kNanos * 1e3)
            << "ms p50="
            << FormatDouble(QuantileSeconds(blackout, 0.50) * 1e3)
            << "ms over " << blackout.Count() << " swaps\n";
  std::cout << "Mixed results bit-identical to solo runs (per pinned "
               "snapshot): "
            << (mixed_deterministic ? "yes" : "NO — determinism violated") << "\n";
  deterministic = deterministic && mixed_deterministic;

  // --- Sharded serving: same snapshot behind a ShardTopology --------------
  // The main snapshot registers in a FRESH catalog under its own name with
  // a K-way plan (so the (name, epoch) identity the checksum mixes in
  // matches the unsharded reference), and the level-1 query set reruns on
  // it. The engine fans each request's RR-set ladder across per-shard
  // pools; the contract is bit-identity against `reference_digests`, with
  // the per-shard asti_shard_rr_sets_total counters proving the fan-out
  // actually happened.
  const uint32_t shard_count =
      graph_flags.shards > 1 ? graph_flags.shards : 2;
  double sharded_rate = 0.0;
  int64_t shard_imbalance_permille = 0;
  std::vector<uint64_t> per_shard_sets(shard_count, 0);
  bool sharded_deterministic = true;
  {
    GraphCatalog sharded_catalog;
    auto topology = MakeShardTopology(main_graph.graph(), shard_count);
    ASM_CHECK(topology.ok()) << topology.status().ToString();
    const auto registered = sharded_catalog.Register(
        main_graph.name(), main_graph.snapshot, main_graph.weight_scheme(),
        /*warm=*/nullptr, std::move(topology).value());
    ASM_CHECK(registered.ok()) << registered.status().ToString();
    ASM_CHECK(registered->epoch() == 1);  // digest-comparable to the reference

    SeedMinEngine::ServingOptions options;
    options.num_threads = pool_threads;
    options.num_drivers =
        drivers_override != 0 ? drivers_override : client_counts.back();
    options.max_queue_depth = std::max(queue_depth, queries);
    options.block_when_full = true;
    SeedMinEngine engine(sharded_catalog, options);

    WallTimer timer;
    std::vector<std::future<StatusOr<SolveResult>>> futures;
    futures.reserve(requests.size());
    for (const SolveRequest& request : requests) {
      futures.push_back(engine.SubmitAsync(request));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      const StatusOr<SolveResult> solved = futures[i].get();
      ASM_CHECK(solved.ok()) << solved.status().ToString();
      sharded_deterministic = sharded_deterministic &&
                              OneResultChecksum(*solved) == reference_digests[i];
    }
    sharded_rate = static_cast<double>(queries) / timer.Seconds();

    const MetricsSnapshot snapshot = engine.metrics_snapshot();
    for (const CounterSample& counter : snapshot.counters) {
      if (counter.name != "asti_shard_rr_sets_total") continue;
      for (const auto& [key, value] : counter.labels) {
        if (key != "shard") continue;
        const size_t shard = static_cast<size_t>(std::stoull(value));
        ASM_CHECK(shard < per_shard_sets.size());
        per_shard_sets[shard] += counter.value;
      }
    }
    for (const GaugeSample& gauge : snapshot.gauges) {
      if (gauge.name == "asti_shard_imbalance_permille") {
        shard_imbalance_permille = gauge.value;
      }
    }
  }
  bool all_shards_sampled = true;
  std::cout << "\nSharded serving (" << shard_count << " shards, same snapshot): "
            << FormatDouble(sharded_rate, 1) << " queries/s, per-shard RR sets";
  for (uint64_t sets : per_shard_sets) {
    std::cout << ' ' << sets;
    all_shards_sampled = all_shards_sampled && sets > 0;
  }
  std::cout << " (imbalance " << shard_imbalance_permille << " permille)\n"
            << "Sharded results bit-identical to unsharded runs: "
            << (sharded_deterministic ? "yes" : "NO — determinism violated") << "\n";
  if (!all_shards_sampled) {
    std::cout << "Per-shard RR-set counts all nonzero: NO — fan-out missing\n";
  }
  deterministic = deterministic && sharded_deterministic && all_shards_sampled;

  // --- Churn: open-loop arrivals against a graph minting new epochs -------
  // The main snapshot serves under the name "churn" in a fresh catalog
  // while a churner thread applies random EdgeDelta batches through
  // SwapWithDelta. Arrivals are open-loop Poisson: submission times come
  // from the trace clock, not from completions, so swap interference shows
  // up as latency instead of being hidden by a closed loop. Every request
  // must complete OK on whatever epoch it pinned at admission; the end
  // state must be digest-identical to replaying the same deltas through
  // ApplyDeltaByRebuild (the from-scratch GraphBuilder path).
  const size_t churn_queries =
      count_flag("churn-queries", static_cast<int64_t>(queries));
  const size_t churn_delta_count = count_flag("churn-deltas", 3);
  const double churn_rate_flag = cli.GetDouble("churn-rate", 0.0);
  size_t churn_deltas_applied = 0;
  size_t churn_inserted = 0;
  size_t churn_deleted = 0;
  size_t churn_reweighted = 0;
  bool churn_resharded = false;
  bool churn_digest_match = false;
  bool churn_all_ok = true;
  double churn_offered_rate = 0.0;
  double churn_completed_rate = 0.0;
  double churn_p50 = 0.0;
  double churn_p99 = 0.0;
  double churn_p999 = 0.0;
  uint64_t churn_final_epoch = 0;
  LogHistogram churn_swap_blackout;
  LogHistogram churn_apply_time;
  {
    GraphCatalog churn_catalog;
    // The churn entry carries a 2-way topology so every swap also
    // exercises the re-planning path (resharded epochs stay bit-identical
    // to unsharded serving — shard_test/delta_test pin that).
    auto churn_topology = MakeShardTopology(main_graph.graph(), 2);
    ASM_CHECK(churn_topology.ok()) << churn_topology.status().ToString();
    ASM_CHECK(churn_catalog
                  .Register("churn", main_graph.snapshot, main_graph.weight_scheme(),
                            /*warm=*/nullptr, std::move(churn_topology).value())
                  .ok());

    SeedMinEngine::ServingOptions options;
    options.num_threads = pool_threads;
    options.num_drivers =
        drivers_override != 0 ? drivers_override : client_counts.back();
    options.max_queue_depth = std::max(queue_depth, churn_queries);
    options.block_when_full = true;
    SeedMinEngine engine(churn_catalog, options);

    churn_offered_rate =
        churn_rate_flag > 0.0 ? churn_rate_flag : std::max(1.0, cold_rate);
    const double expected_seconds =
        static_cast<double>(churn_queries) / churn_offered_rate;

    // Churner thread: mint churn_delta_count epochs spaced across the
    // expected run, maintaining an independently-rebuilt reference graph.
    DirectedGraph reference = main_graph.graph();
    std::atomic<bool> churn_done{false};
    std::thread churner([&] {
      Rng delta_rng(seed + 4242);
      const auto gap = std::chrono::duration<double>(
          expected_seconds / static_cast<double>(churn_delta_count + 1));
      for (size_t i = 0; i < churn_delta_count && !churn_done.load(); ++i) {
        std::this_thread::sleep_for(gap);
        const auto current = churn_catalog.Get("churn");
        ASM_CHECK(current.ok()) << current.status().ToString();
        auto delta = MakeRandomDelta(current->graph(), ChurnSpec{}, delta_rng);
        ASM_CHECK(delta.ok()) << delta.status().ToString();
        const auto swapped = SwapWithDelta(churn_catalog, "churn", *delta);
        ASM_CHECK(swapped.ok()) << swapped.status().ToString();
        churn_swap_blackout.Record(
            static_cast<uint64_t>(swapped->swap_seconds / kNanos));
        churn_apply_time.Record(
            static_cast<uint64_t>(swapped->apply_seconds / kNanos));
        churn_inserted += swapped->stats.inserted;
        churn_deleted += swapped->stats.deleted;
        churn_reweighted += swapped->stats.reweighted;
        churn_resharded = churn_resharded || swapped->resharded;
        ++churn_deltas_applied;
        // The independent check path: same batch, from-scratch rebuild.
        auto rebuilt = ApplyDeltaByRebuild(reference, *delta);
        ASM_CHECK(rebuilt.ok()) << rebuilt.status().ToString();
        reference = std::move(rebuilt).value();
      }
    });

    // Open-loop arrival trace: exponential gaps at the offered rate, each
    // request submitted at its scheduled time whether or not earlier ones
    // finished.
    Rng arrival_rng(seed + 8888);
    std::vector<std::future<StatusOr<SolveResult>>> futures;
    futures.reserve(churn_queries);
    const auto trace_start = std::chrono::steady_clock::now();
    double arrival_offset = 0.0;
    WallTimer timer;
    for (size_t i = 0; i < churn_queries; ++i) {
      arrival_offset +=
          -std::log(1.0 - arrival_rng.NextDouble()) / churn_offered_rate;
      std::this_thread::sleep_until(
          trace_start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(arrival_offset)));
      SolveRequest request;
      request.graph = "churn";
      request.algorithm = mix[i % (sizeof(mix) / sizeof(mix[0]))];
      request.model = model;
      request.eta = eta;
      request.seed = seed + 9000 + i;
      futures.push_back(engine.SubmitAsync(request));
    }
    for (auto& future : futures) {
      const StatusOr<SolveResult> solved = future.get();
      churn_all_ok = churn_all_ok && solved.ok();
      if (!solved.ok()) {
        std::cerr << "churn request failed: " << solved.status().ToString() << "\n";
      }
    }
    churn_completed_rate = static_cast<double>(churn_queries) / timer.Seconds();
    churn_done.store(true);
    churner.join();

    const MetricsSnapshot snapshot = engine.metrics_snapshot();
    const HistogramData latency =
        snapshot.MergedHistogram("asti_request_latency_seconds");
    churn_p50 = QuantileSeconds(latency, 0.50);
    churn_p99 = QuantileSeconds(latency, 0.99);
    churn_p999 = QuantileSeconds(latency, 0.999);

    // Post-churn digest identity: the served graph (minted delta by delta)
    // against the reference (rebuilt from scratch per delta).
    const auto final_ref = churn_catalog.Get("churn");
    ASM_CHECK(final_ref.ok());
    churn_final_epoch = final_ref->epoch();
    churn_digest_match =
        ForwardCsrDigest(final_ref->graph()) == ForwardCsrDigest(reference);
  }
  const HistogramData churn_blackout = churn_swap_blackout.Snapshot();
  const HistogramData churn_apply = churn_apply_time.Snapshot();
  std::cout << "\nChurn (open-loop, " << churn_queries << " Poisson arrivals at "
            << FormatDouble(churn_offered_rate, 1) << "/s, " << churn_deltas_applied
            << " deltas -> epoch " << churn_final_epoch << ", +" << churn_inserted
            << " -" << churn_deleted << " ~" << churn_reweighted << " edges"
            << (churn_resharded ? ", re-planned shards" : "") << "):\n"
            << "  completed " << FormatDouble(churn_completed_rate, 1)
            << " queries/s, latency p50=" << FormatDouble(churn_p50 * 1e3)
            << "ms p99=" << FormatDouble(churn_p99 * 1e3)
            << "ms p999=" << FormatDouble(churn_p999 * 1e3) << "ms\n"
            << "  swap blackout p50="
            << FormatDouble(QuantileSeconds(churn_blackout, 0.50) * 1e3) << "ms max="
            << FormatDouble(static_cast<double>(churn_blackout.MaxValue()) * kNanos *
                            1e3)
            << "ms (apply p50="
            << FormatDouble(QuantileSeconds(churn_apply, 0.50) * 1e3)
            << "ms, off the serving path)\n"
            << "  post-churn digest == from-scratch rebuild: "
            << (churn_digest_match ? "yes" : "NO — delta contract violated")
            << "; all requests completed: " << (churn_all_ok ? "yes" : "NO") << "\n";
  deterministic = deterministic && churn_digest_match && churn_all_ok;

  const std::string metrics_path = cli.GetString("metrics-out", "");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    ASM_CHECK(out.good()) << "cannot open --metrics-out path " << metrics_path;
    out << ExportPrometheusText(mixed_snapshot);
    std::cout << "Mixed-phase metrics snapshot written to " << metrics_path << "\n";
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    ASM_CHECK(out.good()) << "cannot open --json path " << json_path;
    out << "{\n"
        << "  \"graph\": {\"name\": \"" << main_graph.name()
        << "\", \"nodes\": " << main_graph.num_nodes()
        << ", \"edges\": " << main_graph.num_edges() << "},\n"
        << "  \"model\": \"" << DiffusionModelName(model) << "\",\n"
        << "  \"eta\": " << eta << ",\n"
        << "  \"queries_per_level\": " << queries << ",\n"
        << "  \"pool_threads\": " << pool_threads << ",\n"
        << "  \"levels\": [";
    for (size_t i = 0; i < rows.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n")
          << "    {\"clients\": " << rows[i].clients
          << ", \"drivers\": " << rows[i].drivers
          << ", \"queries_per_s\": " << rows[i].rate
          << ", \"speedup\": " << rows[i].speedup
          << ", \"latency_p50_s\": " << rows[i].p50
          << ", \"latency_p99_s\": " << rows[i].p99
          << ", \"latency_p999_s\": " << rows[i].p999
          << ", \"checksum\": " << rows[i].checksum << "}";
    }
    out << "\n  ],\n"
        << "  \"hot_repeat\": {\"cold_queries_per_s\": " << cold_rate
        << ", \"warm_queries_per_s\": " << warm_rate
        << ", \"warm_speedup\": " << (cold_rate > 0.0 ? warm_rate / cold_rate : 0.0)
        << ", \"warm_hit_rate\": " << warm_hit_rate
        << ", \"cache_using_queries\": " << warm_cache_users
        << ", \"deterministic\": " << (repeat_deterministic ? "true" : "false")
        << "},\n"
        << "  \"cold_start\": {\"parse_register_s\": " << parse_register_s
        << ", \"mmap_register_s\": " << mmap_register_s
        << ", \"parse_vs_mmap_ratio\": "
        << (mmap_register_s > 0.0 ? parse_register_s / mmap_register_s : 0.0)
        << ", \"parse_first_solve_s\": " << parse_first_solve_s
        << ", \"mmap_first_solve_s\": " << mmap_first_solve_s
        << ", \"warm_start_hit_rate\": " << warm_start_hit_rate
        << ", \"warm_cache_using_queries\": " << warm_start_cache_users
        << ", \"warm_sets_adopted\": " << warm_sets_adopted
        << ", \"deterministic\": " << (cold_start_deterministic ? "true" : "false")
        << "},\n"
        << "  \"saturation\": {\"capacity\": " << capacity
        << ", \"drivers\": " << sat_drivers << ", \"queue_depth\": " << sat_queue
        << ", \"submitted\": " << queries << ", \"admitted\": " << admitted
        << ", \"rejected\": " << rejected << "},\n"
        << "  \"mixed_workload\": {\"hot_swaps\": "
        << (hot_swap_epochs == 0 ? 0 : hot_swap_epochs - 1) << ", \"graphs\": [";
    bool first = true;
    for (const auto& [name, row] : per_graph) {
      out << (first ? "\n" : ",\n") << "    {\"name\": \"" << row.name
          << "\", \"queries\": " << row.queries
          << ", \"queries_per_s\": " << row.rate
          << ", \"queue_wait_p50_s\": " << row.queue_p50
          << ", \"queue_wait_p99_s\": " << row.queue_p99
          << ", \"checksum\": " << row.checksum << "}";
      first = false;
    }
    out << "\n  ], \"swap_blackout\": {\"swaps\": " << blackout.Count()
        << ", \"max_s\": " << static_cast<double>(blackout.MaxValue()) * kNanos
        << ", \"p50_s\": " << QuantileSeconds(blackout, 0.50)
        << "}, \"deterministic\": " << (mixed_deterministic ? "true" : "false")
        << "},\n"
        << "  \"sharded\": {\"shards\": " << shard_count
        << ", \"queries_per_s\": " << sharded_rate
        << ", \"imbalance_permille\": " << shard_imbalance_permille
        << ", \"per_shard_sets\": [";
    for (size_t k = 0; k < per_shard_sets.size(); ++k) {
      out << (k == 0 ? "" : ", ") << per_shard_sets[k];
    }
    out << "], \"deterministic\": "
        << (sharded_deterministic && all_shards_sampled ? "true" : "false")
        << "},\n"
        << "  \"churn\": {\"queries\": " << churn_queries
        << ", \"offered_rate_per_s\": " << churn_offered_rate
        << ", \"completed_rate_per_s\": " << churn_completed_rate
        << ", \"deltas_applied\": " << churn_deltas_applied
        << ", \"final_epoch\": " << churn_final_epoch
        << ", \"edges_inserted\": " << churn_inserted
        << ", \"edges_deleted\": " << churn_deleted
        << ", \"edges_reweighted\": " << churn_reweighted
        << ", \"resharded\": " << (churn_resharded ? "true" : "false")
        << ", \"latency_p50_s\": " << churn_p50
        << ", \"latency_p99_s\": " << churn_p99
        << ", \"latency_p999_s\": " << churn_p999
        << ", \"swap_blackout\": {\"swaps\": " << churn_blackout.Count()
        << ", \"p50_s\": " << QuantileSeconds(churn_blackout, 0.50)
        << ", \"max_s\": " << static_cast<double>(churn_blackout.MaxValue()) * kNanos
        << ", \"apply_p50_s\": " << QuantileSeconds(churn_apply, 0.50)
        << "}, \"digest_match\": " << (churn_digest_match ? "true" : "false")
        << ", \"all_requests_ok\": " << (churn_all_ok ? "true" : "false")
        << ", \"deterministic\": "
        << (churn_digest_match && churn_all_ok ? "true" : "false") << "},\n"
        << "  \"deterministic\": " << (deterministic ? "true" : "false") << "\n"
        << "}\n";
  }
  return deterministic ? 0 : 1;
}
