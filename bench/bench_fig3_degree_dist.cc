// Figure 3 — degree distributions of the tested datasets (log-log).
//
// The paper plots fraction-of-nodes vs degree for the four datasets and
// shows power-law tails. We print the log-binned distribution of each
// surrogate; the shape to check is a roughly straight line in log-log,
// i.e. fraction dropping by orders of magnitude across the degree decades.

#include <iostream>

#include "benchutil/cli.h"
#include "benchutil/table.h"
#include "graph/datasets.h"
#include "graph/degree_stats.h"

int main(int argc, char** argv) {
  using namespace asti;
  const CommandLine cli(argc, argv);
  const double scale = EnvDouble("ASM_BENCH_SCALE", cli.GetDouble("scale", 1.0));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 7));

  std::cout << "Figure 3: degree distribution (log-binned fraction of nodes per "
               "degree), scale=" << scale << "\n";
  for (const DatasetInfo& info : AllDatasets()) {
    auto graph = MakeSurrogateDataset(info.id, scale, seed);
    if (!graph.ok()) {
      std::cerr << graph.status().ToString() << "\n";
      return 1;
    }
    std::cout << "\n" << info.name << " (n=" << graph->NumNodes()
              << ", m=" << graph->NumEdges() << ")\n";
    TextTable table({"degree>=", "fraction/degree"});
    for (const auto& point : ComputeLogBinnedDistribution(*graph)) {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.3e", point.fraction);
      table.AddRow({std::to_string(point.degree), buffer});
    }
    table.Print(std::cout);
  }
  std::cout << "\nShape check: fractions fall by orders of magnitude with "
               "degree — the power-law tails of Figure 3.\n";
  return 0;
}
