// Table 3 — improvement ratio of ASTI over ATEUC (both models).
//
// For every dataset × threshold, prints how many more seeds ATEUC selects
// relative to ASTI, or N/A when ATEUC's non-adaptive set misses η on at
// least one hidden realization — exactly the paper's table semantics.

#include <iostream>

#include "benchutil/sweep.h"
#include "benchutil/table.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace asti;
  SweepOptions base;
  ApplyStandardOverrides(argc, argv, base);
  base.algorithms = {AlgorithmId::kAsti, AlgorithmId::kAteuc};

  std::cout << "Table 3: improvement ratio of ASTI over ATEUC, scale=" << base.scale
            << ", realizations=" << base.base.realizations << "\n"
            << "(N/A: ATEUC missed the threshold on some realization)\n";
  for (DiffusionModel model :
       {DiffusionModel::kIndependentCascade, DiffusionModel::kLinearThreshold}) {
    SweepOptions options = base;
    options.base.model = model;
    const auto cells = RunEvaluationSweep(options, [](const SweepCell& cell) {
      ASM_LOG(kInfo) << GetDatasetInfo(cell.dataset).name << " eta/n="
                     << cell.eta_fraction << " " << AlgorithmName(cell.algorithm)
                     << ": " << Summarize(cell.result.aggregate);
    });

    std::cout << "\n[" << DiffusionModelName(model) << " model]\n";
    std::vector<std::string> header = {"Dataset"};
    // Header uses the NetHEPT grid; LiveJournal rows note their own grid.
    for (double f : EtaFractionsFor(DatasetId::kNetHept)) {
      header.push_back(FormatDouble(f, 2));
    }
    TextTable table(header);
    for (DatasetId dataset : options.datasets) {
      std::vector<std::string> row;
      std::string name = GetDatasetInfo(dataset).name;
      if (dataset == DatasetId::kLiveJournal) name += " (small-eta grid)";
      row.push_back(name);
      for (double eta_fraction : EtaFractionsFor(dataset)) {
        const CellResult* asti = nullptr;
        const CellResult* ateuc = nullptr;
        for (const SweepCell& cell : cells) {
          if (cell.dataset == dataset && cell.eta_fraction == eta_fraction) {
            if (cell.algorithm == AlgorithmId::kAsti) asti = &cell.result;
            if (cell.algorithm == AlgorithmId::kAteuc) ateuc = &cell.result;
          }
        }
        row.push_back(asti != nullptr && ateuc != nullptr
                          ? ImprovementRatio(*asti, *ateuc)
                          : std::string("?"));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
  std::cout << "\nShape check (paper Table 3): positive double-digit "
               "percentages where ATEUC always reaches eta, N/A elsewhere; "
               "the paper reports 24-66% and many N/A cells.\n";
  return 0;
}
