// Figure 5 — running time vs threshold η/n under the IC model.
//
// The shapes to reproduce: AdaptIM is roughly an order of magnitude slower
// than ASTI (it needs Θ(n_i/OPT') RR-sets per round vs Θ(η_i/OPT) mRR-sets);
// batched ASTI-2/4/8 cut ASTI's time to a fraction; ATEUC pays its one-shot
// selection once and is competitive at large η.

#include <iostream>

#include "benchutil/sweep.h"
#include "benchutil/table.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace asti;
  SweepOptions options;
  options.base.model = DiffusionModel::kIndependentCascade;
  options.base.keep_traces = true;  // for the supplementary sample-count table
  ApplyStandardOverrides(argc, argv, options);

  std::cout << "Figure 5: running time (seconds) vs threshold (IC model), scale="
            << options.scale << ", realizations=" << options.base.realizations << "\n";
  const auto cells = RunEvaluationSweep(options, [](const SweepCell& cell) {
    ASM_LOG(kInfo) << GetDatasetInfo(cell.dataset).name << " eta/n="
                   << cell.eta_fraction << " " << AlgorithmName(cell.algorithm)
                   << ": " << Summarize(cell.result.aggregate);
  });

  for (DatasetId dataset : options.datasets) {
    std::cout << "\n(" << GetDatasetInfo(dataset).name << ")\n";
    std::vector<std::string> header = {"eta/n"};
    for (AlgorithmId algorithm : options.algorithms) {
      header.push_back(AlgorithmName(algorithm));
    }
    TextTable table(header);
    for (double eta_fraction : EtaFractionsFor(dataset)) {
      std::vector<std::string> row = {FormatDouble(eta_fraction, 2)};
      for (AlgorithmId algorithm : options.algorithms) {
        for (const SweepCell& cell : cells) {
          if (cell.dataset == dataset && cell.eta_fraction == eta_fraction &&
              cell.algorithm == algorithm) {
            row.push_back(FormatDouble(cell.result.aggregate.mean_seconds, 3));
          }
        }
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
  // Supplementary: mean reverse-reachable sets generated per run — the
  // mechanism behind the paper's AdaptIM slowdown (Θ(n_i/OPT') RR-sets vs
  // TRIM's Θ(η_i/OPT) mRR-sets).
  std::cout << "\nSupplementary: mean (m)RR-sets generated per run\n";
  for (DatasetId dataset : options.datasets) {
    std::cout << "(" << GetDatasetInfo(dataset).name << ")\n";
    std::vector<std::string> header = {"eta/n"};
    for (AlgorithmId algorithm : options.algorithms) {
      header.push_back(AlgorithmName(algorithm));
    }
    TextTable table(header);
    for (double eta_fraction : EtaFractionsFor(dataset)) {
      std::vector<std::string> row = {FormatDouble(eta_fraction, 2)};
      for (AlgorithmId algorithm : options.algorithms) {
        for (const SweepCell& cell : cells) {
          if (cell.dataset == dataset && cell.eta_fraction == eta_fraction &&
              cell.algorithm == algorithm) {
            double samples = 0.0;
            for (const auto& trace : cell.result.traces) {
              samples += static_cast<double>(trace.total_samples);
            }
            row.push_back(FormatCount(
                samples / static_cast<double>(cell.result.traces.size())));
          }
        }
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
  std::cout << "\nShape check (paper Fig. 5): ASTI-8 < ASTI-4 < ASTI-2 < ASTI "
               "in time; adaptive times grow with eta while ATEUC's one-shot "
               "cost does not. AdaptIM generates many times more RR-sets than "
               "ASTI generates mRR-sets (the paper's Θ(n_i/OPT') vs "
               "Θ(η_i/OPT) argument) — at laptop scale the cheaper per-set "
               "traversals mask it in wall time; at the paper's scale it is "
               "a 10-20x slowdown.\n";
  return 0;
}
