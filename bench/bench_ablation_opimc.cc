// Ablation — one-group TRIM vs the two-group OPIM-C design (§3.4).
//
// The paper customizes OPIM-C "by utilizing one group of mRR-sets, which
// would be more efficient for selecting a singleton seed set" (citing
// Huang et al. 2017). This bench runs both designs over identical residual
// states and reports samples generated, selection time, and the quality of
// the chosen node, across several shortfall levels.

#include <iostream>
#include <numeric>

#include "benchutil/cli.h"
#include "benchutil/table.h"
#include "benchutil/timer.h"
#include "core/trim.h"
#include "core/trim_two_group.h"
#include "diffusion/monte_carlo.h"
#include "graph/datasets.h"

int main(int argc, char** argv) {
  using namespace asti;
  const CommandLine cli(argc, argv);
  const double scale = EnvDouble("ASM_BENCH_SCALE", cli.GetDouble("scale", 0.5));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 7));
  const size_t num_threads = NumThreadsOverride(cli);
  const size_t repeats =
      EnvSize("ASM_BENCH_REALIZATIONS", static_cast<size_t>(cli.GetInt("repeats", 3)));

  auto graph = MakeSurrogateDataset(DatasetId::kNetHept, scale, seed);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  const NodeId n = graph->NumNodes();
  std::cout << "Ablation: one-group TRIM vs two-group OPIM-C design (n=" << n
            << ", IC model, " << repeats << " repeats per cell)\n\n";

  BitVector active(n);
  std::vector<NodeId> inactive(n);
  std::iota(inactive.begin(), inactive.end(), 0);

  TextTable table({"eta_i/n", "design", "mean samples", "mean time (s)",
                   "mean est. gain"});
  for (double fraction : {0.01, 0.05, 0.1, 0.2}) {
    const NodeId eta_i = std::max<NodeId>(1, static_cast<NodeId>(fraction * n));
    ResidualView view;
    view.active = &active;
    view.inactive_nodes = &inactive;
    view.shortfall = eta_i;

    for (int design = 0; design < 2; ++design) {
      double samples = 0.0;
      double seconds = 0.0;
      double gain = 0.0;
      for (size_t r = 0; r < repeats; ++r) {
        Rng rng(seed * 31 + r * 7 + static_cast<uint64_t>(design));
        WallTimer timer;
        SelectionResult result;
        TrimOptions options;
        options.epsilon = 0.5;
        options.num_threads = num_threads;
        if (design == 0) {
          Trim one(*graph, DiffusionModel::kIndependentCascade, options);
          result = one.SelectBatch(view, rng);
        } else {
          TrimTwoGroup two(*graph, DiffusionModel::kIndependentCascade, options);
          result = two.SelectBatch(view, rng);
        }
        seconds += timer.Seconds();
        samples += static_cast<double>(result.num_samples);
        gain += result.estimated_marginal_gain;
      }
      table.AddRow({FormatDouble(fraction, 2), design == 0 ? "one-group" : "two-group",
                    FormatDouble(samples / repeats, 0),
                    FormatDouble(seconds / repeats, 4),
                    FormatDouble(gain / repeats, 1)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (§3.4): comparable estimated gains, with the "
               "one-group design competitive or cheaper in samples/time for "
               "singleton selection.\n";
  return 0;
}
