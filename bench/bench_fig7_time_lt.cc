// Figure 7 — running time vs threshold η/n under the LT model.
//
// Shapes: everything of Figure 5 plus "LT is faster than IC at the same
// setting" (LT mRR-sets follow at most one in-edge per node).

#include <iostream>

#include "benchutil/sweep.h"
#include "benchutil/table.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace asti;
  SweepOptions options;
  options.base.model = DiffusionModel::kLinearThreshold;
  ApplyStandardOverrides(argc, argv, options);

  std::cout << "Figure 7: running time (seconds) vs threshold (LT model), scale="
            << options.scale << ", realizations=" << options.base.realizations << "\n";
  const auto cells = RunEvaluationSweep(options, [](const SweepCell& cell) {
    ASM_LOG(kInfo) << GetDatasetInfo(cell.dataset).name << " eta/n="
                   << cell.eta_fraction << " " << AlgorithmName(cell.algorithm)
                   << ": " << Summarize(cell.result.aggregate);
  });

  for (DatasetId dataset : options.datasets) {
    std::cout << "\n(" << GetDatasetInfo(dataset).name << ")\n";
    std::vector<std::string> header = {"eta/n"};
    for (AlgorithmId algorithm : options.algorithms) {
      header.push_back(AlgorithmName(algorithm));
    }
    TextTable table(header);
    for (double eta_fraction : EtaFractionsFor(dataset)) {
      std::vector<std::string> row = {FormatDouble(eta_fraction, 2)};
      for (AlgorithmId algorithm : options.algorithms) {
        for (const SweepCell& cell : cells) {
          if (cell.dataset == dataset && cell.eta_fraction == eta_fraction &&
              cell.algorithm == algorithm) {
            row.push_back(FormatDouble(cell.result.aggregate.mean_seconds, 3));
          }
        }
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
  std::cout << "\nShape check (paper Fig. 7): same ordering as Fig. 5 and "
               "uniformly faster than the IC runs of Fig. 5.\n";
  return 0;
}
