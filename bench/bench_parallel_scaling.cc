// Parallel RR-set sampling engine: throughput vs. thread count.
//
// Not a paper figure — measures the src/parallel/ engine on a generator
// graph: single-root RR batches and mRR batches (the TRIM workload) at
// each requested thread count, reporting sets/s and speedup over one
// thread. A coverage checksum is printed per row; identical checksums
// across thread counts demonstrate the engine's determinism contract
// (per-set RNG streams + index-ordered merge ⇒ the collection does not
// depend on the pool size).
//
//   --threads 1,2,4,8   thread counts to sweep (ASM_BENCH_THREADS adds one)
//   --sets 20000        RR-sets per timed batch
//   --scale 1.0         graph size multiplier
//   --model ic|lt

#include <cstdint>
#include <iostream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "benchutil/cli.h"
#include "benchutil/table.h"
#include "benchutil/timer.h"
#include "graph/generators.h"
#include "parallel/parallel_sampler.h"
#include "parallel/thread_pool.h"
#include "sampling/root_size.h"
#include "util/check.h"

namespace asti {
namespace {

std::vector<size_t> ParseThreadList(const std::string& spec) {
  std::vector<size_t> threads;
  std::stringstream stream(spec);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (token.empty()) continue;
    ASM_CHECK(token.find_first_not_of("0123456789") == std::string::npos)
        << "--threads expects a comma-separated list of counts, got '" << token << "'";
    threads.push_back(static_cast<size_t>(std::stoull(token)));
  }
  ASM_CHECK(!threads.empty()) << "empty --threads list";
  return threads;
}

// Order-independent digest of the coverage vector: equal across runs iff
// the stored sets are identical (up to node multiset, which suffices here
// because the engine also fixes the order).
uint64_t CoverageChecksum(const RrCollection& collection) {
  uint64_t digest = 0xcbf29ce484222325ULL;
  for (NodeId v = 0; v < collection.num_nodes(); ++v) {
    uint64_t word = (static_cast<uint64_t>(v) << 32) | collection.Coverage(v);
    word *= 0x100000001b3ULL;
    digest ^= word + (digest << 6) + (digest >> 2);
  }
  return digest;
}

}  // namespace
}  // namespace asti

int main(int argc, char** argv) {
  using namespace asti;
  const CommandLine cli(argc, argv);
  const double scale = EnvDouble("ASM_BENCH_SCALE", cli.GetDouble("scale", 1.0));
  const size_t sets = EnvSize("ASM_BENCH_SETS",
                              static_cast<size_t>(cli.GetInt("sets", 20000)));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 7));
  const DiffusionModel model = cli.GetString("model", "ic") == "lt"
                                   ? DiffusionModel::kLinearThreshold
                                   : DiffusionModel::kIndependentCascade;
  std::vector<size_t> threads = ParseThreadList(cli.GetString("threads", "1,2,4,8"));
  const size_t env_threads = EnvSize("ASM_BENCH_THREADS", 0);
  if (env_threads != 0) threads.push_back(env_threads);

  // Power-law generator graph, the regime of the paper's datasets.
  const NodeId n = static_cast<NodeId>(20000 * scale);
  const size_t m = static_cast<size_t>(120000 * scale);
  Rng graph_rng(seed);
  auto graph = BuildWeightedGraph(MakeChungLu(n, m, 2.1, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASM_CHECK(graph.ok()) << graph.status().ToString();
  std::vector<NodeId> candidates(graph->NumNodes());
  std::iota(candidates.begin(), candidates.end(), 0);
  const NodeId eta = std::max<NodeId>(1, graph->NumNodes() / 50);
  const RootSizeSampler root_size(graph->NumNodes(), eta);

  std::cout << "Parallel RR sampling scaling on Chung-Lu graph (n=" << graph->NumNodes()
            << ", m=" << graph->NumEdges() << ", model=" << DiffusionModelName(model)
            << ", sets/batch=" << sets << ", hardware threads="
            << std::thread::hardware_concurrency() << ")\n\n";

  TextTable table({"threads", "rr sets/s", "rr speedup", "mrr sets/s", "mrr speedup",
                   "checksum"});
  double rr_base = 0.0;
  double mrr_base = 0.0;
  uint64_t reference_checksum = 0;
  bool deterministic = true;
  for (size_t t : threads) {
    ThreadPool pool(t);
    ParallelRrSampler sampler(*graph, model, pool);
    RrCollection collection(graph->NumNodes());
    Rng rng(seed + 1);

    // Warm up worker scratch (first-touch allocation), then time.
    sampler.GenerateBatch(candidates, nullptr, sets / 10 + 1, collection, rng);
    collection.Clear();
    Rng rr_rng(seed + 2);
    WallTimer rr_timer;
    sampler.GenerateBatch(candidates, nullptr, sets, collection, rr_rng);
    const double rr_seconds = rr_timer.Seconds();
    const uint64_t checksum = CoverageChecksum(collection);
    if (reference_checksum == 0) reference_checksum = checksum;
    deterministic = deterministic && checksum == reference_checksum;

    collection.Clear();
    Rng mrr_rng(seed + 3);
    WallTimer mrr_timer;
    sampler.GenerateMrrBatch(candidates, nullptr, root_size, sets, collection, mrr_rng);
    const double mrr_seconds = mrr_timer.Seconds();

    const double rr_rate = sets / rr_seconds;
    const double mrr_rate = sets / mrr_seconds;
    if (rr_base == 0.0) rr_base = rr_rate;
    if (mrr_base == 0.0) mrr_base = mrr_rate;
    table.AddRow({std::to_string(t), FormatCount(rr_rate),
                  FormatDouble(rr_rate / rr_base) + "x", FormatCount(mrr_rate),
                  FormatDouble(mrr_rate / mrr_base) + "x",
                  std::to_string(checksum % 1000000)});
  }
  table.Print(std::cout);
  std::cout << "\nRR coverage checksum identical across thread counts: "
            << (deterministic ? "yes" : "NO — determinism violated") << "\n";
  return deterministic ? 0 : 1;
}
