// Parallel RR-set sampling + greedy coverage engines: throughput vs.
// thread count.
//
// Not a paper figure — measures the src/parallel/ + src/coverage/ engines
// on a generator graph. Phase 1: single-root RR batches and mRR batches
// (the TRIM workload) at each requested thread count, reporting sets/s and
// speedup over one thread. Phase 2: LazyGreedyMaxCoverage seed selection
// over one shared collection (the TRIM-B per-round subproblem), reporting
// picks/s. Checksums are printed per row; identical checksums across
// thread counts demonstrate both determinism contracts (per-set RNG
// streams + index-ordered merge for sampling; batched stale-drain with
// exact (gain, lowest-id) tie-breaking for coverage — neither result
// depends on the pool size).
//
//   --threads 1,2,4,8     thread counts to sweep (ASM_BENCH_THREADS adds one)
//   --sets 20000          RR-sets per timed sampling batch
//   --coverage-sets N     sets in the coverage instance (default 5 × --sets)
//   --budget N            coverage picks (default η = n/50)
//   --scale 1.0           graph size multiplier
//   --model ic|lt

#include <cstdint>
#include <iostream>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "benchutil/cli.h"
#include "benchutil/table.h"
#include "benchutil/timer.h"
#include "coverage/lazy_greedy.h"
#include "coverage/max_coverage.h"
#include "graph/generators.h"
#include "parallel/parallel_sampler.h"
#include "parallel/thread_pool.h"
#include "sampling/root_size.h"
#include "util/check.h"

namespace asti {
namespace {

// Order-independent digest of the coverage vector: equal across runs iff
// the stored sets are identical (up to node multiset, which suffices here
// because the engine also fixes the order).
uint64_t CoverageChecksum(const RrCollection& collection) {
  uint64_t digest = 0xcbf29ce484222325ULL;
  for (NodeId v = 0; v < collection.num_nodes(); ++v) {
    uint64_t word = (static_cast<uint64_t>(v) << 32) | collection.Coverage(v);
    word *= 0x100000001b3ULL;
    digest ^= word + (digest << 6) + (digest >> 2);
  }
  return digest;
}

// Order-sensitive digest of a selection: equal iff the pick sequence and
// every per-pick marginal agree — the bit-identical contract of the
// parallel coverage path.
uint64_t SelectionChecksum(const MaxCoverageResult& result) {
  uint64_t digest = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < result.selected.size(); ++i) {
    uint64_t word = (static_cast<uint64_t>(result.selected[i]) << 32) |
                    result.marginal_coverage[i];
    word *= 0x100000001b3ULL;
    digest ^= word + (digest << 6) + (digest >> 2);
  }
  return digest ^ result.covered_sets;
}

}  // namespace
}  // namespace asti

int main(int argc, char** argv) {
  using namespace asti;
  const CommandLine cli(argc, argv);
  const double scale = EnvDouble("ASM_BENCH_SCALE", cli.GetDouble("scale", 1.0));
  const size_t sets = EnvSize("ASM_BENCH_SETS",
                              static_cast<size_t>(cli.GetInt("sets", 20000)));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 7));
  const DiffusionModel model = cli.GetString("model", "ic") == "lt"
                                   ? DiffusionModel::kLinearThreshold
                                   : DiffusionModel::kIndependentCascade;
  std::vector<size_t> threads =
      ParseSizeList(cli.GetString("threads", "1,2,4,8"), "--threads");
  const size_t env_threads = EnvSize("ASM_BENCH_THREADS", 0);
  if (env_threads != 0) threads.push_back(env_threads);

  // Power-law generator graph, the regime of the paper's datasets.
  const NodeId n = static_cast<NodeId>(20000 * scale);
  const size_t m = static_cast<size_t>(120000 * scale);
  Rng graph_rng(seed);
  auto graph = BuildWeightedGraph(MakeChungLu(n, m, 2.1, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASM_CHECK(graph.ok()) << graph.status().ToString();
  std::vector<NodeId> candidates(graph->NumNodes());
  std::iota(candidates.begin(), candidates.end(), 0);
  const NodeId eta = std::max<NodeId>(1, graph->NumNodes() / 50);
  const RootSizeSampler root_size(graph->NumNodes(), eta);

  std::cout << "Parallel RR sampling scaling on Chung-Lu graph (n=" << graph->NumNodes()
            << ", m=" << graph->NumEdges() << ", model=" << DiffusionModelName(model)
            << ", sets/batch=" << sets << ", hardware threads="
            << std::thread::hardware_concurrency() << ")\n\n";

  TextTable table({"threads", "rr sets/s", "rr speedup", "mrr sets/s", "mrr speedup",
                   "checksum"});
  double rr_base = 0.0;
  double mrr_base = 0.0;
  uint64_t reference_checksum = 0;
  bool deterministic = true;
  for (size_t t : threads) {
    ThreadPool pool(t);
    ParallelRrSampler sampler(*graph, model, pool);
    RrCollection collection(graph->NumNodes());
    Rng rng(seed + 1);

    // Warm up worker scratch (first-touch allocation), then time.
    sampler.GenerateBatch(candidates, nullptr, sets / 10 + 1, collection, rng);
    collection.Clear();
    Rng rr_rng(seed + 2);
    WallTimer rr_timer;
    sampler.GenerateBatch(candidates, nullptr, sets, collection, rr_rng);
    const double rr_seconds = rr_timer.Seconds();
    const uint64_t checksum = CoverageChecksum(collection);
    if (reference_checksum == 0) reference_checksum = checksum;
    deterministic = deterministic && checksum == reference_checksum;

    collection.Clear();
    Rng mrr_rng(seed + 3);
    WallTimer mrr_timer;
    sampler.GenerateMrrBatch(candidates, nullptr, root_size, sets, collection, mrr_rng);
    const double mrr_seconds = mrr_timer.Seconds();

    const double rr_rate = sets / rr_seconds;
    const double mrr_rate = sets / mrr_seconds;
    if (rr_base == 0.0) rr_base = rr_rate;
    if (mrr_base == 0.0) mrr_base = mrr_rate;
    table.AddRow({std::to_string(t), FormatCount(rr_rate),
                  FormatDouble(rr_rate / rr_base) + "x", FormatCount(mrr_rate),
                  FormatDouble(mrr_rate / mrr_base) + "x",
                  std::to_string(checksum % 1000000)});
  }
  table.Print(std::cout);
  std::cout << "\nRR coverage checksum identical across thread counts: "
            << (deterministic ? "yes" : "NO — determinism violated") << "\n";

  // --- Phase 2: parallel greedy coverage (the TRIM-B selection phase) -------
  // One shared collection (deterministic regardless of how it was sampled),
  // then LazyGreedyMaxCoverage at each thread count. t = 1 runs the
  // sequential reference path (no pool), mirroring ParallelEngine's
  // engagement policy, so speedups are against the true sequential CELF.
  const size_t coverage_sets = EnvSize(
      "ASM_BENCH_COVERAGE_SETS",
      static_cast<size_t>(cli.GetInt("coverage-sets", static_cast<int>(sets * 5))));
  const NodeId budget = static_cast<NodeId>(cli.GetInt("budget", static_cast<int>(eta)));
  RrCollection coverage_instance(graph->NumNodes());
  {
    ThreadPool pool(threads.back());
    ParallelRrSampler sampler(*graph, model, pool);
    Rng rng(seed + 4);
    sampler.GenerateBatch(candidates, nullptr, coverage_sets, coverage_instance, rng);
  }
  std::cout << "\nParallel greedy coverage (LazyGreedyMaxCoverage, |R|="
            << coverage_instance.NumSets() << ", entries="
            << coverage_instance.TotalEntries() << ", budget=" << budget << ")\n\n";

  TextTable coverage_table({"threads", "picks/s", "speedup", "selection checksum"});
  double coverage_base = 0.0;
  uint64_t reference_selection = 0;
  bool coverage_deterministic = true;
  for (size_t t : threads) {
    std::unique_ptr<ThreadPool> pool;
    if (t != 1) pool = std::make_unique<ThreadPool>(t);
    // Warm-up run (index + heap allocations), then the timed run.
    LazyGreedyMaxCoverage(coverage_instance, budget, nullptr, pool.get());
    WallTimer timer;
    const MaxCoverageResult result =
        LazyGreedyMaxCoverage(coverage_instance, budget, nullptr, pool.get());
    const double seconds = timer.Seconds();
    const uint64_t checksum = SelectionChecksum(result);
    if (reference_selection == 0) reference_selection = checksum;
    coverage_deterministic = coverage_deterministic && checksum == reference_selection;
    const double rate = static_cast<double>(result.selected.size()) / seconds;
    if (coverage_base == 0.0) coverage_base = rate;
    coverage_table.AddRow({std::to_string(t), FormatCount(rate),
                           FormatDouble(rate / coverage_base) + "x",
                           std::to_string(checksum % 1000000)});
  }
  coverage_table.Print(std::cout);
  std::cout << "\nSelection checksum identical across thread counts: "
            << (coverage_deterministic ? "yes" : "NO — determinism violated") << "\n";
  return deterministic && coverage_deterministic ? 0 : 1;
}
