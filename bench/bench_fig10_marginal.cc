// Figure 10 (Appendix D) — marginal (truncated) spread per seed index.
//
// The paper records, for each adaptive seed in selection order, the number
// of nodes it newly activated under the hidden realization; the curve
// diminishes with the index (adaptive submodularity), with per-realization
// fluctuation. One section per dataset, averaged over the realizations,
// plus min/max envelopes.

#include <algorithm>
#include <iostream>

#include "benchutil/cli.h"
#include "benchutil/experiment.h"
#include "benchutil/table.h"
#include "graph/datasets.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace asti;
  const CommandLine cli(argc, argv);
  const double scale = EnvDouble("ASM_BENCH_SCALE", cli.GetDouble("scale", 0.5));
  const size_t realizations = EnvSize(
      "ASM_BENCH_REALIZATIONS_FIG10",
      static_cast<size_t>(cli.GetInt("realizations", 10)));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 7));

  std::cout << "Figure 10: marginal truncated spread by seed index (IC model, "
            << realizations << " realizations, scale=" << scale << ")\n";
  for (const DatasetInfo& info : AllDatasets()) {
    auto graph = MakeSurrogateDataset(info.id, scale, seed);
    if (!graph.ok()) {
      std::cerr << graph.status().ToString() << "\n";
      return 1;
    }
    // The paper uses eta/n = 0.2 (0.05 for LiveJournal).
    const double eta_fraction = info.id == DatasetId::kLiveJournal ? 0.05 : 0.2;
    CellConfig config;
    config.eta = std::max<NodeId>(
        1, static_cast<NodeId>(eta_fraction * graph->NumNodes()));
    config.algorithm = AlgorithmId::kAsti;
    config.realizations = realizations;
    config.seed = seed;
    config.keep_traces = true;
    config.num_threads = NumThreadsOverride(cli);
    const CellResult result = RunCell(*graph, config);

    // Per seed index: mean/min/max of newly_activated across realizations.
    size_t max_seeds = 0;
    for (const auto& trace : result.traces) {
      max_seeds = std::max(max_seeds, trace.rounds.size());
    }
    std::cout << "\n(" << info.name << ", eta=" << config.eta << ")\n";
    TextTable table({"seed idx", "mean marginal", "min", "max", "runs"});
    for (size_t index = 0; index < max_seeds; ++index) {
      double total = 0.0;
      double lo = 1e18;
      double hi = 0.0;
      size_t runs = 0;
      for (const auto& trace : result.traces) {
        if (index >= trace.rounds.size()) continue;
        const double gain = trace.rounds[index].newly_activated;
        total += gain;
        lo = std::min(lo, gain);
        hi = std::max(hi, gain);
        ++runs;
      }
      // Print every index for short runs, every 5th beyond 20 rows.
      if (index < 20 || index % 5 == 0 || index + 1 == max_seeds) {
        table.AddRow({std::to_string(index + 1), FormatDouble(total / runs, 1),
                      FormatDouble(lo, 0), FormatDouble(hi, 0),
                      std::to_string(runs)});
      }
    }
    table.Print(std::cout);
  }
  std::cout << "\nShape check (paper Fig. 10): the mean marginal spread "
               "diminishes with the seed index (submodularity), with "
               "realization-level fluctuation in the min/max envelope.\n";
  return 0;
}
