// Ablation — the randomized rounding of the mRR root count (§3.3 Remark).
//
// Part 1 (closed form): worst-case estimator bias ratio f(x) over all
// spreads x for randomized / floor / ceil root-count rules. The paper's
// Remark: randomized rounding keeps f ∈ [1 − 1/e, 1]; fixed ⌊n/η⌋ only
// guarantees [1 − 1/√e, 1]; fixed ⌊n/η⌋+1 inflates up to 2.
//
// Part 2 (end to end): ASTI seed counts with each rule — the looser
// estimators survive in practice but the randomized rule needs no
// correction factor and keeps the formal guarantee.

#include <algorithm>
#include <iostream>

#include "benchutil/cli.h"
#include "benchutil/table.h"
#include "core/asti.h"
#include "core/trim.h"
#include "diffusion/world.h"
#include "graph/datasets.h"
#include "stats/truncation.h"

int main(int argc, char** argv) {
  using namespace asti;
  const CommandLine cli(argc, argv);
  const double scale = EnvDouble("ASM_BENCH_SCALE", cli.GetDouble("scale", 0.5));
  const size_t realizations =
      EnvSize("ASM_BENCH_REALIZATIONS", static_cast<size_t>(cli.GetInt("realizations", 3)));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 7));

  std::cout << "Ablation: randomized rounding of the mRR root count (DESIGN.md §4)\n";
  std::cout << "\nPart 1: worst-case bias ratio f(x) = E[Gamma~]/Gamma over x\n";
  TextTable bias({"n", "eta", "randomized min..max", "floor min..max", "ceil min..max"});
  for (const auto& [n, eta] : std::vector<std::pair<uint64_t, uint64_t>>{
           {100, 7}, {1000, 30}, {10000, 300}, {10000, 9000}}) {
    auto range_for = [&](RootRounding rounding) {
      double lo = 1e18;
      double hi = 0.0;
      for (uint64_t x = 1; x <= n; x = std::max(x + 1, x * 11 / 10)) {
        const double f = EstimatorBiasRatio(x, n, eta, rounding);
        lo = std::min(lo, f);
        hi = std::max(hi, f);
      }
      return FormatDouble(lo, 3) + ".." + FormatDouble(hi, 3);
    };
    bias.AddRow({std::to_string(n), std::to_string(eta),
                 range_for(RootRounding::kRandomized), range_for(RootRounding::kFloor),
                 range_for(RootRounding::kCeil)});
  }
  bias.Print(std::cout);
  std::cout << "Expected: randomized stays within [0.632, 1]; floor dips "
               "below 0.632 (toward 0.393); ceil exceeds 1 (toward 2).\n";

  std::cout << "\nPart 2: end-to-end ASTI seed counts per rounding rule\n";
  auto graph = MakeSurrogateDataset(DatasetId::kNetHept, scale, seed);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  const NodeId eta = std::max<NodeId>(1, graph->NumNodes() / 10);
  TextTable seeds({"rounding", "mean seeds", "mean time (s)", "reached"});
  for (const auto& [name, rounding] :
       std::vector<std::pair<const char*, RootRounding>>{
           {"randomized", RootRounding::kRandomized},
           {"floor", RootRounding::kFloor},
           {"ceil", RootRounding::kCeil}}) {
    std::vector<AdaptiveRunTrace> traces;
    for (size_t run = 0; run < realizations; ++run) {
      Rng world_rng(seed * 31 + run);
      AdaptiveWorld world(*graph, DiffusionModel::kIndependentCascade, eta, world_rng);
      TrimOptions options;
      options.rounding = rounding;
      options.num_threads = NumThreadsOverride(cli);
      Trim trim(*graph, DiffusionModel::kIndependentCascade, options);
      Rng rng(seed * 77 + run);
      traces.push_back(RunAdaptivePolicy(world, trim, rng));
    }
    const RunAggregate aggregate = Aggregate(traces);
    seeds.AddRow({name, FormatDouble(aggregate.mean_seeds, 2),
                  FormatDouble(aggregate.mean_seconds, 3),
                  std::to_string(aggregate.runs_reaching_target) + "/" +
                      std::to_string(aggregate.runs)});
  }
  seeds.Print(std::cout);
  std::cout << "Expected: all rules reach eta (adaptivity absorbs estimator "
               "bias); seed counts are comparable — the randomized rule's "
               "value is the provable [1-1/e, 1] bracket, not raw seed "
               "savings.\n";
  return 0;
}
