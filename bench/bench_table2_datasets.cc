// Table 2 — dataset details: n, m, type, average degree, LWCC size.
//
// Prints the paper's reported numbers side by side with our synthetic
// surrogates (DESIGN.md documents the substitution). The shape to check:
// power-law surrogates whose LWCC covers nearly all nodes, like the
// originals.

#include <iostream>

#include "benchutil/cli.h"
#include "benchutil/table.h"
#include "graph/datasets.h"
#include "graph/degree_stats.h"
#include "graph/wcc.h"

int main(int argc, char** argv) {
  using namespace asti;
  const CommandLine cli(argc, argv);
  const double scale = EnvDouble("ASM_BENCH_SCALE", cli.GetDouble("scale", 1.0));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 7));

  std::cout << "Table 2: dataset details (paper vs surrogate, scale=" << scale
            << ")\n\n";
  TextTable table({"Dataset", "paper n", "paper m", "type", "paper deg", "surr n",
                   "surr m", "surr deg", "surr LWCC", "LWCC frac"});
  for (const DatasetInfo& info : AllDatasets()) {
    auto graph = MakeSurrogateDataset(info.id, scale, seed);
    if (!graph.ok()) {
      std::cerr << graph.status().ToString() << "\n";
      return 1;
    }
    const DegreeStats stats = ComputeDegreeStats(*graph);
    const WccResult wcc = ComputeWcc(*graph);
    table.AddRow({info.name, FormatCount(info.paper_nodes), FormatCount(info.paper_edges),
                  info.undirected ? "undirected" : "directed",
                  FormatDouble(info.paper_avg_degree, 2),
                  FormatCount(static_cast<double>(graph->NumNodes())),
                  FormatCount(static_cast<double>(graph->NumEdges())),
                  FormatDouble(stats.average_out_degree, 2),
                  FormatCount(static_cast<double>(wcc.largest_size)),
                  FormatDouble(static_cast<double>(wcc.largest_size) /
                                   graph->NumNodes(), 3)});
  }
  table.Print(std::cout);
  std::cout << "\nShape check: every surrogate is dominated by one weakly "
               "connected component, matching Table 2's LWCC column.\n";
  return 0;
}
