// Ablation — batch size sweep for TRIM-B (§6.2/6.3's tradeoff, extended).
//
// Sweeps b ∈ {1, 2, 4, 8, 16} on one surrogate and reports seeds, rounds,
// mRR samples, and wall time. The paper's observation: larger b divides
// the rounds (and the time, to ~5% at b=8) while adding only a few seeds;
// past the sweet spot the batch overshoots η and wastes seeds.

#include <algorithm>
#include <iostream>

#include "benchutil/cli.h"
#include "benchutil/table.h"
#include "core/asti.h"
#include "core/trim_b.h"
#include "diffusion/world.h"
#include "graph/datasets.h"

int main(int argc, char** argv) {
  using namespace asti;
  const CommandLine cli(argc, argv);
  const double scale = EnvDouble("ASM_BENCH_SCALE", cli.GetDouble("scale", 0.5));
  const size_t realizations =
      EnvSize("ASM_BENCH_REALIZATIONS", static_cast<size_t>(cli.GetInt("realizations", 3)));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 7));
  const size_t num_threads = NumThreadsOverride(cli);

  auto graph = MakeSurrogateDataset(DatasetId::kEpinions, scale, seed);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  const NodeId eta = std::max<NodeId>(1, graph->NumNodes() / 10);
  std::cout << "Ablation: TRIM-B batch size sweep on Epinions surrogate (n="
            << graph->NumNodes() << ", eta=" << eta << ", IC model, "
            << realizations << " realizations)\n\n";

  TextTable table({"b", "mean seeds", "mean rounds", "mean mRR sets", "mean time (s)",
                   "mean spread"});
  for (NodeId batch : {1, 2, 4, 8, 16}) {
    std::vector<AdaptiveRunTrace> traces;
    for (size_t run = 0; run < realizations; ++run) {
      Rng world_rng(seed * 101 + run);
      AdaptiveWorld world(*graph, DiffusionModel::kIndependentCascade, eta, world_rng);
      TrimBOptions options;
      options.epsilon = 0.5;
      options.batch_size = batch;
      options.num_threads = num_threads;
      TrimB trim_b(*graph, DiffusionModel::kIndependentCascade, options);
      Rng rng(seed * 57 + run * 3 + batch);
      traces.push_back(RunAdaptivePolicy(world, trim_b, rng));
    }
    double rounds = 0.0;
    double samples = 0.0;
    for (const auto& trace : traces) {
      rounds += static_cast<double>(trace.rounds.size());
      samples += static_cast<double>(trace.total_samples);
    }
    const RunAggregate aggregate = Aggregate(traces);
    table.AddRow({std::to_string(batch), FormatDouble(aggregate.mean_seeds, 1),
                  FormatDouble(rounds / realizations, 1),
                  FormatDouble(samples / realizations, 0),
                  FormatDouble(aggregate.mean_seconds, 3),
                  FormatDouble(aggregate.mean_spread, 0)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: rounds ~ eta-rounds/b; time falls steeply "
               "with b; seeds creep up a little; spread overshoot grows "
               "with b.\n";
  return 0;
}
