// Paper-fidelity suite: numeric claims lifted directly from the paper's
// text, verified against the implementation. Each test cites its section.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>

#include "diffusion/monte_carlo.h"
#include "diffusion/realization.h"
#include "graph/generators.h"
#include "sampling/root_size.h"
#include "stats/truncation.h"
#include "util/bit_vector.h"

namespace asti {
namespace {

// §2.1: "there are 2^m distinct possible realizations". Figure 2's graph
// has two random edges (the other two are deterministic), so exactly four
// equiprobable realizations φ1..φ4 — enumerate them empirically.
TEST(PaperFidelityTest, Figure2HasFourEquiprobableRealizations) {
  auto graph = MakePaperFigure2Graph();
  ASSERT_TRUE(graph.ok());
  Rng rng(401);
  std::map<std::pair<bool, bool>, int> counts;
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    const Realization realization = Realization::SampleIc(*graph, rng);
    // Edges 0: v1->v2 (.5), 1: v1->v3 (.5); 2 and 3 are prob 1.
    EXPECT_TRUE(realization.IsLive(2));
    EXPECT_TRUE(realization.IsLive(3));
    ++counts[{realization.IsLive(0), realization.IsLive(1)}];
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [key, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / trials, 0.25, 0.01);
  }
}

// Example 2.3's full table: E[I(v1)] = 2.75 dominates, yet with η = 2 the
// truncated ordering flips to v2 = v3 = 2 > v1 = 1.75 > v4 = 1.
TEST(PaperFidelityTest, Example23CompleteOrdering) {
  auto graph = MakePaperFigure2Graph();
  ASSERT_TRUE(graph.ok());
  MonteCarloEstimator mc(*graph, DiffusionModel::kIndependentCascade);
  Rng rng(402);
  const size_t trials = 60000;

  std::vector<double> spread(4);
  std::vector<double> truncated(4);
  for (NodeId v = 0; v < 4; ++v) {
    spread[v] = mc.EstimateSpread({v}, trials, rng);
    truncated[v] = mc.EstimateTruncatedSpread({v}, 2, trials, rng);
  }
  // Vanilla ordering: v1 strictly first.
  EXPECT_GT(spread[0], spread[1]);
  EXPECT_GT(spread[0], spread[2]);
  EXPECT_GT(spread[0], spread[3]);
  // Truncated ordering: v2/v3 strictly above v1, v1 above v4.
  EXPECT_GT(truncated[1], truncated[0] + 0.1);
  EXPECT_GT(truncated[2], truncated[0] + 0.1);
  EXPECT_GT(truncated[0], truncated[3] + 0.5);
  // The paper's expected-seed-count arithmetic: seeding v1 first costs
  // 2·0.25 + 1·0.75 = 1.25 expected seeds; v2/v3 always finish with 1.
  const double p_v1_fails = 0.25;  // φ4: both outgoing edges blocked
  EXPECT_NEAR(2.0 * p_v1_fails + 1.0 * (1 - p_v1_fails), 1.25, 1e-12);
}

// §3.2: the vanilla RR estimator applied to truncated spread carries the
// η/n discount — verify the biased value η/n · E[I(S)] is far below the
// true E[Γ(S)] on Figure 2 (the paper's argument why RR-sets fail).
TEST(PaperFidelityTest, VanillaRrEstimateUnderestimatesTruncatedSpread) {
  auto graph = MakePaperFigure2Graph();
  ASSERT_TRUE(graph.ok());
  const double eta = 2.0;
  const double n = 4.0;
  const double expected_spread_v2 = 2.0;     // E[I(v2)]
  const double expected_truncated_v2 = 2.0;  // E[Γ(v2)]
  const double biased = eta / n * expected_spread_v2;  // η·Pr[R ∩ S ≠ ∅]
  EXPECT_LT(biased, (1.0 - 1.0 / 2.718281828459045) * expected_truncated_v2);
}

// Theorem 3.1's strong adaptive monotonicity (Eq. 22): the expected
// marginal truncated spread of a fixed node can only shrink as more of the
// graph is activated and the shortfall drops.
TEST(PaperFidelityTest, MarginalTruncatedSpreadShrinksAcrossRounds) {
  Rng graph_rng(403);
  auto graph = BuildWeightedGraph(MakeErdosRenyi(60, 360, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  MonteCarloEstimator mc(*graph, DiffusionModel::kIndependentCascade);
  Rng rng(404);
  const NodeId probe = 5;

  BitVector early(60);          // round j: nothing active
  BitVector late(60);           // round i > j: a superset is active
  std::vector<NodeId> activated = {10, 11, 12, 13, 14, 15, 16, 17};
  for (NodeId v : activated) late.Set(v);
  const NodeId eta_early = 20;
  const NodeId eta_late = 12;  // η_i shrinks with activations

  const double delta_early =
      mc.EstimateMarginalTruncatedSpread({probe}, early, eta_early, 30000, rng);
  const double delta_late =
      mc.EstimateMarginalTruncatedSpread({probe}, late, eta_late, 30000, rng);
  EXPECT_GE(delta_early + 0.05, delta_late);
}

// §3.3's k = n/η expectation: with the randomized rounding, the average
// root count matches n_i/η_i to three decimals over many draws.
TEST(PaperFidelityTest, RootCountExpectationExact) {
  for (const auto& [ni, eta_i] : std::vector<std::pair<NodeId, NodeId>>{
           {100, 7}, {1000, 13}, {12345, 678}}) {
    RootSizeSampler sampler(ni, eta_i);
    EXPECT_NEAR(sampler.ExpectedK(),
                static_cast<double>(ni) / static_cast<double>(eta_i), 1e-12);
  }
}

// §3.3's Remark bounds, at their extreme points: floor-only rounding
// approaches 1 − 1/√e and ceil-only approaches 2 somewhere in the grid.
TEST(PaperFidelityTest, RemarkBoundsAreTight) {
  double floor_min = 2.0;
  double ceil_max = 0.0;
  for (uint64_t n : {100u, 500u, 2000u}) {
    // The floor rule is loosest where frac(n/η) → 1 (k stuck one below its
    // target), so probe η just above n/(j+1) for small j, plus a coarse grid.
    std::vector<uint64_t> etas;
    for (uint64_t j = 1; j <= 6; ++j) etas.push_back(n / (j + 1) + 1);
    for (uint64_t eta = 2; eta <= n / 2; eta += std::max<uint64_t>(1, eta / 3)) {
      etas.push_back(eta);
    }
    for (uint64_t eta : etas) {
      if (eta < 1 || eta > n) continue;
      for (uint64_t x = 1; x <= n; x = std::max(x + 1, x * 5 / 4)) {
        floor_min =
            std::min(floor_min, EstimatorBiasRatio(x, n, eta, RootRounding::kFloor));
        ceil_max =
            std::max(ceil_max, EstimatorBiasRatio(x, n, eta, RootRounding::kCeil));
      }
      floor_min =
          std::min(floor_min, EstimatorBiasRatio(eta, n, eta, RootRounding::kFloor));
    }
  }
  const double one_minus_inv_sqrt_e = 1.0 - 1.0 / std::sqrt(2.718281828459045);
  constexpr double kOneMinusInvE = 1.0 - 1.0 / 2.718281828459045;
  EXPECT_GE(floor_min, one_minus_inv_sqrt_e - 1e-9);  // never below the Remark's floor
  EXPECT_LT(floor_min, kOneMinusInvE);  // genuinely violates Theorem 3.3's bracket
  EXPECT_LE(ceil_max, 2.0 + 1e-9);      // never above the Remark's cap
  EXPECT_GT(ceil_max, 1.5);             // and genuinely approaches it
}

}  // namespace
}  // namespace asti
