// Tests for diffusion/realization.h: live-edge statistics and invariants
// for both IC and LT realizations.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "diffusion/realization.h"

namespace asti {
namespace {

DirectedGraph UniformGraph(double p) {
  Rng rng(21);
  auto graph =
      BuildWeightedGraph(MakeErdosRenyi(60, 400, rng), WeightScheme::kUniform, p);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(IcRealizationTest, LiveFractionMatchesProbability) {
  const DirectedGraph graph = UniformGraph(0.3);
  Rng rng(22);
  size_t live = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    live += Realization::SampleIc(graph, rng).CountLiveEdges();
  }
  const double fraction =
      static_cast<double>(live) / (static_cast<double>(trials) * graph.NumEdges());
  EXPECT_NEAR(fraction, 0.3, 0.01);
}

TEST(IcRealizationTest, ProbabilityOneEdgesAlwaysLive) {
  const DirectedGraph graph = UniformGraph(1.0);
  Rng rng(23);
  const Realization realization = Realization::SampleIc(graph, rng);
  EXPECT_EQ(realization.CountLiveEdges(), graph.NumEdges());
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) EXPECT_TRUE(realization.IsLive(e));
}

TEST(IcRealizationTest, PerEdgeFrequencyMatchesItsProbability) {
  // Mixed probabilities: check each edge individually.
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(0, 1, 0.2).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2, 0.8).ok());
  const DirectedGraph graph = std::move(builder.Build()).value();
  Rng rng(24);
  int live0 = 0;
  int live1 = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const Realization realization = Realization::SampleIc(graph, rng);
    live0 += realization.IsLive(0) ? 1 : 0;
    live1 += realization.IsLive(1) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(live0) / trials, 0.2, 0.01);
  EXPECT_NEAR(static_cast<double>(live1) / trials, 0.8, 0.01);
}

TEST(IcRealizationTest, DeterministicGivenRngState) {
  const DirectedGraph graph = UniformGraph(0.5);
  Rng rng1(25);
  Rng rng2(25);
  const Realization a = Realization::SampleIc(graph, rng1);
  const Realization b = Realization::SampleIc(graph, rng2);
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
    EXPECT_EQ(a.IsLive(e), b.IsLive(e));
  }
}

DirectedGraph WcGraph() {
  Rng rng(26);
  auto graph = BuildWeightedGraph(MakeErdosRenyi(80, 600, rng),
                                  WeightScheme::kWeightedCascade);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(LtRealizationTest, AtMostOneLiveInEdgePerNode) {
  const DirectedGraph graph = WcGraph();
  Rng rng(27);
  for (int t = 0; t < 50; ++t) {
    const Realization realization = Realization::SampleLt(graph, rng);
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      int live_in = 0;
      for (EdgeId e : graph.InEdgeIds(v)) live_in += realization.IsLive(e) ? 1 : 0;
      EXPECT_LE(live_in, 1);
      if (live_in == 1) {
        EXPECT_NE(realization.ChosenSource(v), kInvalidNode);
      } else {
        EXPECT_EQ(realization.ChosenSource(v), kInvalidNode);
      }
    }
  }
}

TEST(LtRealizationTest, WeightedCascadeAlwaysPicksAnEdge) {
  // Under WC the in-probabilities of any node with indeg > 0 sum to exactly
  // 1, so LT always selects a live in-edge for such nodes.
  const DirectedGraph graph = WcGraph();
  Rng rng(28);
  const Realization realization = Realization::SampleLt(graph, rng);
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    if (graph.InDegree(v) > 0) {
      EXPECT_NE(realization.ChosenSource(v), kInvalidNode) << "node " << v;
    }
  }
}

TEST(LtRealizationTest, ChoiceFrequencyMatchesEdgeProbability) {
  // Node 2 has in-edges from 0 (p=.25) and 1 (p=.25): each chosen ~25%,
  // none ~50%.
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(0, 2, 0.25).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2, 0.25).ok());
  const DirectedGraph graph = std::move(builder.Build()).value();
  Rng rng(29);
  int chose0 = 0;
  int chose1 = 0;
  int none = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const Realization realization = Realization::SampleLt(graph, rng);
    const NodeId source = realization.ChosenSource(2);
    if (source == 0) {
      ++chose0;
    } else if (source == 1) {
      ++chose1;
    } else {
      ++none;
    }
  }
  EXPECT_NEAR(static_cast<double>(chose0) / trials, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(chose1) / trials, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(none) / trials, 0.50, 0.02);
}

TEST(LtRealizationTest, CountLiveEdgesEqualsNodesWithChoice) {
  const DirectedGraph graph = WcGraph();
  Rng rng(30);
  const Realization realization = Realization::SampleLt(graph, rng);
  size_t with_choice = 0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    if (realization.ChosenSource(v) != kInvalidNode) ++with_choice;
  }
  EXPECT_EQ(realization.CountLiveEdges(), with_choice);
}

}  // namespace
}  // namespace asti
