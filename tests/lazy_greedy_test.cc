// Tests for coverage/lazy_greedy.h: exact agreement with the eager greedy
// across random instances and the candidate-restriction contract.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "coverage/lazy_greedy.h"
#include "coverage/max_coverage.h"
#include "graph/generators.h"
#include "sampling/rr_set.h"
#include "util/rng.h"

namespace asti {
namespace {

RrCollection RandomCollection(NodeId n, int num_sets, uint64_t seed) {
  Rng rng(seed);
  RrCollection collection(n);
  for (int s = 0; s < num_sets; ++s) {
    const size_t size = 1 + rng.NextBounded(5);
    std::set<NodeId> set;
    while (set.size() < size) set.insert(static_cast<NodeId>(rng.NextBounded(n)));
    for (NodeId v : set) collection.PushNode(v);
    collection.SealSet();
  }
  return collection;
}

TEST(LazyGreedyTest, MatchesEagerGreedyOnRandomInstances) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const RrCollection collection = RandomCollection(40, 200, seed);
    for (NodeId budget : {1u, 3u, 8u}) {
      const MaxCoverageResult eager = GreedyMaxCoverage(collection, budget);
      const MaxCoverageResult lazy = LazyGreedyMaxCoverage(collection, budget);
      EXPECT_EQ(lazy.selected, eager.selected) << "seed " << seed << " b " << budget;
      EXPECT_EQ(lazy.covered_sets, eager.covered_sets);
      EXPECT_EQ(lazy.marginal_coverage, eager.marginal_coverage);
    }
  }
}

TEST(LazyGreedyTest, MatchesOnRealRrSets) {
  Rng graph_rng(231);
  auto graph = BuildWeightedGraph(MakeBarabasiAlbert(300, 2, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  RrSampler sampler(*graph, DiffusionModel::kIndependentCascade);
  RrCollection collection(300);
  std::vector<NodeId> all_nodes(300);
  std::iota(all_nodes.begin(), all_nodes.end(), 0);
  Rng rng(232);
  for (int i = 0; i < 3000; ++i) sampler.Generate(all_nodes, nullptr, collection, rng);
  const MaxCoverageResult eager = GreedyMaxCoverage(collection, 16);
  const MaxCoverageResult lazy = LazyGreedyMaxCoverage(collection, 16);
  EXPECT_EQ(lazy.selected, eager.selected);
  EXPECT_EQ(lazy.covered_sets, eager.covered_sets);
}

TEST(LazyGreedyTest, HonorsCandidateRestriction) {
  const RrCollection collection = RandomCollection(20, 100, 5);
  std::vector<NodeId> candidates = {3, 7, 11, 15};
  const MaxCoverageResult lazy = LazyGreedyMaxCoverage(collection, 3, &candidates);
  ASSERT_EQ(lazy.selected.size(), 3u);
  for (NodeId v : lazy.selected) {
    EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), v) != candidates.end());
  }
  const MaxCoverageResult eager = GreedyMaxCoverage(collection, 3, &candidates);
  EXPECT_EQ(lazy.selected, eager.selected);
}

TEST(LazyGreedyTest, DuplicateCandidatesSelectedAtMostOnce) {
  // Regression: a duplicated candidate used to get two heap entries, and
  // the second pop re-evaluated to gain 0 and was accepted as a filler
  // pick — returning the same node twice and corrupting TRIM-B's
  // residual-list contract.
  const RrCollection collection = RandomCollection(12, 60, 7);
  std::vector<NodeId> candidates = {4, 4, 9, 4, 9, 2};
  const MaxCoverageResult lazy = LazyGreedyMaxCoverage(collection, 5, &candidates);
  EXPECT_EQ(lazy.selected.size(), 3u);  // pool counts unique nodes
  std::set<NodeId> unique(lazy.selected.begin(), lazy.selected.end());
  EXPECT_EQ(unique.size(), lazy.selected.size());
  // Same result as the deduplicated candidate list.
  std::vector<NodeId> deduped = {4, 9, 2};
  const MaxCoverageResult reference = LazyGreedyMaxCoverage(collection, 5, &deduped);
  EXPECT_EQ(lazy.selected, reference.selected);
  EXPECT_EQ(lazy.marginal_coverage, reference.marginal_coverage);
}

TEST(LazyGreedyTest, BudgetBeyondCandidatesClamps) {
  const RrCollection collection = RandomCollection(10, 30, 9);
  std::vector<NodeId> candidates = {1, 2};
  const MaxCoverageResult lazy = LazyGreedyMaxCoverage(collection, 10, &candidates);
  EXPECT_EQ(lazy.selected.size(), 2u);
}

TEST(LazyGreedyTest, EmptyCollectionStillSelects) {
  RrCollection collection(6);
  const MaxCoverageResult lazy = LazyGreedyMaxCoverage(collection, 2);
  EXPECT_EQ(lazy.selected.size(), 2u);
  EXPECT_EQ(lazy.covered_sets, 0u);
}

}  // namespace
}  // namespace asti
