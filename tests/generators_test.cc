// Tests for graph/generators.h and graph/weight_models.h: structural
// invariants, determinism, degree shapes, and the paper's fixture graphs.

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "graph/weight_models.h"

namespace asti {
namespace {

TEST(FixturesTest, PathShape) {
  const EdgeSkeleton path = MakePath(5);
  EXPECT_EQ(path.num_nodes, 5u);
  ASSERT_EQ(path.edges.size(), 4u);
  for (size_t i = 0; i < path.edges.size(); ++i) {
    EXPECT_EQ(path.edges[i].source, i);
    EXPECT_EQ(path.edges[i].target, i + 1);
  }
}

TEST(FixturesTest, CycleClosesPath) {
  const EdgeSkeleton cycle = MakeCycle(4);
  ASSERT_EQ(cycle.edges.size(), 4u);
  EXPECT_EQ(cycle.edges.back().source, 3u);
  EXPECT_EQ(cycle.edges.back().target, 0u);
}

TEST(FixturesTest, StarFansOut) {
  const EdgeSkeleton star = MakeStar(6);
  ASSERT_EQ(star.edges.size(), 5u);
  for (const Edge& e : star.edges) EXPECT_EQ(e.source, 0u);
}

TEST(FixturesTest, CompleteHasAllPairs) {
  const EdgeSkeleton complete = MakeComplete(4);
  EXPECT_EQ(complete.edges.size(), 12u);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const Edge& e : complete.edges) {
    EXPECT_NE(e.source, e.target);
    seen.insert({e.source, e.target});
  }
  EXPECT_EQ(seen.size(), 12u);
}

TEST(FixturesTest, LayeredDagShape) {
  const EdgeSkeleton dag = MakeLayeredDag(3, 2);
  EXPECT_EQ(dag.num_nodes, 6u);
  EXPECT_EQ(dag.edges.size(), 8u);  // 2 layer gaps * 2 * 2
  for (const Edge& e : dag.edges) {
    EXPECT_EQ(e.target / 2, e.source / 2 + 1);  // always next layer
  }
}

TEST(FixturesTest, PaperFigure1GraphMatchesPaper) {
  auto graph = MakePaperFigure1Graph();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->NumNodes(), 6u);
  EXPECT_EQ(graph->NumEdges(), 7u);
  // v1 -> v4 with probability 0.9 (0-indexed: 0 -> 3).
  auto neighbors = graph->OutNeighbors(0);
  auto probs = graph->OutProbabilities(0);
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0], 3u);
  EXPECT_DOUBLE_EQ(probs[0], 0.9);
}

TEST(FixturesTest, PaperFigure2GraphMatchesPaper) {
  auto graph = MakePaperFigure2Graph();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->NumNodes(), 4u);
  EXPECT_EQ(graph->NumEdges(), 4u);
  EXPECT_DOUBLE_EQ(graph->InProbabilitySum(3), 2.0);  // two prob-1 in-edges
}

TEST(ErdosRenyiTest, ExactEdgeCountNoDuplicates) {
  Rng rng(1);
  const EdgeSkeleton skeleton = MakeErdosRenyi(50, 300, rng);
  EXPECT_EQ(skeleton.edges.size(), 300u);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const Edge& e : skeleton.edges) {
    EXPECT_NE(e.source, e.target);
    EXPECT_LT(e.source, 50u);
    EXPECT_LT(e.target, 50u);
    EXPECT_TRUE(seen.insert({e.source, e.target}).second);
  }
}

TEST(ErdosRenyiTest, DeterministicGivenSeed) {
  Rng rng1(42);
  Rng rng2(42);
  const EdgeSkeleton a = MakeErdosRenyi(30, 100, rng1);
  const EdgeSkeleton b = MakeErdosRenyi(30, 100, rng2);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].source, b.edges[i].source);
    EXPECT_EQ(a.edges[i].target, b.edges[i].target);
  }
}

TEST(BarabasiAlbertTest, SymmetricStructure) {
  Rng rng(2);
  const EdgeSkeleton skeleton = MakeBarabasiAlbert(200, 2, rng);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const Edge& e : skeleton.edges) seen.insert({e.source, e.target});
  for (const Edge& e : skeleton.edges) {
    EXPECT_TRUE(seen.count({e.target, e.source}))
        << "missing reverse of " << e.source << "->" << e.target;
  }
}

TEST(BarabasiAlbertTest, AverageDegreeNearTwiceAttach) {
  Rng rng(3);
  const NodeId n = 2000;
  const EdgeSkeleton skeleton = MakeBarabasiAlbert(n, 2, rng);
  // Each new node adds ~2 undirected edges -> ~4 directed per node.
  const double avg = static_cast<double>(skeleton.edges.size()) / n;
  EXPECT_GT(avg, 3.4);
  EXPECT_LT(avg, 4.6);
}

TEST(BarabasiAlbertTest, ProducesHeavyTail) {
  Rng rng(4);
  const NodeId n = 3000;
  const EdgeSkeleton skeleton = MakeBarabasiAlbert(n, 2, rng);
  std::vector<uint32_t> degree(n, 0);
  for (const Edge& e : skeleton.edges) ++degree[e.source];
  const uint32_t max_degree = *std::max_element(degree.begin(), degree.end());
  // Preferential attachment hubs should be far above the mean (~4).
  EXPECT_GT(max_degree, 40u);
}

TEST(ChungLuTest, RespectsTargetAndBounds) {
  Rng rng(5);
  const EdgeSkeleton skeleton = MakeChungLu(500, 3000, 2.1, rng);
  EXPECT_GT(skeleton.edges.size(), 2800u);  // allows rare rejection shortfall
  EXPECT_LE(skeleton.edges.size(), 3000u);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const Edge& e : skeleton.edges) {
    EXPECT_NE(e.source, e.target);
    EXPECT_TRUE(seen.insert({e.source, e.target}).second);
  }
}

TEST(ChungLuTest, LowIdsAreHubs) {
  Rng rng(6);
  const NodeId n = 2000;
  const EdgeSkeleton skeleton = MakeChungLu(n, 12000, 2.1, rng);
  std::vector<uint32_t> degree(n, 0);
  for (const Edge& e : skeleton.edges) {
    ++degree[e.source];
    ++degree[e.target];
  }
  uint64_t first_decile = 0;
  uint64_t last_decile = 0;
  for (NodeId v = 0; v < n / 10; ++v) first_decile += degree[v];
  for (NodeId v = n - n / 10; v < n; ++v) last_decile += degree[v];
  EXPECT_GT(first_decile, 4 * last_decile);
}

TEST(RMatTest, ExactEdgeCountInRange) {
  Rng rng(7);
  const EdgeSkeleton skeleton = MakeRMat(8, 1000, 0.57, 0.19, 0.19, 0.05, rng);
  EXPECT_EQ(skeleton.num_nodes, 256u);
  EXPECT_EQ(skeleton.edges.size(), 1000u);
  for (const Edge& e : skeleton.edges) {
    EXPECT_LT(e.source, 256u);
    EXPECT_LT(e.target, 256u);
    EXPECT_NE(e.source, e.target);
  }
}

TEST(WeightModelsTest, WeightedCascadeIsInverseIndegree) {
  EdgeSkeleton skeleton = MakeStar(4);  // 0 -> {1,2,3}, indeg 1 each
  skeleton.edges.push_back(Edge{1, 3, 1.0});  // node 3 gains indeg 2
  AssignWeightedCascade(skeleton.num_nodes, skeleton.edges);
  for (const Edge& e : skeleton.edges) {
    if (e.target == 3) {
      EXPECT_DOUBLE_EQ(e.probability, 0.5);
    } else {
      EXPECT_DOUBLE_EQ(e.probability, 1.0);
    }
  }
}

TEST(WeightModelsTest, WeightedCascadeSatisfiesLtConstraint) {
  Rng rng(8);
  EdgeSkeleton skeleton = MakeErdosRenyi(100, 500, rng);
  AssignWeightedCascade(skeleton.num_nodes, skeleton.edges);
  auto graph = BuildWeightedGraph(std::move(skeleton), WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  for (NodeId v = 0; v < graph->NumNodes(); ++v) {
    if (graph->InDegree(v) > 0) {
      EXPECT_NEAR(graph->InProbabilitySum(v), 1.0, 1e-9);
    }
  }
}

TEST(WeightModelsTest, UniformAssignsConstant) {
  EdgeSkeleton skeleton = MakePath(10);
  AssignUniform(skeleton.edges, 0.37);
  for (const Edge& e : skeleton.edges) EXPECT_DOUBLE_EQ(e.probability, 0.37);
}

TEST(WeightModelsTest, TrivalencyUsesThreeLevels) {
  Rng rng(9);
  EdgeSkeleton skeleton = MakeComplete(20);
  AssignTrivalency(skeleton.edges, rng);
  std::set<double> levels;
  for (const Edge& e : skeleton.edges) levels.insert(e.probability);
  EXPECT_EQ(levels.size(), 3u);
  for (double p : levels) {
    EXPECT_TRUE(p == 0.1 || p == 0.01 || p == 0.001);
  }
}

TEST(BuildWeightedGraphTest, TrivalencyRequiresRng) {
  auto graph = BuildWeightedGraph(MakePath(4), WeightScheme::kTrivalency);
  EXPECT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidArgument);
}

TEST(BuildWeightedGraphTest, UniformBuilds) {
  auto graph = BuildWeightedGraph(MakePath(4), WeightScheme::kUniform, 0.2);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->NumEdges(), 3u);
  EXPECT_DOUBLE_EQ(graph->OutProbabilities(0)[0], 0.2);
}

}  // namespace
}  // namespace asti
