// Tests for src/store/ (ASMS snapshots): round trip through the writer and
// the mmap loader, the omit-reverse rebuild, legacy ASMG conversion, the
// SnapshotStore directory convention, corruption attribution (every broken
// file yields a Status naming the offending section — never UB), sealed
// RR-collection persistence with bit-identical warm-start adoption, and
// mapping lifetime: views and catalog pins keep the file resident through
// unlink, snapshot destruction, and retire-mid-solve.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/graph_catalog.h"
#include "api/seedmin_engine.h"
#include "api/snapshot_serving.h"
#include "graph/binary_io.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "sampling/sampler_cache.h"
#include "store/snapshot_format.h"
#include "store/snapshot_store.h"
#include "store/snapshot_writer.h"
#include "util/crc32.h"

namespace asti {
namespace {

using store::FileHeader;
using store::GraphSnapshot;
using store::SectionEntry;
using store::SectionType;
using store::SnapshotStore;
using store::SnapshotVerify;
using store::SnapshotWriteOptions;

std::string TempPath(const std::string& name) { return testing::TempDir() + "/" + name; }

DirectedGraph MakeTestGraph(uint64_t seed = 411, NodeId nodes = 180, size_t edges = 1200) {
  Rng rng(seed);
  auto graph = BuildWeightedGraph(MakeErdosRenyi(nodes, edges, rng),
                                  WeightScheme::kWeightedCascade);
  ASM_CHECK(graph.ok()) << graph.status().ToString();
  return std::move(graph).value();
}

// Both CSR directions, edge by edge.
void ExpectSameAdjacency(const DirectedGraph& expected, const DirectedGraph& actual) {
  ASSERT_EQ(expected.NumNodes(), actual.NumNodes());
  ASSERT_EQ(expected.NumEdges(), actual.NumEdges());
  for (NodeId u = 0; u < expected.NumNodes(); ++u) {
    const auto out_want = expected.OutNeighbors(u);
    const auto out_got = actual.OutNeighbors(u);
    ASSERT_EQ(out_want.size(), out_got.size()) << "node " << u;
    for (size_t i = 0; i < out_want.size(); ++i) {
      EXPECT_EQ(out_want[i], out_got[i]);
      EXPECT_DOUBLE_EQ(expected.OutProbabilities(u)[i], actual.OutProbabilities(u)[i]);
    }
    const auto in_want = expected.InNeighbors(u);
    const auto in_got = actual.InNeighbors(u);
    ASSERT_EQ(in_want.size(), in_got.size()) << "node " << u;
    for (size_t i = 0; i < in_want.size(); ++i) {
      EXPECT_EQ(in_want[i], in_got[i]);
      EXPECT_DOUBLE_EQ(expected.InProbabilities(u)[i], actual.InProbabilities(u)[i]);
      EXPECT_EQ(expected.InEdgeIds(u)[i], actual.InEdgeIds(u)[i]);
    }
  }
}

// In-memory copy of a snapshot file for corruption surgery: mutate bytes,
// optionally re-seal the CRC chain (so the test reaches the check UNDER the
// checksums instead of tripping on them), write back.
struct FileSurgeon {
  std::string path;
  std::vector<char> bytes;

  static FileSurgeon Load(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    FileSurgeon surgeon;
    surgeon.path = path;
    surgeon.bytes.assign(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
    return surgeon;
  }

  FileHeader Header() const {
    FileHeader header;
    std::memcpy(&header, bytes.data(), sizeof(header));
    return header;
  }

  std::vector<SectionEntry> Table() const {
    const FileHeader header = Header();
    std::vector<SectionEntry> table(header.section_count);
    std::memcpy(table.data(), bytes.data() + sizeof(FileHeader),
                table.size() * sizeof(SectionEntry));
    return table;
  }

  void PutEntry(size_t index, const SectionEntry& entry) {
    std::memcpy(bytes.data() + sizeof(FileHeader) + index * sizeof(SectionEntry),
                &entry, sizeof(entry));
  }

  /// Recomputes the table CRC and header CRC over the current bytes, so a
  /// deliberate payload/table mutation is reachable past the CRC gates.
  void Reseal() {
    FileHeader header = Header();
    header.table_crc = Crc32(bytes.data() + sizeof(FileHeader),
                             size_t{header.section_count} * sizeof(SectionEntry));
    header.header_crc = 0;
    header.header_crc = Crc32(&header, sizeof(header));
    std::memcpy(bytes.data(), &header, sizeof(header));
  }

  void PutHeader(const FileHeader& header) {
    std::memcpy(bytes.data(), &header, sizeof(header));
    Reseal();
  }

  void Store() const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
};

// --- Round trip -------------------------------------------------------------

TEST(SnapshotStoreTest, RoundTripPreservesGraphAndMetadata) {
  const DirectedGraph graph = MakeTestGraph();
  const std::string path = TempPath("roundtrip.asms");
  ASSERT_TRUE(store::WriteSnapshot(graph, "roundtrip", WeightScheme::kWeightedCascade,
                                   {}, path)
                  .ok());
  auto snapshot = store::OpenSnapshot(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->name, "roundtrip");
  EXPECT_EQ(snapshot->weight_scheme, WeightScheme::kWeightedCascade);
  EXPECT_NE(snapshot->graph_digest, 0u);
  EXPECT_FALSE(snapshot->reverse_rebuilt);
  EXPECT_EQ(snapshot->collection_sections, 0u);
  EXPECT_EQ(snapshot->file_bytes, std::filesystem::file_size(path));
  ExpectSameAdjacency(graph, snapshot->graph);
  // Full-checksum verification of a freshly written file must pass.
  EXPECT_TRUE(store::VerifySnapshotFile(path).ok());
  std::filesystem::remove(path);
}

TEST(SnapshotStoreTest, OmittedReverseCsrIsRebuiltIdentically) {
  const DirectedGraph graph = MakeTestGraph(412);
  const std::string full_path = TempPath("full.asms");
  const std::string compact_path = TempPath("compact.asms");
  SnapshotWriteOptions compact;
  compact.include_reverse_csr = false;
  ASSERT_TRUE(store::WriteSnapshot(graph, "g", WeightScheme::kWeightedCascade, {},
                                   full_path)
                  .ok());
  ASSERT_TRUE(store::WriteSnapshot(graph, "g", WeightScheme::kWeightedCascade, {},
                                   compact_path, compact)
                  .ok());
  EXPECT_LT(std::filesystem::file_size(compact_path),
            std::filesystem::file_size(full_path));
  auto snapshot = store::OpenSnapshot(compact_path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_TRUE(snapshot->reverse_rebuilt);
  ExpectSameAdjacency(graph, snapshot->graph);
  std::filesystem::remove(full_path);
  std::filesystem::remove(compact_path);
}

TEST(SnapshotStoreTest, EmptyGraphRoundTrips) {
  GraphBuilder builder(9);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  const std::string path = TempPath("empty.asms");
  ASSERT_TRUE(
      store::WriteSnapshot(*graph, "empty", WeightScheme::kUniform, {}, path).ok());
  auto snapshot = store::OpenSnapshot(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->graph.NumNodes(), 9u);
  EXPECT_EQ(snapshot->graph.NumEdges(), 0u);
  EXPECT_EQ(snapshot->weight_scheme, WeightScheme::kUniform);
  std::filesystem::remove(path);
}

TEST(SnapshotStoreTest, ConvertAsmgV1MatchesOriginal) {
  const DirectedGraph graph = MakeTestGraph(413);
  const std::string asmg_path = TempPath("legacy.asmg");
  const std::string asms_path = TempPath("converted.asms");
  ASSERT_TRUE(SaveGraphBinary(graph, asmg_path).ok());

  // Opening the legacy file as a snapshot is refused with a redirect to the
  // conversion path, not a generic bad-magic error.
  auto as_snapshot = store::OpenSnapshot(asmg_path);
  ASSERT_FALSE(as_snapshot.ok());
  EXPECT_EQ(as_snapshot.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(as_snapshot.status().ToString().find("convert"), std::string::npos)
      << as_snapshot.status().ToString();

  ASSERT_TRUE(store::ConvertAsmgV1(asmg_path, asms_path, "legacy",
                                   WeightScheme::kWeightedCascade)
                  .ok());
  auto converted = store::OpenSnapshot(asms_path);
  ASSERT_TRUE(converted.ok()) << converted.status().ToString();
  EXPECT_EQ(converted->name, "legacy");
  ExpectSameAdjacency(graph, converted->graph);
  std::filesystem::remove(asmg_path);
  std::filesystem::remove(asms_path);
}

TEST(SnapshotStoreTest, DirectoryStoreSaveLoadList) {
  const std::string dir = TempPath("snapdir");
  std::filesystem::remove_all(dir);
  const SnapshotStore snapshots(dir);
  const DirectedGraph alpha = MakeTestGraph(414, 90, 500);
  const DirectedGraph beta = MakeTestGraph(415, 70, 400);
  ASSERT_TRUE(snapshots.Save(alpha, "alpha", WeightScheme::kWeightedCascade).ok());
  ASSERT_TRUE(snapshots.Save(beta, "beta", WeightScheme::kUniform).ok());

  auto names = snapshots.ListNames();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"alpha", "beta"}));

  auto loaded = snapshots.Load("beta");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->weight_scheme, WeightScheme::kUniform);
  ExpectSameAdjacency(beta, loaded->graph);

  EXPECT_EQ(snapshots.Load("gamma").status().code(), StatusCode::kNotFound);
  // Path traversal in a name must be refused before touching the fs.
  EXPECT_EQ(snapshots.Load("../evil").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(snapshots.Save(alpha, "a/b", WeightScheme::kUniform).code(),
            StatusCode::kInvalidArgument);
  std::filesystem::remove_all(dir);
}

// --- Corruption: every broken file is a Status, never UB --------------------

TEST(SnapshotCorruptionTest, TruncatedFileIsRejected) {
  const DirectedGraph graph = MakeTestGraph(416);
  const std::string path = TempPath("truncated.asms");
  ASSERT_TRUE(
      store::WriteSnapshot(graph, "t", WeightScheme::kWeightedCascade, {}, path).ok());
  FileSurgeon surgeon = FileSurgeon::Load(path);
  surgeon.bytes.resize(surgeon.bytes.size() / 2);
  surgeon.Store();
  auto snapshot = store::OpenSnapshot(path);
  ASSERT_FALSE(snapshot.ok());
  EXPECT_EQ(snapshot.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(SnapshotCorruptionTest, FlippedByteInEverySectionIsCaughtByChecksums) {
  // Persist graph + a sealed collection so every section type is present,
  // then flip one mid-payload byte per section: the full-checksum tier must
  // attribute each flip to its section. (Structural mode deliberately
  // trusts payload bytes — that is its documented contract.)
  const DirectedGraph graph = MakeTestGraph(417);
  SamplerCache cache(graph);
  cache.Acquire(SamplerCacheKey::Rr(DiffusionModel::kIndependentCascade), 32,
                nullptr, nullptr, nullptr);
  const std::vector<SealedCollectionExport> sealed = cache.ExportSealed();
  ASSERT_FALSE(sealed.empty());
  const std::string path = TempPath("bitrot.asms");
  ASSERT_TRUE(
      store::WriteSnapshot(graph, "b", WeightScheme::kWeightedCascade, sealed, path)
          .ok());
  ASSERT_TRUE(store::VerifySnapshotFile(path).ok());

  const FileSurgeon pristine = FileSurgeon::Load(path);
  const std::vector<SectionEntry> table = pristine.Table();
  for (size_t i = 0; i < table.size(); ++i) {
    if (table[i].bytes == 0) continue;
    FileSurgeon surgeon = pristine;
    surgeon.bytes[table[i].offset + table[i].bytes / 2] ^= char{0x40};
    surgeon.Store();
    const Status status = store::VerifySnapshotFile(path);
    ASSERT_FALSE(status.ok()) << "flip in section " << i << " not caught";
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.ToString().find("section " + std::to_string(i)),
              std::string::npos)
        << "section " << i << " not named in: " << status.ToString();
  }
  pristine.Store();
  EXPECT_TRUE(store::VerifySnapshotFile(path).ok());
  std::filesystem::remove(path);
}

TEST(SnapshotCorruptionTest, SectionOffsetOutOfRangeIsRejected) {
  const DirectedGraph graph = MakeTestGraph(418);
  const std::string path = TempPath("oob.asms");
  ASSERT_TRUE(
      store::WriteSnapshot(graph, "o", WeightScheme::kWeightedCascade, {}, path).ok());
  FileSurgeon surgeon = FileSurgeon::Load(path);
  SectionEntry entry = surgeon.Table()[1];
  entry.offset = store::AlignUp(surgeon.bytes.size());  // aligned, but past EOF
  surgeon.PutEntry(1, entry);
  surgeon.Reseal();  // reachable past the table CRC: the bounds check must fire
  surgeon.Store();
  auto snapshot = store::OpenSnapshot(path);
  ASSERT_FALSE(snapshot.ok());
  EXPECT_EQ(snapshot.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(snapshot.status().ToString().find("out of file range"), std::string::npos)
      << snapshot.status().ToString();
  std::filesystem::remove(path);
}

TEST(SnapshotCorruptionTest, CollectionFromDifferentGraphIsRejected) {
  // A collection section whose graph_digest does not match the file's own
  // graph simulates a stale/cross-pasted cache: refused in O(1) at open,
  // with the mismatch named, under BOTH verify tiers.
  const DirectedGraph graph = MakeTestGraph(419);
  SamplerCache cache(graph);
  cache.Acquire(SamplerCacheKey::Rr(DiffusionModel::kIndependentCascade), 16,
                nullptr, nullptr, nullptr);
  const std::vector<SealedCollectionExport> sealed = cache.ExportSealed();
  ASSERT_FALSE(sealed.empty());
  const std::string path = TempPath("cross.asms");
  ASSERT_TRUE(
      store::WriteSnapshot(graph, "c", WeightScheme::kWeightedCascade, sealed, path)
          .ok());

  FileSurgeon surgeon = FileSurgeon::Load(path);
  const std::vector<SectionEntry> table = surgeon.Table();
  bool found = false;
  for (size_t i = 0; i < table.size(); ++i) {
    if (table[i].type != static_cast<uint32_t>(SectionType::kRrCollection)) continue;
    found = true;
    store::CollectionSectionHeader header;
    std::memcpy(&header, surgeon.bytes.data() + table[i].offset, sizeof(header));
    header.graph_digest ^= 0xdeadbeefULL;  // "written for some other graph"
    std::memcpy(surgeon.bytes.data() + table[i].offset, &header, sizeof(header));
    SectionEntry entry = table[i];
    entry.payload_crc =
        Crc32(surgeon.bytes.data() + entry.offset, static_cast<size_t>(entry.bytes));
    surgeon.PutEntry(i, entry);
  }
  ASSERT_TRUE(found);
  surgeon.Reseal();
  surgeon.Store();
  for (const SnapshotVerify verify :
       {SnapshotVerify::kStructural, SnapshotVerify::kChecksums}) {
    auto snapshot = store::OpenSnapshot(path, verify);
    ASSERT_FALSE(snapshot.ok());
    EXPECT_EQ(snapshot.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(snapshot.status().ToString().find("different graph"), std::string::npos)
        << snapshot.status().ToString();
  }
  std::filesystem::remove(path);
}

// --- Warm start: adopted prefixes are bit-identical to cold generation ------

TEST(SnapshotWarmStartTest, AdoptedPrefixMatchesColdGenerationExactly) {
  const DirectedGraph graph = MakeTestGraph(420);
  const auto key = SamplerCacheKey::Rr(DiffusionModel::kIndependentCascade);

  SamplerCache seeding_cache(graph);
  seeding_cache.Acquire(key, 96, nullptr, nullptr, nullptr);
  const std::vector<SealedCollectionExport> sealed = seeding_cache.ExportSealed();
  ASSERT_EQ(sealed.size(), 1u);
  const size_t persisted_sets = sealed[0].view.NumSets();
  ASSERT_GE(persisted_sets, 96u);

  const std::string path = TempPath("warm.asms");
  ASSERT_TRUE(
      store::WriteSnapshot(graph, "w", WeightScheme::kWeightedCascade, sealed, path)
          .ok());
  auto snapshot = store::OpenSnapshot(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_EQ(snapshot->collection_sections, 1u);
  ASSERT_NE(snapshot->warm, nullptr);

  // The warm cache starts from the mapped prefix and extends PAST it; the
  // cold cache generates everything. Every set and the coverage checkpoint
  // must agree — the certified-reuse contract, now across a process
  // boundary.
  const size_t target = persisted_sets + 32;
  SamplerCache warm_cache(snapshot->graph, snapshot->warm);
  const CollectionView warm_view = warm_cache.Acquire(key, target, nullptr, nullptr,
                                                      nullptr);
  SamplerCache cold_cache(graph);
  const CollectionView cold_view = cold_cache.Acquire(key, target, nullptr, nullptr,
                                                      nullptr);
  ASSERT_EQ(warm_view.NumSets(), target);
  ASSERT_EQ(cold_view.NumSets(), target);
  for (size_t i = 0; i < target; ++i) {
    const auto want = cold_view.Set(i);
    const auto got = warm_view.Set(i);
    ASSERT_EQ(want.size(), got.size()) << "set " << i;
    for (size_t j = 0; j < want.size(); ++j) {
      ASSERT_EQ(want[j], got[j]) << "set " << i << " entry " << j;
    }
  }
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    ASSERT_EQ(cold_view.Coverage(v), warm_view.Coverage(v)) << "node " << v;
  }
  const SamplerCacheStats stats = warm_cache.Stats();
  EXPECT_EQ(stats.warm_starts, 1u);
  EXPECT_EQ(stats.sets_adopted, persisted_sets);
  std::filesystem::remove(path);
}

// --- Lifetime: pins keep the mapping alive ----------------------------------

TEST(SnapshotLifetimeTest, GraphViewsOutliveSnapshotAndFile) {
  const DirectedGraph graph = MakeTestGraph(421);
  const std::string path = TempPath("unlinked.asms");
  ASSERT_TRUE(
      store::WriteSnapshot(graph, "u", WeightScheme::kWeightedCascade, {}, path).ok());
  DirectedGraph view = [&path] {
    auto snapshot = store::OpenSnapshot(path);
    ASM_CHECK(snapshot.ok()) << snapshot.status().ToString();
    return std::move(snapshot->graph);
    // GraphSnapshot (and its warm source slot) dies here; the graph copy
    // carries the payload pin.
  }();
  std::filesystem::remove(path);  // mmap survives unlink
  ExpectSameAdjacency(graph, view);  // ASan would flag any dangling access
}

TEST(SnapshotLifetimeTest, RetireMidSolveKeepsMappingAlive) {
  const DirectedGraph graph = MakeTestGraph(422);
  const std::string path = TempPath("retire.asms");
  ASSERT_TRUE(store::WriteSnapshot(graph, "retiree", WeightScheme::kWeightedCascade,
                                   {}, path)
                  .ok());

  std::vector<SolveRequest> requests;
  for (uint64_t i = 0; i < 6; ++i) {
    SolveRequest request;
    request.graph = "retiree";
    request.algorithm = i % 2 == 0 ? AlgorithmId::kAsti : AlgorithmId::kAteuc;
    request.eta = 20;
    request.realizations = 2;
    request.seed = 900 + i;
    request.keep_traces = true;
    requests.push_back(request);
  }
  const auto fingerprint = [](const SolveResult& result) {
    std::ostringstream out;
    for (const AdaptiveRunTrace& trace : result.traces) {
      for (NodeId seed : trace.seeds) out << seed << ',';
      out << '/' << trace.total_activated << ';';
    }
    for (size_t count : result.seed_counts) out << count << '|';
    return out.str();
  };

  // Reference run: same snapshot file and pool size, no retire (results at
  // pool size 1 vs >1 legitimately differ — engine_test pins that).
  std::vector<std::string> reference;
  {
    GraphCatalog catalog;
    ASSERT_TRUE(RegisterSnapshotFile(catalog, path).ok());
    SeedMinEngine engine(catalog, {2});
    for (const SolveRequest& request : requests) {
      const auto solved = engine.Solve(request);
      ASSERT_TRUE(solved.ok()) << solved.status().ToString();
      reference.push_back(fingerprint(*solved));
    }
  }

  // Retire the entry while the submitted batch is still in flight: every
  // solve runs on its pinned snapshot, and the pins (graph spans into the
  // mapping) stay valid until the last future drains. TSAN/ASan runs of
  // this test are the actual assertion.
  GraphCatalog catalog;
  ASSERT_TRUE(RegisterSnapshotFile(catalog, path).ok());
  std::filesystem::remove(path);
  SeedMinEngine::ServingOptions options;
  options.num_threads = 2;
  options.num_drivers = 2;
  options.max_queue_depth = requests.size();
  options.block_when_full = true;
  SeedMinEngine engine(catalog, options);
  std::vector<std::future<StatusOr<SolveResult>>> futures;
  for (const SolveRequest& request : requests) {
    futures.push_back(engine.SubmitAsync(request));
  }
  ASSERT_TRUE(catalog.Retire("retiree").ok());
  for (size_t i = 0; i < futures.size(); ++i) {
    const StatusOr<SolveResult> solved = futures[i].get();
    ASSERT_TRUE(solved.ok()) << solved.status().ToString();
    EXPECT_EQ(fingerprint(*solved), reference[i]) << "request " << i;
  }
  // New submissions must now miss: the name is gone, only pins survived.
  EXPECT_EQ(engine.Solve(requests.front()).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace asti
