// Tests for graph/edge_list_io.h: parsing, validation, save/load round trip.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "graph/edge_list_io.h"
#include "graph/graph_builder.h"

namespace asti {
namespace {

TEST(EdgeListIoTest, ParsesWeightedEdges) {
  auto file = ParseEdgeList("0 1 0.5\n1 2 0.25\n");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->num_nodes, 3u);
  ASSERT_EQ(file->edges.size(), 2u);
  EXPECT_TRUE(file->has_probabilities);
  EXPECT_DOUBLE_EQ(file->edges[0].probability, 0.5);
}

TEST(EdgeListIoTest, ParsesUnweightedEdges) {
  auto file = ParseEdgeList("0 1\n2 0\n");
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE(file->has_probabilities);
  EXPECT_EQ(file->num_nodes, 3u);
}

TEST(EdgeListIoTest, SkipsCommentsAndBlankLines) {
  auto file = ParseEdgeList("# header\n\n% other comment\n0 1 0.5\n");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->edges.size(), 1u);
}

TEST(EdgeListIoTest, UndirectedHeaderDetected) {
  auto file = ParseEdgeList("# undirected\n0 1 0.5\n");
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(file->undirected);
}

TEST(EdgeListIoTest, RejectsMalformedLine) {
  auto file = ParseEdgeList("0 x 0.5\n");
  EXPECT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kInvalidArgument);
}

TEST(EdgeListIoTest, RejectsNegativeIds) {
  EXPECT_FALSE(ParseEdgeList("-1 2 0.5\n").ok());
}

TEST(EdgeListIoTest, RejectsBadProbability) {
  EXPECT_FALSE(ParseEdgeList("0 1 1.5\n").ok());
  EXPECT_FALSE(ParseEdgeList("0 1 0\n").ok());
}

TEST(EdgeListIoTest, RejectsMixedWeightedUnweighted) {
  auto file = ParseEdgeList("0 1 0.5\n1 2\n");
  EXPECT_FALSE(file.ok());
}

TEST(EdgeListIoTest, BuildGraphDirected) {
  auto file = ParseEdgeList("0 1 0.5\n1 2 0.25\n");
  ASSERT_TRUE(file.ok());
  auto graph = BuildGraphFromEdgeList(*file);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->NumNodes(), 3u);
  EXPECT_EQ(graph->NumEdges(), 2u);
}

TEST(EdgeListIoTest, BuildGraphUndirectedDoubles) {
  auto file = ParseEdgeList("# undirected\n0 1 0.5\n");
  ASSERT_TRUE(file.ok());
  auto graph = BuildGraphFromEdgeList(*file);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->NumEdges(), 2u);
}

TEST(EdgeListIoTest, LoadMissingFileIsIOError) {
  auto file = LoadEdgeList("/nonexistent/path/to/edges.txt");
  EXPECT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kIOError);
}

TEST(EdgeListIoTest, SaveLoadRoundTrip) {
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2, 0.125).ok());
  ASSERT_TRUE(builder.AddEdge(2, 0, 1.0).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());

  const std::string path = testing::TempDir() + "/asti_edge_list_test.txt";
  ASSERT_TRUE(SaveEdgeList(*graph, path).ok());
  auto reloaded_file = LoadEdgeList(path);
  ASSERT_TRUE(reloaded_file.ok());
  auto reloaded = BuildGraphFromEdgeList(*reloaded_file);
  ASSERT_TRUE(reloaded.ok());

  EXPECT_EQ(reloaded->NumNodes(), graph->NumNodes());
  EXPECT_EQ(reloaded->NumEdges(), graph->NumEdges());
  const auto original_edges = graph->ToEdgeList();
  const auto reloaded_edges = reloaded->ToEdgeList();
  for (size_t i = 0; i < original_edges.size(); ++i) {
    EXPECT_EQ(original_edges[i].source, reloaded_edges[i].source);
    EXPECT_EQ(original_edges[i].target, reloaded_edges[i].target);
    EXPECT_NEAR(original_edges[i].probability, reloaded_edges[i].probability, 1e-9);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace asti
