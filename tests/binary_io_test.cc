// Tests for graph/binary_io.h: round trip, corruption handling.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "diffusion/realization.h"
#include "graph/binary_io.h"
#include "graph/graph_builder.h"
#include "graph/generators.h"

namespace asti {
namespace {

std::string TempPath(const char* name) { return testing::TempDir() + "/" + name; }

TEST(BinaryIoTest, RoundTripPreservesGraph) {
  Rng rng(331);
  auto graph = BuildWeightedGraph(MakeErdosRenyi(200, 1500, rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  const std::string path = TempPath("asti_graph.asmg");
  ASSERT_TRUE(SaveGraphBinary(*graph, path).ok());
  auto loaded = LoadGraphBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumNodes(), graph->NumNodes());
  EXPECT_EQ(loaded->NumEdges(), graph->NumEdges());
  for (NodeId u = 0; u < graph->NumNodes(); ++u) {
    auto expected = graph->OutNeighbors(u);
    auto actual = loaded->OutNeighbors(u);
    ASSERT_EQ(expected.size(), actual.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i], actual[i]);
      EXPECT_DOUBLE_EQ(graph->OutProbabilities(u)[i], loaded->OutProbabilities(u)[i]);
    }
  }
  std::remove(path.c_str());
}

TEST(BinaryIoTest, EmptyGraphRoundTrips) {
  GraphBuilder builder(7);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  const std::string path = TempPath("asti_empty.asmg");
  ASSERT_TRUE(SaveGraphBinary(*graph, path).ok());
  auto loaded = LoadGraphBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumNodes(), 7u);
  EXPECT_EQ(loaded->NumEdges(), 0u);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RejectsWrongMagic) {
  const std::string path = TempPath("asti_bad_magic.asmg");
  std::ofstream(path) << "this is not a graph";
  auto loaded = LoadGraphBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RejectsTruncatedPayload) {
  Rng rng(332);
  auto graph =
      BuildWeightedGraph(MakeErdosRenyi(50, 300, rng), WeightScheme::kUniform, 0.2);
  ASSERT_TRUE(graph.ok());
  const std::string path = TempPath("asti_truncated.asmg");
  ASSERT_TRUE(SaveGraphBinary(*graph, path).ok());
  // Chop the file in half.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  auto loaded = LoadGraphBinary(path);
  ASSERT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MissingFileIsIOError) {
  auto loaded = LoadGraphBinary("/nonexistent/graph.asmg");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(LtValidationTest, AcceptsWcRejectsOverloaded) {
  Rng rng(333);
  auto wc = BuildWeightedGraph(MakeErdosRenyi(60, 300, rng),
                               WeightScheme::kWeightedCascade);
  ASSERT_TRUE(wc.ok());
  EXPECT_TRUE(ValidateLtCompatible(*wc).ok());

  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(0, 2, 0.8).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2, 0.8).ok());  // sums to 1.6 at node 2
  auto overloaded = builder.Build();
  ASSERT_TRUE(overloaded.ok());
  const Status status = ValidateLtCompatible(*overloaded);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace asti
