// Tests for benchutil/: table rendering, CLI parsing, the experiment
// runner's protocol (shared hidden realizations, ATEUC one-shot semantics,
// Table 3's N/A rule).

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "benchutil/cli.h"
#include "benchutil/experiment.h"
#include "benchutil/table.h"
#include "benchutil/timer.h"
#include "graph/generators.h"

namespace asti {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer-name", "22"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer-name"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_EQ(table.NumRows(), 2u);
}

TEST(FormatTest, DoublePrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
}

TEST(FormatTest, Counts) {
  EXPECT_EQ(FormatCount(950), "950");
  EXPECT_EQ(FormatCount(31400), "31.4K");
  EXPECT_EQ(FormatCount(1130000), "1.13M");
}

TEST(CommandLineTest, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=0.5", "--beta", "7", "--gamma"};
  CommandLine cli(5, argv);
  EXPECT_TRUE(cli.Has("alpha"));
  EXPECT_DOUBLE_EQ(cli.GetDouble("alpha", 0.0), 0.5);
  EXPECT_EQ(cli.GetInt("beta", 0), 7);
  EXPECT_TRUE(cli.Has("gamma"));
  EXPECT_EQ(cli.GetString("gamma", ""), "1");
  EXPECT_EQ(cli.GetInt("missing", 42), 42);
}

TEST(CommandLineTest, InvalidNumbersFallBack) {
  const char* argv[] = {"prog", "--x=abc"};
  CommandLine cli(2, argv);
  EXPECT_DOUBLE_EQ(cli.GetDouble("x", 1.5), 1.5);
  EXPECT_EQ(cli.GetInt("x", 3), 3);
}

TEST(EnvTest, ReadsAndFallsBack) {
  ::setenv("ASM_TEST_ENV_D", "2.5", 1);
  ::setenv("ASM_TEST_ENV_S", "12", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("ASM_TEST_ENV_D", 0.0), 2.5);
  EXPECT_EQ(EnvSize("ASM_TEST_ENV_S", 0), 12u);
  EXPECT_DOUBLE_EQ(EnvDouble("ASM_TEST_ENV_MISSING", 7.0), 7.0);
  EXPECT_EQ(EnvSize("ASM_TEST_ENV_MISSING", 9), 9u);
  ::unsetenv("ASM_TEST_ENV_D");
  ::unsetenv("ASM_TEST_ENV_S");
}

TEST(WallTimerTest, MeasuresNonNegative) {
  WallTimer timer;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(sink, 0.0);  // keep the loop observable
  EXPECT_GE(timer.Seconds(), 0.0);
  timer.Restart();
  EXPECT_LT(timer.Seconds(), 1.0);
}

class ExperimentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(201);
    auto graph = BuildWeightedGraph(MakeBarabasiAlbert(300, 2, rng),
                                    WeightScheme::kWeightedCascade);
    ASSERT_TRUE(graph.ok());
    graph_ = std::make_unique<DirectedGraph>(std::move(graph).value());
  }

  std::unique_ptr<DirectedGraph> graph_;
};

TEST_F(ExperimentTest, AdaptiveCellAlwaysReaches) {
  CellConfig config;
  config.eta = 30;
  config.algorithm = AlgorithmId::kAsti;
  config.realizations = 3;
  config.seed = 5;
  const CellResult result = RunCell(*graph_, config);
  EXPECT_TRUE(result.always_reached);
  EXPECT_EQ(result.spreads.size(), 3u);
  EXPECT_EQ(result.seed_counts.size(), 3u);
  for (double spread : result.spreads) EXPECT_GE(spread, 30.0);
  EXPECT_TRUE(result.traces.empty());  // keep_traces off
}

TEST_F(ExperimentTest, KeepTracesRetainsRounds) {
  CellConfig config;
  config.eta = 20;
  config.algorithm = AlgorithmId::kAsti;
  config.realizations = 2;
  config.keep_traces = true;
  const CellResult result = RunCell(*graph_, config);
  ASSERT_EQ(result.traces.size(), 2u);
  EXPECT_FALSE(result.traces[0].rounds.empty());
}

TEST_F(ExperimentTest, AteucCellSelectsOnce) {
  CellConfig config;
  config.eta = 30;
  config.algorithm = AlgorithmId::kAteuc;
  config.realizations = 4;
  const CellResult result = RunCell(*graph_, config);
  EXPECT_EQ(result.seed_counts.size(), 4u);
  // Non-adaptive: identical seed count on every realization.
  for (size_t count : result.seed_counts) {
    EXPECT_EQ(count, result.seed_counts[0]);
  }
}

TEST_F(ExperimentTest, SameSeedSameHiddenWorlds) {
  // Two different algorithms with the same config.seed must face the same
  // hidden realizations; verify via the deterministic degree heuristic
  // (same seed twice => identical spreads).
  CellConfig config;
  config.eta = 25;
  config.algorithm = AlgorithmId::kDegree;
  config.realizations = 3;
  config.seed = 9;
  const CellResult a = RunCell(*graph_, config);
  const CellResult b = RunCell(*graph_, config);
  EXPECT_EQ(a.spreads, b.spreads);
  EXPECT_EQ(a.seed_counts, b.seed_counts);
}

TEST_F(ExperimentTest, BatchedAlgorithmsRun) {
  for (AlgorithmId id : {AlgorithmId::kAsti2, AlgorithmId::kAsti4, AlgorithmId::kAsti8}) {
    CellConfig config;
    config.eta = 30;
    config.algorithm = id;
    config.realizations = 2;
    const CellResult result = RunCell(*graph_, config);
    EXPECT_TRUE(result.always_reached) << AlgorithmName(id);
  }
}

TEST_F(ExperimentTest, BisectionCellSelectsOnce) {
  CellConfig config;
  config.eta = 30;
  config.algorithm = AlgorithmId::kBisection;
  config.realizations = 3;
  const CellResult result = RunCell(*graph_, config);
  EXPECT_EQ(result.seed_counts.size(), 3u);
  for (size_t count : result.seed_counts) {
    EXPECT_EQ(count, result.seed_counts[0]);  // non-adaptive
  }
  EXPECT_GT(result.aggregate.mean_spread, 0.0);
}

TEST_F(ExperimentTest, ImprovementRatioFormats) {
  CellResult asti;
  asti.aggregate.mean_seeds = 10.0;
  asti.always_reached = true;
  CellResult ateuc;
  ateuc.aggregate.mean_seeds = 14.0;
  ateuc.always_reached = true;
  EXPECT_EQ(ImprovementRatio(asti, ateuc), "40.0%");
  ateuc.always_reached = false;
  EXPECT_EQ(ImprovementRatio(asti, ateuc), "N/A");
}

TEST(AlgorithmNameTest, MatchesPaperLegends) {
  EXPECT_STREQ(AlgorithmName(AlgorithmId::kAsti), "ASTI");
  EXPECT_STREQ(AlgorithmName(AlgorithmId::kAsti8), "ASTI-8");
  EXPECT_STREQ(AlgorithmName(AlgorithmId::kAdaptIm), "AdaptIM");
  EXPECT_STREQ(AlgorithmName(AlgorithmId::kAteuc), "ATEUC");
  EXPECT_STREQ(AlgorithmName(AlgorithmId::kBisection), "Bisection");
}

}  // namespace
}  // namespace asti
