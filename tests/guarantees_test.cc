// Tests for stats/guarantees.h: the paper's closed-form bounds.

#include <gtest/gtest.h>

#include <cmath>

#include "stats/guarantees.h"

namespace asti {
namespace {

GuaranteeQuery BaseQuery() {
  GuaranteeQuery query;
  query.num_nodes = 10000;
  query.num_edges = 50000;
  query.eta = 500;
  query.epsilon = 0.5;
  query.batch = 1;
  return query;
}

TEST(GuaranteesTest, MatchesTheorem37ForBatchOne) {
  const TheoreticalGuarantees g = ComputeGuarantees(BaseQuery());
  constexpr double kOneMinusInvE = 1.0 - 1.0 / 2.718281828459045;
  EXPECT_NEAR(g.per_round_ratio, kOneMinusInvE * 0.5, 1e-12);
  const double lf = std::log(500.0) + 1.0;
  EXPECT_NEAR(g.policy_factor, lf * lf, 1e-9);
  EXPECT_NEAR(g.end_to_end_ratio, g.policy_factor / g.per_round_ratio, 1e-9);
}

TEST(GuaranteesTest, BatchAddsRhoFactor) {
  GuaranteeQuery query = BaseQuery();
  query.batch = 4;
  const TheoreticalGuarantees batched = ComputeGuarantees(query);
  const TheoreticalGuarantees single = ComputeGuarantees(BaseQuery());
  const double rho4 = 1.0 - std::pow(0.75, 4);
  EXPECT_NEAR(batched.per_round_ratio, rho4 * single.per_round_ratio, 1e-12);
  EXPECT_GT(batched.end_to_end_ratio, single.end_to_end_ratio);
}

TEST(GuaranteesTest, EndToEndAboveHardnessFloor) {
  // Lemma 3.5: no poly algorithm beats (1-ξ)ln η; the achievable ratio must
  // sit above ln η for every configuration.
  for (NodeId eta : {2u, 10u, 100u, 5000u}) {
    GuaranteeQuery query = BaseQuery();
    query.eta = eta;
    const TheoreticalGuarantees g = ComputeGuarantees(query);
    EXPECT_GT(g.end_to_end_ratio, g.hardness_floor);
  }
}

TEST(GuaranteesTest, TimeBoundScalesLinearlyInEta) {
  GuaranteeQuery query = BaseQuery();
  const double t1 = ComputeGuarantees(query).expected_time_bound;
  query.eta = 1000;
  const double t2 = ComputeGuarantees(query).expected_time_bound;
  EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

TEST(GuaranteesTest, SamplesShrinkWithOptEstimate) {
  GuaranteeQuery query = BaseQuery();
  query.opt_estimate = 1.0;
  const double worst = ComputeGuarantees(query).samples_per_round;
  query.opt_estimate = 50.0;
  const double typical = ComputeGuarantees(query).samples_per_round;
  EXPECT_NEAR(worst / typical, 50.0, 1e-9);
}

TEST(GuaranteesTest, SmallerEpsilonCostsQuadratically) {
  GuaranteeQuery query = BaseQuery();
  query.epsilon = 0.5;
  const double loose = ComputeGuarantees(query).samples_per_round;
  query.epsilon = 0.25;
  const double tight = ComputeGuarantees(query).samples_per_round;
  EXPECT_NEAR(tight / loose, 4.0, 1e-9);
}

}  // namespace
}  // namespace asti
