// End-to-end integration tests: full ASTI runs on dataset surrogates, the
// paper's qualitative evaluation claims in miniature, and cross-algorithm
// comparisons on shared hidden worlds.

#include <gtest/gtest.h>

#include <numeric>

#include "baselines/adaptim.h"
#include "baselines/ateuc.h"
#include "benchutil/experiment.h"
#include "core/asti.h"
#include "core/trim.h"
#include "core/trim_b.h"
#include "graph/datasets.h"
#include "graph/generators.h"

namespace asti {
namespace {

TEST(IntegrationTest, FullRunOnNetHeptSurrogate) {
  auto graph = MakeSurrogateDataset(DatasetId::kNetHept, 0.08, 7);  // ~1.2K nodes
  ASSERT_TRUE(graph.ok());
  const NodeId eta = static_cast<NodeId>(graph->NumNodes() / 20);  // η/n = 5%
  Rng world_rng(301);
  AdaptiveWorld world(*graph, DiffusionModel::kIndependentCascade, eta, world_rng);
  Trim trim(*graph, DiffusionModel::kIndependentCascade, TrimOptions{0.5});
  Rng rng(302);
  const AdaptiveRunTrace trace = RunAdaptivePolicy(world, trim, rng);
  EXPECT_TRUE(trace.target_reached);
  EXPECT_GE(trace.total_activated, eta);
  // Sanity: far fewer seeds than η (influence amplifies).
  EXPECT_LT(trace.NumSeeds(), static_cast<size_t>(eta));
}

TEST(IntegrationTest, AdaptiveAlwaysMeetsEtaNonAdaptiveSometimesNot) {
  // Figure 8's claim in miniature: over shared hidden worlds, ASTI reaches
  // η on every realization while ATEUC both under- and over-shoots.
  Rng graph_rng(303);
  auto graph = BuildWeightedGraph(MakeBarabasiAlbert(800, 2, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  const NodeId eta = 160;  // η/n = 0.2, the paper's largest setting

  CellConfig asti_config;
  asti_config.eta = eta;
  asti_config.algorithm = AlgorithmId::kAsti;
  asti_config.realizations = 12;
  asti_config.seed = 11;
  const CellResult asti = RunCell(*graph, asti_config);
  EXPECT_TRUE(asti.always_reached);

  CellConfig ateuc_config = asti_config;
  ateuc_config.algorithm = AlgorithmId::kAteuc;
  const CellResult ateuc = RunCell(*graph, ateuc_config);
  // Spread variance: non-adaptive spreads differ across realizations while
  // every adaptive spread is >= η.
  double min_spread = 1e18;
  double max_spread = 0.0;
  for (double spread : ateuc.spreads) {
    min_spread = std::min(min_spread, spread);
    max_spread = std::max(max_spread, spread);
  }
  EXPECT_GT(max_spread, min_spread);  // genuinely varies
  for (double spread : asti.spreads) EXPECT_GE(spread, eta);
}

TEST(IntegrationTest, AstiSelectsFewerSeedsThanAteuc) {
  // Figure 4/6's headline: ATEUC needs noticeably more seeds than ASTI.
  Rng graph_rng(304);
  auto graph = BuildWeightedGraph(MakeBarabasiAlbert(800, 2, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  CellConfig config;
  config.eta = 120;  // η/n = 0.15
  config.realizations = 6;
  config.seed = 13;

  config.algorithm = AlgorithmId::kAsti;
  const CellResult asti = RunCell(*graph, config);
  config.algorithm = AlgorithmId::kAteuc;
  const CellResult ateuc = RunCell(*graph, config);
  EXPECT_LT(asti.aggregate.mean_seeds, ateuc.aggregate.mean_seeds);
}

TEST(IntegrationTest, AdaptImMatchesAstiSeedsButCostsMoreSamples) {
  // Figure 5's mechanism: AdaptIM needs Θ(n_i/OPT') RR-sets per round vs
  // TRIM's Θ(η_i/OPT) — on the same worlds it generates many more samples.
  Rng graph_rng(305);
  auto graph = BuildWeightedGraph(MakeBarabasiAlbert(500, 2, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  CellConfig config;
  config.eta = 50;  // η/n = 0.1
  config.realizations = 3;
  config.seed = 17;
  config.keep_traces = true;

  config.algorithm = AlgorithmId::kAsti;
  const CellResult asti = RunCell(*graph, config);
  config.algorithm = AlgorithmId::kAdaptIm;
  const CellResult adaptim = RunCell(*graph, config);

  EXPECT_TRUE(adaptim.always_reached);
  // Seed counts comparable (within 2x).
  EXPECT_LT(adaptim.aggregate.mean_seeds, 2.0 * asti.aggregate.mean_seeds + 2.0);
  // Sample counts: AdaptIM strictly heavier.
  size_t asti_samples = 0;
  size_t adaptim_samples = 0;
  for (const auto& trace : asti.traces) asti_samples += trace.total_samples;
  for (const auto& trace : adaptim.traces) adaptim_samples += trace.total_samples;
  EXPECT_GT(adaptim_samples, asti_samples);
}

TEST(IntegrationTest, BatchingTradesSeedsForRounds) {
  // §6.2/6.3: growing b cuts rounds (and samples) while seed counts rise
  // only mildly.
  Rng graph_rng(306);
  auto graph = BuildWeightedGraph(MakeBarabasiAlbert(600, 2, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  CellConfig config;
  config.eta = 90;
  config.realizations = 3;
  config.seed = 19;
  config.keep_traces = true;

  config.algorithm = AlgorithmId::kAsti;
  const CellResult b1 = RunCell(*graph, config);
  config.algorithm = AlgorithmId::kAsti8;
  const CellResult b8 = RunCell(*graph, config);

  size_t rounds1 = 0;
  size_t rounds8 = 0;
  for (const auto& trace : b1.traces) rounds1 += trace.rounds.size();
  for (const auto& trace : b8.traces) rounds8 += trace.rounds.size();
  EXPECT_LT(rounds8, rounds1);
  EXPECT_TRUE(b8.always_reached);
  // Seeds grow by at most ~the batch rounding slack.
  EXPECT_LT(b8.aggregate.mean_seeds, b1.aggregate.mean_seeds + 8.0 + 2.0);
}

TEST(IntegrationTest, LtModelEndToEnd) {
  auto graph = MakeSurrogateDataset(DatasetId::kNetHept, 0.05, 23);
  ASSERT_TRUE(graph.ok());
  CellConfig config;
  config.model = DiffusionModel::kLinearThreshold;
  config.eta = static_cast<NodeId>(graph->NumNodes() / 10);
  config.realizations = 3;
  for (AlgorithmId id : {AlgorithmId::kAsti, AlgorithmId::kAsti4, AlgorithmId::kAteuc}) {
    config.algorithm = id;
    const CellResult result = RunCell(*graph, config);
    EXPECT_EQ(result.spreads.size(), 3u) << AlgorithmName(id);
    if (id != AlgorithmId::kAteuc) {
      EXPECT_TRUE(result.always_reached) << AlgorithmName(id);
    }
  }
}

TEST(IntegrationTest, MarginalTruncatedGainsDiminishOnAverage) {
  // Figure 10's shape: the first seed's truncated gain dwarfs the last's.
  Rng graph_rng(307);
  auto graph = BuildWeightedGraph(MakeBarabasiAlbert(700, 2, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  // Average first-seed vs last-seed truncated gain over several hidden
  // realizations (submodularity holds in expectation, not per-run).
  double first_total = 0.0;
  double last_total = 0.0;
  size_t runs_used = 0;
  for (uint64_t run = 0; run < 6; ++run) {
    Rng world_rng(308 + run);
    AdaptiveWorld world(*graph, DiffusionModel::kIndependentCascade, 300, world_rng);
    Trim trim(*graph, DiffusionModel::kIndependentCascade, TrimOptions{0.5});
    Rng rng(309 + run);
    const AdaptiveRunTrace trace = RunAdaptivePolicy(world, trim, rng);
    if (trace.rounds.size() < 2) continue;
    first_total += trace.rounds.front().truncated_gain;
    last_total += trace.rounds.back().truncated_gain;
    ++runs_used;
  }
  ASSERT_GE(runs_used, 3u);
  EXPECT_GT(first_total / runs_used, last_total / runs_used);
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  auto graph = MakeSurrogateDataset(DatasetId::kNetHept, 0.05, 29);
  ASSERT_TRUE(graph.ok());
  CellConfig config;
  config.eta = 40;
  config.algorithm = AlgorithmId::kAsti2;
  config.realizations = 2;
  config.seed = 31;
  const CellResult a = RunCell(*graph, config);
  const CellResult b = RunCell(*graph, config);
  EXPECT_EQ(a.spreads, b.spreads);
  EXPECT_EQ(a.seed_counts, b.seed_counts);
}

}  // namespace
}  // namespace asti
