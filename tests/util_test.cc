// Tests for src/util: Status/StatusOr, cancellation primitives, Rng,
// BitVector, EpochVisitedSet.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/bit_vector.h"
#include "util/cancellation.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"

namespace asti {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::IOError("disk on fire");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_EQ(status.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, EveryFactoryProducesItsCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(), StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, ServingCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted), "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded), "DeadlineExceeded");
}

// --- Cancellation primitives ------------------------------------------------

TEST(CancellationTest, DefaultScopeNeverStops) {
  CancelScope scope;
  EXPECT_FALSE(scope.ShouldStop());
  EXPECT_TRUE(scope.ToStatus().ok());
}

TEST(CancellationTest, TokenFiresScope) {
  CancelToken token;
  CancelScope scope(&token, CancelScope::kNoDeadline);
  EXPECT_FALSE(scope.ShouldStop());
  token.Cancel();
  EXPECT_TRUE(token.IsCancelled());
  EXPECT_TRUE(scope.ShouldStop());
  EXPECT_EQ(scope.ToStatus().code(), StatusCode::kCancelled);
  token.Cancel();  // idempotent
  EXPECT_TRUE(scope.ShouldStop());
}

TEST(CancellationTest, PastDeadlineFiresScope) {
  CancelScope scope(nullptr, DeadlineAfter(-1.0));
  EXPECT_TRUE(scope.HasDeadline());
  EXPECT_TRUE(scope.ShouldStop());
  EXPECT_EQ(scope.ToStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancellationTest, FutureDeadlineDoesNotStopYet) {
  CancelScope scope(nullptr, DeadlineAfter(3600.0));
  EXPECT_FALSE(scope.ShouldStop());
  EXPECT_TRUE(scope.ToStatus().ok());
}

TEST(CancellationTest, CancelWinsOverExpiredDeadline) {
  CancelToken token;
  token.Cancel();
  CancelScope scope(&token, DeadlineAfter(-1.0));
  EXPECT_TRUE(scope.ShouldStop());
  EXPECT_EQ(scope.ToStatus().code(), StatusCode::kCancelled);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("nothing here"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(5);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextBoundedRoughlyUniform) {
  Rng rng(13);
  const uint64_t bound = 10;
  const int trials = 100000;
  std::vector<int> counts(bound, 0);
  for (int i = 0; i < trials; ++i) ++counts[rng.NextBounded(bound)];
  for (uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], trials / static_cast<int>(bound), 600);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  const int trials = 100000;
  int hits = 0;
  for (int i = 0; i < trials; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Split();
  // Child is deterministic with respect to the parent state.
  Rng parent2(23);
  Rng child2 = parent2.Split();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child(), child2());
}

TEST(RngTest, IndexedSplitIsPureAndDeterministic) {
  Rng parent(29);
  const Rng& const_parent = parent;
  Rng a = const_parent.Split(7);
  Rng b = const_parent.Split(7);
  // Same index twice: identical stream, and the parent did not advance.
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a(), b());
  Rng untouched(29);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(parent(), untouched());
}

TEST(RngTest, IndexedSplitStreamsDiverge) {
  Rng parent(31);
  // Adjacent indices (the worst case for weak mixing) must decorrelate.
  Rng a = parent.Split(0);
  Rng b = parent.Split(1);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, IndexedSplitDependsOnParentState) {
  Rng parent1(37);
  Rng parent2(38);
  Rng a = parent1.Split(5);
  Rng b = parent2.Split(5);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, IndexedSplitChildrenLookUniform) {
  // Pooled draws from many adjacent child streams should still be uniform:
  // mean of NextDouble over 1000 children × 100 draws near 0.5.
  Rng parent(41);
  double sum = 0.0;
  const int children = 1000;
  const int draws = 100;
  for (int c = 0; c < children; ++c) {
    Rng child = parent.Split(static_cast<uint64_t>(c));
    for (int i = 0; i < draws; ++i) sum += child.NextDouble();
  }
  EXPECT_NEAR(sum / (children * draws), 0.5, 0.005);
}

TEST(BitVectorTest, SetGetClear) {
  BitVector bits(130);
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_FALSE(bits.Get(0));
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Get(0));
  EXPECT_TRUE(bits.Get(64));
  EXPECT_TRUE(bits.Get(129));
  EXPECT_FALSE(bits.Get(1));
  bits.Clear(64);
  EXPECT_FALSE(bits.Get(64));
}

TEST(BitVectorTest, CountAndReset) {
  BitVector bits(200);
  for (size_t i = 0; i < 200; i += 3) bits.Set(i);
  EXPECT_EQ(bits.Count(), 67u);
  bits.Reset();
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(BitVectorTest, ConstructAllOnes) {
  BitVector bits(70, true);
  for (size_t i = 0; i < 70; ++i) EXPECT_TRUE(bits.Get(i));
}

TEST(BitVectorTest, AssignDispatches) {
  BitVector bits(10);
  bits.Assign(3, true);
  EXPECT_TRUE(bits.Get(3));
  bits.Assign(3, false);
  EXPECT_FALSE(bits.Get(3));
}

TEST(EpochVisitedSetTest, MarkAndReset) {
  EpochVisitedSet visited(50);
  visited.Reset();
  EXPECT_TRUE(visited.MarkVisited(10));
  EXPECT_FALSE(visited.MarkVisited(10));
  EXPECT_TRUE(visited.Visited(10));
  EXPECT_FALSE(visited.Visited(11));
  visited.Reset();
  EXPECT_FALSE(visited.Visited(10));
  EXPECT_TRUE(visited.MarkVisited(10));
}

TEST(EpochVisitedSetTest, ManyEpochsStayIsolated) {
  EpochVisitedSet visited(8);
  for (int epoch = 0; epoch < 1000; ++epoch) {
    visited.Reset();
    const size_t slot = epoch % 8;
    EXPECT_FALSE(visited.Visited(slot));
    visited.MarkVisited(slot);
    EXPECT_TRUE(visited.Visited(slot));
  }
}

// --- Logging ----------------------------------------------------------------

TEST(LoggingTest, FormatLogLinePinsTheShape) {
  // "[LEVEL yyyy-mm-ddThh:mm:ss.mmmZ] message\n" — one complete line,
  // built before any write so concurrent statements cannot interleave.
  const std::string line =
      internal::FormatLogLine(LogLevel::kWarning, "watch out");
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.front(), '[');
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find("WARN "), 1u);
  const size_t close = line.find("] ");
  ASSERT_NE(close, std::string::npos);
  EXPECT_EQ(line.substr(close + 2), "watch out\n");
  // Timestamp: "yyyy-mm-ddThh:mm:ss.mmmZ" (24 chars, UTC marker) between
  // the level word and the closing bracket.
  const size_t space = line.find(' ');
  ASSERT_NE(space, std::string::npos);
  const std::string stamp = line.substr(space + 1, close - space - 1);
  ASSERT_EQ(stamp.size(), 24u);
  EXPECT_EQ(stamp[4], '-');
  EXPECT_EQ(stamp[10], 'T');
  EXPECT_EQ(stamp[13], ':');
  EXPECT_EQ(stamp[19], '.');
  EXPECT_EQ(stamp.back(), 'Z');

  EXPECT_EQ(internal::FormatLogLine(LogLevel::kDebug, "x").find("DEBUG "), 1u);
  EXPECT_EQ(internal::FormatLogLine(LogLevel::kInfo, "x").find("INFO "), 1u);
  EXPECT_EQ(internal::FormatLogLine(LogLevel::kError, "x").find("ERROR "), 1u);
  // An embedded newline stays the caller's problem; the terminator is
  // appended exactly once.
  const std::string multi = internal::FormatLogLine(LogLevel::kInfo, "a\nb");
  EXPECT_EQ(multi.substr(multi.size() - 4), "a\nb\n");
}

TEST(LoggingTest, LevelGateIsThreadSafeAndRestorable) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 200; ++i) {
        SetLogLevel(i % 2 == 0 ? LogLevel::kWarning : LogLevel::kError);
        (void)GetLogLevel();  // racing reads must be tear-free (atomic)
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  SetLogLevel(original);
  EXPECT_EQ(GetLogLevel(), original);
}

}  // namespace
}  // namespace asti
