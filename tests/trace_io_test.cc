// Tests for core/trace_io.h: serialization round trip and error handling.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/asti.h"
#include "core/trace_io.h"
#include "core/trim.h"
#include "graph/generators.h"

namespace asti {
namespace {

AdaptiveRunTrace MakeHandTrace() {
  AdaptiveRunTrace trace;
  trace.eta = 10;
  trace.total_activated = 12;
  trace.target_reached = true;
  trace.seconds = 0.5;
  trace.total_samples = 321;
  RoundRecord r1;
  r1.round = 1;
  r1.seeds = {4, 7};
  r1.shortfall_before = 10;
  r1.newly_activated = 8;
  r1.truncated_gain = 8;
  r1.estimated_gain = 7.5;
  r1.num_samples = 200;
  r1.seconds = 0.3;
  RoundRecord r2;
  r2.round = 2;
  r2.seeds = {1};
  r2.shortfall_before = 2;
  r2.newly_activated = 4;
  r2.truncated_gain = 2;
  r2.estimated_gain = 2.25;
  r2.num_samples = 121;
  r2.seconds = 0.2;
  trace.rounds = {r1, r2};
  trace.seeds = {4, 7, 1};
  return trace;
}

TEST(TraceIoTest, RoundTripPreservesEverything) {
  const std::vector<AdaptiveRunTrace> original = {MakeHandTrace(), MakeHandTrace()};
  auto parsed = ParseTraces(SerializeTraces(original));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  for (const AdaptiveRunTrace& trace : *parsed) {
    EXPECT_EQ(trace.eta, 10u);
    EXPECT_EQ(trace.total_activated, 12u);
    EXPECT_TRUE(trace.target_reached);
    EXPECT_DOUBLE_EQ(trace.seconds, 0.5);
    EXPECT_EQ(trace.total_samples, 321u);
    ASSERT_EQ(trace.rounds.size(), 2u);
    EXPECT_EQ(trace.rounds[0].seeds, (std::vector<NodeId>{4, 7}));
    EXPECT_DOUBLE_EQ(trace.rounds[0].estimated_gain, 7.5);
    EXPECT_EQ(trace.rounds[1].truncated_gain, 2u);
    EXPECT_EQ(trace.seeds, (std::vector<NodeId>{4, 7, 1}));
  }
}

TEST(TraceIoTest, RealRunRoundTrips) {
  Rng graph_rng(211);
  auto graph = BuildWeightedGraph(MakeErdosRenyi(80, 400, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  Rng world_rng(212);
  AdaptiveWorld world(*graph, DiffusionModel::kIndependentCascade, 20, world_rng);
  Trim trim(*graph, DiffusionModel::kIndependentCascade, TrimOptions{0.5});
  Rng rng(213);
  const AdaptiveRunTrace trace = RunAdaptivePolicy(world, trim, rng);

  auto parsed = ParseTraces(SerializeTraces({trace}));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].seeds, trace.seeds);
  EXPECT_EQ((*parsed)[0].rounds.size(), trace.rounds.size());
  EXPECT_EQ((*parsed)[0].total_activated, trace.total_activated);
}

TEST(TraceIoTest, EmptyInputYieldsNoTraces) {
  auto parsed = ParseTraces("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(TraceIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseTraces("garbage 1 2 3\n").ok());
  EXPECT_FALSE(ParseTraces("round 1 2 3 4 5 6 0.1 7\n").ok());  // outside trace
  EXPECT_FALSE(ParseTraces("trace 10 12 1 0.5 321\n").ok());    // unterminated
  EXPECT_FALSE(ParseTraces("trace 10 12 1 0.5 321\ntrace 1 1 1 1 1\nend\n").ok());
  EXPECT_FALSE(
      ParseTraces("trace 10 12 1 0.5 321\nround 1 10 8 8 7.5 200 0.3\nend\n").ok());
  // ^ round without seeds
}

TEST(TraceIoTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/asti_traces_test.txt";
  const std::vector<AdaptiveRunTrace> original = {MakeHandTrace()};
  ASSERT_TRUE(SaveTraces(original, path).ok());
  auto loaded = LoadTraces(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].seeds, original[0].seeds);
  std::remove(path.c_str());
}

TEST(TraceIoTest, MissingFileIsIOError) {
  auto loaded = LoadTraces("/nonexistent/trace/file.txt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace asti
