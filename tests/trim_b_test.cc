// Tests for core/trim_b.h: schedule constants against Algorithm 3, batch
// behaviour, and degeneration to TRIM at b = 1.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "core/trim.h"
#include "core/trim_b.h"
#include "coverage/max_coverage.h"
#include "graph/generators.h"
#include "stats/concentration.h"
#include "util/bit_vector.h"

namespace asti {
namespace {

ResidualView FullGraphView(const BitVector& active, const std::vector<NodeId>& inactive,
                           NodeId shortfall) {
  ResidualView view;
  view.active = &active;
  view.inactive_nodes = &inactive;
  view.shortfall = shortfall;
  return view;
}

TEST(TrimBScheduleTest, MatchesAlgorithm3Lines1To5) {
  const NodeId ni = 500;
  const NodeId eta_i = 40;
  const NodeId b = 4;
  const double eps = 0.5;
  const TrimBSchedule schedule = ComputeTrimBSchedule(ni, eta_i, b, eps);

  constexpr double kOneMinusInvE = 1.0 - 1.0 / 2.718281828459045;
  const double delta = eps / (100.0 * kOneMinusInvE * (1.0 - eps) * eta_i);
  const double rho_b = 1.0 - std::pow(0.75, 4);
  EXPECT_NEAR(schedule.delta, delta, 1e-15);
  EXPECT_NEAR(schedule.rho_b, rho_b, 1e-12);
  const double ln_choose = LogBinomial(500.0, 4.0);
  const double root = std::sqrt(std::log(6.0 / delta)) +
                      std::sqrt((ln_choose + std::log(6.0 / delta)) / rho_b);
  const double eps_hat = 99.0 * eps / (100.0 - eps);
  const double theta_max = 2.0 * 500.0 * root * root / (4.0 * eps_hat * eps_hat);
  EXPECT_NEAR(schedule.theta_max, theta_max, 1e-6);
  EXPECT_NEAR(schedule.a1,
              std::log(3.0 * static_cast<double>(schedule.max_iterations) / delta) +
                  ln_choose,
              1e-9);
}

TEST(TrimBScheduleTest, BatchOneMatchesTrimUpToLogTerm) {
  // With b = 1, ρ_1 = 1 and ln C(n,1) = ln n: the schedule collapses to
  // Algorithm 2's.
  const TrimSchedule trim = ComputeTrimSchedule(300, 20, 0.5);
  const TrimBSchedule trim_b = ComputeTrimBSchedule(300, 20, 1, 0.5);
  EXPECT_NEAR(trim_b.rho_b, 1.0, 1e-12);
  EXPECT_NEAR(trim_b.theta_max, trim.theta_max, trim.theta_max * 1e-9);
  EXPECT_NEAR(trim_b.a1, trim.a1, 1e-9);
  EXPECT_NEAR(trim_b.a2, trim.a2, 1e-9);
}

TEST(TrimBTest, ReturnsRequestedBatchSize) {
  Rng graph_rng(111);
  auto graph = BuildWeightedGraph(MakeErdosRenyi(50, 250, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  TrimB trim_b(*graph, DiffusionModel::kIndependentCascade, TrimBOptions{0.5, 4});
  BitVector active(50);
  std::vector<NodeId> inactive(50);
  std::iota(inactive.begin(), inactive.end(), 0);
  Rng rng(112);
  const SelectionResult result =
      trim_b.SelectBatch(FullGraphView(active, inactive, 10), rng);
  EXPECT_EQ(result.seeds.size(), 4u);
  std::set<NodeId> unique(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(unique.size(), 4u);
}

TEST(TrimBTest, BatchClampedToResidualNodes) {
  auto graph = BuildWeightedGraph(MakePath(3), WeightScheme::kUniform, 1.0);
  ASSERT_TRUE(graph.ok());
  TrimB trim_b(*graph, DiffusionModel::kIndependentCascade, TrimBOptions{0.5, 8});
  BitVector active(3);
  std::vector<NodeId> inactive = {0, 1, 2};
  Rng rng(113);
  const SelectionResult result =
      trim_b.SelectBatch(FullGraphView(active, inactive, 3), rng);
  EXPECT_EQ(result.seeds.size(), 3u);
}

TEST(TrimBTest, NameReflectsBatchSize) {
  auto graph = BuildWeightedGraph(MakePath(4), WeightScheme::kUniform, 0.5);
  ASSERT_TRUE(graph.ok());
  TrimB trim_b(*graph, DiffusionModel::kIndependentCascade, TrimBOptions{0.5, 8});
  EXPECT_STREQ(trim_b.Name(), "ASTI-8");
}

TEST(TrimBTest, BatchOneSatisfiesTrimGuarantee) {
  // With b = 1, TRIM-B degenerates to TRIM; like TRIM it may return v1, v2
  // or v3 on Example 2.3 (see trim_test.cc) but never the clearly
  // suboptimal v4.
  auto graph = MakePaperFigure2Graph();
  ASSERT_TRUE(graph.ok());
  BitVector active(4);
  std::vector<NodeId> inactive = {0, 1, 2, 3};
  TrimB trim_b(*graph, DiffusionModel::kIndependentCascade, TrimBOptions{0.3, 1});
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(700 + seed);
    const SelectionResult result =
        trim_b.SelectBatch(FullGraphView(active, inactive, 2), rng);
    ASSERT_EQ(result.seeds.size(), 1u);
    EXPECT_NE(result.seeds[0], 3u);
  }
}

TEST(TrimBTest, BatchTwoOnFigure2CoversBothBranches) {
  // With η = 4 on Figure 2, the best pair must include v1 (the only way to
  // reach 4 nodes is v1's full cascade) — check {v1, x} is selected.
  auto graph = MakePaperFigure2Graph();
  ASSERT_TRUE(graph.ok());
  BitVector active(4);
  std::vector<NodeId> inactive = {0, 1, 2, 3};
  TrimB trim_b(*graph, DiffusionModel::kIndependentCascade, TrimBOptions{0.3, 2});
  Rng rng(114);
  const SelectionResult result =
      trim_b.SelectBatch(FullGraphView(active, inactive, 4), rng);
  ASSERT_EQ(result.seeds.size(), 2u);
  EXPECT_TRUE(result.seeds[0] == 0 || result.seeds[1] == 0);
}

TEST(TrimBTest, LargerBatchUsesFewerSamplesPerSeed) {
  // TRIM-B's economy: one selection of b seeds costs fewer mRR-sets than b
  // separate TRIM rounds in the same state (the batching speedup of §6.2).
  Rng graph_rng(115);
  auto graph = BuildWeightedGraph(MakeBarabasiAlbert(300, 2, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  BitVector active(300);
  std::vector<NodeId> inactive(300);
  std::iota(inactive.begin(), inactive.end(), 0);

  Trim trim(*graph, DiffusionModel::kIndependentCascade, TrimOptions{0.5});
  TrimB trim_b(*graph, DiffusionModel::kIndependentCascade, TrimBOptions{0.5, 8});
  Rng rng1(116);
  Rng rng2(117);
  const ResidualView view = FullGraphView(active, inactive, 60);
  const SelectionResult single = trim.SelectBatch(view, rng1);
  const SelectionResult batched = trim_b.SelectBatch(view, rng2);
  EXPECT_LT(batched.num_samples, 8 * single.num_samples);
}

}  // namespace
}  // namespace asti
