// Tests for graph/graph.h and graph/graph_builder.h: CSR construction,
// adjacency consistency, duplicate/self-loop policies.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "graph/graph.h"
#include "graph/graph_builder.h"

namespace asti {
namespace {

DirectedGraph SmallDiamond() {
  // 0 -> 1 (.5), 0 -> 2 (.25), 1 -> 3 (1), 2 -> 3 (.75)
  GraphBuilder builder(4);
  EXPECT_TRUE(builder.AddEdge(0, 1, 0.5).ok());
  EXPECT_TRUE(builder.AddEdge(0, 2, 0.25).ok());
  EXPECT_TRUE(builder.AddEdge(1, 3, 1.0).ok());
  EXPECT_TRUE(builder.AddEdge(2, 3, 0.75).ok());
  auto graph = builder.Build();
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(GraphBuilderTest, BuildsCounts) {
  const DirectedGraph graph = SmallDiamond();
  EXPECT_EQ(graph.NumNodes(), 4u);
  EXPECT_EQ(graph.NumEdges(), 4u);
}

TEST(GraphBuilderTest, OutAdjacency) {
  const DirectedGraph graph = SmallDiamond();
  EXPECT_EQ(graph.OutDegree(0), 2u);
  EXPECT_EQ(graph.OutDegree(3), 0u);
  auto neighbors = graph.OutNeighbors(0);
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0], 1u);
  EXPECT_EQ(neighbors[1], 2u);
  auto probs = graph.OutProbabilities(0);
  EXPECT_DOUBLE_EQ(probs[0], 0.5);
  EXPECT_DOUBLE_EQ(probs[1], 0.25);
}

TEST(GraphBuilderTest, InAdjacency) {
  const DirectedGraph graph = SmallDiamond();
  EXPECT_EQ(graph.InDegree(3), 2u);
  EXPECT_EQ(graph.InDegree(0), 0u);
  auto sources = graph.InNeighbors(3);
  ASSERT_EQ(sources.size(), 2u);
  // Sorted by source (CSR fill order).
  EXPECT_EQ(sources[0], 1u);
  EXPECT_EQ(sources[1], 2u);
  auto probs = graph.InProbabilities(3);
  EXPECT_DOUBLE_EQ(probs[0], 1.0);
  EXPECT_DOUBLE_EQ(probs[1], 0.75);
}

TEST(GraphBuilderTest, InEdgeIdsPointBackToForwardEdges) {
  const DirectedGraph graph = SmallDiamond();
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    auto sources = graph.InNeighbors(v);
    auto edge_ids = graph.InEdgeIds(v);
    auto probs = graph.InProbabilities(v);
    for (size_t i = 0; i < sources.size(); ++i) {
      EXPECT_EQ(graph.EdgeTarget(edge_ids[i]), v);
      EXPECT_DOUBLE_EQ(graph.EdgeProbability(edge_ids[i]), probs[i]);
    }
  }
}

TEST(GraphBuilderTest, EdgeIdsAreContiguousPerSource) {
  const DirectedGraph graph = SmallDiamond();
  const EdgeId first = graph.FirstOutEdge(0);
  EXPECT_EQ(graph.EdgeTarget(first), 1u);
  EXPECT_EQ(graph.EdgeTarget(first + 1), 2u);
}

TEST(GraphBuilderTest, RejectsSelfLoop) {
  GraphBuilder builder(3);
  const Status status = builder.AddEdge(1, 1, 0.5);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, RejectsOutOfRangeEndpoint) {
  GraphBuilder builder(3);
  EXPECT_FALSE(builder.AddEdge(0, 3, 0.5).ok());
  EXPECT_FALSE(builder.AddEdge(3, 0, 0.5).ok());
}

TEST(GraphBuilderTest, RejectsBadProbability) {
  GraphBuilder builder(3);
  EXPECT_FALSE(builder.AddEdge(0, 1, 0.0).ok());
  EXPECT_FALSE(builder.AddEdge(0, 1, -0.1).ok());
  EXPECT_FALSE(builder.AddEdge(0, 1, 1.5).ok());
  EXPECT_TRUE(builder.AddEdge(0, 1, 1.0).ok());
}

TEST(GraphBuilderTest, DuplicateRejectPolicy) {
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(builder.AddEdge(0, 1, 0.7).ok());
  auto graph = builder.Build(GraphBuilder::DuplicatePolicy::kReject);
  EXPECT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, DuplicateKeepMaxPolicy) {
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(builder.AddEdge(0, 1, 0.7).ok());
  ASSERT_TRUE(builder.AddEdge(0, 1, 0.6).ok());
  auto graph = builder.Build(GraphBuilder::DuplicatePolicy::kKeepMaxProbability);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(graph->OutProbabilities(0)[0], 0.7);
}

TEST(GraphBuilderTest, UndirectedAddsBothDirections) {
  GraphBuilder builder(2);
  ASSERT_TRUE(builder.AddUndirectedEdge(0, 1, 0.4).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->NumEdges(), 2u);
  EXPECT_EQ(graph->OutDegree(0), 1u);
  EXPECT_EQ(graph->OutDegree(1), 1u);
}

TEST(GraphTest, EmptyGraph) {
  GraphBuilder builder(5);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->NumNodes(), 5u);
  EXPECT_EQ(graph->NumEdges(), 0u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(graph->OutDegree(v), 0u);
    EXPECT_EQ(graph->InDegree(v), 0u);
  }
}

TEST(GraphTest, InProbabilitySum) {
  const DirectedGraph graph = SmallDiamond();
  EXPECT_DOUBLE_EQ(graph.InProbabilitySum(3), 1.75);
  EXPECT_DOUBLE_EQ(graph.InProbabilitySum(0), 0.0);
}

TEST(GraphTest, ToEdgeListRoundTrip) {
  const DirectedGraph graph = SmallDiamond();
  const std::vector<Edge> edges = graph.ToEdgeList();
  ASSERT_EQ(edges.size(), 4u);
  std::map<std::pair<NodeId, NodeId>, double> expected = {
      {{0, 1}, 0.5}, {{0, 2}, 0.25}, {{1, 3}, 1.0}, {{2, 3}, 0.75}};
  for (const Edge& e : edges) {
    auto it = expected.find({e.source, e.target});
    ASSERT_NE(it, expected.end());
    EXPECT_DOUBLE_EQ(e.probability, it->second);
    expected.erase(it);
  }
  EXPECT_TRUE(expected.empty());
}

TEST(GraphTest, DegreeSumsMatchEdgeCount) {
  const DirectedGraph graph = SmallDiamond();
  size_t out_total = 0;
  size_t in_total = 0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    out_total += graph.OutDegree(v);
    in_total += graph.InDegree(v);
  }
  EXPECT_EQ(out_total, graph.NumEdges());
  EXPECT_EQ(in_total, graph.NumEdges());
}

}  // namespace
}  // namespace asti
