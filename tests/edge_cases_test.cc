// Edge-case and determinism-regression tests across modules: degenerate
// graphs, boundary thresholds, golden deterministic outputs that lock the
// RNG and algorithm behaviour across refactors.

#include <gtest/gtest.h>

#include <numeric>

#include "core/asti.h"
#include "core/trim.h"
#include "core/trim_b.h"
#include "diffusion/world.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/wcc.h"
#include "sampling/mrr_set.h"
#include "sampling/root_size.h"

namespace asti {
namespace {

TEST(EdgeCasesTest, SingleNodeGraph) {
  GraphBuilder builder(1);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  Rng world_rng(1);
  AdaptiveWorld world(*graph, DiffusionModel::kIndependentCascade, 1, world_rng);
  Trim trim(*graph, DiffusionModel::kIndependentCascade, TrimOptions{0.5});
  Rng rng(2);
  const AdaptiveRunTrace trace = RunAdaptivePolicy(world, trim, rng);
  EXPECT_TRUE(trace.target_reached);
  EXPECT_EQ(trace.NumSeeds(), 1u);
  EXPECT_EQ(trace.seeds[0], 0u);
}

TEST(EdgeCasesTest, EdgelessGraphNeedsEtaSeeds) {
  GraphBuilder builder(10);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  Rng world_rng(3);
  AdaptiveWorld world(*graph, DiffusionModel::kIndependentCascade, 6, world_rng);
  TrimB trim_b(*graph, DiffusionModel::kIndependentCascade, TrimBOptions{0.5, 2});
  Rng rng(4);
  const AdaptiveRunTrace trace = RunAdaptivePolicy(world, trim_b, rng);
  EXPECT_TRUE(trace.target_reached);
  EXPECT_EQ(trace.NumSeeds(), 6u);  // nothing propagates: every seed counts once
  EXPECT_EQ(trace.rounds.size(), 3u);
}

TEST(EdgeCasesTest, TwoNodeWorldBothModels) {
  GraphBuilder builder(2);
  ASSERT_TRUE(builder.AddEdge(0, 1, 1.0).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  for (DiffusionModel model :
       {DiffusionModel::kIndependentCascade, DiffusionModel::kLinearThreshold}) {
    Rng world_rng(5);
    AdaptiveWorld world(*graph, model, 2, world_rng);
    Trim trim(*graph, model, TrimOptions{0.5});
    Rng rng(6);
    const AdaptiveRunTrace trace = RunAdaptivePolicy(world, trim, rng);
    EXPECT_TRUE(trace.target_reached) << DiffusionModelName(model);
    EXPECT_EQ(trace.NumSeeds(), 1u) << DiffusionModelName(model);
    EXPECT_EQ(trace.seeds[0], 0u) << DiffusionModelName(model);
  }
}

TEST(EdgeCasesTest, DisconnectedComponentsForceMultipleSeeds) {
  // Two disjoint prob-1 chains of length 5; eta = 10 needs both.
  GraphBuilder builder(10);
  for (NodeId u = 0; u < 4; ++u) ASSERT_TRUE(builder.AddEdge(u, u + 1, 1.0).ok());
  for (NodeId u = 5; u < 9; ++u) ASSERT_TRUE(builder.AddEdge(u, u + 1, 1.0).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(ComputeWcc(*graph).num_components, 2u);
  Rng world_rng(7);
  AdaptiveWorld world(*graph, DiffusionModel::kIndependentCascade, 10, world_rng);
  Trim trim(*graph, DiffusionModel::kIndependentCascade, TrimOptions{0.5});
  Rng rng(8);
  const AdaptiveRunTrace trace = RunAdaptivePolicy(world, trim, rng);
  EXPECT_TRUE(trace.target_reached);
  EXPECT_EQ(trace.NumSeeds(), 2u);
  // The two seeds must be the two chain heads.
  const std::set<NodeId> seeds(trace.seeds.begin(), trace.seeds.end());
  EXPECT_TRUE(seeds.count(0));
  EXPECT_TRUE(seeds.count(5));
}

TEST(EdgeCasesTest, MrrWithShortfallEqualToPopulation) {
  // η_i == n_i ⇒ k == 1: mRR-sets degenerate to single-root RR-sets.
  GraphBuilder builder(6);
  ASSERT_TRUE(builder.AddEdge(0, 1, 0.5).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  MrrSampler sampler(*graph, DiffusionModel::kIndependentCascade);
  RootSizeSampler root_size(6, 6);
  RrCollection collection(6);
  std::vector<NodeId> all_nodes(6);
  std::iota(all_nodes.begin(), all_nodes.end(), 0);
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const NodeId k = root_size.Sample(rng);
    EXPECT_EQ(k, 1u);
    sampler.Generate(all_nodes, nullptr, k, collection, rng);
  }
  for (size_t s = 0; s < collection.NumSets(); ++s) {
    EXPECT_LE(collection.Set(s).size(), 2u);  // root plus at most one hop
  }
}

// --- Golden determinism locks ----------------------------------------------

TEST(GoldenTest, RngFirstDrawsForSeed42) {
  Rng rng(42);
  EXPECT_EQ(rng(), 1546998764402558742ULL);
  EXPECT_EQ(rng(), 6990951692964543102ULL);
  EXPECT_EQ(rng(), 12544586762248559009ULL);
}

TEST(GoldenTest, SurrogateSizesStable) {
  auto graph = MakeSurrogateDataset(DatasetId::kNetHept, 0.1, 7);
  ASSERT_TRUE(graph.ok());
  // Locks generator determinism: any change to the sampling order or the
  // dataset calibration shows up here first.
  EXPECT_EQ(graph->NumNodes(), 1520u);
  const EdgeId m = graph->NumEdges();
  EXPECT_GT(m, 4000u);
  EXPECT_LT(m, 7000u);
  auto again = MakeSurrogateDataset(DatasetId::kNetHept, 0.1, 7);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->NumEdges(), m);
}

TEST(GoldenTest, AdaptiveRunFullyDeterministic) {
  auto graph = MakeSurrogateDataset(DatasetId::kNetHept, 0.1, 7);
  ASSERT_TRUE(graph.ok());
  auto run_once = [&]() {
    Rng world_rng(11);
    AdaptiveWorld world(*graph, DiffusionModel::kIndependentCascade, 60, world_rng);
    Trim trim(*graph, DiffusionModel::kIndependentCascade, TrimOptions{0.5});
    Rng rng(12);
    return RunAdaptivePolicy(world, trim, rng);
  };
  const AdaptiveRunTrace a = run_once();
  const AdaptiveRunTrace b = run_once();
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.total_activated, b.total_activated);
  EXPECT_EQ(a.total_samples, b.total_samples);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].newly_activated, b.rounds[i].newly_activated);
    EXPECT_EQ(a.rounds[i].num_samples, b.rounds[i].num_samples);
  }
}

}  // namespace
}  // namespace asti
