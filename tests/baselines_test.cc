// Tests for baselines/: AdaptIM, ATEUC, OracleGreedy, DegreeAdaptive —
// including the qualitative contrasts the paper's evaluation is built on
// (AdaptIM picks by vanilla spread; ATEUC can miss η per-realization).

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "baselines/adaptim.h"
#include "baselines/ateuc.h"
#include "baselines/degree_adaptive.h"
#include "baselines/oracle_greedy.h"
#include "graph/graph_builder.h"
#include "core/asti.h"
#include "diffusion/monte_carlo.h"
#include "graph/generators.h"

namespace asti {
namespace {

ResidualView FullGraphView(const BitVector& active, const std::vector<NodeId>& inactive,
                           NodeId shortfall) {
  ResidualView view;
  view.active = &active;
  view.inactive_nodes = &inactive;
  view.shortfall = shortfall;
  return view;
}

DirectedGraph RandomWcGraph(NodeId n, size_t m, uint64_t seed) {
  Rng rng(seed);
  auto graph =
      BuildWeightedGraph(MakeErdosRenyi(n, m, rng), WeightScheme::kWeightedCascade);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

// --- AdaptIM ---------------------------------------------------------------

TEST(AdaptImTest, PicksVanillaSpreadMaximizerOnExample23) {
  // The defining contrast with TRIM: on Figure 2 with η = 2, AdaptIM
  // maximizes the *untruncated* spread and therefore picks v1.
  auto graph = MakePaperFigure2Graph();
  ASSERT_TRUE(graph.ok());
  AdaptIm adaptim(*graph, DiffusionModel::kIndependentCascade, AdaptImOptions{0.3});
  BitVector active(4);
  std::vector<NodeId> inactive = {0, 1, 2, 3};
  int picked_v1 = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(500 + seed);
    const SelectionResult result =
        adaptim.SelectBatch(FullGraphView(active, inactive, 2), rng);
    if (result.seeds[0] == 0) ++picked_v1;
  }
  EXPECT_GE(picked_v1, 9);  // statistically certain with E[I(v1)]=2.75 vs 2.0
}

TEST(AdaptImTest, ReachesTargetUnderAstiLoop) {
  const DirectedGraph graph = RandomWcGraph(100, 500, 171);
  Rng world_rng(172);
  AdaptiveWorld world(graph, DiffusionModel::kIndependentCascade, 25, world_rng);
  AdaptIm adaptim(graph, DiffusionModel::kIndependentCascade);
  Rng rng(173);
  const AdaptiveRunTrace trace = RunAdaptivePolicy(world, adaptim, rng);
  EXPECT_TRUE(trace.target_reached);
}

TEST(AdaptImTest, EstimatesVanillaSpread) {
  auto graph = MakePaperFigure2Graph();
  ASSERT_TRUE(graph.ok());
  AdaptIm adaptim(*graph, DiffusionModel::kIndependentCascade, AdaptImOptions{0.2});
  BitVector active(4);
  std::vector<NodeId> inactive = {0, 1, 2, 3};
  Rng rng(174);
  const SelectionResult result =
      adaptim.SelectBatch(FullGraphView(active, inactive, 2), rng);
  // Estimated marginal gain tracks E[I(v1)] = 2.75 (not truncated 1.75).
  EXPECT_NEAR(result.estimated_marginal_gain, 2.75, 0.4);
}

// --- ATEUC -----------------------------------------------------------------

TEST(AteucTest, MeetsThresholdInExpectation) {
  const DirectedGraph graph = RandomWcGraph(120, 700, 175);
  const NodeId eta = 30;
  Rng rng(176);
  const AteucResult result =
      RunAteuc(graph, DiffusionModel::kIndependentCascade, eta, AteucOptions{}, rng);
  ASSERT_FALSE(result.seeds.empty());
  // Verify with Monte Carlo that E[I(S)] >= η (allowing small slack).
  MonteCarloEstimator mc(graph, DiffusionModel::kIndependentCascade);
  Rng mc_rng(177);
  std::vector<NodeId> seeds(result.seeds.begin(), result.seeds.end());
  const double spread = mc.EstimateSpread(seeds, 20000, mc_rng);
  EXPECT_GE(spread, 0.9 * eta);
  EXPECT_NEAR(result.estimated_spread, spread, 0.25 * spread);
}

TEST(AteucTest, SeedsAreDistinct) {
  const DirectedGraph graph = RandomWcGraph(100, 500, 178);
  Rng rng(179);
  const AteucResult result =
      RunAteuc(graph, DiffusionModel::kIndependentCascade, 20, AteucOptions{}, rng);
  std::set<NodeId> unique(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(unique.size(), result.seeds.size());
}

TEST(AteucTest, OptimalLowerBoundIsConsistent) {
  const DirectedGraph graph = RandomWcGraph(100, 500, 180);
  Rng rng(181);
  const AteucResult result =
      RunAteuc(graph, DiffusionModel::kIndependentCascade, 25, AteucOptions{}, rng);
  EXPECT_GE(result.optimal_lower_bound, 1u);
  EXPECT_LE(result.optimal_lower_bound, result.seeds.size());
}

TEST(AteucTest, LargerEtaNeedsMoreSeeds) {
  const DirectedGraph graph = RandomWcGraph(150, 700, 182);
  Rng rng1(183);
  Rng rng2(184);
  const AteucResult small =
      RunAteuc(graph, DiffusionModel::kIndependentCascade, 15, AteucOptions{}, rng1);
  const AteucResult large =
      RunAteuc(graph, DiffusionModel::kIndependentCascade, 60, AteucOptions{}, rng2);
  EXPECT_LE(small.seeds.size(), large.seeds.size());
}

TEST(AteucTest, CanMissThresholdOnIndividualRealizations) {
  // The paper's core criticism of non-adaptive selection (Fig. 8): a set
  // with E[I(S)] ≥ η still undershoots on some realizations. Find at least
  // one undershoot across realizations of a high-variance graph.
  Rng graph_rng(185);
  auto graph = BuildWeightedGraph(MakeBarabasiAlbert(200, 2, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  const NodeId eta = 60;
  Rng rng(186);
  AteucOptions options;
  options.target_slack = 1.0;  // aim E[I(S)] at η exactly: variance exposes misses
  const AteucResult selection =
      RunAteuc(*graph, DiffusionModel::kIndependentCascade, eta, options, rng);
  ForwardSimulator simulator(*graph);
  Rng world_rng(187);
  size_t misses = 0;
  const int realizations = 100;
  for (int r = 0; r < realizations; ++r) {
    const Realization hidden = Realization::SampleIc(*graph, world_rng);
    if (simulator.Spread(hidden, selection.seeds) < eta) ++misses;
  }
  EXPECT_GT(misses, 0u) << "non-adaptive selection never missed in "
                        << realizations << " realizations (unexpectedly reliable)";
  EXPECT_LT(misses, static_cast<size_t>(realizations));  // but not always
}

TEST(AteucTest, DeterministicGivenSeed) {
  const DirectedGraph graph = RandomWcGraph(80, 400, 188);
  Rng rng1(189);
  Rng rng2(189);
  const AteucResult a =
      RunAteuc(graph, DiffusionModel::kIndependentCascade, 20, AteucOptions{}, rng1);
  const AteucResult b =
      RunAteuc(graph, DiffusionModel::kIndependentCascade, 20, AteucOptions{}, rng2);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.num_samples, b.num_samples);
}

// --- OracleGreedy ----------------------------------------------------------

TEST(OracleGreedyTest, PicksTruncatedOptimumOnExample23) {
  auto graph = MakePaperFigure2Graph();
  ASSERT_TRUE(graph.ok());
  OracleGreedy oracle(*graph, DiffusionModel::kIndependentCascade,
                      OracleGreedyOptions{4000});
  BitVector active(4);
  std::vector<NodeId> inactive = {0, 1, 2, 3};
  Rng rng(190);
  const SelectionResult result =
      oracle.SelectBatch(FullGraphView(active, inactive, 2), rng);
  EXPECT_TRUE(result.seeds[0] == 1 || result.seeds[0] == 2);
  EXPECT_NEAR(result.estimated_marginal_gain, 2.0, 0.05);
}

TEST(OracleGreedyTest, ReachesTargetUnderAstiLoop) {
  const DirectedGraph graph = RandomWcGraph(40, 200, 191);
  Rng world_rng(192);
  AdaptiveWorld world(graph, DiffusionModel::kIndependentCascade, 10, world_rng);
  OracleGreedy oracle(graph, DiffusionModel::kIndependentCascade,
                      OracleGreedyOptions{300});
  Rng rng(193);
  const AdaptiveRunTrace trace = RunAdaptivePolicy(world, oracle, rng);
  EXPECT_TRUE(trace.target_reached);
}

// --- DegreeAdaptive --------------------------------------------------------

TEST(DegreeAdaptiveTest, PicksHighestResidualDegree) {
  // Star graph: center has out-degree n-1, must be picked first.
  auto graph = BuildWeightedGraph(MakeStar(10), WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  DegreeAdaptive degree(*graph);
  BitVector active(10);
  std::vector<NodeId> inactive(10);
  std::iota(inactive.begin(), inactive.end(), 0);
  Rng rng(194);
  const SelectionResult result =
      degree.SelectBatch(FullGraphView(active, inactive, 5), rng);
  EXPECT_EQ(result.seeds[0], 0u);
}

TEST(DegreeAdaptiveTest, CountsOnlyInactiveNeighbors) {
  // Node 0 -> {1,2,3}; node 4 -> {5,6}. With 1,2,3 active, node 4's
  // residual degree (2) beats node 0's (0).
  GraphBuilder builder(7);
  for (NodeId v : {1, 2, 3}) ASSERT_TRUE(builder.AddEdge(0, v, 0.5).ok());
  for (NodeId v : {5, 6}) ASSERT_TRUE(builder.AddEdge(4, v, 0.5).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  DegreeAdaptive degree(*graph);
  BitVector active(7);
  active.Set(1);
  active.Set(2);
  active.Set(3);
  std::vector<NodeId> inactive = {0, 4, 5, 6};
  Rng rng(195);
  const SelectionResult result =
      degree.SelectBatch(FullGraphView(active, inactive, 3), rng);
  EXPECT_EQ(result.seeds[0], 4u);
}

}  // namespace
}  // namespace asti
