// Tests for the observability subsystem (src/obs/): the fixed histogram
// bucket grid, merge/quantile determinism, concurrent recorders, the
// metrics registry, phase spans, and the exporters.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace asti {
namespace {

// --- Bucket grid ------------------------------------------------------------

TEST(HistogramLayoutTest, SmallValuesGetExactBuckets) {
  for (uint64_t v = 0; v < HistogramLayout::kSub; ++v) {
    EXPECT_EQ(HistogramLayout::BucketIndex(v), v);
    EXPECT_EQ(HistogramLayout::BucketMin(v), v);
    EXPECT_EQ(HistogramLayout::BucketMax(v), v);
  }
}

TEST(HistogramLayoutTest, PinnedIndices) {
  // The grid is a wire/merge format: these values must never move.
  EXPECT_EQ(HistogramLayout::kNumBuckets, 244u);
  EXPECT_EQ(HistogramLayout::BucketIndex(4), 4u);
  EXPECT_EQ(HistogramLayout::BucketIndex(5), 5u);
  EXPECT_EQ(HistogramLayout::BucketIndex(7), 7u);
  EXPECT_EQ(HistogramLayout::BucketIndex(8), 8u);   // next octave
  // 1000: octave w=9, sub-bucket (1000 >> 7) & 3 = 3 → 4 + (9−2)·4 + 3.
  EXPECT_EQ(HistogramLayout::BucketIndex(1000), 35u);
  EXPECT_EQ(HistogramLayout::BucketIndex(HistogramLayout::kMaxValue),
            HistogramLayout::kNumBuckets - 1);
  // Values beyond the grid clamp into the top bucket.
  EXPECT_EQ(HistogramLayout::BucketIndex(~uint64_t{0}),
            HistogramLayout::kNumBuckets - 1);
}

TEST(HistogramLayoutTest, BucketBoundsRoundTrip) {
  for (size_t i = 0; i < HistogramLayout::kNumBuckets; ++i) {
    const uint64_t lo = HistogramLayout::BucketMin(i);
    const uint64_t hi = HistogramLayout::BucketMax(i);
    ASSERT_LE(lo, hi) << "bucket " << i;
    EXPECT_EQ(HistogramLayout::BucketIndex(lo), i);
    EXPECT_EQ(HistogramLayout::BucketIndex(hi), i);
    if (i > 0) {
      EXPECT_EQ(HistogramLayout::BucketMax(i - 1) + 1, lo)
          << "gap or overlap before bucket " << i;
    }
  }
}

TEST(HistogramLayoutTest, IndexIsMonotonic) {
  uint64_t previous = 0;
  for (uint64_t v = 0; v < 100000; ++v) {
    const uint64_t index = HistogramLayout::BucketIndex(v);
    ASSERT_GE(index, previous) << "v=" << v;
    previous = index;
  }
}

// --- Merge / quantile determinism -------------------------------------------

TEST(HistogramDataTest, MergeOfShardsMatchesSingleStream) {
  // The core contract: quantiles of a merge are bit-identical to the
  // quantiles of one histogram fed the same values in any order.
  std::vector<uint64_t> values;
  uint64_t x = 12345;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    values.push_back(x >> 30);  // spread across many octaves
  }

  HistogramData single;
  for (uint64_t v : values) single.Add(v);

  HistogramData shards[4];
  for (size_t i = 0; i < values.size(); ++i) shards[i % 4].Add(values[i]);
  HistogramData merged;
  // Merge in reverse shard order: order must not matter.
  for (int s = 3; s >= 0; --s) merged.Merge(shards[s]);

  EXPECT_EQ(merged.buckets, single.buckets);
  EXPECT_EQ(merged.sum, single.sum);
  EXPECT_EQ(merged.Count(), single.Count());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(merged.Quantile(q), single.Quantile(q)) << "q=" << q;
  }
}

TEST(HistogramDataTest, QuantileSemantics) {
  HistogramData h;
  EXPECT_EQ(h.Quantile(0.5), 0u);  // empty
  EXPECT_EQ(h.MaxValue(), 0u);
  for (uint64_t v = 0; v < 4; ++v) h.Add(v);  // exact buckets 0..3
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_EQ(h.Quantile(0.25), 0u);
  EXPECT_EQ(h.Quantile(0.5), 1u);
  EXPECT_EQ(h.Quantile(1.0), 3u);
  EXPECT_EQ(h.MaxValue(), 3u);
  // Quantile representatives never under-report: BucketMax(BucketIndex(v)) >= v.
  h.Add(1000);
  EXPECT_GE(h.Quantile(1.0), 1000u);
}

TEST(LogHistogramTest, ConcurrentRecordsAllLand) {
  LogHistogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const HistogramData data = histogram.Snapshot();
  EXPECT_EQ(data.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  const uint64_t n = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(data.sum, n * (n - 1) / 2);
}

// --- Counters / registry ----------------------------------------------------

TEST(ShardedCounterTest, ConcurrentAddsAreExact) {
  ShardedCounter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(MetricsRegistryTest, GetOrCreateReturnsStableReferences) {
  MetricsRegistry registry;
  const MetricLabels labels_a = {{"graph", "a"}};
  const MetricLabels labels_b = {{"graph", "b"}};
  ShardedCounter& counter_a = registry.GetCounter("requests", labels_a);
  ShardedCounter& counter_b = registry.GetCounter("requests", labels_b);
  EXPECT_NE(&counter_a, &counter_b);
  counter_a.Add(3);
  // Same identity resolves to the same object, not a fresh zero.
  EXPECT_EQ(&registry.GetCounter("requests", labels_a), &counter_a);
  EXPECT_EQ(registry.GetCounter("requests", labels_a).Value(), 3u);

  LogHistogram& h = registry.GetHistogram("latency", labels_a, 1e-9);
  h.Record(42);
  EXPECT_EQ(&registry.GetHistogram("latency", labels_a, 1e-9), &h);

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  // Sorted by (name, labels): graph=a before graph=b.
  EXPECT_EQ(snapshot.counters[0].labels, labels_a);
  EXPECT_EQ(snapshot.counters[0].value, 3u);
  EXPECT_EQ(snapshot.counters[1].value, 0u);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.histograms[0].scale, 1e-9);
  EXPECT_EQ(snapshot.histograms[0].data.Count(), 1u);

  const CounterSample* found = snapshot.FindCounter("requests", labels_a);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->value, 3u);
  EXPECT_EQ(snapshot.FindCounter("requests", {{"graph", "zzz"}}), nullptr);
}

TEST(MetricsRegistryTest, MergedHistogramFiltersByLabel) {
  MetricsRegistry registry;
  registry.GetHistogram("lat", {{"graph", "a"}, {"algorithm", "x"}}, 1e-9).Record(10);
  registry.GetHistogram("lat", {{"graph", "a"}, {"algorithm", "y"}}, 1e-9).Record(20);
  registry.GetHistogram("lat", {{"graph", "b"}, {"algorithm", "x"}}, 1e-9).Record(30);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.MergedHistogram("lat").Count(), 3u);
  EXPECT_EQ(snapshot.MergedHistogram("lat", "graph", "a").Count(), 2u);
  EXPECT_EQ(snapshot.MergedHistogram("lat", "graph", "b").Count(), 1u);
  EXPECT_EQ(snapshot.MergedHistogram("lat", "graph", "zzz").Count(), 0u);
  EXPECT_EQ(snapshot.MergedHistogram("other").Count(), 0u);
}

// --- Phase spans ------------------------------------------------------------

TEST(PhaseSpanTest, NullProfileIsANoOp) {
  PhaseSpan span(nullptr, RequestPhase::kSampling);  // must not crash
  NoteSampling(nullptr, 100, 100);
}

TEST(PhaseSpanTest, AccumulatesIntoTheRightSlot) {
  RequestProfile profile;
  {
    PhaseSpan span(&profile, RequestPhase::kCoverage);
    // Burn a little time so the slot is measurably positive.
    volatile uint64_t sink = 0;
    for (int i = 0; i < 100000; ++i) sink = sink + static_cast<uint64_t>(i);
  }
  EXPECT_GT(profile.coverage_seconds, 0.0);
  EXPECT_EQ(profile.sampling_seconds, 0.0);
  EXPECT_EQ(profile.certify_seconds, 0.0);

  NoteSampling(&profile, 10, 500);
  NoteSampling(&profile, 5, 300);  // bytes keeps the peak, sets accumulate
  EXPECT_EQ(profile.sets_generated, 15u);
  EXPECT_EQ(profile.collection_bytes, 500u);
}

// --- Exporters --------------------------------------------------------------

TEST(ExportTest, PrometheusTextShape) {
  MetricsRegistry registry;
  registry.GetCounter("asti_requests_total", {{"graph", "g"}, {"outcome", "OK"}})
      .Add(2);
  LogHistogram& h =
      registry.GetHistogram("asti_request_latency_seconds", {{"graph", "g"}}, 1e-9);
  h.Record(1000000000);  // 1s
  h.Record(2000000000);  // 2s
  registry.GetGauge("asti_admission_inflight").Set(4);
  const std::string text = ExportPrometheusText(registry.Snapshot());

  EXPECT_NE(text.find("# TYPE asti_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("asti_requests_total{graph=\"g\",outcome=\"OK\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE asti_request_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("asti_request_latency_seconds_bucket"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("asti_request_latency_seconds_sum{graph=\"g\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("asti_request_latency_seconds_count{graph=\"g\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE asti_admission_inflight gauge"), std::string::npos);
  EXPECT_NE(text.find("asti_admission_inflight 4"), std::string::npos);
  // One TYPE line per family, even with several label sets.
  registry.GetCounter("asti_requests_total", {{"graph", "h"}, {"outcome", "OK"}})
      .Add(1);
  const std::string two = ExportPrometheusText(registry.Snapshot());
  const size_t first = two.find("# TYPE asti_requests_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(two.find("# TYPE asti_requests_total counter", first + 1),
            std::string::npos);
}

TEST(ExportTest, JsonShape) {
  MetricsRegistry registry;
  registry.GetCounter("c", {{"k", "v"}}).Add(7);
  registry.GetHistogram("h", {}, 1.0).Record(5);
  const std::string json = ExportMetricsJson(registry.Snapshot());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
}

}  // namespace
}  // namespace asti
