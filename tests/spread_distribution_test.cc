// Tests for diffusion/spread_distribution.h.

#include <gtest/gtest.h>

#include "diffusion/spread_distribution.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace asti {
namespace {

TEST(SpreadDistributionTest, DeterministicGraphIsPointMass) {
  auto graph = BuildWeightedGraph(MakePath(5), WeightScheme::kUniform, 1.0);
  ASSERT_TRUE(graph.ok());
  Rng rng(321);
  const SpreadDistribution dist(*graph, DiffusionModel::kIndependentCascade, {0}, 200,
                                rng);
  EXPECT_DOUBLE_EQ(dist.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(dist.Quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(dist.Quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(dist.MissProbability(5.0), 0.0);
  EXPECT_DOUBLE_EQ(dist.MissProbability(5.5), 1.0);
}

TEST(SpreadDistributionTest, BernoulliEdgeMatchesClosedForm) {
  // 0 ->(.3) 1: spread is 1 w.p. .7 and 2 w.p. .3.
  GraphBuilder builder(2);
  ASSERT_TRUE(builder.AddEdge(0, 1, 0.3).ok());
  const DirectedGraph graph = std::move(builder.Build()).value();
  Rng rng(322);
  const SpreadDistribution dist(graph, DiffusionModel::kIndependentCascade, {0}, 50000,
                                rng);
  EXPECT_NEAR(dist.Mean(), 1.3, 0.01);
  EXPECT_NEAR(dist.MissProbability(2.0), 0.7, 0.01);
  EXPECT_DOUBLE_EQ(dist.Quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(dist.Quantile(0.99), 2.0);
}

TEST(SpreadDistributionTest, QuantilesMonotone) {
  Rng graph_rng(323);
  auto graph = BuildWeightedGraph(MakeBarabasiAlbert(150, 2, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  Rng rng(324);
  const SpreadDistribution dist(*graph, DiffusionModel::kIndependentCascade, {0, 1},
                                2000, rng);
  double previous = -1.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const double value = dist.Quantile(q);
    EXPECT_GE(value, previous);
    previous = value;
  }
}

TEST(SpreadDistributionTest, OvershootComplementsConsistently) {
  Rng graph_rng(325);
  auto graph = BuildWeightedGraph(MakeBarabasiAlbert(150, 2, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  Rng rng(326);
  const SpreadDistribution dist(*graph, DiffusionModel::kIndependentCascade, {0}, 2000,
                                rng);
  const double eta = dist.Quantile(0.5);
  // miss + in-band + overshoot(1x) == 1 (with ties counted once).
  const double miss = dist.MissProbability(eta);
  const double over = dist.OvershootProbability(eta, 1.0);
  EXPECT_LE(miss + over, 1.0 + 1e-12);
  EXPECT_GE(miss + over, 0.0);
  // A factor-100 overshoot band is rarer than factor-1.
  EXPECT_LE(dist.OvershootProbability(eta, 100.0), over);
}

TEST(SpreadDistributionTest, LtModelSupported) {
  auto graph = BuildWeightedGraph(MakeCycle(6), WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  Rng rng(327);
  const SpreadDistribution dist(*graph, DiffusionModel::kLinearThreshold, {2}, 100, rng);
  // WC on a cycle makes every in-edge probability 1: full cycle always.
  EXPECT_DOUBLE_EQ(dist.Mean(), 6.0);
}

}  // namespace
}  // namespace asti
