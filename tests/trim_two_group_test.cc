// Tests for core/trim_two_group.h: selection quality matches one-group
// TRIM; sample accounting covers both collections; ASTI integration.

#include <gtest/gtest.h>

#include <numeric>

#include "core/asti.h"
#include "core/trim.h"
#include "core/trim_two_group.h"
#include "diffusion/monte_carlo.h"
#include "graph/generators.h"

namespace asti {
namespace {

ResidualView FullGraphView(const BitVector& active, const std::vector<NodeId>& inactive,
                           NodeId shortfall) {
  ResidualView view;
  view.active = &active;
  view.inactive_nodes = &inactive;
  view.shortfall = shortfall;
  return view;
}

TEST(TrimTwoGroupTest, SelectsHighQualityNodeOnFigure2) {
  auto graph = MakePaperFigure2Graph();
  ASSERT_TRUE(graph.ok());
  TrimTwoGroup selector(*graph, DiffusionModel::kIndependentCascade, TrimOptions{0.3});
  BitVector active(4);
  std::vector<NodeId> inactive = {0, 1, 2, 3};
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(1300 + seed);
    const SelectionResult result =
        selector.SelectBatch(FullGraphView(active, inactive, 2), rng);
    ASSERT_EQ(result.seeds.size(), 1u);
    EXPECT_NE(result.seeds[0], 3u);  // v4 is clearly suboptimal
  }
}

TEST(TrimTwoGroupTest, ApproximationComparableToTrim) {
  Rng graph_rng(311);
  auto graph = BuildWeightedGraph(MakeErdosRenyi(80, 400, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  const NodeId eta = 16;
  BitVector active(80);
  std::vector<NodeId> inactive(80);
  std::iota(inactive.begin(), inactive.end(), 0);

  TrimTwoGroup two_group(*graph, DiffusionModel::kIndependentCascade, TrimOptions{0.4});
  Rng rng(312);
  const SelectionResult result =
      two_group.SelectBatch(FullGraphView(active, inactive, eta), rng);

  MonteCarloEstimator mc(*graph, DiffusionModel::kIndependentCascade);
  Rng mc_rng(313);
  const double chosen = mc.EstimateTruncatedSpread({result.seeds[0]}, eta, 20000, mc_rng);
  double best = 0.0;
  for (NodeId v = 0; v < 80; ++v) {
    best = std::max(best, mc.EstimateTruncatedSpread({v}, eta, 4000, mc_rng));
  }
  EXPECT_GE(chosen, 0.379 * best - 0.5);  // (1-1/e)(1-0.4) with MC slack
}

TEST(TrimTwoGroupTest, CountsBothGroups) {
  auto graph = MakePaperFigure1Graph();
  ASSERT_TRUE(graph.ok());
  TrimTwoGroup selector(*graph, DiffusionModel::kIndependentCascade, TrimOptions{0.5});
  BitVector active(6);
  std::vector<NodeId> inactive = {0, 1, 2, 3, 4, 5};
  Rng rng(314);
  const SelectionResult result =
      selector.SelectBatch(FullGraphView(active, inactive, 3), rng);
  EXPECT_GE(result.num_samples, 2u);
  EXPECT_EQ(result.num_samples % 2, 0u);  // equal halves
}

TEST(TrimTwoGroupTest, ReachesTargetUnderAstiLoop) {
  Rng graph_rng(315);
  auto graph = BuildWeightedGraph(MakeBarabasiAlbert(200, 2, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  Rng world_rng(316);
  AdaptiveWorld world(*graph, DiffusionModel::kIndependentCascade, 50, world_rng);
  TrimTwoGroup selector(*graph, DiffusionModel::kIndependentCascade, TrimOptions{0.5});
  Rng rng(317);
  const AdaptiveRunTrace trace = RunAdaptivePolicy(world, selector, rng);
  EXPECT_TRUE(trace.target_reached);
}

TEST(TrimTwoGroupTest, OneGroupUsesNoMoreSamplesAtSingleton) {
  // §3.4's design claim, measured: for b = 1 the one-group TRIM should not
  // need more mRR-sets than the two-group variant on the same state.
  Rng graph_rng(318);
  auto graph = BuildWeightedGraph(MakeBarabasiAlbert(400, 2, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  BitVector active(400);
  std::vector<NodeId> inactive(400);
  std::iota(inactive.begin(), inactive.end(), 0);
  const ResidualView view = FullGraphView(active, inactive, 80);

  size_t one_group_total = 0;
  size_t two_group_total = 0;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Trim one(*graph, DiffusionModel::kIndependentCascade, TrimOptions{0.5});
    TrimTwoGroup two(*graph, DiffusionModel::kIndependentCascade, TrimOptions{0.5});
    Rng rng1(400 + seed);
    Rng rng2(500 + seed);
    one_group_total += one.SelectBatch(view, rng1).num_samples;
    two_group_total += two.SelectBatch(view, rng2).num_samples;
  }
  EXPECT_LE(one_group_total, 2 * two_group_total);
}

}  // namespace
}  // namespace asti
