// Tests for the GraphCatalog (src/api/graph_catalog.h): Register / Get /
// Swap / Retire semantics, epoch bookkeeping, snapshot pinning (refs
// outlive swaps and retirement), and the concurrency contract — Swap
// under serving load leaves old-epoch requests bit-identical on their
// pinned snapshot, Retire never frees a snapshot with outstanding refs,
// and concurrent Register/Get/Swap races are clean (this test runs in the
// ThreadSanitizer CI job).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/graph_catalog.h"
#include "api/seedmin_engine.h"
#include "graph/generators.h"

namespace asti {
namespace {

DirectedGraph MakeGraph(NodeId nodes, uint64_t seed) {
  Rng rng(seed);
  auto graph = BuildWeightedGraph(MakeBarabasiAlbert(nodes, 2, rng),
                                  WeightScheme::kWeightedCascade);
  ASM_CHECK(graph.ok()) << graph.status().ToString();
  return std::move(graph).value();
}

std::string Fingerprint(const SolveResult& result) {
  std::ostringstream out;
  out << result.graph_name << '@' << result.graph_epoch << '|';
  for (double spread : result.spreads) out << spread << ',';
  out << '|';
  for (size_t count : result.seed_counts) out << count << ',';
  for (const AdaptiveRunTrace& trace : result.traces) {
    for (NodeId seed : trace.seeds) out << seed << ' ';
    out << '/' << trace.total_activated << ';';
  }
  return out.str();
}

// --- Registry semantics ----------------------------------------------------

TEST(GraphCatalogTest, RegisterGetRoundTripsMetadata) {
  GraphCatalog catalog;
  DirectedGraph graph = MakeGraph(120, 1);
  const NodeId n = graph.NumNodes();
  const EdgeId m = graph.NumEdges();
  const auto registered = catalog.Register("alpha", std::move(graph));
  ASSERT_TRUE(registered.ok());
  EXPECT_EQ(registered->name(), "alpha");
  EXPECT_EQ(registered->epoch(), 1u);
  EXPECT_EQ(registered->num_nodes(), n);
  EXPECT_EQ(registered->num_edges(), m);

  const auto got = catalog.Get("alpha");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->snapshot.get(), registered->snapshot.get());
  EXPECT_EQ(got->epoch(), 1u);
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(GraphCatalogTest, RejectsBadRegistrations) {
  GraphCatalog catalog;
  EXPECT_EQ(catalog.Register("", MakeGraph(80, 2)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(catalog
                .Register("null", std::shared_ptr<const DirectedGraph>())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(catalog.Register("alpha", MakeGraph(80, 2)).ok());
  // Duplicate names are an explicit Swap, never a silent replace.
  EXPECT_EQ(catalog.Register("alpha", MakeGraph(80, 3)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(GraphCatalogTest, GetSwapRetireUnknownNamesAreNotFound) {
  GraphCatalog catalog;
  EXPECT_EQ(catalog.Get("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.Swap("ghost", MakeGraph(80, 4)).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(catalog.Retire("ghost").code(), StatusCode::kNotFound);
}

TEST(GraphCatalogTest, SwapBumpsEpochAndOldRefsStayPinned) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Register("alpha", MakeGraph(100, 5)).ok());
  const auto old_ref = catalog.Get("alpha");
  ASSERT_TRUE(old_ref.ok());

  const auto swapped = catalog.Swap("alpha", MakeGraph(140, 6));
  ASSERT_TRUE(swapped.ok());
  EXPECT_EQ(swapped->epoch(), 2u);
  EXPECT_EQ(swapped->num_nodes(), 140u);

  // The old ref still sees its epoch-1 snapshot, untouched.
  EXPECT_EQ(old_ref->epoch(), 1u);
  EXPECT_EQ(old_ref->graph().NumNodes(), 100u);
  const auto current = catalog.Get("alpha");
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current->epoch(), 2u);
  EXPECT_NE(current->snapshot.get(), old_ref->snapshot.get());
}

TEST(GraphCatalogTest, RetireFreesOnlyAfterLastRefDrops) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Register("alpha", MakeGraph(100, 7)).ok());
  auto ref = catalog.Get("alpha");
  ASSERT_TRUE(ref.ok());
  std::weak_ptr<const DirectedGraph> watcher = ref->snapshot;

  ASSERT_TRUE(catalog.Retire("alpha").ok());
  EXPECT_EQ(catalog.Get("alpha").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.size(), 0u);
  // The outstanding ref pins the snapshot through retirement...
  EXPECT_FALSE(watcher.expired());
  EXPECT_EQ(ref->graph().NumNodes(), 100u);
  // ...and releasing it frees the graph.
  ref = Status::NotFound("dropped");
  EXPECT_TRUE(watcher.expired());
}

TEST(GraphCatalogTest, ReRegisterAfterRetireRestartsEpochs) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Register("alpha", MakeGraph(90, 8)).ok());
  ASSERT_TRUE(catalog.Swap("alpha", MakeGraph(90, 9)).ok());
  ASSERT_TRUE(catalog.Retire("alpha").ok());
  const auto again = catalog.Register("alpha", MakeGraph(90, 10));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->epoch(), 1u);
}

TEST(GraphCatalogTest, ListIsNameOrderedAndVersionCountsMutations) {
  GraphCatalog catalog;
  EXPECT_EQ(catalog.version(), 0u);
  ASSERT_TRUE(catalog.Register("beta", MakeGraph(80, 11)).ok());
  ASSERT_TRUE(catalog.Register("alpha", MakeGraph(80, 12)).ok());
  ASSERT_TRUE(catalog.Swap("beta", MakeGraph(80, 13)).ok());
  const auto refs = catalog.List();
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0].name(), "alpha");
  EXPECT_EQ(refs[1].name(), "beta");
  EXPECT_EQ(refs[1].epoch(), 2u);
  EXPECT_EQ(catalog.version(), 3u);
  // Failed mutations don't bump the version.
  ASSERT_FALSE(catalog.Retire("ghost").ok());
  EXPECT_EQ(catalog.version(), 3u);
}

TEST(GraphCatalogTest, RegisterSurrogateUsesCanonicalName) {
  GraphCatalog catalog;
  const auto ref = RegisterSurrogate(catalog, DatasetId::kNetHept, 0.05, 7);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->name(), "nethept");
  EXPECT_TRUE(catalog.Get("nethept").ok());
}

// --- Concurrency ------------------------------------------------------------

// Swap under serving load: requests admitted before the swap complete
// bit-identically on their pinned epoch-1 snapshot; requests issued after
// the swap run on epoch 2 and say so.
TEST(GraphCatalogTest, SwapUnderLoadPinsOldEpochRequests) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Register("serve", MakeGraph(220, 20)).ok());
  ASSERT_TRUE(catalog.Register("other", MakeGraph(150, 21)).ok());

  SolveRequest request;
  request.graph = "serve";
  request.eta = 25;
  request.realizations = 2;
  request.seed = 77;
  request.keep_traces = true;

  // Solo reference on the epoch-1 snapshot.
  std::string reference;
  {
    SeedMinEngine engine(catalog);
    const auto solo = engine.Solve(request);
    ASSERT_TRUE(solo.ok());
    EXPECT_EQ(solo->graph_epoch, 1u);
    reference = Fingerprint(*solo);
  }

  SeedMinEngine::ServingOptions options;
  options.num_drivers = 2;
  SeedMinEngine engine(catalog, options);
  // Admit a burst against the epoch-1 snapshot, then swap immediately:
  // some requests will still be queued when the swap lands, yet all of
  // them resolved (and pinned) at admission.
  std::vector<std::future<StatusOr<SolveResult>>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(engine.SubmitAsync(request));
  ASSERT_TRUE(catalog.Swap("serve", MakeGraph(260, 22)).ok());

  for (auto& future : futures) {
    const auto result = future.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->graph_epoch, 1u);
    EXPECT_EQ(Fingerprint(*result), reference);
  }
  // A fresh request routes to the new epoch.
  const auto fresh = engine.Solve(request);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->graph_epoch, 2u);
  EXPECT_NE(Fingerprint(*fresh), reference);  // different snapshot, different worlds
}

// Retire with inflight refs: the engine keeps serving admitted requests
// on the retired snapshot; new submissions answer NotFound.
TEST(GraphCatalogTest, RetireWithInflightRequestsDrainsCleanly) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Register("doomed", MakeGraph(220, 30)).ok());
  std::weak_ptr<const DirectedGraph> watcher = catalog.Get("doomed")->snapshot;

  SolveRequest request;
  request.graph = "doomed";
  request.eta = 25;
  request.realizations = 4;
  request.seed = 31;

  SeedMinEngine::ServingOptions options;
  options.num_drivers = 1;
  {
    SeedMinEngine engine(catalog, options);
    std::vector<std::future<StatusOr<SolveResult>>> futures;
    for (int i = 0; i < 4; ++i) futures.push_back(engine.SubmitAsync(request));
    ASSERT_TRUE(catalog.Retire("doomed").ok());
    // Everything admitted before the retire completes normally.
    for (auto& future : futures) {
      const auto result = future.get();
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result->graph_name, "doomed");
    }
    // New work can no longer route to the retired name.
    const auto after = engine.Solve(request);
    ASSERT_FALSE(after.ok());
    EXPECT_EQ(after.status().code(), StatusCode::kNotFound);
    // The NotFound resolution also dropped the engine's cached pin. The
    // drivers release their per-request pins just after resolving the
    // futures, so poll briefly for the last one.
    for (int i = 0; i < 500 && !watcher.expired(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(watcher.expired());
  }
}

// Raw catalog races: many registrars, readers, swappers and listers on
// one catalog. TSAN-checked; assertions keep the interleavings honest.
TEST(GraphCatalogTest, ConcurrentRegisterGetSwapIsClean) {
  GraphCatalog catalog;
  constexpr int kPerThread = 16;
  std::vector<std::thread> threads;

  // Two registrar threads racing to register the same names: exactly one
  // may win each name.
  std::atomic<int> wins{0};
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&catalog, &wins, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto result = catalog.Register("shared-" + std::to_string(i),
                                             MakeGraph(70, 100 + t * 1000 + i));
        if (result.ok()) wins.fetch_add(1);
      }
    });
  }
  // A swapper hammering one dedicated name.
  ASSERT_TRUE(catalog.Register("swap-me", MakeGraph(70, 50)).ok());
  threads.emplace_back([&catalog] {
    for (int i = 0; i < kPerThread; ++i) {
      ASM_CHECK(catalog.Swap("swap-me", MakeGraph(70, 200 + i)).ok());
    }
  });
  // Readers resolving and touching snapshots while all of that happens.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&catalog] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto ref = catalog.Get("swap-me");
        if (ref.ok()) {
          ASM_CHECK(ref->graph().NumNodes() == 70u);
        }
        (void)catalog.Get("shared-" + std::to_string(i));
        (void)catalog.List();
        (void)catalog.version();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(wins.load(), kPerThread);  // every name registered exactly once
  const auto final_ref = catalog.Get("swap-me");
  ASSERT_TRUE(final_ref.ok());
  EXPECT_EQ(final_ref->epoch(), 1u + kPerThread);
  EXPECT_EQ(catalog.size(), 1u + kPerThread);
}

}  // namespace
}  // namespace asti
