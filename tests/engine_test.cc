// Tests for the SeedMinEngine façade (src/api/): boundary validation
// (Status::InvalidArgument instead of process aborts), the algorithm
// registry, and the serving determinism contract — a SolveResult is a pure
// function of (graph, request), bit-identical whether the request runs
// solo, in a concurrent SolveBatch, or on a different engine instance, at
// every pool size.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/seedmin_engine.h"
#include "benchutil/experiment.h"
#include "graph/generators.h"

namespace asti {
namespace {

// Order-sensitive serialization of every deterministic field a client can
// observe, down to the per-round records; wall-clock timings (the one
// legitimately run-dependent part of a SolveResult) are excluded.
std::string Fingerprint(const SolveResult& result) {
  std::ostringstream out;
  out << result.algorithm_name << '|';
  for (double spread : result.spreads) out << spread << ',';
  out << '|';
  for (size_t count : result.seed_counts) out << count << ',';
  out << '|';
  for (const AdaptiveRunTrace& trace : result.traces) {
    for (NodeId seed : trace.seeds) out << seed << ' ';
    out << '/' << trace.total_activated << '/' << trace.total_samples;
    for (const RoundRecord& round : trace.rounds) {
      out << '[' << round.round << ':';
      for (NodeId seed : round.seeds) out << seed << ' ';
      out << round.shortfall_before << '/' << round.newly_activated << '/'
          << round.truncated_gain << '/' << round.estimated_gain << '/'
          << round.num_samples << ']';
    }
    out << ';';
  }
  out << '|' << result.aggregate.mean_seeds << '|' << result.aggregate.mean_spread
      << '|' << result.always_reached;
  return out.str();
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(301);
    auto graph = BuildWeightedGraph(MakeBarabasiAlbert(220, 2, rng),
                                    WeightScheme::kWeightedCascade);
    ASSERT_TRUE(graph.ok());
    graph_ = std::make_unique<DirectedGraph>(std::move(graph).value());
  }

  // A mixed-algorithm request batch covering adaptive, batched, heuristic
  // and both non-adaptive paths, each with its own seed.
  std::vector<SolveRequest> MixedRequests() const {
    std::vector<SolveRequest> requests;
    auto add = [&requests](AlgorithmId algorithm, uint64_t seed) {
      SolveRequest request;
      request.algorithm = algorithm;
      request.eta = 25;
      request.realizations = 2;
      request.seed = seed;
      request.keep_traces = true;
      requests.push_back(request);
    };
    add(AlgorithmId::kAsti, 11);
    add(AlgorithmId::kAsti2, 12);
    add(AlgorithmId::kDegree, 13);
    add(AlgorithmId::kAteuc, 14);
    add(AlgorithmId::kBisection, 15);
    add(AlgorithmId::kAsti, 16);
    requests.back().batch_size = 3;  // non-canonical TRIM-B batch
    return requests;
  }

  std::unique_ptr<DirectedGraph> graph_;
};

// --- Validation at the API boundary (one test per bad field) --------------

TEST_F(EngineTest, RejectsEtaZero) {
  SeedMinEngine engine(*graph_);
  SolveRequest request;
  request.eta = 0;
  const auto result = engine.Solve(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, RejectsEtaAboveN) {
  SeedMinEngine engine(*graph_);
  SolveRequest request;
  request.eta = graph_->NumNodes() + 1;
  const auto result = engine.Solve(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, RejectsEpsilonAtOrBelowZero) {
  SeedMinEngine engine(*graph_);
  for (double epsilon : {0.0, -0.5}) {
    SolveRequest request;
    request.eta = 10;
    request.epsilon = epsilon;
    const auto result = engine.Solve(request);
    ASSERT_FALSE(result.ok()) << "epsilon=" << epsilon;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(EngineTest, RejectsEpsilonAtOrAboveOne) {
  SeedMinEngine engine(*graph_);
  for (double epsilon : {1.0, 2.5}) {
    SolveRequest request;
    request.eta = 10;
    request.epsilon = epsilon;
    const auto result = engine.Solve(request);
    ASSERT_FALSE(result.ok()) << "epsilon=" << epsilon;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(EngineTest, RejectsZeroRealizations) {
  SeedMinEngine engine(*graph_);
  SolveRequest request;
  request.eta = 10;
  request.realizations = 0;
  const auto result = engine.Solve(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, RejectsUnknownAlgorithmId) {
  SeedMinEngine engine(*graph_);
  SolveRequest request;
  request.eta = 10;
  request.algorithm = static_cast<AlgorithmId>(99);
  const auto result = engine.Solve(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, RejectsBatchSizeOffPlainAsti) {
  SeedMinEngine engine(*graph_);
  for (AlgorithmId algorithm : {AlgorithmId::kAsti4, AlgorithmId::kAdaptIm,
                                AlgorithmId::kDegree, AlgorithmId::kAteuc,
                                AlgorithmId::kBisection}) {
    SolveRequest request;
    request.eta = 10;
    request.algorithm = algorithm;
    request.batch_size = 4;
    const auto result = engine.Solve(request);
    ASSERT_FALSE(result.ok()) << AlgorithmName(algorithm);
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(EngineTest, RejectsZeroOracleTrials) {
  SeedMinEngine engine(*graph_);
  SolveRequest request;
  request.eta = 10;
  request.algorithm = AlgorithmId::kOracle;
  request.oracle_trials = 0;
  const auto result = engine.Solve(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, AsyncInvalidRequestResolvesToStatusNotCrash) {
  SeedMinEngine engine(*graph_);
  SolveRequest request;
  request.eta = 0;
  auto future = engine.SubmitAsync(request);
  const auto result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// --- Registry --------------------------------------------------------------

TEST(AlgorithmRegistryTest, ListCoversEveryIdWithNames) {
  const auto& catalog = AlgorithmRegistry::List();
  EXPECT_EQ(catalog.size(), 9u);
  for (const AlgorithmInfo& info : catalog) {
    EXPECT_STREQ(info.name, AlgorithmRegistry::Name(info.id));
    EXPECT_NE(std::string(info.paper_name), "");
  }
}

TEST(AlgorithmRegistryTest, ParsesCanonicalAndBatchedNames) {
  auto asti = AlgorithmRegistry::Parse("ASTI");
  ASSERT_TRUE(asti.ok());
  EXPECT_EQ(asti->id, AlgorithmId::kAsti);
  EXPECT_EQ(asti->batch_size, 0u);

  auto asti4 = AlgorithmRegistry::Parse("ASTI-4");
  ASSERT_TRUE(asti4.ok());
  EXPECT_EQ(asti4->id, AlgorithmId::kAsti4);

  auto asti16 = AlgorithmRegistry::Parse("ASTI-16");
  ASSERT_TRUE(asti16.ok());
  EXPECT_EQ(asti16->id, AlgorithmId::kAsti);
  EXPECT_EQ(asti16->batch_size, 16u);

  EXPECT_TRUE(AlgorithmRegistry::Parse("AdaptIM").ok());
  EXPECT_TRUE(AlgorithmRegistry::Parse("Degree").ok());
  EXPECT_FALSE(AlgorithmRegistry::Parse("ASTI-0").ok());
  EXPECT_FALSE(AlgorithmRegistry::Parse("ASTI-4x").ok());   // trailing garbage
  EXPECT_FALSE(AlgorithmRegistry::Parse("ASTI-1.5").ok());  // not an integer
  EXPECT_FALSE(AlgorithmRegistry::Parse("ASTI-").ok());
  EXPECT_FALSE(AlgorithmRegistry::Parse("nope").ok());
}

TEST_F(EngineTest, RegistryRefusesNonAdaptiveSelectors) {
  AlgorithmContext ctx;
  ctx.graph = graph_.get();
  for (AlgorithmId algorithm : {AlgorithmId::kAteuc, AlgorithmId::kBisection}) {
    auto selector = AlgorithmRegistry::Make(algorithm, ctx);
    ASSERT_FALSE(selector.ok());
    EXPECT_EQ(selector.status().code(), StatusCode::kInvalidArgument);
  }
  auto trim = AlgorithmRegistry::Make(AlgorithmId::kAsti, ctx);
  ASSERT_TRUE(trim.ok());
  EXPECT_STREQ((*trim)->Name(), "ASTI");
}

// --- Serving determinism ---------------------------------------------------

TEST_F(EngineTest, SolveMatchesLegacyRunCell) {
  SolveRequest request;
  request.algorithm = AlgorithmId::kAsti;
  request.eta = 25;
  request.realizations = 2;
  request.seed = 5;
  request.keep_traces = true;
  SeedMinEngine engine(*graph_);
  const auto via_engine = engine.Solve(request);
  ASSERT_TRUE(via_engine.ok());

  CellConfig config;
  config.algorithm = AlgorithmId::kAsti;
  config.eta = 25;
  config.realizations = 2;
  config.seed = 5;
  config.keep_traces = true;
  const CellResult via_runcell = RunCell(*graph_, config);
  EXPECT_EQ(Fingerprint(*via_engine), Fingerprint(via_runcell));
}

// The headline contract: SubmitAsync-ing N mixed-algorithm requests
// concurrently yields byte-identical SolveResults to solo sequential
// Solve calls, at every pool size.
TEST_F(EngineTest, ConcurrentBatchMatchesSoloAtEveryPoolSize) {
  const std::vector<SolveRequest> requests = MixedRequests();
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    std::vector<std::string> solo;
    {
      SeedMinEngine engine(*graph_, {threads});
      for (const SolveRequest& request : requests) {
        const auto result = engine.Solve(request);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        solo.push_back(Fingerprint(*result));
      }
    }
    SeedMinEngine engine(*graph_, {threads});
    const auto batch = engine.SolveBatch(requests);
    ASSERT_EQ(batch.size(), requests.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_TRUE(batch[i].ok()) << batch[i].status().ToString();
      EXPECT_EQ(Fingerprint(*batch[i]), solo[i])
          << "threads=" << threads << " request=" << i << " ("
          << AlgorithmName(requests[i].algorithm) << ")";
    }
  }
}

// Two engines sharing no state but the same request seeds agree, and a
// request interleaved with other clients' async work equals its solo run.
TEST_F(EngineTest, IndependentEnginesAndInterleavedClientsAgree) {
  const std::vector<SolveRequest> requests = MixedRequests();
  SeedMinEngine engine_a(*graph_, {2});
  SeedMinEngine engine_b(*graph_, {2});

  // Client 1 submits everything async on A; client 2 solves solo on B.
  std::vector<std::future<StatusOr<SolveResult>>> futures;
  for (const SolveRequest& request : requests) {
    futures.push_back(engine_a.SubmitAsync(request));
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    const auto from_b = engine_b.Solve(requests[i]);
    ASSERT_TRUE(from_b.ok());
    const auto from_a = futures[i].get();
    ASSERT_TRUE(from_a.ok());
    EXPECT_EQ(Fingerprint(*from_a), Fingerprint(*from_b)) << "request " << i;
  }
}

// Admission-rework pin: requests served through the bounded queue and the
// fixed driver pool — strictly serialized (one driver) or racing (three
// drivers) over a deliberately tiny queue, so blocking admission really
// engages — stay bit-identical to solo Solve runs at every pool size.
TEST_F(EngineTest, QueuedAndRacingDriversMatchSoloAtEveryPoolSize) {
  const std::vector<SolveRequest> requests = MixedRequests();
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    std::vector<std::string> solo;
    {
      SeedMinEngine engine(*graph_, {threads});
      for (const SolveRequest& request : requests) {
        const auto result = engine.Solve(request);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        solo.push_back(Fingerprint(*result));
      }
    }
    for (size_t drivers : {1u, 3u}) {
      SeedMinEngine::Options options;
      options.num_threads = threads;
      options.num_drivers = drivers;
      options.max_queue_depth = 2;  // capacity 3 or 5 < 6 requests
      SeedMinEngine engine(*graph_, options);
      const auto batch = engine.SolveBatch(requests);
      ASSERT_EQ(batch.size(), requests.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        ASSERT_TRUE(batch[i].ok()) << batch[i].status().ToString();
        EXPECT_EQ(Fingerprint(*batch[i]), solo[i])
            << "threads=" << threads << " drivers=" << drivers << " request=" << i;
      }
      const AdmissionQueue::Stats stats = engine.admission_stats();
      EXPECT_EQ(stats.admitted, requests.size());
      EXPECT_EQ(stats.rejected, 0u);  // SolveBatch throttles, never rejects
    }
  }
}

// The parallel sampling/coverage path is pool-size invariant, so engine
// results agree across every pool size > 1.
TEST_F(EngineTest, PoolSizesAboveOneAgree) {
  SolveRequest request;
  request.algorithm = AlgorithmId::kAsti2;
  request.eta = 25;
  request.seed = 21;
  request.keep_traces = true;
  std::string reference;
  for (size_t threads : {2u, 4u, 8u}) {
    SeedMinEngine engine(*graph_, {threads});
    const auto result = engine.Solve(request);
    ASSERT_TRUE(result.ok());
    if (reference.empty()) {
      reference = Fingerprint(*result);
    } else {
      EXPECT_EQ(Fingerprint(*result), reference) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace asti
