// Tests for the SeedMinEngine façade (src/api/): boundary validation
// (Status::InvalidArgument instead of process aborts), per-graph routing
// against the GraphCatalog (Status::NotFound for unknown names), the
// algorithm registry, and the serving determinism contract — a
// SolveResult is a pure function of (graph snapshot, request),
// bit-identical whether the request runs solo, in a concurrent
// SolveBatch, on a different engine instance, interleaved with requests
// against a *different* catalog graph, or across a hot-swap of an
// unrelated graph, at every pool size.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/graph_catalog.h"
#include "api/seedmin_engine.h"
#include "api/snapshot_serving.h"
#include "benchutil/experiment.h"
#include "graph/generators.h"
#include "store/snapshot_writer.h"

namespace asti {
namespace {

// Order-sensitive serialization of every deterministic field a client can
// observe, down to the per-round records; wall-clock timings (the one
// legitimately run-dependent part of a SolveResult) are excluded, and the
// graph identity fields are asserted separately where they matter.
std::string Fingerprint(const SolveResult& result) {
  std::ostringstream out;
  out << result.algorithm_name << '|';
  for (double spread : result.spreads) out << spread << ',';
  out << '|';
  for (size_t count : result.seed_counts) out << count << ',';
  out << '|';
  for (const AdaptiveRunTrace& trace : result.traces) {
    for (NodeId seed : trace.seeds) out << seed << ' ';
    out << '/' << trace.total_activated << '/' << trace.total_samples;
    for (const RoundRecord& round : trace.rounds) {
      out << '[' << round.round << ':';
      for (NodeId seed : round.seeds) out << seed << ' ';
      out << round.shortfall_before << '/' << round.newly_activated << '/'
          << round.truncated_gain << '/' << round.estimated_gain << '/'
          << round.num_samples << ']';
    }
    out << ';';
  }
  out << '|' << result.aggregate.mean_seeds << '|' << result.aggregate.mean_spread
      << '|' << result.always_reached;
  return out.str();
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng alpha_rng(301);
    auto alpha = BuildWeightedGraph(MakeBarabasiAlbert(220, 2, alpha_rng),
                                    WeightScheme::kWeightedCascade);
    ASSERT_TRUE(alpha.ok());
    alpha_nodes_ = alpha->NumNodes();
    ASSERT_TRUE(catalog_.Register("alpha", std::move(alpha).value()).ok());

    // A second, structurally different tenant for the multi-graph pins.
    Rng beta_rng(302);
    auto beta = BuildWeightedGraph(MakeBarabasiAlbert(180, 3, beta_rng),
                                   WeightScheme::kWeightedCascade);
    ASSERT_TRUE(beta.ok());
    ASSERT_TRUE(catalog_.Register("beta", std::move(beta).value()).ok());
  }

  // A mixed-algorithm request batch covering adaptive, batched, heuristic
  // and both non-adaptive paths, each with its own seed, all on `graph`.
  std::vector<SolveRequest> MixedRequests(const std::string& graph) const {
    std::vector<SolveRequest> requests;
    auto add = [&requests, &graph](AlgorithmId algorithm, uint64_t seed) {
      SolveRequest request;
      request.graph = graph;
      request.algorithm = algorithm;
      request.eta = 25;
      request.realizations = 2;
      request.seed = seed;
      request.keep_traces = true;
      requests.push_back(request);
    };
    add(AlgorithmId::kAsti, 11);
    add(AlgorithmId::kAsti2, 12);
    add(AlgorithmId::kDegree, 13);
    add(AlgorithmId::kAteuc, 14);
    add(AlgorithmId::kBisection, 15);
    add(AlgorithmId::kAsti, 16);
    requests.back().batch_size = 3;  // non-canonical TRIM-B batch
    return requests;
  }

  SolveRequest AlphaRequest() const {
    SolveRequest request;
    request.graph = "alpha";
    request.eta = 25;
    request.realizations = 2;
    request.seed = 5;
    request.keep_traces = true;
    return request;
  }

  GraphCatalog catalog_;
  NodeId alpha_nodes_ = 0;
};

// --- Validation and routing at the API boundary ----------------------------

TEST_F(EngineTest, RejectsEtaZero) {
  SeedMinEngine engine(catalog_);
  SolveRequest request = AlphaRequest();
  request.eta = 0;
  const auto result = engine.Solve(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, RejectsEtaAboveN) {
  SeedMinEngine engine(catalog_);
  SolveRequest request = AlphaRequest();
  request.eta = alpha_nodes_ + 1;
  const auto result = engine.Solve(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, RejectsEpsilonAtOrBelowZero) {
  SeedMinEngine engine(catalog_);
  for (double epsilon : {0.0, -0.5}) {
    SolveRequest request = AlphaRequest();
    request.eta = 10;
    request.epsilon = epsilon;
    const auto result = engine.Solve(request);
    ASSERT_FALSE(result.ok()) << "epsilon=" << epsilon;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(EngineTest, RejectsEpsilonAtOrAboveOne) {
  SeedMinEngine engine(catalog_);
  for (double epsilon : {1.0, 2.5}) {
    SolveRequest request = AlphaRequest();
    request.eta = 10;
    request.epsilon = epsilon;
    const auto result = engine.Solve(request);
    ASSERT_FALSE(result.ok()) << "epsilon=" << epsilon;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(EngineTest, RejectsZeroRealizations) {
  SeedMinEngine engine(catalog_);
  SolveRequest request = AlphaRequest();
  request.eta = 10;
  request.realizations = 0;
  const auto result = engine.Solve(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, RejectsUnknownAlgorithmId) {
  SeedMinEngine engine(catalog_);
  SolveRequest request = AlphaRequest();
  request.eta = 10;
  request.algorithm = static_cast<AlgorithmId>(99);
  const auto result = engine.Solve(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, RejectsBatchSizeOffPlainAsti) {
  SeedMinEngine engine(catalog_);
  for (AlgorithmId algorithm : {AlgorithmId::kAsti4, AlgorithmId::kAdaptIm,
                                AlgorithmId::kDegree, AlgorithmId::kAteuc,
                                AlgorithmId::kBisection}) {
    SolveRequest request = AlphaRequest();
    request.eta = 10;
    request.algorithm = algorithm;
    request.batch_size = 4;
    const auto result = engine.Solve(request);
    ASSERT_FALSE(result.ok()) << AlgorithmName(algorithm);
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(EngineTest, RejectsZeroOracleTrials) {
  SeedMinEngine engine(catalog_);
  SolveRequest request = AlphaRequest();
  request.eta = 10;
  request.algorithm = AlgorithmId::kOracle;
  request.oracle_trials = 0;
  const auto result = engine.Solve(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// The legacy single-graph binding is gone: requests that don't name a
// catalog graph are invalid, and unknown names answer NotFound, on both
// the sync and async paths (without consuming admission capacity).
TEST_F(EngineTest, EmptyGraphNameIsInvalidArgument) {
  SeedMinEngine engine(catalog_);
  SolveRequest request = AlphaRequest();
  request.graph.clear();
  const auto via_solve = engine.Solve(request);
  ASSERT_FALSE(via_solve.ok());
  EXPECT_EQ(via_solve.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Validate(request).code(), StatusCode::kInvalidArgument);

  auto future = engine.SubmitAsync(request);
  const auto via_async = future.get();
  ASSERT_FALSE(via_async.ok());
  EXPECT_EQ(via_async.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.admission_stats().queue.accepted, 0u);
}

TEST_F(EngineTest, UnknownGraphNameIsNotFound) {
  SeedMinEngine engine(catalog_);
  SolveRequest request = AlphaRequest();
  request.graph = "gamma";
  const auto via_solve = engine.Solve(request);
  ASSERT_FALSE(via_solve.ok());
  EXPECT_EQ(via_solve.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.Validate(request).code(), StatusCode::kNotFound);

  auto future = engine.SubmitAsync(request);
  const auto via_async = future.get();
  ASSERT_FALSE(via_async.ok());
  EXPECT_EQ(via_async.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.admission_stats().queue.accepted, 0u);
}

// A sampler-cache byte budget small enough to hold only one entry forces
// LRU eviction when requests alternate between two cache keys, surfaces
// the drops through asti_sampler_cache_evictions_total, and — the
// load-bearing part — never changes results: a re-created entry
// regenerates bit-identical sets because streams derive from the key.
TEST_F(EngineTest, CacheByteBudgetEvictsWithoutChangingResults) {
  SolveRequest ic = AlphaRequest();
  SolveRequest lt = AlphaRequest();
  lt.model = DiffusionModel::kLinearThreshold;

  SeedMinEngine::ServingOptions unlimited;
  unlimited.num_threads = 1;
  SeedMinEngine baseline(catalog_, unlimited);
  const auto ic_expected = baseline.Solve(ic);
  const auto lt_expected = baseline.Solve(lt);
  ASSERT_TRUE(ic_expected.ok()) << ic_expected.status().ToString();
  ASSERT_TRUE(lt_expected.ok()) << lt_expected.status().ToString();

  SeedMinEngine::ServingOptions tight;
  tight.num_threads = 1;
  tight.cache_byte_budget = 1;  // nothing fits beside the entry just used
  SeedMinEngine engine(catalog_, tight);
  for (int round = 0; round < 3; ++round) {
    const auto ic_result = engine.Solve(ic);
    const auto lt_result = engine.Solve(lt);
    ASSERT_TRUE(ic_result.ok()) << ic_result.status().ToString();
    ASSERT_TRUE(lt_result.ok()) << lt_result.status().ToString();
    EXPECT_EQ(ic_result->seed_counts, ic_expected->seed_counts);
    EXPECT_EQ(ic_result->spreads, ic_expected->spreads);
    EXPECT_EQ(lt_result->seed_counts, lt_expected->seed_counts);
    EXPECT_EQ(lt_result->spreads, lt_expected->spreads);
  }

  uint64_t evictions = 0;
  for (const auto& counter : engine.metrics_snapshot().counters) {
    if (counter.name == "asti_sampler_cache_evictions_total") {
      evictions += counter.value;
    }
  }
  EXPECT_GT(evictions, 0u);
}

// NewRequest stamps the serving-level per-request defaults so callers
// only fill what their query actually overrides.
TEST_F(EngineTest, NewRequestAppliesConfiguredDefaults) {
  SeedMinEngine::ServingOptions options;
  options.request_defaults.algorithm = AlgorithmId::kAsti4;
  options.request_defaults.eta = 33;
  options.request_defaults.epsilon = 0.2;
  options.request_defaults.realizations = 5;
  options.request_defaults.seed = 99;
  SeedMinEngine engine(catalog_, options);
  const SolveRequest request = engine.NewRequest("alpha");
  EXPECT_EQ(request.graph, "alpha");
  EXPECT_EQ(request.algorithm, AlgorithmId::kAsti4);
  EXPECT_EQ(request.eta, 33u);
  EXPECT_DOUBLE_EQ(request.epsilon, 0.2);
  EXPECT_EQ(request.realizations, 5u);
  EXPECT_EQ(request.seed, 99u);
  const auto solved = engine.Solve(request);
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  EXPECT_EQ(solved->graph_name, "alpha");
}

TEST_F(EngineTest, AsyncInvalidRequestResolvesToStatusNotCrash) {
  SeedMinEngine engine(catalog_);
  SolveRequest request = AlphaRequest();
  request.eta = 0;
  auto future = engine.SubmitAsync(request);
  const auto result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// --- Registry --------------------------------------------------------------

TEST(AlgorithmRegistryTest, ListCoversEveryIdWithNames) {
  const auto& catalog = AlgorithmRegistry::List();
  EXPECT_EQ(catalog.size(), 9u);
  for (const AlgorithmInfo& info : catalog) {
    EXPECT_STREQ(info.name, AlgorithmRegistry::Name(info.id));
    EXPECT_NE(std::string(info.paper_name), "");
  }
}

TEST(AlgorithmRegistryTest, ParsesCanonicalAndBatchedNames) {
  auto asti = AlgorithmRegistry::Parse("ASTI");
  ASSERT_TRUE(asti.ok());
  EXPECT_EQ(asti->id, AlgorithmId::kAsti);
  EXPECT_EQ(asti->batch_size, 0u);

  auto asti4 = AlgorithmRegistry::Parse("ASTI-4");
  ASSERT_TRUE(asti4.ok());
  EXPECT_EQ(asti4->id, AlgorithmId::kAsti4);

  auto asti16 = AlgorithmRegistry::Parse("ASTI-16");
  ASSERT_TRUE(asti16.ok());
  EXPECT_EQ(asti16->id, AlgorithmId::kAsti);
  EXPECT_EQ(asti16->batch_size, 16u);

  EXPECT_TRUE(AlgorithmRegistry::Parse("AdaptIM").ok());
  EXPECT_TRUE(AlgorithmRegistry::Parse("Degree").ok());
  EXPECT_FALSE(AlgorithmRegistry::Parse("ASTI-0").ok());
  EXPECT_FALSE(AlgorithmRegistry::Parse("ASTI-4x").ok());   // trailing garbage
  EXPECT_FALSE(AlgorithmRegistry::Parse("ASTI-1.5").ok());  // not an integer
  EXPECT_FALSE(AlgorithmRegistry::Parse("ASTI-").ok());
  EXPECT_FALSE(AlgorithmRegistry::Parse("nope").ok());
}

TEST_F(EngineTest, RegistryRefusesNonAdaptiveSelectors) {
  const auto alpha = catalog_.Get("alpha");
  ASSERT_TRUE(alpha.ok());
  AlgorithmContext ctx;
  ctx.graph = &alpha->graph();
  for (AlgorithmId algorithm : {AlgorithmId::kAteuc, AlgorithmId::kBisection}) {
    auto selector = AlgorithmRegistry::Make(algorithm, ctx);
    ASSERT_FALSE(selector.ok());
    EXPECT_EQ(selector.status().code(), StatusCode::kInvalidArgument);
  }
  auto trim = AlgorithmRegistry::Make(AlgorithmId::kAsti, ctx);
  ASSERT_TRUE(trim.ok());
  EXPECT_STREQ((*trim)->Name(), "ASTI");
}

// --- Serving determinism ---------------------------------------------------

TEST_F(EngineTest, ResultRecordsGraphIdentity) {
  SeedMinEngine engine(catalog_);
  const auto result = engine.Solve(AlphaRequest());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->graph_name, "alpha");
  EXPECT_EQ(result->graph_epoch, 1u);
}

TEST_F(EngineTest, SolveMatchesLegacyRunCell) {
  SeedMinEngine engine(catalog_);
  const auto via_engine = engine.Solve(AlphaRequest());
  ASSERT_TRUE(via_engine.ok());

  CellConfig config;
  config.algorithm = AlgorithmId::kAsti;
  config.eta = 25;
  config.realizations = 2;
  config.seed = 5;
  config.keep_traces = true;
  const auto alpha = catalog_.Get("alpha");
  ASSERT_TRUE(alpha.ok());
  const CellResult via_runcell = RunCell(alpha->graph(), config);
  EXPECT_EQ(Fingerprint(*via_engine), Fingerprint(via_runcell));
}

// The headline contract: SubmitAsync-ing N mixed-algorithm requests
// concurrently yields byte-identical SolveResults to solo sequential
// Solve calls, at every pool size.
TEST_F(EngineTest, ConcurrentBatchMatchesSoloAtEveryPoolSize) {
  const std::vector<SolveRequest> requests = MixedRequests("alpha");
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    std::vector<std::string> solo;
    {
      SeedMinEngine engine(catalog_, {threads});
      for (const SolveRequest& request : requests) {
        const auto result = engine.Solve(request);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        solo.push_back(Fingerprint(*result));
      }
    }
    SeedMinEngine engine(catalog_, {threads});
    const auto batch = engine.SolveBatch(requests);
    ASSERT_EQ(batch.size(), requests.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_TRUE(batch[i].ok()) << batch[i].status().ToString();
      EXPECT_EQ(Fingerprint(*batch[i]), solo[i])
          << "threads=" << threads << " request=" << i << " ("
          << AlgorithmName(requests[i].algorithm) << ")";
    }
  }
}

// Two engines sharing no state but the same catalog and request seeds
// agree, and a request interleaved with other clients' async work equals
// its solo run.
TEST_F(EngineTest, IndependentEnginesAndInterleavedClientsAgree) {
  const std::vector<SolveRequest> requests = MixedRequests("alpha");
  SeedMinEngine engine_a(catalog_, {2});
  SeedMinEngine engine_b(catalog_, {2});

  // Client 1 submits everything async on A; client 2 solves solo on B.
  std::vector<std::future<StatusOr<SolveResult>>> futures;
  for (const SolveRequest& request : requests) {
    futures.push_back(engine_a.SubmitAsync(request));
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    const auto from_b = engine_b.Solve(requests[i]);
    ASSERT_TRUE(from_b.ok());
    const auto from_a = futures[i].get();
    ASSERT_TRUE(from_a.ok());
    EXPECT_EQ(Fingerprint(*from_a), Fingerprint(*from_b)) << "request " << i;
  }
}

// Multi-tenant pin: a request against one graph is bit-identical whether
// it runs solo or interleaved with a stream of requests against a
// *different* catalog graph on the same engine (same pool, same queue),
// at every pool size.
TEST_F(EngineTest, InterleavingAnotherGraphLeavesResultsIdentical) {
  const std::vector<SolveRequest> alpha_requests = MixedRequests("alpha");
  const std::vector<SolveRequest> beta_requests = MixedRequests("beta");
  for (size_t threads : {1u, 2u, 4u}) {
    std::vector<std::string> solo;
    {
      SeedMinEngine engine(catalog_, {threads});
      for (const SolveRequest& request : alpha_requests) {
        const auto result = engine.Solve(request);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        solo.push_back(Fingerprint(*result));
      }
    }

    SeedMinEngine::ServingOptions options;
    options.num_threads = threads;
    options.num_drivers = 3;
    SeedMinEngine engine(catalog_, options);
    // Interleave the two tenants' submissions on one engine.
    std::vector<std::future<StatusOr<SolveResult>>> alpha_futures;
    std::vector<std::future<StatusOr<SolveResult>>> beta_futures;
    for (size_t i = 0; i < alpha_requests.size(); ++i) {
      beta_futures.push_back(engine.SubmitAsync(beta_requests[i]));
      alpha_futures.push_back(engine.SubmitAsync(alpha_requests[i]));
    }
    for (size_t i = 0; i < alpha_futures.size(); ++i) {
      const auto mixed = alpha_futures[i].get();
      ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
      EXPECT_EQ(mixed->graph_name, "alpha");
      EXPECT_EQ(Fingerprint(*mixed), solo[i])
          << "threads=" << threads << " request=" << i;
      const auto beta = beta_futures[i].get();
      ASSERT_TRUE(beta.ok()) << beta.status().ToString();
      EXPECT_EQ(beta->graph_name, "beta");
    }

    // Both tenants show up in the per-graph serving stats, fully drained.
    const SeedMinEngine::EngineStats stats = engine.admission_stats();
    ASSERT_EQ(stats.graphs.size(), 2u);
    EXPECT_EQ(stats.graphs[0].name, "alpha");
    EXPECT_EQ(stats.graphs[1].name, "beta");
  }
}

// Hot-swap pin: requests against one graph are bit-identical across a
// concurrent Swap of an *unrelated* graph, and requests admitted against
// the swapped graph BEFORE the swap stay pinned to their old-epoch
// snapshot even when they execute after it.
TEST_F(EngineTest, HotSwapOfUnrelatedGraphLeavesResultsIdentical) {
  const std::vector<SolveRequest> alpha_requests = MixedRequests("alpha");
  std::vector<std::string> solo;
  {
    SeedMinEngine engine(catalog_, {2});
    for (const SolveRequest& request : alpha_requests) {
      const auto result = engine.Solve(request);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      solo.push_back(Fingerprint(*result));
    }
  }

  SeedMinEngine::ServingOptions options;
  options.num_threads = 2;
  options.num_drivers = 2;
  SeedMinEngine engine(catalog_, options);

  // Admit one beta request before the swap: it must execute on epoch 1.
  SolveRequest beta_request = MixedRequests("beta").front();
  auto pinned_beta = engine.SubmitAsync(beta_request);
  std::string beta_solo;
  {
    SeedMinEngine reference(catalog_, {2});
    const auto result = reference.Solve(beta_request);
    ASSERT_TRUE(result.ok());
    beta_solo = Fingerprint(*result);
  }

  // Swap beta mid-workload (alpha untouched).
  Rng swap_rng(909);
  auto replacement = BuildWeightedGraph(MakeBarabasiAlbert(200, 2, swap_rng),
                                        WeightScheme::kWeightedCascade);
  ASSERT_TRUE(replacement.ok());
  const auto swapped = catalog_.Swap("beta", std::move(replacement).value());
  ASSERT_TRUE(swapped.ok());
  EXPECT_EQ(swapped->epoch(), 2u);

  std::vector<std::future<StatusOr<SolveResult>>> futures;
  for (const SolveRequest& request : alpha_requests) {
    futures.push_back(engine.SubmitAsync(request));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    const auto result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->graph_epoch, 1u);  // alpha was never swapped
    EXPECT_EQ(Fingerprint(*result), solo[i]) << "request " << i;
  }

  // The pre-swap beta request executed on its pinned epoch-1 snapshot.
  const auto pinned = pinned_beta.get();
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  EXPECT_EQ(pinned->graph_epoch, 1u);
  EXPECT_EQ(Fingerprint(*pinned), beta_solo);

  // New beta requests route to the new epoch.
  const auto fresh = engine.Solve(beta_request);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->graph_epoch, 2u);
}

// Retire + re-Register of the same name restarts epochs at 1; the
// engine's state cache must key on snapshot identity, not epoch alone,
// or it would keep serving the retired graph.
TEST_F(EngineTest, ReRegisteredNameServesTheNewSnapshot) {
  SeedMinEngine engine(catalog_, {2});
  ASSERT_TRUE(engine.Solve(AlphaRequest()).ok());  // caches (alpha, epoch 1)

  ASSERT_TRUE(catalog_.Retire("alpha").ok());
  Rng bigger_rng(777);
  auto bigger = BuildWeightedGraph(MakeBarabasiAlbert(500, 2, bigger_rng),
                                   WeightScheme::kWeightedCascade);
  ASSERT_TRUE(bigger.ok());
  const auto re_registered = catalog_.Register("alpha", std::move(bigger).value());
  ASSERT_TRUE(re_registered.ok());
  EXPECT_EQ(re_registered->epoch(), 1u);  // same (name, epoch), new snapshot

  // eta=300 is valid on the 500-node replacement but not on the retired
  // 220-node graph: a stale cache would answer InvalidArgument.
  SolveRequest request = AlphaRequest();
  request.eta = 300;
  const auto result = engine.Solve(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->graph_name, "alpha");
  EXPECT_EQ(result->graph_epoch, 1u);
}

// Per-graph serving counters are per NAME, not per epoch: a hot-swap must
// neither reset the completed total nor drop the row, and the row's epoch
// advances to the newest resolved snapshot.
TEST_F(EngineTest, PerGraphCountersSurviveHotSwap) {
  SeedMinEngine engine(catalog_, {2});
  ASSERT_TRUE(engine.Solve(AlphaRequest()).ok());
  ASSERT_TRUE(engine.Solve(AlphaRequest()).ok());

  Rng swap_rng(555);
  auto replacement = BuildWeightedGraph(MakeBarabasiAlbert(240, 2, swap_rng),
                                        WeightScheme::kWeightedCascade);
  ASSERT_TRUE(replacement.ok());
  ASSERT_TRUE(catalog_.Swap("alpha", std::move(replacement).value()).ok());
  const auto fresh = engine.Solve(AlphaRequest());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->graph_epoch, 2u);

  const SeedMinEngine::EngineStats stats = engine.admission_stats();
  // Only graphs with live serving state appear; beta was never served here.
  ASSERT_EQ(stats.graphs.size(), 1u);
  EXPECT_EQ(stats.graphs[0].name, "alpha");
  EXPECT_EQ(stats.graphs[0].epoch, 2u);        // newest resolved epoch
  EXPECT_EQ(stats.graphs[0].completed, 3u);    // totals carried across the swap
  EXPECT_EQ(stats.graphs[0].inflight, 0u);
}

// Admission-rework pin: requests served through the bounded queue and the
// fixed driver pool — strictly serialized (one driver) or racing (three
// drivers) over a deliberately tiny queue, so blocking admission really
// engages — stay bit-identical to solo Solve runs at every pool size.
TEST_F(EngineTest, QueuedAndRacingDriversMatchSoloAtEveryPoolSize) {
  const std::vector<SolveRequest> requests = MixedRequests("alpha");
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    std::vector<std::string> solo;
    {
      SeedMinEngine engine(catalog_, {threads});
      for (const SolveRequest& request : requests) {
        const auto result = engine.Solve(request);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        solo.push_back(Fingerprint(*result));
      }
    }
    for (size_t drivers : {1u, 3u}) {
      SeedMinEngine::ServingOptions options;
      options.num_threads = threads;
      options.num_drivers = drivers;
      options.max_queue_depth = 2;  // capacity 3 or 5 < 6 requests
      SeedMinEngine engine(catalog_, options);
      const auto batch = engine.SolveBatch(requests);
      ASSERT_EQ(batch.size(), requests.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        ASSERT_TRUE(batch[i].ok()) << batch[i].status().ToString();
        EXPECT_EQ(Fingerprint(*batch[i]), solo[i])
            << "threads=" << threads << " drivers=" << drivers << " request=" << i;
      }
      const SeedMinEngine::EngineStats stats = engine.admission_stats();
      EXPECT_EQ(stats.queue.accepted, requests.size());
      EXPECT_EQ(stats.queue.rejected, 0u);  // SolveBatch throttles, never rejects
      ASSERT_EQ(stats.graphs.size(), 1u);   // one tenant served
      EXPECT_EQ(stats.graphs[0].name, "alpha");
      EXPECT_EQ(stats.graphs[0].epoch, 1u);
    }
  }
}

// --- Observability ----------------------------------------------------------

// The profiling determinism contract: phase spans and metrics recording
// are passive, so every result is bit-identical with metrics on or off.
TEST_F(EngineTest, MetricsOnAndOffProduceBitIdenticalResults) {
  const std::vector<SolveRequest> requests = MixedRequests("alpha");
  SeedMinEngine::ServingOptions with_metrics;
  with_metrics.num_threads = 2;
  with_metrics.enable_metrics = true;
  SeedMinEngine on(catalog_, with_metrics);
  SeedMinEngine::ServingOptions without_metrics = with_metrics;
  without_metrics.enable_metrics = false;
  SeedMinEngine off(catalog_, without_metrics);
  for (const SolveRequest& request : requests) {
    const auto from_on = on.Solve(request);
    const auto from_off = off.Solve(request);
    ASSERT_TRUE(from_on.ok()) << from_on.status().ToString();
    ASSERT_TRUE(from_off.ok()) << from_off.status().ToString();
    EXPECT_EQ(Fingerprint(*from_on), Fingerprint(*from_off))
        << AlgorithmName(request.algorithm);
  }
}

TEST_F(EngineTest, SolveResultCarriesAPopulatedProfile) {
  SeedMinEngine engine(catalog_, {2});  // enable_metrics defaults to true
  const auto result = engine.Solve(AlphaRequest());  // ASTI: sampling-based
  ASSERT_TRUE(result.ok());
  const RequestProfile& profile = result->profile;
  EXPECT_GT(profile.total_seconds, 0.0);
  EXPECT_GT(profile.sampling_seconds, 0.0);
  EXPECT_GT(profile.sets_generated, 0u);
  EXPECT_GT(profile.collection_bytes, 0u);
  EXPECT_EQ(profile.queue_wait_seconds, 0.0);  // synchronous path never queues
  // Phases are disjoint pieces of the execution time.
  EXPECT_LE(profile.sampling_seconds + profile.coverage_seconds +
                profile.certify_seconds,
            profile.total_seconds);

  // The degree heuristic never samples: volume stays zero, total still set.
  SolveRequest degree = AlphaRequest();
  degree.algorithm = AlgorithmId::kDegree;
  const auto heuristic = engine.Solve(degree);
  ASSERT_TRUE(heuristic.ok());
  EXPECT_EQ(heuristic->profile.sets_generated, 0u);
  EXPECT_GT(heuristic->profile.total_seconds, 0.0);
}

TEST_F(EngineTest, MetricsOffStillFillsTotalButSkipsPhases) {
  SeedMinEngine::ServingOptions options;
  options.num_threads = 2;
  options.enable_metrics = false;
  SeedMinEngine engine(catalog_, options);
  const auto result = engine.Solve(AlphaRequest());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->profile.total_seconds, 0.0);
  EXPECT_EQ(result->profile.sampling_seconds, 0.0);
  EXPECT_EQ(result->profile.sets_generated, 0u);
  // No per-request series were recorded.
  const MetricsSnapshot snapshot = engine.metrics_snapshot();
  EXPECT_EQ(snapshot.MergedHistogram("asti_request_latency_seconds").Count(), 0u);
}

TEST_F(EngineTest, MetricsSnapshotAggregatesServedRequests) {
  const std::vector<SolveRequest> requests = MixedRequests("alpha");
  SeedMinEngine engine(catalog_, {2});
  for (const SolveRequest& request : requests) {
    ASSERT_TRUE(engine.Solve(request).ok());
  }
  auto failing = AlphaRequest();
  failing.eta = 0;  // rejected before execution: must not count
  ASSERT_FALSE(engine.Solve(failing).ok());

  const MetricsSnapshot snapshot = engine.metrics_snapshot();
  // Every served request landed in the latency histogram, once.
  EXPECT_EQ(snapshot.MergedHistogram("asti_request_latency_seconds").Count(),
            requests.size());
  EXPECT_EQ(snapshot.MergedHistogram("asti_queue_wait_seconds").Count(),
            requests.size());
  // Requests-total with outcome=OK sums to the served count across
  // (graph, algorithm) label sets.
  uint64_t ok_total = 0;
  for (const CounterSample& counter : snapshot.counters) {
    if (counter.name != "asti_requests_total") continue;
    for (const auto& [key, value] : counter.labels) {
      if (key == "outcome") {
        EXPECT_EQ(value, "OK");
      }
      if (key == "graph") {
        EXPECT_EQ(value, "alpha");
      }
    }
    ok_total += counter.value;
  }
  EXPECT_EQ(ok_total, requests.size());
  // Sampling-based requests recorded RR-set volume and phase time.
  EXPECT_GT(snapshot.MergedHistogram("asti_phase_seconds").Count(), 0u);
  // Synthesized admission/graph series ride along, and the snapshot is
  // sorted so exporters emit families contiguously.
  EXPECT_NE(snapshot.FindCounter("asti_admission_total",
                                 {{"outcome", "completed"}}),
            nullptr);
  for (size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LE(snapshot.counters[i - 1].name, snapshot.counters[i].name);
  }
  // Everything drained: the inflight gauge reads zero.
  bool saw_inflight = false;
  for (const GaugeSample& gauge : snapshot.gauges) {
    if (gauge.name == "asti_admission_inflight") {
      saw_inflight = true;
      EXPECT_EQ(gauge.value, 0);
    }
  }
  EXPECT_TRUE(saw_inflight);
}

// Async requests observe a real (non-negative) queue wait, and queue wait
// is part of total latency.
TEST_F(EngineTest, AsyncRequestsRecordQueueWait) {
  SeedMinEngine::ServingOptions options;
  options.num_threads = 1;
  options.num_drivers = 1;  // serialize: later requests must wait
  SeedMinEngine engine(catalog_, options);
  std::vector<std::future<StatusOr<SolveResult>>> futures;
  const std::vector<SolveRequest> requests = MixedRequests("alpha");
  for (const SolveRequest& request : requests) {
    futures.push_back(engine.SubmitAsync(request));
  }
  double max_wait = 0.0;
  for (auto& future : futures) {
    const auto result = future.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GE(result->profile.queue_wait_seconds, 0.0);
    EXPECT_GE(result->profile.total_seconds, result->profile.queue_wait_seconds);
    max_wait = std::max(max_wait, result->profile.queue_wait_seconds);
  }
  // With one driver, at least the last request genuinely queued.
  EXPECT_GT(max_wait, 0.0);
}

// --- Sampler cache ----------------------------------------------------------

// The tentpole determinism contract: a request is bit-identical whether
// its full-residual collections are freshly sampled (cold cache), served
// entirely from another request's sealed prefixes (warm cache), or
// sampled into a request-private cache (use_shared_cache = false) — at
// every pool size, because cache streams derive from the cache key, not
// the request seed.
TEST_F(EngineTest, ColdWarmAndPrivateCacheAgreeAtEveryPoolSize) {
  const std::vector<SolveRequest> requests = MixedRequests("alpha");
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    // Solo / cold: a fresh engine per request, nothing shared.
    std::vector<std::string> solo;
    for (const SolveRequest& request : requests) {
      SeedMinEngine engine(catalog_, {threads});
      const auto result = engine.Solve(request);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      solo.push_back(Fingerprint(*result));
    }
    // Warm: one engine, two sequential passes; the second pass reads
    // sealed prefixes another request published.
    SeedMinEngine warm(catalog_, {threads});
    for (const SolveRequest& request : requests) {
      ASSERT_TRUE(warm.Solve(request).ok());
    }
    for (size_t i = 0; i < requests.size(); ++i) {
      const auto result = warm.Solve(requests[i]);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(Fingerprint(*result), solo[i])
          << "threads=" << threads << " warm request=" << i;
    }
    // Private: the --no-cache path samples the same collections fresh.
    SeedMinEngine isolated(catalog_, {threads});
    for (size_t i = 0; i < requests.size(); ++i) {
      SolveRequest request = requests[i];
      request.use_shared_cache = false;
      const auto result = isolated.Solve(request);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(Fingerprint(*result), solo[i])
          << "threads=" << threads << " no-cache request=" << i;
    }
  }
}

// Concurrent extenders: several copies of the mixed workload submitted at
// once race to extend the SAME shared collections (the two TRIM-family
// requests share the round-1 mRR entry, ATEUC and Bisection the RR
// entry). Every copy must still equal the solo cold run, at every pool
// size — reuse never depends on who won the extension race.
TEST_F(EngineTest, RacingCacheExtendersMatchSoloAtEveryPoolSize) {
  const std::vector<SolveRequest> requests = MixedRequests("alpha");
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    // Solo cold reference at the same pool size (residual rounds consume
    // the request stream through the pool-size-matched sampler).
    std::vector<std::string> solo;
    for (const SolveRequest& request : requests) {
      SeedMinEngine engine(catalog_, {threads});
      const auto result = engine.Solve(request);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      solo.push_back(Fingerprint(*result));
    }
    SeedMinEngine::ServingOptions options;
    options.num_threads = threads;
    options.num_drivers = 4;
    SeedMinEngine engine(catalog_, options);
    std::vector<std::future<StatusOr<SolveResult>>> futures;
    constexpr size_t kCopies = 3;
    for (size_t copy = 0; copy < kCopies; ++copy) {
      for (const SolveRequest& request : requests) {
        futures.push_back(engine.SubmitAsync(request));
      }
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      const auto result = futures[i].get();
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(Fingerprint(*result), solo[i % requests.size()])
          << "threads=" << threads << " submission=" << i;
    }
  }
}

// Profile satellite: request-owned and shared collection bytes are
// reported separately, and the cache_hit flag with the reused/extended
// counts distinguishes the run that grew the cache from the one that rode
// it.
TEST_F(EngineTest, ProfileSplitsSharedAndOwnedCollectionBytes) {
  SeedMinEngine engine(catalog_, {2});
  const auto cold = engine.Solve(AlphaRequest());
  ASSERT_TRUE(cold.ok());
  // ASTI round 1 reads the shared cache; the cold run had to extend it.
  EXPECT_GT(cold->profile.shared_collection_bytes, 0u);
  EXPECT_GT(cold->profile.sets_extended, 0u);
  EXPECT_FALSE(cold->profile.cache_hit);
  // Rounds >= 2 condition on activations and sample request-owned
  // collections, so both byte families are populated and distinct.
  EXPECT_GT(cold->profile.collection_bytes, 0u);

  const auto warm = engine.Solve(AlphaRequest());
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->profile.cache_hit);
  EXPECT_GT(warm->profile.sets_reused, 0u);
  EXPECT_EQ(warm->profile.sets_extended, 0u);
  EXPECT_EQ(warm->profile.shared_collection_bytes,
            cold->profile.shared_collection_bytes);

  // A non-sampling heuristic touches neither family.
  SolveRequest degree = AlphaRequest();
  degree.algorithm = AlgorithmId::kDegree;
  const auto heuristic = engine.Solve(degree);
  ASSERT_TRUE(heuristic.ok());
  EXPECT_EQ(heuristic->profile.shared_collection_bytes, 0u);
  EXPECT_EQ(heuristic->profile.sets_reused, 0u);
  EXPECT_FALSE(heuristic->profile.cache_hit);
}

// The engine exports the per-graph sampler-cache families, and the
// per-request reuse counter accumulates across served requests.
TEST_F(EngineTest, SamplerCacheMetricsFamiliesAppear) {
  SeedMinEngine engine(catalog_, {2});
  ASSERT_TRUE(engine.Solve(AlphaRequest()).ok());  // cold: misses/extensions
  ASSERT_TRUE(engine.Solve(AlphaRequest()).ok());  // warm: hits/reuse

  const MetricsSnapshot snapshot = engine.metrics_snapshot();
  const CounterSample* hits =
      snapshot.FindCounter("asti_sampler_cache_hits_total", {{"graph", "alpha"}});
  ASSERT_NE(hits, nullptr);
  EXPECT_GT(hits->value, 0u);
  const CounterSample* misses =
      snapshot.FindCounter("asti_sampler_cache_misses_total", {{"graph", "alpha"}});
  ASSERT_NE(misses, nullptr);
  EXPECT_GT(misses->value, 0u);
  const CounterSample* reused = snapshot.FindCounter(
      "asti_sampler_cache_sets_reused_total", {{"graph", "alpha"}});
  ASSERT_NE(reused, nullptr);
  EXPECT_GT(reused->value, 0u);
  bool saw_bytes = false;
  for (const GaugeSample& gauge : snapshot.gauges) {
    if (gauge.name == "asti_sampler_cache_bytes") {
      saw_bytes = true;
      EXPECT_GT(gauge.value, 0);
    }
  }
  EXPECT_TRUE(saw_bytes);
  // The per-(graph, algorithm) reuse counter rode along with the request
  // families.
  uint64_t total_reused = 0;
  for (const CounterSample& counter : snapshot.counters) {
    if (counter.name == "asti_rr_sets_reused_total") total_reused += counter.value;
  }
  EXPECT_GT(total_reused, 0u);
}

// The parallel sampling/coverage path is pool-size invariant, so engine
// results agree across every pool size > 1.
TEST_F(EngineTest, PoolSizesAboveOneAgree) {
  SolveRequest request = AlphaRequest();
  request.algorithm = AlgorithmId::kAsti2;
  request.realizations = 1;
  request.seed = 21;
  std::string reference;
  for (size_t threads : {2u, 4u, 8u}) {
    SeedMinEngine engine(catalog_, {threads});
    const auto result = engine.Solve(request);
    ASSERT_TRUE(result.ok());
    if (reference.empty()) {
      reference = Fingerprint(*result);
    } else {
      EXPECT_EQ(Fingerprint(*result), reference) << "threads=" << threads;
    }
  }
}

// --- Snapshot store integration (src/store/) --------------------------------

// A graph served from an mmap'd ASMS snapshot (CSR spans pointing into the
// mapping) must be indistinguishable from the heap-built snapshot it was
// written from: bit-identical results for the whole mixed workload at
// every pool size.
TEST_F(EngineTest, SnapshotBackedGraphMatchesHeapAtEveryPoolSize) {
  const std::string path = testing::TempDir() + "/engine_alpha.asms";
  {
    const auto alpha = catalog_.Get("alpha");
    ASSERT_TRUE(alpha.ok());
    ASSERT_TRUE(store::WriteSnapshot(alpha->graph(), "alpha", alpha->weight_scheme(),
                                     {}, path)
                    .ok());
  }
  GraphCatalog mapped_catalog;
  const auto registered = RegisterSnapshotFile(mapped_catalog, path);
  ASSERT_TRUE(registered.ok()) << registered.status().ToString();
  const std::vector<SolveRequest> requests = MixedRequests("alpha");
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    for (const SolveRequest& request : requests) {
      SeedMinEngine heap_engine(catalog_, {threads});
      SeedMinEngine mapped_engine(mapped_catalog, {threads});
      const auto want = heap_engine.Solve(request);
      const auto got = mapped_engine.Solve(request);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(Fingerprint(*got), Fingerprint(*want)) << "threads=" << threads;
      EXPECT_EQ(got->graph_name, "alpha");
    }
  }
  std::filesystem::remove(path);
}

// Warm-starting from persisted sealed prefixes — engine.SaveSnapshot, then
// a process-fresh catalog+engine built from the file alone — must
// reproduce cold-cache results bit-for-bit at every pool size, while the
// adoption counters prove the warm path was actually taken.
TEST_F(EngineTest, WarmStartFromDiskMatchesColdCacheAtEveryPoolSize) {
  const std::string path = testing::TempDir() + "/engine_alpha_warm.asms";
  const std::vector<SolveRequest> requests = MixedRequests("alpha");
  {
    SeedMinEngine seeding(catalog_, {2});
    for (const SolveRequest& request : requests) {
      ASSERT_TRUE(seeding.Solve(request).ok());
    }
    ASSERT_TRUE(seeding.SaveSnapshot("alpha", path).ok());
  }
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    // Cold reference: a fresh engine (empty cache) per request.
    std::vector<std::string> cold;
    for (const SolveRequest& request : requests) {
      SeedMinEngine engine(catalog_, {threads});
      const auto result = engine.Solve(request);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      cold.push_back(Fingerprint(*result));
    }
    GraphCatalog warm_catalog;
    ASSERT_TRUE(RegisterSnapshotFile(warm_catalog, path).ok());
    SeedMinEngine warm(warm_catalog, {threads});
    for (size_t i = 0; i < requests.size(); ++i) {
      const auto result = warm.Solve(requests[i]);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(Fingerprint(*result), cold[i])
          << "threads=" << threads << " request=" << i;
    }
    uint64_t adopted = 0;
    for (const CounterSample& counter : warm.metrics_snapshot().counters) {
      if (counter.name == "asti_sampler_cache_sets_adopted_total") {
        adopted += counter.value;
      }
    }
    EXPECT_GT(adopted, 0u) << "threads=" << threads;
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace asti
