// Admission-control edge cases for the SeedMinEngine serving core: the
// bounded queue's accept-to-complete accounting, burst rejection pinned to
// exactly k ResourceExhausted answers, per-outcome counters (accepted /
// rejected / cancelled_in_queue / deadline_in_queue), deadlines (expired
// at submit, expired while queued), cooperative cancellation mid-sampling
// and mid-coverage, engine destruction with queued requests (abort-queued
// / drain-executing), and blocking admission. The determinism pins
// (queued/interleaved/cross-graph == solo at every pool size) live in
// engine_test.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "api/admission_queue.h"
#include "api/graph_catalog.h"
#include "api/seedmin_engine.h"
#include "coverage/lazy_greedy.h"
#include "coverage/max_coverage.h"
#include "graph/generators.h"
#include "parallel/parallel_sampler.h"
#include "parallel/thread_pool.h"
#include "sampling/rr_collection.h"
#include "util/cancellation.h"

namespace asti {
namespace {

using AdmitPolicy = AdmissionQueue::AdmitPolicy;
using AdmitResult = AdmissionQueue::AdmitResult;

// --- AdmissionQueue unit behaviour -----------------------------------------

TEST(AdmissionQueueTest, CountsAdmitToCompleteNotAdmitToDequeue) {
  AdmissionQueue queue(2);
  int runs = 0;
  AdmissionTask task = [&runs](bool aborted) {
    if (!aborted) ++runs;
    return AdmissionOutcome::kExecuted;
  };
  EXPECT_EQ(queue.Admit(task, AdmitPolicy::kReject), AdmitResult::kAdmitted);
  EXPECT_EQ(queue.Admit(task, AdmitPolicy::kReject), AdmitResult::kAdmitted);
  EXPECT_EQ(queue.Admit(task, AdmitPolicy::kReject), AdmitResult::kRejected);

  // Dequeuing alone frees no capacity — only Complete() does. This is the
  // property that makes burst rejection counts exact.
  AdmissionTask got;
  ASSERT_TRUE(queue.Pop(got));
  EXPECT_EQ(queue.Admit(task, AdmitPolicy::kReject), AdmitResult::kRejected);
  queue.Complete(got(/*aborted=*/false));
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(queue.Admit(task, AdmitPolicy::kReject), AdmitResult::kAdmitted);
  EXPECT_EQ(queue.InFlight(), 2u);

  const std::vector<AdmissionTask> orphans = queue.Close();
  EXPECT_EQ(orphans.size(), 2u);  // the two never-popped items
  EXPECT_EQ(queue.Admit(task, AdmitPolicy::kReject), AdmitResult::kClosed);
  AdmissionTask none;
  EXPECT_FALSE(queue.Pop(none));

  const AdmissionQueue::Stats stats = queue.stats();
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.completed, 1u);
}

// Complete() splits by outcome: items that died waiting (queue-abort,
// token fired, deadline passed) are distinguishable from executed work.
TEST(AdmissionQueueTest, PerOutcomeCountersSplitCompletions) {
  AdmissionQueue queue(4);
  AdmissionTask noop = [](bool) { return AdmissionOutcome::kExecuted; };
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(queue.Admit(noop, AdmitPolicy::kReject), AdmitResult::kAdmitted);
  }
  queue.Complete(AdmissionOutcome::kExecuted);
  queue.Complete(AdmissionOutcome::kCancelledInQueue);
  queue.Complete(AdmissionOutcome::kDeadlineInQueue);
  queue.Complete(AdmissionOutcome::kCancelledInQueue);

  const AdmissionQueue::Stats stats = queue.stats();
  EXPECT_EQ(stats.accepted, 4u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.completed, 4u);  // every accepted item completes exactly once
  EXPECT_EQ(stats.cancelled_in_queue, 2u);
  EXPECT_EQ(stats.deadline_in_queue, 1u);
  EXPECT_EQ(queue.InFlight(), 0u);
}

// Stats are one consistent snapshot, not a torn multi-counter read:
// accepted == completed + in_flight holds in EVERY snapshot taken while
// producers and consumers race (all three counters move under the same
// mutex the snapshot copies them under).
TEST(AdmissionQueueTest, StatsSnapshotInvariantHoldsUnderRace) {
  AdmissionQueue queue(64);
  AdmissionTask noop = [](bool) { return AdmissionOutcome::kExecuted; };
  std::atomic<bool> stop{false};

  std::thread worker([&queue, &noop] {
    for (int i = 0; i < 4000; ++i) {
      if (queue.Admit(noop, AdmitPolicy::kBlock) != AdmitResult::kAdmitted) break;
      AdmissionTask task;
      if (!queue.Pop(task)) break;
      queue.Complete(task(/*aborted=*/false));
    }
  });
  std::thread reader([&queue, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const AdmissionQueue::Stats stats = queue.stats();
      ASSERT_EQ(stats.accepted, stats.completed + stats.in_flight)
          << "torn stats snapshot";
      ASSERT_LE(stats.cancelled_in_queue + stats.deadline_in_queue,
                stats.completed);
    }
  });
  worker.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const AdmissionQueue::Stats stats = queue.stats();
  EXPECT_EQ(stats.accepted, 4000u);
  EXPECT_EQ(stats.completed, 4000u);
  EXPECT_EQ(stats.in_flight, 0u);
}

TEST(AdmissionQueueTest, CloseWakesBlockedProducer) {
  AdmissionQueue queue(1);
  AdmissionTask noop = [](bool) { return AdmissionOutcome::kExecuted; };
  ASSERT_EQ(queue.Admit(noop, AdmitPolicy::kReject), AdmitResult::kAdmitted);
  std::thread producer([&queue, &noop] {
    EXPECT_EQ(queue.Admit(noop, AdmitPolicy::kBlock), AdmitResult::kClosed);
  });
  // Give the producer a moment to park on the full queue, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  queue.Close();
  producer.join();
}

// --- Engine-level fixtures --------------------------------------------------

class AdmissionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng small_rng(301);
    auto small = BuildWeightedGraph(MakeBarabasiAlbert(220, 2, small_rng),
                                    WeightScheme::kWeightedCascade);
    ASSERT_TRUE(small.ok());
    ASSERT_TRUE(catalog_.Register("small", std::move(small).value()).ok());

    Rng heavy_rng(302);
    auto heavy = BuildWeightedGraph(MakeChungLu(3000, 18000, 2.1, heavy_rng),
                                    WeightScheme::kWeightedCascade);
    ASSERT_TRUE(heavy.ok());
    heavy_nodes_ = heavy->NumNodes();
    ASSERT_TRUE(catalog_.Register("heavy", std::move(heavy).value()).ok());
  }

  // Finishes in milliseconds — the load for throttling/ordering tests.
  SolveRequest SmallRequest(uint64_t seed) const {
    SolveRequest request;
    request.graph = "small";
    request.eta = 25;
    request.seed = seed;
    return request;
  }

  // Takes many seconds solo (n=3000, eta=n/2, 50 hidden worlds, tight ε):
  // the burst/cancellation tests rely on these NOT completing in the
  // microseconds a submission loop takes, and on cancellation unwinding
  // them long before they would finish.
  SolveRequest HeavyRequest(uint64_t seed, const CancelToken* cancel) const {
    SolveRequest request;
    request.graph = "heavy";
    request.eta = static_cast<NodeId>(heavy_nodes_ / 2);
    request.epsilon = 0.1;
    request.realizations = 50;
    request.seed = seed;
    request.cancel = cancel;
    return request;
  }

  GraphCatalog catalog_;
  NodeId heavy_nodes_ = 0;
};

// The acceptance pin: with D drivers and Q queue slots, a burst of
// D + Q + k submissions yields exactly k ResourceExhausted rejections —
// and they are the LAST k, because admission is decided synchronously in
// submission order and a slot frees only on completion (seconds away for
// these requests), never on dequeue.
TEST_F(AdmissionTest, BurstBeyondCapacityYieldsExactlyKRejections) {
  constexpr size_t kDrivers = 2;
  constexpr size_t kQueueDepth = 3;
  constexpr size_t kOverflow = 4;
  constexpr size_t kCapacity = kDrivers + kQueueDepth;

  CancelToken cancel;
  std::vector<std::future<StatusOr<SolveResult>>> futures;
  {
    SeedMinEngine::ServingOptions options;
    options.num_drivers = kDrivers;
    options.max_queue_depth = kQueueDepth;
    SeedMinEngine engine(catalog_, options);
    for (size_t i = 0; i < kCapacity + kOverflow; ++i) {
      futures.push_back(engine.SubmitAsync(HeavyRequest(100 + i, &cancel)));
    }
    const SeedMinEngine::EngineStats stats = engine.admission_stats();
    EXPECT_EQ(stats.queue.accepted, kCapacity);
    EXPECT_EQ(stats.queue.rejected, kOverflow);
    // Rejected requests never pin the graph: only admitted ones count as
    // inflight against 'heavy'.
    ASSERT_EQ(stats.graphs.size(), 1u);
    EXPECT_EQ(stats.graphs[0].name, "heavy");
    EXPECT_EQ(stats.graphs[0].inflight, kCapacity);

    // Unwind the admitted requests so the test (and engine teardown)
    // finishes promptly instead of solving 5 heavy instances.
    cancel.Cancel();
    for (size_t i = 0; i < futures.size(); ++i) {
      const StatusOr<SolveResult> result = futures[i].get();
      ASSERT_FALSE(result.ok()) << "request " << i;
      if (i < kCapacity) {
        EXPECT_EQ(result.status().code(), StatusCode::kCancelled) << "request " << i;
      } else {
        EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
            << "request " << i;
      }
    }
  }
}

TEST_F(AdmissionTest, DeadlineExpiredAtSubmitResolvesWithoutExecuting) {
  SeedMinEngine engine(catalog_);
  SolveRequest request = SmallRequest(7);
  request.deadline = DeadlineAfter(-0.5);

  const auto via_solve = engine.Solve(request);
  ASSERT_FALSE(via_solve.ok());
  EXPECT_EQ(via_solve.status().code(), StatusCode::kDeadlineExceeded);

  auto future = engine.SubmitAsync(request);
  ASSERT_EQ(future.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  const auto via_async = future.get();
  ASSERT_FALSE(via_async.ok());
  EXPECT_EQ(via_async.status().code(), StatusCode::kDeadlineExceeded);
  // Dead-on-arrival requests never consume admission capacity, and the
  // in-queue death counters stay untouched (nothing was ever queued).
  const SeedMinEngine::EngineStats stats = engine.admission_stats();
  EXPECT_EQ(stats.queue.accepted, 0u);
  EXPECT_EQ(stats.queue.deadline_in_queue, 0u);
}

TEST_F(AdmissionTest, PreCancelledTokenResolvesWithoutExecuting) {
  SeedMinEngine engine(catalog_);
  CancelToken cancel;
  cancel.Cancel();
  SolveRequest request = SmallRequest(7);
  request.cancel = &cancel;
  auto future = engine.SubmitAsync(request);
  const auto result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  const SeedMinEngine::EngineStats stats = engine.admission_stats();
  EXPECT_EQ(stats.queue.accepted, 0u);
  EXPECT_EQ(stats.queue.cancelled_in_queue, 0u);
}

// A request admitted with a live deadline that expires while it waits
// behind a slow request comes back DeadlineExceeded without executing —
// and is accounted as deadline_in_queue, distinct from the blocker, which
// EXECUTED and was then cancelled mid-run.
TEST_F(AdmissionTest, DeadlineExpiresWhileQueued) {
  SeedMinEngine::ServingOptions options;
  options.num_drivers = 1;  // one driver: the heavy request blocks the queue
  SeedMinEngine engine(catalog_, options);

  CancelToken unblock;
  auto blocker = engine.SubmitAsync(HeavyRequest(11, &unblock));
  SolveRequest queued = SmallRequest(12);
  queued.eta = 25;
  // Wide margins so sanitizer/CI slowdown can't flip the outcome: the
  // deadline must survive the µs-scale submit path (0.5 s of slack) yet
  // be safely expired after the 1.2 s sleep.
  queued.deadline = DeadlineAfter(0.5);
  auto expired = engine.SubmitAsync(queued);
  EXPECT_EQ(engine.admission_stats().queue.accepted, 2u);  // live at submit time

  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  unblock.Cancel();  // heavy request unwinds; driver reaches the queued one

  const auto blocker_result = blocker.get();
  ASSERT_FALSE(blocker_result.ok());
  EXPECT_EQ(blocker_result.status().code(), StatusCode::kCancelled);
  const auto expired_result = expired.get();
  ASSERT_FALSE(expired_result.ok());
  EXPECT_EQ(expired_result.status().code(), StatusCode::kDeadlineExceeded);

  // Outcome split: the blocker executed (its mid-run cancellation is NOT
  // an in-queue death); the second request died waiting on its deadline.
  SeedMinEngine::EngineStats stats = engine.admission_stats();
  for (int i = 0; i < 500 && stats.queue.completed < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    stats = engine.admission_stats();
  }
  EXPECT_EQ(stats.queue.completed, 2u);
  EXPECT_EQ(stats.queue.deadline_in_queue, 1u);
  EXPECT_EQ(stats.queue.cancelled_in_queue, 0u);
}

// A token fired while its request is still waiting behind a blocker is an
// in-queue cancellation: the request never executes and the per-outcome
// counter says so.
TEST_F(AdmissionTest, TokenFiredWhileQueuedCountsAsCancelledInQueue) {
  SeedMinEngine::ServingOptions options;
  options.num_drivers = 1;
  SeedMinEngine engine(catalog_, options);

  CancelToken unblock;
  auto blocker = engine.SubmitAsync(HeavyRequest(13, &unblock));
  CancelToken cancel_queued;
  SolveRequest queued = SmallRequest(14);
  queued.cancel = &cancel_queued;
  auto cancelled = engine.SubmitAsync(queued);
  EXPECT_EQ(engine.admission_stats().queue.accepted, 2u);

  cancel_queued.Cancel();  // fires while the request waits in the queue
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  unblock.Cancel();

  const auto cancelled_result = cancelled.get();
  ASSERT_FALSE(cancelled_result.ok());
  EXPECT_EQ(cancelled_result.status().code(), StatusCode::kCancelled);
  const auto blocker_result = blocker.get();
  ASSERT_FALSE(blocker_result.ok());

  SeedMinEngine::EngineStats stats = engine.admission_stats();
  for (int i = 0; i < 500 && stats.queue.completed < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    stats = engine.admission_stats();
  }
  EXPECT_EQ(stats.queue.cancelled_in_queue, 1u);
  EXPECT_EQ(stats.queue.deadline_in_queue, 0u);
}

// Cooperative cancellation mid-run, on both sampling paths: sequential
// (pool size 1, stride checks in the selector generate loops) and pooled
// (chunk-boundary checks inside ParallelRrSampler).
TEST_F(AdmissionTest, CancellationMidSamplingUnwindsPromptly) {
  for (size_t threads : {size_t{1}, size_t{2}}) {
    SeedMinEngine::ServingOptions options;
    options.num_threads = threads;
    options.num_drivers = 1;
    SeedMinEngine engine(catalog_, options);
    CancelToken cancel;
    auto future = engine.SubmitAsync(HeavyRequest(21, &cancel));
    // Let the driver get well into sampling before pulling the plug.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    cancel.Cancel();
    const auto result = future.get();
    ASSERT_FALSE(result.ok()) << "threads=" << threads;
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled) << "threads=" << threads;
  }
}

// --- Mid-coverage and mid-generation cancellation, unit level ---------------

RrCollection FromSets(NodeId n, const std::vector<std::vector<NodeId>>& sets) {
  RrCollection collection(n);
  for (const auto& set : sets) {
    for (NodeId v : set) collection.PushNode(v);
    collection.SealSet();
  }
  return collection;
}

TEST(CoverageCancellationTest, FiredScopeStopsGreedyBeforeAnyPick) {
  const RrCollection collection = FromSets(4, {{0, 1}, {1, 2}, {1, 3}, {0}});
  CancelToken cancel;
  cancel.Cancel();
  const CancelScope scope(&cancel, CancelScope::kNoDeadline);
  const MaxCoverageResult eager =
      GreedyMaxCoverage(collection, 3, nullptr, nullptr, &scope);
  EXPECT_TRUE(eager.selected.empty());
  EXPECT_EQ(eager.covered_sets, 0u);
  const MaxCoverageResult lazy =
      LazyGreedyMaxCoverage(collection, 3, nullptr, nullptr, &scope);
  EXPECT_TRUE(lazy.selected.empty());
  EXPECT_EQ(lazy.covered_sets, 0u);
}

TEST(CoverageCancellationTest, LiveScopeChangesNothing) {
  const RrCollection collection = FromSets(4, {{0, 1}, {1, 2}, {1, 3}, {0}});
  CancelToken cancel;
  const CancelScope scope(&cancel, CancelScope::kNoDeadline);
  const MaxCoverageResult with_scope =
      GreedyMaxCoverage(collection, 2, nullptr, nullptr, &scope);
  const MaxCoverageResult without = GreedyMaxCoverage(collection, 2);
  EXPECT_EQ(with_scope.selected, without.selected);
  EXPECT_EQ(with_scope.covered_sets, without.covered_sets);
}

TEST(SamplerCancellationTest, FiredScopeStopsBatchGeneration) {
  Rng graph_rng(303);
  auto graph = BuildWeightedGraph(MakeBarabasiAlbert(200, 2, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  std::vector<NodeId> all_nodes(graph->NumNodes());
  std::iota(all_nodes.begin(), all_nodes.end(), 0);

  CancelToken cancel;
  cancel.Cancel();
  const CancelScope scope(&cancel, CancelScope::kNoDeadline);
  ThreadPool pool(2);
  ParallelRrSampler sampler(*graph, DiffusionModel::kIndependentCascade, pool, &scope);
  RrCollection collection(graph->NumNodes());
  Rng rng(7);
  sampler.GenerateBatch(all_nodes, nullptr, 10000, collection, rng);
  // Every chunk observed the fired scope at its first stride boundary.
  EXPECT_EQ(collection.NumSets(), 0u);
}

// --- Destruction and blocking admission ------------------------------------

// Destroying an engine with requests still in the system: queued requests
// abort (futures resolve Cancelled, never execute), the at-most-D already
// picked up drain to completion. With one driver and five requests, at
// least four must come back Cancelled.
TEST_F(AdmissionTest, DestructionAbortsQueuedAndDrainsExecuting) {
  std::vector<std::future<StatusOr<SolveResult>>> futures;
  {
    SeedMinEngine::ServingOptions options;
    options.num_drivers = 1;
    options.max_queue_depth = 8;
    SeedMinEngine engine(catalog_, options);
    for (size_t i = 0; i < 5; ++i) {
      SolveRequest request = SmallRequest(40 + i);
      request.eta = 60;
      request.realizations = 40;  // ~hundreds of ms: outlives the submit loop
      futures.push_back(engine.SubmitAsync(request));
    }
  }  // engine destroyed with (at least) four requests still queued

  size_t completed = 0;
  size_t aborted = 0;
  for (auto& future : futures) {
    const StatusOr<SolveResult> result = future.get();
    if (result.ok()) {
      ++completed;
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
      ++aborted;
    }
  }
  EXPECT_EQ(completed + aborted, 5u);
  EXPECT_GE(aborted, 4u);  // one driver can have started at most one
}

TEST_F(AdmissionTest, BlockingAdmissionThrottlesInsteadOfRejecting) {
  SeedMinEngine::ServingOptions options;
  options.num_drivers = 2;
  options.max_queue_depth = 1;  // capacity 3, well below the burst
  options.block_when_full = true;
  SeedMinEngine engine(catalog_, options);

  std::vector<std::future<StatusOr<SolveResult>>> futures;
  for (size_t i = 0; i < 8; ++i) {
    futures.push_back(engine.SubmitAsync(SmallRequest(60 + i)));
  }
  for (auto& future : futures) {
    const StatusOr<SolveResult> result = future.get();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }
  // A driver frees its slot (Complete) just AFTER resolving the promise,
  // so completed can trail future.get() by an instant — poll briefly.
  SeedMinEngine::EngineStats stats = engine.admission_stats();
  for (int i = 0; i < 500 && stats.queue.completed < 8; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    stats = engine.admission_stats();
  }
  EXPECT_EQ(stats.queue.accepted, 8u);
  EXPECT_EQ(stats.queue.rejected, 0u);
  EXPECT_EQ(stats.queue.completed, 8u);
  EXPECT_EQ(stats.queue.cancelled_in_queue, 0u);
  EXPECT_EQ(stats.queue.deadline_in_queue, 0u);
  // Per-graph accounting drained too: everything ran against 'small'.
  ASSERT_EQ(stats.graphs.size(), 1u);
  EXPECT_EQ(stats.graphs[0].name, "small");
  for (int i = 0; i < 500 && stats.graphs[0].completed < 8; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    stats = engine.admission_stats();
  }
  EXPECT_EQ(stats.graphs[0].completed, 8u);
  EXPECT_EQ(stats.graphs[0].inflight, 0u);
}

// Per-graph serving counters move atomically (one packed word): a reader
// polling admission_stats() during a racing workload must never observe a
// completion "in between" — inflight decremented but completed not yet
// incremented, or vice versa. Without cancellations, completed and
// inflight + completed are both non-decreasing across snapshots, and a
// torn read would show a dip.
TEST_F(AdmissionTest, PerGraphCountersNeverTearUnderRace) {
  SeedMinEngine::ServingOptions options;
  options.num_drivers = 2;
  options.max_queue_depth = 16;
  options.block_when_full = true;
  SeedMinEngine engine(catalog_, options);

  std::atomic<bool> stop{false};
  std::thread reader([&engine, &stop] {
    size_t last_completed = 0;
    size_t last_ever = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const SeedMinEngine::EngineStats stats = engine.admission_stats();
      ASSERT_EQ(stats.queue.accepted,
                stats.queue.completed + stats.queue.in_flight);
      for (const auto& graph : stats.graphs) {
        if (graph.name != "small") continue;
        ASSERT_GE(graph.completed, last_completed) << "completed went backwards";
        ASSERT_GE(graph.inflight + graph.completed, last_ever)
            << "torn per-graph snapshot";
        last_completed = graph.completed;
        last_ever = graph.inflight + graph.completed;
      }
    }
  });

  constexpr size_t kRequests = 24;
  std::vector<std::future<StatusOr<SolveResult>>> futures;
  for (size_t i = 0; i < kRequests; ++i) {
    futures.push_back(engine.SubmitAsync(SmallRequest(500 + i)));
  }
  for (auto& future : futures) {
    const StatusOr<SolveResult> result = future.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  SeedMinEngine::EngineStats stats = engine.admission_stats();
  for (int i = 0; i < 500 && stats.queue.completed < kRequests; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    stats = engine.admission_stats();
  }
  ASSERT_EQ(stats.graphs.size(), 1u);
  EXPECT_EQ(stats.graphs[0].completed, kRequests);
  EXPECT_EQ(stats.graphs[0].inflight, 0u);
  EXPECT_EQ(stats.queue.in_flight, 0u);
}

TEST_F(AdmissionTest, SolveBatchLargerThanCapacityCompletes) {
  SeedMinEngine::ServingOptions options;
  options.num_drivers = 1;
  options.max_queue_depth = 1;  // capacity 2 vs a batch of 6
  SeedMinEngine engine(catalog_, options);

  std::vector<SolveRequest> requests;
  for (size_t i = 0; i < 6; ++i) requests.push_back(SmallRequest(80 + i));
  const auto results = engine.SolveBatch(requests);
  ASSERT_EQ(results.size(), requests.size());
  for (const auto& result : results) {
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }
  EXPECT_EQ(engine.admission_stats().queue.rejected, 0u);
}

}  // namespace
}  // namespace asti
