// Differential stress tests: the forward world (Monte-Carlo simulation)
// and the reverse world (RR / mRR sampling) must agree on every spread
// quantity, for seed *sets* (not just singletons), across models, graph
// shapes, and residual states. These are the strongest correctness checks
// in the suite: a bias in either direction of the sampling machinery
// breaks the agreement.

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "diffusion/monte_carlo.h"
#include "graph/generators.h"
#include "sampling/mrr_set.h"
#include "sampling/root_size.h"
#include "sampling/rr_set.h"

namespace asti {
namespace {

constexpr double kOneMinusInvE = 1.0 - 1.0 / 2.718281828459045;

using DiffParam = std::tuple<DiffusionModel, int /*graph variant*/>;

DirectedGraph MakeVariantGraph(int variant, uint64_t seed) {
  Rng rng(seed);
  EdgeSkeleton skeleton;
  switch (variant) {
    case 0:
      skeleton = MakeErdosRenyi(36, 140, rng);
      break;
    case 1:
      skeleton = MakeBarabasiAlbert(36, 2, rng);
      break;
    default:
      skeleton = MakeCycle(36);
      break;
  }
  auto graph = BuildWeightedGraph(std::move(skeleton), WeightScheme::kWeightedCascade);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

class DifferentialTest : public ::testing::TestWithParam<DiffParam> {};

TEST_P(DifferentialTest, RrSetAgreesWithForwardMonteCarloOnSets) {
  const auto [model, variant] = GetParam();
  const DirectedGraph graph = MakeVariantGraph(variant, 0x1111 + variant);
  const NodeId n = graph.NumNodes();
  const std::vector<NodeId> seed_set = {1, 5, 9};

  MonteCarloEstimator mc(graph, model);
  Rng mc_rng(0x2222);
  const double forward = mc.EstimateSpread(seed_set, 60000, mc_rng);

  RrSampler sampler(graph, model);
  RrCollection collection(n);
  std::vector<NodeId> all_nodes(n);
  std::iota(all_nodes.begin(), all_nodes.end(), 0);
  Rng rng(0x3333);
  const size_t samples = 120000;
  size_t hits = 0;
  for (size_t i = 0; i < samples; ++i) {
    sampler.Generate(all_nodes, nullptr, collection, rng);
    const auto set = collection.Set(i);
    for (NodeId v : seed_set) {
      if (std::find(set.begin(), set.end(), v) != set.end()) {
        ++hits;
        break;
      }
    }
  }
  const double reverse =
      static_cast<double>(n) * static_cast<double>(hits) / static_cast<double>(samples);
  EXPECT_NEAR(reverse, forward, 0.05 * forward + 0.15)
      << "model " << DiffusionModelName(model) << " variant " << variant;
}

TEST_P(DifferentialTest, MrrSetBracketsTruncatedMonteCarloOnSets) {
  const auto [model, variant] = GetParam();
  const DirectedGraph graph = MakeVariantGraph(variant, 0x4444 + variant);
  const NodeId n = graph.NumNodes();
  const NodeId eta = 8;
  const std::vector<NodeId> seed_set = {2, 7};

  MonteCarloEstimator mc(graph, model);
  Rng mc_rng(0x5555);
  const double gamma = mc.EstimateTruncatedSpread(seed_set, eta, 60000, mc_rng);

  MrrSampler sampler(graph, model);
  RootSizeSampler root_size(n, eta);
  RrCollection collection(n);
  std::vector<NodeId> all_nodes(n);
  std::iota(all_nodes.begin(), all_nodes.end(), 0);
  Rng rng(0x6666);
  const size_t samples = 120000;
  size_t hits = 0;
  for (size_t i = 0; i < samples; ++i) {
    sampler.Generate(all_nodes, nullptr, root_size.Sample(rng), collection, rng);
    const auto set = collection.Set(i);
    for (NodeId v : seed_set) {
      if (std::find(set.begin(), set.end(), v) != set.end()) {
        ++hits;
        break;
      }
    }
  }
  const double gamma_tilde = static_cast<double>(eta) * static_cast<double>(hits) /
                             static_cast<double>(samples);
  // Theorem 3.3 for sets: (1-1/e)·E[Γ(S)] ≤ E[Γ̃(S)] ≤ E[Γ(S)].
  EXPECT_GE(gamma_tilde, kOneMinusInvE * gamma - 0.1)
      << "model " << DiffusionModelName(model) << " variant " << variant;
  EXPECT_LE(gamma_tilde, gamma + 0.1)
      << "model " << DiffusionModelName(model) << " variant " << variant;
}

TEST_P(DifferentialTest, ResidualMarginalsAgree) {
  const auto [model, variant] = GetParam();
  const DirectedGraph graph = MakeVariantGraph(variant, 0x7777 + variant);
  const NodeId n = graph.NumNodes();
  // Activate a third of the nodes.
  BitVector active(n);
  std::vector<NodeId> inactive;
  for (NodeId v = 0; v < n; ++v) {
    if (v % 3 == 0) {
      active.Set(v);
    } else {
      inactive.push_back(v);
    }
  }
  const NodeId ni = static_cast<NodeId>(inactive.size());
  const NodeId eta_i = 5;
  const NodeId probe = inactive[1];

  MonteCarloEstimator mc(graph, model);
  Rng mc_rng(0x8888);
  const double delta =
      mc.EstimateMarginalTruncatedSpread({probe}, active, eta_i, 60000, mc_rng);

  MrrSampler sampler(graph, model);
  RootSizeSampler root_size(ni, eta_i);
  RrCollection collection(n);
  Rng rng(0x9999);
  const size_t samples = 120000;
  for (size_t i = 0; i < samples; ++i) {
    sampler.Generate(inactive, &active, root_size.Sample(rng), collection, rng);
  }
  const double delta_tilde = static_cast<double>(eta_i) *
                             static_cast<double>(collection.Coverage(probe)) /
                             static_cast<double>(samples);
  EXPECT_GE(delta_tilde, kOneMinusInvE * delta - 0.1);
  EXPECT_LE(delta_tilde, delta + 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndGraphs, DifferentialTest,
    ::testing::Combine(::testing::Values(DiffusionModel::kIndependentCascade,
                                         DiffusionModel::kLinearThreshold),
                       ::testing::Values(0, 1, 2)),
    [](const ::testing::TestParamInfo<DiffParam>& info) {
      const int variant = std::get<1>(info.param);
      const char* name = variant == 0 ? "ER" : variant == 1 ? "BA" : "Cycle";
      return std::string(DiffusionModelName(std::get<0>(info.param))) + "_" + name;
    });

}  // namespace
}  // namespace asti
