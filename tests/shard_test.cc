// Tests for src/shard/: partition plans (build / validate / extract /
// stitch), the sharded snapshot store, and the serving contract — a graph
// registered behind a ShardTopology produces results bit-identical to the
// unsharded path at every (shard count x pool size), stays pinned across
// a mid-stream Swap of the sharded entry, and a malformed partition plan
// is refused with InvalidArgument rather than served. Runs in the
// ThreadSanitizer CI job (per-shard pools + coordinator threads).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/graph_catalog.h"
#include "api/seedmin_engine.h"
#include "graph/generators.h"
#include "shard/partition.h"
#include "shard/runtime.h"
#include "shard/sharded_store.h"
#include "shard/topology.h"

namespace asti {
namespace {

DirectedGraph MakeGraph(NodeId nodes, uint64_t seed) {
  Rng rng(seed);
  auto graph = BuildWeightedGraph(MakeBarabasiAlbert(nodes, 3, rng),
                                  WeightScheme::kWeightedCascade);
  ASM_CHECK(graph.ok()) << graph.status().ToString();
  return std::move(graph).value();
}

std::string Fingerprint(const SolveResult& result) {
  std::ostringstream out;
  out << result.graph_name << '@' << result.graph_epoch << '|';
  for (double spread : result.spreads) out << spread << ',';
  out << '|';
  for (size_t count : result.seed_counts) out << count << ',';
  for (const AdaptiveRunTrace& trace : result.traces) {
    for (NodeId seed : trace.seeds) out << seed << ' ';
    out << '/' << trace.total_activated << ';';
  }
  return out.str();
}

std::string TempDirFor(const std::string& name) {
  const std::string dir = testing::TempDir() + "/shard_test_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// --- Partition plans --------------------------------------------------------

TEST(PartitionTest, PlanCoversGraphWithBalancedEdges) {
  const DirectedGraph graph = MakeGraph(300, 5);
  const auto plan = BuildPartitionPlan(graph, 4);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->num_shards, 4u);
  EXPECT_EQ(plan->num_nodes, graph.NumNodes());
  EXPECT_EQ(plan->num_edges, graph.NumEdges());
  ASSERT_EQ(plan->cuts.size(), 5u);
  EXPECT_EQ(plan->cuts.front(), 0u);
  EXPECT_EQ(plan->cuts.back(), graph.NumNodes());
  EdgeId total = 0;
  for (uint32_t k = 0; k < 4; ++k) {
    EXPECT_LE(plan->cuts[k], plan->cuts[k + 1]);
    total += plan->shard_edges[k];
    // Every shard carries real work on a 300-node power-law graph.
    EXPECT_GT(plan->shard_edges[k], 0u);
  }
  EXPECT_EQ(total, graph.NumEdges());
  EXPECT_TRUE(ValidatePlan(*plan).ok());
}

TEST(PartitionTest, RejectsBadShardCounts) {
  const DirectedGraph graph = MakeGraph(60, 6);
  EXPECT_EQ(BuildPartitionPlan(graph, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(BuildPartitionPlan(graph, kMaxShards + 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PartitionTest, MoreShardsThanNodesLeavesTrailingShardsEmpty) {
  const DirectedGraph graph = MakeGraph(10, 7);
  const auto plan = BuildPartitionPlan(graph, 16);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(ValidatePlan(*plan).ok());
  EdgeId total = 0;
  for (EdgeId edges : plan->shard_edges) total += edges;
  EXPECT_EQ(total, graph.NumEdges());
}

TEST(PartitionTest, ExtractStitchRoundTripsBitIdentically) {
  const DirectedGraph graph = MakeGraph(250, 8);
  const auto plan = BuildPartitionPlan(graph, 3);
  ASSERT_TRUE(plan.ok());
  std::vector<DirectedGraph> shards;
  for (uint32_t k = 0; k < 3; ++k) {
    auto shard = ExtractShard(graph, *plan, k);
    ASSERT_TRUE(shard.ok()) << shard.status().ToString();
    // The plan's per-shard digest is computed over exactly this graph.
    EXPECT_EQ(ForwardCsrDigest(*shard), plan->shard_digests[k]);
    EXPECT_EQ(shard->NumNodes(), graph.NumNodes());
    shards.push_back(std::move(shard).value());
  }
  const auto stitched = StitchShards(*plan, shards);
  ASSERT_TRUE(stitched.ok()) << stitched.status().ToString();
  EXPECT_EQ(ForwardCsrDigest(*stitched), plan->graph_digest);
  EXPECT_EQ(ForwardCsrDigest(*stitched), ForwardCsrDigest(graph));
  EXPECT_EQ(stitched->NumEdges(), graph.NumEdges());
}

TEST(PartitionTest, MalformedPlanIsInvalidArgument) {
  const DirectedGraph graph = MakeGraph(120, 9);
  const auto good = BuildPartitionPlan(graph, 2);
  ASSERT_TRUE(good.ok());

  PartitionPlan bad = *good;
  bad.cuts[1] = bad.num_nodes + 5;  // cut beyond the node range
  EXPECT_EQ(ValidatePlan(bad).code(), StatusCode::kInvalidArgument);

  bad = *good;
  bad.shard_edges[0] += 1;  // edge totals no longer sum to num_edges
  EXPECT_EQ(ValidatePlan(bad).code(), StatusCode::kInvalidArgument);

  bad = *good;
  bad.shard_digests.pop_back();  // digest count disagrees with shards
  EXPECT_EQ(ValidatePlan(bad).code(), StatusCode::kInvalidArgument);

  // Stitching under a plan that disagrees with the shard shapes is refused.
  std::vector<DirectedGraph> shards;
  for (uint32_t k = 0; k < 2; ++k) {
    shards.push_back(std::move(ExtractShard(graph, *good, k)).value());
  }
  PartitionPlan shifted = *good;
  shifted.cuts[1] = shifted.cuts[1] / 2;
  EXPECT_EQ(StitchShards(shifted, shards).status().code(),
            StatusCode::kInvalidArgument);
}

// --- Sharded snapshot store -------------------------------------------------

TEST(ShardedStoreTest, SaveLoadRoundTripsGraphAndTopology) {
  const std::string dir = TempDirFor("roundtrip");
  const DirectedGraph graph = MakeGraph(220, 11);
  ASSERT_TRUE(SaveShardedSnapshot(graph, "g", WeightScheme::kWeightedCascade,
                                  /*num_shards=*/3, dir)
                  .ok());
  const auto loaded = LoadShardedSnapshot(dir, "g");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name, "g");
  EXPECT_EQ(loaded->weight_scheme, WeightScheme::kWeightedCascade);
  ASSERT_NE(loaded->graph, nullptr);
  EXPECT_EQ(ForwardCsrDigest(*loaded->graph), ForwardCsrDigest(graph));
  ASSERT_NE(loaded->topology, nullptr);
  EXPECT_EQ(loaded->topology->num_shards(), 3u);
  ASSERT_EQ(loaded->topology->shards.size(), 3u);
  for (uint32_t k = 0; k < 3; ++k) {
    EXPECT_EQ(ForwardCsrDigest(*loaded->topology->shards[k]),
              loaded->topology->plan.shard_digests[k]);
  }
}

TEST(ShardedStoreTest, MissingPlanIsNotFound) {
  const std::string dir = TempDirFor("missing");
  EXPECT_EQ(LoadShardedSnapshot(dir, "nope").status().code(),
            StatusCode::kNotFound);
}

TEST(ShardedStoreTest, MalformedPlanFileIsInvalidArgument) {
  const std::string dir = TempDirFor("malformed");
  const DirectedGraph graph = MakeGraph(150, 12);
  ASSERT_TRUE(SaveShardedSnapshot(graph, "g", WeightScheme::kWeightedCascade,
                                  /*num_shards=*/2, dir)
                  .ok());

  // Garbage header.
  {
    std::ofstream out(ShardPlanPath(dir, "g"), std::ios::trunc);
    out << "not a plan\n";
  }
  auto loaded = LoadShardedSnapshot(dir, "g");
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("malformed shard plan"),
            std::string::npos);

  // Structurally broken plan: shard count that the rows do not match.
  {
    std::ofstream out(ShardPlanPath(dir, "g"), std::ios::trunc);
    out << "ASMS-PLAN v1\nname g\nscheme weighted_cascade\nshards 2\n"
        << "nodes 150\nedges 1\ngraph_digest 1\ncuts 0 10 150\n"
        << "shard 0 edges 1 digest 1\n";  // second shard row missing
  }
  EXPECT_EQ(LoadShardedSnapshot(dir, "g").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardedStoreTest, ShardFileFromAnotherGraphIsRefused) {
  const std::string dir = TempDirFor("crossed");
  const DirectedGraph graph_a = MakeGraph(180, 13);
  const DirectedGraph graph_b = MakeGraph(180, 14);
  ASSERT_TRUE(SaveShardedSnapshot(graph_a, "a", WeightScheme::kWeightedCascade,
                                  2, dir)
                  .ok());
  ASSERT_TRUE(SaveShardedSnapshot(graph_b, "b", WeightScheme::kWeightedCascade,
                                  2, dir)
                  .ok());
  // Swap b's shard 0 file under a's name: the per-shard digest check must
  // refuse the set even though the file itself is a valid ASMS snapshot.
  const store::SnapshotStore store(dir);
  const std::string a0 = store.PathFor(ShardSnapshotName("a", 0, 2));
  const std::string b0 = store.PathFor(ShardSnapshotName("b", 0, 2));
  std::filesystem::copy_file(b0, a0,
                             std::filesystem::copy_options::overwrite_existing);
  const auto loaded = LoadShardedSnapshot(dir, "a");
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

// --- Sharded serving --------------------------------------------------------

std::vector<SolveRequest> ServingRequests(const std::string& graph) {
  std::vector<SolveRequest> requests;
  const AlgorithmId algorithms[] = {AlgorithmId::kAsti, AlgorithmId::kAsti4,
                                    AlgorithmId::kAteuc};
  for (int i = 0; i < 3; ++i) {
    SolveRequest request;
    request.graph = graph;
    request.algorithm = algorithms[i];
    request.eta = 30;
    request.realizations = 2;
    request.seed = 900 + i;
    request.keep_traces = true;
    requests.push_back(request);
  }
  return requests;
}

// The tentpole contract: sharded serving is bit-identical to the
// unsharded path at every shard count, for each pool size. (Pool size 1
// vs >= 2 is a separate, pre-existing distinction — the sequential
// reference path follows the paper's in-place stream protocol — so each
// pool size gets its own unsharded reference.)
TEST(ShardServingTest, BitIdenticalAcrossShardAndPoolCounts) {
  const DirectedGraph graph = MakeGraph(260, 15);
  const auto snapshot = std::make_shared<const DirectedGraph>(graph);
  const std::vector<SolveRequest> requests = ServingRequests("g");

  for (size_t pool : {size_t{1}, size_t{4}}) {
    // Unsharded reference at this pool size.
    std::vector<std::string> reference;
    {
      GraphCatalog catalog;
      ASSERT_TRUE(catalog.Register("g", snapshot).ok());
      SeedMinEngine::ServingOptions options;
      options.num_threads = pool;
      SeedMinEngine engine(catalog, options);
      for (const SolveRequest& request : requests) {
        const auto solved = engine.Solve(request);
        ASSERT_TRUE(solved.ok()) << solved.status().ToString();
        reference.push_back(Fingerprint(*solved));
      }
    }

    for (uint32_t shards : {1u, 2u, 4u}) {
      GraphCatalog catalog;
      auto topology = MakeShardTopology(*snapshot, shards);
      ASSERT_TRUE(topology.ok()) << topology.status().ToString();
      ASSERT_TRUE(catalog
                      .Register("g", snapshot, WeightScheme::kWeightedCascade,
                                /*warm=*/nullptr, std::move(topology).value())
                      .ok());
      SeedMinEngine::ServingOptions options;
      options.num_threads = pool;
      SeedMinEngine engine(catalog, options);
      for (size_t i = 0; i < requests.size(); ++i) {
        const auto solved = engine.Solve(requests[i]);
        ASSERT_TRUE(solved.ok()) << solved.status().ToString();
        EXPECT_EQ(Fingerprint(*solved), reference[i])
            << "shards=" << shards << " pool=" << pool << " request=" << i;
      }
    }
  }
}

// ShardRuntime distributes work: with >= 2 shards every shard generates a
// nonzero number of sets for a real request stream.
TEST(ShardServingTest, EveryShardGeneratesSets) {
  GraphCatalog catalog;
  const auto snapshot =
      std::make_shared<const DirectedGraph>(MakeGraph(260, 16));
  auto topology = MakeShardTopology(*snapshot, 3);
  ASSERT_TRUE(topology.ok());
  ASSERT_TRUE(catalog
                  .Register("g", snapshot, WeightScheme::kWeightedCascade,
                            nullptr, std::move(topology).value())
                  .ok());
  SeedMinEngine::ServingOptions options;
  options.num_threads = 2;
  SeedMinEngine engine(catalog, options);
  for (const SolveRequest& request : ServingRequests("g")) {
    const auto solved = engine.Solve(request);
    ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  }
  const MetricsSnapshot snapshot_metrics = engine.metrics_snapshot();
  std::vector<uint64_t> per_shard(3, 0);
  for (const CounterSample& counter : snapshot_metrics.counters) {
    if (counter.name != "asti_shard_rr_sets_total") continue;
    for (const auto& [key, value] : counter.labels) {
      if (key == "shard") per_shard[std::stoul(value)] += counter.value;
    }
  }
  for (uint32_t k = 0; k < 3; ++k) {
    EXPECT_GT(per_shard[k], 0u) << "shard " << k << " generated no sets";
  }
}

// Swap of a sharded entry mid-stream: requests admitted before the swap
// complete bit-identically on their pinned sharded epoch; requests issued
// after run on the new epoch (itself sharded differently).
TEST(ShardServingTest, SwapOfShardedGraphMidStreamPinsOldEpoch) {
  GraphCatalog catalog;
  const auto snapshot =
      std::make_shared<const DirectedGraph>(MakeGraph(240, 17));
  auto topology = MakeShardTopology(*snapshot, 2);
  ASSERT_TRUE(topology.ok());
  ASSERT_TRUE(catalog
                  .Register("g", snapshot, WeightScheme::kWeightedCascade,
                            nullptr, std::move(topology).value())
                  .ok());

  SolveRequest request;
  request.graph = "g";
  request.eta = 28;
  request.realizations = 2;
  request.seed = 41;
  request.keep_traces = true;

  std::string reference;
  {
    SeedMinEngine engine(catalog, SeedMinEngine::ServingOptions{});
    const auto solo = engine.Solve(request);
    ASSERT_TRUE(solo.ok());
    ASSERT_EQ(solo->graph_epoch, 1u);
    reference = Fingerprint(*solo);
  }

  SeedMinEngine::ServingOptions options;
  options.num_drivers = 2;
  options.num_threads = 2;
  SeedMinEngine engine(catalog, options);
  std::vector<std::future<StatusOr<SolveResult>>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(engine.SubmitAsync(request));

  // Swap to a different graph with a different shard count mid-stream.
  const auto replacement =
      std::make_shared<const DirectedGraph>(MakeGraph(300, 18));
  auto new_topology = MakeShardTopology(*replacement, 4);
  ASSERT_TRUE(new_topology.ok());
  ASSERT_TRUE(catalog
                  .Swap("g", replacement, WeightScheme::kWeightedCascade,
                        nullptr, std::move(new_topology).value())
                  .ok());

  for (auto& future : futures) {
    const auto result = future.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->graph_epoch, 1u);
    EXPECT_EQ(Fingerprint(*result), reference);
  }
  // A fresh request serves from the new sharded epoch, bit-identical to
  // its own unsharded reference.
  const auto fresh = engine.Solve(request);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->graph_epoch, 2u);
  std::string unsharded_epoch2;
  {
    GraphCatalog solo_catalog;
    ASSERT_TRUE(solo_catalog.Register("g", replacement).ok());
    // Same (name, epoch) identity for the fingerprint comparison.
    ASSERT_TRUE(
        solo_catalog.Swap("g", replacement, WeightScheme::kWeightedCascade).ok());
    SeedMinEngine solo_engine(solo_catalog, SeedMinEngine::ServingOptions{});
    const auto solo = solo_engine.Solve(request);
    ASSERT_TRUE(solo.ok());
    unsharded_epoch2 = Fingerprint(*solo);
  }
  EXPECT_EQ(Fingerprint(*fresh), unsharded_epoch2);
}

}  // namespace
}  // namespace asti
