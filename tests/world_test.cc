// Tests for diffusion/world.h: residual bookkeeping across observations.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "diffusion/world.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace asti {
namespace {

DirectedGraph DeterministicChain(NodeId n) {
  GraphBuilder builder(n);
  for (NodeId u = 0; u + 1 < n; ++u) {
    EXPECT_TRUE(builder.AddEdge(u, u + 1, 1.0).ok());
  }
  return std::move(builder.Build()).value();
}

TEST(WorldTest, InitialState) {
  const DirectedGraph graph = DeterministicChain(6);
  Rng rng(41);
  AdaptiveWorld world(graph, DiffusionModel::kIndependentCascade, 4, rng);
  EXPECT_EQ(world.eta(), 4u);
  EXPECT_EQ(world.NumActive(), 0u);
  EXPECT_EQ(world.NumInactive(), 6u);
  EXPECT_EQ(world.Shortfall(), 4u);
  EXPECT_FALSE(world.TargetReached());
  EXPECT_EQ(world.InactiveNodes().size(), 6u);
}

TEST(WorldTest, ObserveUpdatesEverything) {
  const DirectedGraph graph = DeterministicChain(6);
  Rng rng(42);
  AdaptiveWorld world(graph, DiffusionModel::kIndependentCascade, 4, rng);
  const auto activated = world.Observe(2u);  // activates 2,3,4,5
  EXPECT_EQ(activated.size(), 4u);
  EXPECT_EQ(world.NumActive(), 4u);
  EXPECT_EQ(world.Shortfall(), 0u);
  EXPECT_TRUE(world.TargetReached());
  for (NodeId v : activated) EXPECT_TRUE(world.IsActive(v));
  EXPECT_FALSE(world.IsActive(0));
  EXPECT_FALSE(world.IsActive(1));
}

TEST(WorldTest, InactiveListStaysConsistent) {
  const DirectedGraph graph = DeterministicChain(8);
  Rng rng(43);
  AdaptiveWorld world(graph, DiffusionModel::kIndependentCascade, 8, rng);
  world.Observe(5u);  // activates 5,6,7
  const auto& inactive = world.InactiveNodes();
  EXPECT_EQ(inactive.size(), 5u);
  const std::set<NodeId> expected = {0, 1, 2, 3, 4};
  const std::set<NodeId> got(inactive.begin(), inactive.end());
  EXPECT_EQ(got, expected);
}

TEST(WorldTest, RepeatSeedIsNoOp) {
  const DirectedGraph graph = DeterministicChain(6);
  Rng rng(44);
  AdaptiveWorld world(graph, DiffusionModel::kIndependentCascade, 6, rng);
  world.Observe(3u);
  const NodeId active_before = world.NumActive();
  const auto activated = world.Observe(3u);
  EXPECT_TRUE(activated.empty());
  EXPECT_EQ(world.NumActive(), active_before);
}

TEST(WorldTest, ShortfallArithmetic) {
  const DirectedGraph graph = DeterministicChain(10);
  Rng rng(45);
  AdaptiveWorld world(graph, DiffusionModel::kIndependentCascade, 7, rng);
  world.Observe(7u);  // activates 7,8,9 -> 3 active
  EXPECT_EQ(world.Shortfall(), 4u);  // η_i = 7 - 3
  world.Observe(4u);  // activates 4,5,6 -> 6 active
  EXPECT_EQ(world.Shortfall(), 1u);
  world.Observe(0u);  // activates 0..3 -> 10 active
  EXPECT_EQ(world.Shortfall(), 0u);
  EXPECT_TRUE(world.TargetReached());
}

TEST(WorldTest, BatchObservation) {
  const DirectedGraph graph = DeterministicChain(9);
  Rng rng(46);
  AdaptiveWorld world(graph, DiffusionModel::kIndependentCascade, 9, rng);
  const auto activated = world.Observe(std::vector<NodeId>{6, 3});
  EXPECT_EQ(activated.size(), 6u);  // 6,7,8 and 3,4,5
  EXPECT_EQ(world.NumActive(), 6u);
}

TEST(WorldTest, SuppliedRealizationIsHonored) {
  // Probabilistic graph but explicit realization => deterministic world.
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2, 0.5).ok());
  const DirectedGraph graph = std::move(builder.Build()).value();
  // Find a realization where 0->1 is live and 1->2 blocked.
  Rng rng(47);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    Realization candidate = Realization::SampleIc(graph, rng);
    if (candidate.IsLive(0) && !candidate.IsLive(1)) {
      AdaptiveWorld world(graph, 2, std::move(candidate));
      const auto activated = world.Observe(0u);
      EXPECT_EQ(activated.size(), 2u);
      EXPECT_TRUE(world.TargetReached());
      return;
    }
  }
  FAIL() << "realization never sampled";
}

TEST(WorldTest, LtWorldPropagates) {
  // WC weights on a cycle: every node has exactly one in-edge with p=1, so
  // LT picks it surely and seeding any node activates the whole cycle.
  auto graph = BuildWeightedGraph(MakeCycle(5), WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  Rng rng(48);
  AdaptiveWorld world(*graph, DiffusionModel::kLinearThreshold, 5, rng);
  const auto activated = world.Observe(2u);
  EXPECT_EQ(activated.size(), 5u);
  EXPECT_TRUE(world.TargetReached());
}

}  // namespace
}  // namespace asti
