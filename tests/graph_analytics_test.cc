// Tests for graph/wcc.h, graph/degree_stats.h, graph/datasets.h.

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/degree_stats.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/wcc.h"

namespace asti {
namespace {

DirectedGraph TwoComponents() {
  // Component A: 0 -> 1 -> 2; Component B: 3 <-> 4.
  GraphBuilder builder(5);
  EXPECT_TRUE(builder.AddEdge(0, 1, 1.0).ok());
  EXPECT_TRUE(builder.AddEdge(1, 2, 1.0).ok());
  EXPECT_TRUE(builder.AddUndirectedEdge(3, 4, 1.0).ok());
  return std::move(builder.Build()).value();
}

TEST(WccTest, FindsComponents) {
  const WccResult wcc = ComputeWcc(TwoComponents());
  EXPECT_EQ(wcc.num_components, 2u);
  EXPECT_EQ(wcc.largest_size, 3u);
  EXPECT_EQ(wcc.component[0], wcc.component[1]);
  EXPECT_EQ(wcc.component[1], wcc.component[2]);
  EXPECT_EQ(wcc.component[3], wcc.component[4]);
  EXPECT_NE(wcc.component[0], wcc.component[3]);
}

TEST(WccTest, DirectionIgnored) {
  // 0 -> 1 and 2 -> 1: all weakly connected despite no directed path 0~2.
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(2, 1, 1.0).ok());
  const WccResult wcc = ComputeWcc(std::move(builder.Build()).value());
  EXPECT_EQ(wcc.num_components, 1u);
  EXPECT_EQ(wcc.largest_size, 3u);
}

TEST(WccTest, IsolatedNodesAreSingletons) {
  GraphBuilder builder(4);
  ASSERT_TRUE(builder.AddEdge(0, 1, 1.0).ok());
  const WccResult wcc = ComputeWcc(std::move(builder.Build()).value());
  EXPECT_EQ(wcc.num_components, 3u);
  EXPECT_EQ(wcc.largest_size, 2u);
}

TEST(WccTest, SizesSumToN) {
  Rng rng(11);
  auto graph =
      BuildWeightedGraph(MakeErdosRenyi(200, 150, rng), WeightScheme::kUniform, 0.1);
  ASSERT_TRUE(graph.ok());
  const WccResult wcc = ComputeWcc(*graph);
  NodeId total = 0;
  for (NodeId size : wcc.sizes) total += size;
  EXPECT_EQ(total, 200u);
}

TEST(DegreeStatsTest, BasicStats) {
  const DirectedGraph graph = TwoComponents();
  const DegreeStats stats = ComputeDegreeStats(graph);
  EXPECT_DOUBLE_EQ(stats.average_out_degree, 4.0 / 5.0);
  EXPECT_EQ(stats.max_out_degree, 1u);
  EXPECT_EQ(stats.max_in_degree, 1u);
}

TEST(DegreeStatsTest, DistributionSumsToOne) {
  Rng rng(12);
  auto graph =
      BuildWeightedGraph(MakeErdosRenyi(300, 900, rng), WeightScheme::kUniform, 0.1);
  ASSERT_TRUE(graph.ok());
  const auto distribution = ComputeDegreeDistribution(*graph);
  double total = 0.0;
  for (const auto& point : distribution) total += point.fraction;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DegreeStatsTest, DistributionMatchesStar) {
  auto graph = BuildWeightedGraph(MakeStar(10), WeightScheme::kUniform, 0.5);
  ASSERT_TRUE(graph.ok());
  const auto distribution = ComputeDegreeDistribution(*graph);
  ASSERT_EQ(distribution.size(), 2u);
  EXPECT_EQ(distribution[0].degree, 0u);
  EXPECT_NEAR(distribution[0].fraction, 0.9, 1e-9);
  EXPECT_EQ(distribution[1].degree, 9u);
  EXPECT_NEAR(distribution[1].fraction, 0.1, 1e-9);
}

TEST(DegreeStatsTest, LogBinnedCoversPositiveDegrees) {
  Rng rng(13);
  auto graph = BuildWeightedGraph(MakeBarabasiAlbert(1000, 2, rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  const auto binned = ComputeLogBinnedDistribution(*graph);
  ASSERT_FALSE(binned.empty());
  EXPECT_EQ(binned[0].degree, 1u);
  for (size_t i = 1; i < binned.size(); ++i) {
    EXPECT_EQ(binned[i].degree, binned[i - 1].degree * 2);
  }
  // Power-law shape: the densest bucket carries far more per-degree mass
  // than the tail bucket. (The first bucket can be empty: BA with attach=2
  // has minimum degree 2.)
  double peak = 0.0;
  for (const auto& point : binned) peak = std::max(peak, point.fraction);
  EXPECT_GT(peak, 100.0 * binned.back().fraction);
}

TEST(DatasetsTest, CatalogHasFourEntries) {
  EXPECT_EQ(AllDatasets().size(), 4u);
  EXPECT_STREQ(GetDatasetInfo(DatasetId::kNetHept).name, "NetHEPT");
  EXPECT_STREQ(GetDatasetInfo(DatasetId::kLiveJournal).name, "LiveJournal");
}

TEST(DatasetsTest, NameLookupIsCaseInsensitive) {
  auto id = DatasetIdFromName("nethept");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, DatasetId::kNetHept);
  EXPECT_TRUE(DatasetIdFromName("EPINIONS").ok());
  EXPECT_FALSE(DatasetIdFromName("flickr").ok());
}

TEST(DatasetsTest, SurrogateIsDeterministic) {
  auto a = MakeSurrogateDataset(DatasetId::kNetHept, 0.05, 7);
  auto b = MakeSurrogateDataset(DatasetId::kNetHept, 0.05, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->NumNodes(), b->NumNodes());
  EXPECT_EQ(a->NumEdges(), b->NumEdges());
}

TEST(DatasetsTest, SurrogateScalesDown) {
  auto small = MakeSurrogateDataset(DatasetId::kEpinions, 0.02, 7);
  ASSERT_TRUE(small.ok());
  const DatasetInfo& info = GetDatasetInfo(DatasetId::kEpinions);
  EXPECT_LT(small->NumNodes(), info.surrogate_nodes / 10);
  EXPECT_GT(small->NumNodes(), 63u);
}

TEST(DatasetsTest, WeightedCascadeAppliedByDefault) {
  auto graph = MakeSurrogateDataset(DatasetId::kNetHept, 0.05, 7);
  ASSERT_TRUE(graph.ok());
  for (NodeId v = 0; v < graph->NumNodes(); ++v) {
    if (graph->InDegree(v) > 0) {
      EXPECT_NEAR(graph->InProbabilitySum(v), 1.0, 1e-9);
    }
  }
}

TEST(DatasetsTest, RejectsNonPositiveScale) {
  EXPECT_FALSE(MakeSurrogateDataset(DatasetId::kNetHept, 0.0).ok());
  EXPECT_FALSE(MakeSurrogateDataset(DatasetId::kNetHept, -1.0).ok());
}

}  // namespace
}  // namespace asti
