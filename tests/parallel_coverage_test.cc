// Tests for the parallel deterministic greedy-coverage path: bit-identical
// selected/marginal_coverage/covered_sets to the sequential reference at
// every thread count (with and without a candidate restriction), inverted
// index equality, parallel argmax parity, and a TRIM-B end-to-end
// thread-count-invariance regression exercising the shared pool.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/asti.h"
#include "core/trim_b.h"
#include "coverage/inverted_index.h"
#include "coverage/lazy_greedy.h"
#include "coverage/max_coverage.h"
#include "diffusion/world.h"
#include "graph/generators.h"
#include "parallel/thread_pool.h"
#include "sampling/rr_collection.h"
#include "sampling/rr_set.h"
#include "util/rng.h"

namespace asti {
namespace {

// A real RR-set instance: heavy-tailed set sizes, n large enough that the
// parallel index build and batched stale-drain actually engage.
RrCollection RrInstance(NodeId n, size_t num_sets, uint64_t seed) {
  Rng graph_rng(seed);
  auto graph = BuildWeightedGraph(MakeBarabasiAlbert(n, 3, graph_rng),
                                  WeightScheme::kWeightedCascade);
  EXPECT_TRUE(graph.ok());
  RrSampler sampler(*graph, DiffusionModel::kIndependentCascade);
  RrCollection collection(n);
  std::vector<NodeId> all_nodes(n);
  std::iota(all_nodes.begin(), all_nodes.end(), 0);
  Rng rng(seed + 1);
  for (size_t i = 0; i < num_sets; ++i) {
    sampler.Generate(all_nodes, nullptr, collection, rng);
  }
  return collection;
}

void ExpectSameResult(const MaxCoverageResult& a, const MaxCoverageResult& b,
                      const char* context) {
  EXPECT_EQ(a.selected, b.selected) << context;
  EXPECT_EQ(a.marginal_coverage, b.marginal_coverage) << context;
  EXPECT_EQ(a.covered_sets, b.covered_sets) << context;
}

TEST(ParallelCoverageTest, InvertedIndexIdenticalAtEveryThreadCount) {
  const RrCollection collection = RrInstance(400, 6000, 11);
  const InvertedIndex reference = BuildInvertedIndex(collection, nullptr);
  ASSERT_EQ(reference.sets.size(), collection.TotalEntries());
  for (size_t threads : {2, 3, 4, 8}) {
    ThreadPool pool(threads);
    const InvertedIndex parallel = BuildInvertedIndex(collection, &pool);
    EXPECT_EQ(parallel.offsets, reference.offsets) << threads << " threads";
    EXPECT_EQ(parallel.sets, reference.sets) << threads << " threads";
  }
}

TEST(ParallelCoverageTest, InvertedIndexFewLargeSetsTrailingEmptyChunks) {
  // Regression: 17 sets on 8 threads dispatch as 6 chunks of 3 —
  // ParallelFor's ceil division leaves 2 trailing chunks undispatched, and
  // their per-chunk histograms used to be read uninitialized in the cursor
  // merge (out-of-bounds on empty vectors). Sets are large enough to pass
  // the parallel-build thresholds.
  const NodeId n = 1000;
  RrCollection collection(n);
  for (int s = 0; s < 17; ++s) {
    for (NodeId v = 0; v < n; ++v) collection.PushNode(v);
    collection.SealSet();
  }
  const InvertedIndex reference = BuildInvertedIndex(collection, nullptr);
  ThreadPool pool(8);
  const InvertedIndex parallel = BuildInvertedIndex(collection, &pool);
  EXPECT_EQ(parallel.offsets, reference.offsets);
  EXPECT_EQ(parallel.sets, reference.sets);
}

TEST(ParallelCoverageTest, LazyGreedyThreadCountInvariant) {
  const RrCollection collection = RrInstance(350, 5000, 21);
  for (NodeId budget : {1u, 8u, 32u}) {
    const MaxCoverageResult reference =
        LazyGreedyMaxCoverage(collection, budget, nullptr, nullptr);
    for (size_t threads : {1, 2, 4, 8}) {
      ThreadPool pool(threads);
      const MaxCoverageResult parallel =
          LazyGreedyMaxCoverage(collection, budget, nullptr, &pool);
      ExpectSameResult(parallel, reference, "full node pool");
    }
  }
}

TEST(ParallelCoverageTest, LazyGreedyThreadCountInvariantWithCandidates) {
  const RrCollection collection = RrInstance(350, 5000, 31);
  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < 350; ++v) {
    if (v % 3 != 0) candidates.push_back(v);
  }
  const MaxCoverageResult reference =
      LazyGreedyMaxCoverage(collection, 16, &candidates, nullptr);
  for (NodeId v : reference.selected) EXPECT_NE(v % 3, 0u);
  for (size_t threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    const MaxCoverageResult parallel =
        LazyGreedyMaxCoverage(collection, 16, &candidates, &pool);
    ExpectSameResult(parallel, reference, "restricted candidates");
  }
}

TEST(ParallelCoverageTest, HeavyStaleDrainThreadCountInvariant) {
  // Adversarial CELF instance: every node's cached gain collapses after the
  // first pick, so the drain loop must pop (and re-evaluate) the entire
  // heap in geometrically growing batches — guaranteeing the parallel
  // dispatch path engages, not just the inline small-batch path. Node 0 is
  // in 20 sets with each other node; each other node also owns one private
  // set, so post-pick gains are all 1 with cached bounds of 21, and picks
  // proceed in ascending node id — fully pinned.
  const NodeId n = 4000;
  RrCollection collection(n);
  for (NodeId v = 1; v < n; ++v) {
    for (int r = 0; r < 20; ++r) {
      collection.PushNode(0);
      collection.PushNode(v);
      collection.SealSet();
    }
    collection.PushNode(v);
    collection.SealSet();
  }
  const MaxCoverageResult reference =
      LazyGreedyMaxCoverage(collection, 40, nullptr, nullptr);
  ASSERT_EQ(reference.selected.size(), 40u);
  EXPECT_EQ(reference.selected[0], 0u);  // the hub dominates pick 1
  for (size_t i = 1; i < reference.selected.size(); ++i) {
    EXPECT_EQ(reference.selected[i], static_cast<NodeId>(i));  // then id order
    EXPECT_EQ(reference.marginal_coverage[i], 1u);
  }
  for (size_t threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    const MaxCoverageResult parallel =
        LazyGreedyMaxCoverage(collection, 40, nullptr, &pool);
    ExpectSameResult(parallel, reference, "heavy stale drain");
  }
}

TEST(ParallelCoverageTest, LazyGreedyParallelMatchesEagerGreedy) {
  // The full equivalence chain: parallel CELF == sequential CELF == eager
  // greedy, pinned on one instance.
  const RrCollection collection = RrInstance(300, 4000, 41);
  ThreadPool pool(4);
  const MaxCoverageResult eager = GreedyMaxCoverage(collection, 12, nullptr, nullptr);
  const MaxCoverageResult parallel_eager =
      GreedyMaxCoverage(collection, 12, nullptr, &pool);
  const MaxCoverageResult parallel_lazy =
      LazyGreedyMaxCoverage(collection, 12, nullptr, &pool);
  ExpectSameResult(parallel_eager, eager, "parallel eager vs eager");
  ExpectSameResult(parallel_lazy, eager, "parallel lazy vs eager");
}

TEST(ParallelCoverageTest, ArgMaxCoverageMatchesSequentialMember) {
  const RrCollection collection = RrInstance(5000, 3000, 51);
  const NodeId reference = collection.ArgMaxCoverage();
  EXPECT_EQ(ArgMaxCoverage(collection, nullptr), reference);
  for (size_t threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(ArgMaxCoverage(collection, &pool), reference) << threads << " threads";
  }
}

TEST(ParallelCoverageTest, ArgMaxScoreHonorsSkipAndDomain) {
  // 5000 nodes so the parallel scan path engages (threshold 4096).
  std::vector<uint32_t> score(5000, 1);
  score[123] = 9;
  score[4321] = 9;
  ThreadPool pool(4);
  // Ties break to the lowest id, across chunk boundaries.
  EXPECT_EQ(ArgMaxScore(score, nullptr, nullptr, &pool), 123u);
  BitVector skip(5000);
  skip.Set(123);
  EXPECT_EQ(ArgMaxScore(score, nullptr, &skip, &pool), 4321u);
  std::vector<NodeId> domain;
  for (NodeId v = 0; v < 5000; ++v) {
    if (v != 123 && v != 4321) domain.push_back(v);
  }
  EXPECT_EQ(ArgMaxScore(score, &domain, nullptr, &pool), 0u);
  skip = BitVector(5000, true);
  EXPECT_EQ(ArgMaxScore(score, nullptr, &skip, &pool), kInvalidNode);
}

TEST(ParallelCoverageTest, TrimBThreadCountInvariant) {
  // End-to-end: the full TRIM-B doubling loop (parallel sampling AND
  // parallel coverage sharing one pool) must produce identical seed
  // batches, sample counts, and activations at 2 and 4 workers.
  Rng graph_rng(61);
  auto graph = BuildWeightedGraph(MakeErdosRenyi(90, 550, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());

  std::vector<AdaptiveRunTrace> traces;
  for (size_t threads : {2, 4}) {
    TrimBOptions options;
    options.epsilon = 0.5;
    options.batch_size = 3;
    options.num_threads = threads;
    TrimB trim_b(*graph, DiffusionModel::kIndependentCascade, options);
    Rng world_rng(62);
    AdaptiveWorld world(*graph, DiffusionModel::kIndependentCascade, 12, world_rng);
    Rng rng(63);
    traces.push_back(RunAdaptivePolicy(world, trim_b, rng));
  }
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].seeds, traces[1].seeds);
  EXPECT_EQ(traces[0].total_samples, traces[1].total_samples);
  EXPECT_EQ(traces[0].total_activated, traces[1].total_activated);
}

}  // namespace
}  // namespace asti
