// Tests for diffusion/monte_carlo.h against closed-form expectations on
// small graphs, including the paper's Example 2.3 numbers.

#include <gtest/gtest.h>

#include "diffusion/monte_carlo.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace asti {
namespace {

TEST(MonteCarloTest, SingleEdgeClosedForm) {
  // E[I({0})] = 1 + p.
  GraphBuilder builder(2);
  ASSERT_TRUE(builder.AddEdge(0, 1, 0.3).ok());
  const DirectedGraph graph = std::move(builder.Build()).value();
  MonteCarloEstimator estimator(graph, DiffusionModel::kIndependentCascade);
  Rng rng(51);
  EXPECT_NEAR(estimator.EstimateSpread({0}, 40000, rng), 1.3, 0.02);
}

TEST(MonteCarloTest, TwoHopClosedForm) {
  // 0 ->(.5) 1 ->(.4) 2: E[I({0})] = 1 + .5 + .5*.4 = 1.7.
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2, 0.4).ok());
  const DirectedGraph graph = std::move(builder.Build()).value();
  MonteCarloEstimator estimator(graph, DiffusionModel::kIndependentCascade);
  Rng rng(52);
  EXPECT_NEAR(estimator.EstimateSpread({0}, 40000, rng), 1.7, 0.02);
}

TEST(MonteCarloTest, PaperExample23ExpectedSpreads) {
  // Figure 2 graph: E[I(v1)] = 0.25(3+3+4+1) = 2.75.
  auto graph = MakePaperFigure2Graph();
  ASSERT_TRUE(graph.ok());
  MonteCarloEstimator estimator(*graph, DiffusionModel::kIndependentCascade);
  Rng rng(53);
  EXPECT_NEAR(estimator.EstimateSpread({0}, 60000, rng), 2.75, 0.03);
  // v2 and v3 deterministically reach v4: spread 2.
  EXPECT_NEAR(estimator.EstimateSpread({1}, 2000, rng), 2.0, 1e-9);
  EXPECT_NEAR(estimator.EstimateSpread({2}, 2000, rng), 2.0, 1e-9);
  EXPECT_NEAR(estimator.EstimateSpread({3}, 2000, rng), 1.0, 1e-9);
}

TEST(MonteCarloTest, PaperExample23TruncatedSpreads) {
  // With η = 2: E[Γ(v1)] = 1.75, E[Γ(v2)] = E[Γ(v3)] = 2, E[Γ(v4)] = 1.
  auto graph = MakePaperFigure2Graph();
  ASSERT_TRUE(graph.ok());
  MonteCarloEstimator estimator(*graph, DiffusionModel::kIndependentCascade);
  Rng rng(54);
  EXPECT_NEAR(estimator.EstimateTruncatedSpread({0}, 2, 60000, rng), 1.75, 0.02);
  EXPECT_NEAR(estimator.EstimateTruncatedSpread({1}, 2, 2000, rng), 2.0, 1e-9);
  EXPECT_NEAR(estimator.EstimateTruncatedSpread({2}, 2, 2000, rng), 2.0, 1e-9);
  EXPECT_NEAR(estimator.EstimateTruncatedSpread({3}, 2, 2000, rng), 1.0, 1e-9);
}

TEST(MonteCarloTest, TruncationNeverExceedsEta) {
  auto graph = BuildWeightedGraph(MakeComplete(10), WeightScheme::kUniform, 0.9);
  ASSERT_TRUE(graph.ok());
  MonteCarloEstimator estimator(*graph, DiffusionModel::kIndependentCascade);
  Rng rng(55);
  EXPECT_LE(estimator.EstimateTruncatedSpread({0}, 3, 5000, rng), 3.0);
}

TEST(MonteCarloTest, TruncatedAtMostPlain) {
  auto graph = MakePaperFigure1Graph();
  ASSERT_TRUE(graph.ok());
  MonteCarloEstimator estimator(*graph, DiffusionModel::kIndependentCascade);
  Rng rng(56);
  const double plain = estimator.EstimateSpread({0}, 20000, rng);
  const double truncated = estimator.EstimateTruncatedSpread({0}, 3, 20000, rng);
  EXPECT_LE(truncated, plain + 0.05);
}

TEST(MonteCarloTest, MarginalOnResidualGraph) {
  // Chain 0 -> 1 -> 2 -> 3 with p=1; with {2,3} active, the marginal
  // truncated spread of node 0 at shortfall 2 is exactly 2 ({0, 1}).
  GraphBuilder builder(4);
  ASSERT_TRUE(builder.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(2, 3, 1.0).ok());
  const DirectedGraph graph = std::move(builder.Build()).value();
  MonteCarloEstimator estimator(graph, DiffusionModel::kIndependentCascade);
  BitVector active(4);
  active.Set(2);
  active.Set(3);
  Rng rng(57);
  EXPECT_NEAR(
      estimator.EstimateMarginalTruncatedSpread({0}, active, 2, 1000, rng), 2.0, 1e-9);
  // With shortfall 1 the same gain truncates to 1.
  EXPECT_NEAR(
      estimator.EstimateMarginalTruncatedSpread({0}, active, 1, 1000, rng), 1.0, 1e-9);
}

TEST(MonteCarloTest, LtModelMatchesClosedForm) {
  // LT on 0 ->(.5) 1: node 1 keeps the in-edge with prob .5.
  GraphBuilder builder(2);
  ASSERT_TRUE(builder.AddEdge(0, 1, 0.5).ok());
  const DirectedGraph graph = std::move(builder.Build()).value();
  MonteCarloEstimator estimator(graph, DiffusionModel::kLinearThreshold);
  Rng rng(58);
  EXPECT_NEAR(estimator.EstimateSpread({0}, 40000, rng), 1.5, 0.02);
}

}  // namespace
}  // namespace asti
