// Tests for the extended generators (Watts-Strogatz, forest fire,
// two-sided Chung-Lu) and the sampler cost instrumentation.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "graph/generators.h"
#include "sampling/mrr_set.h"
#include "sampling/root_size.h"
#include "sampling/rr_set.h"

namespace asti {
namespace {

TEST(WattsStrogatzTest, ZeroBetaIsRingLattice) {
  Rng rng(261);
  const EdgeSkeleton skeleton = MakeWattsStrogatz(20, 4, 0.0, rng);
  // Ring of degree 4: 2 undirected edges per node -> 40 undirected = 80 directed.
  EXPECT_EQ(skeleton.edges.size(), 80u);
  // Every edge spans ring distance 1 or 2.
  for (const Edge& e : skeleton.edges) {
    const int d = std::abs(static_cast<int>(e.source) - static_cast<int>(e.target));
    const int ring_distance = std::min(d, 20 - d);
    EXPECT_LE(ring_distance, 2);
    EXPECT_GE(ring_distance, 1);
  }
}

TEST(WattsStrogatzTest, SymmetricStructure) {
  Rng rng(262);
  const EdgeSkeleton skeleton = MakeWattsStrogatz(100, 6, 0.3, rng);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const Edge& e : skeleton.edges) seen.insert({e.source, e.target});
  for (const Edge& e : skeleton.edges) {
    EXPECT_TRUE(seen.count({e.target, e.source}));
  }
}

TEST(WattsStrogatzTest, RewiringCreatesShortcuts) {
  Rng rng(263);
  const EdgeSkeleton skeleton = MakeWattsStrogatz(200, 4, 0.5, rng);
  size_t shortcuts = 0;
  for (const Edge& e : skeleton.edges) {
    const int d = std::abs(static_cast<int>(e.source) - static_cast<int>(e.target));
    if (std::min(d, 200 - d) > 2) ++shortcuts;
  }
  EXPECT_GT(shortcuts, 50u);
}

TEST(ForestFireTest, ConnectedToEarlierNodes) {
  Rng rng(264);
  const EdgeSkeleton skeleton = MakeForestFire(300, 0.3, rng);
  // Every node beyond 0 links to at least one predecessor (its ambassador).
  std::vector<bool> has_out_link(300, false);
  for (const Edge& e : skeleton.edges) {
    EXPECT_LT(e.target, e.source);  // newcomer -> existing node only
    has_out_link[e.source] = true;
  }
  for (NodeId v = 1; v < 300; ++v) EXPECT_TRUE(has_out_link[v]) << v;
}

TEST(ForestFireTest, HigherBurnProbabilityDensifies) {
  Rng rng1(265);
  Rng rng2(265);
  const EdgeSkeleton sparse = MakeForestFire(400, 0.1, rng1);
  const EdgeSkeleton dense = MakeForestFire(400, 0.5, rng2);
  EXPECT_GT(dense.edges.size(), sparse.edges.size());
}

TEST(ForestFireTest, NoDuplicateEdges) {
  Rng rng(266);
  const EdgeSkeleton skeleton = MakeForestFire(200, 0.4, rng);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const Edge& e : skeleton.edges) {
    EXPECT_TRUE(seen.insert({e.source, e.target}).second);
  }
}

TEST(TwoSidedChungLuTest, UniformOutTamesOutHubs) {
  Rng rng1(267);
  Rng rng2(267);
  const NodeId n = 2000;
  const EdgeSkeleton symmetric = MakeChungLu(n, 10000, 2.2, rng1);
  const EdgeSkeleton two_sided = MakeTwoSidedChungLu(n, 10000, 0.0, 2.2, rng2);
  auto max_out_degree = [n](const EdgeSkeleton& skeleton) {
    std::vector<uint32_t> degree(n, 0);
    for (const Edge& e : skeleton.edges) ++degree[e.source];
    return *std::max_element(degree.begin(), degree.end());
  };
  EXPECT_LT(max_out_degree(two_sided), max_out_degree(symmetric) / 2);
}

TEST(TwoSidedChungLuTest, InDegreesStayHeavyTailed) {
  Rng rng(268);
  const NodeId n = 2000;
  const EdgeSkeleton skeleton = MakeTwoSidedChungLu(n, 10000, 0.0, 2.2, rng);
  std::vector<uint32_t> indegree(n, 0);
  for (const Edge& e : skeleton.edges) ++indegree[e.target];
  const uint32_t max_in = *std::max_element(indegree.begin(), indegree.end());
  EXPECT_GT(max_in, 20 * 10000 / n);  // hub far above the mean in-degree
}

TEST(SamplerCostTest, CountersAccumulateAndReset) {
  Rng graph_rng(269);
  auto graph = BuildWeightedGraph(MakeErdosRenyi(100, 600, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  RrSampler sampler(*graph, DiffusionModel::kIndependentCascade);
  RrCollection collection(100);
  std::vector<NodeId> all_nodes(100);
  std::iota(all_nodes.begin(), all_nodes.end(), 0);
  Rng rng(270);
  EXPECT_EQ(sampler.cost().nodes_visited, 0u);
  for (int i = 0; i < 50; ++i) sampler.Generate(all_nodes, nullptr, collection, rng);
  EXPECT_GE(sampler.cost().nodes_visited, 50u);  // at least the roots
  EXPECT_GE(sampler.cost().edges_examined, sampler.cost().nodes_visited / 2);
  sampler.ResetCost();
  EXPECT_EQ(sampler.cost().nodes_visited, 0u);
  EXPECT_EQ(sampler.cost().edges_examined, 0u);
}

TEST(SamplerCostTest, MrrCostGrowsWithRootCount) {
  Rng graph_rng(271);
  auto graph = BuildWeightedGraph(MakeErdosRenyi(200, 1200, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  std::vector<NodeId> all_nodes(200);
  std::iota(all_nodes.begin(), all_nodes.end(), 0);

  MrrSampler few_roots(*graph, DiffusionModel::kIndependentCascade);
  MrrSampler many_roots(*graph, DiffusionModel::kIndependentCascade);
  RrCollection collection(200);
  Rng rng1(272);
  Rng rng2(272);
  for (int i = 0; i < 100; ++i) {
    few_roots.Generate(all_nodes, nullptr, 2, collection, rng1);
    many_roots.Generate(all_nodes, nullptr, 50, collection, rng2);
  }
  EXPECT_GT(many_roots.cost().nodes_visited, few_roots.cost().nodes_visited);
}

}  // namespace
}  // namespace asti
