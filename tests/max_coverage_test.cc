// Tests for coverage/max_coverage.h: greedy correctness on hand instances,
// the ρ_b guarantee against the exact optimum, and ratio math.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "coverage/max_coverage.h"
#include "util/rng.h"

namespace asti {
namespace {

// Builds a collection from explicit sets.
RrCollection FromSets(NodeId n, const std::vector<std::vector<NodeId>>& sets) {
  RrCollection collection(n);
  for (const auto& set : sets) {
    for (NodeId v : set) collection.PushNode(v);
    collection.SealSet();
  }
  return collection;
}

TEST(GreedyMaxCoverageTest, SinglePickIsArgMax) {
  const RrCollection collection =
      FromSets(4, {{0, 1}, {1, 2}, {1, 3}, {0}});
  const MaxCoverageResult result = GreedyMaxCoverage(collection, 1);
  ASSERT_EQ(result.selected.size(), 1u);
  EXPECT_EQ(result.selected[0], 1u);
  EXPECT_EQ(result.covered_sets, 3u);
}

TEST(GreedyMaxCoverageTest, TwoPicksCoverAll) {
  const RrCollection collection =
      FromSets(4, {{0, 1}, {1, 2}, {1, 3}, {0}});
  const MaxCoverageResult result = GreedyMaxCoverage(collection, 2);
  ASSERT_EQ(result.selected.size(), 2u);
  EXPECT_EQ(result.selected[0], 1u);
  EXPECT_EQ(result.selected[1], 0u);
  EXPECT_EQ(result.covered_sets, 4u);
}

TEST(GreedyMaxCoverageTest, MarginalCoverageDiminishes) {
  Rng rng(101);
  RrCollection collection(30);
  for (int s = 0; s < 200; ++s) {
    const size_t size = 1 + rng.NextBounded(5);
    std::set<NodeId> set;
    while (set.size() < size) set.insert(static_cast<NodeId>(rng.NextBounded(30)));
    for (NodeId v : set) collection.PushNode(v);
    collection.SealSet();
  }
  const MaxCoverageResult result = GreedyMaxCoverage(collection, 10);
  for (size_t i = 1; i < result.marginal_coverage.size(); ++i) {
    EXPECT_LE(result.marginal_coverage[i], result.marginal_coverage[i - 1]);
  }
  const uint32_t total = std::accumulate(result.marginal_coverage.begin(),
                                         result.marginal_coverage.end(), 0u);
  EXPECT_EQ(total, result.covered_sets);
}

TEST(GreedyMaxCoverageTest, BudgetLargerThanNodes) {
  const RrCollection collection = FromSets(3, {{0}, {1}, {2}});
  const MaxCoverageResult result = GreedyMaxCoverage(collection, 10);
  EXPECT_EQ(result.selected.size(), 3u);
  EXPECT_EQ(result.covered_sets, 3u);
}

TEST(GreedyMaxCoverageTest, EmptyCollection) {
  RrCollection collection(5);
  const MaxCoverageResult result = GreedyMaxCoverage(collection, 2);
  EXPECT_EQ(result.covered_sets, 0u);
  EXPECT_EQ(result.selected.size(), 2u);  // picks exist but gain nothing
}

TEST(ExactMaxCoverageTest, MatchesBruteForceExpectation) {
  // Optimal pair is {0, 3}: covers sets 0,1 via 0 and 2,3 via 3. Greedy
  // might pick 1 first (covers 0 and 2) then anything — classic gap case.
  const RrCollection collection =
      FromSets(4, {{0, 1}, {0}, {1, 3}, {3}});
  const MaxCoverageResult exact = ExactMaxCoverage(collection, 2);
  EXPECT_EQ(exact.covered_sets, 4u);
}

TEST(GreedyVsExactTest, GreedyWithinRhoBOnRandomInstances) {
  Rng rng(102);
  for (int instance = 0; instance < 30; ++instance) {
    const NodeId n = 8;
    RrCollection collection(n);
    const int num_sets = 12;
    for (int s = 0; s < num_sets; ++s) {
      const size_t size = 1 + rng.NextBounded(3);
      std::set<NodeId> set;
      while (set.size() < size) set.insert(static_cast<NodeId>(rng.NextBounded(n)));
      for (NodeId v : set) collection.PushNode(v);
      collection.SealSet();
    }
    for (NodeId b = 1; b <= 3; ++b) {
      const MaxCoverageResult greedy = GreedyMaxCoverage(collection, b);
      const MaxCoverageResult exact = ExactMaxCoverage(collection, b);
      EXPECT_GE(greedy.covered_sets + 1e-9,
                GreedyCoverageRatio(b) * exact.covered_sets)
          << "instance " << instance << " b=" << b;
      EXPECT_LE(greedy.covered_sets, exact.covered_sets);
    }
  }
}

TEST(GreedyMaxCoverageTest, CandidateRestrictionHonored) {
  // Sets only mention nodes 1 and 2, but node 0 would win zero-gain ties.
  // With candidates {1, 2, 3}, node 0 must never be picked (regression for
  // TRIM-B selecting an active node as zero-gain filler).
  const RrCollection collection = FromSets(4, {{1}, {1}, {2}});
  const std::vector<NodeId> candidates = {1, 2, 3};
  const MaxCoverageResult result = GreedyMaxCoverage(collection, 3, &candidates);
  ASSERT_EQ(result.selected.size(), 3u);
  for (NodeId v : result.selected) {
    EXPECT_NE(v, 0u);
  }
  EXPECT_EQ(result.covered_sets, 3u);
}

TEST(GreedyMaxCoverageTest, NeverPicksTheSameNodeTwice) {
  // All gains collapse to zero after one pick; filler picks must be
  // distinct nodes, not node 0 repeated.
  const RrCollection collection = FromSets(5, {{2}, {2}});
  const MaxCoverageResult result = GreedyMaxCoverage(collection, 4);
  std::set<NodeId> unique(result.selected.begin(), result.selected.end());
  EXPECT_EQ(unique.size(), result.selected.size());
}

TEST(GreedyMaxCoverageTest, DuplicateCandidatesSelectedAtMostOnce) {
  // Same guard as LazyGreedyMaxCoverage: duplicates in `candidates` must
  // not inflate the pick pool (the eager path used to crash its
  // best != kInvalidNode check once every unique candidate was taken).
  const RrCollection collection = FromSets(6, {{1, 5}, {5}, {3}});
  const std::vector<NodeId> candidates = {5, 5, 3, 5};
  const MaxCoverageResult result = GreedyMaxCoverage(collection, 4, &candidates);
  EXPECT_EQ(result.selected.size(), 2u);
  std::set<NodeId> unique(result.selected.begin(), result.selected.end());
  EXPECT_EQ(unique.size(), result.selected.size());
  EXPECT_EQ(result.covered_sets, 3u);
}

TEST(GreedyCoverageRatioTest, KnownValues) {
  EXPECT_DOUBLE_EQ(GreedyCoverageRatio(1), 1.0);
  EXPECT_DOUBLE_EQ(GreedyCoverageRatio(2), 0.75);
  EXPECT_NEAR(GreedyCoverageRatio(4), 1.0 - std::pow(0.75, 4), 1e-12);
  // Approaches 1 - 1/e from above.
  EXPECT_GT(GreedyCoverageRatio(1000), 1.0 - 1.0 / std::exp(1.0));
  EXPECT_NEAR(GreedyCoverageRatio(1000), 1.0 - 1.0 / std::exp(1.0), 1e-3);
}

TEST(GreedyCoverageRatioTest, MonotoneDecreasingInB) {
  double previous = 1.1;
  for (NodeId b = 1; b <= 32; ++b) {
    const double rho = GreedyCoverageRatio(b);
    EXPECT_LT(rho, previous);
    previous = rho;
  }
}

}  // namespace
}  // namespace asti
