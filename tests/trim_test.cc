// Tests for core/trim.h: schedule constants against Algorithm 2's
// pseudocode, selection quality against the Monte-Carlo oracle, and the
// Example 2.3 behaviour (truncated spread picks v2/v3, not v1).

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/trim.h"
#include "diffusion/monte_carlo.h"
#include "graph/generators.h"
#include "util/bit_vector.h"

namespace asti {
namespace {

constexpr double kOneMinusInvE = 1.0 - 1.0 / 2.718281828459045;

ResidualView FullGraphView(const BitVector& active, const std::vector<NodeId>& inactive,
                           NodeId shortfall) {
  ResidualView view;
  view.active = &active;
  view.inactive_nodes = &inactive;
  view.shortfall = shortfall;
  return view;
}

TEST(TrimScheduleTest, MatchesAlgorithm2Lines1To5) {
  const NodeId ni = 1000;
  const NodeId eta_i = 50;
  const double eps = 0.5;
  const TrimSchedule schedule = ComputeTrimSchedule(ni, eta_i, eps);

  const double delta = eps / (100.0 * kOneMinusInvE * (1.0 - eps) * eta_i);
  EXPECT_NEAR(schedule.delta, delta, 1e-15);
  EXPECT_NEAR(schedule.eps_hat, 99.0 * eps / (100.0 - eps), 1e-15);
  const double root =
      std::sqrt(std::log(6.0 / delta)) + std::sqrt(std::log(1000.0) + std::log(6.0 / delta));
  const double theta_max = 2.0 * 1000.0 * root * root / (schedule.eps_hat * schedule.eps_hat);
  EXPECT_NEAR(schedule.theta_max, theta_max, 1e-6);
  EXPECT_EQ(schedule.theta_zero,
            static_cast<size_t>(std::ceil(theta_max * schedule.eps_hat *
                                          schedule.eps_hat / 1000.0)));
  EXPECT_EQ(schedule.max_iterations,
            static_cast<size_t>(std::ceil(std::log2(
                theta_max / static_cast<double>(schedule.theta_zero)))) + 1);
  EXPECT_NEAR(schedule.a1,
              std::log(3.0 * static_cast<double>(schedule.max_iterations) / delta) +
                  std::log(1000.0),
              1e-12);
  EXPECT_NEAR(schedule.a2,
              std::log(3.0 * static_cast<double>(schedule.max_iterations) / delta),
              1e-12);
}

TEST(TrimScheduleTest, ThetaZeroAtLeastOne) {
  const TrimSchedule schedule = ComputeTrimSchedule(4, 2, 0.5);
  EXPECT_GE(schedule.theta_zero, 1u);
  EXPECT_GE(schedule.max_iterations, 1u);
}

TEST(TrimTest, Example23SatisfiesApproximationGuarantee) {
  // Figure 2 graph with η = 2: expected truncated spreads are
  // v1: 1.75, v2: 2, v3: 2, v4: 1. Under the binary mRR estimator the
  // expectations become E[Γ̃(v1)] = 1.75, E[Γ̃(v2)] = 5/3, E[Γ̃(v4)] = 1,
  // so TRIM may legitimately return v1 — Theorem 3.3 only promises the
  // (1 − 1/e) bracket. What must hold: the pick is never v4 (its Γ̃ is far
  // lower) and Δ(pick) ≥ (1 − 1/e)(1 − ε)·Δ(v°) = 0.4425·2 = 0.885.
  auto graph = MakePaperFigure2Graph();
  ASSERT_TRUE(graph.ok());
  Trim trim(*graph, DiffusionModel::kIndependentCascade, TrimOptions{0.3});
  BitVector active(4);
  std::vector<NodeId> inactive = {0, 1, 2, 3};
  const ResidualView view = FullGraphView(active, inactive, 2);
  const double exact_truncated[4] = {1.75, 2.0, 2.0, 1.0};
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(900 + seed);
    const SelectionResult result = trim.SelectBatch(view, rng);
    ASSERT_EQ(result.seeds.size(), 1u);
    const NodeId chosen = result.seeds[0];
    EXPECT_NE(chosen, 3u) << "TRIM picked the clearly suboptimal v4";
    EXPECT_GE(exact_truncated[chosen], (1.0 - 1.0 / 2.718281828459045) * 0.7 * 2.0);
  }
}

TEST(TrimTest, EstimateWithinTheorem33Bracket) {
  auto graph = MakePaperFigure2Graph();
  ASSERT_TRUE(graph.ok());
  Trim trim(*graph, DiffusionModel::kIndependentCascade, TrimOptions{0.2});
  BitVector active(4);
  std::vector<NodeId> inactive = {0, 1, 2, 3};
  Rng rng(91);
  const SelectionResult result = trim.SelectBatch(FullGraphView(active, inactive, 2), rng);
  // Chosen node's true truncated spread is 2; the estimate must lie in
  // [(1-1/e)*2 - slack, 2 + slack].
  EXPECT_GE(result.estimated_marginal_gain, kOneMinusInvE * 2.0 - 0.25);
  EXPECT_LE(result.estimated_marginal_gain, 2.0 + 0.25);
  EXPECT_GT(result.num_samples, 0u);
  EXPECT_GE(result.iterations, 1u);
}

TEST(TrimTest, ApproximationHoldsOnRandomGraphs) {
  // On random graphs, compare TRIM's pick against the MC-evaluated best
  // node: Δ(v*) ≥ (1-1/e)(1-ε)·Δ(v°) should hold with generous slack.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng graph_rng(seed);
    auto graph = BuildWeightedGraph(MakeErdosRenyi(60, 300, graph_rng),
                                    WeightScheme::kWeightedCascade);
    ASSERT_TRUE(graph.ok());
    const NodeId eta = 12;
    Trim trim(*graph, DiffusionModel::kIndependentCascade, TrimOptions{0.4});
    BitVector active(60);
    std::vector<NodeId> inactive(60);
    std::iota(inactive.begin(), inactive.end(), 0);
    Rng rng(seed * 7 + 1);
    const SelectionResult result =
        trim.SelectBatch(FullGraphView(active, inactive, eta), rng);

    MonteCarloEstimator mc(*graph, DiffusionModel::kIndependentCascade);
    Rng mc_rng(seed * 13 + 5);
    const double chosen_gain =
        mc.EstimateTruncatedSpread({result.seeds[0]}, eta, 20000, mc_rng);
    double best_gain = 0.0;
    for (NodeId v = 0; v < 60; ++v) {
      best_gain =
          std::max(best_gain, mc.EstimateTruncatedSpread({v}, eta, 4000, mc_rng));
    }
    // (1-1/e)(1-0.4) = 0.379…; allow MC noise slack.
    EXPECT_GE(chosen_gain, 0.379 * best_gain - 0.5) << "seed " << seed;
  }
}

TEST(TrimTest, WorksOnResidualGraph) {
  // Path 0..5 with p=1. With {0,1} active and shortfall 2, the best
  // remaining node is 2 (activates 2,3,...). TRIM must pick node 2.
  auto graph = BuildWeightedGraph(MakePath(6), WeightScheme::kUniform, 1.0);
  ASSERT_TRUE(graph.ok());
  Trim trim(*graph, DiffusionModel::kIndependentCascade, TrimOptions{0.3});
  BitVector active(6);
  active.Set(0);
  active.Set(1);
  std::vector<NodeId> inactive = {2, 3, 4, 5};
  Rng rng(92);
  const SelectionResult result = trim.SelectBatch(FullGraphView(active, inactive, 2), rng);
  EXPECT_EQ(result.seeds[0], 2u);
}

TEST(TrimTest, LtModelSelectsSensibly) {
  // Star with WC weights under LT: center activates every leaf surely
  // (each leaf's only in-edge has p=1). TRIM must pick the center.
  auto graph = BuildWeightedGraph(MakeStar(8), WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  Trim trim(*graph, DiffusionModel::kLinearThreshold, TrimOptions{0.3});
  BitVector active(8);
  std::vector<NodeId> inactive(8);
  std::iota(inactive.begin(), inactive.end(), 0);
  Rng rng(93);
  const SelectionResult result = trim.SelectBatch(FullGraphView(active, inactive, 5), rng);
  EXPECT_EQ(result.seeds[0], 0u);
}

TEST(TrimTest, DeterministicGivenSeed) {
  auto graph = MakePaperFigure1Graph();
  ASSERT_TRUE(graph.ok());
  Trim trim(*graph, DiffusionModel::kIndependentCascade, TrimOptions{0.5});
  BitVector active(6);
  std::vector<NodeId> inactive = {0, 1, 2, 3, 4, 5};
  Rng rng1(94);
  Rng rng2(94);
  const SelectionResult a = trim.SelectBatch(FullGraphView(active, inactive, 4), rng1);
  Trim trim2(*graph, DiffusionModel::kIndependentCascade, TrimOptions{0.5});
  const SelectionResult b = trim2.SelectBatch(FullGraphView(active, inactive, 4), rng2);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.num_samples, b.num_samples);
}

}  // namespace
}  // namespace asti
