// Tests for sampling/: RootSizeSampler, RrCollection, RrSampler,
// MrrSampler. Statistical tests validate the unbiasedness of RR-sets
// (n·Pr[v ∈ R] = E[I(v)]) and Theorem 3.3's bracketing of the mRR
// estimator against Monte-Carlo ground truth.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "diffusion/monte_carlo.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "sampling/mrr_set.h"
#include "sampling/root_size.h"
#include "sampling/rr_collection.h"
#include "sampling/rr_set.h"

namespace asti {
namespace {

constexpr double kOneMinusInvE = 1.0 - 1.0 / 2.718281828459045;

std::vector<NodeId> AllNodes(NodeId n) {
  std::vector<NodeId> nodes(n);
  std::iota(nodes.begin(), nodes.end(), 0);
  return nodes;
}

// --- RootSizeSampler -------------------------------------------------------

TEST(RootSizeTest, IntegerRatioIsDeterministic) {
  RootSizeSampler sampler(100, 10);  // n/η = 10 exactly
  Rng rng(71);
  for (int t = 0; t < 100; ++t) EXPECT_EQ(sampler.Sample(rng), 10u);
  EXPECT_DOUBLE_EQ(sampler.ExpectedK(), 10.0);
}

TEST(RootSizeTest, FractionalRatioAveragesToExpectation) {
  RootSizeSampler sampler(10, 4);  // n/η = 2.5
  Rng rng(72);
  double total = 0.0;
  const int trials = 100000;
  for (int t = 0; t < trials; ++t) {
    const NodeId k = sampler.Sample(rng);
    EXPECT_TRUE(k == 2 || k == 3);
    total += k;
  }
  EXPECT_NEAR(total / trials, 2.5, 0.01);
}

TEST(RootSizeTest, ShortfallOneMeansAllRoots) {
  RootSizeSampler sampler(37, 1);
  Rng rng(73);
  for (int t = 0; t < 10; ++t) EXPECT_EQ(sampler.Sample(rng), 37u);
}

TEST(RootSizeTest, ShortfallEqualsPopulation) {
  RootSizeSampler sampler(12, 12);
  Rng rng(74);
  for (int t = 0; t < 10; ++t) EXPECT_EQ(sampler.Sample(rng), 1u);
}

TEST(RootSizeTest, FloorAndCeilAblationModes) {
  RootSizeSampler floor_sampler(10, 4, RootRounding::kFloor);
  RootSizeSampler ceil_sampler(10, 4, RootRounding::kCeil);
  Rng rng(75);
  for (int t = 0; t < 20; ++t) {
    EXPECT_EQ(floor_sampler.Sample(rng), 2u);
    EXPECT_EQ(ceil_sampler.Sample(rng), 3u);
  }
}

// --- RrCollection ----------------------------------------------------------

TEST(RrCollectionTest, CoverageTracksSets) {
  RrCollection collection(5);
  collection.PushNode(1);
  collection.PushNode(3);
  collection.SealSet();
  collection.PushNode(3);
  collection.SealSet();
  EXPECT_EQ(collection.NumSets(), 2u);
  EXPECT_EQ(collection.TotalEntries(), 3u);
  EXPECT_EQ(collection.Coverage(3), 2u);
  EXPECT_EQ(collection.Coverage(1), 1u);
  EXPECT_EQ(collection.Coverage(0), 0u);
  EXPECT_EQ(collection.ArgMaxCoverage(), 3u);
}

TEST(RrCollectionTest, SetContentsPreserved) {
  RrCollection collection(10);
  collection.PushNode(7);
  collection.PushNode(2);
  collection.PushNode(9);
  collection.SealSet();
  auto set = collection.Set(0);
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set[0], 7u);
  EXPECT_EQ(set[1], 2u);
  EXPECT_EQ(set[2], 9u);
}

TEST(RrCollectionTest, ClearResetsEverything) {
  RrCollection collection(4);
  collection.PushNode(0);
  collection.SealSet();
  collection.Clear();
  EXPECT_EQ(collection.NumSets(), 0u);
  EXPECT_EQ(collection.TotalEntries(), 0u);
  EXPECT_EQ(collection.Coverage(0), 0u);
}

TEST(RrCollectionTest, ArgMaxTieBreaksLowestId) {
  RrCollection collection(4);
  collection.PushNode(2);
  collection.SealSet();
  collection.PushNode(1);
  collection.SealSet();
  EXPECT_EQ(collection.ArgMaxCoverage(), 1u);
}

// --- RR-set unbiasedness ---------------------------------------------------

TEST(RrSamplerTest, SingletonCoverageMatchesSpread) {
  // n * Pr[v in R] ≈ E[I(v)] on the Figure 2 graph (E[I(v1)] = 2.75).
  auto graph = MakePaperFigure2Graph();
  ASSERT_TRUE(graph.ok());
  RrSampler sampler(*graph, DiffusionModel::kIndependentCascade);
  RrCollection collection(graph->NumNodes());
  Rng rng(76);
  const auto candidates = AllNodes(graph->NumNodes());
  const size_t samples = 200000;
  for (size_t i = 0; i < samples; ++i) {
    sampler.Generate(candidates, nullptr, collection, rng);
  }
  const double n = 4.0;
  auto estimate = [&](NodeId v) {
    return n * collection.Coverage(v) / static_cast<double>(samples);
  };
  EXPECT_NEAR(estimate(0), 2.75, 0.05);
  EXPECT_NEAR(estimate(1), 2.0, 0.05);
  EXPECT_NEAR(estimate(2), 2.0, 0.05);
  EXPECT_NEAR(estimate(3), 1.0, 0.05);
}

TEST(RrSamplerTest, ResidualSkipsActiveNodes) {
  auto graph = BuildWeightedGraph(MakePath(5), WeightScheme::kUniform, 1.0);
  ASSERT_TRUE(graph.ok());
  RrSampler sampler(*graph, DiffusionModel::kIndependentCascade);
  RrCollection collection(5);
  BitVector active(5);
  active.Set(2);  // severs the path
  std::vector<NodeId> candidates = {3, 4};
  Rng rng(77);
  for (int i = 0; i < 50; ++i) {
    sampler.Generate(candidates, &active, collection, rng);
  }
  EXPECT_EQ(collection.Coverage(2), 0u);
  EXPECT_EQ(collection.Coverage(0), 0u);
  EXPECT_EQ(collection.Coverage(1), 0u);
  EXPECT_GT(collection.Coverage(3), 0u);
}

TEST(RrSamplerTest, LtSetsArePaths) {
  // In LT, each node keeps <= 1 in-edge, so an RR-set's size cannot exceed
  // the longest simple path + 1, and every set is a chain of predecessors.
  Rng graph_rng(78);
  auto graph = BuildWeightedGraph(MakeErdosRenyi(40, 200, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  RrSampler sampler(*graph, DiffusionModel::kLinearThreshold);
  RrCollection collection(40);
  const auto candidates = AllNodes(40);
  Rng rng(79);
  for (int i = 0; i < 500; ++i) {
    sampler.Generate(candidates, nullptr, collection, rng);
  }
  for (size_t s = 0; s < collection.NumSets(); ++s) {
    EXPECT_LE(collection.Set(s).size(), 40u);
  }
}

TEST(RrSamplerTest, LtSingletonCoverageMatchesMonteCarlo) {
  Rng graph_rng(80);
  auto graph = BuildWeightedGraph(MakeErdosRenyi(30, 120, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  const NodeId probe = 3;
  MonteCarloEstimator mc(*graph, DiffusionModel::kLinearThreshold);
  Rng mc_rng(81);
  const double truth = mc.EstimateSpread({probe}, 60000, mc_rng);

  RrSampler sampler(*graph, DiffusionModel::kLinearThreshold);
  RrCollection collection(30);
  const auto candidates = AllNodes(30);
  Rng rng(82);
  const size_t samples = 120000;
  for (size_t i = 0; i < samples; ++i) {
    sampler.Generate(candidates, nullptr, collection, rng);
  }
  const double estimate =
      30.0 * collection.Coverage(probe) / static_cast<double>(samples);
  EXPECT_NEAR(estimate, truth, 0.12);
}

// --- mRR-sets: root counts, dedup, Theorem 3.3 -----------------------------

TEST(MrrSamplerTest, SetsContainDistinctNodes) {
  Rng graph_rng(83);
  auto graph = BuildWeightedGraph(MakeErdosRenyi(50, 300, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  MrrSampler sampler(*graph, DiffusionModel::kIndependentCascade);
  RrCollection collection(50);
  const auto candidates = AllNodes(50);
  Rng rng(84);
  for (int i = 0; i < 200; ++i) {
    sampler.Generate(candidates, nullptr, 5, collection, rng);
  }
  for (size_t s = 0; s < collection.NumSets(); ++s) {
    auto set = collection.Set(s);
    std::set<NodeId> unique(set.begin(), set.end());
    EXPECT_EQ(unique.size(), set.size());
    EXPECT_GE(set.size(), 5u);  // contains at least the roots
  }
}

TEST(MrrSamplerTest, LargeRootCountUsesFisherYatesPath) {
  auto graph = BuildWeightedGraph(MakePath(20), WeightScheme::kUniform, 0.5);
  ASSERT_TRUE(graph.ok());
  MrrSampler sampler(*graph, DiffusionModel::kIndependentCascade);
  RrCollection collection(20);
  const auto candidates = AllNodes(20);
  Rng rng(85);
  // num_roots = 20 (> population/2) exercises the Fisher-Yates branch.
  sampler.Generate(candidates, nullptr, 20, collection, rng);
  auto set = collection.Set(0);
  std::set<NodeId> unique(set.begin(), set.end());
  EXPECT_EQ(unique.size(), 20u);  // all nodes are roots
}

TEST(MrrSamplerTest, RootsUniformOverCandidates) {
  // With no edges, an mRR-set is exactly its roots; each node should root
  // k/n of the time.
  GraphBuilder builder(10);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  MrrSampler sampler(*graph, DiffusionModel::kIndependentCascade);
  RrCollection collection(10);
  const auto candidates = AllNodes(10);
  Rng rng(86);
  const size_t samples = 30000;
  for (size_t i = 0; i < samples; ++i) {
    sampler.Generate(candidates, nullptr, 3, collection, rng);
  }
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_NEAR(static_cast<double>(collection.Coverage(v)) / samples, 0.3, 0.02);
  }
}

TEST(MrrSamplerTest, Theorem33BracketsOnFigure2) {
  // Empirical check of (1-1/e)·E[Γ(v)] ≤ E[Γ̃(v)] ≤ E[Γ(v)] with η = 2 on
  // the Figure 2 graph, where E[Γ] is exact: Γ(v1)=1.75, Γ(v2)=2.
  auto graph = MakePaperFigure2Graph();
  ASSERT_TRUE(graph.ok());
  const NodeId n = 4;
  const NodeId eta = 2;
  MrrSampler sampler(*graph, DiffusionModel::kIndependentCascade);
  RootSizeSampler root_size(n, eta);
  RrCollection collection(n);
  const auto candidates = AllNodes(n);
  Rng rng(87);
  const size_t samples = 300000;
  for (size_t i = 0; i < samples; ++i) {
    sampler.Generate(candidates, nullptr, root_size.Sample(rng), collection, rng);
  }
  auto gamma_tilde = [&](NodeId v) {
    return static_cast<double>(eta) * collection.Coverage(v) /
           static_cast<double>(samples);
  };
  const double exact_gamma_v1 = 1.75;
  const double exact_gamma_v2 = 2.0;
  EXPECT_GE(gamma_tilde(0), kOneMinusInvE * exact_gamma_v1 - 0.02);
  EXPECT_LE(gamma_tilde(0), exact_gamma_v1 + 0.02);
  EXPECT_GE(gamma_tilde(1), kOneMinusInvE * exact_gamma_v2 - 0.02);
  EXPECT_LE(gamma_tilde(1), exact_gamma_v2 + 0.02);
}

TEST(MrrSamplerTest, Theorem33BracketsOnRandomGraph) {
  Rng graph_rng(88);
  auto graph = BuildWeightedGraph(MakeErdosRenyi(40, 160, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  const NodeId n = 40;
  const NodeId eta = 7;
  // Ground truth by Monte Carlo.
  MonteCarloEstimator mc(*graph, DiffusionModel::kIndependentCascade);
  Rng mc_rng(89);
  const NodeId probe = 11;
  const double gamma = mc.EstimateTruncatedSpread({probe}, eta, 80000, mc_rng);

  MrrSampler sampler(*graph, DiffusionModel::kIndependentCascade);
  RootSizeSampler root_size(n, eta);
  RrCollection collection(n);
  const auto candidates = AllNodes(n);
  Rng rng(90);
  const size_t samples = 150000;
  for (size_t i = 0; i < samples; ++i) {
    sampler.Generate(candidates, nullptr, root_size.Sample(rng), collection, rng);
  }
  const double gamma_tilde = static_cast<double>(eta) * collection.Coverage(probe) /
                             static_cast<double>(samples);
  EXPECT_GE(gamma_tilde, kOneMinusInvE * gamma - 0.1);
  EXPECT_LE(gamma_tilde, gamma + 0.1);
}

TEST(MrrSamplerTest, ResidualSetsAvoidActiveNodes) {
  Rng graph_rng(91);
  auto graph = BuildWeightedGraph(MakeErdosRenyi(30, 200, graph_rng),
                                  WeightScheme::kWeightedCascade);
  ASSERT_TRUE(graph.ok());
  BitVector active(30);
  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < 30; ++v) {
    if (v % 3 == 0) {
      active.Set(v);
    } else {
      candidates.push_back(v);
    }
  }
  MrrSampler sampler(*graph, DiffusionModel::kIndependentCascade);
  RrCollection collection(30);
  Rng rng(92);
  for (int i = 0; i < 300; ++i) {
    sampler.Generate(candidates, &active, 4, collection, rng);
  }
  for (NodeId v = 0; v < 30; v += 3) EXPECT_EQ(collection.Coverage(v), 0u);
}

}  // namespace
}  // namespace asti
