// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// library-wide invariants checked across models × graph families × η.

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <tuple>

#include "core/asti.h"
#include "core/trim.h"
#include "core/trim_b.h"
#include "diffusion/world.h"
#include "graph/generators.h"
#include "sampling/mrr_set.h"
#include "sampling/root_size.h"

namespace asti {
namespace {

enum class GraphFamily { kErdosRenyi, kBarabasiAlbert, kChungLu, kStar, kPath };

const char* FamilyName(GraphFamily family) {
  switch (family) {
    case GraphFamily::kErdosRenyi:
      return "ER";
    case GraphFamily::kBarabasiAlbert:
      return "BA";
    case GraphFamily::kChungLu:
      return "CL";
    case GraphFamily::kStar:
      return "Star";
    case GraphFamily::kPath:
      return "Path";
  }
  return "?";
}

DirectedGraph MakeFamilyGraph(GraphFamily family, NodeId n, uint64_t seed) {
  Rng rng(seed);
  EdgeSkeleton skeleton;
  switch (family) {
    case GraphFamily::kErdosRenyi:
      skeleton = MakeErdosRenyi(n, 5 * n, rng);
      break;
    case GraphFamily::kBarabasiAlbert:
      skeleton = MakeBarabasiAlbert(n, 2, rng);
      break;
    case GraphFamily::kChungLu:
      skeleton = MakeChungLu(n, 4 * n, 2.2, rng);
      break;
    case GraphFamily::kStar:
      skeleton = MakeStar(n);
      break;
    case GraphFamily::kPath:
      skeleton = MakePath(n);
      break;
  }
  auto graph = BuildWeightedGraph(std::move(skeleton), WeightScheme::kWeightedCascade);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

// --- ASTI end-to-end invariants across the grid ----------------------------

using AstiParam = std::tuple<DiffusionModel, GraphFamily, double /*eta fraction*/>;

class AstiPropertyTest : public ::testing::TestWithParam<AstiParam> {};

TEST_P(AstiPropertyTest, AdaptiveRunInvariants) {
  const auto [model, family, eta_fraction] = GetParam();
  const NodeId n = 150;
  const DirectedGraph graph = MakeFamilyGraph(family, n, 0xabcd);
  const NodeId eta = std::max<NodeId>(1, static_cast<NodeId>(n * eta_fraction));

  Rng world_rng(0x1234);
  AdaptiveWorld world(graph, model, eta, world_rng);
  Trim trim(graph, model, TrimOptions{0.5});
  Rng rng(0x5678);
  const AdaptiveRunTrace trace = RunAdaptivePolicy(world, trim, rng);

  // (1) The target is always reached — the defining adaptive guarantee.
  EXPECT_TRUE(trace.target_reached);
  EXPECT_GE(trace.total_activated, eta);
  // (2) Seeds are distinct.
  std::set<NodeId> unique(trace.seeds.begin(), trace.seeds.end());
  EXPECT_EQ(unique.size(), trace.seeds.size());
  // (3) No more rounds than η (each round activates >= 1 node).
  EXPECT_LE(trace.rounds.size(), static_cast<size_t>(eta));
  // (4) Shortfall bookkeeping telescopes.
  NodeId shortfall = eta;
  for (const RoundRecord& record : trace.rounds) {
    EXPECT_EQ(record.shortfall_before, shortfall);
    shortfall -= record.truncated_gain;
  }
  EXPECT_EQ(shortfall, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsFamiliesEtas, AstiPropertyTest,
    ::testing::Combine(::testing::Values(DiffusionModel::kIndependentCascade,
                                         DiffusionModel::kLinearThreshold),
                       ::testing::Values(GraphFamily::kErdosRenyi,
                                         GraphFamily::kBarabasiAlbert,
                                         GraphFamily::kChungLu, GraphFamily::kStar,
                                         GraphFamily::kPath),
                       ::testing::Values(0.05, 0.2, 0.5)),
    [](const ::testing::TestParamInfo<AstiParam>& info) {
      return std::string(DiffusionModelName(std::get<0>(info.param))) + "_" +
             FamilyName(std::get<1>(info.param)) + "_" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 100));
    });

// --- TRIM-B batch-size sweep ------------------------------------------------

class BatchPropertyTest : public ::testing::TestWithParam<NodeId> {};

TEST_P(BatchPropertyTest, BatchRunsAndReachesTarget) {
  const NodeId batch = GetParam();
  const DirectedGraph graph =
      MakeFamilyGraph(GraphFamily::kBarabasiAlbert, 200, 0x77);
  Rng world_rng(0x88);
  AdaptiveWorld world(graph, DiffusionModel::kIndependentCascade, 60, world_rng);
  TrimB trim_b(graph, DiffusionModel::kIndependentCascade, TrimBOptions{0.5, batch});
  Rng rng(0x99);
  const AdaptiveRunTrace trace = RunAdaptivePolicy(world, trim_b, rng);
  EXPECT_TRUE(trace.target_reached);
  // Each round selects exactly min(b, remaining) seeds.
  for (const RoundRecord& record : trace.rounds) {
    EXPECT_LE(record.seeds.size(), static_cast<size_t>(batch));
    EXPECT_GE(record.seeds.size(), 1u);
  }
  EXPECT_LE(trace.rounds.size(), static_cast<size_t>(60 / batch) + 60);
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16),
                         [](const ::testing::TestParamInfo<NodeId>& info) {
                           // append() rather than operator+: GCC 12's
                           // -Wrestrict false-positives on the char* +
                           // to_string temporary under -O2 (PR 105651).
                           std::string name = "b";
                           name.append(std::to_string(info.param));
                           return name;
                         });

// --- mRR sampling invariants across residual states -------------------------

using MrrParam = std::tuple<DiffusionModel, double /*active fraction*/>;

class MrrPropertyTest : public ::testing::TestWithParam<MrrParam> {};

TEST_P(MrrPropertyTest, SamplesRespectResidualState) {
  const auto [model, active_fraction] = GetParam();
  const DirectedGraph graph = MakeFamilyGraph(GraphFamily::kErdosRenyi, 120, 0xaa);
  BitVector active(120);
  std::vector<NodeId> inactive;
  Rng pick_rng(0xbb);
  for (NodeId v = 0; v < 120; ++v) {
    if (pick_rng.NextDouble() < active_fraction) {
      active.Set(v);
    } else {
      inactive.push_back(v);
    }
  }
  ASSERT_GE(inactive.size(), 10u);
  const NodeId ni = static_cast<NodeId>(inactive.size());
  const NodeId eta_i = std::max<NodeId>(1, ni / 5);

  MrrSampler sampler(graph, model);
  RootSizeSampler root_size(ni, eta_i);
  RrCollection collection(120);
  Rng rng(0xcc);
  for (int i = 0; i < 400; ++i) {
    sampler.Generate(inactive, &active, root_size.Sample(rng), collection, rng);
  }
  // (1) No active node ever appears.
  for (NodeId v = 0; v < 120; ++v) {
    if (active.Get(v)) {
      EXPECT_EQ(collection.Coverage(v), 0u);
    }
  }
  // (2) Every set has >= floor(n_i/η_i) distinct entries (the roots) and no
  //     duplicates.
  const NodeId k_floor = ni / eta_i;
  for (size_t s = 0; s < collection.NumSets(); ++s) {
    auto set = collection.Set(s);
    std::set<NodeId> unique(set.begin(), set.end());
    EXPECT_EQ(unique.size(), set.size());
    EXPECT_GE(set.size(), static_cast<size_t>(k_floor));
  }
  // (3) Total coverage equals total entries.
  size_t coverage_total = 0;
  for (NodeId v = 0; v < 120; ++v) coverage_total += collection.Coverage(v);
  EXPECT_EQ(coverage_total, collection.TotalEntries());
}

INSTANTIATE_TEST_SUITE_P(
    ModelsActiveFractions, MrrPropertyTest,
    ::testing::Combine(::testing::Values(DiffusionModel::kIndependentCascade,
                                         DiffusionModel::kLinearThreshold),
                       ::testing::Values(0.0, 0.3, 0.7)),
    [](const ::testing::TestParamInfo<MrrParam>& info) {
      return std::string(DiffusionModelName(std::get<0>(info.param))) + "_active" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

// --- Schedule monotonicity sweeps -------------------------------------------

class ScheduleParamTest
    : public ::testing::TestWithParam<std::tuple<NodeId /*ni*/, NodeId /*eta_i*/>> {};

TEST_P(ScheduleParamTest, TrimScheduleSane) {
  const auto [ni, eta_i] = GetParam();
  if (eta_i > ni) GTEST_SKIP();
  const TrimSchedule schedule = ComputeTrimSchedule(ni, eta_i, 0.5);
  EXPECT_GT(schedule.delta, 0.0);
  EXPECT_LT(schedule.delta, 1.0);
  EXPECT_GT(schedule.eps_hat, 0.0);
  EXPECT_LT(schedule.eps_hat, 1.0);
  EXPECT_GE(schedule.theta_zero, 1u);
  EXPECT_GE(schedule.theta_max, static_cast<double>(schedule.theta_zero));
  EXPECT_GE(schedule.max_iterations, 1u);
  EXPECT_GT(schedule.a1, schedule.a2);  // a1 carries the extra ln n_i
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScheduleParamTest,
    ::testing::Combine(::testing::Values<NodeId>(10, 100, 10000, 1000000),
                       ::testing::Values<NodeId>(1, 2, 10, 5000)),
    [](const ::testing::TestParamInfo<std::tuple<NodeId, NodeId>>& info) {
      std::string name = "n";  // append(): see the Batches generator above
      name.append(std::to_string(std::get<0>(info.param)));
      name.append("_eta");
      name.append(std::to_string(std::get<1>(info.param)));
      return name;
    });

}  // namespace
}  // namespace asti
