// Tests for the shared sampler cache (src/sampling/shared_collection.h,
// src/sampling/sampler_cache.h): sealed-prefix publication, view pinning,
// under-delivery discard, and the certified-reuse determinism contract —
// a view of the first P sets is bit-identical to fresh sampling no matter
// which requests grew the collection, at what batch sizes, on how many
// threads, or how readers and extenders interleave. The concurrency cases
// (racing readers + extenders, swap-mid-extend, retire-with-live-view)
// are in the CI TSAN job's target list.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/graph_catalog.h"
#include "graph/generators.h"
#include "parallel/thread_pool.h"
#include "sampling/sampler_cache.h"
#include "sampling/shared_collection.h"
#include "util/cancellation.h"
#include "util/rng.h"

namespace asti {
namespace {

// Content fingerprint of the first `prefix` sets of a view.
std::string Fingerprint(const CollectionView& view, size_t prefix) {
  std::ostringstream out;
  for (size_t i = 0; i < prefix; ++i) {
    for (NodeId node : view.Set(i)) out << node << ',';
    out << ';';
  }
  return out.str();
}

DirectedGraph TestGraph(uint64_t seed = 401, NodeId nodes = 150) {
  Rng rng(seed);
  auto graph =
      BuildWeightedGraph(MakeBarabasiAlbert(nodes, 2, rng), WeightScheme::kWeightedCascade);
  ASM_CHECK(graph.ok());
  return std::move(graph).value();
}

// Appends `count` single-node sets whose content encodes the global index,
// so prefix reads can be checked against a closed form.
void GenerateIndexMarkers(size_t first, size_t count, RrCollection& staging,
                          NodeId num_nodes) {
  for (size_t i = 0; i < count; ++i) {
    staging.PushNode(static_cast<NodeId>((first + i) % num_nodes));
    staging.SealSet();
  }
}

// --- CollectionView over owned collections ---------------------------------

TEST(CollectionViewTest, BorrowedViewMirrorsOwnedCollection) {
  RrCollection collection(10);
  for (NodeId v = 0; v < 6; ++v) {
    collection.PushNode(v);
    collection.PushNode((v + 1) % 10);
    collection.SealSet();
  }
  const CollectionView view = collection;  // implicit borrow
  EXPECT_EQ(view.NumSets(), collection.NumSets());
  EXPECT_EQ(view.TotalEntries(), collection.TotalEntries());
  EXPECT_EQ(view.num_nodes(), collection.num_nodes());
  for (size_t i = 0; i < collection.NumSets(); ++i) {
    ASSERT_EQ(view.Set(i).size(), collection.Set(i).size());
    EXPECT_TRUE(std::equal(view.Set(i).begin(), view.Set(i).end(),
                           collection.Set(i).begin()));
  }
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_EQ(view.Coverage(v), collection.Coverage(v));
  }
}

// --- SharedRrCollection sealed-prefix protocol ------------------------------

TEST(SharedRrCollectionTest, PrefixesAreExactAndCoverageMatchesReplay) {
  constexpr NodeId kNodes = 25;
  SharedRrCollection shared(kNodes);
  ASSERT_TRUE(shared.ExtendTo(10, [&](size_t first, size_t count, RrCollection& staging) {
    GenerateIndexMarkers(first, count, staging, kNodes);
  }));
  ASSERT_TRUE(shared.ExtendTo(37, [&](size_t first, size_t count, RrCollection& staging) {
    GenerateIndexMarkers(first, count, staging, kNodes);
  }));
  EXPECT_EQ(shared.SealedSets(), 37u);

  // Boundary prefix (10), intra-chunk prefix (23), and the full prefix all
  // read the closed-form content with exact per-node coverage.
  for (size_t prefix : {0u, 10u, 23u, 37u}) {
    const CollectionView view = shared.Prefix(prefix);
    ASSERT_EQ(view.NumSets(), prefix);
    std::vector<uint32_t> expected(kNodes, 0);
    for (size_t i = 0; i < prefix; ++i) {
      ASSERT_EQ(view.Set(i).size(), 1u) << "prefix=" << prefix << " i=" << i;
      EXPECT_EQ(view.Set(i)[0], static_cast<NodeId>(i % kNodes));
      ++expected[i % kNodes];
    }
    for (NodeId v = 0; v < kNodes; ++v) {
      EXPECT_EQ(view.Coverage(v), expected[v]) << "prefix=" << prefix << " v=" << v;
    }
  }
}

TEST(SharedRrCollectionTest, LiveViewsSurviveFurtherGrowth) {
  constexpr NodeId kNodes = 11;
  SharedRrCollection shared(kNodes);
  ASSERT_TRUE(shared.ExtendTo(5, [&](size_t first, size_t count, RrCollection& staging) {
    GenerateIndexMarkers(first, count, staging, kNodes);
  }));
  const CollectionView early = shared.Prefix(5);
  const std::string before = Fingerprint(early, 5);
  for (size_t target = 20; target <= 200; target *= 2) {
    ASSERT_TRUE(
        shared.ExtendTo(target, [&](size_t first, size_t count, RrCollection& staging) {
          GenerateIndexMarkers(first, count, staging, kNodes);
        }));
  }
  EXPECT_EQ(Fingerprint(early, 5), before);  // growth never moved the storage
  EXPECT_EQ(Fingerprint(shared.Prefix(5), 5), before);
}

TEST(SharedRrCollectionTest, UnderDeliveryIsDiscardedWhole) {
  constexpr NodeId kNodes = 9;
  SharedRrCollection shared(kNodes);
  ASSERT_TRUE(shared.ExtendTo(4, [&](size_t first, size_t count, RrCollection& staging) {
    GenerateIndexMarkers(first, count, staging, kNodes);
  }));
  // A cancelled extension delivers fewer sets than asked: nothing of the
  // partial batch may be published (index-keyed determinism would break).
  EXPECT_FALSE(shared.ExtendTo(100, [&](size_t first, size_t count, RrCollection& staging) {
    GenerateIndexMarkers(first, count / 2, staging, kNodes);
  }));
  EXPECT_EQ(shared.SealedSets(), 4u);
  // The next full delivery extends cleanly at the same indices.
  ASSERT_TRUE(shared.ExtendTo(100, [&](size_t first, size_t count, RrCollection& staging) {
    EXPECT_EQ(first, 4u);
    GenerateIndexMarkers(first, count, staging, kNodes);
  }));
  EXPECT_EQ(shared.SealedSets(), 100u);
  EXPECT_EQ(shared.Prefix(100).Set(4)[0], static_cast<NodeId>(4 % kNodes));
}

// --- SamplerCache determinism ----------------------------------------------

TEST(SamplerCacheTest, PrefixContentIsIndependentOfAcquisitionHistory) {
  const DirectedGraph graph = TestGraph();
  const SamplerCacheKey key = SamplerCacheKey::Mrr(
      DiffusionModel::kIndependentCascade, 20, RootRounding::kRandomized);

  // Cache A grows in many small steps, cache B in one jump.
  SamplerCache stepped(graph);
  for (size_t target : {7u, 30u, 64u, 200u}) {
    stepped.Acquire(key, target, nullptr, nullptr, nullptr);
  }
  SamplerCache direct(graph);
  const CollectionView from_direct = direct.Acquire(key, 200, nullptr, nullptr, nullptr);
  const CollectionView from_stepped = stepped.Acquire(key, 200, nullptr, nullptr, nullptr);
  ASSERT_EQ(from_direct.NumSets(), 200u);
  ASSERT_EQ(from_stepped.NumSets(), 200u);
  EXPECT_EQ(Fingerprint(from_stepped, 200), Fingerprint(from_direct, 200));
}

TEST(SamplerCacheTest, PoolAndSequentialExtensionsAreBitIdentical) {
  const DirectedGraph graph = TestGraph();
  for (const SamplerCacheKey& key :
       {SamplerCacheKey::Rr(DiffusionModel::kIndependentCascade),
        SamplerCacheKey::Rr(DiffusionModel::kLinearThreshold),
        SamplerCacheKey::Mrr(DiffusionModel::kIndependentCascade, 12,
                             RootRounding::kRandomized)}) {
    SamplerCache sequential(graph);
    const std::string reference =
        Fingerprint(sequential.Acquire(key, 150, nullptr, nullptr, nullptr), 150);
    for (size_t threads : {2u, 4u}) {
      ThreadPool pool(threads);
      SamplerCache pooled(graph);
      const CollectionView view = pooled.Acquire(key, 150, &pool, nullptr, nullptr);
      ASSERT_EQ(view.NumSets(), 150u);
      EXPECT_EQ(Fingerprint(view, 150), reference) << "threads=" << threads;
    }
  }
}

TEST(SamplerCacheTest, StatsDistinguishMissExtensionAndHit) {
  const DirectedGraph graph = TestGraph();
  const SamplerCacheKey key = SamplerCacheKey::Rr(DiffusionModel::kIndependentCascade);
  SamplerCache cache(graph);
  cache.Acquire(key, 50, nullptr, nullptr, nullptr);  // miss (empty entry)
  cache.Acquire(key, 80, nullptr, nullptr, nullptr);  // extension
  cache.Acquire(key, 30, nullptr, nullptr, nullptr);  // hit (sealed prefix)
  const SamplerCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.extensions, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.sets_extended, 80u);
  EXPECT_EQ(stats.sets_reused, 50u + 30u);  // extension reused 50, hit 30
  EXPECT_GT(cache.TotalBytes(), 0u);
}

TEST(SamplerCacheTest, PreFiredCancellationYieldsOnlySealedSets) {
  const DirectedGraph graph = TestGraph();
  const SamplerCacheKey key = SamplerCacheKey::Rr(DiffusionModel::kIndependentCascade);
  SamplerCache cache(graph);
  cache.Acquire(key, 25, nullptr, nullptr, nullptr);

  CancelToken token;
  token.Cancel();
  const CancelScope fired(&token, CancelScope::kNoDeadline);
  const CollectionView view = cache.Acquire(key, 500, nullptr, &fired, nullptr);
  // The extension was abandoned: the caller sees a short view (its signal
  // to unwind) and the sealed prefix did not grow.
  EXPECT_LT(view.NumSets(), 500u);
  const SamplerCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.sets_extended, 25u);
}

// --- Concurrency (exercised under TSAN in CI) -------------------------------

// Racing readers and extenders on one entry: every view any thread ever
// observes must be a prefix of the same key-derived stream.
TEST(SamplerCacheTest, ConcurrentReadersAndExtendersSeeOneStream) {
  const DirectedGraph graph = TestGraph(402, 120);
  const SamplerCacheKey key = SamplerCacheKey::Mrr(
      DiffusionModel::kIndependentCascade, 15, RootRounding::kRandomized);

  // Reference stream from an isolated cache.
  constexpr size_t kMaxSets = 240;
  SamplerCache reference(graph);
  const std::string expected =
      Fingerprint(reference.Acquire(key, kMaxSets, nullptr, nullptr, nullptr), kMaxSets);

  SamplerCache cache(graph);
  ThreadPool pool(2);
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  // Two extenders racing up the ladder, two readers sampling prefixes.
  for (size_t worker = 0; worker < 2; ++worker) {
    threads.emplace_back([&cache, &key, &pool, &expected, &mismatch] {
      for (size_t target = 15; target <= kMaxSets; target *= 2) {
        const CollectionView view =
            cache.Acquire(key, target, &pool, nullptr, nullptr);
        if (view.NumSets() != target ||
            Fingerprint(view, target) != expected.substr(0, Fingerprint(view, target).size())) {
          mismatch.store(true);
        }
      }
    });
  }
  for (size_t reader = 0; reader < 2; ++reader) {
    threads.emplace_back([&cache, &key, &expected, &mismatch] {
      for (size_t round = 0; round < 40; ++round) {
        const size_t target = 5 + (round % 13);
        const CollectionView view =
            cache.Acquire(key, target, nullptr, nullptr, nullptr);
        const std::string got = Fingerprint(view, target);
        if (view.NumSets() != target || got != expected.substr(0, got.size())) {
          mismatch.store(true);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(Fingerprint(cache.Acquire(key, kMaxSets, nullptr, nullptr, nullptr), kMaxSets),
            expected);
}

// A catalog Swap while an extension is in flight on the old epoch's cache:
// the old snapshot stays pinned by its GraphRef, the extension completes
// on it, and a fresh cache for the new epoch is fully independent.
TEST(SamplerCacheTest, SwapMidExtendLeavesOldEpochIntact) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Register("tenant", TestGraph(403)).ok());
  auto old_ref = catalog.Get("tenant");
  ASSERT_TRUE(old_ref.ok());

  const SamplerCacheKey key = SamplerCacheKey::Rr(DiffusionModel::kIndependentCascade);
  SamplerCache old_cache(old_ref->graph());
  const std::string expected = [&] {
    SamplerCache isolated(old_ref->graph());
    return Fingerprint(isolated.Acquire(key, 200, nullptr, nullptr, nullptr), 200);
  }();

  std::thread extender([&old_cache, &key] {
    for (size_t target = 25; target <= 200; target *= 2) {
      old_cache.Acquire(key, target, nullptr, nullptr, nullptr);
    }
  });
  ASSERT_TRUE(catalog.Swap("tenant", TestGraph(404, 90)).ok());  // mid-extend
  auto new_ref = catalog.Get("tenant");
  ASSERT_TRUE(new_ref.ok());
  EXPECT_EQ(new_ref->epoch(), 2u);
  SamplerCache new_cache(new_ref->graph());  // the engine's fresh GraphState
  const CollectionView new_view = new_cache.Acquire(key, 40, nullptr, nullptr, nullptr);
  extender.join();

  EXPECT_EQ(Fingerprint(old_cache.Acquire(key, 200, nullptr, nullptr, nullptr), 200),
            expected);
  // New-epoch sets are sampled on the new (smaller) snapshot — a different
  // stream entirely, proving no state leaked across the swap.
  EXPECT_EQ(new_view.NumSets(), 40u);
  EXPECT_NE(Fingerprint(new_view, 40), expected.substr(0, Fingerprint(new_view, 40).size()));
}

// Retiring the graph — and destroying the cache itself — must not
// invalidate a live view: views pin the chunks they span.
TEST(SamplerCacheTest, RetireWithLiveViewKeepsTheViewReadable) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Register("tenant", TestGraph(405)).ok());

  CollectionView survivor;
  std::string expected;
  {
    auto ref = catalog.Get("tenant");
    ASSERT_TRUE(ref.ok());
    auto cache = std::make_unique<SamplerCache>(ref->graph());
    const SamplerCacheKey key = SamplerCacheKey::Rr(DiffusionModel::kLinearThreshold);
    survivor = cache->Acquire(key, 60, nullptr, nullptr, nullptr);
    expected = Fingerprint(survivor, 60);
    ASSERT_TRUE(catalog.Retire("tenant").ok());  // name gone from the catalog
    cache.reset();  // the engine's GraphState died with in-flight work done
  }  // ref released: the snapshot pin is gone too
  ASSERT_FALSE(catalog.Get("tenant").ok());
  ASSERT_EQ(survivor.NumSets(), 60u);
  EXPECT_EQ(Fingerprint(survivor, 60), expected);
  uint32_t total_coverage = 0;
  for (NodeId v = 0; v < survivor.num_nodes(); ++v) total_coverage += survivor.Coverage(v);
  EXPECT_GT(total_coverage, 0u);
}

// --- Byte-budget LRU eviction -----------------------------------------------

// A budget too small for two entries evicts the least-recently-acquired
// one; the entry just served always survives (one working set fits), and
// the re-created entry regenerates bit-identical sets because streams
// derive from the cache key, never from acquisition history.
TEST(SamplerCacheTest, ByteBudgetEvictsLruAndRegeneratesIdentically) {
  const DirectedGraph graph = TestGraph();
  const SamplerCacheKey ic = SamplerCacheKey::Rr(DiffusionModel::kIndependentCascade);
  const SamplerCacheKey lt = SamplerCacheKey::Rr(DiffusionModel::kLinearThreshold);

  SamplerCache unlimited(graph);
  const std::string ic_expected =
      Fingerprint(unlimited.Acquire(ic, 120, nullptr, nullptr, nullptr), 120);
  const std::string lt_expected =
      Fingerprint(unlimited.Acquire(lt, 120, nullptr, nullptr, nullptr), 120);
  EXPECT_EQ(unlimited.Stats().evictions, 0u);

  SamplerCache cache(graph, nullptr, nullptr, /*byte_budget=*/1);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(Fingerprint(cache.Acquire(ic, 120, nullptr, nullptr, nullptr), 120),
              ic_expected);
    EXPECT_EQ(Fingerprint(cache.Acquire(lt, 120, nullptr, nullptr, nullptr), 120),
              lt_expected);
  }
  const SamplerCacheStats stats = cache.Stats();
  // Every Acquire after the first evicted the other entry, so every
  // Acquire was a fresh fill — never an extension or hit.
  EXPECT_EQ(stats.evictions, 5u);
  EXPECT_EQ(stats.misses, 6u);
  EXPECT_EQ(stats.hits, 0u);
  // At most the just-served entry remains resident.
  EXPECT_LE(cache.TotalBytes(), unlimited.TotalBytes());
}

// A budget large enough for the working set never evicts, and a view
// handed out before an eviction stays readable afterwards (chunk pins are
// independent of the cache map).
TEST(SamplerCacheTest, BudgetRespectsWorkingSetAndLiveViewsSurviveEviction) {
  const DirectedGraph graph = TestGraph();
  const SamplerCacheKey ic = SamplerCacheKey::Rr(DiffusionModel::kIndependentCascade);
  const SamplerCacheKey lt = SamplerCacheKey::Rr(DiffusionModel::kLinearThreshold);

  SamplerCache roomy(graph, nullptr, nullptr, /*byte_budget=*/1u << 30);
  roomy.Acquire(ic, 80, nullptr, nullptr, nullptr);
  roomy.Acquire(lt, 80, nullptr, nullptr, nullptr);
  roomy.Acquire(ic, 80, nullptr, nullptr, nullptr);
  EXPECT_EQ(roomy.Stats().evictions, 0u);
  EXPECT_EQ(roomy.Stats().hits, 1u);

  SamplerCache tight(graph, nullptr, nullptr, /*byte_budget=*/1);
  const CollectionView held = tight.Acquire(ic, 80, nullptr, nullptr, nullptr);
  const std::string expected = Fingerprint(held, 80);
  tight.Acquire(lt, 80, nullptr, nullptr, nullptr);  // evicts the ic entry
  EXPECT_GE(tight.Stats().evictions, 1u);
  ASSERT_EQ(held.NumSets(), 80u);
  EXPECT_EQ(Fingerprint(held, 80), expected);
}

}  // namespace
}  // namespace asti
