// Tests for core/asti.h: the adaptive loop's invariants — the target is
// always reached, traces are consistent, truncated gains are bookkept
// exactly, and the loop works with every selector.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "baselines/degree_adaptive.h"
#include "core/asti.h"
#include "core/trim.h"
#include "core/trim_b.h"
#include "graph/generators.h"

namespace asti {
namespace {

DirectedGraph RandomWcGraph(NodeId n, size_t m, uint64_t seed) {
  Rng rng(seed);
  auto graph =
      BuildWeightedGraph(MakeErdosRenyi(n, m, rng), WeightScheme::kWeightedCascade);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(AstiTest, AlwaysReachesTargetIc) {
  const DirectedGraph graph = RandomWcGraph(100, 500, 121);
  for (uint64_t run = 0; run < 5; ++run) {
    Rng world_rng(200 + run);
    AdaptiveWorld world(graph, DiffusionModel::kIndependentCascade, 30, world_rng);
    Trim trim(graph, DiffusionModel::kIndependentCascade, TrimOptions{0.5});
    Rng rng(300 + run);
    const AdaptiveRunTrace trace = RunAdaptivePolicy(world, trim, rng);
    EXPECT_TRUE(trace.target_reached);
    EXPECT_GE(trace.total_activated, 30u);
    EXPECT_FALSE(trace.seeds.empty());
  }
}

TEST(AstiTest, AlwaysReachesTargetLt) {
  const DirectedGraph graph = RandomWcGraph(100, 500, 122);
  Rng world_rng(123);
  AdaptiveWorld world(graph, DiffusionModel::kLinearThreshold, 25, world_rng);
  Trim trim(graph, DiffusionModel::kLinearThreshold, TrimOptions{0.5});
  Rng rng(124);
  const AdaptiveRunTrace trace = RunAdaptivePolicy(world, trim, rng);
  EXPECT_TRUE(trace.target_reached);
  EXPECT_GE(trace.total_activated, 25u);
}

TEST(AstiTest, TraceInternallyConsistent) {
  const DirectedGraph graph = RandomWcGraph(80, 400, 125);
  Rng world_rng(126);
  AdaptiveWorld world(graph, DiffusionModel::kIndependentCascade, 20, world_rng);
  Trim trim(graph, DiffusionModel::kIndependentCascade, TrimOptions{0.5});
  Rng rng(127);
  const AdaptiveRunTrace trace = RunAdaptivePolicy(world, trim, rng);

  // Round indices are 1..k; shortfalls strictly decrease by truncated gain;
  // activations sum to the final total.
  NodeId activated_total = 0;
  NodeId expected_shortfall = 20;
  size_t seed_total = 0;
  for (size_t i = 0; i < trace.rounds.size(); ++i) {
    const RoundRecord& record = trace.rounds[i];
    EXPECT_EQ(record.round, i + 1);
    EXPECT_EQ(record.shortfall_before, expected_shortfall);
    EXPECT_GE(record.newly_activated, 1u);
    EXPECT_EQ(record.truncated_gain,
              std::min<NodeId>(record.newly_activated, record.shortfall_before));
    activated_total += record.newly_activated;
    seed_total += record.seeds.size();
    expected_shortfall = expected_shortfall > record.newly_activated
                             ? expected_shortfall - record.newly_activated
                             : 0;
  }
  EXPECT_EQ(activated_total, trace.total_activated);
  EXPECT_EQ(seed_total, trace.seeds.size());
  EXPECT_EQ(expected_shortfall, 0u);
  // Every round but the last leaves a positive shortfall.
  for (size_t i = 0; i + 1 < trace.rounds.size(); ++i) {
    EXPECT_GT(trace.rounds[i].shortfall_before, trace.rounds[i].truncated_gain);
  }
}

TEST(AstiTest, SeedsAreDistinctAndWereInactive) {
  const DirectedGraph graph = RandomWcGraph(120, 600, 128);
  Rng world_rng(129);
  AdaptiveWorld world(graph, DiffusionModel::kIndependentCascade, 40, world_rng);
  TrimB trim_b(graph, DiffusionModel::kIndependentCascade, TrimBOptions{0.5, 4});
  Rng rng(130);
  const AdaptiveRunTrace trace = RunAdaptivePolicy(world, trim_b, rng);
  std::set<NodeId> unique(trace.seeds.begin(), trace.seeds.end());
  EXPECT_EQ(unique.size(), trace.seeds.size());
}

TEST(AstiTest, BatchedSelectorTakesFewerRounds) {
  const DirectedGraph graph = RandomWcGraph(150, 700, 131);
  Rng world_rng1(132);
  AdaptiveWorld world1(graph, DiffusionModel::kIndependentCascade, 50, world_rng1);
  Trim trim(graph, DiffusionModel::kIndependentCascade, TrimOptions{0.5});
  Rng rng1(133);
  const AdaptiveRunTrace single = RunAdaptivePolicy(world1, trim, rng1);

  Rng world_rng2(132);  // same hidden realization
  AdaptiveWorld world2(graph, DiffusionModel::kIndependentCascade, 50, world_rng2);
  TrimB trim_b(graph, DiffusionModel::kIndependentCascade, TrimBOptions{0.5, 8});
  Rng rng2(134);
  const AdaptiveRunTrace batched = RunAdaptivePolicy(world2, trim_b, rng2);

  EXPECT_LT(batched.rounds.size(), single.rounds.size());
  // Batched never selects fewer seeds (the adaptivity gap direction).
  EXPECT_GE(batched.NumSeeds() + 1, single.NumSeeds());
}

TEST(AstiTest, EtaEqualsOneTerminatesInOneRound) {
  const DirectedGraph graph = RandomWcGraph(50, 200, 135);
  Rng world_rng(136);
  AdaptiveWorld world(graph, DiffusionModel::kIndependentCascade, 1, world_rng);
  Trim trim(graph, DiffusionModel::kIndependentCascade, TrimOptions{0.5});
  Rng rng(137);
  const AdaptiveRunTrace trace = RunAdaptivePolicy(world, trim, rng);
  EXPECT_EQ(trace.rounds.size(), 1u);
  EXPECT_TRUE(trace.target_reached);
}

TEST(AstiTest, EtaEqualsNActivatesEverything) {
  // Deterministic path: everything reachable from node 0 only.
  auto graph = BuildWeightedGraph(MakePath(12), WeightScheme::kUniform, 1.0);
  ASSERT_TRUE(graph.ok());
  Rng world_rng(138);
  AdaptiveWorld world(*graph, DiffusionModel::kIndependentCascade, 12, world_rng);
  Trim trim(*graph, DiffusionModel::kIndependentCascade, TrimOptions{0.5});
  Rng rng(139);
  const AdaptiveRunTrace trace = RunAdaptivePolicy(world, trim, rng);
  EXPECT_TRUE(trace.target_reached);
  EXPECT_EQ(trace.total_activated, 12u);
  // Optimal here is the single seed 0; TRIM should find it immediately.
  EXPECT_EQ(trace.NumSeeds(), 1u);
  EXPECT_EQ(trace.seeds[0], 0u);
}

TEST(AstiTest, WorksWithDegreeHeuristic) {
  const DirectedGraph graph = RandomWcGraph(100, 500, 140);
  Rng world_rng(141);
  AdaptiveWorld world(graph, DiffusionModel::kIndependentCascade, 30, world_rng);
  DegreeAdaptive degree(graph);
  Rng rng(142);
  const AdaptiveRunTrace trace = RunAdaptivePolicy(world, degree, rng);
  EXPECT_TRUE(trace.target_reached);
}

TEST(AstiTest, TraceAggregation) {
  const DirectedGraph graph = RandomWcGraph(80, 400, 143);
  std::vector<AdaptiveRunTrace> traces;
  for (uint64_t run = 0; run < 4; ++run) {
    Rng world_rng(150 + run);
    AdaptiveWorld world(graph, DiffusionModel::kIndependentCascade, 20, world_rng);
    Trim trim(graph, DiffusionModel::kIndependentCascade, TrimOptions{0.5});
    Rng rng(160 + run);
    traces.push_back(RunAdaptivePolicy(world, trim, rng));
  }
  const RunAggregate aggregate = Aggregate(traces);
  EXPECT_EQ(aggregate.runs, 4u);
  EXPECT_EQ(aggregate.runs_reaching_target, 4u);
  EXPECT_GE(aggregate.mean_spread, 20.0);
  EXPECT_GE(aggregate.max_spread, aggregate.min_spread);
  EXPECT_GT(aggregate.mean_seeds, 0.0);
  const std::string summary = Summarize(aggregate);
  EXPECT_NE(summary.find("reached=4/4"), std::string::npos);
}

}  // namespace
}  // namespace asti
