// Tests for src/parallel: ThreadPool scheduling, the deterministic batch
// sampling contract (same seed ⇒ identical collection at every thread
// count), coverage parity with the sequential sampler driven by the same
// per-set Split streams, bulk-append semantics, and a TRIM-with-threads
// regression against the thread-count-independence guarantee.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "core/asti.h"
#include "core/trim.h"
#include "diffusion/world.h"
#include "graph/generators.h"
#include "parallel/parallel_sampler.h"
#include "parallel/thread_pool.h"
#include "sampling/root_size.h"
#include "sampling/rr_buffer.h"
#include "sampling/rr_collection.h"
#include "sampling/rr_set.h"

namespace asti {
namespace {

std::vector<NodeId> AllNodes(NodeId n) {
  std::vector<NodeId> nodes(n);
  std::iota(nodes.begin(), nodes.end(), 0);
  return nodes;
}

StatusOr<DirectedGraph> MakeTestGraph(NodeId n, size_t m, uint64_t seed) {
  Rng rng(seed);
  return BuildWeightedGraph(MakeErdosRenyi(n, m, rng), WeightScheme::kWeightedCascade);
}

bool SameCollections(const RrCollection& a, const RrCollection& b) {
  if (a.NumSets() != b.NumSets() || a.TotalEntries() != b.TotalEntries()) return false;
  for (size_t s = 0; s < a.NumSets(); ++s) {
    auto sa = a.Set(s);
    auto sb = b.Set(s);
    if (!std::equal(sa.begin(), sa.end(), sb.begin(), sb.end())) return false;
  }
  return a.CoverageCounts() == b.CoverageCounts();
}

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.NumThreads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 10; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(counter.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(1000, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForChunksAreOrderedAndDisjoint) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<std::pair<size_t, std::pair<size_t, size_t>>> chunks;
  pool.ParallelFor(10, [&](size_t chunk, size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mutex);
    chunks.push_back({chunk, {begin, end}});
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(chunks.front().second.first, 0u);
  EXPECT_EQ(chunks.back().second.second, 10u);
  for (size_t c = 1; c < chunks.size(); ++c) {
    // Chunk c starts where chunk c-1 ended: contiguous, index-ordered.
    EXPECT_EQ(chunks[c].second.first, chunks[c - 1].second.second);
  }
}

TEST(ThreadPoolTest, ParallelForHandlesFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.ParallelFor(3, [&](size_t, size_t begin, size_t end) {
    counter.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(counter.load(), 3);
  pool.ParallelFor(0, [&](size_t, size_t, size_t) { counter.fetch_add(1000); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, WaitForBatchIgnoresOtherCallersTasks) {
  // Regression: Wait() used to block on a pool-global counter, so a caller
  // sharing the pool with a long-running (here: deliberately blocked) task
  // would wait for it. With per-batch TaskGroups, ParallelFor must return
  // as soon as its own chunks finish — under the old code this deadlocks
  // (ParallelFor waits on the blocked task, which we release only after).
  ThreadPool pool(2);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  TaskGroup blocked;
  pool.Submit(blocked, [gate] { gate.wait(); });

  std::atomic<int> counter{0};
  pool.ParallelFor(1, [&](size_t, size_t begin, size_t end) {
    counter.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(counter.load(), 1);  // returned while the other task still runs

  release.set_value();
  blocked.Wait();
}

TEST(ThreadPoolTest, ConcurrentParallelForCallersAreIsolated) {
  // Two caller threads hammer one shared pool; each must observe exactly
  // its own items completed at every ParallelFor return. Also the TSAN
  // workload for the shared-pool protocol.
  ThreadPool pool(4);
  auto caller = [&pool](size_t items, int reps) {
    for (int rep = 0; rep < reps; ++rep) {
      std::vector<std::atomic<int>> touched(items);
      pool.ParallelFor(items, [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
      });
      for (const auto& t : touched) ASSERT_EQ(t.load(), 1);
    }
  };
  std::thread a(caller, 193, 25);
  std::thread b(caller, 401, 25);
  a.join();
  b.join();
}

TEST(ThreadPoolTest, TaskGroupsTrackTheirOwnBatches) {
  ThreadPool pool(2);
  std::atomic<int> first{0};
  std::atomic<int> second{0};
  TaskGroup group_a;
  TaskGroup group_b;
  for (int i = 0; i < 20; ++i) {
    pool.Submit(group_a, [&first] { first.fetch_add(1); });
    pool.Submit(group_b, [&second] { second.fetch_add(1); });
  }
  group_a.Wait();
  EXPECT_EQ(first.load(), 20);
  group_b.Wait();
  EXPECT_EQ(second.load(), 20);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.ParallelFor(50, [&](size_t chunk, size_t begin, size_t end) {
    EXPECT_EQ(chunk, 0u);
    counter.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(counter.load(), 50);
}

// --- RrCollection bulk APIs ------------------------------------------------

TEST(RrCollectionBulkTest, AppendBatchMatchesSealLoop) {
  RrSetBuffer buffer;
  buffer.PushNode(1);
  buffer.PushNode(3);
  buffer.SealSet();
  buffer.PushNode(3);
  buffer.SealSet();

  RrCollection collection(5);
  collection.PushNode(2);
  collection.SealSet();
  collection.AppendBatch(buffer);

  EXPECT_EQ(collection.NumSets(), 3u);
  EXPECT_EQ(collection.TotalEntries(), 4u);
  EXPECT_EQ(collection.Coverage(2), 1u);
  EXPECT_EQ(collection.Coverage(1), 1u);
  EXPECT_EQ(collection.Coverage(3), 2u);
  auto set1 = collection.Set(1);
  ASSERT_EQ(set1.size(), 2u);
  EXPECT_EQ(set1[0], 1u);
  EXPECT_EQ(set1[1], 3u);
  auto set2 = collection.Set(2);
  ASSERT_EQ(set2.size(), 1u);
  EXPECT_EQ(set2[0], 3u);
}

TEST(RrCollectionBulkTest, AppendBatchIgnoresUnsealedTail) {
  RrSetBuffer buffer;
  buffer.PushNode(0);
  buffer.SealSet();
  buffer.PushNode(4);  // in-progress, never sealed

  RrCollection collection(5);
  collection.AppendBatch(buffer);
  EXPECT_EQ(collection.NumSets(), 1u);
  EXPECT_EQ(collection.TotalEntries(), 1u);
  EXPECT_EQ(collection.Coverage(4), 0u);
}

TEST(RrCollectionBulkTest, BufferClearKeepsProtocolUsable) {
  RrSetBuffer buffer;
  buffer.PushNode(7);
  buffer.SealSet();
  buffer.Clear();
  EXPECT_EQ(buffer.NumSets(), 0u);
  EXPECT_EQ(buffer.TotalEntries(), 0u);
  buffer.PushNode(2);
  buffer.SealSet();
  EXPECT_EQ(buffer.NumSets(), 1u);
  EXPECT_EQ(buffer.Set(0)[0], 2u);
}

// --- Deterministic parallel generation -------------------------------------

TEST(ParallelSamplerTest, SameSeedSameThreadsIdenticalCollection) {
  auto graph = MakeTestGraph(120, 700, 51);
  ASSERT_TRUE(graph.ok());
  const auto candidates = AllNodes(graph->NumNodes());

  RrCollection a(graph->NumNodes());
  RrCollection b(graph->NumNodes());
  for (RrCollection* out : {&a, &b}) {
    ThreadPool pool(4);
    ParallelRrSampler sampler(*graph, DiffusionModel::kIndependentCascade, pool);
    Rng rng(52);
    sampler.GenerateBatch(candidates, nullptr, 500, *out, rng);
  }
  EXPECT_TRUE(SameCollections(a, b));
}

TEST(ParallelSamplerTest, CollectionIndependentOfThreadCount) {
  auto graph = MakeTestGraph(100, 600, 53);
  ASSERT_TRUE(graph.ok());
  const auto candidates = AllNodes(graph->NumNodes());

  RrCollection reference(graph->NumNodes());
  {
    ThreadPool pool(1);
    ParallelRrSampler sampler(*graph, DiffusionModel::kIndependentCascade, pool);
    Rng rng(54);
    sampler.GenerateBatch(candidates, nullptr, 400, reference, rng);
  }
  for (size_t threads : {2, 3, 4, 7}) {
    ThreadPool pool(threads);
    ParallelRrSampler sampler(*graph, DiffusionModel::kIndependentCascade, pool);
    RrCollection out(graph->NumNodes());
    Rng rng(54);
    sampler.GenerateBatch(candidates, nullptr, 400, out, rng);
    EXPECT_TRUE(SameCollections(reference, out)) << threads << " threads";
  }
}

TEST(ParallelSamplerTest, CoverageIdenticalToSequentialSamplerSameStreams) {
  // The engine's contract: the batch equals a sequential RrSampler loop in
  // which set i consumes stream batch_base.Split(i). Λ_R(v) must match
  // exactly for every node on the same realization budget.
  auto graph = MakeTestGraph(150, 900, 55);
  ASSERT_TRUE(graph.ok());
  const auto candidates = AllNodes(graph->NumNodes());
  const size_t budget = 600;

  RrCollection sequential(graph->NumNodes());
  {
    RrSampler sampler(*graph, DiffusionModel::kIndependentCascade);
    Rng rng(56);
    const Rng batch_base = rng.Split();
    sequential.Reserve(budget);
    for (size_t i = 0; i < budget; ++i) {
      Rng set_rng = batch_base.Split(i);
      sampler.Generate(candidates, nullptr, sequential, set_rng);
    }
  }

  ThreadPool pool(4);
  ParallelRrSampler sampler(*graph, DiffusionModel::kIndependentCascade, pool);
  RrCollection parallel(graph->NumNodes());
  Rng rng(56);
  sampler.GenerateBatch(candidates, nullptr, budget, parallel, rng);

  ASSERT_EQ(parallel.NumSets(), budget);
  for (NodeId v = 0; v < graph->NumNodes(); ++v) {
    ASSERT_EQ(parallel.Coverage(v), sequential.Coverage(v)) << "node " << v;
  }
  EXPECT_TRUE(SameCollections(sequential, parallel));
}

TEST(ParallelSamplerTest, MrrBatchDeterministicAndDistinct) {
  auto graph = MakeTestGraph(80, 500, 57);
  ASSERT_TRUE(graph.ok());
  const auto candidates = AllNodes(graph->NumNodes());
  const RootSizeSampler root_size(graph->NumNodes(), 10);

  RrCollection a(graph->NumNodes());
  RrCollection b(graph->NumNodes());
  for (auto [out, threads] : {std::pair<RrCollection*, size_t>{&a, 2},
                              std::pair<RrCollection*, size_t>{&b, 5}}) {
    ThreadPool pool(threads);
    ParallelRrSampler sampler(*graph, DiffusionModel::kLinearThreshold, pool);
    Rng rng(58);
    sampler.GenerateMrrBatch(candidates, nullptr, root_size, 300, *out, rng);
  }
  EXPECT_TRUE(SameCollections(a, b));
  // mRR-sets hold distinct nodes and at least the expected root floor.
  for (size_t s = 0; s < a.NumSets(); ++s) {
    auto set = a.Set(s);
    std::set<NodeId> unique(set.begin(), set.end());
    EXPECT_EQ(unique.size(), set.size());
    EXPECT_GE(set.size(), root_size.floor_k());
  }
}

TEST(ParallelSamplerTest, ResidualBatchesAvoidActiveNodes) {
  auto graph = MakeTestGraph(60, 400, 59);
  ASSERT_TRUE(graph.ok());
  BitVector active(60);
  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < 60; ++v) {
    if (v % 4 == 0) {
      active.Set(v);
    } else {
      candidates.push_back(v);
    }
  }
  ThreadPool pool(3);
  ParallelRrSampler sampler(*graph, DiffusionModel::kIndependentCascade, pool);
  RrCollection collection(60);
  Rng rng(60);
  sampler.GenerateBatch(candidates, &active, 400, collection, rng);
  for (NodeId v = 0; v < 60; v += 4) EXPECT_EQ(collection.Coverage(v), 0u);
}

TEST(ParallelSamplerTest, CostMergedAcrossWorkersMatchesSequential) {
  auto graph = MakeTestGraph(100, 700, 61);
  ASSERT_TRUE(graph.ok());
  const auto candidates = AllNodes(graph->NumNodes());
  const size_t budget = 500;

  // Sequential cost over the same per-set streams.
  RrSampler sequential(*graph, DiffusionModel::kIndependentCascade);
  {
    RrCollection sink(graph->NumNodes());
    Rng rng(62);
    const Rng batch_base = rng.Split();
    for (size_t i = 0; i < budget; ++i) {
      Rng set_rng = batch_base.Split(i);
      sequential.Generate(candidates, nullptr, sink, set_rng);
    }
  }

  ThreadPool pool(4);
  ParallelRrSampler sampler(*graph, DiffusionModel::kIndependentCascade, pool);
  RrCollection sink(graph->NumNodes());
  Rng rng(62);
  sampler.GenerateBatch(candidates, nullptr, budget, sink, rng);
  EXPECT_EQ(sampler.cost().nodes_visited, sequential.cost().nodes_visited);
  EXPECT_EQ(sampler.cost().edges_examined, sequential.cost().edges_examined);

  sampler.ResetCost();
  EXPECT_EQ(sampler.cost().nodes_visited, 0u);
  EXPECT_EQ(sampler.cost().edges_examined, 0u);
}

// --- TRIM with threads ------------------------------------------------------

TEST(ParallelTrimTest, ThreadedTrimIsThreadCountInvariant) {
  // The full OPIM-C doubling loop run at 2 and at 4 workers must produce
  // identical seed choices, sample counts, and iteration counts: the engine
  // guarantees the collection (and thus every certify decision) does not
  // depend on the pool size.
  auto graph = MakeTestGraph(90, 550, 63);
  ASSERT_TRUE(graph.ok());

  std::vector<AdaptiveRunTrace> traces;
  for (size_t threads : {2, 4}) {
    TrimOptions options;
    options.epsilon = 0.5;
    options.num_threads = threads;
    Trim trim(*graph, DiffusionModel::kIndependentCascade, options);
    Rng world_rng(64);
    AdaptiveWorld world(*graph, DiffusionModel::kIndependentCascade, 12, world_rng);
    Rng rng(65);
    traces.push_back(RunAdaptivePolicy(world, trim, rng));
  }
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].seeds, traces[1].seeds);
  EXPECT_EQ(traces[0].total_samples, traces[1].total_samples);
  EXPECT_EQ(traces[0].total_activated, traces[1].total_activated);
  ASSERT_EQ(traces[0].rounds.size(), traces[1].rounds.size());
  for (size_t r = 0; r < traces[0].rounds.size(); ++r) {
    EXPECT_EQ(traces[0].rounds[r].seeds, traces[1].rounds[r].seeds);
    EXPECT_EQ(traces[0].rounds[r].num_samples, traces[1].rounds[r].num_samples);
  }
}

TEST(ParallelTrimTest, ThreadedTrimMatchesSequentialQuality) {
  // Sequential TRIM and threaded TRIM consume different streams, so traces
  // differ — but both must reach the target with plausibly few seeds.
  auto graph = MakeTestGraph(90, 550, 66);
  ASSERT_TRUE(graph.ok());
  const NodeId eta = 15;

  std::vector<size_t> seed_counts;
  for (size_t threads : {1, 3}) {
    TrimOptions options;
    options.epsilon = 0.5;
    options.num_threads = threads;
    Trim trim(*graph, DiffusionModel::kIndependentCascade, options);
    Rng world_rng(67);
    AdaptiveWorld world(*graph, DiffusionModel::kIndependentCascade, eta, world_rng);
    Rng rng(68);
    const AdaptiveRunTrace trace = RunAdaptivePolicy(world, trim, rng);
    EXPECT_TRUE(trace.target_reached);
    EXPECT_GE(trace.total_activated, eta);
    seed_counts.push_back(trace.NumSeeds());
  }
  // Identical worlds, identical policy family: seed counts should be close.
  const auto [lo, hi] = std::minmax(seed_counts[0], seed_counts[1]);
  EXPECT_LE(hi - lo, 1 + hi / 2);
}

}  // namespace
}  // namespace asti
