// Tests for diffusion/forward_sim.h, including a replay of the paper's
// Figure 1 walk-through (adaptive rounds on a fixed realization).

#include <gtest/gtest.h>

#include <algorithm>

#include "diffusion/forward_sim.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace asti {
namespace {

// Deterministic IC realization: prob-1 edges are always live.
DirectedGraph DeterministicChain() {
  GraphBuilder builder(4);
  EXPECT_TRUE(builder.AddEdge(0, 1, 1.0).ok());
  EXPECT_TRUE(builder.AddEdge(1, 2, 1.0).ok());
  EXPECT_TRUE(builder.AddEdge(2, 3, 1.0).ok());
  return std::move(builder.Build()).value();
}

TEST(ForwardSimTest, FullChainPropagation) {
  const DirectedGraph graph = DeterministicChain();
  Rng rng(31);
  const Realization realization = Realization::SampleIc(graph, rng);
  ForwardSimulator simulator(graph);
  EXPECT_EQ(simulator.Spread(realization, {0}), 4u);
  EXPECT_EQ(simulator.Spread(realization, {2}), 2u);
  EXPECT_EQ(simulator.Spread(realization, {3}), 1u);
}

TEST(ForwardSimTest, DuplicateSeedsCountOnce) {
  const DirectedGraph graph = DeterministicChain();
  Rng rng(32);
  const Realization realization = Realization::SampleIc(graph, rng);
  ForwardSimulator simulator(graph);
  EXPECT_EQ(simulator.Spread(realization, {3, 3, 3}), 1u);
}

TEST(ForwardSimTest, MultipleSeedsUnionReachability) {
  // Two disjoint chains.
  GraphBuilder builder(6);
  ASSERT_TRUE(builder.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(3, 4, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(4, 5, 1.0).ok());
  const DirectedGraph graph = std::move(builder.Build()).value();
  Rng rng(33);
  const Realization realization = Realization::SampleIc(graph, rng);
  ForwardSimulator simulator(graph);
  EXPECT_EQ(simulator.Spread(realization, {0, 3}), 5u);
}

TEST(ForwardSimTest, ResidualExcludesActiveNodes) {
  const DirectedGraph graph = DeterministicChain();
  Rng rng(34);
  const Realization realization = Realization::SampleIc(graph, rng);
  ForwardSimulator simulator(graph);
  BitVector active(4);
  active.Set(2);  // node 2 already active: propagation stops there
  const auto activated = simulator.PropagateResidual(realization, {0}, active);
  ASSERT_EQ(activated.size(), 2u);
  EXPECT_EQ(activated[0], 0u);
  EXPECT_EQ(activated[1], 1u);
}

TEST(ForwardSimTest, ActiveSeedContributesNothing) {
  const DirectedGraph graph = DeterministicChain();
  Rng rng(35);
  const Realization realization = Realization::SampleIc(graph, rng);
  ForwardSimulator simulator(graph);
  BitVector active(4);
  active.Set(0);
  EXPECT_TRUE(simulator.PropagateResidual(realization, {0}, active).empty());
}

TEST(ForwardSimTest, LtPropagationFollowsChosenEdges) {
  // 0 -> 1 (p=1): LT always picks it; 1 -> 2 (p=0.5): choice is random,
  // so force it via a specific realization draw and just verify both cases.
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2, 0.5).ok());
  const DirectedGraph graph = std::move(builder.Build()).value();
  Rng rng(36);
  ForwardSimulator simulator(graph);
  int spread3 = 0;
  int spread2 = 0;
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    const Realization realization = Realization::SampleLt(graph, rng);
    const size_t spread = simulator.Spread(realization, {0});
    if (spread == 3) {
      ++spread3;
    } else if (spread == 2) {
      ++spread2;
    } else {
      FAIL() << "unexpected spread " << spread;
    }
  }
  EXPECT_NEAR(static_cast<double>(spread3) / trials, 0.5, 0.03);
  EXPECT_NEAR(static_cast<double>(spread2) / trials, 0.5, 0.03);
}

// --- Figure 1 replay -------------------------------------------------------
// The paper's running example: under realization φ (Fig. 1b) the live edges
// are v1->v4, v1->v6, v6->v5, v3->v5, v5->v2 and v2->v1; v4->v3 is blocked.
// Selecting v1 activates {v1, v4, v6, v5, v2}... — careful: the paper's
// figure shows v1 activating v4 and v6 only in round 1 because influence of
// v6 on v5 is *not yet revealed* in Fig. 1c; the realization we encode below
// matches Fig. 1c/1d exactly: v1->v4 live, v1->v6 live, v6->v5 blocked,
// v3->v5 live, v5->v2 live, v4->v3 blocked, v2->v1 irrelevant.
class Figure1Replay : public ::testing::Test {
 protected:
  void SetUp() override {
    auto graph = MakePaperFigure1Graph();
    ASSERT_TRUE(graph.ok());
    graph_ = std::make_unique<DirectedGraph>(std::move(graph).value());
    // Draw realizations until we hit the one of Fig. 1c/1d.
    Rng rng(1);
    for (int attempt = 0; attempt < 100000; ++attempt) {
      Realization candidate = Realization::SampleIc(*graph_, rng);
      if (Matches(candidate)) {
        realization_ = std::make_unique<Realization>(std::move(candidate));
        return;
      }
    }
    FAIL() << "never sampled the Figure 1 realization";
  }

  bool Matches(const Realization& realization) {
    // Edge order within a source is by target id; map them explicitly.
    auto live = [&](NodeId u, NodeId v) {
      auto neighbors = graph_->OutNeighbors(u);
      const EdgeId first = graph_->FirstOutEdge(u);
      for (size_t i = 0; i < neighbors.size(); ++i) {
        if (neighbors[i] == v) return realization.IsLive(first + i);
      }
      ADD_FAILURE() << "no edge " << u << "->" << v;
      return false;
    };
    return live(0, 3) && live(0, 5) && !live(5, 4) && live(2, 4) && !live(3, 2) &&
           live(4, 1);
  }

  std::unique_ptr<DirectedGraph> graph_;
  std::unique_ptr<Realization> realization_;
};

TEST_F(Figure1Replay, RoundOneActivatesV1V4V6) {
  ForwardSimulator simulator(*graph_);
  BitVector active(6);
  auto round1 = simulator.PropagateResidual(*realization_, {0}, active);
  std::sort(round1.begin(), round1.end());
  // v1 (=0) activates v4 (=3) and v6 (=5); v6->v5 is blocked.
  EXPECT_EQ(round1, (std::vector<NodeId>{0, 3, 5}));
}

TEST_F(Figure1Replay, RoundTwoWithV3ReachesEta) {
  ForwardSimulator simulator(*graph_);
  BitVector active(6);
  for (NodeId v : simulator.PropagateResidual(*realization_, {0}, active)) {
    active.Set(v);
  }
  auto round2 = simulator.PropagateResidual(*realization_, {2}, active);
  std::sort(round2.begin(), round2.end());
  // v3 (=2) activates v5 (=4) which activates v2 (=1): 3 new, total 6... the
  // paper counts 5 active because v2->v1 feedback is moot; our total is
  // {0,3,5} + {1,2,4} = 6 ≥ η = 4 — v5->v2 live matches Fig. 1d's 5 total
  // when v2 is counted. Either way the η = 4 target is met in round 2.
  EXPECT_EQ(round2, (std::vector<NodeId>{1, 2, 4}));
}

}  // namespace
}  // namespace asti
