// Tests for diffusion/topic_model.h: profile construction, mixture
// validation, campaign-graph semantics, and end-to-end ASTI on a campaign.

#include <gtest/gtest.h>

#include "core/asti.h"
#include "core/trim.h"
#include "diffusion/monte_carlo.h"
#include "diffusion/topic_model.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace asti {
namespace {

DirectedGraph BaseGraph() {
  Rng rng(221);
  auto graph = BuildWeightedGraph(MakeErdosRenyi(60, 300, rng),
                                  WeightScheme::kWeightedCascade);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(TopicModelTest, ProfileStoresPerTopicProbabilities) {
  const DirectedGraph graph = BaseGraph();
  TopicProfile profile(graph, 3);
  EXPECT_EQ(profile.num_topics(), 3u);
  profile.SetProbability(0, 1, 0.25);
  EXPECT_DOUBLE_EQ(profile.Probability(0, 1), 0.25);
  EXPECT_DOUBLE_EQ(profile.Probability(0, 0), 0.0);
}

TEST(TopicModelTest, RandomProfileBoundedByBase) {
  const DirectedGraph graph = BaseGraph();
  Rng rng(222);
  const TopicProfile profile = MakeRandomTopicProfile(graph, 4, rng);
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    const EdgeId first = graph.FirstOutEdge(u);
    auto probs = graph.OutProbabilities(u);
    for (size_t i = 0; i < probs.size(); ++i) {
      for (uint32_t t = 0; t < 4; ++t) {
        const double p = profile.Probability(first + static_cast<EdgeId>(i), t);
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, probs[i]);
      }
    }
  }
}

TEST(TopicModelTest, TopicsDiffer) {
  const DirectedGraph graph = BaseGraph();
  Rng rng(223);
  const TopicProfile profile = MakeRandomTopicProfile(graph, 2, rng);
  size_t differing = 0;
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
    if (profile.Probability(e, 0) != profile.Probability(e, 1)) ++differing;
  }
  EXPECT_GT(differing, graph.NumEdges() / 2);
}

TEST(TopicModelTest, MixtureValidation) {
  const DirectedGraph graph = BaseGraph();
  const TopicProfile profile(graph, 3);
  EXPECT_TRUE(ValidateMixture(profile, {0.5, 0.25, 0.25}).ok());
  EXPECT_FALSE(ValidateMixture(profile, {0.5, 0.5}).ok());            // size
  EXPECT_FALSE(ValidateMixture(profile, {0.7, 0.7, -0.4}).ok());      // negative
  EXPECT_FALSE(ValidateMixture(profile, {0.5, 0.25, 0.5}).ok());      // sum
}

TEST(TopicModelTest, PureMixtureRecoversTopicGraph) {
  // With mixture concentrated on topic t, campaign probabilities equal the
  // topic-t probabilities exactly.
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(0, 1, 0.8).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2, 0.6).ok());
  const DirectedGraph graph = std::move(builder.Build()).value();
  TopicProfile profile(graph, 2);
  profile.SetProbability(0, 0, 0.3);
  profile.SetProbability(0, 1, 0.7);
  profile.SetProbability(1, 0, 0.1);
  profile.SetProbability(1, 1, 0.5);
  auto campaign = BuildCampaignGraph(profile, {1.0, 0.0});
  ASSERT_TRUE(campaign.ok());
  EXPECT_DOUBLE_EQ(campaign->OutProbabilities(0)[0], 0.3);
  EXPECT_DOUBLE_EQ(campaign->OutProbabilities(1)[0], 0.1);
}

TEST(TopicModelTest, MixtureInterpolatesLinearly) {
  GraphBuilder builder(2);
  ASSERT_TRUE(builder.AddEdge(0, 1, 1.0).ok());
  const DirectedGraph graph = std::move(builder.Build()).value();
  TopicProfile profile(graph, 2);
  profile.SetProbability(0, 0, 0.2);
  profile.SetProbability(0, 1, 0.6);
  auto campaign = BuildCampaignGraph(profile, {0.5, 0.5});
  ASSERT_TRUE(campaign.ok());
  EXPECT_DOUBLE_EQ(campaign->OutProbabilities(0)[0], 0.4);
}

TEST(TopicModelTest, ZeroProbabilityEdgesDropped) {
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2, 0.5).ok());
  const DirectedGraph graph = std::move(builder.Build()).value();
  TopicProfile profile(graph, 1);
  profile.SetProbability(0, 0, 0.4);  // edge 0 -> 1 survives
  // Edge 0 -> 2 stays at probability 0 and must disappear.
  auto campaign = BuildCampaignGraph(profile, {1.0});
  ASSERT_TRUE(campaign.ok());
  EXPECT_EQ(campaign->NumEdges(), 1u);
  EXPECT_EQ(campaign->OutNeighbors(0)[0], 1u);
}

TEST(TopicModelTest, DifferentCampaignsDifferentSpreads) {
  // A topic the network is receptive to (high affinities) spreads further
  // than one it ignores; verified by Monte Carlo on the two campaigns.
  const DirectedGraph graph = BaseGraph();
  TopicProfile profile(graph, 2);
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
    profile.SetProbability(e, 0, graph.EdgeProbability(e));        // receptive
    profile.SetProbability(e, 1, 0.1 * graph.EdgeProbability(e));  // ignored
  }
  auto hot = BuildCampaignGraph(profile, {1.0, 0.0});
  auto cold = BuildCampaignGraph(profile, {0.0, 1.0});
  ASSERT_TRUE(hot.ok());
  ASSERT_TRUE(cold.ok());
  MonteCarloEstimator hot_mc(*hot, DiffusionModel::kIndependentCascade);
  MonteCarloEstimator cold_mc(*cold, DiffusionModel::kIndependentCascade);
  Rng rng(224);
  const double hot_spread = hot_mc.EstimateSpread({0}, 4000, rng);
  const double cold_spread = cold_mc.EstimateSpread({0}, 4000, rng);
  EXPECT_GT(hot_spread, cold_spread);
}

TEST(TopicModelTest, AstiRunsOnCampaignGraph) {
  // The advertised bridge: campaign graph plugs into the unchanged stack.
  const DirectedGraph graph = BaseGraph();
  Rng profile_rng(225);
  const TopicProfile profile = MakeRandomTopicProfile(graph, 3, profile_rng);
  auto campaign = BuildCampaignGraph(profile, {0.2, 0.5, 0.3});
  ASSERT_TRUE(campaign.ok());
  Rng world_rng(226);
  AdaptiveWorld world(*campaign, DiffusionModel::kIndependentCascade, 15, world_rng);
  Trim trim(*campaign, DiffusionModel::kIndependentCascade, TrimOptions{0.5});
  Rng rng(227);
  const AdaptiveRunTrace trace = RunAdaptivePolicy(world, trim, rng);
  EXPECT_TRUE(trace.target_reached);
}

}  // namespace
}  // namespace asti
