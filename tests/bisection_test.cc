// Tests for baselines/bisection_seedmin.h.

#include <gtest/gtest.h>

#include <set>

#include "baselines/ateuc.h"
#include "baselines/bisection_seedmin.h"
#include "diffusion/monte_carlo.h"
#include "graph/generators.h"

namespace asti {
namespace {

DirectedGraph RandomWcGraph(NodeId n, size_t m, uint64_t seed) {
  Rng rng(seed);
  auto graph =
      BuildWeightedGraph(MakeErdosRenyi(n, m, rng), WeightScheme::kWeightedCascade);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(BisectionTest, MeetsThresholdInExpectation) {
  const DirectedGraph graph = RandomWcGraph(120, 700, 241);
  const NodeId eta = 30;
  Rng rng(242);
  const BisectionResult result = RunBisectionSeedMin(
      graph, DiffusionModel::kIndependentCascade, eta, BisectionOptions{}, rng);
  ASSERT_FALSE(result.seeds.empty());
  MonteCarloEstimator mc(graph, DiffusionModel::kIndependentCascade);
  Rng mc_rng(243);
  EXPECT_GE(mc.EstimateSpread(result.seeds, 20000, mc_rng), 0.9 * eta);
}

TEST(BisectionTest, SeedsAreDistinct) {
  const DirectedGraph graph = RandomWcGraph(100, 500, 244);
  Rng rng(245);
  const BisectionResult result = RunBisectionSeedMin(
      graph, DiffusionModel::kIndependentCascade, 25, BisectionOptions{}, rng);
  std::set<NodeId> unique(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(unique.size(), result.seeds.size());
}

TEST(BisectionTest, UsesLogarithmicEvaluations) {
  const DirectedGraph graph = RandomWcGraph(150, 700, 246);
  Rng rng(247);
  const BisectionResult result = RunBisectionSeedMin(
      graph, DiffusionModel::kIndependentCascade, 50, BisectionOptions{}, rng);
  // Exponential search + bisection: at most ~2·log2(n) + 1 IM solves.
  EXPECT_LE(result.im_evaluations, 2u * 8u + 2u);
  EXPECT_GE(result.im_evaluations, 1u);
}

TEST(BisectionTest, MonotoneInEta) {
  const DirectedGraph graph = RandomWcGraph(150, 700, 248);
  Rng rng1(249);
  Rng rng2(249);
  const BisectionResult small = RunBisectionSeedMin(
      graph, DiffusionModel::kIndependentCascade, 15, BisectionOptions{}, rng1);
  const BisectionResult large = RunBisectionSeedMin(
      graph, DiffusionModel::kIndependentCascade, 60, BisectionOptions{}, rng2);
  EXPECT_LE(small.seeds.size(), large.seeds.size());
}

TEST(BisectionTest, ComparableToAteucSeedCounts) {
  // Both are non-adaptive RR-greedy selections aiming at the same slack
  // target; seed counts should land in the same ballpark (within 2x).
  const DirectedGraph graph = RandomWcGraph(200, 1000, 250);
  const NodeId eta = 50;
  Rng rng1(251);
  Rng rng2(252);
  const BisectionResult bisection = RunBisectionSeedMin(
      graph, DiffusionModel::kIndependentCascade, eta, BisectionOptions{}, rng1);
  const AteucResult ateuc =
      RunAteuc(graph, DiffusionModel::kIndependentCascade, eta, AteucOptions{}, rng2);
  EXPECT_LE(bisection.seeds.size(), 2 * ateuc.seeds.size() + 2);
  EXPECT_LE(ateuc.seeds.size(), 2 * bisection.seeds.size() + 2);
}

TEST(BisectionTest, EtaEqualsOneIsOneSeed) {
  const DirectedGraph graph = RandomWcGraph(60, 200, 253);
  Rng rng(254);
  const BisectionResult result = RunBisectionSeedMin(
      graph, DiffusionModel::kIndependentCascade, 1, BisectionOptions{}, rng);
  EXPECT_EQ(result.seeds.size(), 1u);
}

TEST(BisectionTest, LtModelWorks) {
  const DirectedGraph graph = RandomWcGraph(100, 500, 255);
  Rng rng(256);
  const BisectionResult result = RunBisectionSeedMin(
      graph, DiffusionModel::kLinearThreshold, 20, BisectionOptions{}, rng);
  EXPECT_FALSE(result.seeds.empty());
  MonteCarloEstimator mc(graph, DiffusionModel::kLinearThreshold);
  Rng mc_rng(257);
  EXPECT_GE(mc.EstimateSpread(result.seeds, 20000, mc_rng), 0.85 * 20.0);
}

}  // namespace
}  // namespace asti
