// Tests for stats/concentration.h and stats/truncation.h: Lemma A.2 bound
// behaviour, empirical coverage, Theorem 3.3's closed-form ratios, and the
// needed-sets (doubling ladder) queries the sampler cache serves.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "core/trim.h"
#include "core/trim_b.h"
#include "stats/concentration.h"
#include "stats/truncation.h"
#include "util/rng.h"

namespace asti {
namespace {

constexpr double kOneMinusInvE = 1.0 - 1.0 / 2.718281828459045;

TEST(ConcentrationTest, LowerBelowUpper) {
  for (double coverage : {0.0, 1.0, 5.0, 100.0, 10000.0}) {
    for (double a : {0.5, 2.0, 10.0}) {
      EXPECT_LE(CoverageLowerBound(coverage, a), CoverageUpperBound(coverage, a));
    }
  }
}

TEST(ConcentrationTest, LowerBoundBelowObservation) {
  for (double coverage : {1.0, 10.0, 1000.0}) {
    EXPECT_LE(CoverageLowerBound(coverage, 3.0), coverage);
  }
}

TEST(ConcentrationTest, UpperBoundAboveObservation) {
  for (double coverage : {0.0, 1.0, 10.0, 1000.0}) {
    EXPECT_GE(CoverageUpperBound(coverage, 3.0), coverage);
  }
}

TEST(ConcentrationTest, BoundsTightenWithCoverage) {
  // Relative width (upper-lower)/coverage shrinks as coverage grows.
  const double a = 5.0;
  double previous_relative_width = 1e18;
  for (double coverage : {10.0, 100.0, 1000.0, 10000.0}) {
    const double width =
        (CoverageUpperBound(coverage, a) - CoverageLowerBound(coverage, a)) / coverage;
    EXPECT_LT(width, previous_relative_width);
    previous_relative_width = width;
  }
}

TEST(ConcentrationTest, LowerBoundClampedAtZero) {
  EXPECT_NEAR(CoverageLowerBound(0.0, 10.0), 0.0, 1e-12);
  EXPECT_GE(CoverageLowerBound(0.5, 50.0), 0.0);
}

TEST(ConcentrationTest, EmpiricalCoverageOfLemmaA2) {
  // Binomial(T, p) observations: the bounds should each fail with
  // probability well below e^{-a}.
  Rng rng(61);
  const size_t trials = 2000;
  const size_t samples = 400;
  const double p = 0.3;
  const double a = 3.0;  // e^-3 ≈ 0.0498 failure budget per side
  const double expectation = p * samples;
  size_t lower_failures = 0;
  size_t upper_failures = 0;
  for (size_t t = 0; t < trials; ++t) {
    double observed = 0.0;
    for (size_t s = 0; s < samples; ++s) observed += rng.NextBernoulli(p) ? 1.0 : 0.0;
    if (CoverageLowerBound(observed, a) > expectation) ++lower_failures;
    if (CoverageUpperBound(observed, a) < expectation) ++upper_failures;
  }
  EXPECT_LT(static_cast<double>(lower_failures) / trials, 0.05);
  EXPECT_LT(static_cast<double>(upper_failures) / trials, 0.05);
}

TEST(ConcentrationTest, ChernoffTailsDecreaseInLambda) {
  double previous = 1.1;
  for (double lambda : {0.0, 0.01, 0.05, 0.1, 0.2}) {
    const double tail = ChernoffUpperTail(0.5, lambda, 100);
    EXPECT_LE(tail, previous);
    previous = tail;
  }
}

TEST(ConcentrationTest, ChernoffLowerTailMatchesFormula) {
  const double tail = ChernoffLowerTail(0.4, 0.1, 250);
  EXPECT_NEAR(tail, std::exp(-0.01 * 250 / 0.8), 1e-12);
}

TEST(ConcentrationTest, LogBinomialMatchesSmallCases) {
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-9);
  EXPECT_NEAR(LogBinomial(10, 0), 0.0, 1e-9);
  EXPECT_NEAR(LogBinomial(10, 10), 0.0, 1e-9);
  EXPECT_NEAR(LogBinomial(52, 5), std::log(2598960.0), 1e-6);
}

// --- Needed-sets queries (doubling schedules) ------------------------------

TEST(DoublingLadderTest, SetsAreThetaZeroTimesPowersOfTwo) {
  EXPECT_EQ(DoublingLadderSets(5, 0), 0u);
  EXPECT_EQ(DoublingLadderSets(5, 1), 5u);
  EXPECT_EQ(DoublingLadderSets(5, 2), 10u);
  EXPECT_EQ(DoublingLadderSets(5, 4), 40u);
  EXPECT_EQ(DoublingLadderSets(1, 11), 1024u);
}

TEST(DoublingLadderTest, SetsSaturateInsteadOfWrapping) {
  EXPECT_EQ(DoublingLadderSets(SIZE_MAX / 2 + 2, 2), SIZE_MAX);
  EXPECT_EQ(DoublingLadderSets(3, 4000), SIZE_MAX);
}

// Differential pin against the legacy doubling loops: before the sampler
// cache, TRIM/TRIM-B/AdaptIM grew an owned collection in place
// (|R| -> 2|R|) with T = ceil(log2(theta_max/theta_zero)) + 1. The ladder
// query must reproduce EXACTLY the collection sizes and stopping point
// that loop visited, or cached runs would certify on different prefixes
// than fresh ones.
TEST(DoublingLadderTest, MatchesLegacyDoublingLoopStoppingPoint) {
  for (size_t theta_zero : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                            size_t{64}, size_t{1000}}) {
    for (double factor : {0.5, 1.0, 1.0001, 1.5, 2.0, 3.9, 4.0, 17.3, 1e6}) {
      const double theta_max = static_cast<double>(theta_zero) * factor;
      // The legacy loop: start at theta_zero, double until >= theta_max.
      size_t legacy_sets = theta_zero;
      size_t legacy_iterations = 1;
      while (static_cast<double>(legacy_sets) < theta_max) {
        legacy_sets *= 2;
        ++legacy_iterations;
      }
      const size_t iterations = DoublingLadderIterations(theta_zero, theta_max);
      EXPECT_EQ(iterations, legacy_iterations)
          << "theta_zero=" << theta_zero << " theta_max=" << theta_max;
      // Every intermediate rung matches the in-place doubled size.
      size_t sets = theta_zero;
      for (size_t t = 1; t <= iterations; ++t) {
        EXPECT_EQ(DoublingLadderSets(theta_zero, t), sets) << "t=" << t;
        sets *= 2;
      }
    }
  }
}

// Needed-sets behaviour across the (eta, epsilon) grid for both schedule
// families: the final rung covers theta_max, the previous one does not
// (the ladder never over- or under-shoots the certification budget), and
// tightening epsilon never shrinks the sampling budget.
TEST(DoublingLadderTest, ScheduleLaddersCoverThetaMaxMinimally) {
  const NodeId n = 5000;
  for (NodeId eta : {NodeId{1}, NodeId{10}, NodeId{250}, NodeId{2500}}) {
    double previous_theta_max = 0.0;
    for (double epsilon : {0.5, 0.3, 0.1}) {  // tightening order
      const TrimSchedule trim = ComputeTrimSchedule(n, eta, epsilon);
      ASSERT_GE(trim.max_iterations, 1u);
      EXPECT_GE(static_cast<double>(
                    DoublingLadderSets(trim.theta_zero, trim.max_iterations)),
                trim.theta_max)
          << "eta=" << eta << " eps=" << epsilon;
      if (trim.max_iterations > 1) {
        EXPECT_LT(static_cast<double>(DoublingLadderSets(
                      trim.theta_zero, trim.max_iterations - 1)),
                  trim.theta_max)
            << "eta=" << eta << " eps=" << epsilon;
      }
      EXPECT_GT(trim.theta_max, previous_theta_max)
          << "eta=" << eta << " eps=" << epsilon;
      previous_theta_max = trim.theta_max;

      const NodeId batch = std::min<NodeId>(8, eta);
      const TrimBSchedule trim_b = ComputeTrimBSchedule(n, eta, batch, epsilon);
      ASSERT_GE(trim_b.max_iterations, 1u);
      EXPECT_GE(static_cast<double>(
                    DoublingLadderSets(trim_b.theta_zero, trim_b.max_iterations)),
                trim_b.theta_max);
      if (trim_b.max_iterations > 1) {
        EXPECT_LT(static_cast<double>(DoublingLadderSets(
                      trim_b.theta_zero, trim_b.max_iterations - 1)),
                  trim_b.theta_max);
      }
    }
  }
}

// --- Truncation estimator math (Theorem 3.3) ------------------------------

TEST(TruncationTest, MissProbabilityMatchesHypergeometric) {
  // p(x; n, k) = C(n-x, k)/C(n, k); check n=10, x=3, k=2: C(7,2)/C(10,2).
  EXPECT_NEAR(MrrMissProbability(3, 10, 2), 21.0 / 45.0, 1e-12);
  EXPECT_NEAR(MrrMissProbability(0, 10, 2), 1.0, 1e-12);
  EXPECT_NEAR(MrrMissProbability(10, 10, 2), 0.0, 1e-12);
  EXPECT_NEAR(MrrMissProbability(9, 10, 2), 0.0, 1e-12);  // k > n - x
}

TEST(TruncationTest, RandomizedRoundingRatioWithinTheorem33) {
  // f(x) ∈ [1 - 1/e, 1] for every x, across many (n, η) combinations.
  for (uint64_t n : {10u, 100u, 1000u, 7777u}) {
    for (uint64_t eta :
         std::initializer_list<uint64_t>{1, 2, 3, n / 7 + 1, n / 3 + 1, n / 2, n}) {
      if (eta < 1 || eta > n) continue;
      for (uint64_t x = 1; x <= n; x = x < 10 ? x + 1 : x * 2) {
        const double f = EstimatorBiasRatio(x, n, eta, RootRounding::kRandomized);
        EXPECT_GE(f, kOneMinusInvE - 1e-9)
            << "n=" << n << " eta=" << eta << " x=" << x;
        EXPECT_LE(f, 1.0 + 1e-9) << "n=" << n << " eta=" << eta << " x=" << x;
      }
    }
  }
}

TEST(TruncationTest, FloorRoundingCanViolateLowerBound) {
  // §3.3 Remark: fixed k = ⌊n/η⌋ only guarantees [1 - 1/√e, 1]; find a case
  // below 1 - 1/e to prove the randomization is doing real work.
  const double loose = 1.0 - 1.0 / std::sqrt(2.718281828459045);
  bool found_violation = false;
  for (uint64_t n = 10; n <= 2000 && !found_violation; n = n * 3 / 2) {
    for (uint64_t eta = 2; eta < n && !found_violation; ++eta) {
      for (uint64_t x = eta; x <= std::min<uint64_t>(n, 4 * eta); ++x) {
        const double f = EstimatorBiasRatio(x, n, eta, RootRounding::kFloor);
        EXPECT_GE(f, loose - 1e-9);
        if (f < kOneMinusInvE - 1e-6) {
          found_violation = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(found_violation);
}

TEST(TruncationTest, CeilRoundingCanOverestimate) {
  // Fixed k = ⌊n/η⌋ + 1 yields ratios up to 2 (overestimation).
  bool found_overestimate = false;
  for (uint64_t n = 10; n <= 2000 && !found_overestimate; n = n * 3 / 2) {
    for (uint64_t eta = 2; eta < n; ++eta) {
      const double f = EstimatorBiasRatio(1, n, eta, RootRounding::kCeil);
      EXPECT_LE(f, 2.0 + 1e-9);
      if (f > 1.0 + 1e-6) {
        found_overestimate = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_overestimate);
}

TEST(TruncationTest, RatioApproachesOneForHugeSpread) {
  // x = n: every root lands in the reachable set, estimate = η = Γ.
  EXPECT_NEAR(EstimatorBiasRatio(1000, 1000, 100, RootRounding::kRandomized), 1.0,
              1e-12);
}

TEST(TruncationTest, ExpectedMissDecreasesInSpread) {
  double previous = 1.1;
  for (uint64_t x : {1, 2, 5, 10, 50, 100}) {
    const double p = ExpectedMissProbability(x, 100, 10, RootRounding::kRandomized);
    EXPECT_LT(p, previous);
    previous = p;
  }
}

}  // namespace
}  // namespace asti
