// Tests for the dynamic-graph delta subsystem (src/delta/): batch
// validation and both serializations, the ApplyDelta digest-identity
// contract against the from-scratch GraphBuilder rebuild, epoch minting
// through the catalog (SwapWithDelta) under live traffic, sharded
// re-planning, and the incremental snapshot store (`<name>.delta.asms`).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "api/graph_catalog.h"
#include "api/seedmin_engine.h"
#include "delta/apply.h"
#include "delta/catalog_delta.h"
#include "delta/churn.h"
#include "delta/delta_io.h"
#include "delta/edge_delta.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "shard/partition.h"
#include "shard/topology.h"
#include "store/delta_store.h"
#include "store/snapshot_store.h"
#include "util/rng.h"

namespace asti {
namespace {

DirectedGraph TestGraph(uint64_t seed = 501, NodeId nodes = 160) {
  Rng rng(seed);
  auto graph = BuildWeightedGraph(MakeBarabasiAlbert(nodes, 2, rng),
                                  WeightScheme::kWeightedCascade);
  ASM_CHECK(graph.ok());
  return std::move(graph).value();
}

// Bit-level equality over all seven CSR arrays — stronger than digest
// equality, which is what the delta contract actually promises.
void ExpectGraphsBitIdentical(const DirectedGraph& a, const DirectedGraph& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  auto eq = [](auto lhs, auto rhs) {
    return std::equal(lhs.begin(), lhs.end(), rhs.begin(), rhs.end());
  };
  EXPECT_TRUE(eq(a.OutOffsets(), b.OutOffsets()));
  EXPECT_TRUE(eq(a.OutTargets(), b.OutTargets()));
  EXPECT_TRUE(eq(a.OutProbs(), b.OutProbs()));
  EXPECT_TRUE(eq(a.InOffsets(), b.InOffsets()));
  EXPECT_TRUE(eq(a.InSources(), b.InSources()));
  EXPECT_TRUE(eq(a.InProbs(), b.InProbs()));
  EXPECT_TRUE(eq(a.InEdgeIdsFlat(), b.InEdgeIdsFlat()));
  EXPECT_EQ(ForwardCsrDigest(a), ForwardCsrDigest(b));
}

// First node at or after `from` with at least one out-edge.
NodeId FirstSourceFrom(const DirectedGraph& graph, NodeId from) {
  for (NodeId u = from; u < graph.NumNodes(); ++u) {
    if (graph.OutDegree(u) > 0) return u;
  }
  ASM_CHECK(false);
  return 0;
}

// An insert op the base graph certainly absorbs: the `skip`-th absent
// non-self-loop pair in scan order (distinct `skip` ⇒ distinct pairs).
DeltaOp FindAbsentPair(const DirectedGraph& graph, double probability, size_t skip = 0) {
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      if (u == v) continue;
      const auto row = graph.OutNeighbors(u);
      if (!std::binary_search(row.begin(), row.end(), v)) {
        if (skip == 0) return DeltaOp{DeltaOpKind::kInsert, u, v, probability};
        --skip;
      }
    }
  }
  ASM_CHECK(false);
  return {};
}

std::string TempPath(const std::string& leaf) {
  return (std::filesystem::temp_directory_path() / leaf).string();
}

// Solve fingerprint for bit-identity assertions across engines.
std::string ResultFingerprint(const SolveResult& result) {
  std::ostringstream out;
  out << result.aggregate.mean_seeds << '|' << result.aggregate.mean_spread << '|';
  for (size_t count : result.seed_counts) out << count << ',';
  out << '|';
  for (double spread : result.spreads) out << spread << ',';
  return out.str();
}

// --- Batch validation and text format ---------------------------------------

TEST(EdgeDeltaTest, TextFormatRoundTripsExactly) {
  EdgeDelta delta;
  delta.base_digest = 0x1234abcd5678ef01ULL;
  delta.result_digest = 0xfeedbeefcafe0042ULL;
  delta.ops.push_back({DeltaOpKind::kInsert, 3, 9, 0.625});
  delta.ops.push_back({DeltaOpKind::kDelete, 7, 2, 0.0});
  delta.ops.push_back({DeltaOpKind::kReweight, 1, 4, 0.1});

  const std::string text = FormatDeltaText(delta);
  const auto parsed = ParseDeltaText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, delta);

  // Word aliases parse to the same batch as the symbols.
  const auto aliased = ParseDeltaText(
      "# comment\n"
      "delta v1\n"
      "base_digest 0x1234abcd5678ef01\n"
      "result_digest 0xfeedbeefcafe0042\n"
      "insert 3 9 0.625\n"
      "delete 7 2\n"
      "reweight 1 4 0.1\n");
  ASSERT_TRUE(aliased.ok()) << aliased.status().ToString();
  EXPECT_EQ(*aliased, delta);
}

TEST(EdgeDeltaTest, MalformedTextIsInvalidArgument) {
  const char* bad_inputs[] = {
      "+ 1 2 0.5\n",                       // missing "delta v1" header
      "delta v2\n+ 1 2 0.5\n",             // unknown version
      "delta v1\n? 1 2 0.5\n",             // unknown op
      "delta v1\n+ 1 2\n",                 // insert without probability
      "delta v1\n+ 1 2 zero\n",            // unparseable probability
      "delta v1\n+ 1 2 0.0\n",             // probability out of (0, 1]
      "delta v1\n+ 1 2 1.5\n",             // probability out of (0, 1]
      "delta v1\n+ 3 3 0.5\n",             // self-loop
      "delta v1\n+ 1 2 0.5\n- 1 2\n",      // two ops on one pair
      "delta v1\nbase_digest nothex\n",    // bad digest
  };
  for (const char* text : bad_inputs) {
    const auto parsed = ParseDeltaText(text);
    ASSERT_FALSE(parsed.ok()) << "accepted: " << text;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << text;
  }
}

TEST(EdgeDeltaTest, ValidateRejectsConflictsAndBadOps) {
  EdgeDelta ok;
  ok.ops.push_back({DeltaOpKind::kInsert, 0, 1, 1.0});
  ok.ops.push_back({DeltaOpKind::kDelete, 1, 0, 0.0});
  EXPECT_TRUE(ValidateDelta(ok).ok());
  EXPECT_TRUE(ValidateDelta(EdgeDelta{}).ok());  // empty batch is valid

  EdgeDelta self_loop;
  self_loop.ops.push_back({DeltaOpKind::kInsert, 4, 4, 0.5});
  EXPECT_EQ(ValidateDelta(self_loop).code(), StatusCode::kInvalidArgument);

  EdgeDelta bad_prob;
  bad_prob.ops.push_back({DeltaOpKind::kReweight, 0, 1, -0.25});
  EXPECT_EQ(ValidateDelta(bad_prob).code(), StatusCode::kInvalidArgument);

  EdgeDelta conflict;
  conflict.ops.push_back({DeltaOpKind::kReweight, 2, 5, 0.5});
  conflict.ops.push_back({DeltaOpKind::kDelete, 2, 5, 0.0});
  EXPECT_EQ(ValidateDelta(conflict).code(), StatusCode::kInvalidArgument);
}

// --- Binary format ----------------------------------------------------------

TEST(DeltaIoTest, BinaryRoundTripsAndSniffs) {
  EdgeDelta delta;
  delta.base_digest = 17;
  delta.result_digest = 34;
  delta.ops.push_back({DeltaOpKind::kInsert, 5, 6, 0.75});
  delta.ops.push_back({DeltaOpKind::kDelete, 6, 5, 0.0});

  const std::string path = TempPath("delta_io_roundtrip.asmd");
  ASSERT_TRUE(WriteDeltaBinary(delta, path, /*base_store_digest=*/99).ok());

  uint64_t store_digest = 0;
  const auto read = ReadDeltaBinary(path, &store_digest);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, delta);
  EXPECT_EQ(store_digest, 99u);

  // LoadDeltaFile dispatches on the magic: binary here, text below.
  const auto sniffed = LoadDeltaFile(path);
  ASSERT_TRUE(sniffed.ok()) << sniffed.status().ToString();
  EXPECT_EQ(*sniffed, delta);

  const std::string text_path = TempPath("delta_io_roundtrip.txt");
  {
    std::ofstream out(text_path);
    out << FormatDeltaText(delta);
  }
  const auto from_text = LoadDeltaFile(text_path);
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  EXPECT_EQ(*from_text, delta);

  std::remove(path.c_str());
  std::remove(text_path.c_str());
}

TEST(DeltaIoTest, CorruptBinaryIsRejected) {
  EdgeDelta delta;
  delta.ops.push_back({DeltaOpKind::kInsert, 1, 2, 0.5});
  const std::string path = TempPath("delta_io_corrupt.asmd");
  ASSERT_TRUE(WriteDeltaBinary(delta, path).ok());

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  auto write_variant = [&](const std::string& mutated) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
  };

  // Truncated payload.
  write_variant(bytes.substr(0, bytes.size() - 8));
  EXPECT_FALSE(ReadDeltaBinary(path).ok());

  // Wrong magic.
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  write_variant(bad_magic);
  EXPECT_FALSE(ReadDeltaBinary(path).ok());

  // Flipped payload byte: ops CRC catches it.
  std::string bad_payload = bytes;
  bad_payload[bytes.size() - 1] ^= 0x40;
  write_variant(bad_payload);
  EXPECT_FALSE(ReadDeltaBinary(path).ok());

  std::remove(path.c_str());
  EXPECT_FALSE(ReadDeltaBinary(path).ok());  // missing file
}

// --- ApplyDelta digest identity ---------------------------------------------

class ApplyDeltaTest : public ::testing::Test {
 protected:
  void SetUp() override { base_ = TestGraph(); }

  // Applies both ways and asserts bit identity; returns the fast-path stats.
  DeltaApplyStats ExpectIdentity(const EdgeDelta& delta) {
    DeltaApplyStats stats;
    const auto fast = ApplyDelta(base_, delta, &stats);
    EXPECT_TRUE(fast.ok()) << fast.status().ToString();
    const auto reference = ApplyDeltaByRebuild(base_, delta);
    EXPECT_TRUE(reference.ok()) << reference.status().ToString();
    if (fast.ok() && reference.ok()) ExpectGraphsBitIdentical(*fast, *reference);
    return stats;
  }

  DirectedGraph base_;
};

TEST_F(ApplyDeltaTest, InsertsMatchRebuild) {
  EdgeDelta delta;
  delta.ops.push_back(FindAbsentPair(base_, 0.375));
  delta.ops.push_back(FindAbsentPair(base_, 0.5, /*skip=*/1));
  const DeltaApplyStats stats = ExpectIdentity(delta);
  EXPECT_EQ(stats.inserted, delta.ops.size());
  EXPECT_FALSE(stats.shared_structure);
}

TEST_F(ApplyDeltaTest, DeletesMatchRebuild) {
  EdgeDelta delta;
  // Rows near both ends of the graph exercise the untouched-run copies.
  const NodeId first = FirstSourceFrom(base_, 0);
  delta.ops.push_back({DeltaOpKind::kDelete, first, base_.OutNeighbors(first).front(), 0.0});
  for (NodeId u = base_.NumNodes() - 1; u > first; --u) {
    if (base_.OutDegree(u) > 0) {
      delta.ops.push_back({DeltaOpKind::kDelete, u, base_.OutNeighbors(u).front(), 0.0});
      break;
    }
  }
  const DeltaApplyStats stats = ExpectIdentity(delta);
  EXPECT_EQ(stats.deleted, delta.ops.size());
  EXPECT_GE(stats.deleted, 1u);
}

TEST_F(ApplyDeltaTest, ReweightsMatchRebuildAndShareStructure) {
  EdgeDelta delta;
  const NodeId u = FirstSourceFrom(base_, 0);
  delta.ops.push_back({DeltaOpKind::kReweight, u, base_.OutNeighbors(u).front(), 0.875});
  const DeltaApplyStats stats = ExpectIdentity(delta);
  EXPECT_EQ(stats.reweighted, 1u);
  EXPECT_TRUE(stats.shared_structure);

  // The shared-structure graph literally aliases the base's target array.
  const auto minted = ApplyDelta(base_, delta);
  ASSERT_TRUE(minted.ok());
  EXPECT_EQ(minted->OutTargets().data(), base_.OutTargets().data());
  EXPECT_NE(minted->OutProbs().data(), base_.OutProbs().data());
}

TEST_F(ApplyDeltaTest, MixedBatchMatchesRebuild) {
  Rng rng(77);
  ChurnSpec spec;
  spec.inserts = 6;
  spec.deletes = 5;
  spec.reweights = 4;
  const auto delta = MakeRandomDelta(base_, spec, rng);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  const DeltaApplyStats stats = ExpectIdentity(*delta);
  EXPECT_GT(stats.inserted, 0u);
  EXPECT_GT(stats.deleted, 0u);
  EXPECT_GT(stats.reweighted, 0u);
  EXPECT_GT(stats.rows_touched, 0u);
}

TEST_F(ApplyDeltaTest, EmptyBatchMintsIdenticalGraph) {
  const DeltaApplyStats stats = ExpectIdentity(EdgeDelta{});
  EXPECT_TRUE(stats.shared_structure);
  EXPECT_EQ(stats.rows_touched, 0u);
}

TEST_F(ApplyDeltaTest, StampDigestsBindsTheTransition) {
  EdgeDelta delta;
  delta.ops.push_back(FindAbsentPair(base_, 0.25));
  ASSERT_TRUE(StampDigests(base_, delta).ok());
  EXPECT_EQ(delta.base_digest, ForwardCsrDigest(base_));
  const auto minted = ApplyDelta(base_, delta);
  ASSERT_TRUE(minted.ok()) << minted.status().ToString();
  EXPECT_EQ(delta.result_digest, ForwardCsrDigest(*minted));
}

TEST_F(ApplyDeltaTest, InapplicableBatchesAreInvalidArgument) {
  auto expect_invalid = [&](const EdgeDelta& delta) {
    const auto result = ApplyDelta(base_, delta);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  };

  const NodeId u = FirstSourceFrom(base_, 0);
  EdgeDelta insert_existing;
  insert_existing.ops.push_back(
      {DeltaOpKind::kInsert, u, base_.OutNeighbors(u).front(), 0.5});
  expect_invalid(insert_existing);

  EdgeDelta delete_missing;
  DeltaOp absent = FindAbsentPair(base_, 0.5);
  delete_missing.ops.push_back({DeltaOpKind::kDelete, absent.source, absent.target, 0.0});
  expect_invalid(delete_missing);

  EdgeDelta reweight_missing;
  reweight_missing.ops.push_back(
      {DeltaOpKind::kReweight, absent.source, absent.target, 0.5});
  expect_invalid(reweight_missing);

  EdgeDelta out_of_range;
  out_of_range.ops.push_back({DeltaOpKind::kInsert, base_.NumNodes(), 0, 0.5});
  expect_invalid(out_of_range);

  EdgeDelta wrong_base;
  wrong_base.base_digest = ForwardCsrDigest(base_) ^ 1;
  wrong_base.ops.push_back(FindAbsentPair(base_, 0.5));
  expect_invalid(wrong_base);

  EdgeDelta wrong_result;
  wrong_result.ops.push_back(FindAbsentPair(base_, 0.5));
  ASSERT_TRUE(StampDigests(base_, wrong_result).ok());
  wrong_result.result_digest ^= 1;
  expect_invalid(wrong_result);
}

TEST(ChurnTest, RandomDeltasAreDeterministicInTheSeed) {
  const DirectedGraph graph = TestGraph(502);
  ChurnSpec spec;
  Rng a(11), b(11), c(12);
  const auto delta_a = MakeRandomDelta(graph, spec, a);
  const auto delta_b = MakeRandomDelta(graph, spec, b);
  const auto delta_c = MakeRandomDelta(graph, spec, c);
  ASSERT_TRUE(delta_a.ok() && delta_b.ok() && delta_c.ok());
  EXPECT_EQ(*delta_a, *delta_b);
  EXPECT_NE(delta_a->ops, delta_c->ops);
  EXPECT_TRUE(ApplyDelta(graph, *delta_a).ok());
}

// --- Serving on minted epochs -----------------------------------------------

// The acceptance pin: results computed on a delta-minted graph are
// bit-identical to results on a from-scratch rebuild of the mutated edge
// list, at pool sizes 1 and 4.
TEST(DeltaServingTest, MintedEpochServesBitIdenticalToRebuild) {
  const DirectedGraph base = TestGraph(503, 200);
  Rng rng(21);
  const auto delta = MakeRandomDelta(base, ChurnSpec{}, rng);
  ASSERT_TRUE(delta.ok());
  auto minted = ApplyDelta(base, *delta);
  ASSERT_TRUE(minted.ok());
  auto rebuilt = ApplyDeltaByRebuild(base, *delta);
  ASSERT_TRUE(rebuilt.ok());

  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Register("minted", std::move(minted).value()).ok());
  ASSERT_TRUE(catalog.Register("rebuilt", std::move(rebuilt).value()).ok());

  for (size_t pool : {size_t{1}, size_t{4}}) {
    SeedMinEngine::ServingOptions options;
    options.num_threads = pool;
    SeedMinEngine engine(catalog, options);
    for (AlgorithmId algorithm : {AlgorithmId::kAsti, AlgorithmId::kAteuc}) {
      SolveRequest request;
      request.algorithm = algorithm;
      request.eta = 20;
      request.realizations = 2;
      request.seed = 40;
      request.graph = "minted";
      const auto on_minted = engine.Solve(request);
      request.graph = "rebuilt";
      const auto on_rebuilt = engine.Solve(request);
      ASSERT_TRUE(on_minted.ok()) << on_minted.status().ToString();
      ASSERT_TRUE(on_rebuilt.ok()) << on_rebuilt.status().ToString();
      EXPECT_EQ(ResultFingerprint(*on_minted), ResultFingerprint(*on_rebuilt))
          << "pool=" << pool;
    }
  }
}

// SwapWithDelta under live traffic: requests admitted before the swap
// complete on their pinned epoch-1 snapshot, bit-identical to an engine
// that never saw a swap; post-swap requests serve the minted epoch.
TEST(DeltaServingTest, SwapWithDeltaPinsInflightRequestsToOldEpoch) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Register("live", TestGraph(504)).ok());

  SolveRequest request;
  request.graph = "live";
  request.eta = 25;
  request.realizations = 2;
  request.seed = 9;

  std::string undisturbed;
  {
    SeedMinEngine reference(catalog, {2});
    const auto result = reference.Solve(request);
    ASSERT_TRUE(result.ok());
    undisturbed = ResultFingerprint(*result);
  }

  SeedMinEngine::ServingOptions options;
  options.num_threads = 2;
  options.num_drivers = 2;
  SeedMinEngine engine(catalog, options);

  std::vector<std::future<StatusOr<SolveResult>>> inflight;
  for (int i = 0; i < 4; ++i) inflight.push_back(engine.SubmitAsync(request));

  const auto base_ref = catalog.Get("live");
  ASSERT_TRUE(base_ref.ok());
  Rng rng(31);
  const auto delta = MakeRandomDelta(base_ref->graph(), ChurnSpec{}, rng);
  ASSERT_TRUE(delta.ok());
  const auto swap = SwapWithDelta(catalog, "live", *delta);
  ASSERT_TRUE(swap.ok()) << swap.status().ToString();
  EXPECT_EQ(swap->ref.epoch(), 2u);
  EXPECT_FALSE(swap->resharded);
  EXPECT_EQ(swap->minted_digest, delta->result_digest);

  for (auto& future : inflight) {
    const auto result = future.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->graph_epoch, 1u);
    EXPECT_EQ(ResultFingerprint(*result), undisturbed);
  }

  const auto fresh = engine.Solve(request);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(fresh->graph_epoch, 2u);

  // The minted epoch serves exactly like a from-scratch rebuild.
  auto rebuilt = ApplyDeltaByRebuild(base_ref->graph(), *delta);
  ASSERT_TRUE(rebuilt.ok());
  ASSERT_TRUE(catalog.Register("rebuilt", std::move(rebuilt).value()).ok());
  request.graph = "rebuilt";
  const auto on_rebuilt = engine.Solve(request);
  ASSERT_TRUE(on_rebuilt.ok());
  EXPECT_EQ(ResultFingerprint(*fresh), ResultFingerprint(*on_rebuilt));
}

// A sharded entry re-plans its topology over the minted graph with the
// same shard count, and sharded serving on the minted epoch stays
// bit-identical to unsharded serving on the rebuilt graph.
TEST(DeltaServingTest, ShardedSwapReplansAndServesIdentically) {
  const DirectedGraph base = TestGraph(505, 220);
  GraphCatalog catalog;
  for (uint32_t shards : {1u, 2u}) {
    const std::string name = "sharded" + std::to_string(shards);
    auto snapshot = std::make_shared<const DirectedGraph>(base);
    auto topology = MakeShardTopology(*snapshot, shards);
    ASSERT_TRUE(topology.ok()) << topology.status().ToString();
    ASSERT_TRUE(catalog
                    .Register(name, snapshot, WeightScheme::kWeightedCascade,
                              /*warm=*/nullptr, std::move(topology).value())
                    .ok());

    Rng rng(61);  // same seed: the same delta against the same base
    const auto delta = MakeRandomDelta(base, ChurnSpec{}, rng);
    ASSERT_TRUE(delta.ok());
    const auto swap = SwapWithDelta(catalog, name, *delta);
    ASSERT_TRUE(swap.ok()) << swap.status().ToString();
    EXPECT_TRUE(swap->resharded);
    ASSERT_NE(swap->ref.shard_topology(), nullptr);
    EXPECT_EQ(swap->ref.shard_topology()->num_shards(), shards);
    EXPECT_EQ(swap->ref.shard_topology()->plan.graph_digest, swap->minted_digest);

    auto rebuilt = ApplyDeltaByRebuild(base, *delta);
    ASSERT_TRUE(rebuilt.ok());
    EXPECT_EQ(swap->minted_digest, ForwardCsrDigest(*rebuilt));
    const std::string rebuilt_name = "rebuilt" + std::to_string(shards);
    ASSERT_TRUE(catalog.Register(rebuilt_name, std::move(rebuilt).value()).ok());

    for (size_t pool : {size_t{1}, size_t{4}}) {
      SeedMinEngine::ServingOptions options;
      options.num_threads = pool;
      SeedMinEngine engine(catalog, options);
      SolveRequest request;
      request.eta = 22;
      request.realizations = 2;
      request.seed = 17;
      request.graph = name;
      const auto sharded = engine.Solve(request);
      request.graph = rebuilt_name;
      const auto unsharded = engine.Solve(request);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      ASSERT_TRUE(unsharded.ok()) << unsharded.status().ToString();
      EXPECT_EQ(ResultFingerprint(*sharded), ResultFingerprint(*unsharded))
          << "shards=" << shards << " pool=" << pool;
    }
  }
}

// --- Incremental snapshots --------------------------------------------------

class DeltaStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    directory_ = TempPath("asti_delta_store_test");
    std::filesystem::remove_all(directory_);
  }
  void TearDown() override { std::filesystem::remove_all(directory_); }

  std::string directory_;
};

TEST_F(DeltaStoreTest, StagedDeltaRoundTripsAndMintsVerifiedEpoch) {
  const DirectedGraph base = TestGraph(506);
  store::SnapshotStore snapshots(directory_);
  ASSERT_TRUE(snapshots.Save(base, "tenant", WeightScheme::kWeightedCascade).ok());
  EXPECT_FALSE(store::HasDelta(snapshots, "tenant"));

  Rng rng(91);
  auto delta = MakeRandomDelta(base, ChurnSpec{.stamp_digests = false}, rng);
  ASSERT_TRUE(delta.ok());
  ASSERT_TRUE(store::SaveDelta(snapshots, "tenant", *delta).ok());
  EXPECT_TRUE(store::HasDelta(snapshots, "tenant"));

  const auto loaded = store::LoadSnapshotWithDelta(snapshots, "tenant");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // The loaded base is byte-equal to what was saved and the minted epoch
  // is digest-identical to a from-scratch rebuild of the mutated list.
  ExpectGraphsBitIdentical(loaded->base.graph, base);
  const auto rebuilt = ApplyDeltaByRebuild(base, loaded->delta);
  ASSERT_TRUE(rebuilt.ok());
  ExpectGraphsBitIdentical(loaded->minted, *rebuilt);
  EXPECT_EQ(loaded->minted_digest, ForwardCsrDigest(*rebuilt));
  EXPECT_GT(loaded->stats.inserted + loaded->stats.deleted + loaded->stats.reweighted,
            0u);

  ASSERT_TRUE(store::DropDelta(snapshots, "tenant").ok());
  EXPECT_FALSE(store::HasDelta(snapshots, "tenant"));
  EXPECT_EQ(store::LoadSnapshotWithDelta(snapshots, "tenant").status().code(),
            StatusCode::kNotFound);
}

TEST_F(DeltaStoreTest, ReplacedBaseSnapshotInvalidatesStagedDelta) {
  const DirectedGraph base = TestGraph(507);
  store::SnapshotStore snapshots(directory_);
  ASSERT_TRUE(snapshots.Save(base, "tenant", WeightScheme::kWeightedCascade).ok());

  Rng rng(92);
  auto delta = MakeRandomDelta(base, ChurnSpec{}, rng);
  ASSERT_TRUE(delta.ok());
  ASSERT_TRUE(store::SaveDelta(snapshots, "tenant", *delta).ok());

  // Replace `<name>.asms` under the staged delta: the O(1) store-digest
  // binding refuses before ApplyDelta ever runs.
  ASSERT_TRUE(
      snapshots.Save(TestGraph(508), "tenant", WeightScheme::kWeightedCascade).ok());
  const auto stale = store::LoadSnapshotWithDelta(snapshots, "tenant");
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DeltaStoreTest, MissingBaseIsNotFound) {
  store::SnapshotStore snapshots(directory_);
  EdgeDelta delta;
  EXPECT_EQ(store::SaveDelta(snapshots, "ghost", delta).code(), StatusCode::kNotFound);
  EXPECT_EQ(store::LoadSnapshotWithDelta(snapshots, "ghost").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace asti
