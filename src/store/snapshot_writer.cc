#include "store/snapshot_writer.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "store/snapshot_format.h"
#include "util/check.h"
#include "util/crc32.h"

namespace asti::store {

namespace {

template <class T>
std::span<const std::byte> Bytes(std::span<const T> data) {
  return std::as_bytes(data);
}

std::span<const std::byte> Bytes(const void* data, size_t bytes) {
  return {static_cast<const std::byte*>(data), bytes};
}

/// One pending section: payload described as pieces to concatenate, so
/// graph arrays are written straight from their spans with no copy.
struct Section {
  SectionType type;
  uint64_t count;
  std::vector<std::span<const std::byte>> pieces;

  uint64_t TotalBytes() const {
    uint64_t total = 0;
    for (const auto piece : pieces) total += piece.size();
    return total;
  }
  uint32_t Crc() const {
    uint32_t crc = 0;
    for (const auto piece : pieces) crc = Crc32(piece.data(), piece.size(), crc);
    return crc;
  }
};

/// A collection prefix re-flattened from its (possibly multi-chunk) view:
/// contiguous offsets and pool the section can span. unique_ptr'd so
/// addresses stay stable while sections reference them.
struct FlatCollection {
  CollectionSectionHeader header;
  std::vector<uint64_t> offsets;
  std::vector<NodeId> pool;
};

std::unique_ptr<FlatCollection> Flatten(const SealedCollectionExport& exported) {
  auto flat = std::make_unique<FlatCollection>();
  const CollectionView& view = exported.view;
  const size_t num_sets = view.NumSets();
  flat->offsets.reserve(num_sets + 1);
  flat->offsets.push_back(0);
  flat->pool.reserve(view.TotalEntries());
  for (size_t i = 0; i < num_sets; ++i) {
    const std::span<const NodeId> set = view.Set(i);
    flat->pool.insert(flat->pool.end(), set.begin(), set.end());
    flat->offsets.push_back(flat->pool.size());
  }
  CollectionSectionHeader& h = flat->header;
  std::memset(&h, 0, sizeof(h));
  h.kind = static_cast<uint8_t>(exported.key.kind);
  h.model = static_cast<uint8_t>(exported.key.model);
  h.rounding = static_cast<uint8_t>(exported.key.rounding);
  h.eta = exported.key.eta;
  h.stream_seed = kCacheStreamSeed;
  h.contract_version = kSamplerContractVersion;
  h.num_nodes = view.num_nodes();
  h.num_sets = num_sets;
  h.total_entries = flat->pool.size();
  // graph_digest is stamped by the caller once the forward CRCs are known.
  return flat;
}

class FileWriter {
 public:
  explicit FileWriter(std::string path)
      : path_(std::move(path)), file_(std::fopen(path_.c_str(), "wb")) {}
  ~FileWriter() {
    if (file_ != nullptr) std::fclose(file_);
  }

  bool ok() const { return file_ != nullptr; }

  Status Write(std::span<const std::byte> bytes) {
    if (!bytes.empty() && std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
      return Error("write");
    }
    position_ += bytes.size();
    return Status::OK();
  }

  Status PadTo(uint64_t offset) {
    ASM_CHECK(offset >= position_);
    static constexpr std::byte kZeros[kSectionAlignment] = {};
    while (position_ < offset) {
      const size_t chunk =
          std::min<uint64_t>(offset - position_, sizeof(kZeros));
      ASM_RETURN_NOT_OK(Write({kZeros, chunk}));
    }
    return Status::OK();
  }

  Status Close() {
    std::FILE* f = file_;
    file_ = nullptr;
    if (std::fclose(f) != 0) return Error("close");
    return Status::OK();
  }

  Status Error(const std::string& op) const {
    return Status::IOError(op + " '" + path_ + "': " + std::strerror(errno));
  }

 private:
  std::string path_;
  std::FILE* file_;
  uint64_t position_ = 0;
};

}  // namespace

Status WriteSnapshot(const DirectedGraph& graph, const std::string& name,
                     WeightScheme scheme,
                     std::span<const SealedCollectionExport> collections,
                     const std::string& path, const SnapshotWriteOptions& options) {
  if (name.empty()) {
    return Status::InvalidArgument("snapshot graph name must be non-empty");
  }

  // --- Assemble sections in file order. ---------------------------------
  GraphMetaSection meta;
  std::memset(&meta, 0, sizeof(meta));
  meta.num_nodes = graph.NumNodes();
  meta.num_edges = graph.NumEdges();
  meta.weight_scheme = static_cast<uint32_t>(scheme);
  meta.name_bytes = static_cast<uint32_t>(name.size());

  std::vector<Section> sections;
  sections.push_back(Section{SectionType::kGraphMeta, name.size(),
                             {Bytes(&meta, sizeof(meta)), Bytes(name.data(), name.size())}});
  sections.push_back(Section{SectionType::kOutOffsets, graph.OutOffsets().size(),
                             {Bytes(graph.OutOffsets())}});
  sections.push_back(Section{SectionType::kOutTargets, graph.OutTargets().size(),
                             {Bytes(graph.OutTargets())}});
  sections.push_back(
      Section{SectionType::kOutProbs, graph.OutProbs().size(), {Bytes(graph.OutProbs())}});
  if (options.include_reverse_csr) {
    sections.push_back(Section{SectionType::kInOffsets, graph.InOffsets().size(),
                               {Bytes(graph.InOffsets())}});
    sections.push_back(Section{SectionType::kInSources, graph.InSources().size(),
                               {Bytes(graph.InSources())}});
    sections.push_back(
        Section{SectionType::kInProbs, graph.InProbs().size(), {Bytes(graph.InProbs())}});
    sections.push_back(Section{SectionType::kInEdgeIds, graph.InEdgeIdsFlat().size(),
                               {Bytes(graph.InEdgeIdsFlat())}});
  }

  // The digest binds collection sections to THIS graph payload; compute it
  // from the forward CRCs before flattening stamps it into each header.
  const uint32_t out_offsets_crc = sections[1].Crc();
  const uint32_t out_targets_crc = sections[2].Crc();
  const uint32_t out_probs_crc = sections[3].Crc();
  const uint64_t digest = GraphDigest(graph.NumNodes(), graph.NumEdges(), out_offsets_crc,
                                      out_targets_crc, out_probs_crc);

  std::vector<std::unique_ptr<FlatCollection>> flats;
  flats.reserve(collections.size());
  for (const SealedCollectionExport& exported : collections) {
    if (exported.view.NumSets() == 0) continue;
    flats.push_back(Flatten(exported));
    FlatCollection& flat = *flats.back();
    flat.header.graph_digest = digest;
    sections.push_back(Section{
        SectionType::kRrCollection,
        flat.header.num_sets,
        {Bytes(&flat.header, sizeof(flat.header)),
         Bytes(std::span<const uint64_t>(flat.offsets)),
         Bytes(std::span<const NodeId>(flat.pool)),
         Bytes(std::span<const uint32_t>(exported.view.CoverageCounts()))},
    });
  }

  // --- Lay out the file and build the table. ----------------------------
  std::vector<SectionEntry> table(sections.size());
  uint64_t cursor =
      AlignUp(sizeof(FileHeader) + sections.size() * sizeof(SectionEntry));
  for (size_t i = 0; i < sections.size(); ++i) {
    SectionEntry& entry = table[i];
    std::memset(&entry, 0, sizeof(entry));
    entry.type = static_cast<uint32_t>(sections[i].type);
    entry.offset = cursor;
    entry.bytes = sections[i].TotalBytes();
    entry.count = sections[i].count;
    entry.payload_crc = sections[i].Crc();
    cursor = AlignUp(entry.offset + entry.bytes);
  }
  const uint64_t file_bytes =
      table.empty() ? sizeof(FileHeader)
                    : table.back().offset + table.back().bytes;

  FileHeader header;
  std::memset(&header, 0, sizeof(header));
  std::memcpy(header.magic, kSnapshotMagic, sizeof(header.magic));
  header.version = kSnapshotVersion;
  header.file_bytes = file_bytes;
  header.section_count = static_cast<uint32_t>(sections.size());
  header.flags = options.include_reverse_csr ? kFlagHasReverseCsr : 0;
  header.graph_digest = digest;
  header.table_crc = Crc32(table.data(), table.size() * sizeof(SectionEntry));
  header.header_crc = Crc32(&header, sizeof(header));  // header_crc still 0 here

  // --- Write to a temp file, then rename into place. --------------------
  const std::string tmp_path = path + ".tmp";
  {
    FileWriter writer(tmp_path);
    if (!writer.ok()) return writer.Error("open");
    ASM_RETURN_NOT_OK(writer.Write(Bytes(&header, sizeof(header))));
    ASM_RETURN_NOT_OK(
        writer.Write(Bytes(table.data(), table.size() * sizeof(SectionEntry))));
    for (size_t i = 0; i < sections.size(); ++i) {
      ASM_RETURN_NOT_OK(writer.PadTo(table[i].offset));
      for (const auto piece : sections[i].pieces) {
        ASM_RETURN_NOT_OK(writer.Write(piece));
      }
    }
    ASM_RETURN_NOT_OK(writer.Close());
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const Status status =
        Status::IOError("rename '" + tmp_path + "' -> '" + path + "': " + std::strerror(errno));
    std::remove(tmp_path.c_str());
    return status;
  }
  return Status::OK();
}

}  // namespace asti::store
