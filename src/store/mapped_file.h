// Read-only file mapping with a heap fallback.
//
// On POSIX hosts the file is mmap'd MAP_PRIVATE|PROT_READ and advised
// MADV_RANDOM (snapshot readers touch sections on demand; sequential
// readahead would fault in arrays nobody asked for). Elsewhere — or when
// mmap fails — the whole file is read into an owned heap buffer, so every
// consumer sees the same `span<const std::byte>` either way and only the
// cold-start cost differs.
//
// MappedFile is movable, not copyable; consumers that need shared
// lifetime (graph views, collection chunks) wrap it in a shared_ptr
// keepalive (SnapshotPayload in snapshot_store.h).

#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "util/status.h"

namespace asti::store {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps (or reads) `path` read-only. IOError with the failing path and
  /// errno text on open/stat/map failure; an empty file maps successfully
  /// to an empty span.
  static StatusOr<MappedFile> Open(const std::string& path);

  std::span<const std::byte> bytes() const { return {data_, size_}; }
  size_t size() const { return size_; }
  /// True when the bytes live in an mmap'd region (vs the heap fallback).
  bool is_mapped() const { return mapped_; }

 private:
  /// The heap fallback (and non-POSIX path): reads the whole file.
  static StatusOr<MappedFile> ReadWholeFile(const std::string& path);

  void Reset() noexcept;

  const std::byte* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;                       // munmap on destruction
  std::unique_ptr<std::byte[]> heap_;         // fallback ownership
};

}  // namespace asti::store
