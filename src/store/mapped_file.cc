#include "store/mapped_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define ASTI_STORE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define ASTI_STORE_HAVE_MMAP 0
#endif

namespace asti::store {

namespace {

Status IoError(const std::string& op, const std::string& path) {
  return Status::IOError(op + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

MappedFile::~MappedFile() { Reset(); }

void MappedFile::Reset() noexcept {
#if ASTI_STORE_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  heap_.reset();
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      heap_(std::move(other.heap_)) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    heap_ = std::move(other.heap_);
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

StatusOr<MappedFile> MappedFile::ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return IoError("open", path);
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end < 0) {
    std::fclose(f);
    return IoError("size", path);
  }
  std::fseek(f, 0, SEEK_SET);
  const size_t size = static_cast<size_t>(end);
  auto heap = std::make_unique<std::byte[]>(size > 0 ? size : 1);
  if (size > 0 && std::fread(heap.get(), 1, size, f) != size) {
    std::fclose(f);
    return IoError("read", path);
  }
  std::fclose(f);
  MappedFile file;
  file.heap_ = std::move(heap);
  file.data_ = file.heap_.get();
  file.size_ = size;
  file.mapped_ = false;
  return file;
}

StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
#if ASTI_STORE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IoError("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return IoError("stat", path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MappedFile();  // empty span; is_mapped() == false
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping holds its own reference to the file; the descriptor is not
  // needed past this point either way.
  ::close(fd);
  if (addr == MAP_FAILED) {
    // e.g. a filesystem without mapping support — fall back to a copy.
    return ReadWholeFile(path);
  }
  // Snapshot readers fault sections on demand; block readahead of arrays
  // nobody asked for. Best-effort — the advice failing is not an error.
  ::madvise(addr, size, MADV_RANDOM);
  MappedFile file;
  file.data_ = static_cast<const std::byte*>(addr);
  file.size_ = size;
  file.mapped_ = true;
  return file;
#else
  return ReadWholeFile(path);
#endif
}

}  // namespace asti::store
