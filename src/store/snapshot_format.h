// ASMS v1 — the on-disk snapshot format of the store (src/store/README.md
// has the layout diagram and compat rules).
//
// A snapshot is a single little-endian file: a fixed 64-byte header, a
// section table (one 48-byte entry per section), then the section payloads,
// each 64-byte aligned. Sections carry the graph metadata, the forward
// CSR, optionally the reverse CSR (flag bit 0; omitted for compact files
// and rebuilt on load), and any number of sealed RR-collection sections.
// Every payload has a CRC-32 recorded in its table entry; the header and
// table carry their own CRCs, so any flipped byte is attributable to one
// section.
//
// The layout is chosen so a loader can hand out zero-copy views: array
// payloads are stored exactly as the in-memory spans DirectedGraph /
// CollectionView consume (u32 offsets/targets/edge-ids, f64 probabilities,
// u64 collection offsets), at file offsets aligned for their element type.
// Structural validation — header, table, bounds, per-section size
// consistency — is O(sections), so registering a multi-GB snapshot costs
// page faults, not an O(m) parse; full checksum verification is a separate
// opt-in pass (SnapshotVerify::kChecksums).

#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace asti::store {

// The format writes native-endian PODs and declares the file little-endian;
// big-endian hosts would need byte-swapping readers nobody has asked for.
static_assert(std::endian::native == std::endian::little,
              "ASMS snapshots are little-endian; this host is not");

inline constexpr char kSnapshotMagic[4] = {'A', 'S', 'M', 'S'};
inline constexpr uint32_t kSnapshotVersion = 1;

/// Payloads (and the section table) start at multiples of this, so every
/// mapped array is aligned for its element type and each section begins on
/// its own cache line.
inline constexpr uint64_t kSectionAlignment = 64;

/// FileHeader::flags bit 0: the reverse CSR sections (kInOffsets..
/// kInEdgeIds) are present. When clear, the loader rebuilds the reverse
/// CSR on open (O(n + m) counting sort) — the untangle-style
/// omit-index/rebuild-on-load trade for compact files.
inline constexpr uint32_t kFlagHasReverseCsr = 1u << 0;

enum class SectionType : uint32_t {
  kGraphMeta = 1,   // GraphMetaSection + name chars; count = name length
  kOutOffsets = 2,  // u32[n+1]
  kOutTargets = 3,  // u32[m]
  kOutProbs = 4,    // f64[m]
  kInOffsets = 5,   // u32[n+1]   (reverse group: all four or none)
  kInSources = 6,   // u32[m]
  kInProbs = 7,     // f64[m]
  kInEdgeIds = 8,   // u32[m]
  // One sealed RR/mRR collection: CollectionSectionHeader, then
  // u64 set_offsets[num_sets+1], u32 pool[total_entries],
  // u32 coverage[num_nodes]. count = num_sets.
  kRrCollection = 16,
};

struct FileHeader {
  char magic[4];           // "ASMS"
  uint32_t version;        // kSnapshotVersion
  uint64_t file_bytes;     // total file size; truncation check
  uint32_t section_count;
  uint32_t flags;          // kFlagHasReverseCsr | ...
  /// Identity of the graph payload: a mix of (n, m) and the forward-CSR
  /// section CRCs, computed at write time. Collection sections repeat it,
  /// so a collection pasted from a different graph's snapshot is refused
  /// in O(1) without hashing the arrays.
  uint64_t graph_digest;
  uint32_t table_crc;      // CRC-32 of the section table
  uint32_t header_crc;     // CRC-32 of this struct with header_crc = 0
  uint64_t reserved[3];
};
static_assert(sizeof(FileHeader) == 64);

struct SectionEntry {
  uint32_t type;        // SectionType
  uint32_t reserved0;
  uint64_t offset;      // from file start; multiple of kSectionAlignment
  uint64_t bytes;       // payload length
  uint64_t count;       // element count; semantics per SectionType
  uint32_t payload_crc; // CRC-32 of the payload bytes
  uint32_t reserved1;
  uint64_t reserved2;
};
static_assert(sizeof(SectionEntry) == 48);

/// Fixed head of a kGraphMeta payload; the graph name follows immediately.
struct GraphMetaSection {
  uint64_t num_nodes;
  uint64_t num_edges;
  uint32_t weight_scheme;  // asti::WeightScheme
  uint32_t name_bytes;
};
static_assert(sizeof(GraphMetaSection) == 24);

/// Fixed head of a kRrCollection payload. The three arrays follow at the
/// offsets implied by the counts (set_offsets is 8-aligned because the
/// header is 64 bytes and the section itself is 64-aligned).
struct CollectionSectionHeader {
  uint8_t kind;      // SamplerCacheKey::Kind
  uint8_t model;     // DiffusionModel
  uint8_t rounding;  // RootRounding
  uint8_t reserved0;
  uint32_t eta;
  /// Must equal kCacheStreamSeed at load: collections generated under a
  /// different stream family are not what cold generation would produce.
  uint64_t stream_seed;
  /// Must equal kSamplerContractVersion at load (see sampler_cache.h).
  uint32_t contract_version;
  uint32_t reserved1;
  /// Must equal the file header's graph_digest at load.
  uint64_t graph_digest;
  uint64_t num_nodes;
  uint64_t num_sets;
  uint64_t total_entries;
  uint64_t reserved2;
};
static_assert(sizeof(CollectionSectionHeader) == 64);

/// Next multiple of kSectionAlignment.
inline constexpr uint64_t AlignUp(uint64_t offset) {
  return (offset + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

/// FileHeader::graph_digest: FNV-1a-style mix of the graph shape and the
/// forward-CSR payload CRCs. Both sides compute it from section-table
/// entries — the writer as it lays the table out, the loader from the
/// mapped table — so verifying a collection's provenance never touches the
/// array payloads.
inline constexpr uint64_t GraphDigest(uint64_t num_nodes, uint64_t num_edges,
                                      uint32_t out_offsets_crc, uint32_t out_targets_crc,
                                      uint32_t out_probs_crc) {
  uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(num_nodes);
  mix(num_edges);
  mix(out_offsets_crc);
  mix(out_targets_crc);
  mix(out_probs_crc);
  return h;
}

}  // namespace asti::store
