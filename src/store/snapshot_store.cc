#include "store/snapshot_store.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <limits>
#include <map>
#include <optional>
#include <utility>

#include "graph/binary_io.h"
#include "graph/graph_builder.h"
#include "store/mapped_file.h"
#include "store/snapshot_format.h"
#include "util/crc32.h"

namespace asti::store {

namespace {

/// Owns everything a loaded snapshot's spans point into: the mapping (or
/// heap fallback) plus, for compact files, the rebuilt reverse arrays.
/// Graph copies, collection chunks, and warm-source prefixes all hold a
/// shared_ptr to one of these — the "retire mid-solve keeps the mapping
/// alive" guarantee is this refcount.
struct SnapshotPayload {
  MappedFile file;
  GraphStorage rebuilt;  // reverse CSR only; empty when the file carries one
};

const char* SectionName(uint32_t type) {
  switch (static_cast<SectionType>(type)) {
    case SectionType::kGraphMeta:
      return "graph_meta";
    case SectionType::kOutOffsets:
      return "out_offsets";
    case SectionType::kOutTargets:
      return "out_targets";
    case SectionType::kOutProbs:
      return "out_probs";
    case SectionType::kInOffsets:
      return "in_offsets";
    case SectionType::kInSources:
      return "in_sources";
    case SectionType::kInProbs:
      return "in_probs";
    case SectionType::kInEdgeIds:
      return "in_edge_ids";
    case SectionType::kRrCollection:
      return "rr_collection";
  }
  return "unknown";
}

std::string SectionLabel(size_t index, uint32_t type) {
  return "section " + std::to_string(index) + " (" + SectionName(type) + ")";
}

Status Bad(const std::string& path, const std::string& msg) {
  return Status::InvalidArgument("snapshot '" + path + "': " + msg);
}

template <class T>
std::span<const T> SpanAt(std::span<const std::byte> bytes, uint64_t offset,
                          uint64_t count) {
  return {reinterpret_cast<const T*>(bytes.data() + offset), static_cast<size_t>(count)};
}

/// One validated collection section, as spans into the mapping.
struct CollectionRecord {
  SamplerCacheKey key;
  std::span<const uint64_t> offsets;
  std::span<const NodeId> pool;
  std::span<const uint32_t> coverage;
};

/// Everything Parse() extracts; spans point into the file bytes.
struct Parsed {
  FileHeader header;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  WeightScheme scheme = WeightScheme::kWeightedCascade;
  std::string name;
  std::span<const EdgeId> out_offsets;
  std::span<const NodeId> out_targets;
  std::span<const double> out_probs;
  std::span<const EdgeId> in_offsets;
  std::span<const NodeId> in_sources;
  std::span<const double> in_probs;
  std::span<const EdgeId> in_edge_ids;
  bool has_reverse = false;
  std::vector<CollectionRecord> collections;
};

/// Validates `bytes` as an ASMS v1 file at the requested tier and extracts
/// typed spans. Structural work is O(section_count) — it never walks an
/// array payload (the kChecksums CRC pass at the end is the only O(file)
/// part, and only when asked for).
StatusOr<Parsed> Parse(std::span<const std::byte> bytes, const std::string& path,
                       SnapshotVerify verify) {
  // Header.
  if (bytes.size() < sizeof(FileHeader)) {
    return Bad(path, "file header: only " + std::to_string(bytes.size()) +
                         " bytes, need " + std::to_string(sizeof(FileHeader)) +
                         " (truncated?)");
  }
  Parsed parsed;
  std::memcpy(&parsed.header, bytes.data(), sizeof(FileHeader));
  const FileHeader& header = parsed.header;
  if (std::memcmp(header.magic, kSnapshotMagic, sizeof(header.magic)) != 0) {
    if (std::memcmp(header.magic, "ASMG", 4) == 0) {
      return Bad(path,
                 "file header: this is an ASMG v1 graph file, not an ASMS snapshot; "
                 "convert it first (asm_tool --convert-asmg)");
    }
    return Bad(path, "file header: bad magic (not an ASMS snapshot)");
  }
  if (header.version != kSnapshotVersion) {
    return Bad(path, "file header: unsupported snapshot version " +
                         std::to_string(header.version) + " (this build reads version " +
                         std::to_string(kSnapshotVersion) + ")");
  }
  {
    FileHeader crc_input = header;
    crc_input.header_crc = 0;
    if (Crc32(&crc_input, sizeof(crc_input)) != header.header_crc) {
      return Bad(path, "file header: CRC mismatch (header corrupted)");
    }
  }
  if (header.file_bytes != bytes.size()) {
    return Bad(path, "file header: declares " + std::to_string(header.file_bytes) +
                         " bytes but the file has " + std::to_string(bytes.size()) +
                         " (truncated or padded)");
  }

  // Section table.
  const uint64_t table_bytes = uint64_t{header.section_count} * sizeof(SectionEntry);
  const uint64_t table_end = sizeof(FileHeader) + table_bytes;
  if (header.section_count == 0 || table_end > bytes.size()) {
    return Bad(path, "section table: " + std::to_string(header.section_count) +
                         " sections do not fit in the file");
  }
  const std::span<const SectionEntry> table =
      SpanAt<SectionEntry>(bytes, sizeof(FileHeader), header.section_count);
  if (Crc32(table.data(), table_bytes) != header.table_crc) {
    return Bad(path, "section table: CRC mismatch (table corrupted)");
  }

  // Per-entry bounds; locate the singleton graph sections.
  constexpr size_t kMaxGraphType = static_cast<size_t>(SectionType::kInEdgeIds);
  std::optional<size_t> graph_sections[kMaxGraphType + 1];
  std::vector<size_t> collection_sections;
  for (size_t i = 0; i < table.size(); ++i) {
    const SectionEntry& entry = table[i];
    const std::string label = SectionLabel(i, entry.type);
    const bool known_graph =
        entry.type >= 1 && entry.type <= kMaxGraphType;
    if (!known_graph && entry.type != static_cast<uint32_t>(SectionType::kRrCollection)) {
      return Bad(path, label + ": unknown section type");
    }
    if (entry.offset % kSectionAlignment != 0) {
      return Bad(path, label + ": offset " + std::to_string(entry.offset) +
                           " is not " + std::to_string(kSectionAlignment) + "-aligned");
    }
    if (entry.offset < table_end || entry.bytes > bytes.size() ||
        entry.offset > bytes.size() - entry.bytes) {
      return Bad(path, label + ": payload [" + std::to_string(entry.offset) + ", +" +
                           std::to_string(entry.bytes) + ") is out of file range");
    }
    if (known_graph) {
      if (graph_sections[entry.type].has_value()) {
        return Bad(path, label + ": duplicate section type");
      }
      graph_sections[entry.type] = i;
    } else {
      collection_sections.push_back(i);
    }
  }
  const auto required = [&](SectionType type) -> StatusOr<size_t> {
    const auto slot = graph_sections[static_cast<size_t>(type)];
    if (!slot.has_value()) {
      return Bad(path, std::string("missing required section ") +
                           SectionName(static_cast<uint32_t>(type)));
    }
    return *slot;
  };

  // Graph metadata.
  ASM_ASSIGN_OR_RETURN(const size_t meta_index, required(SectionType::kGraphMeta));
  {
    const SectionEntry& entry = table[meta_index];
    const std::string label = SectionLabel(meta_index, entry.type);
    if (entry.bytes < sizeof(GraphMetaSection)) {
      return Bad(path, label + ": payload shorter than its fixed header");
    }
    GraphMetaSection meta;
    std::memcpy(&meta, bytes.data() + entry.offset, sizeof(meta));
    if (entry.bytes != sizeof(GraphMetaSection) + meta.name_bytes ||
        entry.count != meta.name_bytes) {
      return Bad(path, label + ": name length inconsistent with payload size");
    }
    if (meta.num_nodes > std::numeric_limits<NodeId>::max() - 1 ||
        meta.num_edges > std::numeric_limits<EdgeId>::max()) {
      return Bad(path, label + ": graph too large for 32-bit node/edge ids");
    }
    if (meta.weight_scheme > static_cast<uint32_t>(WeightScheme::kTrivalency)) {
      return Bad(path, label + ": unknown weight scheme " +
                           std::to_string(meta.weight_scheme));
    }
    parsed.num_nodes = meta.num_nodes;
    parsed.num_edges = meta.num_edges;
    parsed.scheme = static_cast<WeightScheme>(meta.weight_scheme);
    parsed.name.assign(
        reinterpret_cast<const char*>(bytes.data() + entry.offset + sizeof(meta)),
        meta.name_bytes);
    if (parsed.name.empty()) return Bad(path, label + ": empty graph name");
  }
  const uint64_t n = parsed.num_nodes;
  const uint64_t m = parsed.num_edges;

  // Array-section shapes. Everything here is table arithmetic — no payload
  // reads beyond the O(1) endpoint peeks at the bottom.
  const auto array_section = [&](SectionType type, uint64_t want_count,
                                 size_t elem_bytes) -> StatusOr<size_t> {
    ASM_ASSIGN_OR_RETURN(const size_t index, required(type));
    const SectionEntry& entry = table[index];
    if (entry.count != want_count || entry.bytes != want_count * elem_bytes) {
      return Bad(path, SectionLabel(index, entry.type) + ": expected " +
                           std::to_string(want_count) + " elements (" +
                           std::to_string(want_count * elem_bytes) + " bytes), found " +
                           std::to_string(entry.count) + " (" +
                           std::to_string(entry.bytes) + " bytes)");
    }
    return index;
  };
  ASM_ASSIGN_OR_RETURN(const size_t oo_index,
                       array_section(SectionType::kOutOffsets, n + 1, sizeof(EdgeId)));
  ASM_ASSIGN_OR_RETURN(const size_t ot_index,
                       array_section(SectionType::kOutTargets, m, sizeof(NodeId)));
  ASM_ASSIGN_OR_RETURN(const size_t op_index,
                       array_section(SectionType::kOutProbs, m, sizeof(double)));
  parsed.out_offsets = SpanAt<EdgeId>(bytes, table[oo_index].offset, n + 1);
  parsed.out_targets = SpanAt<NodeId>(bytes, table[ot_index].offset, m);
  parsed.out_probs = SpanAt<double>(bytes, table[op_index].offset, m);

  parsed.has_reverse = (header.flags & kFlagHasReverseCsr) != 0;
  for (const SectionType type : {SectionType::kInOffsets, SectionType::kInSources,
                                 SectionType::kInProbs, SectionType::kInEdgeIds}) {
    const bool present = graph_sections[static_cast<size_t>(type)].has_value();
    if (present != parsed.has_reverse) {
      return Bad(path, std::string("reverse CSR section ") +
                           SectionName(static_cast<uint32_t>(type)) +
                           (present ? " present but the header flag says omitted"
                                    : " missing but the header flag says present"));
    }
  }
  if (parsed.has_reverse) {
    ASM_ASSIGN_OR_RETURN(const size_t io_index,
                         array_section(SectionType::kInOffsets, n + 1, sizeof(EdgeId)));
    ASM_ASSIGN_OR_RETURN(const size_t is_index,
                         array_section(SectionType::kInSources, m, sizeof(NodeId)));
    ASM_ASSIGN_OR_RETURN(const size_t ip_index,
                         array_section(SectionType::kInProbs, m, sizeof(double)));
    ASM_ASSIGN_OR_RETURN(const size_t ie_index,
                         array_section(SectionType::kInEdgeIds, m, sizeof(EdgeId)));
    parsed.in_offsets = SpanAt<EdgeId>(bytes, table[io_index].offset, n + 1);
    parsed.in_sources = SpanAt<NodeId>(bytes, table[is_index].offset, m);
    parsed.in_probs = SpanAt<double>(bytes, table[ip_index].offset, m);
    parsed.in_edge_ids = SpanAt<EdgeId>(bytes, table[ie_index].offset, m);
  }

  // The digest the whole file must agree on, recomputed from table CRCs.
  const uint64_t digest =
      GraphDigest(n, m, table[oo_index].payload_crc, table[ot_index].payload_crc,
                  table[op_index].payload_crc);
  if (digest != header.graph_digest) {
    return Bad(path,
               "file header: graph digest does not match the section table "
               "(header and payload sections disagree about which graph this is)");
  }

  // O(1) payload endpoint peeks: enough to keep every CSR subspan inside
  // its arrays without an O(n) monotonicity walk.
  if (parsed.out_offsets.front() != 0 || parsed.out_offsets.back() != m) {
    return Bad(path, SectionLabel(oo_index, table[oo_index].type) +
                         ": endpoints do not describe " + std::to_string(m) + " edges");
  }
  if (parsed.has_reverse &&
      (parsed.in_offsets.front() != 0 || parsed.in_offsets.back() != m)) {
    return Bad(path, "section in_offsets: endpoints do not describe " +
                         std::to_string(m) + " edges");
  }

  // Collection sections: shape, then provenance (the certification
  // AdoptSealedPrefix's caller is responsible for).
  std::map<SamplerCacheKey, size_t> seen_keys;
  for (const size_t i : collection_sections) {
    const SectionEntry& entry = table[i];
    const std::string label = SectionLabel(i, entry.type);
    if (entry.bytes < sizeof(CollectionSectionHeader)) {
      return Bad(path, label + ": payload shorter than its fixed header");
    }
    CollectionSectionHeader ch;
    std::memcpy(&ch, bytes.data() + entry.offset, sizeof(ch));
    // Bound counts by the payload size before computing the expected size,
    // so a corrupt header cannot overflow the arithmetic below.
    if (ch.num_sets > entry.bytes / sizeof(uint64_t) ||
        ch.total_entries > entry.bytes / sizeof(NodeId)) {
      return Bad(path, label + ": set/entry counts exceed the payload size");
    }
    const uint64_t expected = sizeof(CollectionSectionHeader) +
                              (ch.num_sets + 1) * sizeof(uint64_t) +
                              ch.total_entries * sizeof(NodeId) +
                              ch.num_nodes * sizeof(uint32_t);
    if (entry.bytes != expected || entry.count != ch.num_sets) {
      return Bad(path, label + ": payload size inconsistent with its header counts");
    }
    if (ch.num_nodes != n) {
      return Bad(path, label + ": coverage is over " + std::to_string(ch.num_nodes) +
                           " nodes but the graph has " + std::to_string(n));
    }
    if (ch.kind > static_cast<uint8_t>(SamplerCacheKey::Kind::kMrr) ||
        ch.model > static_cast<uint8_t>(DiffusionModel::kLinearThreshold) ||
        ch.rounding > static_cast<uint8_t>(RootRounding::kCeil)) {
      return Bad(path, label + ": unknown kind/model/rounding");
    }
    if (ch.graph_digest != digest) {
      return Bad(path, label +
                           ": generated for a different graph (digest mismatch); "
                           "stale collection cannot warm-start this snapshot");
    }
    if (ch.stream_seed != kCacheStreamSeed) {
      return Bad(path, label + ": written under a different sampler stream seed");
    }
    if (ch.contract_version != kSamplerContractVersion) {
      return Bad(path, label + ": sampler contract version " +
                           std::to_string(ch.contract_version) +
                           " (this build implements version " +
                           std::to_string(kSamplerContractVersion) + ")");
    }
    CollectionRecord record;
    record.key.kind = static_cast<SamplerCacheKey::Kind>(ch.kind);
    record.key.model = static_cast<DiffusionModel>(ch.model);
    record.key.eta = static_cast<NodeId>(ch.eta);
    record.key.rounding = static_cast<RootRounding>(ch.rounding);
    if (const auto [it, inserted] = seen_keys.emplace(record.key, i); !inserted) {
      return Bad(path, label + ": duplicate collection key (also section " +
                           std::to_string(it->second) + ")");
    }
    uint64_t cursor = entry.offset + sizeof(CollectionSectionHeader);
    record.offsets = SpanAt<uint64_t>(bytes, cursor, ch.num_sets + 1);
    cursor += (ch.num_sets + 1) * sizeof(uint64_t);
    record.pool = SpanAt<NodeId>(bytes, cursor, ch.total_entries);
    cursor += ch.total_entries * sizeof(NodeId);
    record.coverage = SpanAt<uint32_t>(bytes, cursor, ch.num_nodes);
    // O(1) endpoint peeks (AdoptSealedPrefix hard-asserts these; a corrupt
    // file must fail soft here instead).
    if (record.offsets.front() != 0 || record.offsets.back() != ch.total_entries) {
      return Bad(path, label + ": set offsets do not describe " +
                           std::to_string(ch.total_entries) + " pool entries");
    }
    parsed.collections.push_back(std::move(record));
  }

  if (verify == SnapshotVerify::kChecksums) {
    for (size_t i = 0; i < table.size(); ++i) {
      const SectionEntry& entry = table[i];
      const uint32_t crc = Crc32(bytes.data() + entry.offset, entry.bytes);
      if (crc != entry.payload_crc) {
        return Bad(path, SectionLabel(i, entry.type) + ": payload CRC mismatch");
      }
    }
  }
  return parsed;
}

/// Pre-rebuild validation of the forward CSR — only on the omit-reverse
/// path, where the counting sort is about to index by these values and an
/// out-of-range target would scribble outside its arrays. O(n + m), which
/// the rebuild already costs; reverse-carrying files skip both.
Status ValidateForwardCsr(const Parsed& parsed, const std::string& path) {
  const uint64_t n = parsed.num_nodes;
  for (uint64_t u = 0; u < n; ++u) {
    if (parsed.out_offsets[u] > parsed.out_offsets[u + 1]) {
      return Bad(path, "section out_offsets: not monotone at node " + std::to_string(u));
    }
  }
  for (const NodeId target : parsed.out_targets) {
    if (target >= n) {
      return Bad(path, "section out_targets: node id " + std::to_string(target) +
                           " out of range (graph has " + std::to_string(n) + " nodes)");
    }
  }
  return Status::OK();
}

class SnapshotWarmSource final : public CollectionWarmSource {
 public:
  SnapshotWarmSource(std::shared_ptr<const SnapshotPayload> payload,
                     std::vector<CollectionRecord> records)
      : payload_(std::move(payload)) {
    for (CollectionRecord& record : records) {
      entries_.emplace(record.key, record);
    }
  }

  std::optional<PersistedSealedPrefix> Find(const SamplerCacheKey& key) const override {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    PersistedSealedPrefix prefix;
    prefix.offsets = it->second.offsets;
    prefix.pool = it->second.pool;
    prefix.coverage = it->second.coverage;
    prefix.owner = payload_;
    return prefix;
  }

 private:
  std::shared_ptr<const SnapshotPayload> payload_;
  std::map<SamplerCacheKey, CollectionRecord> entries_;
};

bool PathSafeName(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return name != "." && name != "..";
}

}  // namespace

StatusOr<GraphSnapshot> OpenSnapshot(const std::string& path, SnapshotVerify verify) {
  ASM_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  auto payload = std::make_shared<SnapshotPayload>();
  payload->file = std::move(file);
  ASM_ASSIGN_OR_RETURN(Parsed parsed, Parse(payload->file.bytes(), path, verify));

  GraphSnapshot snapshot;
  if (!parsed.has_reverse) {
    ASM_RETURN_NOT_OK(ValidateForwardCsr(parsed, path));
    BuildReverseCsr(parsed.out_offsets, parsed.out_targets, parsed.out_probs,
                    payload->rebuilt);
    parsed.in_offsets = payload->rebuilt.in_offsets;
    parsed.in_sources = payload->rebuilt.in_sources;
    parsed.in_probs = payload->rebuilt.in_probs;
    parsed.in_edge_ids = payload->rebuilt.in_edge_ids;
    snapshot.reverse_rebuilt = true;
  }
  snapshot.name = std::move(parsed.name);
  snapshot.weight_scheme = parsed.scheme;
  snapshot.graph_digest = parsed.header.graph_digest;
  snapshot.file_bytes = payload->file.size();
  snapshot.mapped = payload->file.is_mapped();
  snapshot.collection_sections = parsed.collections.size();
  if (!parsed.collections.empty()) {
    snapshot.warm = std::make_shared<SnapshotWarmSource>(payload,
                                                         std::move(parsed.collections));
  }
  snapshot.graph = DirectedGraph(
      static_cast<NodeId>(parsed.num_nodes), parsed.out_offsets, parsed.out_targets,
      parsed.out_probs, parsed.in_offsets, parsed.in_sources, parsed.in_probs,
      parsed.in_edge_ids, std::move(payload));
  return snapshot;
}

Status VerifySnapshotFile(const std::string& path) {
  ASM_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  return Parse(file.bytes(), path, SnapshotVerify::kChecksums).status();
}

Status ConvertAsmgV1(const std::string& asmg_path, const std::string& asms_path,
                     const std::string& name, WeightScheme scheme,
                     const SnapshotWriteOptions& options) {
  ASM_ASSIGN_OR_RETURN(const DirectedGraph graph, LoadGraphBinary(asmg_path));
  return WriteSnapshot(graph, name, scheme, /*collections=*/{}, asms_path, options);
}

std::string SnapshotStore::PathFor(const std::string& name) const {
  return directory_ + "/" + name + ".asms";
}

StatusOr<GraphSnapshot> SnapshotStore::Load(const std::string& name,
                                            SnapshotVerify verify) const {
  if (!PathSafeName(name)) {
    return Status::InvalidArgument("snapshot name '" + name + "' is not path-safe");
  }
  std::error_code ec;
  if (!std::filesystem::exists(PathFor(name), ec)) {
    return Status::NotFound("no snapshot named '" + name + "' in '" + directory_ + "'");
  }
  return OpenSnapshot(PathFor(name), verify);
}

Status SnapshotStore::Save(const DirectedGraph& graph, const std::string& name,
                           WeightScheme scheme,
                           std::span<const SealedCollectionExport> collections,
                           const SnapshotWriteOptions& options) const {
  if (!PathSafeName(name)) {
    return Status::InvalidArgument("snapshot name '" + name + "' is not path-safe");
  }
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec) {
    return Status::IOError("create directory '" + directory_ + "': " + ec.message());
  }
  return WriteSnapshot(graph, name, scheme, collections, PathFor(name), options);
}

StatusOr<std::vector<std::string>> SnapshotStore::ListNames() const {
  std::vector<std::string> names;
  std::error_code ec;
  if (!std::filesystem::is_directory(directory_, ec)) return names;
  for (const auto& entry : std::filesystem::directory_iterator(directory_, ec)) {
    if (entry.path().extension() == ".asms") {
      names.push_back(entry.path().stem().string());
    }
  }
  if (ec) {
    return Status::IOError("list directory '" + directory_ + "': " + ec.message());
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace asti::store
