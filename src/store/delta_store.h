// Incremental snapshots: `<name>.delta.asms` staged next to `<name>.asms`.
//
// The ROADMAP's "incremental / delta snapshots" item, paired with
// src/delta/: instead of rewriting a multi-GB snapshot for every epoch,
// the store persists only the EdgeDelta ops (ASMD v1, delta/delta_io.h)
// keyed to the base snapshot file's ASMS graph_digest. Every unchanged
// byte is reused from the base file — loading mmaps `<name>.asms` exactly
// as before and mints the next epoch in memory with ApplyDelta, whose
// digest-identity contract guarantees the minted graph matches what a
// full rewritten snapshot of the mutated edge list would have contained.
//
// Bindings checked on load, outermost first: the delta header's
// base_store_digest must equal the base file's graph_digest (a swapped or
// foreign `<name>.asms` is refused in O(1)), then ApplyDelta re-checks the
// batch's forward-CSR base/result digests. The base's persisted warm
// collections stay valid for the BASE epoch only; the minted graph starts
// cold (its distribution changed).

#pragma once

#include <string>

#include "delta/apply.h"
#include "delta/edge_delta.h"
#include "store/snapshot_store.h"
#include "util/status.h"

namespace asti::store {

/// `<dir>/<name>.delta.asms`.
std::string DeltaPathFor(const SnapshotStore& store, const std::string& name);

/// True when the named snapshot has a staged delta.
bool HasDelta(const SnapshotStore& store, const std::string& name);

/// A base snapshot plus its staged delta, applied: the minted next epoch.
struct DeltaSnapshot {
  /// The mmap'd base epoch; its `warm` collections belong to this graph.
  GraphSnapshot base;
  EdgeDelta delta;
  /// The minted next-epoch graph (digest-identical to a from-scratch
  /// rebuild of the mutated edge list). For reweight-only deltas it spans
  /// the base mapping (structure arrays shared); either way copies are
  /// cheap and pin what they need.
  DirectedGraph minted;
  DeltaApplyStats stats;
  /// ForwardCsrDigest of `minted`.
  uint64_t minted_digest = 0;
};

/// Stages `delta` as the named snapshot's next epoch: opens `<name>.asms`,
/// stamps the batch's base/result digests from a trial apply (validating
/// it against the base in the process), and writes `<name>.delta.asms`
/// bound to the base file's graph_digest (tmp + rename). NotFound when the
/// base snapshot is missing; forwards ApplyDelta's InvalidArgument for
/// batches the base cannot absorb.
Status SaveDelta(const SnapshotStore& store, const std::string& name, EdgeDelta delta);

/// Removes a staged delta (OK if none exists; IOError on filesystem
/// failure) — used after the delta is compacted into a full snapshot.
Status DropDelta(const SnapshotStore& store, const std::string& name);

/// Opens `<name>.asms`, verifies `<name>.delta.asms` against it, and mints
/// the next epoch. NotFound when either file is missing.
StatusOr<DeltaSnapshot> LoadSnapshotWithDelta(
    const SnapshotStore& store, const std::string& name,
    SnapshotVerify verify = SnapshotVerify::kStructural);

}  // namespace asti::store
