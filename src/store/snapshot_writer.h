// Writes ASMS v1 snapshot files (snapshot_format.h).
//
// The writer serializes a graph's CSR arrays verbatim from its spans —
// whether the graph is heap-built or itself mmap-backed — plus optional
// sealed RR-collection prefixes exported from a SamplerCache
// (SamplerCache::ExportSealed). Collections are re-flattened through their
// views, so a prefix spanning several shared-collection chunks lands as
// one contiguous section.

#pragma once

#include <span>
#include <string>

#include "graph/generators.h"
#include "graph/graph.h"
#include "sampling/sampler_cache.h"
#include "util/status.h"

namespace asti::store {

struct SnapshotWriteOptions {
  /// Persist the reverse CSR (the default: loads are pure page faults).
  /// When false the file shrinks by ~half and the loader rebuilds the
  /// reverse CSR on open — an O(n + m) counting sort identical to what the
  /// builder produces, so the loaded graph is still bit-identical.
  bool include_reverse_csr = true;
};

/// Serializes `graph` (+ sealed collection prefixes, possibly empty) to
/// `path`, overwriting any existing file. The write is atomic-ish: bytes go
/// to `path` + ".tmp" and are renamed over `path` on success, so a crashed
/// writer never leaves a half-written snapshot under the real name.
/// IOError on filesystem failure; InvalidArgument for an empty name.
Status WriteSnapshot(const DirectedGraph& graph, const std::string& name,
                     WeightScheme scheme,
                     std::span<const SealedCollectionExport> collections,
                     const std::string& path, const SnapshotWriteOptions& options = {});

}  // namespace asti::store
