// ASMS snapshot loading: mmap a snapshot file and serve zero-copy views.
//
// OpenSnapshot maps a file written by WriteSnapshot (snapshot_writer.h)
// and hands back a GraphSnapshot: a span-backed DirectedGraph whose CSR
// arrays point straight into the mapping, plus a CollectionWarmSource over
// any persisted sealed RR-collection sections, for GraphCatalog
// registration (api/snapshot_serving.h wires the two together). The
// mapping is owned by a shared payload that every graph copy, collection
// chunk, and warm-source prefix pins — retiring the catalog entry while a
// solve is mid-flight keeps the mapping alive until the last view drops.
//
// Verification is two-tier (SnapshotVerify):
//
//   * kStructural (default) — O(sections), NOT O(file): header and
//     section-table CRCs, per-section bounds/alignment/shape consistency,
//     graph-digest recomputation from table CRCs, collection provenance
//     (stream seed, contract version, digest) and O(1) payload endpoint
//     peeks. This is what keeps registration time independent of m — a
//     few page faults regardless of graph size. It TRUSTS the payload
//     bytes themselves (no bit-rot scan); a snapshot you just wrote, or
//     one on trusted storage, needs nothing more.
//   * kChecksums — structural plus a full per-section CRC pass over every
//     payload byte. Any flipped bit anywhere in the file is caught and
//     attributed to its section. Use for untrusted/long-archived files
//     (asm_tool --verify-snapshot) and corruption tests.
//
// Either way, a malformed file yields a Status naming the offending
// section — never UB.

#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "sampling/sampler_cache.h"
#include "store/snapshot_writer.h"
#include "util/status.h"

namespace asti::store {

enum class SnapshotVerify {
  kStructural,  // O(sections) shape + CRC-of-metadata checks (default)
  kChecksums,   // structural + full payload CRC pass (reads every byte)
};

/// A loaded snapshot. `graph` (and every copy of it) and `warm` pin the
/// underlying mapping; the file stays resident until the last ref drops.
struct GraphSnapshot {
  DirectedGraph graph;
  std::string name;
  WeightScheme weight_scheme = WeightScheme::kWeightedCascade;
  /// The file's graph digest (header + all collection sections agree).
  uint64_t graph_digest = 0;
  /// Persisted sealed collection prefixes, certified for warm start; null
  /// when the file carries no collection sections.
  std::shared_ptr<const CollectionWarmSource> warm;
  size_t collection_sections = 0;
  uint64_t file_bytes = 0;
  /// True when the file omitted the reverse CSR and it was rebuilt on load
  /// (O(n + m) counting sort — identical arrays to a persisted reverse).
  bool reverse_rebuilt = false;
  /// True when the bytes are mmap'd (false: heap-read fallback).
  bool mapped = false;
};

/// Maps `path` and validates it at the requested tier. InvalidArgument for
/// format violations (message names the offending section; an ASMG v1 file
/// is recognized and redirected to the conversion path), IOError for
/// filesystem failures.
StatusOr<GraphSnapshot> OpenSnapshot(const std::string& path,
                                     SnapshotVerify verify = SnapshotVerify::kStructural);

/// Full-checksum validation of a snapshot file without constructing any
/// views (asm_tool --verify-snapshot). OK iff OpenSnapshot(path,
/// kChecksums) would succeed.
Status VerifySnapshotFile(const std::string& path);

/// Satellite path for legacy files: loads an ASMG v1 graph (forward CSR
/// only; reverse derived by counting sort) and rewrites it as an ASMS
/// snapshot at `asms_path` under `name`. The scheme is recorded in the
/// snapshot's metadata (ASMG files do not carry one).
Status ConvertAsmgV1(const std::string& asmg_path, const std::string& asms_path,
                     const std::string& name, WeightScheme scheme,
                     const SnapshotWriteOptions& options = {});

/// A directory of snapshots, one file per graph name (`<dir>/<name>.asms`).
/// Thin naming convention over WriteSnapshot/OpenSnapshot — the unit the
/// serving layer points --snapshot-dir at.
class SnapshotStore {
 public:
  explicit SnapshotStore(std::string directory) : directory_(std::move(directory)) {}

  const std::string& directory() const { return directory_; }

  /// `<dir>/<name>.asms`. Names must be non-empty and path-safe
  /// ([A-Za-z0-9._-]); Save/Load reject anything else.
  std::string PathFor(const std::string& name) const;

  StatusOr<GraphSnapshot> Load(const std::string& name,
                               SnapshotVerify verify = SnapshotVerify::kStructural) const;

  /// Writes `<dir>/<name>.asms` (creating the directory if needed),
  /// overwriting atomically via rename.
  Status Save(const DirectedGraph& graph, const std::string& name, WeightScheme scheme,
              std::span<const SealedCollectionExport> collections = {},
              const SnapshotWriteOptions& options = {}) const;

  /// Names of every `*.asms` file in the directory, sorted. A missing
  /// directory lists as empty (it is created lazily by Save).
  StatusOr<std::vector<std::string>> ListNames() const;

 private:
  std::string directory_;
};

}  // namespace asti::store
