#include "store/delta_store.h"

#include <filesystem>
#include <utility>

#include "delta/delta_io.h"
#include "shard/partition.h"

namespace asti::store {

std::string DeltaPathFor(const SnapshotStore& store, const std::string& name) {
  return store.directory() + "/" + name + ".delta.asms";
}

bool HasDelta(const SnapshotStore& store, const std::string& name) {
  std::error_code ec;
  return std::filesystem::exists(DeltaPathFor(store, name), ec);
}

Status SaveDelta(const SnapshotStore& store, const std::string& name, EdgeDelta delta) {
  // Load validates the name is path-safe and the base exists; the trial
  // apply inside StampDigests validates the batch against the base graph.
  ASM_ASSIGN_OR_RETURN(const GraphSnapshot base, store.Load(name));
  ASM_RETURN_NOT_OK(StampDigests(base.graph, delta));
  return WriteDeltaBinary(delta, DeltaPathFor(store, name), base.graph_digest);
}

Status DropDelta(const SnapshotStore& store, const std::string& name) {
  std::error_code ec;
  std::filesystem::remove(DeltaPathFor(store, name), ec);
  if (ec) {
    return Status::IOError("remove '" + DeltaPathFor(store, name) + "': " + ec.message());
  }
  return Status::OK();
}

StatusOr<DeltaSnapshot> LoadSnapshotWithDelta(const SnapshotStore& store,
                                              const std::string& name,
                                              SnapshotVerify verify) {
  DeltaSnapshot result;
  ASM_ASSIGN_OR_RETURN(result.base, store.Load(name, verify));
  if (!HasDelta(store, name)) {
    return Status::NotFound("no staged delta for snapshot '" + name + "' in '" +
                            store.directory() + "'");
  }
  uint64_t base_store_digest = 0;
  ASM_ASSIGN_OR_RETURN(result.delta,
                       ReadDeltaBinary(DeltaPathFor(store, name), &base_store_digest));
  if (base_store_digest != 0 && base_store_digest != result.base.graph_digest) {
    return Status::InvalidArgument(
        "delta '" + DeltaPathFor(store, name) + "' is staged against base digest " +
        std::to_string(base_store_digest) + " but '" + name + ".asms' has digest " +
        std::to_string(result.base.graph_digest) +
        " (base snapshot replaced since the delta was staged?)");
  }
  ASM_ASSIGN_OR_RETURN(result.minted,
                       ApplyDelta(result.base.graph, result.delta, &result.stats));
  result.minted_digest = ForwardCsrDigest(result.minted);
  return result;
}

}  // namespace asti::store
