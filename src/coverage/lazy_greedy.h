// CELF-style lazy greedy max coverage (Leskovec et al. 2007).
//
// Functionally equivalent to GreedyMaxCoverage (same covered-set count for
// any tie-breaking) but re-evaluates marginal gains lazily from a max-heap,
// touching only nodes whose cached gain might still be the maximum. On the
// sparse coverage instances TRIM-B produces, this avoids the O(b·n) argmax
// scans; the micro bench quantifies the gap.
//
// With a multi-worker `pool`, stale heap entries are drained in geometric
// batches and their fresh gains re-evaluated concurrently over the node →
// set inverted index (see src/parallel/README.md, "Parallel greedy
// coverage"). Selection is provably the (gain, lowest-node-id) argmax at
// every pick regardless of batch boundaries, so the parallel path returns
// bit-identical results to the sequential one at every thread count.

#pragma once

#include "coverage/max_coverage.h"
#include "parallel/thread_pool.h"
#include "sampling/shared_collection.h"

namespace asti {

/// Lazy (CELF) variant of GreedyMaxCoverage; identical result contract
/// (including candidate deduplication, thread-count invariance, and the
/// per-pick `cancel` poll returning a to-be-discarded partial result).
MaxCoverageResult LazyGreedyMaxCoverage(const CollectionView& collection, NodeId budget,
                                        const std::vector<NodeId>* candidates = nullptr,
                                        ThreadPool* pool = nullptr,
                                        const CancelScope* cancel = nullptr,
                                        RequestProfile* profile = nullptr);

}  // namespace asti
