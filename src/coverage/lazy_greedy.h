// CELF-style lazy greedy max coverage (Leskovec et al. 2007).
//
// Functionally equivalent to GreedyMaxCoverage (same covered-set count for
// any tie-breaking) but re-evaluates marginal gains lazily from a max-heap,
// touching only nodes whose cached gain might still be the maximum. On the
// sparse coverage instances TRIM-B produces, this avoids the O(b·n) argmax
// scans; the micro bench quantifies the gap.

#pragma once

#include "coverage/max_coverage.h"
#include "sampling/rr_collection.h"

namespace asti {

/// Lazy (CELF) variant of GreedyMaxCoverage; identical result contract.
MaxCoverageResult LazyGreedyMaxCoverage(const RrCollection& collection, NodeId budget,
                                        const std::vector<NodeId>* candidates = nullptr);

}  // namespace asti
