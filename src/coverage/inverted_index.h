// Node → set-id inverted index over a collection view (owned RrCollections
// convert implicitly; shared cache prefixes index identically).
//
// Every coverage solver starts from the same structure: for each node v,
// the ids of the stored sets containing v, in ascending set order (CSR
// layout: offsets + flat id array). Built by counting sort over the pool —
// sequentially, or fanned across a ThreadPool with per-chunk counting-sort
// partitions over contiguous set ranges. Chunk c's entries for a node land
// after chunk c-1's, so the ascending-set-id order (and therefore the
// produced index) is bit-identical to the sequential build at every thread
// count.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "parallel/thread_pool.h"
#include "sampling/shared_collection.h"

namespace asti {

/// CSR-style node → set-id index: sets containing v are
/// sets[offsets[v] .. offsets[v + 1]), ascending.
struct InvertedIndex {
  std::vector<size_t> offsets;  // size num_nodes + 1
  std::vector<uint32_t> sets;   // size collection.TotalEntries()

  /// Sets containing v, ascending set id.
  std::pair<size_t, size_t> Range(NodeId v) const {
    return {offsets[v], offsets[v + 1]};
  }
};

/// Builds the index; with a non-null multi-worker `pool` the counting sort
/// runs as parallel per-chunk partitions. Output is identical either way.
InvertedIndex BuildInvertedIndex(const CollectionView& collection,
                                 ThreadPool* pool = nullptr);

}  // namespace asti
