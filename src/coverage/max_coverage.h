// Maximum-coverage solvers over an RR collection.
//
// TRIM-B's per-round subproblem (Alg. 3 line 8) is budgeted maximum
// coverage: pick b nodes covering the most stored sets. GreedyMaxCoverage
// is the classical linear-time greedy with approximation factor
// ρ_b = 1 − (1 − 1/b)^b; ExactMaxCoverage is exponential-time brute force
// used by tests to validate that factor.

#pragma once

#include <vector>

#include "sampling/rr_collection.h"

namespace asti {

/// Result of a budgeted max-coverage computation.
struct MaxCoverageResult {
  std::vector<NodeId> selected;             // chosen nodes, pick order
  uint32_t covered_sets = 0;                // |sets hit by selected|
  std::vector<uint32_t> marginal_coverage;  // newly covered sets per pick
};

/// Greedy max coverage with budget b (ties: lowest node id). Runs in
/// O(Σ|R| + b·n). Picks fewer than b nodes only if b exceeds the candidate
/// pool. When `candidates` is non-null, only those nodes may be picked —
/// TRIM-B passes the residual node list so zero-gain filler picks can never
/// land on an already-active node.
MaxCoverageResult GreedyMaxCoverage(const RrCollection& collection, NodeId budget,
                                    const std::vector<NodeId>* candidates = nullptr);

/// ρ_b = 1 − (1 − 1/b)^b, the greedy guarantee used throughout TRIM-B.
double GreedyCoverageRatio(NodeId budget);

/// Exhaustive optimum over all size-`budget` subsets of [0, n).
/// Exponential; only for small test instances (n choose b ≤ ~1e6).
MaxCoverageResult ExactMaxCoverage(const RrCollection& collection, NodeId budget);

}  // namespace asti
