// Maximum-coverage solvers over an RR collection.
//
// TRIM-B's per-round subproblem (Alg. 3 line 8) is budgeted maximum
// coverage: pick b nodes covering the most stored sets. GreedyMaxCoverage
// is the classical linear-time greedy with approximation factor
// ρ_b = 1 − (1 − 1/b)^b; ExactMaxCoverage is exponential-time brute force
// used by tests to validate that factor.
//
// Every solver accepts an optional ThreadPool. With a multi-worker pool the
// inverted-index build and the argmax / gain scans fan out across workers
// while keeping the (gain, lowest-node-id) selection rule exact, so results
// are bit-identical to the sequential path at every thread count.

#pragma once

#include <vector>

#include "obs/span.h"
#include "parallel/thread_pool.h"
#include "sampling/shared_collection.h"
#include "util/bit_vector.h"
#include "util/cancellation.h"

namespace asti {

/// Result of a budgeted max-coverage computation.
struct MaxCoverageResult {
  std::vector<NodeId> selected;             // chosen nodes, pick order
  uint32_t covered_sets = 0;                // |sets hit by selected|
  std::vector<uint32_t> marginal_coverage;  // newly covered sets per pick
};

/// Greedy max coverage with budget b (ties: lowest node id). Runs in
/// O(Σ|R| + b·n). Picks fewer than b nodes only if b exceeds the candidate
/// pool. When `candidates` is non-null, only those nodes may be picked —
/// TRIM-B passes the residual node list so zero-gain filler picks can never
/// land on an already-active node. Duplicate candidate entries are
/// deduplicated (a node is selected at most once; the pool size counts
/// unique nodes). `pool` parallelizes the per-pick argmax scans. A
/// non-null `cancel` is polled before every pick: once it fires, the
/// partial result so far is returned (callers observing the scope must
/// discard it — completed runs are unaffected by the polls). A non-null
/// `profile` accrues the call's wall time into its coverage slot; it is
/// never read by the solver, so selections are unchanged by it.
MaxCoverageResult GreedyMaxCoverage(const CollectionView& collection, NodeId budget,
                                    const std::vector<NodeId>* candidates = nullptr,
                                    ThreadPool* pool = nullptr,
                                    const CancelScope* cancel = nullptr,
                                    RequestProfile* profile = nullptr);

/// ρ_b = 1 − (1 − 1/b)^b, the greedy guarantee used throughout TRIM-B.
double GreedyCoverageRatio(NodeId budget);

/// Exhaustive optimum over all size-`budget` subsets of [0, n).
/// Exponential; only for small test instances (n choose b ≤ ~1e6).
MaxCoverageResult ExactMaxCoverage(const CollectionView& collection, NodeId budget);

/// Node maximizing score[v] with the (score, lowest id) rule, scanning
/// [0, score.size()) or `domain` when non-null, skipping nodes with
/// skip.Get(v) set when `skip` is non-null. A multi-worker `pool` splits
/// the scan into chunk-local argmaxes merged in chunk order — same result
/// as the sequential scan for every thread count. Returns kInvalidNode iff
/// no node is eligible. `profile` (optional) accrues the scan's wall time
/// into the coverage slot.
NodeId ArgMaxScore(const std::vector<uint32_t>& score, const std::vector<NodeId>* domain,
                   const BitVector* skip, ThreadPool* pool,
                   RequestProfile* profile = nullptr);

/// Λ_R argmax over the collection's coverage counts ((coverage, lowest id)
/// rule) — RrCollection::ArgMaxCoverage with an optional pool behind it.
/// The b = 1 selection TRIM/AdaptIM run every certify iteration.
NodeId ArgMaxCoverage(const CollectionView& collection, ThreadPool* pool,
                      RequestProfile* profile = nullptr);

/// First occurrence of every node in `candidates`, later duplicates
/// dropped; checks every entry against [0, n). The shared guard behind the
/// greedy solvers' candidate contract: a duplicated candidate must not
/// yield two picks of the same node (the second would re-evaluate to gain
/// 0 and be accepted as a filler pick, corrupting TRIM-B's residual-list
/// contract), and the effective pool size counts unique nodes.
std::vector<NodeId> DedupeCandidates(const std::vector<NodeId>& candidates, NodeId n);

}  // namespace asti
