#include "coverage/inverted_index.h"

#include <algorithm>

#include "util/check.h"

namespace asti {

namespace {

// Below this pool size the two extra passes + per-chunk histograms cost
// more than the sequential fill; the output is identical either way.
constexpr size_t kMinParallelEntries = 1 << 14;

// The per-chunk histograms and their merge cost O(chunks · n); only fan
// out when the pool is dense enough (mean coverage per node ≥ this) for
// the parallel entry scans to dominate that overhead.
constexpr size_t kMinMeanCoverage = 4;

}  // namespace

InvertedIndex BuildInvertedIndex(const CollectionView& collection, ThreadPool* pool) {
  const NodeId n = collection.num_nodes();
  const size_t num_sets = collection.NumSets();

  InvertedIndex index;
  index.offsets.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) index.offsets[v + 1] = collection.Coverage(v);
  for (NodeId v = 0; v < n; ++v) index.offsets[v + 1] += index.offsets[v];
  index.sets.resize(collection.TotalEntries());

  const bool parallel = pool != nullptr && pool->NumThreads() > 1 &&
                        collection.TotalEntries() >= kMinParallelEntries &&
                        collection.TotalEntries() >=
                            kMinMeanCoverage * static_cast<size_t>(n);
  if (!parallel) {
    std::vector<size_t> cursor(index.offsets.begin(), index.offsets.end() - 1);
    for (size_t s = 0; s < num_sets; ++s) {
      for (NodeId v : collection.Set(s)) {
        index.sets[cursor[v]++] = static_cast<uint32_t>(s);
      }
    }
    return index;
  }

  // Parallel counting sort: chunk c owns a contiguous set range. Pass 1
  // histograms each chunk's per-node entry counts; a sequential exclusive
  // scan turns the histograms into per-(chunk, node) write cursors (chunk
  // c's entries for v start after chunks < c's); pass 2 rescans and writes.
  // ParallelFor chunk boundaries depend only on (num_sets, NumThreads), so
  // both passes see identical ranges, and ascending (chunk, set-in-chunk)
  // order equals ascending set order — the sequential layout exactly.
  const size_t num_chunks = std::min(num_sets, pool->NumThreads());
  std::vector<std::vector<size_t>> cursors(num_chunks);
  pool->ParallelFor(num_sets, [&](size_t chunk, size_t begin, size_t end) {
    std::vector<size_t>& counts = cursors[chunk];
    counts.assign(n, 0);  // allocated in the worker: first-touch locality
    for (size_t s = begin; s < end; ++s) {
      for (NodeId v : collection.Set(s)) ++counts[v];
    }
  });
  for (NodeId v = 0; v < n; ++v) {
    size_t cursor = index.offsets[v];
    for (size_t c = 0; c < num_chunks; ++c) {
      // ParallelFor's ceil division can leave trailing chunks undispatched
      // (e.g. 17 sets on 8 threads run as 6 chunks of 3); their histograms
      // were never allocated and contribute nothing.
      if (cursors[c].empty()) continue;
      const size_t count = cursors[c][v];
      cursors[c][v] = cursor;
      cursor += count;
    }
    ASM_DCHECK(cursor == index.offsets[v + 1]);
  }
  pool->ParallelFor(num_sets, [&](size_t chunk, size_t begin, size_t end) {
    std::vector<size_t>& cursor = cursors[chunk];
    for (size_t s = begin; s < end; ++s) {
      for (NodeId v : collection.Set(s)) {
        index.sets[cursor[v]++] = static_cast<uint32_t>(s);
      }
    }
  });
  return index;
}

}  // namespace asti
