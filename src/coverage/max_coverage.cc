#include "coverage/max_coverage.h"

#include <algorithm>
#include <cmath>

#include "coverage/inverted_index.h"
#include "util/check.h"

namespace asti {

namespace {

// Below this scan size the chunk fan-out costs more than the scan itself.
constexpr size_t kMinParallelScan = 1 << 12;

}  // namespace

std::vector<NodeId> DedupeCandidates(const std::vector<NodeId>& candidates, NodeId n) {
  std::vector<NodeId> unique;
  unique.reserve(candidates.size());
  BitVector seen(n);
  for (NodeId v : candidates) {
    ASM_CHECK(v < n) << "candidate out of range";
    if (seen.Get(v)) continue;
    seen.Set(v);
    unique.push_back(v);
  }
  return unique;
}

NodeId ArgMaxScore(const std::vector<uint32_t>& score, const std::vector<NodeId>* domain,
                   const BitVector* skip, ThreadPool* pool, RequestProfile* profile) {
  PhaseSpan span(profile, RequestPhase::kCoverage);
  const size_t count = domain != nullptr ? domain->size() : score.size();
  auto node_at = [&](size_t i) {
    return domain != nullptr ? (*domain)[i] : static_cast<NodeId>(i);
  };
  // Chunk-local scans use the same (score, lowest id) rule as the merge, so
  // the winner matches a single ascending scan for any chunking.
  auto scan = [&](size_t begin, size_t end) {
    NodeId best = kInvalidNode;
    for (size_t i = begin; i < end; ++i) {
      const NodeId v = node_at(i);
      if (skip != nullptr && skip->Get(v)) continue;
      if (best == kInvalidNode || score[v] > score[best] ||
          (score[v] == score[best] && v < best)) {
        best = v;
      }
    }
    return best;
  };
  if (pool == nullptr || pool->NumThreads() <= 1 || count < kMinParallelScan) {
    return scan(0, count);
  }
  std::vector<NodeId> chunk_best(std::min(count, pool->NumThreads()), kInvalidNode);
  pool->ParallelFor(count, [&](size_t chunk, size_t begin, size_t end) {
    chunk_best[chunk] = scan(begin, end);
  });
  NodeId best = kInvalidNode;
  for (NodeId v : chunk_best) {
    if (v == kInvalidNode) continue;
    if (best == kInvalidNode || score[v] > score[best] ||
        (score[v] == score[best] && v < best)) {
      best = v;
    }
  }
  return best;
}

NodeId ArgMaxCoverage(const CollectionView& collection, ThreadPool* pool,
                      RequestProfile* profile) {
  ASM_CHECK(collection.num_nodes() > 0);
  return ArgMaxScore(collection.CoverageCounts(), nullptr, nullptr, pool, profile);
}

MaxCoverageResult GreedyMaxCoverage(const CollectionView& collection, NodeId budget,
                                    const std::vector<NodeId>* candidates,
                                    ThreadPool* pool, const CancelScope* cancel,
                                    RequestProfile* profile) {
  // The span covers the whole solve; the internal ArgMaxScore calls get a
  // null profile so the time is not double-counted.
  PhaseSpan span(profile, RequestPhase::kCoverage);
  ASM_CHECK(budget >= 1);
  const NodeId n = collection.num_nodes();
  const size_t num_sets = collection.NumSets();
  MaxCoverageResult result;

  const InvertedIndex index = BuildInvertedIndex(collection, pool);

  std::vector<NodeId> unique_candidates;
  if (candidates != nullptr) unique_candidates = DedupeCandidates(*candidates, n);
  const std::vector<NodeId>* domain = candidates != nullptr ? &unique_candidates : nullptr;

  std::vector<uint32_t> gain(collection.CoverageCounts());
  BitVector covered(num_sets);
  BitVector taken(n);
  const size_t pool_size =
      domain == nullptr ? static_cast<size_t>(n) : domain->size();
  const size_t picks = std::min<size_t>(budget, pool_size);
  for (size_t pick = 0; pick < picks; ++pick) {
    if (Fired(cancel)) return result;
    const NodeId best = ArgMaxScore(gain, domain, &taken, pool);
    ASM_CHECK(best != kInvalidNode);
    taken.Set(best);
    result.selected.push_back(best);
    result.marginal_coverage.push_back(gain[best]);
    result.covered_sets += gain[best];
    // Mark best's uncovered sets covered; members of those sets lose gain.
    const auto [begin, end] = index.Range(best);
    for (size_t i = begin; i < end; ++i) {
      const uint32_t s = index.sets[i];
      if (covered.Get(s)) continue;
      covered.Set(s);
      for (NodeId u : collection.Set(s)) --gain[u];
    }
    ASM_DCHECK(gain[best] == 0);
  }
  return result;
}

double GreedyCoverageRatio(NodeId budget) {
  ASM_CHECK(budget >= 1);
  if (budget == 1) return 1.0;
  const double b = static_cast<double>(budget);
  return 1.0 - std::pow(1.0 - 1.0 / b, b);
}

namespace {

void EnumerateSubsets(const CollectionView& collection, NodeId budget, NodeId first,
                      std::vector<NodeId>& current, MaxCoverageResult& best) {
  if (current.size() == budget) {
    BitVector covered(collection.NumSets());
    uint32_t count = 0;
    for (size_t s = 0; s < collection.NumSets(); ++s) {
      for (NodeId v : collection.Set(s)) {
        if (std::find(current.begin(), current.end(), v) != current.end()) {
          covered.Set(s);
          ++count;
          break;
        }
      }
    }
    if (count > best.covered_sets || best.selected.empty()) {
      best.covered_sets = count;
      best.selected = current;
    }
    return;
  }
  for (NodeId v = first; v < collection.num_nodes(); ++v) {
    current.push_back(v);
    EnumerateSubsets(collection, budget, v + 1, current, best);
    current.pop_back();
  }
}

}  // namespace

MaxCoverageResult ExactMaxCoverage(const CollectionView& collection, NodeId budget) {
  ASM_CHECK(budget >= 1 && budget <= collection.num_nodes());
  MaxCoverageResult best;
  std::vector<NodeId> current;
  EnumerateSubsets(collection, budget, 0, current, best);
  return best;
}

}  // namespace asti
