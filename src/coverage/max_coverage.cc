#include "coverage/max_coverage.h"

#include <algorithm>
#include <cmath>

#include "util/bit_vector.h"
#include "util/check.h"

namespace asti {

MaxCoverageResult GreedyMaxCoverage(const RrCollection& collection, NodeId budget,
                                    const std::vector<NodeId>* candidates) {
  ASM_CHECK(budget >= 1);
  const NodeId n = collection.num_nodes();
  const size_t num_sets = collection.NumSets();
  MaxCoverageResult result;

  // Inverted index node -> set ids, built by counting sort over the pool.
  std::vector<size_t> index_offsets(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) index_offsets[v + 1] = collection.Coverage(v);
  for (NodeId v = 0; v < n; ++v) index_offsets[v + 1] += index_offsets[v];
  std::vector<uint32_t> index_sets(collection.TotalEntries());
  {
    std::vector<size_t> cursor(index_offsets.begin(), index_offsets.end() - 1);
    for (size_t s = 0; s < num_sets; ++s) {
      for (NodeId v : collection.Set(s)) {
        index_sets[cursor[v]++] = static_cast<uint32_t>(s);
      }
    }
  }

  std::vector<uint32_t> gain(collection.CoverageCounts());
  BitVector covered(num_sets);
  BitVector taken(n);
  const size_t pool_size =
      candidates == nullptr ? static_cast<size_t>(n) : candidates->size();
  const size_t picks = std::min<size_t>(budget, pool_size);
  for (size_t pick = 0; pick < picks; ++pick) {
    NodeId best = kInvalidNode;
    auto consider = [&](NodeId v) {
      if (taken.Get(v)) return;
      if (best == kInvalidNode || gain[v] > gain[best] ||
          (gain[v] == gain[best] && v < best)) {
        best = v;
      }
    };
    if (candidates == nullptr) {
      for (NodeId v = 0; v < n; ++v) consider(v);
    } else {
      for (NodeId v : *candidates) consider(v);
    }
    ASM_CHECK(best != kInvalidNode);
    taken.Set(best);
    result.selected.push_back(best);
    result.marginal_coverage.push_back(gain[best]);
    result.covered_sets += gain[best];
    // Mark best's uncovered sets covered; members of those sets lose gain.
    for (size_t i = index_offsets[best]; i < index_offsets[best + 1]; ++i) {
      const uint32_t s = index_sets[i];
      if (covered.Get(s)) continue;
      covered.Set(s);
      for (NodeId u : collection.Set(s)) --gain[u];
    }
    ASM_DCHECK(gain[best] == 0);
  }
  return result;
}

double GreedyCoverageRatio(NodeId budget) {
  ASM_CHECK(budget >= 1);
  if (budget == 1) return 1.0;
  const double b = static_cast<double>(budget);
  return 1.0 - std::pow(1.0 - 1.0 / b, b);
}

namespace {

void EnumerateSubsets(const RrCollection& collection, NodeId budget, NodeId first,
                      std::vector<NodeId>& current, MaxCoverageResult& best) {
  if (current.size() == budget) {
    BitVector covered(collection.NumSets());
    uint32_t count = 0;
    for (size_t s = 0; s < collection.NumSets(); ++s) {
      for (NodeId v : collection.Set(s)) {
        if (std::find(current.begin(), current.end(), v) != current.end()) {
          covered.Set(s);
          ++count;
          break;
        }
      }
    }
    if (count > best.covered_sets || best.selected.empty()) {
      best.covered_sets = count;
      best.selected = current;
    }
    return;
  }
  for (NodeId v = first; v < collection.num_nodes(); ++v) {
    current.push_back(v);
    EnumerateSubsets(collection, budget, v + 1, current, best);
    current.pop_back();
  }
}

}  // namespace

MaxCoverageResult ExactMaxCoverage(const RrCollection& collection, NodeId budget) {
  ASM_CHECK(budget >= 1 && budget <= collection.num_nodes());
  MaxCoverageResult best;
  std::vector<NodeId> current;
  EnumerateSubsets(collection, budget, 0, current, best);
  return best;
}

}  // namespace asti
