#include "coverage/lazy_greedy.h"

#include <queue>

#include "util/bit_vector.h"
#include "util/check.h"

namespace asti {

namespace {

struct HeapEntry {
  uint32_t gain;
  NodeId node;
  uint32_t round_evaluated;  // lazy-evaluation timestamp

  bool operator<(const HeapEntry& other) const {
    if (gain != other.gain) return gain < other.gain;
    return node > other.node;  // ties: prefer the lowest node id
  }
};

}  // namespace

MaxCoverageResult LazyGreedyMaxCoverage(const RrCollection& collection, NodeId budget,
                                        const std::vector<NodeId>* candidates) {
  ASM_CHECK(budget >= 1);
  const NodeId n = collection.num_nodes();
  const size_t num_sets = collection.NumSets();
  MaxCoverageResult result;

  // Inverted index node -> set ids (counting sort over the pool).
  std::vector<size_t> index_offsets(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) index_offsets[v + 1] = collection.Coverage(v);
  for (NodeId v = 0; v < n; ++v) index_offsets[v + 1] += index_offsets[v];
  std::vector<uint32_t> index_sets(collection.TotalEntries());
  {
    std::vector<size_t> cursor(index_offsets.begin(), index_offsets.end() - 1);
    for (size_t s = 0; s < num_sets; ++s) {
      for (NodeId v : collection.Set(s)) {
        index_sets[cursor[v]++] = static_cast<uint32_t>(s);
      }
    }
  }

  BitVector covered(num_sets);
  std::priority_queue<HeapEntry> heap;
  if (candidates == nullptr) {
    for (NodeId v = 0; v < n; ++v) heap.push({collection.Coverage(v), v, 0});
  } else {
    for (NodeId v : *candidates) heap.push({collection.Coverage(v), v, 0});
  }

  const size_t pool_size =
      candidates == nullptr ? static_cast<size_t>(n) : candidates->size();
  const size_t picks = std::min<size_t>(budget, pool_size);
  uint32_t round = 0;
  auto fresh_gain = [&](NodeId v) {
    uint32_t gain = 0;
    for (size_t i = index_offsets[v]; i < index_offsets[v + 1]; ++i) {
      if (!covered.Get(index_sets[i])) ++gain;
    }
    return gain;
  };

  while (result.selected.size() < picks && !heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    if (top.round_evaluated != round) {
      // Stale cached gain: recompute and reinsert. Submodularity makes the
      // cached value an upper bound, so a re-evaluated top that stays on
      // top is globally optimal.
      top.gain = fresh_gain(top.node);
      top.round_evaluated = round;
      heap.push(top);
      continue;
    }
    result.selected.push_back(top.node);
    result.marginal_coverage.push_back(top.gain);
    result.covered_sets += top.gain;
    for (size_t i = index_offsets[top.node]; i < index_offsets[top.node + 1]; ++i) {
      covered.Set(index_sets[i]);
    }
    ++round;
  }
  return result;
}

}  // namespace asti
