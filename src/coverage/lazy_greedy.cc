#include "coverage/lazy_greedy.h"

#include <algorithm>
#include <queue>

#include "coverage/inverted_index.h"
#include "util/bit_vector.h"
#include "util/check.h"

namespace asti {

namespace {

// A re-evaluation batch is dispatched to the pool only when it carries at
// least this many inverted-index entry reads (~tens of µs of scanning);
// smaller batches run inline, where the chunk fan-out round-trip would
// cost more than the scans it parallelizes.
constexpr size_t kMinParallelWork = size_t{1} << 16;

struct HeapEntry {
  uint32_t gain;
  NodeId node;
  uint32_t round_evaluated;  // lazy-evaluation timestamp

  bool operator<(const HeapEntry& other) const {
    if (gain != other.gain) return gain < other.gain;
    return node > other.node;  // ties: prefer the lowest node id
  }
};

}  // namespace

MaxCoverageResult LazyGreedyMaxCoverage(const CollectionView& collection, NodeId budget,
                                        const std::vector<NodeId>* candidates,
                                        ThreadPool* pool, const CancelScope* cancel,
                                        RequestProfile* profile) {
  PhaseSpan span(profile, RequestPhase::kCoverage);
  ASM_CHECK(budget >= 1);
  const NodeId n = collection.num_nodes();
  MaxCoverageResult result;

  const InvertedIndex index = BuildInvertedIndex(collection, pool);

  // One heap entry per node, deduplicated (see DedupeCandidates — a
  // duplicate in `candidates` would otherwise be selected twice).
  // Uniqueness also makes the heap's (gain, node) comparator a total order,
  // so the pop sequence — and hence the selection — is independent of push
  // order.
  std::vector<HeapEntry> initial;
  if (candidates == nullptr) {
    initial.reserve(n);
    for (NodeId v = 0; v < n; ++v) initial.push_back({collection.Coverage(v), v, 0});
  } else {
    for (NodeId v : DedupeCandidates(*candidates, n)) {
      initial.push_back({collection.Coverage(v), v, 0});
    }
  }
  const size_t pool_size = initial.size();
  std::priority_queue<HeapEntry> heap(std::less<HeapEntry>(), std::move(initial));

  BitVector covered(collection.NumSets());
  const size_t picks = std::min<size_t>(budget, pool_size);
  uint32_t round = 0;
  auto fresh_gain = [&](NodeId v) {
    uint32_t gain = 0;
    const auto [begin, end] = index.Range(v);
    for (size_t i = begin; i < end; ++i) {
      if (!covered.Get(index.sets[i])) ++gain;
    }
    return gain;
  };

  // Sequential CELF drains one stale entry at a time. The parallel path
  // drains them in batches that double per consecutive drain (reset after
  // each selection) — total re-evaluations stay within ~2× the sequential
  // CELF count — re-evaluates each batch concurrently (`covered` is
  // read-only between selections), and reinserts. Submodularity keeps every
  // cached gain an upper bound, so whenever a fresh entry surfaces on top it
  // dominates all cached bounds ≥ all true gains, and equal-gain lower-id
  // nodes would sort above it; the pick is therefore always the
  // (gain, lowest id) argmax, identical for every batch size / thread count.
  const bool parallel = pool != nullptr && pool->NumThreads() > 1;
  const size_t avg_list =
      1 + index.sets.size() / std::max<size_t>(1, static_cast<size_t>(n));
  const size_t min_parallel_batch =
      std::max<size_t>(64, kMinParallelWork / avg_list);
  const size_t base_drain = parallel ? std::max<size_t>(32, 8 * pool->NumThreads()) : 1;
  size_t drain = base_drain;
  std::vector<HeapEntry> batch;
  while (result.selected.size() < picks && !heap.empty()) {
    // Polled per heap round (a pick or a stale-drain batch), the CELF
    // analogue of the eager solver's per-pick check.
    if (Fired(cancel)) return result;
    const HeapEntry top = heap.top();
    if (top.round_evaluated == round) {
      heap.pop();
      result.selected.push_back(top.node);
      result.marginal_coverage.push_back(top.gain);
      result.covered_sets += top.gain;
      const auto [begin, end] = index.Range(top.node);
      for (size_t i = begin; i < end; ++i) covered.Set(index.sets[i]);
      ++round;
      drain = base_drain;
      continue;
    }
    // Drain up to `drain` stale entries; stop early at a fresh top (it is
    // already the next pick — see above).
    batch.clear();
    while (!heap.empty() && batch.size() < drain &&
           heap.top().round_evaluated != round) {
      batch.push_back(heap.top());
      heap.pop();
    }
    if (parallel && batch.size() >= min_parallel_batch) {
      pool->ParallelFor(batch.size(), [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) batch[i].gain = fresh_gain(batch[i].node);
      });
    } else {
      for (HeapEntry& entry : batch) entry.gain = fresh_gain(entry.node);
    }
    for (HeapEntry& entry : batch) {
      entry.round_evaluated = round;
      heap.push(entry);
    }
    // Geometric growth bounds total re-evaluations per pick by ~2× the
    // sequential CELF count while giving each dispatch enough work. The
    // sequential path stays strictly one-at-a-time (classic CELF).
    if (parallel) drain = std::min(drain * 2, heap.size() + 1);
  }
  return result;
}

}  // namespace asti
