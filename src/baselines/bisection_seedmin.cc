#include "baselines/bisection_seedmin.h"

#include <numeric>

#include "coverage/max_coverage.h"
#include "parallel/parallel_sampler.h"
#include "sampling/rr_collection.h"
#include "sampling/shared_collection.h"
#include "sampling/rr_set.h"
#include "util/check.h"

namespace asti {

BisectionResult RunBisectionSeedMin(const DirectedGraph& graph, DiffusionModel model,
                                    NodeId eta, const BisectionOptions& options,
                                    Rng& rng) {
  const NodeId n = graph.NumNodes();
  ASM_CHECK(eta >= 1 && eta <= n);
  ASM_CHECK(options.samples >= 1);

  std::vector<NodeId> all_nodes(n);
  std::iota(all_nodes.begin(), all_nodes.end(), 0);

  // One shared RR collection serves every k (the greedy curve is nested in
  // k, so a single greedy pass would suffice — but we keep the literal
  // bisection protocol, whose cost profile is what this baseline is for).
  RrCollection collection(n);
  ParallelEngine engine(graph, model, options.num_threads, options.pool,
                        options.cancel, options.profile);
  BisectionResult result;
  CollectionView sets;
  if (options.sampler_cache != nullptr) {
    sets = options.sampler_cache->Acquire(SamplerCacheKey::Rr(model), options.samples,
                                          engine.pool(), options.cancel,
                                          options.profile);
    if (sets.NumSets() < options.samples) return result;  // cancelled mid-extension
  } else {
    if (ParallelRrSampler* parallel = engine.get()) {
      parallel->GenerateBatch(all_nodes, nullptr, options.samples, collection, rng);
    } else {
      PhaseSpan span(options.profile, RequestPhase::kSampling);
      RrSampler sampler(graph, model);
      collection.Reserve(options.samples);
      size_t generated = 0;
      while (collection.NumSets() < options.samples) {
        if (generated++ % 64 == 0 && Fired(options.cancel)) break;
        sampler.Generate(all_nodes, nullptr, collection, rng);
      }
      NoteSampling(options.profile, collection.NumSets(), collection.MemoryBytes());
    }
    sets = collection;
  }
  if (Fired(options.cancel) || sets.NumSets() == 0) return result;  // doomed; discard
  result.num_samples = sets.NumSets();
  const double theta = static_cast<double>(sets.NumSets());
  const double target = options.target_slack * static_cast<double>(eta);

  auto spread_of_k = [&](NodeId k) {
    ++result.im_evaluations;
    const MaxCoverageResult greedy = GreedyMaxCoverage(
        sets, k, nullptr, engine.pool(), options.cancel, options.profile);
    return static_cast<double>(n) * static_cast<double>(greedy.covered_sets) / theta;
  };

  // Exponential search for a feasible upper bound, then bisection. A fired
  // scope aborts between IM evaluations (each one is a full greedy pass).
  NodeId high = 1;
  while (high < n && spread_of_k(high) < target) {
    if (Fired(options.cancel)) return result;
    high = std::min<NodeId>(n, high * 2);
  }
  NodeId low = high > 1 ? high / 2 : 1;
  while (low < high) {
    if (Fired(options.cancel)) return result;
    const NodeId mid = low + (high - low) / 2;
    if (spread_of_k(mid) >= target) {
      high = mid;
    } else {
      low = mid + 1;
    }
  }
  if (Fired(options.cancel)) return result;

  const MaxCoverageResult final_greedy = GreedyMaxCoverage(
      sets, high, nullptr, engine.pool(), options.cancel, options.profile);
  result.seeds = final_greedy.selected;
  result.estimated_spread =
      static_cast<double>(n) * static_cast<double>(final_greedy.covered_sets) / theta;
  return result;
}

}  // namespace asti
