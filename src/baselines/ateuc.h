// ATEUC baseline — non-adaptive seed minimization (Han et al.,
// arXiv:1711.10665; the state of the art the paper compares against).
//
// Re-implemented from the description in §5/§6.2 of the ASTI paper: using
// single-root RR-sets over the *full* graph, greedily grow a seed set and
// maintain two candidates —
//   S_u: the shortest greedy prefix whose high-probability *lower* bound
//        on E[I(S)] reaches η (certified feasible);
//   S_l: a lower bound on the optimal seed count, derived from the largest
//        prefix size j whose optimistic bound (greedy coverage inflated by
//        1/(1 − 1/e), then upper-bounded) still misses η — no size-j set
//        can reach η, so OPT > j.
// When |S_u| ≤ 2·|S_l| the candidate S_u is returned; otherwise the RR
// collection is doubled and the process repeats. Because our martingale
// bounds are looser than Han et al.'s (no per-prefix tuning), the 2× gap
// condition can stay unmet on small graphs; a stabilization rule
// (S_u unchanged across a doubling once the collection is large) bounds
// the work in that regime without changing the certified feasibility of
// the returned set.
//
// Being non-adaptive, the returned set satisfies E[I(S)] ≥ η yet can
// under- or over-shoot on individual realizations — the failure mode
// Figure 8 and Table 3's N/A entries demonstrate.

#pragma once

#include <vector>

#include "diffusion/model.h"
#include "graph/graph.h"
#include "obs/span.h"
#include "sampling/sampler_cache.h"
#include "util/cancellation.h"
#include "util/rng.h"

namespace asti {

class ThreadPool;

/// Tuning knobs for ATEUC.
struct AteucOptions {
  double epsilon = 0.1;           // confidence parameter for the bounds
  size_t initial_samples = 256;   // starting RR collection size
  size_t max_doublings = 14;      // hard cap on collection growth
  size_t stable_after = 8192;     // enable the stabilization stop from here
  /// Spread target multiplier: S_u is the first greedy prefix whose spread
  /// estimate reaches target_slack·η. Han et al. certify E[I(S)] ≥ η with
  /// high probability, which in practice lands E[I(S)] slightly above η —
  /// this models that margin.
  double target_slack = 1.2;
  /// RR generation workers; semantics as TrimOptions::num_threads.
  size_t num_threads = 1;
  /// Shared external pool; semantics as TrimOptions::pool.
  ThreadPool* pool = nullptr;
  /// Cooperative stop condition; polled per doubling round, generation
  /// stride, and greedy pick. A fired scope makes RunAteuc return its
  /// partial result promptly — callers observing the scope must discard
  /// it (SeedMinEngine returns Cancelled/DeadlineExceeded instead).
  const CancelScope* cancel = nullptr;
  /// Per-request phase profile; semantics as TrimOptions::profile.
  RequestProfile* profile = nullptr;
  /// Shared sampler cache; when set, EVERY doubling round reads the
  /// (kRr, model) entry's sealed prefix at the exact ladder length
  /// initial_samples·2^round instead of growing an owned collection —
  /// ATEUC samples the full graph throughout, so its entire run is
  /// cacheable — and the run consumes zero draws from `rng`.
  SamplerCache* sampler_cache = nullptr;
};

/// Result of the one-shot (non-adaptive) selection.
struct AteucResult {
  std::vector<NodeId> seeds;       // S_u, greedy order
  size_t optimal_lower_bound = 0;  // |S_l|
  double estimated_spread = 0.0;   // n·Λ(S_u)/|R|
  size_t num_samples = 0;          // final |R|
  size_t doublings = 0;
};

/// Runs ATEUC on the full graph for threshold eta.
AteucResult RunAteuc(const DirectedGraph& graph, DiffusionModel model, NodeId eta,
                     const AteucOptions& options, Rng& rng);

}  // namespace asti
