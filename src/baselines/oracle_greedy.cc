#include "baselines/oracle_greedy.h"

#include "util/check.h"

namespace asti {

OracleGreedy::OracleGreedy(const DirectedGraph& graph, DiffusionModel model,
                           OracleGreedyOptions options)
    : graph_(&graph), options_(options), estimator_(graph, model) {
  ASM_CHECK(options_.trials_per_node > 0);
}

SelectionResult OracleGreedy::SelectBatch(const ResidualView& view, Rng& rng) {
  ASM_CHECK(view.NumInactive() >= 1);
  // A zero-filled mask stands in when the caller passes no activity.
  BitVector empty_mask;
  const BitVector* active = view.active;
  if (active == nullptr) {
    empty_mask = BitVector(graph_->NumNodes());
    active = &empty_mask;
  }

  SelectionResult result;
  double best_gain = -1.0;
  NodeId best_node = kInvalidNode;
  for (NodeId v : *view.inactive_nodes) {
    const double gain = estimator_.EstimateMarginalTruncatedSpread(
        {v}, *active, view.shortfall, options_.trials_per_node, rng);
    result.num_samples += options_.trials_per_node;
    if (gain > best_gain || (gain == best_gain && v < best_node)) {
      best_gain = gain;
      best_node = v;
    }
  }
  result.seeds = {best_node};
  result.estimated_marginal_gain = best_gain;
  result.iterations = 1;
  return result;
}

}  // namespace asti
