// Bisection seed minimization — the classical non-adaptive transformation
// (Goyal et al. 2013, discussed in §2.4 of the ASTI paper).
//
// Existing work turns a non-adaptive influence-*maximization* routine into
// a seed-*minimization* one by binary-searching the budget k: solve IM for
// k, check whether the estimated spread reaches η, halve the interval.
// We instantiate the inner IM solver with RR-set greedy (IMM-style). Like
// ATEUC it is non-adaptive and inherits the per-realization reliability
// problem; unlike ATEUC it pays O(log n) IM solves. Included as a second
// non-adaptive baseline and as the "what the pre-ATEUC literature did"
// reference point.

#pragma once

#include <vector>

#include "diffusion/model.h"
#include "graph/graph.h"
#include "obs/span.h"
#include "sampling/sampler_cache.h"
#include "util/cancellation.h"
#include "util/rng.h"

namespace asti {

class ThreadPool;

/// Tuning knobs for the bisection baseline.
struct BisectionOptions {
  size_t samples = 8192;      // RR-sets per IM evaluation
  double target_slack = 1.2;  // aim E[I(S)] at slack·η, like ATEUC
  /// RR generation + greedy coverage workers; semantics as
  /// TrimOptions::num_threads (one shared pool, per-batch TaskGroups).
  size_t num_threads = 1;
  /// Shared external pool; semantics as TrimOptions::pool.
  ThreadPool* pool = nullptr;
  /// Cooperative stop condition; polled per IM evaluation, generation
  /// stride, and greedy pick. A fired scope returns a partial result the
  /// caller must discard; semantics as AteucOptions::cancel.
  const CancelScope* cancel = nullptr;
  /// Per-request phase profile; semantics as TrimOptions::profile.
  RequestProfile* profile = nullptr;
  /// Shared sampler cache; when set, the single full-graph RR batch is the
  /// first `samples` sets of the (kRr, model) entry — shared with ATEUC and
  /// AdaptIM round 1 — and the run consumes zero draws from `rng`.
  SamplerCache* sampler_cache = nullptr;
};

/// Result of the bisection run.
struct BisectionResult {
  std::vector<NodeId> seeds;     // final seed set (greedy order prefix)
  size_t im_evaluations = 0;     // inner IM solves performed
  double estimated_spread = 0.0; // n·Λ(S)/θ at the final k
  size_t num_samples = 0;        // RR-sets generated in total
};

/// Runs bisection-on-k seed minimization on the full graph.
BisectionResult RunBisectionSeedMin(const DirectedGraph& graph, DiffusionModel model,
                                    NodeId eta, const BisectionOptions& options,
                                    Rng& rng);

}  // namespace asti
