#include "baselines/ateuc.h"

#include <cmath>
#include <numeric>

#include "coverage/inverted_index.h"
#include "coverage/max_coverage.h"
#include "parallel/parallel_sampler.h"
#include "parallel/thread_pool.h"
#include "sampling/rr_collection.h"
#include "sampling/shared_collection.h"
#include "sampling/rr_set.h"
#include "stats/concentration.h"
#include "util/bit_vector.h"
#include "util/check.h"

namespace asti {

namespace {

constexpr double kOneMinusInvE = 1.0 - 1.0 / 2.718281828459045;

// Greedy coverage maximization recording the cumulative coverage after
// every pick, until all sets are covered or `cap` picks were made.
struct GreedyCurve {
  std::vector<NodeId> picks;
  std::vector<uint32_t> cumulative_coverage;  // after pick i
};

GreedyCurve GreedyCoverageCurve(const CollectionView& collection, size_t cap,
                                ThreadPool* pool, const CancelScope* cancel,
                                RequestProfile* profile) {
  PhaseSpan span(profile, RequestPhase::kCoverage);
  const size_t num_sets = collection.NumSets();
  const InvertedIndex index = BuildInvertedIndex(collection, pool);

  std::vector<uint32_t> gain(collection.CoverageCounts());
  BitVector covered(num_sets);
  GreedyCurve curve;
  uint32_t covered_count = 0;
  while (curve.picks.size() < cap && covered_count < num_sets) {
    if (Fired(cancel)) break;
    const NodeId best = ArgMaxScore(gain, nullptr, nullptr, pool);
    if (best == kInvalidNode || gain[best] == 0) break;  // nothing left to cover
    curve.picks.push_back(best);
    covered_count += gain[best];
    curve.cumulative_coverage.push_back(covered_count);
    const auto [begin, end] = index.Range(best);
    for (size_t i = begin; i < end; ++i) {
      const uint32_t s = index.sets[i];
      if (covered.Get(s)) continue;
      covered.Set(s);
      for (NodeId u : collection.Set(s)) --gain[u];
    }
  }
  return curve;
}

}  // namespace

AteucResult RunAteuc(const DirectedGraph& graph, DiffusionModel model, NodeId eta,
                     const AteucOptions& options, Rng& rng) {
  const NodeId n = graph.NumNodes();
  ASM_CHECK(eta >= 1 && eta <= n);
  ASM_CHECK(options.epsilon > 0.0 && options.epsilon < 1.0);

  std::vector<NodeId> all_nodes(n);
  std::iota(all_nodes.begin(), all_nodes.end(), 0);

  RrSampler sampler(graph, model);
  RrCollection collection(n);
  ParallelEngine engine(graph, model, options.num_threads, options.pool,
                        options.cancel, options.profile);
  const double n_d = static_cast<double>(n);
  // Failure budget per bound evaluation; the union bound over greedy
  // prefixes and doubling iterations follows Han et al.'s recipe.
  const double a = std::log(n_d / options.epsilon) +
                   std::log(static_cast<double>(options.max_doublings + 1));

  AteucResult result;
  size_t target_samples = options.initial_samples;
  size_t previous_s_u = 0;
  for (size_t round = 0; round <= options.max_doublings; ++round) {
    // A fired scope short-circuits the doubling ladder: return the best
    // candidate so far (possibly no seeds) and let the caller discard it.
    if (Fired(options.cancel)) return result;
    CollectionView sets;
    if (options.sampler_cache != nullptr) {
      // Whole-run reuse: the exact ladder length keeps the result
      // independent of how many sets the cache already held.
      sets = options.sampler_cache->Acquire(SamplerCacheKey::Rr(model), target_samples,
                                            engine.pool(), options.cancel,
                                            options.profile);
      if (sets.NumSets() < target_samples) return result;  // cancelled mid-extension
    } else if (ParallelRrSampler* parallel = engine.get()) {
      parallel->GenerateBatch(all_nodes, nullptr, target_samples - collection.NumSets(),
                              collection, rng);
      if (Fired(options.cancel)) return result;  // batch aborted at a stride boundary
      sets = collection;
    } else {
      PhaseSpan span(options.profile, RequestPhase::kSampling);
      const size_t before = collection.NumSets();
      collection.Reserve(target_samples - before);
      size_t generated = 0;
      while (collection.NumSets() < target_samples) {
        if (generated++ % 64 == 0 && Fired(options.cancel)) return result;
        sampler.Generate(all_nodes, nullptr, collection, rng);
      }
      NoteSampling(options.profile, collection.NumSets() - before,
                   collection.MemoryBytes());
      sets = collection;
    }
    const double theta = static_cast<double>(sets.NumSets());
    // Greedy can never need more than η picks: each pick either covers a
    // new set or coverage is exhausted.
    const GreedyCurve curve = GreedyCoverageCurve(sets, eta, engine.pool(),
                                                  options.cancel, options.profile);
    if (Fired(options.cancel)) return result;  // curve truncated mid-pick; bounds unusable
    // Everything from here to the doubling decision is bound evaluation.
    PhaseSpan certify(options.profile, RequestPhase::kCertify);

    // S_u: first prefix whose spread estimate reaches η. Following the
    // empirical behaviour the ASTI paper reports for ATEUC (E[I(S)] ≈ η,
    // hence per-realization under- and over-shoots, Fig. 8), the stopping
    // rule uses the unbiased point estimate n·Λ/θ; the certified bounds
    // drive s_l and the gap condition.
    size_t s_u = 0;
    const double target = options.target_slack * static_cast<double>(eta);
    for (size_t j = 0; j < curve.picks.size(); ++j) {
      const double estimate =
          n_d * static_cast<double>(curve.cumulative_coverage[j]) / theta;
      if (estimate >= target) {
        s_u = j + 1;
        break;
      }
    }

    // S_l: the optimum cannot be smaller than the first j where even the
    // inflated greedy coverage (best size-j coverage ≤ greedy_j/(1−1/e))
    // upper-bounds below η.
    size_t s_l = 1;
    for (size_t j = 0; j < curve.picks.size(); ++j) {
      const double optimistic = CoverageUpperBound(
          static_cast<double>(curve.cumulative_coverage[j]) / kOneMinusInvE, a);
      if (n_d * optimistic / theta < static_cast<double>(eta)) {
        s_l = j + 2;  // no size-(j+1) set reaches η
      } else {
        break;
      }
    }

    result.doublings = round;
    result.num_samples = sets.NumSets();
    if (s_u > 0) {
      result.seeds.assign(curve.picks.begin(), curve.picks.begin() + s_u);
      result.optimal_lower_bound = s_l;
      result.estimated_spread =
          n_d * static_cast<double>(curve.cumulative_coverage[s_u - 1]) / theta;
      const bool gap_met = s_u <= 2 * s_l;
      const bool stabilized =
          s_u == previous_s_u && collection.NumSets() >= options.stable_after;
      if (gap_met || stabilized || round == options.max_doublings) return result;
      previous_s_u = s_u;
    } else if (round == options.max_doublings) {
      // Certification never succeeded (tiny graphs / extreme η): fall back
      // to the full greedy curve, which covers every sampled set.
      result.seeds = curve.picks;
      result.optimal_lower_bound = s_l;
      result.estimated_spread =
          curve.cumulative_coverage.empty()
              ? 0.0
              : n_d * static_cast<double>(curve.cumulative_coverage.back()) / theta;
      return result;
    }
    target_samples *= 2;
  }
  ASM_CHECK(false) << "unreachable: ATEUC returns within max_doublings";
  return result;
}

}  // namespace asti
