// Adaptive highest-degree heuristic — a sanity baseline.
//
// Each round seeds the inactive node with the most inactive out-neighbors.
// No guarantee of any kind; it exists to show in examples/benches how much
// the principled selectors gain over a cheap structural heuristic.

#pragma once

#include "core/selector.h"
#include "graph/graph.h"

namespace asti {

/// Residual out-degree greedy selector.
class DegreeAdaptive : public RoundSelector {
 public:
  /// The graph must outlive the selector.
  explicit DegreeAdaptive(const DirectedGraph& graph) : graph_(&graph) {}

  SelectionResult SelectBatch(const ResidualView& view, Rng& rng) override;

  const char* Name() const override { return "DegreeAdaptive"; }

 private:
  const DirectedGraph* graph_;
};

}  // namespace asti
