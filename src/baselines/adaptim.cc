#include "baselines/adaptim.h"

#include <cmath>

#include "coverage/max_coverage.h"
#include "stats/concentration.h"
#include "util/check.h"

namespace asti {

AdaptIm::AdaptIm(const DirectedGraph& graph, DiffusionModel model, AdaptImOptions options)
    : graph_(&graph),
      model_(model),
      options_(options),
      sampler_(graph, model),
      collection_(graph.NumNodes()),
      engine_(graph, model, options.num_threads, options.pool, options.cancel,
              options.profile) {
  ASM_CHECK(options_.epsilon > 0.0 && options_.epsilon < 1.0);
}

SelectionResult AdaptIm::SelectBatch(const ResidualView& view, Rng& rng) {
  const NodeId ni = view.NumInactive();
  ASM_CHECK(ni >= 1);
  const double n_d = static_cast<double>(ni);

  // EPIC-style schedule: δ = 1/n_i, the untruncated analogue of TRIM's.
  // The estimator is n_i·Λ(v)/|R| ≈ E[I(v | S_{i-1})]; coverage fractions
  // scale as OPT'_i/n_i, so the stop condition engages only after
  // Θ(n_i ln n_i / OPT'_i) RR-sets — the cost gap the paper highlights.
  const double delta = 1.0 / n_d;
  const double eps_hat = options_.epsilon;
  const double ln6d = std::log(6.0 / delta);
  const double root = std::sqrt(ln6d) + std::sqrt(std::log(n_d) + ln6d);
  const double theta_max = 2.0 * n_d * root * root / (eps_hat * eps_hat);
  const size_t theta_zero = static_cast<size_t>(
      std::max(1.0, std::ceil(theta_max * eps_hat * eps_hat / n_d)));
  const size_t max_iterations = DoublingLadderIterations(theta_zero, theta_max);
  const double t_d = static_cast<double>(max_iterations);
  const double a1 = std::log(3.0 * t_d / delta) + std::log(n_d);
  const double a2 = std::log(3.0 * t_d / delta);

  // Round 1 (full residual): serve the doubling ladder from the shared
  // single-root RR entry — the same (kRr, model) entry ATEUC and Bisection
  // read — consuming zero draws from `rng` (see Trim::SelectBatch).
  if (options_.sampler_cache != nullptr && ni == graph_->NumNodes()) {
    const SamplerCacheKey key = SamplerCacheKey::Rr(model_);
    SelectionResult result;
    for (size_t t = 1; t <= max_iterations; ++t) {
      const size_t want = DoublingLadderSets(theta_zero, t);
      const CollectionView sets = options_.sampler_cache->Acquire(
          key, want, engine_.pool(), options_.cancel, options_.profile);
      if (sets.NumSets() < want || Fired(options_.cancel)) return SelectionResult{};
      const NodeId v_star = ArgMaxCoverage(sets, engine_.pool(), options_.profile);
      const double coverage = static_cast<double>(sets.Coverage(v_star));
      double lower, upper;
      {
        PhaseSpan certify(options_.profile, RequestPhase::kCertify);
        lower = CoverageLowerBound(coverage, a1);
        upper = CoverageUpperBound(coverage, a2);
      }
      result.iterations = t;
      if (lower / upper >= 1.0 - eps_hat || t == max_iterations) {
        result.seeds = {v_star};
        result.estimated_marginal_gain = n_d * coverage / static_cast<double>(want);
        result.num_samples = want;
        return result;
      }
    }
    ASM_CHECK(false) << "unreachable: AdaptIM always returns by iteration T";
  }

  collection_.Clear();
  auto generate = [&](size_t count) {
    if (ParallelRrSampler* parallel = engine_.get()) {
      parallel->GenerateBatch(*view.inactive_nodes, view.active, count, collection_,
                              rng);
      return;
    }
    PhaseSpan span(options_.profile, RequestPhase::kSampling);
    collection_.Reserve(count);
    for (size_t i = 0; i < count; ++i) {
      if (i % 64 == 0 && Fired(options_.cancel)) return;
      sampler_.Generate(*view.inactive_nodes, view.active, collection_, rng);
    }
    NoteSampling(options_.profile, count, collection_.MemoryBytes());
  };
  generate(theta_zero);

  SelectionResult result;
  for (size_t t = 1; t <= max_iterations; ++t) {
    if (Fired(options_.cancel)) return SelectionResult{};  // empty seeds = cancelled round
    const NodeId v_star =
        ArgMaxCoverage(collection_, engine_.pool(), options_.profile);
    const double coverage = static_cast<double>(collection_.Coverage(v_star));
    double lower, upper;
    {
      // Scoped so certify time excludes the doubling generate() below.
      PhaseSpan certify(options_.profile, RequestPhase::kCertify);
      lower = CoverageLowerBound(coverage, a1);
      upper = CoverageUpperBound(coverage, a2);
    }
    result.iterations = t;
    if (lower / upper >= 1.0 - eps_hat || t == max_iterations) {
      result.seeds = {v_star};
      result.estimated_marginal_gain =
          n_d * coverage / static_cast<double>(collection_.NumSets());
      result.num_samples = collection_.NumSets();
      return result;
    }
    generate(collection_.NumSets());
  }
  ASM_CHECK(false) << "unreachable: AdaptIM always returns by iteration T";
  return result;
}

}  // namespace asti
