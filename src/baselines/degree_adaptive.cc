#include "baselines/degree_adaptive.h"

#include "util/check.h"

namespace asti {

SelectionResult DegreeAdaptive::SelectBatch(const ResidualView& view, Rng& rng) {
  (void)rng;  // deterministic heuristic
  ASM_CHECK(view.NumInactive() >= 1);
  NodeId best_node = kInvalidNode;
  size_t best_degree = 0;
  bool first = true;
  for (NodeId v : *view.inactive_nodes) {
    size_t degree = 0;
    if (view.active == nullptr) {
      degree = graph_->OutDegree(v);
    } else {
      for (NodeId u : graph_->OutNeighbors(v)) {
        if (!view.active->Get(u)) ++degree;
      }
    }
    if (first || degree > best_degree ||
        (degree == best_degree && v < best_node)) {
      best_node = v;
      best_degree = degree;
      first = false;
    }
  }
  SelectionResult result;
  result.seeds = {best_node};
  result.estimated_marginal_gain = static_cast<double>(best_degree + 1);
  result.iterations = 1;
  return result;
}

}  // namespace asti
