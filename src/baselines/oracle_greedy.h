// Golovin–Krause oracle greedy (§2.4) — the policy ASTI approximates.
//
// Each round evaluates Δ(v | S_{i-1}) for every inactive node by Monte
// Carlo and picks the maximizer. With enough trials this is the
// (ln η + 1)²-approximate greedy policy of Golovin & Krause (2017); the
// cost is Θ(n_i · trials · spread) per round, so it only serves small
// validation graphs and the accuracy baseline in tests/examples.

#pragma once

#include "core/selector.h"
#include "diffusion/model.h"
#include "diffusion/monte_carlo.h"
#include "graph/graph.h"

namespace asti {

/// Tuning knobs for the oracle greedy.
struct OracleGreedyOptions {
  size_t trials_per_node = 200;  // MC trials per candidate evaluation
};

/// Monte-Carlo truncated-spread greedy selector.
class OracleGreedy : public RoundSelector {
 public:
  /// The graph must outlive the selector.
  OracleGreedy(const DirectedGraph& graph, DiffusionModel model,
               OracleGreedyOptions options = {});

  SelectionResult SelectBatch(const ResidualView& view, Rng& rng) override;

  const char* Name() const override { return "OracleGreedy"; }

 private:
  const DirectedGraph* graph_;
  OracleGreedyOptions options_;
  MonteCarloEstimator estimator_;
};

}  // namespace asti
