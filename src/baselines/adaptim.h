// AdaptIM baseline — adaptive influence maximization adapted to seed
// minimization (§6.1 of the paper; Han et al., PVLDB 2018).
//
// Per round it selects the inactive node maximizing the *untruncated*
// expected marginal spread E[I(v | S_{i-1})], using vanilla single-root
// RR-sets with the same OPIM-C-style doubling-and-certify scheme as TRIM.
// Run under ASTI's loop until the threshold is met, it is empirically
// effective at seed minimization but (a) carries no truncated-spread
// guarantee (§3.2) and (b) needs Θ(n_i/OPT'_i) samples per round versus
// TRIM's Θ(η_i/OPT_i) — the source of the 10-20× slowdown in Figs. 5/7.

#pragma once

#include <memory>

#include "core/selector.h"
#include "diffusion/model.h"
#include "graph/graph.h"
#include "parallel/parallel_sampler.h"
#include "parallel/thread_pool.h"
#include "sampling/rr_collection.h"
#include "sampling/rr_set.h"
#include "sampling/sampler_cache.h"

namespace asti {

/// Tuning knobs for AdaptIM.
struct AdaptImOptions {
  double epsilon = 0.5;  // certification slack ε ∈ (0, 1)
  /// RR generation workers; semantics as TrimOptions::num_threads.
  size_t num_threads = 1;
  /// Shared external pool; semantics as TrimOptions::pool.
  ThreadPool* pool = nullptr;
  /// Cooperative stop condition; semantics as TrimOptions::cancel.
  const CancelScope* cancel = nullptr;
  /// Per-request phase profile; semantics as TrimOptions::profile.
  RequestProfile* profile = nullptr;
  /// Shared sampler cache; semantics as TrimOptions::sampler_cache. The
  /// round-1 single-root RR entry is shared with ATEUC/Bisection (same
  /// full-graph distribution, key (kRr, model)).
  SamplerCache* sampler_cache = nullptr;
};

/// Untruncated-marginal-spread round selector.
class AdaptIm : public RoundSelector {
 public:
  /// The graph must outlive the selector.
  AdaptIm(const DirectedGraph& graph, DiffusionModel model, AdaptImOptions options = {});

  SelectionResult SelectBatch(const ResidualView& view, Rng& rng) override;

  const char* Name() const override { return "AdaptIM"; }

 private:
  const DirectedGraph* graph_;
  DiffusionModel model_;
  AdaptImOptions options_;
  RrSampler sampler_;
  RrCollection collection_;
  ParallelEngine engine_;
};

}  // namespace asti
