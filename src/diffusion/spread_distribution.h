// Empirical spread distributions — the reliability lens of Figure 8.
//
// For a fixed seed set, the realized spread I_Φ(S) is a random variable;
// non-adaptive selections live or die by its tail mass below η. This
// module estimates the distribution by Monte Carlo and exposes the
// quantities the evaluation cares about: quantiles, Pr[I < η], and
// overshoot mass.

#pragma once

#include <vector>

#include "diffusion/forward_sim.h"
#include "diffusion/model.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace asti {

/// Monte-Carlo sample of a seed set's spread distribution.
class SpreadDistribution {
 public:
  /// Simulates `trials` fresh realizations of `seeds` on `graph`.
  SpreadDistribution(const DirectedGraph& graph, DiffusionModel model,
                     const std::vector<NodeId>& seeds, size_t trials, Rng& rng);

  size_t num_trials() const { return samples_.size(); }

  /// Sample mean of the spread.
  double Mean() const;

  /// q-quantile for q in [0, 1] (nearest-rank on the sorted sample).
  double Quantile(double q) const;

  /// Fraction of realizations with spread < threshold (the miss rate).
  double MissProbability(double threshold) const;

  /// Fraction of realizations with spread > factor·threshold (overshoot).
  double OvershootProbability(double threshold, double factor) const;

  /// Sorted raw samples (ascending).
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace asti
