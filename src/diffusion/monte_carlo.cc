#include "diffusion/monte_carlo.h"

#include <algorithm>

namespace asti {

Realization MonteCarloEstimator::SampleRealization(Rng& rng) const {
  return model_ == DiffusionModel::kIndependentCascade
             ? Realization::SampleIc(*graph_, rng)
             : Realization::SampleLt(*graph_, rng);
}

double MonteCarloEstimator::EstimateSpread(const std::vector<NodeId>& seeds, size_t trials,
                                           Rng& rng) {
  ASM_CHECK(trials > 0);
  double total = 0.0;
  for (size_t t = 0; t < trials; ++t) {
    const Realization realization = SampleRealization(rng);
    total += static_cast<double>(simulator_.Spread(realization, seeds));
  }
  return total / static_cast<double>(trials);
}

double MonteCarloEstimator::EstimateTruncatedSpread(const std::vector<NodeId>& seeds,
                                                    NodeId eta, size_t trials, Rng& rng) {
  ASM_CHECK(trials > 0);
  double total = 0.0;
  for (size_t t = 0; t < trials; ++t) {
    const Realization realization = SampleRealization(rng);
    const size_t spread = simulator_.Spread(realization, seeds);
    total += static_cast<double>(std::min<size_t>(spread, eta));
  }
  return total / static_cast<double>(trials);
}

double MonteCarloEstimator::EstimateMarginalTruncatedSpread(const std::vector<NodeId>& seeds,
                                                            const BitVector& active,
                                                            NodeId shortfall, size_t trials,
                                                            Rng& rng) {
  ASM_CHECK(trials > 0);
  double total = 0.0;
  for (size_t t = 0; t < trials; ++t) {
    const Realization realization = SampleRealization(rng);
    const size_t spread =
        simulator_.PropagateResidual(realization, seeds, active).size();
    total += static_cast<double>(std::min<size_t>(spread, shortfall));
  }
  return total / static_cast<double>(trials);
}

}  // namespace asti
