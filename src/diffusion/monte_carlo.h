// Monte-Carlo spread estimation — the ground-truth oracle.
//
// Used by tests to validate the sampling estimators against E[I(S)] and
// E[Γ(S)] on small graphs, and by the Golovin–Krause oracle-greedy baseline.
// Exact spread computation is #P-hard (Chen et al. 2010), so everything
// here is sample-average; trial counts are the caller's accuracy knob.

#pragma once

#include <vector>

#include "diffusion/forward_sim.h"
#include "diffusion/model.h"
#include "graph/graph.h"
#include "util/bit_vector.h"
#include "util/rng.h"

namespace asti {

/// Sample-average estimator of expected (truncated/marginal) spreads.
class MonteCarloEstimator {
 public:
  MonteCarloEstimator(const DirectedGraph& graph, DiffusionModel model)
      : graph_(&graph), model_(model), simulator_(graph) {}

  /// Estimates E[I(S)] with `trials` fresh realizations.
  double EstimateSpread(const std::vector<NodeId>& seeds, size_t trials, Rng& rng);

  /// Estimates E[Γ(S)] = E[min{I(S), eta}].
  double EstimateTruncatedSpread(const std::vector<NodeId>& seeds, NodeId eta,
                                 size_t trials, Rng& rng);

  /// Estimates the marginal truncated spread Δ(S | active) on the residual
  /// graph: E[min{I(S | active), shortfall}] (Eq. 5-6). Nodes set in
  /// `active` are treated as removed.
  double EstimateMarginalTruncatedSpread(const std::vector<NodeId>& seeds,
                                         const BitVector& active, NodeId shortfall,
                                         size_t trials, Rng& rng);

 private:
  Realization SampleRealization(Rng& rng) const;

  const DirectedGraph* graph_;
  DiffusionModel model_;
  ForwardSimulator simulator_;
};

}  // namespace asti
