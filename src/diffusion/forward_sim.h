// Deterministic forward propagation on a fixed realization.
//
// Given a realization φ and a seed set S, the spread I_φ(S) is the number
// of nodes reachable from S over live edges. The residual variants restrict
// propagation to currently-inactive nodes, computing marginal spreads
// I_φ(S | S_{i-1}) on the residual graph G_i (Eq. 3).

#pragma once

#include <vector>

#include "diffusion/realization.h"
#include "graph/graph.h"
#include "util/bit_vector.h"

namespace asti {

/// Reusable scratch space for repeated forward simulations on one graph.
class ForwardSimulator {
 public:
  explicit ForwardSimulator(const DirectedGraph& graph)
      : graph_(&graph), visited_(graph.NumNodes()) {}

  /// Nodes activated by `seeds` under `realization` (includes the seeds),
  /// in BFS discovery order. Duplicate seeds are counted once.
  std::vector<NodeId> Propagate(const Realization& realization,
                                const std::vector<NodeId>& seeds);

  /// Residual variant: nodes already active (per `active`) neither activate
  /// nor relay; seeds already active contribute nothing. Returns the newly
  /// activated nodes only.
  std::vector<NodeId> PropagateResidual(const Realization& realization,
                                        const std::vector<NodeId>& seeds,
                                        const BitVector& active);

  /// Spread I_φ(S): |Propagate(...)|.
  size_t Spread(const Realization& realization, const std::vector<NodeId>& seeds);

 private:
  template <bool kResidual>
  std::vector<NodeId> Run(const Realization& realization, const std::vector<NodeId>& seeds,
                          const BitVector* active);

  const DirectedGraph* graph_;
  EpochVisitedSet visited_;
  std::vector<NodeId> frontier_;
};

}  // namespace asti
