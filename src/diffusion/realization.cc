#include "diffusion/realization.h"

namespace asti {

Status ValidateLtCompatible(const DirectedGraph& graph) {
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    const double sum = graph.InProbabilitySum(v);
    if (sum > 1.0 + 1e-9) {
      return Status::FailedPrecondition(
          "node " + std::to_string(v) + " has in-probability sum " +
          std::to_string(sum) + " > 1; the LT model is undefined on this graph");
    }
  }
  return Status::OK();
}

Realization Realization::SampleIc(const DirectedGraph& graph, Rng& rng) {
  Realization realization(graph, DiffusionModel::kIndependentCascade);
  const EdgeId m = graph.NumEdges();
  realization.ic_live_ = BitVector(m);
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    const EdgeId first = graph.FirstOutEdge(u);
    auto probs = graph.OutProbabilities(u);
    for (size_t i = 0; i < probs.size(); ++i) {
      if (rng.NextBernoulli(probs[i])) realization.ic_live_.Set(first + i);
    }
  }
  return realization;
}

Realization Realization::SampleLt(const DirectedGraph& graph, Rng& rng) {
  Realization realization(graph, DiffusionModel::kLinearThreshold);
  const NodeId n = graph.NumNodes();
  realization.lt_chosen_edge_.assign(n, kInvalidEdge);
  realization.lt_chosen_source_.assign(n, kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    auto sources = graph.InNeighbors(v);
    auto probs = graph.InProbabilities(v);
    auto edge_ids = graph.InEdgeIds(v);
    if (sources.empty()) continue;
    ASM_DCHECK(graph.InProbabilitySum(v) <= 1.0 + 1e-9)
        << "LT requires in-probabilities to sum to <= 1 at node " << v;
    double x = rng.NextDouble();
    for (size_t i = 0; i < sources.size(); ++i) {
      if (x < probs[i]) {
        realization.lt_chosen_edge_[v] = edge_ids[i];
        realization.lt_chosen_source_[v] = sources[i];
        break;
      }
      x -= probs[i];
    }
  }
  return realization;
}

size_t Realization::CountLiveEdges() const {
  if (model_ == DiffusionModel::kIndependentCascade) return ic_live_.Count();
  size_t count = 0;
  for (EdgeId e : lt_chosen_edge_) {
    if (e != kInvalidEdge) ++count;
  }
  return count;
}

}  // namespace asti
