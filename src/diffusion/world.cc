#include "diffusion/world.h"

#include <numeric>

namespace asti {

AdaptiveWorld::AdaptiveWorld(const DirectedGraph& graph, DiffusionModel model, NodeId eta,
                             Rng& rng)
    : AdaptiveWorld(graph, eta,
                    model == DiffusionModel::kIndependentCascade
                        ? Realization::SampleIc(graph, rng)
                        : Realization::SampleLt(graph, rng)) {}

AdaptiveWorld::AdaptiveWorld(const DirectedGraph& graph, NodeId eta,
                             Realization realization)
    : graph_(&graph),
      realization_(std::move(realization)),
      simulator_(graph),
      eta_(eta),
      active_(graph.NumNodes()),
      inactive_nodes_(graph.NumNodes()),
      inactive_position_(graph.NumNodes()) {
  ASM_CHECK(eta >= 1 && eta <= graph.NumNodes()) << "eta must lie in [1, n]";
  ASM_CHECK(&realization_.graph() == &graph);
  std::iota(inactive_nodes_.begin(), inactive_nodes_.end(), 0);
  std::iota(inactive_position_.begin(), inactive_position_.end(), 0);
}

void AdaptiveWorld::MarkActive(NodeId v) {
  ASM_DCHECK(!active_.Get(v));
  active_.Set(v);
  ++num_active_;
  // Swap-remove from the inactive list, keeping positions consistent.
  const uint32_t pos = inactive_position_[v];
  const NodeId last = inactive_nodes_.back();
  inactive_nodes_[pos] = last;
  inactive_position_[last] = pos;
  inactive_nodes_.pop_back();
}

std::vector<NodeId> AdaptiveWorld::Observe(const std::vector<NodeId>& seeds) {
  std::vector<NodeId> newly_active =
      simulator_.PropagateResidual(realization_, seeds, active_);
  for (NodeId v : newly_active) MarkActive(v);
  return newly_active;
}

}  // namespace asti
