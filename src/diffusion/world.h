// The adaptive "real world": a hidden realization plus the revealed state.
//
// AdaptiveWorld is the select-observe-select substrate of ASM (§2.2): a
// policy submits seeds one batch at a time, the world propagates them on
// its hidden realization restricted to inactive nodes, and reveals the
// newly activated set. The world also maintains the residual-graph
// bookkeeping every sampler needs: the active mask, the inactive node list
// (for uniform root sampling), n_i and the shortfall η_i.

#pragma once

#include <vector>

#include "diffusion/forward_sim.h"
#include "diffusion/realization.h"
#include "graph/graph.h"
#include "util/bit_vector.h"
#include "util/rng.h"

namespace asti {

/// Hidden-realization oracle with residual bookkeeping.
class AdaptiveWorld {
 public:
  /// Creates a world over a freshly sampled realization.
  AdaptiveWorld(const DirectedGraph& graph, DiffusionModel model, NodeId eta, Rng& rng);

  /// Creates a world over a caller-supplied realization (tests, replays).
  AdaptiveWorld(const DirectedGraph& graph, NodeId eta, Realization realization);

  const DirectedGraph& graph() const { return *graph_; }
  const Realization& realization() const { return realization_; }

  /// Threshold η.
  NodeId eta() const { return eta_; }
  /// Nodes activated so far (|V| - n_i).
  NodeId NumActive() const { return num_active_; }
  /// n_i: inactive node count.
  NodeId NumInactive() const { return graph_->NumNodes() - num_active_; }
  /// η_i = η - (n - n_i), clamped at 0.
  NodeId Shortfall() const {
    return eta_ > num_active_ ? eta_ - num_active_ : 0;
  }
  /// Whether at least η nodes are active.
  bool TargetReached() const { return num_active_ >= eta_; }

  bool IsActive(NodeId v) const { return active_.Get(v); }
  const BitVector& ActiveMask() const { return active_; }

  /// Inactive nodes, unordered; stable between observations.
  const std::vector<NodeId>& InactiveNodes() const { return inactive_nodes_; }

  /// Seeds a batch and propagates on the hidden realization restricted to
  /// inactive nodes. Returns newly activated nodes (seeds included if they
  /// were inactive). Already-active seeds are permitted and contribute 0.
  std::vector<NodeId> Observe(const std::vector<NodeId>& seeds);

  /// Convenience for singleton batches.
  std::vector<NodeId> Observe(NodeId seed) { return Observe(std::vector<NodeId>{seed}); }

 private:
  void MarkActive(NodeId v);

  const DirectedGraph* graph_;
  Realization realization_;
  ForwardSimulator simulator_;
  NodeId eta_;
  BitVector active_;
  NodeId num_active_ = 0;
  std::vector<NodeId> inactive_nodes_;     // compact list
  std::vector<uint32_t> inactive_position_;  // node -> index in inactive_nodes_
};

}  // namespace asti
