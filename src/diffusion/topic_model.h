// Topic-aware diffusion (Barbieri et al. 2012), the extension the paper
// names in §2 ("our algorithms can be easily extended to ... topic-aware
// models").
//
// In the topic-aware independent cascade (TIC) model every edge carries a
// per-topic propagation probability and an item (campaign) is a mixture
// over topics; the campaign-specific edge probability is the
// mixture-weighted average. Since the result is plain IC on a reweighted
// graph, the entire ASTI stack (mRR sampling, TRIM, the adaptive loop)
// applies unchanged — BuildCampaignGraph is the whole bridge.

#pragma once

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace asti {

/// Per-edge, per-topic propagation probabilities. Probabilities are
/// indexed [edge * num_topics + topic], parallel to forward EdgeIds.
class TopicProfile {
 public:
  /// Creates an empty profile for `num_topics` topics over `graph`.
  TopicProfile(const DirectedGraph& graph, uint32_t num_topics);

  uint32_t num_topics() const { return num_topics_; }
  const DirectedGraph& graph() const { return *graph_; }

  double Probability(EdgeId edge, uint32_t topic) const {
    ASM_DCHECK(edge < graph_->NumEdges() && topic < num_topics_);
    return probabilities_[static_cast<size_t>(edge) * num_topics_ + topic];
  }

  void SetProbability(EdgeId edge, uint32_t topic, double p) {
    ASM_CHECK(edge < graph_->NumEdges() && topic < num_topics_);
    ASM_CHECK(p >= 0.0 && p <= 1.0);
    probabilities_[static_cast<size_t>(edge) * num_topics_ + topic] = p;
  }

 private:
  const DirectedGraph* graph_;
  uint32_t num_topics_;
  std::vector<double> probabilities_;
};

/// A campaign's topic mixture γ (non-negative, sums to 1).
using TopicMixture = std::vector<double>;

/// Random profile: per topic, each edge's base probability is scaled by an
/// independent affinity factor in [0, 1]; topic t's affinities are drawn
/// from that topic's own stream so topics differ. Base probabilities come
/// from the underlying graph (e.g. weighted cascade).
TopicProfile MakeRandomTopicProfile(const DirectedGraph& graph, uint32_t num_topics,
                                    Rng& rng);

/// Validates a mixture for a profile (size, non-negativity, sums to ~1).
Status ValidateMixture(const TopicProfile& profile, const TopicMixture& mixture);

/// Builds the campaign-specific IC graph: p(e) = Σ_t γ_t · p_t(e), with
/// zero-probability edges dropped. The returned graph plugs into the
/// ordinary ASTI/TRIM stack.
StatusOr<DirectedGraph> BuildCampaignGraph(const TopicProfile& profile,
                                           const TopicMixture& mixture);

}  // namespace asti
