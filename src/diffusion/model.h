// Diffusion model selector shared across samplers and simulators.

#pragma once

namespace asti {

/// Propagation models supported throughout the library (§2.1 of the paper).
enum class DiffusionModel {
  kIndependentCascade,
  kLinearThreshold,
};

inline const char* DiffusionModelName(DiffusionModel model) {
  switch (model) {
    case DiffusionModel::kIndependentCascade:
      return "IC";
    case DiffusionModel::kLinearThreshold:
      return "LT";
  }
  return "?";
}

}  // namespace asti
