#include "diffusion/topic_model.h"

#include <cmath>

#include "graph/graph_builder.h"

namespace asti {

TopicProfile::TopicProfile(const DirectedGraph& graph, uint32_t num_topics)
    : graph_(&graph), num_topics_(num_topics) {
  ASM_CHECK(num_topics >= 1);
  probabilities_.assign(static_cast<size_t>(graph.NumEdges()) * num_topics, 0.0);
}

TopicProfile MakeRandomTopicProfile(const DirectedGraph& graph, uint32_t num_topics,
                                    Rng& rng) {
  TopicProfile profile(graph, num_topics);
  // One independent stream per topic keeps topics distinguishable and the
  // construction deterministic given rng's state.
  std::vector<Rng> topic_streams;
  topic_streams.reserve(num_topics);
  for (uint32_t t = 0; t < num_topics; ++t) topic_streams.push_back(rng.Split());
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    const EdgeId first = graph.FirstOutEdge(u);
    auto probs = graph.OutProbabilities(u);
    for (size_t i = 0; i < probs.size(); ++i) {
      for (uint32_t t = 0; t < num_topics; ++t) {
        const double affinity = topic_streams[t].NextDouble();
        profile.SetProbability(first + static_cast<EdgeId>(i), t,
                               probs[i] * affinity);
      }
    }
  }
  return profile;
}

Status ValidateMixture(const TopicProfile& profile, const TopicMixture& mixture) {
  if (mixture.size() != profile.num_topics()) {
    return Status::InvalidArgument("mixture has " + std::to_string(mixture.size()) +
                                   " entries for " +
                                   std::to_string(profile.num_topics()) + " topics");
  }
  double total = 0.0;
  for (double gamma : mixture) {
    if (gamma < 0.0) return Status::InvalidArgument("negative mixture weight");
    total += gamma;
  }
  if (std::abs(total - 1.0) > 1e-9) {
    return Status::InvalidArgument("mixture sums to " + std::to_string(total));
  }
  return Status::OK();
}

StatusOr<DirectedGraph> BuildCampaignGraph(const TopicProfile& profile,
                                           const TopicMixture& mixture) {
  ASM_RETURN_NOT_OK(ValidateMixture(profile, mixture));
  const DirectedGraph& graph = profile.graph();
  GraphBuilder builder(graph.NumNodes());
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    const EdgeId first = graph.FirstOutEdge(u);
    auto neighbors = graph.OutNeighbors(u);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      const EdgeId edge = first + static_cast<EdgeId>(i);
      double p = 0.0;
      for (uint32_t t = 0; t < profile.num_topics(); ++t) {
        p += mixture[t] * profile.Probability(edge, t);
      }
      if (p > 0.0) {
        ASM_RETURN_NOT_OK(builder.AddEdge(u, neighbors[i], std::min(p, 1.0)));
      }
    }
  }
  return builder.Build();
}

}  // namespace asti
