// Live-edge realizations (§2.1).
//
// IC: every edge flips an independent coin with its propagation probability;
// a realization is the set of live edges.
// LT: the standard live-edge equivalence — every node independently keeps at
// most one incoming edge, edge (u, v) with probability p(u, v) and none with
// probability 1 - Σ p(·, v). Influence spread distributions are identical to
// the threshold-based process (Kempe et al. 2003).
//
// A Realization fixes all randomness of one propagation world; forward
// simulation on it is deterministic.

#pragma once

#include <vector>

#include "diffusion/model.h"
#include "graph/graph.h"
#include "util/bit_vector.h"
#include "util/rng.h"
#include "util/status.h"

namespace asti {

/// Checks the LT precondition Σ in-probabilities ≤ 1 (+tolerance) for every
/// node; call once before running LT campaigns on hand-built graphs.
/// Weighted-cascade weights satisfy it by construction.
Status ValidateLtCompatible(const DirectedGraph& graph);

/// One sampled world. Copyable; sized O(m) for IC and O(n) for LT.
class Realization {
 public:
  /// Samples a full IC realization (one coin per edge).
  static Realization SampleIc(const DirectedGraph& graph, Rng& rng);

  /// Samples a full LT realization (at most one live in-edge per node).
  /// Requires Σ in-probabilities ≤ 1 + 1e-9 for every node.
  static Realization SampleLt(const DirectedGraph& graph, Rng& rng);

  DiffusionModel model() const { return model_; }
  const DirectedGraph& graph() const { return *graph_; }

  /// Whether forward edge e = (u, v) is live. For LT, an edge is live iff it
  /// is v's chosen in-edge.
  bool IsLive(EdgeId e) const {
    if (model_ == DiffusionModel::kIndependentCascade) return ic_live_.Get(e);
    return lt_chosen_edge_[graph_->EdgeTarget(e)] == e;
  }

  /// LT only: the chosen in-edge's source for v, or kInvalidNode.
  NodeId ChosenSource(NodeId v) const {
    ASM_DCHECK(model_ == DiffusionModel::kLinearThreshold);
    const EdgeId e = lt_chosen_edge_[v];
    return e == kInvalidEdge ? kInvalidNode : lt_chosen_source_[v];
  }

  /// Number of live edges (testing / statistics).
  size_t CountLiveEdges() const;

 private:
  Realization(const DirectedGraph& graph, DiffusionModel model)
      : graph_(&graph), model_(model) {}

  const DirectedGraph* graph_;
  DiffusionModel model_;
  BitVector ic_live_;                    // IC: live flag per forward EdgeId
  std::vector<EdgeId> lt_chosen_edge_;   // LT: chosen forward EdgeId per node
  std::vector<NodeId> lt_chosen_source_;  // LT: source of that edge per node
};

}  // namespace asti
