#include "diffusion/spread_distribution.h"

#include <algorithm>

#include "diffusion/realization.h"
#include "util/check.h"

namespace asti {

SpreadDistribution::SpreadDistribution(const DirectedGraph& graph, DiffusionModel model,
                                       const std::vector<NodeId>& seeds, size_t trials,
                                       Rng& rng) {
  ASM_CHECK(trials >= 1);
  samples_.reserve(trials);
  ForwardSimulator simulator(graph);
  for (size_t t = 0; t < trials; ++t) {
    const Realization realization = model == DiffusionModel::kIndependentCascade
                                        ? Realization::SampleIc(graph, rng)
                                        : Realization::SampleLt(graph, rng);
    samples_.push_back(static_cast<double>(simulator.Spread(realization, seeds)));
  }
  std::sort(samples_.begin(), samples_.end());
}

double SpreadDistribution::Mean() const {
  double total = 0.0;
  for (double sample : samples_) total += sample;
  return total / static_cast<double>(samples_.size());
}

double SpreadDistribution::Quantile(double q) const {
  ASM_CHECK(q >= 0.0 && q <= 1.0);
  const size_t last = samples_.size() - 1;
  const size_t rank = static_cast<size_t>(q * static_cast<double>(last) + 0.5);
  return samples_[std::min(rank, last)];
}

double SpreadDistribution::MissProbability(double threshold) const {
  const auto it = std::lower_bound(samples_.begin(), samples_.end(), threshold);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double SpreadDistribution::OvershootProbability(double threshold, double factor) const {
  const double cut = factor * threshold;
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), cut);
  return static_cast<double>(samples_.end() - it) /
         static_cast<double>(samples_.size());
}

}  // namespace asti
