#include "diffusion/forward_sim.h"

namespace asti {

template <bool kResidual>
std::vector<NodeId> ForwardSimulator::Run(const Realization& realization,
                                          const std::vector<NodeId>& seeds,
                                          const BitVector* active) {
  ASM_CHECK(&realization.graph() == graph_) << "realization belongs to another graph";
  visited_.Reset();
  std::vector<NodeId> activated;
  frontier_.clear();
  for (NodeId s : seeds) {
    ASM_DCHECK(s < graph_->NumNodes());
    if constexpr (kResidual) {
      if (active->Get(s)) continue;
    }
    if (visited_.MarkVisited(s)) {
      activated.push_back(s);
      frontier_.push_back(s);
    }
  }
  // BFS over live edges.
  for (size_t head = 0; head < frontier_.size(); ++head) {
    const NodeId u = frontier_[head];
    const EdgeId first = graph_->FirstOutEdge(u);
    auto neighbors = graph_->OutNeighbors(u);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      const NodeId v = neighbors[i];
      if constexpr (kResidual) {
        if (active->Get(v)) continue;
      }
      if (visited_.Visited(v)) continue;
      if (!realization.IsLive(static_cast<EdgeId>(first + i))) continue;
      visited_.MarkVisited(v);
      activated.push_back(v);
      frontier_.push_back(v);
    }
  }
  return activated;
}

std::vector<NodeId> ForwardSimulator::Propagate(const Realization& realization,
                                                const std::vector<NodeId>& seeds) {
  return Run<false>(realization, seeds, nullptr);
}

std::vector<NodeId> ForwardSimulator::PropagateResidual(const Realization& realization,
                                                        const std::vector<NodeId>& seeds,
                                                        const BitVector& active) {
  return Run<true>(realization, seeds, &active);
}

size_t ForwardSimulator::Spread(const Realization& realization,
                                const std::vector<NodeId>& seeds) {
  return Propagate(realization, seeds).size();
}

}  // namespace asti
