#include "obs/histogram.h"

#include <bit>
#include <cmath>

namespace asti {

size_t HistogramLayout::BucketIndex(uint64_t value) {
  if (value > kMaxValue) value = kMaxValue;
  if (value < kSub) return static_cast<size_t>(value);
  const uint64_t w = static_cast<uint64_t>(std::bit_width(value)) - 1;  // floor log2
  const uint64_t sub = (value >> (w - kSubBits)) & (kSub - 1);
  return static_cast<size_t>(kSub + (w - kSubBits) * kSub + sub);
}

uint64_t HistogramLayout::BucketMin(size_t index) {
  if (index < kSub) return index;
  const uint64_t k = static_cast<uint64_t>(index) - kSub;
  const uint64_t w = kSubBits + k / kSub;
  const uint64_t sub = k % kSub;
  const uint64_t scale = 1ull << (w - kSubBits);
  return (1ull << w) + sub * scale;
}

uint64_t HistogramLayout::BucketMax(size_t index) {
  if (index < kSub) return index;
  const uint64_t k = static_cast<uint64_t>(index) - kSub;
  const uint64_t w = kSubBits + k / kSub;
  const uint64_t scale = 1ull << (w - kSubBits);
  return BucketMin(index) + scale - 1;
}

uint64_t HistogramData::Count() const {
  uint64_t count = 0;
  for (uint64_t bucket : buckets) count += bucket;
  return count;
}

uint64_t HistogramData::Quantile(double q) const {
  const uint64_t count = Count();
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return HistogramLayout::BucketMax(i);
  }
  return HistogramLayout::kMaxValue;  // unreachable: cumulative == count
}

uint64_t HistogramData::MaxValue() const {
  for (size_t i = buckets.size(); i > 0; --i) {
    if (buckets[i - 1] != 0) return HistogramLayout::BucketMax(i - 1);
  }
  return 0;
}

}  // namespace asti
