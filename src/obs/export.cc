#include "obs/export.h"

#include <cstdio>
#include <sstream>

namespace asti {

namespace {

// Minimal escaping for label values / JSON strings (graph names and
// algorithm names are benign, but a custom graph name could contain
// anything).
std::string Escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string FormatNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string PrometheusLabels(const MetricLabels& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  for (const auto& [key, value] : labels) {
    if (out.size() > 1) out += ",";
    out += key + "=\"" + Escape(value) + "\"";
  }
  if (!extra.empty()) {
    if (out.size() > 1) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

std::string JsonLabels(const MetricLabels& labels) {
  std::string out = "{";
  for (const auto& [key, value] : labels) {
    if (out.size() > 1) out += ", ";
    out += "\"" + Escape(key) + "\": \"" + Escape(value) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string ExportPrometheusText(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  std::string last_family;
  auto type_line = [&out, &last_family](const std::string& name, const char* type) {
    if (name != last_family) {
      out << "# TYPE " << name << " " << type << "\n";
      last_family = name;
    }
  };
  for (const CounterSample& sample : snapshot.counters) {
    type_line(sample.name, "counter");
    out << sample.name << PrometheusLabels(sample.labels) << " " << sample.value << "\n";
  }
  for (const GaugeSample& sample : snapshot.gauges) {
    type_line(sample.name, "gauge");
    out << sample.name << PrometheusLabels(sample.labels) << " " << sample.value << "\n";
  }
  for (const HistogramSample& sample : snapshot.histograms) {
    type_line(sample.name, "histogram");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < sample.data.buckets.size(); ++i) {
      if (sample.data.buckets[i] == 0) continue;
      cumulative += sample.data.buckets[i];
      const double le =
          static_cast<double>(HistogramLayout::BucketMax(i)) * sample.scale;
      out << sample.name << "_bucket"
          << PrometheusLabels(sample.labels, "le=\"" + FormatNumber(le) + "\"") << " "
          << cumulative << "\n";
    }
    out << sample.name << "_bucket" << PrometheusLabels(sample.labels, "le=\"+Inf\"")
        << " " << cumulative << "\n";
    out << sample.name << "_sum" << PrometheusLabels(sample.labels) << " "
        << FormatNumber(static_cast<double>(sample.data.sum) * sample.scale) << "\n";
    out << sample.name << "_count" << PrometheusLabels(sample.labels) << " "
        << cumulative << "\n";
  }
  return out.str();
}

std::string ExportMetricsJson(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\n  \"counters\": [";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSample& sample = snapshot.counters[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \"" << Escape(sample.name)
        << "\", \"labels\": " << JsonLabels(sample.labels)
        << ", \"value\": " << sample.value << "}";
  }
  out << "\n  ],\n  \"gauges\": [";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSample& sample = snapshot.gauges[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \"" << Escape(sample.name)
        << "\", \"labels\": " << JsonLabels(sample.labels)
        << ", \"value\": " << sample.value << "}";
  }
  out << "\n  ],\n  \"histograms\": [";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& sample = snapshot.histograms[i];
    const HistogramData& data = sample.data;
    auto scaled = [&sample](uint64_t raw) {
      return FormatNumber(static_cast<double>(raw) * sample.scale);
    };
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \"" << Escape(sample.name)
        << "\", \"labels\": " << JsonLabels(sample.labels)
        << ", \"count\": " << data.Count() << ", \"sum\": " << scaled(data.sum)
        << ", \"p50\": " << scaled(data.Quantile(0.50))
        << ", \"p90\": " << scaled(data.Quantile(0.90))
        << ", \"p99\": " << scaled(data.Quantile(0.99))
        << ", \"p999\": " << scaled(data.Quantile(0.999))
        << ", \"max\": " << scaled(data.MaxValue()) << ", \"buckets\": [";
    bool first = true;
    for (size_t b = 0; b < data.buckets.size(); ++b) {
      if (data.buckets[b] == 0) continue;
      out << (first ? "" : ", ") << "{\"le\": "
          << FormatNumber(static_cast<double>(HistogramLayout::BucketMax(b)) *
                          sample.scale)
          << ", \"count\": " << data.buckets[b] << "}";
      first = false;
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace asti
