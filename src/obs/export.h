// Exporters for MetricsSnapshot: Prometheus-style text exposition and the
// machine-readable JSON shape the bench harness CI artifacts use.
//
// Both exporters are pure functions of the snapshot, emit entries in
// snapshot order (sorted — see MetricsRegistry::Snapshot), and apply each
// histogram's scale so time series recorded in nanoseconds read as
// seconds. Histogram buckets are emitted sparsely (only non-empty
// buckets, plus the +Inf/cumulative terminator), which keeps a 244-bucket
// grid's exposition proportional to the data actually observed.

#pragma once

#include <string>

#include "obs/metrics.h"

namespace asti {

/// Prometheus text exposition format:
///   # TYPE asti_requests_total counter
///   asti_requests_total{graph="wiki",algorithm="ASTI"} 42
///   asti_request_latency_seconds_bucket{graph="wiki",...,le="0.004"} 17
///   ...
///   asti_request_latency_seconds_sum{...} 1.25
///   asti_request_latency_seconds_count{...} 42
/// Bucket `le` bounds are the fixed grid's scaled BucketMax values;
/// bucket counts are cumulative, per the format.
std::string ExportPrometheusText(const MetricsSnapshot& snapshot);

/// JSON document (2-space indented, stable key order) with the shape
///   {"counters": [{"name", "labels", "value"}, ...],
///    "gauges": [...],
///    "histograms": [{"name", "labels", "count", "sum",
///                    "p50", "p90", "p99", "p999", "max",
///                    "buckets": [{"le", "count"}, ...]}, ...]}
/// Quantiles/sum/bounds are scaled to display units.
std::string ExportMetricsJson(const MetricsSnapshot& snapshot);

}  // namespace asti
