// MetricsRegistry — named counters, gauges, and log-bucketed histograms
// for the serving stack.
//
// Design constraints, in order:
//   1. Hot-path increments must not serialize: ShardedCounter spreads
//      increments across cache-line-padded per-thread cells, so Add() is
//      one relaxed atomic fetch_add on a cell this thread (almost always)
//      has exclusive ownership of. LogHistogram::Record is likewise one
//      relaxed add (obs/histogram.h). No locks anywhere on the write path.
//   2. Registration is rare and amortized: GetCounter/GetGauge/
//      GetHistogram take a mutex, but return a STABLE reference (entries
//      are never erased), so callers resolve a handle once and increment
//      forever. The SeedMinEngine resolves handles per request
//      completion — never per RR-set.
//   3. Snapshots are deterministic: entries are stored in a sorted map
//      keyed on (name, labels), so two snapshots of registries fed the
//      same updates enumerate identically, and exporters need no sorting.
//
// Metric identity is (name, labels) where labels is an ordered list of
// key/value pairs — callers must use one canonical label order per metric
// family (the engine always emits {graph, algorithm}).
//
// The registry records raw uint64 values; a histogram's `scale` says how
// exporters convert raw units to display units (1e-9 turns recorded
// nanoseconds into exported seconds). See obs/export.h for the text and
// JSON exporters.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace asti {

/// Ordered label key/value pairs; part of a metric's identity.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter with per-thread sharded cells: Add() is a relaxed
/// fetch_add on this thread's cell (cache-line padded, so concurrent
/// writers do not false-share); Value() sums the cells. Totals are exact —
/// every increment lands in exactly one cell — only the *moment* a
/// concurrent reader observes each cell differs.
class ShardedCounter {
 public:
  static constexpr size_t kShards = 16;

  ShardedCounter() = default;
  ShardedCounter(const ShardedCounter&) = delete;
  ShardedCounter& operator=(const ShardedCounter&) = delete;

  void Add(uint64_t delta = 1) {
    cells_[ThreadShard()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) total += cell.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };

  /// Stable per-thread cell index: threads are assigned round-robin on
  /// first use, so up to kShards concurrent writers never contend.
  static size_t ThreadShard();

  std::array<Cell, kShards> cells_{};
};

/// Point-in-time signed value (inflight requests, queue depth).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// --- Snapshots --------------------------------------------------------------

struct CounterSample {
  std::string name;
  MetricLabels labels;
  uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  MetricLabels labels;
  int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  MetricLabels labels;
  /// Raw-value → display-unit factor (1e-9 for ns-recorded seconds).
  double scale = 1.0;
  HistogramData data;
};

/// A consistent-enumeration copy of a registry (plus whatever synthesized
/// samples the producer appends — the engine adds admission counters and
/// per-graph gauges). Sorted by (name, labels) within each kind.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  const CounterSample* FindCounter(const std::string& name,
                                   const MetricLabels& labels) const;
  const HistogramSample* FindHistogram(const std::string& name,
                                       const MetricLabels& labels) const;

  /// Element-wise merge of every histogram named `name` whose labels
  /// contain `label_key == label_value` (empty key = every label set).
  /// Deterministic: merging commutes on the fixed bucket grid.
  HistogramData MergedHistogram(const std::string& name,
                                const std::string& label_key = "",
                                const std::string& label_value = "") const;
};

// --- Registry ---------------------------------------------------------------

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create; the returned reference is stable for the registry's
  /// lifetime (resolve once, increment lock-free forever).
  ShardedCounter& GetCounter(const std::string& name, const MetricLabels& labels = {});
  Gauge& GetGauge(const std::string& name, const MetricLabels& labels = {});
  /// `scale` is fixed at first creation; later calls for the same
  /// (name, labels) return the existing histogram unchanged.
  LogHistogram& GetHistogram(const std::string& name, const MetricLabels& labels = {},
                             double scale = 1.0);

  MetricsSnapshot Snapshot() const;

 private:
  using Key = std::pair<std::string, MetricLabels>;

  struct HistogramEntry {
    double scale = 1.0;
    LogHistogram histogram;
  };

  mutable std::mutex mutex_;
  std::map<Key, std::unique_ptr<ShardedCounter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<HistogramEntry>> histograms_;
};

}  // namespace asti
