#include "obs/metrics.h"

namespace asti {

size_t ShardedCounter::ThreadShard() {
  static std::atomic<size_t> next_shard{0};
  thread_local const size_t shard =
      next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

ShardedCounter& MetricsRegistry::GetCounter(const std::string& name,
                                            const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<ShardedCounter>& slot = counters_[Key{name, labels}];
  if (slot == nullptr) slot = std::make_unique<ShardedCounter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[Key{name, labels}];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

LogHistogram& MetricsRegistry::GetHistogram(const std::string& name,
                                            const MetricLabels& labels, double scale) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<HistogramEntry>& slot = histograms_[Key{name, labels}];
  if (slot == nullptr) {
    slot = std::make_unique<HistogramEntry>();
    slot->scale = scale;
  }
  return slot->histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [key, counter] : counters_) {
    snapshot.counters.push_back({key.first, key.second, counter->Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [key, gauge] : gauges_) {
    snapshot.gauges.push_back({key.first, key.second, gauge->Value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [key, entry] : histograms_) {
    snapshot.histograms.push_back(
        {key.first, key.second, entry->scale, entry->histogram.Snapshot()});
  }
  return snapshot;
}

const CounterSample* MetricsSnapshot::FindCounter(const std::string& name,
                                                  const MetricLabels& labels) const {
  for (const CounterSample& sample : counters) {
    if (sample.name == name && sample.labels == labels) return &sample;
  }
  return nullptr;
}

const HistogramSample* MetricsSnapshot::FindHistogram(const std::string& name,
                                                      const MetricLabels& labels) const {
  for (const HistogramSample& sample : histograms) {
    if (sample.name == name && sample.labels == labels) return &sample;
  }
  return nullptr;
}

HistogramData MetricsSnapshot::MergedHistogram(const std::string& name,
                                               const std::string& label_key,
                                               const std::string& label_value) const {
  HistogramData merged;
  for (const HistogramSample& sample : histograms) {
    if (sample.name != name) continue;
    if (!label_key.empty()) {
      bool match = false;
      for (const auto& [key, value] : sample.labels) {
        if (key == label_key && value == label_value) {
          match = true;
          break;
        }
      }
      if (!match) continue;
    }
    merged.Merge(sample.data);
  }
  return merged;
}

}  // namespace asti
