// Per-request phase profiling: where a SolveRequest's time goes.
//
// Distinct from core/trace.h (which records the *algorithmic* trace of an
// adaptive run — rounds, seeds, samples): a RequestProfile records the
// *serving* breakdown of one request — queue wait vs RR/mRR sampling vs
// greedy coverage vs certify — plus the sampling volume, and rides back
// on SolveResult so clients and benches see per-request phase data
// without any engine-level aggregation.
//
// A PhaseSpan is a scoped timer accumulating into one profile slot. The
// profile is written by the single thread driving the request (sampling
// fans out to the pool, but the GenerateBatch/coverage calls themselves
// block on the driving thread), so the slots are plain doubles — no
// atomics on the accumulation path, and a null profile makes every span
// a no-op (the metrics-off mode). Spans never touch RNG streams, work
// partitioning, or merge order, so completed results are bit-identical
// with profiling on or off (the determinism contract of
// src/parallel/README.md extends to observability).

#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace asti {

/// The serving-phase breakdown of one request, returned on SolveResult.
/// Seconds are wall time on the driving thread; phases are disjoint and
/// (with queue_wait) sum to ≤ total_seconds — the remainder is the
/// adaptive loop's observe/update work and per-request setup.
struct RequestProfile {
  double queue_wait_seconds = 0.0;  // admission → execution start (async paths)
  double sampling_seconds = 0.0;    // RR/mRR-set generation (pool + sequential)
  double coverage_seconds = 0.0;    // greedy / lazy-greedy / argmax coverage
  double certify_seconds = 0.0;     // bound evaluation + doubling decisions
  double total_seconds = 0.0;       // queue wait + execution, whole request
  uint64_t sets_generated = 0;      // RR/mRR sets produced for this request
  /// Peak footprint of REQUEST-OWNED collections only (residual rounds,
  /// hidden worlds). Cache-resident storage is accounted separately below
  /// so shared bytes are never double-charged to every request using them.
  uint64_t collection_bytes = 0;
  /// Peak footprint of the shared (cache-resident) collections this request
  /// read or extended.
  uint64_t shared_collection_bytes = 0;
  uint64_t sets_reused = 0;    // sets served from a sampler-cache sealed prefix
  uint64_t sets_extended = 0;  // sets this request generated INTO the cache
  /// True when every cacheable stage was served entirely from sealed
  /// prefixes (sets_reused > 0 and sets_extended == 0).
  bool cache_hit = false;
};

/// The profile slots a span can accumulate into.
enum class RequestPhase { kSampling, kCoverage, kCertify };

inline double* PhaseSlot(RequestProfile& profile, RequestPhase phase) {
  switch (phase) {
    case RequestPhase::kSampling:
      return &profile.sampling_seconds;
    case RequestPhase::kCoverage:
      return &profile.coverage_seconds;
    case RequestPhase::kCertify:
      return &profile.certify_seconds;
  }
  return &profile.total_seconds;  // unreachable
}

/// Scoped phase timer: adds the enclosed wall time to one profile slot at
/// destruction. Null profile = no-op (and no clock reads).
class PhaseSpan {
 public:
  PhaseSpan(RequestProfile* profile, RequestPhase phase)
      : profile_(profile), phase_(phase) {
    if (profile_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  ~PhaseSpan() {
    if (profile_ == nullptr) return;
    *PhaseSlot(*profile_, phase_) +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
  }

 private:
  RequestProfile* profile_;
  RequestPhase phase_;
  std::chrono::steady_clock::time_point start_;
};

/// Null-tolerant sampling-volume accounting: `sets` more sets generated,
/// collection footprint currently `bytes` (peak is kept).
inline void NoteSampling(RequestProfile* profile, uint64_t sets, uint64_t bytes) {
  if (profile == nullptr) return;
  profile->sets_generated += sets;
  profile->collection_bytes = std::max(profile->collection_bytes, bytes);
}

/// Null-tolerant shared-cache accounting: `reused` sets served from sealed
/// prefixes, `extended` sets generated into the cache by this request
/// (extended sets also count toward sets_generated — the request did the
/// sampling work), cache-resident footprint currently `bytes` (peak kept).
inline void NoteSharedSampling(RequestProfile* profile, uint64_t reused, uint64_t extended,
                               uint64_t bytes) {
  if (profile == nullptr) return;
  profile->sets_reused += reused;
  profile->sets_extended += extended;
  profile->sets_generated += extended;
  profile->shared_collection_bytes = std::max(profile->shared_collection_bytes, bytes);
}

}  // namespace asti
