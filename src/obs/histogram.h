// Mergeable log-bucketed histograms with a FIXED bucket layout.
//
// The layout is the whole point: every histogram in the process (and in
// every process that ever links this library) shares one deterministic
// bucket grid, so merging two histograms is element-wise addition of
// bucket counts and a quantile estimated from a merge of per-thread (or
// per-shard, or per-process) histograms is bit-identical to the quantile
// of one histogram fed the same values in any order. No dynamic
// rebucketing, no value-dependent resizing — the grid never moves.
//
// Grid: values 0..3 get exact buckets; from 4 up, each power-of-two
// octave is split into 4 sub-buckets (quartiles of the octave), giving
// ≤ 25% relative quantile error across the full uint64 range up to
// 2^62 − 1 (larger values clamp into the top bucket). 244 buckets total,
// ~2 KB per recorder.
//
// Two types:
//   * HistogramData — plain copyable counts; Add/Merge/Quantile. The
//     snapshot/merge/export currency.
//   * LogHistogram  — the concurrent recorder: Record() is one relaxed
//     atomic add on the bucket cell (plus one on the running sum), safe
//     from any thread, no locks; Snapshot() materializes a HistogramData.
//
// Time histograms record NANOSECONDS as the raw value; exporters attach
// a scale (1e-9) to present seconds. See src/obs/metrics.h.

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace asti {

/// The process-wide fixed bucket grid shared by every histogram.
class HistogramLayout {
 public:
  /// Sub-bucket resolution: each octave [2^w, 2^{w+1}) splits into
  /// 2^kSubBits buckets.
  static constexpr uint64_t kSubBits = 2;
  static constexpr uint64_t kSub = 1ull << kSubBits;  // 4
  /// Highest octave exponent the grid resolves; values above kMaxValue
  /// clamp into the top bucket.
  static constexpr uint64_t kMaxExponent = 61;
  static constexpr uint64_t kMaxValue = (1ull << (kMaxExponent + 1)) - 1;
  /// 4 exact buckets for values 0..3, then 4 per octave for w in
  /// [kSubBits, kMaxExponent]: 4 + 60·4 = 244.
  static constexpr size_t kNumBuckets =
      static_cast<size_t>(kSub + (kMaxExponent - kSubBits + 1) * kSub);

  /// Bucket holding `value` (values > kMaxValue clamp to the top bucket).
  static size_t BucketIndex(uint64_t value);

  /// Inclusive smallest / largest value mapping to bucket `index`.
  /// BucketMax is the deterministic quantile representative: quantile
  /// estimates never under-report.
  static uint64_t BucketMin(size_t index);
  static uint64_t BucketMax(size_t index);
};

/// Plain histogram counts on the fixed grid: copyable, mergeable, and the
/// unit quantiles are computed from. Not thread-safe (use LogHistogram to
/// record concurrently, then Snapshot).
struct HistogramData {
  std::array<uint64_t, HistogramLayout::kNumBuckets> buckets{};
  /// Σ of recorded raw values. Exact when built via Add/Merge; a snapshot
  /// taken during concurrent recording may trail the buckets by the few
  /// in-flight records (counts stay internally consistent).
  uint64_t sum = 0;

  void Add(uint64_t value) {
    ++buckets[HistogramLayout::BucketIndex(value)];
    sum += value;
  }

  void Merge(const HistogramData& other) {
    for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
    sum += other.sum;
  }

  /// Total recorded values (Σ bucket counts).
  uint64_t Count() const;

  /// Deterministic quantile estimate for q ∈ [0, 1]: the BucketMax of the
  /// first bucket whose cumulative count reaches ⌈q·Count()⌉ (rank ≥ 1).
  /// 0 on an empty histogram. Merge-of-shards == single-stream by
  /// construction: only bucket counts enter the estimate.
  uint64_t Quantile(double q) const;

  /// Largest recorded bucket's BucketMax (0 when empty).
  uint64_t MaxValue() const;
};

/// Concurrent recorder on the fixed grid. Record() is wait-free: one
/// relaxed fetch_add on the bucket cell and one on the sum — no locks,
/// no CAS loops — so it is safe on serving hot paths. Aggregation across
/// threads happens at Snapshot/Merge time, where determinism is free
/// because bucket counts commute.
class LogHistogram {
 public:
  LogHistogram() = default;
  LogHistogram(const LogHistogram&) = delete;
  LogHistogram& operator=(const LogHistogram&) = delete;

  void Record(uint64_t value) {
    buckets_[HistogramLayout::BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Copies the counts out (relaxed loads). A snapshot racing Record()
  /// observes some subset of concurrent records; each bucket value is a
  /// real count that was current at its load.
  HistogramData Snapshot() const {
    HistogramData data;
    for (size_t i = 0; i < data.buckets.size(); ++i) {
      data.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    data.sum = sum_.load(std::memory_order_relaxed);
    return data;
  }

 private:
  std::array<std::atomic<uint64_t>, HistogramLayout::kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

}  // namespace asti
