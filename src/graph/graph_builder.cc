#include "graph/graph_builder.h"

#include <algorithm>
#include <string>

namespace asti {

Status GraphBuilder::AddEdge(NodeId source, NodeId target, double probability) {
  if (source >= num_nodes_ || target >= num_nodes_) {
    return Status::InvalidArgument("edge endpoint out of range: " + std::to_string(source) +
                                   " -> " + std::to_string(target));
  }
  if (source == target) {
    return Status::InvalidArgument("self-loop rejected at node " + std::to_string(source));
  }
  if (!(probability > 0.0) || probability > 1.0) {
    return Status::InvalidArgument("edge probability must be in (0, 1], got " +
                                   std::to_string(probability));
  }
  edges_.push_back(Edge{source, target, probability});
  return Status::OK();
}

Status GraphBuilder::AddUndirectedEdge(NodeId u, NodeId v, double probability) {
  ASM_RETURN_NOT_OK(AddEdge(u, v, probability));
  return AddEdge(v, u, probability);
}

StatusOr<DirectedGraph> GraphBuilder::Build(DuplicatePolicy policy) {
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.source != b.source) return a.source < b.source;
    return a.target < b.target;
  });

  // Resolve duplicates.
  std::vector<Edge> deduped;
  deduped.reserve(edges_.size());
  for (const Edge& e : edges_) {
    if (!deduped.empty() && deduped.back().source == e.source &&
        deduped.back().target == e.target) {
      if (policy == DuplicatePolicy::kReject) {
        return Status::InvalidArgument("duplicate edge " + std::to_string(e.source) + " -> " +
                                       std::to_string(e.target));
      }
      deduped.back().probability = std::max(deduped.back().probability, e.probability);
      continue;
    }
    deduped.push_back(e);
  }

  DirectedGraph graph;
  graph.num_nodes_ = num_nodes_;
  const size_t m = deduped.size();

  graph.out_offsets_.assign(num_nodes_ + 1, 0);
  graph.out_targets_.resize(m);
  graph.out_probs_.resize(m);
  for (const Edge& e : deduped) ++graph.out_offsets_[e.source + 1];
  for (NodeId u = 0; u < num_nodes_; ++u) {
    graph.out_offsets_[u + 1] += graph.out_offsets_[u];
  }
  // deduped is sorted by source, so a single pass fills forward CSR in order.
  for (size_t i = 0; i < m; ++i) {
    graph.out_targets_[i] = deduped[i].target;
    graph.out_probs_[i] = deduped[i].probability;
  }

  graph.in_offsets_.assign(num_nodes_ + 1, 0);
  graph.in_sources_.resize(m);
  graph.in_probs_.resize(m);
  graph.in_edge_ids_.resize(m);
  for (const Edge& e : deduped) ++graph.in_offsets_[e.target + 1];
  for (NodeId v = 0; v < num_nodes_; ++v) {
    graph.in_offsets_[v + 1] += graph.in_offsets_[v];
  }
  std::vector<EdgeId> cursor(graph.in_offsets_.begin(), graph.in_offsets_.end() - 1);
  for (size_t i = 0; i < m; ++i) {
    const Edge& e = deduped[i];
    const EdgeId slot = cursor[e.target]++;
    graph.in_sources_[slot] = e.source;
    graph.in_probs_[slot] = e.probability;
    graph.in_edge_ids_[slot] = static_cast<EdgeId>(i);
  }

  edges_.clear();
  return graph;
}

}  // namespace asti
