#include "graph/graph_builder.h"

#include <algorithm>
#include <string>

namespace asti {

Status GraphBuilder::AddEdge(NodeId source, NodeId target, double probability) {
  if (source >= num_nodes_ || target >= num_nodes_) {
    return Status::InvalidArgument("edge endpoint out of range: " + std::to_string(source) +
                                   " -> " + std::to_string(target));
  }
  if (source == target) {
    return Status::InvalidArgument("self-loop rejected at node " + std::to_string(source));
  }
  if (!(probability > 0.0) || probability > 1.0) {
    return Status::InvalidArgument("edge probability must be in (0, 1], got " +
                                   std::to_string(probability));
  }
  edges_.push_back(Edge{source, target, probability});
  return Status::OK();
}

Status GraphBuilder::AddUndirectedEdge(NodeId u, NodeId v, double probability) {
  ASM_RETURN_NOT_OK(AddEdge(u, v, probability));
  return AddEdge(v, u, probability);
}

StatusOr<DirectedGraph> GraphBuilder::Build(DuplicatePolicy policy) {
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.source != b.source) return a.source < b.source;
    return a.target < b.target;
  });

  // Resolve duplicates.
  std::vector<Edge> deduped;
  deduped.reserve(edges_.size());
  for (const Edge& e : edges_) {
    if (!deduped.empty() && deduped.back().source == e.source &&
        deduped.back().target == e.target) {
      if (policy == DuplicatePolicy::kReject) {
        return Status::InvalidArgument("duplicate edge " + std::to_string(e.source) + " -> " +
                                       std::to_string(e.target));
      }
      deduped.back().probability = std::max(deduped.back().probability, e.probability);
      continue;
    }
    deduped.push_back(e);
  }

  GraphStorage csr;
  const size_t m = deduped.size();

  csr.out_offsets.assign(num_nodes_ + 1, 0);
  csr.out_targets.resize(m);
  csr.out_probs.resize(m);
  for (const Edge& e : deduped) ++csr.out_offsets[e.source + 1];
  for (NodeId u = 0; u < num_nodes_; ++u) {
    csr.out_offsets[u + 1] += csr.out_offsets[u];
  }
  // deduped is sorted by source, so a single pass fills forward CSR in order.
  for (size_t i = 0; i < m; ++i) {
    csr.out_targets[i] = deduped[i].target;
    csr.out_probs[i] = deduped[i].probability;
  }

  BuildReverseCsr(csr);

  edges_.clear();
  return DirectedGraph(num_nodes_, std::make_shared<const GraphStorage>(std::move(csr)));
}

void BuildReverseCsr(GraphStorage& csr) {
  BuildReverseCsr(csr.out_offsets, csr.out_targets, csr.out_probs, csr);
}

void BuildReverseCsr(std::span<const EdgeId> out_offsets, std::span<const NodeId> out_targets,
                     std::span<const double> out_probs, GraphStorage& into) {
  const size_t n = out_offsets.size() - 1;
  const size_t m = out_targets.size();
  into.in_offsets.assign(n + 1, 0);
  into.in_sources.resize(m);
  into.in_probs.resize(m);
  into.in_edge_ids.resize(m);
  for (const NodeId v : out_targets) ++into.in_offsets[v + 1];
  for (size_t v = 0; v < n; ++v) {
    into.in_offsets[v + 1] += into.in_offsets[v];
  }
  std::vector<EdgeId> cursor(into.in_offsets.begin(), into.in_offsets.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    for (EdgeId e = out_offsets[u]; e < out_offsets[u + 1]; ++e) {
      const EdgeId slot = cursor[out_targets[e]]++;
      into.in_sources[slot] = u;
      into.in_probs[slot] = out_probs[e];
      into.in_edge_ids[slot] = e;
    }
  }
}

}  // namespace asti
