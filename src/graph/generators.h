// Synthetic graph generators.
//
// Random families (Erdős–Rényi, Barabási–Albert, Chung–Lu, R-MAT) provide
// the power-law surrogates for the paper's SNAP datasets (see DESIGN.md
// substitutions); deterministic fixtures (path, star, ...) back unit tests,
// including the exact example graphs from Figures 1 and 2 of the paper.
//
// Generators emit an EdgeSkeleton (structure only, probability 1.0); a
// weight model pass then assigns propagation probabilities.

#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/rng.h"
#include "util/status.h"

namespace asti {

/// Graph structure prior to weight assignment.
struct EdgeSkeleton {
  NodeId num_nodes = 0;
  std::vector<Edge> edges;  // probability == 1.0 placeholder
};

// ---------------------------------------------------------------------------
// Deterministic fixtures.
// ---------------------------------------------------------------------------

/// 0 -> 1 -> ... -> n-1.
EdgeSkeleton MakePath(NodeId n);

/// 0 -> 1 -> ... -> n-1 -> 0.
EdgeSkeleton MakeCycle(NodeId n);

/// Center node 0 with edges 0 -> {1..n-1}.
EdgeSkeleton MakeStar(NodeId n);

/// All ordered pairs (u, v), u != v.
EdgeSkeleton MakeComplete(NodeId n);

/// `layers` layers of `width` nodes; every node of layer i points to every
/// node of layer i+1. Node id = layer * width + offset.
EdgeSkeleton MakeLayeredDag(NodeId layers, NodeId width);

/// The 6-node social graph of Figure 1 in the paper, with the printed
/// probabilities: v1->v4 (.9), v1->v6 (.3), v4->v3 (.1), v6->v5 (.5),
/// v3->v5 (.4), v5->v2 (.6), v2->v1 (.7). Nodes are 0-indexed (v1 == 0).
StatusOr<DirectedGraph> MakePaperFigure1Graph();

/// The 4-node graph of Figure 2 / Example 2.3: v1->v2 (.5), v1->v3 (.5),
/// v2->v4 (1), v3->v4 (1). Nodes are 0-indexed (v1 == 0).
StatusOr<DirectedGraph> MakePaperFigure2Graph();

// ---------------------------------------------------------------------------
// Random families.
// ---------------------------------------------------------------------------

/// G(n, m): m distinct directed edges chosen uniformly (no self-loops).
EdgeSkeleton MakeErdosRenyi(NodeId n, size_t num_edges, Rng& rng);

/// Barabási–Albert preferential attachment with `attach` links per new node.
/// Produces an undirected structure expanded into both directions
/// (the paper's treatment of undirected datasets).
EdgeSkeleton MakeBarabasiAlbert(NodeId n, uint32_t attach, Rng& rng);

/// Chung–Lu fixed expected-degree power-law graph: node weights
/// w_i ∝ (i + i0)^(-1/(exponent-1)), ~target_edges directed edges sampled
/// proportional to w_u * w_v, deduplicated.
EdgeSkeleton MakeChungLu(NodeId n, size_t target_edges, double exponent, Rng& rng);

/// Two-sided Chung–Lu: sources follow a power law with `out_exponent` and
/// targets one with `in_exponent`; an exponent <= 0 selects that side
/// uniformly. A power-law in / uniform-out graph has heavy-tailed
/// in-degrees without explosive out-hubs — the cascade-tempered regime of
/// dense assortative social networks (DESIGN.md §2, LiveJournal surrogate).
EdgeSkeleton MakeTwoSidedChungLu(NodeId n, size_t target_edges, double out_exponent,
                                 double in_exponent, Rng& rng);

/// Watts–Strogatz small world: ring lattice of even degree `k_neighbors`
/// with each edge rewired to a uniform target with probability `beta`.
/// Undirected structure expanded into both directions.
EdgeSkeleton MakeWattsStrogatz(NodeId n, uint32_t k_neighbors, double beta, Rng& rng);

/// Forest-fire model (Leskovec et al.): each new node links to a uniformly
/// chosen ambassador and recursively "burns" through its out-neighborhood
/// with the given forward-burning probability. Produces a densifying
/// power-law digraph with strong community structure.
EdgeSkeleton MakeForestFire(NodeId n, double forward_probability, Rng& rng);

/// R-MAT with 2^scale nodes and the given quadrant probabilities
/// (a + b + c + d must be ~1). Duplicates and self-loops are discarded and
/// re-drawn, so exactly `num_edges` distinct edges are emitted.
EdgeSkeleton MakeRMat(uint32_t scale, size_t num_edges, double a, double b, double c,
                      double d, Rng& rng);

// ---------------------------------------------------------------------------
// Weight-model application.
// ---------------------------------------------------------------------------

/// Probability assignment schemes for BuildWeightedGraph.
enum class WeightScheme { kWeightedCascade, kUniform, kTrivalency };

/// Applies a weight scheme to the skeleton and finalizes the CSR graph.
/// `uniform_p` is consulted only for kUniform; `rng` only for kTrivalency.
StatusOr<DirectedGraph> BuildWeightedGraph(EdgeSkeleton skeleton, WeightScheme scheme,
                                           double uniform_p = 0.1, Rng* rng = nullptr);

}  // namespace asti
