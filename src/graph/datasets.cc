#include "graph/datasets.h"

#include <algorithm>
#include <cctype>

#include "util/rng.h"

namespace asti {

const std::vector<DatasetInfo>& AllDatasets() {
  static const std::vector<DatasetInfo> kDatasets = {
      // id, name, paper n, paper m, undirected, avg deg, surrogate n, surrogate m
      {DatasetId::kNetHept, "NetHEPT", 15.2e3, 31.4e3, true, 4.18, 15200, 60000},
      {DatasetId::kEpinions, "Epinions", 132e3, 841e3, false, 13.4, 33000, 220000},
      {DatasetId::kYoutube, "Youtube", 1.13e6, 2.99e6, true, 5.29, 56000, 300000},
      {DatasetId::kLiveJournal, "LiveJournal", 4.85e6, 69.0e6, false, 28.5, 70000, 490000},
  };
  return kDatasets;
}

const DatasetInfo& GetDatasetInfo(DatasetId id) {
  for (const DatasetInfo& info : AllDatasets()) {
    if (info.id == id) return info;
  }
  ASM_CHECK(false) << "unknown dataset id";
  __builtin_unreachable();
}

StatusOr<DatasetId> DatasetIdFromName(const std::string& name) {
  std::string lowered = name;
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (const DatasetInfo& info : AllDatasets()) {
    std::string candidate = info.name;
    std::transform(candidate.begin(), candidate.end(), candidate.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (candidate == lowered) return info.id;
  }
  return Status::NotFound("no dataset named '" + name + "'");
}

std::string CanonicalDatasetName(DatasetId id) {
  std::string name = GetDatasetInfo(id).name;
  std::transform(name.begin(), name.end(), name.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return name;
}

namespace {

// Mirrors every edge, producing an undirected structure (paper transforms
// undirected datasets into two directed edges).
EdgeSkeleton Mirror(EdgeSkeleton skeleton) {
  const size_t original = skeleton.edges.size();
  skeleton.edges.reserve(2 * original);
  for (size_t i = 0; i < original; ++i) {
    const Edge& e = skeleton.edges[i];
    skeleton.edges.push_back(Edge{e.target, e.source, 1.0});
  }
  return skeleton;
}

}  // namespace

StatusOr<DirectedGraph> MakeSurrogateDataset(DatasetId id, double scale, uint64_t seed,
                                             WeightScheme scheme) {
  if (!(scale > 0.0)) return Status::InvalidArgument("scale must be positive");
  const DatasetInfo& info = GetDatasetInfo(id);
  const NodeId n = std::max<NodeId>(64, static_cast<NodeId>(info.surrogate_nodes * scale));
  const size_t m = std::max<size_t>(
      128, static_cast<size_t>(static_cast<double>(info.surrogate_edges) * scale));
  Rng rng(seed ^ (static_cast<uint64_t>(id) << 32));

  EdgeSkeleton skeleton;
  switch (id) {
    case DatasetId::kNetHept:
      // Collaboration network: steep mirrored power law (exponent 2.5).
      // Flatter tails (e.g. Barabási–Albert hubs) proved far too explosive
      // under weighted-cascade weights — a single seed cascade would dwarf
      // the η/n = 0.01 threshold — while real NetHEPT's best node
      // influences ≈1% of the graph (paper Fig. 10a). The steeper tail
      // restores that calibration.
      skeleton = Mirror(MakeChungLu(n, m / 2, 2.5, rng));
      break;
    case DatasetId::kEpinions:
      // Directed trust network. Exponent calibrated (like NetHEPT's) so
      // the top node influences ~1% of the graph under weighted cascade;
      // flatter tails made single hubs swallow entire η/n thresholds.
      skeleton = MakeChungLu(n, m, 2.4, rng);
      break;
    case DatasetId::kYoutube:
      // Undirected friendship network: mirrored Chung-Lu halves.
      skeleton = Mirror(MakeChungLu(n, m / 2, 2.2, rng));
      break;
    case DatasetId::kLiveJournal:
      // Largest surrogate. The real graph's weighted-cascade per-seed
      // cascade (~120 nodes, inferable from the paper's seed counts) is a
      // vanishing fraction of its 4.85M nodes; symmetric Chung-Lu hubs at
      // laptop scale instead swallow every fractional threshold. A
      // power-law-in / uniform-out structure keeps heavy-tailed in-degrees
      // without explosive out-hubs, restoring the many-seeds regime all
      // LiveJournal experiments of the paper operate in (DESIGN.md §2).
      skeleton = MakeTwoSidedChungLu(n, m, /*out_exponent=*/0.0,
                                     /*in_exponent=*/2.3, rng);
      break;
  }
  Rng weight_rng = rng.Split();
  return BuildWeightedGraph(std::move(skeleton), scheme, 0.1, &weight_rng);
}

}  // namespace asti
