// Immutable directed probabilistic graph in CSR form.
//
// Both adjacency directions are materialized: forward (out-edges) drives
// influence simulation, reverse (in-edges) drives RR / mRR sampling. The
// reverse CSR keeps, for every in-edge, the EdgeId of the corresponding
// forward edge so realizations indexed by forward EdgeId can be consulted
// from either direction.
//
// Storage is span-backed: the graph itself holds only read-only views over
// the seven CSR arrays plus one type-erased keepalive owning the bytes.
// Heap-resident graphs (GraphBuilder, ASMG load) span a GraphStorage of
// vectors; snapshot-mapped graphs (src/store/) span an mmap'd file
// directly. Every traversal goes through the same spans, so the two paths
// are bit-identical by construction.

#pragma once

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "util/check.h"

namespace asti {

/// Owned backing arrays for a heap-resident graph. GraphBuilder and the
/// ASMG conversion path fill one of these and hand it to DirectedGraph;
/// mmap-backed graphs never materialize it.
struct GraphStorage {
  std::vector<EdgeId> out_offsets;   // size n+1
  std::vector<NodeId> out_targets;   // size m
  std::vector<double> out_probs;     // size m
  std::vector<EdgeId> in_offsets;    // size n+1
  std::vector<NodeId> in_sources;    // size m
  std::vector<double> in_probs;      // size m
  std::vector<EdgeId> in_edge_ids;   // size m; forward EdgeId per in-edge
};

/// CSR graph; construct through GraphBuilder, LoadGraphBinary, or the
/// snapshot store. Copying is cheap (spans + a shared keepalive) and the
/// copy shares immutable storage with the original.
class DirectedGraph {
 public:
  DirectedGraph() = default;

  /// Heap-backed graph: adopts `storage` (which must hold a consistent CSR
  /// pair for `num_nodes` nodes) and spans it.
  DirectedGraph(NodeId num_nodes, std::shared_ptr<const GraphStorage> storage)
      : num_nodes_(num_nodes),
        out_offsets_(storage->out_offsets),
        out_targets_(storage->out_targets),
        out_probs_(storage->out_probs),
        in_offsets_(storage->in_offsets),
        in_sources_(storage->in_sources),
        in_probs_(storage->in_probs),
        in_edge_ids_(storage->in_edge_ids),
        storage_(std::move(storage)) {
    ASM_CHECK(out_offsets_.size() == size_t{num_nodes_} + 1);
    ASM_CHECK(in_offsets_.size() == size_t{num_nodes_} + 1);
  }

  /// View-backed graph: spans caller-described memory. `keepalive` must own
  /// every byte the spans reference (e.g. an mmap'd snapshot file) and
  /// keeps it resident for the graph's — and every copy's — lifetime.
  DirectedGraph(NodeId num_nodes, std::span<const EdgeId> out_offsets,
                std::span<const NodeId> out_targets, std::span<const double> out_probs,
                std::span<const EdgeId> in_offsets, std::span<const NodeId> in_sources,
                std::span<const double> in_probs, std::span<const EdgeId> in_edge_ids,
                std::shared_ptr<const void> keepalive)
      : num_nodes_(num_nodes),
        out_offsets_(out_offsets),
        out_targets_(out_targets),
        out_probs_(out_probs),
        in_offsets_(in_offsets),
        in_sources_(in_sources),
        in_probs_(in_probs),
        in_edge_ids_(in_edge_ids),
        storage_(std::move(keepalive)) {
    ASM_CHECK(out_offsets_.size() == size_t{num_nodes_} + 1);
    ASM_CHECK(in_offsets_.size() == size_t{num_nodes_} + 1);
  }

  /// Number of nodes.
  NodeId NumNodes() const { return num_nodes_; }
  /// Number of directed edges.
  EdgeId NumEdges() const { return static_cast<EdgeId>(out_targets_.size()); }

  uint32_t OutDegree(NodeId u) const {
    ASM_DCHECK(u < num_nodes_);
    return out_offsets_[u + 1] - out_offsets_[u];
  }
  uint32_t InDegree(NodeId v) const {
    ASM_DCHECK(v < num_nodes_);
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Out-neighbors of u.
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    ASM_DCHECK(u < num_nodes_);
    return out_targets_.subspan(out_offsets_[u], out_offsets_[u + 1] - out_offsets_[u]);
  }
  /// Propagation probabilities of u's out-edges (parallel to OutNeighbors).
  std::span<const double> OutProbabilities(NodeId u) const {
    ASM_DCHECK(u < num_nodes_);
    return out_probs_.subspan(out_offsets_[u], out_offsets_[u + 1] - out_offsets_[u]);
  }
  /// EdgeId of u's first out-edge; out-edges of u are contiguous from here.
  EdgeId FirstOutEdge(NodeId u) const {
    ASM_DCHECK(u < num_nodes_);
    return out_offsets_[u];
  }

  /// In-neighbors (sources) of v.
  std::span<const NodeId> InNeighbors(NodeId v) const {
    ASM_DCHECK(v < num_nodes_);
    return in_sources_.subspan(in_offsets_[v], in_offsets_[v + 1] - in_offsets_[v]);
  }
  /// Propagation probabilities of v's in-edges (parallel to InNeighbors).
  std::span<const double> InProbabilities(NodeId v) const {
    ASM_DCHECK(v < num_nodes_);
    return in_probs_.subspan(in_offsets_[v], in_offsets_[v + 1] - in_offsets_[v]);
  }
  /// Forward EdgeIds of v's in-edges (parallel to InNeighbors).
  std::span<const EdgeId> InEdgeIds(NodeId v) const {
    ASM_DCHECK(v < num_nodes_);
    return in_edge_ids_.subspan(in_offsets_[v], in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// Target node of a forward edge.
  NodeId EdgeTarget(EdgeId e) const {
    ASM_DCHECK(e < NumEdges());
    return out_targets_[e];
  }
  /// Probability of a forward edge.
  double EdgeProbability(EdgeId e) const {
    ASM_DCHECK(e < NumEdges());
    return out_probs_[e];
  }

  // Whole-array views, for persistence (the snapshot writer serializes the
  // CSR arrays verbatim).
  std::span<const EdgeId> OutOffsets() const { return out_offsets_; }
  std::span<const NodeId> OutTargets() const { return out_targets_; }
  std::span<const double> OutProbs() const { return out_probs_; }
  std::span<const EdgeId> InOffsets() const { return in_offsets_; }
  std::span<const NodeId> InSources() const { return in_sources_; }
  std::span<const double> InProbs() const { return in_probs_; }
  std::span<const EdgeId> InEdgeIdsFlat() const { return in_edge_ids_; }

  /// Sum of in-edge probabilities of v (LT models require this <= 1).
  double InProbabilitySum(NodeId v) const;

  /// All edges as a flat list (source recovered from CSR); O(m).
  std::vector<Edge> ToEdgeList() const;

 private:
  NodeId num_nodes_ = 0;
  // Forward CSR.
  std::span<const EdgeId> out_offsets_;
  std::span<const NodeId> out_targets_;
  std::span<const double> out_probs_;
  // Reverse CSR.
  std::span<const EdgeId> in_offsets_;
  std::span<const NodeId> in_sources_;
  std::span<const double> in_probs_;
  std::span<const EdgeId> in_edge_ids_;
  /// Owns the spanned bytes: a GraphStorage for heap graphs, a mapped
  /// snapshot payload for mmap graphs.
  std::shared_ptr<const void> storage_;
};

}  // namespace asti
