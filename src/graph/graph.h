// Immutable directed probabilistic graph in CSR form.
//
// Both adjacency directions are materialized: forward (out-edges) drives
// influence simulation, reverse (in-edges) drives RR / mRR sampling. The
// reverse CSR keeps, for every in-edge, the EdgeId of the corresponding
// forward edge so realizations indexed by forward EdgeId can be consulted
// from either direction.

#pragma once

#include <span>
#include <vector>

#include "graph/types.h"
#include "util/check.h"

namespace asti {

class GraphBuilder;

/// CSR graph; construct through GraphBuilder.
class DirectedGraph {
 public:
  DirectedGraph() = default;

  /// Number of nodes.
  NodeId NumNodes() const { return num_nodes_; }
  /// Number of directed edges.
  EdgeId NumEdges() const { return static_cast<EdgeId>(out_targets_.size()); }

  uint32_t OutDegree(NodeId u) const {
    ASM_DCHECK(u < num_nodes_);
    return out_offsets_[u + 1] - out_offsets_[u];
  }
  uint32_t InDegree(NodeId v) const {
    ASM_DCHECK(v < num_nodes_);
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Out-neighbors of u.
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    ASM_DCHECK(u < num_nodes_);
    return {out_targets_.data() + out_offsets_[u], out_targets_.data() + out_offsets_[u + 1]};
  }
  /// Propagation probabilities of u's out-edges (parallel to OutNeighbors).
  std::span<const double> OutProbabilities(NodeId u) const {
    ASM_DCHECK(u < num_nodes_);
    return {out_probs_.data() + out_offsets_[u], out_probs_.data() + out_offsets_[u + 1]};
  }
  /// EdgeId of u's first out-edge; out-edges of u are contiguous from here.
  EdgeId FirstOutEdge(NodeId u) const {
    ASM_DCHECK(u < num_nodes_);
    return out_offsets_[u];
  }

  /// In-neighbors (sources) of v.
  std::span<const NodeId> InNeighbors(NodeId v) const {
    ASM_DCHECK(v < num_nodes_);
    return {in_sources_.data() + in_offsets_[v], in_sources_.data() + in_offsets_[v + 1]};
  }
  /// Propagation probabilities of v's in-edges (parallel to InNeighbors).
  std::span<const double> InProbabilities(NodeId v) const {
    ASM_DCHECK(v < num_nodes_);
    return {in_probs_.data() + in_offsets_[v], in_probs_.data() + in_offsets_[v + 1]};
  }
  /// Forward EdgeIds of v's in-edges (parallel to InNeighbors).
  std::span<const EdgeId> InEdgeIds(NodeId v) const {
    ASM_DCHECK(v < num_nodes_);
    return {in_edge_ids_.data() + in_offsets_[v], in_edge_ids_.data() + in_offsets_[v + 1]};
  }

  /// Target node of a forward edge.
  NodeId EdgeTarget(EdgeId e) const {
    ASM_DCHECK(e < NumEdges());
    return out_targets_[e];
  }
  /// Probability of a forward edge.
  double EdgeProbability(EdgeId e) const {
    ASM_DCHECK(e < NumEdges());
    return out_probs_[e];
  }

  /// Sum of in-edge probabilities of v (LT models require this <= 1).
  double InProbabilitySum(NodeId v) const;

  /// All edges as a flat list (source recovered from CSR); O(m).
  std::vector<Edge> ToEdgeList() const;

 private:
  friend class GraphBuilder;

  NodeId num_nodes_ = 0;
  // Forward CSR.
  std::vector<EdgeId> out_offsets_;  // size n+1
  std::vector<NodeId> out_targets_;  // size m
  std::vector<double> out_probs_;    // size m
  // Reverse CSR.
  std::vector<EdgeId> in_offsets_;   // size n+1
  std::vector<NodeId> in_sources_;   // size m
  std::vector<double> in_probs_;     // size m
  std::vector<EdgeId> in_edge_ids_;  // size m; forward EdgeId per in-edge
};

}  // namespace asti
