// Weakly connected components via union-find (Table 2's LWCC column).

#pragma once

#include <vector>

#include "graph/graph.h"

namespace asti {

/// Component labeling of a directed graph ignoring edge direction.
struct WccResult {
  std::vector<NodeId> component;  // size n: component id per node
  std::vector<NodeId> sizes;      // size per component id
  NodeId num_components = 0;
  NodeId largest_size = 0;
};

/// Computes weakly connected components.
WccResult ComputeWcc(const DirectedGraph& graph);

}  // namespace asti
