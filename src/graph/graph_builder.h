// Mutable accumulator that produces an immutable DirectedGraph.

#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace asti {

/// Collects edges and finalizes them into CSR form.
///
/// Self-loops are rejected; duplicate (u, v) pairs are either rejected or
/// merged (keeping the maximum probability) depending on the policy given
/// to Build().
class GraphBuilder {
 public:
  enum class DuplicatePolicy { kReject, kKeepMaxProbability };

  /// Creates a builder for a graph with a fixed node count.
  explicit GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

  NodeId num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return edges_.size(); }

  /// Queues a directed edge. Returns InvalidArgument on out-of-range
  /// endpoints, self-loops, or probability outside (0, 1].
  Status AddEdge(NodeId source, NodeId target, double probability);

  /// Queues both (u, v, p) and (v, u, p); used when ingesting undirected
  /// datasets, matching the paper's transformation.
  Status AddUndirectedEdge(NodeId u, NodeId v, double probability);

  /// Finalizes into CSR. The builder is left empty afterwards.
  StatusOr<DirectedGraph> Build(DuplicatePolicy policy = DuplicatePolicy::kReject);

 private:
  NodeId num_nodes_;
  std::vector<Edge> edges_;
};

}  // namespace asti
