// Mutable accumulator that produces an immutable DirectedGraph.

#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace asti {

/// Collects edges and finalizes them into CSR form.
///
/// Self-loops are rejected; duplicate (u, v) pairs are either rejected or
/// merged (keeping the maximum probability) depending on the policy given
/// to Build().
class GraphBuilder {
 public:
  enum class DuplicatePolicy { kReject, kKeepMaxProbability };

  /// Creates a builder for a graph with a fixed node count.
  explicit GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

  NodeId num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return edges_.size(); }

  /// Queues a directed edge. Returns InvalidArgument on out-of-range
  /// endpoints, self-loops, or probability outside (0, 1].
  Status AddEdge(NodeId source, NodeId target, double probability);

  /// Queues both (u, v, p) and (v, u, p); used when ingesting undirected
  /// datasets, matching the paper's transformation.
  Status AddUndirectedEdge(NodeId u, NodeId v, double probability);

  /// Finalizes into CSR. The builder is left empty afterwards.
  StatusOr<DirectedGraph> Build(DuplicatePolicy policy = DuplicatePolicy::kReject);

 private:
  NodeId num_nodes_;
  std::vector<Edge> edges_;
};

/// Fills `csr`'s reverse arrays (in_offsets / in_sources / in_probs /
/// in_edge_ids) from its forward arrays by counting sort — O(n + m), no
/// comparison sort. Shared by GraphBuilder, the ASMG loader, and the
/// snapshot store's omit-reverse rebuild path, so every rebuild produces
/// the identical reverse CSR a persisted one would contain.
void BuildReverseCsr(GraphStorage& csr);

/// Same counting sort, reading the forward CSR from caller-owned spans and
/// filling only `into`'s reverse arrays. The snapshot store uses this when
/// a compact file omits the reverse sections: the forward arrays stay on
/// the mapping (zero-copy) and only the reverse CSR is materialized.
void BuildReverseCsr(std::span<const EdgeId> out_offsets, std::span<const NodeId> out_targets,
                     std::span<const double> out_probs, GraphStorage& into);

}  // namespace asti
