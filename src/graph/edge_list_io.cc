#include "graph/edge_list_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/graph_builder.h"

namespace asti {

namespace {

StatusOr<EdgeListFile> ParseFromStream(std::istream& in) {
  EdgeListFile file;
  std::string line;
  size_t line_number = 0;
  bool saw_probability = false;
  bool saw_bare_edge = false;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line[0] == '#' || line[0] == '%') {
      if (line.find("undirected") != std::string::npos) file.undirected = true;
      continue;
    }
    std::istringstream tokens(line);
    long long u = -1;
    long long v = -1;
    double p = 1.0;
    if (!(tokens >> u >> v)) {
      return Status::InvalidArgument("malformed edge at line " + std::to_string(line_number) +
                                     ": '" + line + "'");
    }
    if (u < 0 || v < 0 || u >= static_cast<long long>(kInvalidNode) ||
        v >= static_cast<long long>(kInvalidNode)) {
      return Status::InvalidArgument("node id out of range at line " +
                                     std::to_string(line_number));
    }
    if (tokens >> p) {
      saw_probability = true;
      if (!(p > 0.0) || p > 1.0) {
        return Status::InvalidArgument("probability out of (0,1] at line " +
                                       std::to_string(line_number));
      }
    } else {
      saw_bare_edge = true;
    }
    file.edges.push_back(
        Edge{static_cast<NodeId>(u), static_cast<NodeId>(v), p});
    file.num_nodes = std::max(file.num_nodes, static_cast<NodeId>(std::max(u, v) + 1));
  }
  if (saw_probability && saw_bare_edge) {
    return Status::InvalidArgument("mixed weighted and unweighted edge lines");
  }
  file.has_probabilities = saw_probability;
  return file;
}

}  // namespace

StatusOr<EdgeListFile> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return ParseFromStream(in);
}

StatusOr<EdgeListFile> ParseEdgeList(const std::string& text) {
  std::istringstream in(text);
  return ParseFromStream(in);
}

StatusOr<DirectedGraph> BuildGraphFromEdgeList(const EdgeListFile& file) {
  GraphBuilder builder(file.num_nodes);
  for (const Edge& e : file.edges) {
    if (file.undirected) {
      ASM_RETURN_NOT_OK(builder.AddUndirectedEdge(e.source, e.target, e.probability));
    } else {
      ASM_RETURN_NOT_OK(builder.AddEdge(e.source, e.target, e.probability));
    }
  }
  return builder.Build(GraphBuilder::DuplicatePolicy::kKeepMaxProbability);
}

Status SaveEdgeList(const DirectedGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << "# directed edge list: source target probability\n";
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    auto neighbors = graph.OutNeighbors(u);
    auto probs = graph.OutProbabilities(u);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      out << u << ' ' << neighbors[i] << ' ' << probs[i] << '\n';
    }
  }
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

}  // namespace asti
