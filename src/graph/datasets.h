// Synthetic surrogates for the paper's four SNAP datasets (Table 2).
//
// The real SNAP files are not available offline; DESIGN.md documents the
// substitution. Each surrogate matches the original's directedness and
// power-law degree shape and is scaled so the full benchmark sweep runs on
// one laptop core. A `scale` multiplier lets callers grow or shrink any
// surrogate; scale == 1.0 gives the defaults recorded in EXPERIMENTS.md.

#pragma once

#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "util/status.h"

namespace asti {

enum class DatasetId { kNetHept, kEpinions, kYoutube, kLiveJournal };

/// Catalog entry: the paper's reported statistics plus our surrogate
/// default size.
struct DatasetInfo {
  DatasetId id;
  const char* name;
  // Paper's Table 2 numbers.
  double paper_nodes;
  double paper_edges;
  bool undirected;
  double paper_avg_degree;
  // Surrogate defaults at scale == 1.0.
  NodeId surrogate_nodes;
  size_t surrogate_edges;  // directed edge count target
};

/// All four datasets in Table 2 order.
const std::vector<DatasetInfo>& AllDatasets();

/// Info lookup. Aborts on unknown id.
const DatasetInfo& GetDatasetInfo(DatasetId id);

/// Lookup by case-insensitive name ("nethept", "epinions", ...).
StatusOr<DatasetId> DatasetIdFromName(const std::string& name);

/// The lowercase serving name a dataset registers under in a GraphCatalog
/// ("nethept", "epinions", "youtube", "livejournal") — the inverse of
/// DatasetIdFromName for the canonical spelling.
std::string CanonicalDatasetName(DatasetId id);

/// Builds the surrogate graph. Deterministic given (id, scale, seed).
/// The weight scheme defaults to the paper's weighted-cascade setting.
StatusOr<DirectedGraph> MakeSurrogateDataset(
    DatasetId id, double scale = 1.0, uint64_t seed = 7,
    WeightScheme scheme = WeightScheme::kWeightedCascade);

}  // namespace asti
