#include "graph/graph.h"

namespace asti {

double DirectedGraph::InProbabilitySum(NodeId v) const {
  double sum = 0.0;
  for (double p : InProbabilities(v)) sum += p;
  return sum;
}

std::vector<Edge> DirectedGraph::ToEdgeList() const {
  std::vector<Edge> edges;
  edges.reserve(NumEdges());
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (EdgeId e = out_offsets_[u]; e < out_offsets_[u + 1]; ++e) {
      edges.push_back(Edge{u, out_targets_[e], out_probs_[e]});
    }
  }
  return edges;
}

}  // namespace asti
