#include "graph/wcc.h"

#include <algorithm>
#include <numeric>

namespace asti {

namespace {

// Path-halving union-find.
class UnionFind {
 public:
  explicit UnionFind(NodeId n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  NodeId Find(NodeId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(NodeId a, NodeId b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<NodeId> parent_;
};

}  // namespace

WccResult ComputeWcc(const DirectedGraph& graph) {
  const NodeId n = graph.NumNodes();
  UnionFind uf(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : graph.OutNeighbors(u)) uf.Union(u, v);
  }
  WccResult result;
  result.component.assign(n, kInvalidNode);
  std::vector<NodeId> root_to_id(n, kInvalidNode);
  for (NodeId u = 0; u < n; ++u) {
    const NodeId root = uf.Find(u);
    if (root_to_id[root] == kInvalidNode) {
      root_to_id[root] = result.num_components++;
      result.sizes.push_back(0);
    }
    result.component[u] = root_to_id[root];
    ++result.sizes[root_to_id[root]];
  }
  for (NodeId size : result.sizes) result.largest_size = std::max(result.largest_size, size);
  return result;
}

}  // namespace asti
