// Edge-probability assignment schemes used throughout the IM literature.

#pragma once

#include <vector>

#include "graph/types.h"
#include "util/rng.h"

namespace asti {

/// Weighted-cascade model: p(u, v) = 1 / indeg(v). This is the paper's
/// experimental setting (§6.1). Also guarantees the LT constraint
/// sum of in-probabilities == 1 for nodes with indeg > 0.
void AssignWeightedCascade(NodeId num_nodes, std::vector<Edge>& edges);

/// Constant probability on every edge.
void AssignUniform(std::vector<Edge>& edges, double probability);

/// Trivalency model: each edge draws uniformly from {0.1, 0.01, 0.001}.
void AssignTrivalency(std::vector<Edge>& edges, Rng& rng);

}  // namespace asti
