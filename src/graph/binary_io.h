// Legacy binary graph persistence (ASMG v1) — kept readable as the
// conversion input for the snapshot store (src/store/), which is the
// serving path: ASMS snapshots persist both CSR directions, carry
// per-section checksums, and register by mmap instead of parse.
//
// Format (little-endian, version 1):
//   magic "ASMG"  u32 version  u32 n  u64 m
//   u32 out_offsets[n+1]  u32 out_targets[m]  f64 out_probs[m]
// Only the forward CSR is stored; loading adopts it verbatim and derives
// the reverse CSR by counting sort (O(n + m), no comparison sort). Loading
// validates the header, offsets monotonicity, and endpoint ranges, so a
// truncated or corrupted file yields a Status naming the offending section
// instead of UB.

#pragma once

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace asti {

/// Writes the graph in the ASMG v1 binary format.
Status SaveGraphBinary(const DirectedGraph& graph, const std::string& path);

/// Reads an ASMG v1 file back into a DirectedGraph.
StatusOr<DirectedGraph> LoadGraphBinary(const std::string& path);

}  // namespace asti
