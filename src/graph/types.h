// Fundamental identifier types shared across the library.

#pragma once

#include <cstdint>
#include <limits>

namespace asti {

/// Node identifier; nodes are dense integers [0, n).
using NodeId = uint32_t;

/// Edge identifier; position of the edge in the graph's forward CSR.
using EdgeId = uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// A weighted directed edge (u -> v) with propagation probability p.
struct Edge {
  NodeId source = 0;
  NodeId target = 0;
  double probability = 0.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

}  // namespace asti
