// Text edge-list persistence.
//
// Format, one edge per line:
//     <source> <target> [probability]
// Lines starting with '#' or '%' are comments. When the probability column
// is absent the loader leaves it to a WeightModel pass (edges get the
// sentinel 1.0 and LoadEdgeList reports has_probabilities = false).

#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace asti {

/// Result of parsing an edge-list file.
struct EdgeListFile {
  NodeId num_nodes = 0;  // 1 + max endpoint seen
  std::vector<Edge> edges;
  bool has_probabilities = false;
  bool undirected = false;  // set from "# undirected" header line
};

/// Parses an edge list from a file on disk.
StatusOr<EdgeListFile> LoadEdgeList(const std::string& path);

/// Parses an edge list from an in-memory string (testing convenience).
StatusOr<EdgeListFile> ParseEdgeList(const std::string& text);

/// Builds a DirectedGraph from a parsed edge list. Undirected inputs are
/// expanded into both directions. Duplicate edges keep the max probability.
StatusOr<DirectedGraph> BuildGraphFromEdgeList(const EdgeListFile& file);

/// Writes graph edges as "<u> <v> <p>" lines.
Status SaveEdgeList(const DirectedGraph& graph, const std::string& path);

}  // namespace asti
