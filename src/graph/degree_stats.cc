#include "graph/degree_stats.h"

#include <algorithm>
#include <map>

namespace asti {

DegreeStats ComputeDegreeStats(const DirectedGraph& graph) {
  DegreeStats stats;
  const NodeId n = graph.NumNodes();
  if (n == 0) return stats;
  for (NodeId u = 0; u < n; ++u) {
    stats.max_out_degree = std::max(stats.max_out_degree, graph.OutDegree(u));
    stats.max_in_degree = std::max(stats.max_in_degree, graph.InDegree(u));
  }
  stats.average_out_degree = static_cast<double>(graph.NumEdges()) / n;
  return stats;
}

std::vector<DegreeDistributionPoint> ComputeDegreeDistribution(const DirectedGraph& graph) {
  std::map<uint32_t, size_t> counts;
  const NodeId n = graph.NumNodes();
  for (NodeId u = 0; u < n; ++u) ++counts[graph.OutDegree(u)];
  std::vector<DegreeDistributionPoint> points;
  points.reserve(counts.size());
  for (const auto& [degree, count] : counts) {
    points.push_back({degree, static_cast<double>(count) / n});
  }
  return points;
}

std::vector<DegreeDistributionPoint> ComputeLogBinnedDistribution(
    const DirectedGraph& graph) {
  const auto exact = ComputeDegreeDistribution(graph);
  std::vector<DegreeDistributionPoint> binned;
  uint32_t bucket_low = 1;
  while (true) {
    const uint32_t bucket_high = bucket_low * 2;  // [low, high)
    double mass = 0.0;
    bool any_at_or_above = false;
    for (const auto& point : exact) {
      if (point.degree >= bucket_low) any_at_or_above = true;
      if (point.degree >= bucket_low && point.degree < bucket_high) mass += point.fraction;
    }
    if (!any_at_or_above) break;
    binned.push_back({bucket_low, mass / bucket_low});  // per-degree average
    bucket_low = bucket_high;
  }
  return binned;
}

}  // namespace asti
