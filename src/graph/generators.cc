#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "graph/graph_builder.h"
#include "graph/weight_models.h"
#include "util/bit_vector.h"

namespace asti {

namespace {

// Packs a directed edge into one key for dedup sets.
uint64_t EdgeKey(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(u) << 32) | static_cast<uint64_t>(v);
}

}  // namespace

EdgeSkeleton MakePath(NodeId n) {
  EdgeSkeleton skeleton{n, {}};
  skeleton.edges.reserve(n > 0 ? n - 1 : 0);
  for (NodeId u = 0; u + 1 < n; ++u) skeleton.edges.push_back(Edge{u, u + 1, 1.0});
  return skeleton;
}

EdgeSkeleton MakeCycle(NodeId n) {
  EdgeSkeleton skeleton = MakePath(n);
  if (n >= 2) skeleton.edges.push_back(Edge{n - 1, 0, 1.0});
  return skeleton;
}

EdgeSkeleton MakeStar(NodeId n) {
  EdgeSkeleton skeleton{n, {}};
  for (NodeId v = 1; v < n; ++v) skeleton.edges.push_back(Edge{0, v, 1.0});
  return skeleton;
}

EdgeSkeleton MakeComplete(NodeId n) {
  EdgeSkeleton skeleton{n, {}};
  skeleton.edges.reserve(static_cast<size_t>(n) * (n - 1));
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v) skeleton.edges.push_back(Edge{u, v, 1.0});
    }
  }
  return skeleton;
}

EdgeSkeleton MakeLayeredDag(NodeId layers, NodeId width) {
  EdgeSkeleton skeleton{layers * width, {}};
  for (NodeId layer = 0; layer + 1 < layers; ++layer) {
    for (NodeId i = 0; i < width; ++i) {
      for (NodeId j = 0; j < width; ++j) {
        skeleton.edges.push_back(Edge{layer * width + i, (layer + 1) * width + j, 1.0});
      }
    }
  }
  return skeleton;
}

StatusOr<DirectedGraph> MakePaperFigure1Graph() {
  GraphBuilder builder(6);
  // v1..v6 are 0..5.
  ASM_RETURN_NOT_OK(builder.AddEdge(0, 3, 0.9));  // v1 -> v4
  ASM_RETURN_NOT_OK(builder.AddEdge(0, 5, 0.3));  // v1 -> v6
  ASM_RETURN_NOT_OK(builder.AddEdge(3, 2, 0.1));  // v4 -> v3
  ASM_RETURN_NOT_OK(builder.AddEdge(5, 4, 0.5));  // v6 -> v5
  ASM_RETURN_NOT_OK(builder.AddEdge(2, 4, 0.4));  // v3 -> v5
  ASM_RETURN_NOT_OK(builder.AddEdge(4, 1, 0.6));  // v5 -> v2
  ASM_RETURN_NOT_OK(builder.AddEdge(1, 0, 0.7));  // v2 -> v1
  return builder.Build();
}

StatusOr<DirectedGraph> MakePaperFigure2Graph() {
  GraphBuilder builder(4);
  ASM_RETURN_NOT_OK(builder.AddEdge(0, 1, 0.5));  // v1 -> v2
  ASM_RETURN_NOT_OK(builder.AddEdge(0, 2, 0.5));  // v1 -> v3
  ASM_RETURN_NOT_OK(builder.AddEdge(1, 3, 1.0));  // v2 -> v4
  ASM_RETURN_NOT_OK(builder.AddEdge(2, 3, 1.0));  // v3 -> v4
  return builder.Build();
}

EdgeSkeleton MakeErdosRenyi(NodeId n, size_t num_edges, Rng& rng) {
  ASM_CHECK(n >= 2);
  const size_t max_edges = static_cast<size_t>(n) * (n - 1);
  ASM_CHECK(num_edges <= max_edges) << "requested more edges than ordered pairs";
  EdgeSkeleton skeleton{n, {}};
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  while (skeleton.edges.size() < num_edges) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u == v) continue;
    if (!seen.insert(EdgeKey(u, v)).second) continue;
    skeleton.edges.push_back(Edge{u, v, 1.0});
  }
  return skeleton;
}

EdgeSkeleton MakeBarabasiAlbert(NodeId n, uint32_t attach, Rng& rng) {
  ASM_CHECK(attach >= 1);
  ASM_CHECK(n > attach);
  EdgeSkeleton skeleton{n, {}};
  // repeated_nodes holds one entry per half-edge; sampling from it is
  // preferential attachment.
  std::vector<NodeId> repeated_nodes;
  repeated_nodes.reserve(2 * static_cast<size_t>(n) * attach);
  // Seed clique over the first attach+1 nodes keeps early sampling nontrivial.
  for (NodeId u = 0; u <= attach; ++u) {
    for (NodeId v = u + 1; v <= attach; ++v) {
      skeleton.edges.push_back(Edge{u, v, 1.0});
      skeleton.edges.push_back(Edge{v, u, 1.0});
      repeated_nodes.push_back(u);
      repeated_nodes.push_back(v);
    }
  }
  std::unordered_set<uint64_t> seen;
  for (const Edge& e : skeleton.edges) seen.insert(EdgeKey(e.source, e.target));
  for (NodeId u = attach + 1; u < n; ++u) {
    std::unordered_set<NodeId> targets;
    while (targets.size() < attach) {
      const NodeId v = repeated_nodes[rng.NextBounded(repeated_nodes.size())];
      if (v != u) targets.insert(v);
    }
    for (NodeId v : targets) {
      if (seen.insert(EdgeKey(u, v)).second) skeleton.edges.push_back(Edge{u, v, 1.0});
      if (seen.insert(EdgeKey(v, u)).second) skeleton.edges.push_back(Edge{v, u, 1.0});
      repeated_nodes.push_back(u);
      repeated_nodes.push_back(v);
    }
  }
  return skeleton;
}

namespace {

// Cumulative power-law sampling weights; exponent <= 0 yields uniform.
// Weight w_i = (i + i0)^(-1/(exponent-1)); i0 offsets away from the
// singularity so the maximum expected degree stays sub-linear.
std::vector<double> CumulativeWeights(NodeId n, double exponent) {
  std::vector<double> cumulative(n);
  double total = 0.0;
  if (exponent <= 0.0) {
    for (NodeId i = 0; i < n; ++i) cumulative[i] = total += 1.0;
    return cumulative;
  }
  ASM_CHECK(exponent > 2.0) << "power-law exponent must exceed 2 for finite mean";
  const double alpha = 1.0 / (exponent - 1.0);
  const double i0 = std::pow(static_cast<double>(n), 0.25);
  for (NodeId i = 0; i < n; ++i) {
    cumulative[i] = total += std::pow(static_cast<double>(i) + i0, -alpha);
  }
  return cumulative;
}

NodeId SampleFromCumulative(const std::vector<double>& cumulative, Rng& rng) {
  const double x = rng.NextDouble() * cumulative.back();
  const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), x);
  return static_cast<NodeId>(it - cumulative.begin());
}

}  // namespace

EdgeSkeleton MakeChungLu(NodeId n, size_t target_edges, double exponent, Rng& rng) {
  return MakeTwoSidedChungLu(n, target_edges, exponent, exponent, rng);
}

EdgeSkeleton MakeTwoSidedChungLu(NodeId n, size_t target_edges, double out_exponent,
                                 double in_exponent, Rng& rng) {
  ASM_CHECK(n >= 2);
  const std::vector<double> out_cumulative = CumulativeWeights(n, out_exponent);
  const std::vector<double> in_cumulative = CumulativeWeights(n, in_exponent);
  EdgeSkeleton skeleton{n, {}};
  std::unordered_set<uint64_t> seen;
  seen.reserve(target_edges * 2);
  size_t attempts = 0;
  const size_t max_attempts = target_edges * 20 + 1000;
  while (skeleton.edges.size() < target_edges && attempts < max_attempts) {
    ++attempts;
    const NodeId u = SampleFromCumulative(out_cumulative, rng);
    const NodeId v = SampleFromCumulative(in_cumulative, rng);
    if (u == v) continue;
    if (!seen.insert(EdgeKey(u, v)).second) continue;
    skeleton.edges.push_back(Edge{u, v, 1.0});
  }
  return skeleton;
}

EdgeSkeleton MakeWattsStrogatz(NodeId n, uint32_t k_neighbors, double beta, Rng& rng) {
  ASM_CHECK(n >= 4);
  ASM_CHECK(k_neighbors >= 2 && k_neighbors % 2 == 0) << "ring degree must be even";
  ASM_CHECK(k_neighbors < n);
  ASM_CHECK(beta >= 0.0 && beta <= 1.0);
  // Undirected edge set, built as (u, ring successor) pairs then rewired.
  std::unordered_set<uint64_t> seen;
  std::vector<std::pair<NodeId, NodeId>> undirected;
  for (NodeId u = 0; u < n; ++u) {
    for (uint32_t hop = 1; hop <= k_neighbors / 2; ++hop) {
      NodeId v = static_cast<NodeId>((u + hop) % n);
      if (rng.NextBernoulli(beta)) {
        // Rewire the far endpoint; retry on self-loops and duplicates.
        for (int attempt = 0; attempt < 32; ++attempt) {
          const NodeId candidate = static_cast<NodeId>(rng.NextBounded(n));
          if (candidate == u) continue;
          const uint64_t key = EdgeKey(std::min(u, candidate), std::max(u, candidate));
          if (seen.count(key)) continue;
          v = candidate;
          break;
        }
      }
      const uint64_t key = EdgeKey(std::min(u, v), std::max(u, v));
      if (u == v || !seen.insert(key).second) continue;
      undirected.emplace_back(u, v);
    }
  }
  EdgeSkeleton skeleton{n, {}};
  skeleton.edges.reserve(2 * undirected.size());
  for (const auto& [u, v] : undirected) {
    skeleton.edges.push_back(Edge{u, v, 1.0});
    skeleton.edges.push_back(Edge{v, u, 1.0});
  }
  return skeleton;
}

EdgeSkeleton MakeForestFire(NodeId n, double forward_probability, Rng& rng) {
  ASM_CHECK(n >= 2);
  ASM_CHECK(forward_probability >= 0.0 && forward_probability < 1.0);
  EdgeSkeleton skeleton{n, {}};
  // Forward adjacency of the growing graph, needed for burning.
  std::vector<std::vector<NodeId>> out_adjacency(n);
  std::unordered_set<uint64_t> seen;
  EpochVisitedSet burned(n);
  auto add_edge = [&](NodeId u, NodeId v) {
    if (u == v) return;
    if (!seen.insert(EdgeKey(u, v)).second) return;
    skeleton.edges.push_back(Edge{u, v, 1.0});
    out_adjacency[u].push_back(v);
  };
  for (NodeId newcomer = 1; newcomer < n; ++newcomer) {
    const NodeId ambassador = static_cast<NodeId>(rng.NextBounded(newcomer));
    burned.Reset();
    burned.MarkVisited(newcomer);
    std::vector<NodeId> frontier = {ambassador};
    burned.MarkVisited(ambassador);
    add_edge(newcomer, ambassador);
    // Geometric burning: from each burned node, keep following out-links
    // while coins succeed (cap the fire to keep generation near-linear).
    size_t burn_budget = 64;
    for (size_t head = 0; head < frontier.size() && burn_budget > 0; ++head) {
      for (NodeId next : out_adjacency[frontier[head]]) {
        if (burn_budget == 0) break;
        if (!rng.NextBernoulli(forward_probability)) continue;
        if (!burned.MarkVisited(next)) continue;
        add_edge(newcomer, next);
        frontier.push_back(next);
        --burn_budget;
      }
    }
  }
  return skeleton;
}

EdgeSkeleton MakeRMat(uint32_t scale, size_t num_edges, double a, double b, double c,
                      double d, Rng& rng) {
  ASM_CHECK(scale >= 1 && scale < 31);
  const double sum = a + b + c + d;
  ASM_CHECK(std::abs(sum - 1.0) < 1e-6) << "quadrant probabilities must sum to 1";
  const NodeId n = static_cast<NodeId>(1u << scale);
  EdgeSkeleton skeleton{n, {}};
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  const size_t max_attempts = num_edges * 50 + 1000;
  size_t attempts = 0;
  while (skeleton.edges.size() < num_edges && attempts < max_attempts) {
    ++attempts;
    NodeId u = 0;
    NodeId v = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      const double x = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (x < a) {
        // top-left: no bits set
      } else if (x < a + b) {
        v |= 1;
      } else if (x < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    if (!seen.insert(EdgeKey(u, v)).second) continue;
    skeleton.edges.push_back(Edge{u, v, 1.0});
  }
  return skeleton;
}

StatusOr<DirectedGraph> BuildWeightedGraph(EdgeSkeleton skeleton, WeightScheme scheme,
                                           double uniform_p, Rng* rng) {
  // Deduplicate *before* weight assignment: weighted-cascade in-degrees
  // must be computed on the final edge set or in-probabilities no longer
  // sum to 1 (e.g. mirrored skeletons that already contained both
  // directions of an edge).
  std::sort(skeleton.edges.begin(), skeleton.edges.end(),
            [](const Edge& a, const Edge& b) {
              if (a.source != b.source) return a.source < b.source;
              return a.target < b.target;
            });
  skeleton.edges.erase(
      std::unique(skeleton.edges.begin(), skeleton.edges.end(),
                  [](const Edge& a, const Edge& b) {
                    return a.source == b.source && a.target == b.target;
                  }),
      skeleton.edges.end());
  switch (scheme) {
    case WeightScheme::kWeightedCascade:
      AssignWeightedCascade(skeleton.num_nodes, skeleton.edges);
      break;
    case WeightScheme::kUniform:
      AssignUniform(skeleton.edges, uniform_p);
      break;
    case WeightScheme::kTrivalency: {
      if (rng == nullptr) {
        return Status::InvalidArgument("trivalency weighting needs an Rng");
      }
      AssignTrivalency(skeleton.edges, *rng);
      break;
    }
  }
  GraphBuilder builder(skeleton.num_nodes);
  for (const Edge& e : skeleton.edges) {
    ASM_RETURN_NOT_OK(builder.AddEdge(e.source, e.target, e.probability));
  }
  return builder.Build(GraphBuilder::DuplicatePolicy::kKeepMaxProbability);
}

}  // namespace asti
