// Degree statistics (Table 2's average degree, Figure 3's distribution).

#pragma once

#include <vector>

#include "graph/graph.h"

namespace asti {

/// Summary degree statistics of a directed graph. "Degree" follows the
/// paper's convention of total incident directed edges / n for the average.
struct DegreeStats {
  double average_out_degree = 0.0;
  uint32_t max_out_degree = 0;
  uint32_t max_in_degree = 0;
};

DegreeStats ComputeDegreeStats(const DirectedGraph& graph);

/// One point of a degree-distribution plot: fraction of nodes whose
/// out-degree equals `degree`.
struct DegreeDistributionPoint {
  uint32_t degree = 0;
  double fraction = 0.0;
};

/// Exact out-degree histogram, sparse (only degrees that occur), ascending.
std::vector<DegreeDistributionPoint> ComputeDegreeDistribution(const DirectedGraph& graph);

/// Log-binned version for log-log plots (Figure 3): bucket i covers degrees
/// [2^i, 2^(i+1)); fraction is averaged per integer degree in the bucket.
std::vector<DegreeDistributionPoint> ComputeLogBinnedDistribution(
    const DirectedGraph& graph);

}  // namespace asti
