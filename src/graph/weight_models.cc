#include "graph/weight_models.h"

#include "util/check.h"

namespace asti {

void AssignWeightedCascade(NodeId num_nodes, std::vector<Edge>& edges) {
  std::vector<uint32_t> indegree(num_nodes, 0);
  for (const Edge& e : edges) {
    ASM_CHECK(e.target < num_nodes);
    ++indegree[e.target];
  }
  for (Edge& e : edges) {
    e.probability = 1.0 / static_cast<double>(indegree[e.target]);
  }
}

void AssignUniform(std::vector<Edge>& edges, double probability) {
  ASM_CHECK(probability > 0.0 && probability <= 1.0);
  for (Edge& e : edges) e.probability = probability;
}

void AssignTrivalency(std::vector<Edge>& edges, Rng& rng) {
  static constexpr double kLevels[3] = {0.1, 0.01, 0.001};
  for (Edge& e : edges) e.probability = kLevels[rng.NextBounded(3)];
}

}  // namespace asti
