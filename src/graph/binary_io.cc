#include "graph/binary_io.h"

#include <cstring>
#include <fstream>
#include <memory>
#include <utility>
#include <vector>

#include "graph/graph_builder.h"

namespace asti {

namespace {

constexpr char kMagic[4] = {'A', 'S', 'M', 'G'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
void WriteSpan(std::ofstream& out, std::span<const T> values) {
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(T)));
}

template <typename T>
bool ReadVector(std::ifstream& in, size_t count, std::vector<T>* values) {
  values->resize(count);
  in.read(reinterpret_cast<char*>(values->data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveGraphBinary(const DirectedGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  const uint32_t n = graph.NumNodes();
  const uint64_t m = graph.NumEdges();
  WritePod(out, n);
  WritePod(out, m);
  WriteSpan(out, graph.OutOffsets());
  WriteSpan(out, graph.OutTargets());
  WriteSpan(out, graph.OutProbs());
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

StatusOr<DirectedGraph> LoadGraphBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not an ASMG file (bad magic; if it is an ASMS "
                                   "snapshot, open it through the snapshot store)");
  }
  uint32_t version = 0;
  uint32_t n = 0;
  uint64_t m = 0;
  if (!ReadPod(in, &version)) {
    return Status::InvalidArgument("'" + path + "': truncated in the version field");
  }
  if (version != kVersion) {
    return Status::InvalidArgument("'" + path + "': unsupported ASMG version " +
                                   std::to_string(version) + " (expected " +
                                   std::to_string(kVersion) + ")");
  }
  if (!ReadPod(in, &n) || !ReadPod(in, &m)) {
    return Status::InvalidArgument("'" + path + "': truncated in the header (n/m fields)");
  }

  GraphStorage csr;
  if (!ReadVector(in, static_cast<size_t>(n) + 1, &csr.out_offsets)) {
    return Status::InvalidArgument("'" + path + "': truncated in the out_offsets section");
  }
  if (!ReadVector(in, m, &csr.out_targets)) {
    return Status::InvalidArgument("'" + path + "': truncated in the out_targets section");
  }
  if (!ReadVector(in, m, &csr.out_probs)) {
    return Status::InvalidArgument("'" + path + "': truncated in the out_probs section");
  }
  if (csr.out_offsets.front() != 0 || csr.out_offsets.back() != m) {
    return Status::InvalidArgument("'" + path + "': corrupt out_offsets section (bounds)");
  }
  for (size_t i = 0; i + 1 < csr.out_offsets.size(); ++i) {
    if (csr.out_offsets[i] > csr.out_offsets[i + 1]) {
      return Status::InvalidArgument("'" + path +
                                     "': non-monotone out_offsets section at node " +
                                     std::to_string(i));
    }
  }
  for (size_t e = 0; e < m; ++e) {
    if (csr.out_targets[e] >= n) {
      return Status::InvalidArgument("'" + path + "': out_targets section has endpoint " +
                                     std::to_string(csr.out_targets[e]) +
                                     " outside [0, " + std::to_string(n) + ")");
    }
    if (!(csr.out_probs[e] > 0.0) || csr.out_probs[e] > 1.0) {
      return Status::InvalidArgument("'" + path +
                                     "': out_probs section has probability outside "
                                     "(0, 1] at edge " +
                                     std::to_string(e));
    }
  }

  // The file stores the forward CSR verbatim, so adopt it directly and
  // derive the reverse CSR by counting sort — no edge-list round trip, no
  // comparison sort. (ASMG has no reverse sections; the snapshot store's
  // ASMS format persists both directions.)
  BuildReverseCsr(csr);
  return DirectedGraph(n, std::make_shared<const GraphStorage>(std::move(csr)));
}

}  // namespace asti
