#include "graph/binary_io.h"

#include <cstring>
#include <fstream>
#include <vector>

#include "graph/graph_builder.h"

namespace asti {

namespace {

constexpr char kMagic[4] = {'A', 'S', 'M', 'G'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
void WriteVector(std::ofstream& out, const std::vector<T>& values) {
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(T)));
}

template <typename T>
bool ReadVector(std::ifstream& in, size_t count, std::vector<T>* values) {
  values->resize(count);
  in.read(reinterpret_cast<char*>(values->data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveGraphBinary(const DirectedGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  const uint32_t n = graph.NumNodes();
  const uint64_t m = graph.NumEdges();
  WritePod(out, n);
  WritePod(out, m);

  std::vector<uint32_t> offsets(n + 1, 0);
  std::vector<uint32_t> targets;
  std::vector<double> probs;
  targets.reserve(m);
  probs.reserve(m);
  for (NodeId u = 0; u < n; ++u) {
    offsets[u + 1] = offsets[u] + graph.OutDegree(u);
    for (NodeId v : graph.OutNeighbors(u)) targets.push_back(v);
    for (double p : graph.OutProbabilities(u)) probs.push_back(p);
  }
  WriteVector(out, offsets);
  WriteVector(out, targets);
  WriteVector(out, probs);
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

StatusOr<DirectedGraph> LoadGraphBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not an ASMG file");
  }
  uint32_t version = 0;
  uint32_t n = 0;
  uint64_t m = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported ASMG version");
  }
  if (!ReadPod(in, &n) || !ReadPod(in, &m)) {
    return Status::InvalidArgument("truncated ASMG header");
  }
  std::vector<uint32_t> offsets;
  std::vector<uint32_t> targets;
  std::vector<double> probs;
  if (!ReadVector(in, static_cast<size_t>(n) + 1, &offsets) ||
      !ReadVector(in, m, &targets) || !ReadVector(in, m, &probs)) {
    return Status::InvalidArgument("truncated ASMG payload");
  }
  if (offsets.front() != 0 || offsets.back() != m) {
    return Status::InvalidArgument("corrupt ASMG offsets");
  }
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::InvalidArgument("non-monotone ASMG offsets");
    }
  }

  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (uint32_t e = offsets[u]; e < offsets[u + 1]; ++e) {
      ASM_RETURN_NOT_OK(builder.AddEdge(u, targets[e], probs[e]));
    }
  }
  return builder.Build();
}

}  // namespace asti
