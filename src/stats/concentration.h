// Martingale concentration machinery (Appendix A of the paper).
//
// Lemma A.2 turns an observed coverage count Λ (a sum of T [0,1] random
// variables) into high-probability lower/upper bounds on its expectation:
//
//   Λˡ(Λ, a) = (√(Λ + 2a/9) − √(a/2))² − a/18   ≤ E[Λ]   w.p. ≥ 1 − e^{-a}
//   Λᵘ(Λ, a) = (√(Λ + a/2) + √(a/2))²           ≥ E[Λ]   w.p. ≥ 1 − e^{-a}
//
// These drive TRIM/TRIM-B's stopping rule (Alg. 2 lines 9-11, Alg. 3
// lines 9-11). Lemma A.1's Chernoff-style tails are exposed for tests.

#pragma once

#include <cstddef>

namespace asti {

/// Lemma A.2, Eq. (18): high-probability lower bound on E[Λ] given the
/// observed coverage `coverage` and confidence parameter `a` (failure
/// probability e^{-a}). Clamped at 0.
double CoverageLowerBound(double coverage, double a);

/// Lemma A.2, Eq. (19): high-probability upper bound on E[Λ].
double CoverageUpperBound(double coverage, double a);

/// Lemma A.1, Eq. (16): upper-tail probability
/// Pr[mean > E + λ] ≤ exp(−λ²T / (2E + 2λ/3)).
double ChernoffUpperTail(double expectation_mean, double lambda, size_t trials);

/// Lemma A.1, Eq. (17): lower-tail probability
/// Pr[mean < E − λ] ≤ exp(−λ²T / (2E)).
double ChernoffLowerTail(double expectation_mean, double lambda, size_t trials);

/// ln C(n, k) via lgamma; used by TRIM-B's union bound over size-b sets.
double LogBinomial(double n, double k);

}  // namespace asti
