// Martingale concentration machinery (Appendix A of the paper).
//
// Lemma A.2 turns an observed coverage count Λ (a sum of T [0,1] random
// variables) into high-probability lower/upper bounds on its expectation:
//
//   Λˡ(Λ, a) = (√(Λ + 2a/9) − √(a/2))² − a/18   ≤ E[Λ]   w.p. ≥ 1 − e^{-a}
//   Λᵘ(Λ, a) = (√(Λ + a/2) + √(a/2))²           ≥ E[Λ]   w.p. ≥ 1 − e^{-a}
//
// These drive TRIM/TRIM-B's stopping rule (Alg. 2 lines 9-11, Alg. 3
// lines 9-11). Lemma A.1's Chernoff-style tails are exposed for tests.

#pragma once

#include <cstddef>
#include <cstdint>

namespace asti {

/// Lemma A.2, Eq. (18): high-probability lower bound on E[Λ] given the
/// observed coverage `coverage` and confidence parameter `a` (failure
/// probability e^{-a}). Clamped at 0.
double CoverageLowerBound(double coverage, double a);

/// Lemma A.2, Eq. (19): high-probability upper bound on E[Λ].
double CoverageUpperBound(double coverage, double a);

/// Lemma A.1, Eq. (16): upper-tail probability
/// Pr[mean > E + λ] ≤ exp(−λ²T / (2E + 2λ/3)).
double ChernoffUpperTail(double expectation_mean, double lambda, size_t trials);

/// Lemma A.1, Eq. (17): lower-tail probability
/// Pr[mean < E − λ] ≤ exp(−λ²T / (2E)).
double ChernoffLowerTail(double expectation_mean, double lambda, size_t trials);

/// ln C(n, k) via lgamma; used by TRIM-B's union bound over size-b sets.
double LogBinomial(double n, double k);

// --- Needed-sets queries (doubling schedules) -------------------------------
// The OPIM-C-style doubling loops (TRIM Alg. 2, TRIM-B Alg. 3, AdaptIM's
// EPIC schedule) all sample θ° sets up front and double until the Lemma A.2
// bounds certify. These two helpers make the schedule's sample counts a
// queryable function instead of loop-private state — the admission query
// the shared sampler cache uses to ask for EXACT prefix lengths (so a
// request's collection sizes are independent of what the cache happens to
// hold), and the quantity stats_test pins against the legacy loops.

/// Sets held after `iteration` (1-based) rounds of the doubling schedule:
/// θ°·2^(iteration−1), saturating instead of overflowing. Monotone in both
/// arguments. iteration == 0 yields 0.
size_t DoublingLadderSets(size_t theta_zero, size_t iteration);

/// Number of ladder iterations needed to reach θ_max starting from θ°:
/// ⌈log2(θ_max/θ°)⌉ + 1 — the T every schedule derives its per-iteration
/// confidence budget (a₁, a₂) from. Requires theta_zero ≥ 1; returns 1 when
/// θ_max ≤ θ°.
size_t DoublingLadderIterations(size_t theta_zero, double theta_max);

}  // namespace asti
