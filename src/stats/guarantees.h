// Closed-form theoretical guarantees of the paper, as a calculator.
//
// Given an instance (n, m, η) and knobs (ε, b), computes the end-to-end
// approximation ratio and the expected sampling budgets that Theorems
// 3.1/3.7/4.2 and Lemmas 3.8/3.9/4.3 promise. Useful for sizing a
// deployment before running anything, and for the lemma-scaling bench that
// validates the implementation against the theory.

#pragma once

#include <cstddef>

#include "graph/types.h"

namespace asti {

/// Theoretical characterization of one ASM instance under ASTI.
struct TheoreticalGuarantees {
  /// Per-round ratio of TRIM / TRIM-B: ρ_b(1 − 1/e)(1 − ε) (Lemmas 3.6/4.1).
  double per_round_ratio = 0.0;
  /// Golovin–Krause policy factor (ln η + 1)² (Theorem 3.1).
  double policy_factor = 0.0;
  /// End-to-end expected approximation ratio (Theorems 3.7/4.2):
  /// policy_factor / per_round_ratio.
  double end_to_end_ratio = 0.0;
  /// Hardness floor: no polynomial algorithm beats (1 − ξ)·ln η (Lemma 3.5).
  double hardness_floor = 0.0;
  /// O(η(m+n)ln n / ε²) — the expected-time bound's leading term
  /// (Theorems 3.11/4.4), in abstract "operations".
  double expected_time_bound = 0.0;
  /// Expected mRR-sets per round when the round optimum is OPT_i
  /// (Lemma 3.9/4.3 with the caller's OPT guess), leading constant dropped.
  double samples_per_round = 0.0;
};

/// Knobs mirrored from TrimOptions/TrimBOptions.
struct GuaranteeQuery {
  NodeId num_nodes = 0;   // n
  size_t num_edges = 0;   // m
  NodeId eta = 0;         // η ∈ [1, n]
  double epsilon = 0.5;   // ε ∈ (0, 1)
  NodeId batch = 1;       // b ≥ 1
  /// Caller's estimate of the per-round optimum E[Γ̃(v° | ·)]; defaults to
  /// the worst case OPT_i = 1.
  double opt_estimate = 1.0;
};

/// Evaluates every closed form above. Aborts on out-of-range inputs.
TheoreticalGuarantees ComputeGuarantees(const GuaranteeQuery& query);

}  // namespace asti
