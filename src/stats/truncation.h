// Closed-form machinery behind Theorem 3.3: the bias of the binary mRR
// estimator Γ̃ relative to the true truncated spread Γ.
//
// For a seed set with realized spread x in a graph of n nodes, an mRR-set
// with k roots sampled *without replacement* misses the seed set with
// probability p(x; n, k) = C(n−x, k)/C(n, k). The estimator's expectation
// is η(1 − E_k[p(x)]), and f(x) = η(1 − E_k[p(x)]) / min{x, η} is the bias
// ratio proven to lie in [1 − 1/e, 1] under randomized rounding of k.
//
// These functions exist so tests and the rounding ablation can check the
// theorem's bounds numerically, including the coarser bounds the §3.3
// Remark derives for fixed-k variants ([1 − 1/√e, 1] for k = ⌊n/η⌋,
// [1 − 1/e, 2] for k = ⌊n/η⌋ + 1).

#pragma once

#include <cstdint>

namespace asti {

/// Miss probability p(x; n, k) = Π_{i=0}^{k−1} (n − x − i)/(n − i):
/// the chance that none of k roots (without replacement) lies in the
/// x reachable nodes. Returns 0 when k > n − x.
double MrrMissProbability(uint64_t x, uint64_t n, uint64_t k);

/// How the root count k is chosen relative to n/eta.
enum class RootRounding {
  kRandomized,  // k = ⌊n/η⌋ + Bernoulli(frac(n/η)) — the paper's scheme
  kFloor,       // k = ⌊n/η⌋ always (ablation)
  kCeil,        // k = ⌊n/η⌋ + 1 always (ablation)
};

/// E_k[p(x)] under the given rounding scheme.
double ExpectedMissProbability(uint64_t x, uint64_t n, uint64_t eta, RootRounding rounding);

/// Bias ratio f(x) = η(1 − E_k[p(x)]) / min{x, η} for x ≥ 1.
double EstimatorBiasRatio(uint64_t x, uint64_t n, uint64_t eta, RootRounding rounding);

}  // namespace asti
