#include "stats/guarantees.h"

#include <cmath>

#include "util/check.h"

namespace asti {

TheoreticalGuarantees ComputeGuarantees(const GuaranteeQuery& query) {
  ASM_CHECK(query.num_nodes >= 1);
  ASM_CHECK(query.eta >= 1 && query.eta <= query.num_nodes);
  ASM_CHECK(query.epsilon > 0.0 && query.epsilon < 1.0);
  ASM_CHECK(query.batch >= 1);
  ASM_CHECK(query.opt_estimate >= 1.0);

  const double n = static_cast<double>(query.num_nodes);
  const double m = static_cast<double>(query.num_edges);
  const double eta = static_cast<double>(query.eta);
  const double b = static_cast<double>(query.batch);
  constexpr double kOneMinusInvE = 1.0 - 1.0 / 2.718281828459045;

  TheoreticalGuarantees result;
  const double rho_b = 1.0 - std::pow(1.0 - 1.0 / b, b);
  result.per_round_ratio = rho_b * kOneMinusInvE * (1.0 - query.epsilon);
  const double log_eta_plus_one = std::log(eta) + 1.0;
  result.policy_factor = log_eta_plus_one * log_eta_plus_one;
  result.end_to_end_ratio = result.policy_factor / result.per_round_ratio;
  result.hardness_floor = std::log(eta);
  result.expected_time_bound =
      eta * (m + n) * std::log(n) / (query.epsilon * query.epsilon);
  result.samples_per_round =
      eta * std::log(n) / (query.epsilon * query.epsilon * query.opt_estimate);
  return result;
}

}  // namespace asti
