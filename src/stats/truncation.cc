#include "stats/truncation.h"

#include <algorithm>

#include "util/check.h"

namespace asti {

double MrrMissProbability(uint64_t x, uint64_t n, uint64_t k) {
  ASM_CHECK(n >= 1 && x <= n && k >= 1 && k <= n);
  if (k > n - x) return 0.0;
  double p = 1.0;
  for (uint64_t i = 0; i < k; ++i) {
    p *= static_cast<double>(n - x - i) / static_cast<double>(n - i);
  }
  return p;
}

double ExpectedMissProbability(uint64_t x, uint64_t n, uint64_t eta,
                               RootRounding rounding) {
  ASM_CHECK(eta >= 1 && eta <= n);
  const uint64_t k_floor = n / eta;
  const double frac = static_cast<double>(n) / static_cast<double>(eta) -
                      static_cast<double>(k_floor);
  const uint64_t k_ceil = std::min<uint64_t>(k_floor + 1, n);
  switch (rounding) {
    case RootRounding::kRandomized:
      return frac * MrrMissProbability(x, n, k_ceil) +
             (1.0 - frac) * MrrMissProbability(x, n, k_floor);
    case RootRounding::kFloor:
      return MrrMissProbability(x, n, k_floor);
    case RootRounding::kCeil:
      return MrrMissProbability(x, n, k_ceil);
  }
  ASM_CHECK(false);
  return 0.0;
}

double EstimatorBiasRatio(uint64_t x, uint64_t n, uint64_t eta, RootRounding rounding) {
  ASM_CHECK(x >= 1);
  const double truncated = static_cast<double>(std::min(x, eta));
  const double estimate =
      static_cast<double>(eta) * (1.0 - ExpectedMissProbability(x, n, eta, rounding));
  return estimate / truncated;
}

}  // namespace asti
