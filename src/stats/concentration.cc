#include "stats/concentration.h"

#include <math.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/check.h"

namespace asti {

double CoverageLowerBound(double coverage, double a) {
  ASM_CHECK(coverage >= 0.0 && a > 0.0);
  const double root = std::sqrt(coverage + 2.0 * a / 9.0) - std::sqrt(a / 2.0);
  const double bound = root * root - a / 18.0;
  return std::max(0.0, bound);
}

double CoverageUpperBound(double coverage, double a) {
  ASM_CHECK(coverage >= 0.0 && a > 0.0);
  const double root = std::sqrt(coverage + a / 2.0) + std::sqrt(a / 2.0);
  return root * root;
}

double ChernoffUpperTail(double expectation_mean, double lambda, size_t trials) {
  ASM_CHECK(expectation_mean >= 0.0 && lambda >= 0.0 && trials > 0);
  if (lambda == 0.0) return 1.0;
  const double exponent = -(lambda * lambda * static_cast<double>(trials)) /
                          (2.0 * expectation_mean + 2.0 * lambda / 3.0);
  return std::exp(exponent);
}

double ChernoffLowerTail(double expectation_mean, double lambda, size_t trials) {
  ASM_CHECK(expectation_mean >= 0.0 && lambda >= 0.0 && trials > 0);
  if (lambda == 0.0) return 1.0;
  if (expectation_mean == 0.0) return 0.0;
  const double exponent =
      -(lambda * lambda * static_cast<double>(trials)) / (2.0 * expectation_mean);
  return std::exp(exponent);
}

namespace {

// POSIX lgamma writes the process-global `signgam`, making concurrent
// callers (SeedMinEngine requests sharing nothing else) race; the _r
// variant takes the sign out-parameter instead. All arguments here are
// positive, so the sign is always +1 and is discarded. lgamma_r is not
// ISO C++, so it is used only where its declaration is certain (glibc —
// the platform CI and the TSAN job run on). Elsewhere the std::lgamma
// fallback may still touch signgam on POSIX libms; extend the guard when
// porting to such a platform rather than assuming the fallback is clean.
double LGamma(double x) {
#if defined(__GLIBC__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace

double LogBinomial(double n, double k) {
  ASM_CHECK(n >= k && k >= 0.0);
  if (k == 0.0 || k == n) return 0.0;
  return LGamma(n + 1.0) - LGamma(k + 1.0) - LGamma(n - k + 1.0);
}

size_t DoublingLadderSets(size_t theta_zero, size_t iteration) {
  if (iteration == 0) return 0;
  size_t sets = theta_zero;
  for (size_t t = 1; t < iteration; ++t) {
    if (sets > SIZE_MAX / 2) return SIZE_MAX;  // saturate, never wrap
    sets *= 2;
  }
  return sets;
}

size_t DoublingLadderIterations(size_t theta_zero, double theta_max) {
  ASM_CHECK(theta_zero >= 1);
  if (theta_max <= static_cast<double>(theta_zero)) return 1;
  return static_cast<size_t>(
             std::ceil(std::log2(theta_max / static_cast<double>(theta_zero)))) +
         1;
}

}  // namespace asti
