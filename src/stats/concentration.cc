#include "stats/concentration.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace asti {

double CoverageLowerBound(double coverage, double a) {
  ASM_CHECK(coverage >= 0.0 && a > 0.0);
  const double root = std::sqrt(coverage + 2.0 * a / 9.0) - std::sqrt(a / 2.0);
  const double bound = root * root - a / 18.0;
  return std::max(0.0, bound);
}

double CoverageUpperBound(double coverage, double a) {
  ASM_CHECK(coverage >= 0.0 && a > 0.0);
  const double root = std::sqrt(coverage + a / 2.0) + std::sqrt(a / 2.0);
  return root * root;
}

double ChernoffUpperTail(double expectation_mean, double lambda, size_t trials) {
  ASM_CHECK(expectation_mean >= 0.0 && lambda >= 0.0 && trials > 0);
  if (lambda == 0.0) return 1.0;
  const double exponent = -(lambda * lambda * static_cast<double>(trials)) /
                          (2.0 * expectation_mean + 2.0 * lambda / 3.0);
  return std::exp(exponent);
}

double ChernoffLowerTail(double expectation_mean, double lambda, size_t trials) {
  ASM_CHECK(expectation_mean >= 0.0 && lambda >= 0.0 && trials > 0);
  if (lambda == 0.0) return 1.0;
  if (expectation_mean == 0.0) return 0.0;
  const double exponent =
      -(lambda * lambda * static_cast<double>(trials)) / (2.0 * expectation_mean);
  return std::exp(exponent);
}

double LogBinomial(double n, double k) {
  ASM_CHECK(n >= k && k >= 0.0);
  if (k == 0.0 || k == n) return 0.0;
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}

}  // namespace asti
