// Edge-balanced contiguous-range graph partitioning for sharded serving.
//
// A PartitionPlan splits a graph's node range [0, n) into K contiguous
// row ranges [cuts[k], cuts[k+1]) chosen so each range carries roughly
// m / K forward edges. Each shard materializes as a full-node-count
// DirectedGraph whose forward CSR is populated only on its own rows —
// a valid graph in its own right, storable as an ordinary ASMS snapshot
// (src/shard/sharded_store.h gives one file per shard). StitchShards
// concatenates the K forward CSRs back into the original graph
// bit-identically (the reverse CSR is rebuilt with the same counting
// sort every load path uses), which is what lets a sharded catalog entry
// serve the exact results the monolithic snapshot would.
//
// The plan binds to its graph through forward-CSR digests: one for the
// whole graph and one per shard, recomputed and checked when a sharded
// snapshot is loaded so a plan can never stitch shards from a different
// graph (or a stale epoch) without an InvalidArgument.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace asti {

/// How a graph's rows are split across K shards, plus the digests that
/// bind the plan to the exact graph it was built from.
struct PartitionPlan {
  uint32_t num_shards = 0;
  NodeId num_nodes = 0;
  EdgeId num_edges = 0;
  /// K+1 non-decreasing row cuts: shard k owns rows [cuts[k], cuts[k+1]),
  /// cuts[0] == 0, cuts[K] == num_nodes. Empty shards are legal (K > n).
  std::vector<NodeId> cuts;
  /// Forward edges owned by each shard; sums to num_edges.
  std::vector<EdgeId> shard_edges;
  /// ForwardCsrDigest of the full (stitched) graph.
  uint64_t graph_digest = 0;
  /// ForwardCsrDigest of each extracted shard graph.
  std::vector<uint64_t> shard_digests;
};

/// Order-sensitive digest of a forward CSR (node count, offsets, targets,
/// probability bit patterns). The binding check between a PartitionPlan
/// and the graphs it describes: ForwardCsrDigest(ExtractShard(g, plan, k))
/// equals plan.shard_digests[k] by construction. Distinct from the
/// snapshot store's section-CRC graph digest — this one is computable for
/// any DirectedGraph without a file.
uint64_t ForwardCsrDigest(const DirectedGraph& graph);

/// Builds an edge-balanced plan with `num_shards` contiguous row ranges.
/// InvalidArgument when num_shards is 0 or exceeds kMaxShards.
StatusOr<PartitionPlan> BuildPartitionPlan(const DirectedGraph& graph,
                                           uint32_t num_shards);

/// Structural validation: every shape constraint a well-formed plan obeys
/// (cut monotonicity/endpoints, per-shard edge totals, digest counts).
/// InvalidArgument naming the offending field. Digests are checked against
/// actual graphs by the load path, not here.
Status ValidatePlan(const PartitionPlan& plan);

/// Shard k of `graph` under `plan`: a DirectedGraph with the full node
/// count whose forward CSR contains exactly the rows [cuts[k], cuts[k+1])
/// (every other row is empty); the reverse CSR is derived by counting
/// sort. InvalidArgument when the plan does not match the graph's shape
/// or `shard` is out of range.
StatusOr<DirectedGraph> ExtractShard(const DirectedGraph& graph,
                                     const PartitionPlan& plan, uint32_t shard);

/// Reassembles the original graph from its K extracted shards:
/// concatenates the per-shard forward rows and rebuilds the reverse CSR.
/// The result is bit-identical to the graph the plan was built from
/// (verified by digest when loading from disk). InvalidArgument when the
/// shard count or any shard's shape disagrees with the plan.
StatusOr<DirectedGraph> StitchShards(const PartitionPlan& plan,
                                     std::span<const DirectedGraph> shards);

/// Upper bound on num_shards — far beyond any useful fan-out, low enough
/// that a corrupted plan file cannot demand 2^32 thread pools.
inline constexpr uint32_t kMaxShards = 1024;

}  // namespace asti
