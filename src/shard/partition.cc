#include "shard/partition.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "graph/graph_builder.h"

namespace asti {

namespace {

// FNV-1a-flavoured mixing, same shape as the bench checksums: order
// sensitive, cheap, stable across platforms for identical inputs.
class DigestMixer {
 public:
  void Mix(uint64_t word) {
    word *= 0x100000001b3ULL;
    digest_ ^= word + (digest_ << 6) + (digest_ >> 2);
  }
  void MixDouble(double value) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    Mix(bits);
  }
  uint64_t digest() const { return digest_; }

 private:
  uint64_t digest_ = 0x51a23d5ed1ce5707ULL;
};

uint64_t DigestForwardCsr(NodeId num_nodes, std::span<const EdgeId> out_offsets,
                          std::span<const NodeId> out_targets,
                          std::span<const double> out_probs) {
  DigestMixer mixer;
  mixer.Mix(num_nodes);
  mixer.Mix(out_targets.size());
  for (EdgeId offset : out_offsets) mixer.Mix(offset);
  for (NodeId target : out_targets) mixer.Mix(target);
  for (double p : out_probs) mixer.MixDouble(p);
  return mixer.digest();
}

}  // namespace

uint64_t ForwardCsrDigest(const DirectedGraph& graph) {
  return DigestForwardCsr(graph.NumNodes(), graph.OutOffsets(), graph.OutTargets(),
                          graph.OutProbs());
}

StatusOr<PartitionPlan> BuildPartitionPlan(const DirectedGraph& graph,
                                           uint32_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("partition plan needs num_shards >= 1");
  }
  if (num_shards > kMaxShards) {
    return Status::InvalidArgument("num_shards " + std::to_string(num_shards) +
                                   " exceeds the kMaxShards cap of " +
                                   std::to_string(kMaxShards));
  }
  PartitionPlan plan;
  plan.num_shards = num_shards;
  plan.num_nodes = graph.NumNodes();
  plan.num_edges = graph.NumEdges();
  plan.graph_digest = ForwardCsrDigest(graph);
  plan.cuts.reserve(num_shards + 1);
  plan.cuts.push_back(0);
  const std::span<const EdgeId> offsets = graph.OutOffsets();
  // Greedy edge balancing over contiguous rows: shard k takes rows until
  // it holds its fair share ceil(remaining_edges / remaining_shards),
  // including the row that crosses the quota — recomputed per shard so a
  // heavy row overloads only its own shard, never the tail shards. The
  // last shard absorbs every remaining row; shards past the edge supply
  // come out empty (K > n is legal).
  NodeId row = 0;
  for (uint32_t k = 0; k < num_shards; ++k) {
    const uint32_t shards_left = num_shards - k;
    const EdgeId begin_offset = offsets[row];
    const EdgeId edges_left = plan.num_edges - begin_offset;
    const EdgeId quota = (edges_left + shards_left - 1) / shards_left;
    NodeId end = row;
    while (end < plan.num_nodes &&
           (k + 1 == num_shards || offsets[end] - begin_offset < quota)) {
      ++end;
    }
    plan.cuts.push_back(end);
    plan.shard_edges.push_back(offsets[end] - begin_offset);
    row = end;
  }
  // Per-shard digests over the arrays ExtractShard will produce: a shard
  // offsets array rebased to start at 0 outside the owned rows.
  for (uint32_t k = 0; k < num_shards; ++k) {
    const NodeId begin = plan.cuts[k];
    const NodeId end = plan.cuts[k + 1];
    const EdgeId base = offsets[begin];
    std::vector<EdgeId> shard_offsets(size_t{plan.num_nodes} + 1, 0);
    for (NodeId u = begin; u < end; ++u) shard_offsets[u + 1] = offsets[u + 1] - base;
    for (NodeId u = end; u < plan.num_nodes; ++u) {
      shard_offsets[u + 1] = shard_offsets[end];
    }
    plan.shard_digests.push_back(DigestForwardCsr(
        plan.num_nodes, shard_offsets,
        graph.OutTargets().subspan(base, plan.shard_edges[k]),
        graph.OutProbs().subspan(base, plan.shard_edges[k])));
  }
  return plan;
}

Status ValidatePlan(const PartitionPlan& plan) {
  if (plan.num_shards == 0 || plan.num_shards > kMaxShards) {
    return Status::InvalidArgument("partition plan num_shards " +
                                   std::to_string(plan.num_shards) +
                                   " outside [1, " + std::to_string(kMaxShards) + "]");
  }
  if (plan.cuts.size() != size_t{plan.num_shards} + 1) {
    return Status::InvalidArgument(
        "partition plan cuts has " + std::to_string(plan.cuts.size()) +
        " entries, want num_shards + 1 = " + std::to_string(plan.num_shards + 1));
  }
  if (plan.cuts.front() != 0 || plan.cuts.back() != plan.num_nodes) {
    return Status::InvalidArgument(
        "partition plan cuts must start at 0 and end at num_nodes (" +
        std::to_string(plan.num_nodes) + "), got [" +
        std::to_string(plan.cuts.front()) + ", " + std::to_string(plan.cuts.back()) +
        "]");
  }
  for (size_t k = 0; k + 1 < plan.cuts.size(); ++k) {
    if (plan.cuts[k] > plan.cuts[k + 1]) {
      return Status::InvalidArgument("partition plan cuts decrease at index " +
                                     std::to_string(k));
    }
  }
  if (plan.shard_edges.size() != plan.num_shards) {
    return Status::InvalidArgument(
        "partition plan shard_edges has " + std::to_string(plan.shard_edges.size()) +
        " entries, want num_shards = " + std::to_string(plan.num_shards));
  }
  uint64_t total_edges = 0;
  for (EdgeId e : plan.shard_edges) total_edges += e;
  if (total_edges != plan.num_edges) {
    return Status::InvalidArgument("partition plan shard_edges sum to " +
                                   std::to_string(total_edges) + ", want num_edges = " +
                                   std::to_string(plan.num_edges));
  }
  if (plan.shard_digests.size() != plan.num_shards) {
    return Status::InvalidArgument(
        "partition plan shard_digests has " +
        std::to_string(plan.shard_digests.size()) +
        " entries, want num_shards = " + std::to_string(plan.num_shards));
  }
  return Status::OK();
}

namespace {

Status CheckPlanMatchesShape(const PartitionPlan& plan, NodeId num_nodes,
                             EdgeId num_edges) {
  ASM_RETURN_NOT_OK(ValidatePlan(plan));
  if (plan.num_nodes != num_nodes || plan.num_edges != num_edges) {
    return Status::InvalidArgument(
        "partition plan describes a (" + std::to_string(plan.num_nodes) + " node, " +
        std::to_string(plan.num_edges) + " edge) graph, got (" +
        std::to_string(num_nodes) + ", " + std::to_string(num_edges) + ")");
  }
  return Status::OK();
}

}  // namespace

StatusOr<DirectedGraph> ExtractShard(const DirectedGraph& graph,
                                     const PartitionPlan& plan, uint32_t shard) {
  ASM_RETURN_NOT_OK(CheckPlanMatchesShape(plan, graph.NumNodes(), graph.NumEdges()));
  if (shard >= plan.num_shards) {
    return Status::InvalidArgument("shard index " + std::to_string(shard) +
                                   " outside [0, " + std::to_string(plan.num_shards) +
                                   ")");
  }
  const NodeId begin = plan.cuts[shard];
  const NodeId end = plan.cuts[shard + 1];
  const std::span<const EdgeId> offsets = graph.OutOffsets();
  const EdgeId base = offsets[begin];
  const EdgeId edges = plan.shard_edges[shard];
  auto storage = std::make_shared<GraphStorage>();
  storage->out_offsets.assign(size_t{plan.num_nodes} + 1, 0);
  for (NodeId u = begin; u < end; ++u) {
    storage->out_offsets[u + 1] = offsets[u + 1] - base;
  }
  for (NodeId u = end; u < plan.num_nodes; ++u) {
    storage->out_offsets[u + 1] = storage->out_offsets[end];
  }
  const std::span<const NodeId> targets = graph.OutTargets().subspan(base, edges);
  const std::span<const double> probs = graph.OutProbs().subspan(base, edges);
  storage->out_targets.assign(targets.begin(), targets.end());
  storage->out_probs.assign(probs.begin(), probs.end());
  BuildReverseCsr(*storage);
  return DirectedGraph(plan.num_nodes, std::move(storage));
}

StatusOr<DirectedGraph> StitchShards(const PartitionPlan& plan,
                                     std::span<const DirectedGraph> shards) {
  ASM_RETURN_NOT_OK(ValidatePlan(plan));
  if (shards.size() != plan.num_shards) {
    return Status::InvalidArgument("stitch got " + std::to_string(shards.size()) +
                                   " shards, plan describes " +
                                   std::to_string(plan.num_shards));
  }
  auto storage = std::make_shared<GraphStorage>();
  storage->out_offsets.assign(size_t{plan.num_nodes} + 1, 0);
  storage->out_targets.reserve(plan.num_edges);
  storage->out_probs.reserve(plan.num_edges);
  EdgeId base = 0;
  for (uint32_t k = 0; k < plan.num_shards; ++k) {
    const DirectedGraph& shard = shards[k];
    if (shard.NumNodes() != plan.num_nodes) {
      return Status::InvalidArgument(
          "shard " + std::to_string(k) + " has " + std::to_string(shard.NumNodes()) +
          " nodes, plan describes " + std::to_string(plan.num_nodes));
    }
    if (shard.NumEdges() != plan.shard_edges[k]) {
      return Status::InvalidArgument(
          "shard " + std::to_string(k) + " carries " +
          std::to_string(shard.NumEdges()) + " edges, plan describes " +
          std::to_string(plan.shard_edges[k]));
    }
    const std::span<const EdgeId> shard_offsets = shard.OutOffsets();
    const NodeId begin = plan.cuts[k];
    const NodeId end = plan.cuts[k + 1];
    // Rows outside [begin, end) must be empty, or the shard is not an
    // extraction under this plan.
    if (shard_offsets[begin] != 0 || shard_offsets[end] != shard.NumEdges()) {
      return Status::InvalidArgument("shard " + std::to_string(k) +
                                     " carries edges outside its plan row range [" +
                                     std::to_string(begin) + ", " +
                                     std::to_string(end) + ")");
    }
    for (NodeId u = begin; u < end; ++u) {
      storage->out_offsets[u + 1] = base + shard_offsets[u + 1];
    }
    const std::span<const NodeId> targets = shard.OutTargets();
    const std::span<const double> probs = shard.OutProbs();
    storage->out_targets.insert(storage->out_targets.end(), targets.begin(),
                                targets.end());
    storage->out_probs.insert(storage->out_probs.end(), probs.begin(), probs.end());
    base += shard.NumEdges();
    // Carry the running offset across any empty rows owned by later shards.
    for (NodeId u = end; u < plan.num_nodes; ++u) storage->out_offsets[u + 1] = base;
  }
  BuildReverseCsr(*storage);
  return DirectedGraph(plan.num_nodes, std::move(storage));
}

}  // namespace asti
