// ShardTopology: the per-catalog-entry description of how a graph is
// sharded. Attached to a GraphCatalog registration (GraphMeta keeps a
// shared_ptr so every pinned GraphRef sees a consistent topology for its
// epoch) and consumed by ShardRuntime to build per-shard thread pools.
//
// The shard graphs themselves are optional: the serving path samples
// over the stitched full graph (RR traversal needs the whole reverse
// CSR), so only the plan is load-bearing at runtime. When the entry was
// loaded from a sharded snapshot the extracted shard graphs ride along
// for tooling (re-save, inspection); an in-memory reshard may leave
// `shards` empty.

#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "shard/partition.h"
#include "util/status.h"

namespace asti {

/// Immutable sharding description for one catalog epoch.
struct ShardTopology {
  PartitionPlan plan;
  /// Extracted shard graphs, in shard order; may be empty (plan-only
  /// topology). When present, size() == plan.num_shards.
  std::vector<std::shared_ptr<const DirectedGraph>> shards;

  uint32_t num_shards() const { return plan.num_shards; }
};

/// Builds a plan-only topology for `graph` (the common in-memory reshard
/// path: `asm_tool --shards K` on a monolithic snapshot).
inline StatusOr<std::shared_ptr<const ShardTopology>> MakeShardTopology(
    const DirectedGraph& graph, uint32_t num_shards) {
  ASM_ASSIGN_OR_RETURN(PartitionPlan plan, BuildPartitionPlan(graph, num_shards));
  auto topology = std::make_shared<ShardTopology>();
  topology->plan = std::move(plan);
  return std::shared_ptr<const ShardTopology>(std::move(topology));
}

}  // namespace asti
