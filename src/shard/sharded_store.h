// Sharded snapshot persistence: one ASMS file per shard plus a small
// text partition-plan file binding them together.
//
// Layout under a snapshot directory, for a graph named `g` split K ways:
//
//   <dir>/g.plan                ASMS-PLAN v1 (text): cuts, per-shard edge
//                               counts, forward-CSR digests
//   <dir>/g.shard<k>of<K>.asms  ordinary ASMS snapshot of shard k (a
//                               full-node-count graph whose forward CSR
//                               holds only the shard's rows)
//
// Each shard file is a self-contained, independently verifiable ASMS
// snapshot (src/store/), so existing tooling — --verify-snapshot, mmap
// registration — works on shards unchanged. The plan's digests bind the
// set together: LoadShardedSnapshot recomputes every shard's
// ForwardCsrDigest and the stitched graph's digest against the plan, so
// mixing shard files from different graphs (or epochs) is refused with
// InvalidArgument rather than served. Writes are atomic per file
// (tmp + rename), plan last, so a crashed save never leaves a plan
// pointing at missing shards.

#pragma once

#include <memory>
#include <string>

#include "graph/generators.h"
#include "graph/graph.h"
#include "shard/topology.h"
#include "store/snapshot_store.h"
#include "util/status.h"

namespace asti {

/// A loaded sharded snapshot, ready for GraphCatalog registration: the
/// stitched full graph plus the topology (with per-shard graphs attached).
struct ShardedGraph {
  std::shared_ptr<const DirectedGraph> graph;
  std::shared_ptr<const ShardTopology> topology;
  std::string name;
  WeightScheme weight_scheme = WeightScheme::kWeightedCascade;
};

/// `<dir>/<name>.plan`.
std::string ShardPlanPath(const std::string& dir, const std::string& name);

/// The snapshot-store name of shard `k` of `num_shards` ("g.shard0of2");
/// append ".asms" / prepend the directory via store::SnapshotStore.
std::string ShardSnapshotName(const std::string& name, uint32_t shard,
                              uint32_t num_shards);

/// Partitions `graph` into `num_shards` edge-balanced shards and writes
/// the shard snapshots plus the plan file under `dir` (created if
/// needed). InvalidArgument for a bad shard count or unwritable name;
/// IOError on filesystem failure.
Status SaveShardedSnapshot(const DirectedGraph& graph, const std::string& name,
                           WeightScheme scheme, uint32_t num_shards,
                           const std::string& dir);

/// Loads the plan and all shard snapshots for `name` under `dir`,
/// verifies every digest (per shard and stitched), and returns the
/// reassembled graph + topology. NotFound when no plan file exists (the
/// caller may fall back to a monolithic `<name>.asms`); InvalidArgument
/// for a malformed plan or shard files that do not match it.
StatusOr<ShardedGraph> LoadShardedSnapshot(
    const std::string& dir, const std::string& name,
    store::SnapshotVerify verify = store::SnapshotVerify::kStructural);

}  // namespace asti
