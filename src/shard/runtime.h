// ShardRuntime: shard-routed RR/mRR-set generation behind the
// SamplerCache's IndexedSetGenerator hook.
//
// Work routing, not data routing: RR-set traversal walks the reverse CSR
// transitively, so every shard's sampler traverses the full stitched
// graph — what is partitioned across shards is the SET INDEX SPACE.
// Global set indices are assigned to shards in contiguous blocks
// (shard(i) = (i / kShardBlockSize) % K), each shard's runs are generated
// on that shard's private ThreadPool into a per-shard staging collection,
// and the staging collections merge back into global index order through
// RrCollection::AppendBatch — the same index-ordered merge protocol the
// parallel engine established (src/parallel/README.md).
//
// Because set i's content is a pure function of (stream base, i) — the
// PR 1/PR 7 Split(i) discipline — the merged result is bit-identical to
// the unsharded path at any (shard count × pool size). Cancellation
// keeps the SamplerCache contract: a shard whose run under-delivers
// truncates the merge at that run's global position, so the staging
// handed back is short (and discarded by ExtendTo), never misaligned.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "parallel/thread_pool.h"
#include "sampling/sampler_cache.h"
#include "shard/topology.h"

namespace asti {

/// Global set indices map to shards in contiguous blocks of this many
/// sets: shard(i) = (i / kShardBlockSize) % num_shards. Purely a
/// work-routing constant — set content depends only on (base, i), so the
/// block size is NOT part of the determinism contract and can change
/// freely. It is small so even the early rungs of the doubling ladder
/// exercise every shard.
inline constexpr size_t kShardBlockSize = 64;

/// Per-GraphState shard executor: K private thread pools plus the routing
/// and merge logic above. Thread-safe (concurrent Generate calls share
/// only the pools, which isolate callers per TaskGroup, and the atomic
/// per-shard counters).
class ShardRuntime final : public IndexedSetGenerator {
 public:
  /// `graph` is the full stitched graph the catalog entry serves;
  /// `topology` its sharding. `num_threads` is the engine-level knob
  /// (same semantics as ServingOptions::num_threads, 0 = hardware);
  /// each shard pool gets max(1, resolved / num_shards) workers.
  ShardRuntime(std::shared_ptr<const DirectedGraph> graph,
               std::shared_ptr<const ShardTopology> topology, size_t num_threads);

  void Generate(const SamplerCacheKey& key, const Rng& base,
                const RootSizeSampler* root_size, const std::vector<NodeId>& candidates,
                size_t first, size_t count, RrCollection& staging,
                const CancelScope* cancel) const override;

  uint32_t num_shards() const { return topology_->num_shards(); }
  const ShardTopology& topology() const { return *topology_; }
  size_t threads_per_shard() const { return pools_.front()->NumThreads(); }

  /// Cumulative RR/mRR sets each shard has generated and merged into its
  /// graph's shared collections (index k = shard k). Monotone; readable
  /// while requests run.
  std::vector<uint64_t> SetCounts() const;

 private:
  std::shared_ptr<const DirectedGraph> graph_;
  std::shared_ptr<const ShardTopology> topology_;
  std::vector<std::unique_ptr<ThreadPool>> pools_;
  std::unique_ptr<std::atomic<uint64_t>[]> set_counts_;
};

}  // namespace asti
