#include "shard/runtime.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "parallel/parallel_sampler.h"
#include "util/check.h"

namespace asti {

ShardRuntime::ShardRuntime(std::shared_ptr<const DirectedGraph> graph,
                           std::shared_ptr<const ShardTopology> topology,
                           size_t num_threads)
    : graph_(std::move(graph)), topology_(std::move(topology)) {
  ASM_CHECK(graph_ != nullptr && topology_ != nullptr);
  const uint32_t num_shards = topology_->num_shards();
  ASM_CHECK(num_shards >= 1 && num_shards <= kMaxShards);
  ASM_CHECK(topology_->plan.num_nodes == graph_->NumNodes() &&
            topology_->plan.num_edges == graph_->NumEdges())
      << "shard topology does not describe this graph";
  const size_t per_shard =
      std::max<size_t>(1, ResolveThreadCount(num_threads) / num_shards);
  pools_.reserve(num_shards);
  for (uint32_t k = 0; k < num_shards; ++k) {
    pools_.push_back(std::make_unique<ThreadPool>(per_shard));
  }
  set_counts_ = std::make_unique<std::atomic<uint64_t>[]>(num_shards);
}

void ShardRuntime::Generate(const SamplerCacheKey& key, const Rng& base,
                            const RootSizeSampler* root_size,
                            const std::vector<NodeId>& candidates, size_t first,
                            size_t count, RrCollection& staging,
                            const CancelScope* cancel) const {
  // A run is a maximal block-aligned slice of [first, first + count) owned
  // by one shard. Runs are recorded in global index order — the order the
  // merge below must reproduce.
  struct Run {
    size_t first;
    size_t count;
    uint32_t shard;
    size_t delivered = 0;
  };
  const uint32_t num_shards = topology_->num_shards();
  std::vector<Run> runs;
  runs.reserve(count / kShardBlockSize + 2);
  for (size_t i = first; i < first + count;) {
    const size_t block_end = (i / kShardBlockSize + 1) * kShardBlockSize;
    const size_t run_end = std::min(first + count, block_end);
    runs.push_back(
        Run{i, run_end - i, static_cast<uint32_t>((i / kShardBlockSize) % num_shards)});
    i = run_end;
  }
  std::vector<std::vector<size_t>> by_shard(num_shards);
  for (size_t r = 0; r < runs.size(); ++r) by_shard[runs[r].shard].push_back(r);

  // One staging collection PER SHARD, not per run: every RrCollection
  // carries an n-sized coverage array, so per-run staging would cost
  // O(runs × n) memory for nothing.
  std::vector<std::unique_ptr<RrCollection>> shard_staging(num_shards);

  auto drive_shard = [&](uint32_t k) {
    shard_staging[k] = std::make_unique<RrCollection>(graph_->NumNodes());
    RrCollection& out = *shard_staging[k];
    ParallelRrSampler sampler(*graph_, key.model, *pools_[k], cancel,
                              /*profile=*/nullptr);
    for (size_t r : by_shard[k]) {
      Run& run = runs[r];
      const size_t before = out.NumSets();
      if (key.kind == SamplerCacheKey::Kind::kRr) {
        sampler.GenerateIndexed(candidates, nullptr, run.first, run.count, out, base);
      } else {
        sampler.GenerateMrrIndexed(candidates, nullptr, *root_size, run.first,
                                   run.count, out, base);
      }
      run.delivered = out.NumSets() - before;
      // Under-delivery means cancellation fired; everything from this run
      // on will be dropped by the merge, so stop burning cycles.
      if (run.delivered < run.count) break;
    }
  };

  // One coordinator thread per shard with work; the first active shard
  // runs on the calling thread (K = 1 spawns nothing).
  std::vector<uint32_t> active;
  active.reserve(num_shards);
  for (uint32_t k = 0; k < num_shards; ++k) {
    if (!by_shard[k].empty()) active.push_back(k);
  }
  std::vector<std::thread> coordinators;
  coordinators.reserve(active.empty() ? 0 : active.size() - 1);
  for (size_t a = 1; a < active.size(); ++a) {
    coordinators.emplace_back([&drive_shard, k = active[a]] { drive_shard(k); });
  }
  if (!active.empty()) drive_shard(active[0]);
  for (std::thread& t : coordinators) t.join();

  // Index-ordered merge: append each complete run's slice of its shard's
  // staging in global order. The first incomplete run truncates the merge
  // — the result is a short contiguous prefix, which ExtendTo discards,
  // never a gap.
  std::vector<size_t> consumed(num_shards, 0);
  for (const Run& run : runs) {
    if (run.delivered < run.count) break;
    staging.AppendBatch(*shard_staging[run.shard], consumed[run.shard], run.count);
    consumed[run.shard] += run.count;
    set_counts_[run.shard].fetch_add(run.count, std::memory_order_relaxed);
  }
}

std::vector<uint64_t> ShardRuntime::SetCounts() const {
  std::vector<uint64_t> counts(topology_->num_shards());
  for (size_t k = 0; k < counts.size(); ++k) {
    counts[k] = set_counts_[k].load(std::memory_order_relaxed);
  }
  return counts;
}

}  // namespace asti
