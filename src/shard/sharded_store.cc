#include "shard/sharded_store.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "shard/partition.h"

namespace asti {

namespace {

// Weight-scheme round-trip for the plan file (the shard ASMS files carry
// the scheme too; the plan copy lets tooling describe the set without
// opening a shard).
const char* SchemeToken(WeightScheme scheme) {
  switch (scheme) {
    case WeightScheme::kWeightedCascade: return "weighted_cascade";
    case WeightScheme::kTrivalency: return "trivalency";
    case WeightScheme::kUniform: return "uniform";
  }
  return "weighted_cascade";
}

bool ParseSchemeToken(const std::string& token, WeightScheme& scheme) {
  if (token == "weighted_cascade") {
    scheme = WeightScheme::kWeightedCascade;
  } else if (token == "trivalency") {
    scheme = WeightScheme::kTrivalency;
  } else if (token == "uniform") {
    scheme = WeightScheme::kUniform;
  } else {
    return false;
  }
  return true;
}

Status PlanParseError(const std::string& path, const std::string& what) {
  return Status::InvalidArgument("malformed shard plan " + path + ": " + what);
}

}  // namespace

std::string ShardPlanPath(const std::string& dir, const std::string& name) {
  return dir + "/" + name + ".plan";
}

std::string ShardSnapshotName(const std::string& name, uint32_t shard,
                              uint32_t num_shards) {
  return name + ".shard" + std::to_string(shard) + "of" + std::to_string(num_shards);
}

Status SaveShardedSnapshot(const DirectedGraph& graph, const std::string& name,
                           WeightScheme scheme, uint32_t num_shards,
                           const std::string& dir) {
  ASM_ASSIGN_OR_RETURN(const PartitionPlan plan, BuildPartitionPlan(graph, num_shards));
  const store::SnapshotStore store(dir);
  for (uint32_t k = 0; k < num_shards; ++k) {
    ASM_ASSIGN_OR_RETURN(const DirectedGraph shard, ExtractShard(graph, plan, k));
    // Shard files omit the reverse CSR: the stitched graph rebuilds it
    // anyway, so persisting K reverse copies would double the set's
    // footprint for bytes the loader never reads.
    store::SnapshotWriteOptions options;
    options.include_reverse_csr = false;
    ASM_RETURN_NOT_OK(store.Save(shard, ShardSnapshotName(name, k, num_shards), scheme,
                                 /*collections=*/{}, options));
  }
  // Plan last (shard writes above created the directory), tmp + rename so
  // a torn write never leaves a plan naming missing or stale shards.
  const std::string path = ShardPlanPath(dir, name);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::IOError("cannot write shard plan " + tmp);
    out << "ASMS-PLAN v1\n";
    out << "name " << name << "\n";
    out << "scheme " << SchemeToken(scheme) << "\n";
    out << "shards " << plan.num_shards << "\n";
    out << "nodes " << plan.num_nodes << "\n";
    out << "edges " << plan.num_edges << "\n";
    out << "graph_digest " << plan.graph_digest << "\n";
    out << "cuts";
    for (NodeId cut : plan.cuts) out << ' ' << cut;
    out << "\n";
    for (uint32_t k = 0; k < num_shards; ++k) {
      out << "shard " << k << " edges " << plan.shard_edges[k] << " digest "
          << plan.shard_digests[k] << "\n";
    }
    out.flush();
    if (!out) return Status::IOError("failed writing shard plan " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("failed renaming shard plan into place at " + path);
  }
  return Status::OK();
}

StatusOr<ShardedGraph> LoadShardedSnapshot(const std::string& dir,
                                           const std::string& name,
                                           store::SnapshotVerify verify) {
  const std::string path = ShardPlanPath(dir, name);
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("no shard plan for '" + name + "' at " + path);
  }
  std::string header;
  if (!std::getline(in, header) || header != "ASMS-PLAN v1") {
    return PlanParseError(path, "missing 'ASMS-PLAN v1' header");
  }
  auto expect = [&](const char* want) -> Status {
    std::string key;
    if (!(in >> key) || key != want) {
      return PlanParseError(path, std::string("expected '") + want + "' field");
    }
    return Status::OK();
  };
  ShardedGraph loaded;
  PartitionPlan plan;
  std::string scheme_token;
  ASM_RETURN_NOT_OK(expect("name"));
  if (!(in >> loaded.name) || loaded.name != name) {
    return PlanParseError(path, "plan names graph '" + loaded.name + "', want '" +
                                    name + "'");
  }
  ASM_RETURN_NOT_OK(expect("scheme"));
  if (!(in >> scheme_token) || !ParseSchemeToken(scheme_token, loaded.weight_scheme)) {
    return PlanParseError(path, "unknown weight scheme '" + scheme_token + "'");
  }
  ASM_RETURN_NOT_OK(expect("shards"));
  if (!(in >> plan.num_shards) || plan.num_shards == 0 ||
      plan.num_shards > kMaxShards) {
    return PlanParseError(path, "shard count outside [1, " +
                                    std::to_string(kMaxShards) + "]");
  }
  ASM_RETURN_NOT_OK(expect("nodes"));
  if (!(in >> plan.num_nodes)) return PlanParseError(path, "unreadable node count");
  ASM_RETURN_NOT_OK(expect("edges"));
  if (!(in >> plan.num_edges)) return PlanParseError(path, "unreadable edge count");
  ASM_RETURN_NOT_OK(expect("graph_digest"));
  if (!(in >> plan.graph_digest)) {
    return PlanParseError(path, "unreadable graph_digest");
  }
  ASM_RETURN_NOT_OK(expect("cuts"));
  plan.cuts.resize(size_t{plan.num_shards} + 1);
  for (NodeId& cut : plan.cuts) {
    if (!(in >> cut)) return PlanParseError(path, "unreadable cuts row");
  }
  plan.shard_edges.resize(plan.num_shards);
  plan.shard_digests.resize(plan.num_shards);
  for (uint32_t k = 0; k < plan.num_shards; ++k) {
    uint32_t index = 0;
    ASM_RETURN_NOT_OK(expect("shard"));
    if (!(in >> index) || index != k) {
      return PlanParseError(path, "shard rows out of order at row " + std::to_string(k));
    }
    ASM_RETURN_NOT_OK(expect("edges"));
    if (!(in >> plan.shard_edges[k])) {
      return PlanParseError(path, "unreadable edge count for shard " + std::to_string(k));
    }
    ASM_RETURN_NOT_OK(expect("digest"));
    if (!(in >> plan.shard_digests[k])) {
      return PlanParseError(path, "unreadable digest for shard " + std::to_string(k));
    }
  }
  {
    const Status valid = ValidatePlan(plan);
    if (!valid.ok()) return PlanParseError(path, valid.message());
  }

  // Load every shard snapshot and bind it to the plan by digest before
  // stitching — a shard file swapped in from another graph or epoch fails
  // here, not at query time.
  const store::SnapshotStore store(dir);
  auto topology = std::make_shared<ShardTopology>();
  topology->plan = plan;
  topology->shards.reserve(plan.num_shards);
  std::vector<DirectedGraph> shard_graphs;
  shard_graphs.reserve(plan.num_shards);
  for (uint32_t k = 0; k < plan.num_shards; ++k) {
    const std::string shard_name = ShardSnapshotName(name, k, plan.num_shards);
    auto snapshot = store.Load(shard_name, verify);
    if (!snapshot.ok()) return snapshot.status();
    const uint64_t digest = ForwardCsrDigest(snapshot->graph);
    if (digest != plan.shard_digests[k]) {
      return Status::InvalidArgument(
          "shard snapshot '" + shard_name + "' does not match the plan: forward-CSR "
          "digest " + std::to_string(digest) + " != planned " +
          std::to_string(plan.shard_digests[k]));
    }
    shard_graphs.push_back(snapshot->graph);
    topology->shards.push_back(
        std::make_shared<const DirectedGraph>(std::move(snapshot->graph)));
  }
  ASM_ASSIGN_OR_RETURN(DirectedGraph stitched, StitchShards(plan, shard_graphs));
  const uint64_t stitched_digest = ForwardCsrDigest(stitched);
  if (stitched_digest != plan.graph_digest) {
    return Status::InvalidArgument(
        "stitched graph digest " + std::to_string(stitched_digest) +
        " != planned graph_digest " + std::to_string(plan.graph_digest) + " for '" +
        name + "'");
  }
  loaded.graph = std::make_shared<const DirectedGraph>(std::move(stitched));
  loaded.topology = std::move(topology);
  return loaded;
}

}  // namespace asti
