#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace asti {

namespace {
// Atomic: benches flip the level from a main thread while pool/driver
// threads are logging.
std::atomic<LogLevel> g_min_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_min_level.load(std::memory_order_relaxed); }

namespace internal {

std::string FormatLogLine(LogLevel level, const std::string& message) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm utc{};
#if defined(_WIN32)
  gmtime_s(&utc, &seconds);
#else
  gmtime_r(&seconds, &utc);
#endif
  char stamp[40];
  std::snprintf(stamp, sizeof(stamp), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(millis));
  std::string line;
  line.reserve(message.size() + 48);
  line += "[";
  line += LevelName(level);
  line += " ";
  line += stamp;
  line += "] ";
  line += message;
  line += "\n";
  return line;
}

void EmitLog(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;
  // Build the complete line first, then emit it in ONE guarded write:
  // concurrent EmitLog calls used to interleave partial lines on stderr
  // (level prefix from one thread, payload from another). The mutex
  // serializes whole lines; the single fwrite keeps the line atomic even
  // against non-EmitLog stderr writers on platforms where stdio locking
  // is per-call.
  static std::mutex emit_mutex;
  const std::string line = FormatLogLine(level, message);
  std::lock_guard<std::mutex> lock(emit_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace internal
}  // namespace asti
