// Deterministic, splittable pseudo-random number generation.
//
// All randomized components in the library take an explicit Rng&, so every
// experiment is reproducible bit-for-bit from a single seed. The generator
// is xoshiro256** (Blackman & Vigna), seeded through SplitMix64 — the same
// construction used by several storage engines for fast non-cryptographic
// randomness.

#pragma once

#include <cstdint>

#include "util/check.h"

namespace asti {

namespace internal {

/// SplitMix64 step; used to expand a 64-bit seed into generator state.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t RotLeft(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace internal

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) {
    uint64_t sm = seed;
    for (auto& word : state_) word = internal::SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  uint64_t operator()() {
    const uint64_t result = internal::RotLeft(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = internal::RotLeft(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound). bound must be positive. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound) {
    ASM_DCHECK(bound > 0);
    // 128-bit multiply-based unbiased bounded generation.
    uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Derives an independent generator; used to hand child components their
  /// own deterministic stream (split-by-draw, standard for xoshiro family).
  /// Advances this generator by one draw.
  Rng Split() { return Rng((*this)()); }

  /// Derives the i-th child stream *without* advancing this generator:
  /// a pure function of (current state, i), so any number of children can
  /// be materialized in any order — the facility behind deterministic
  /// multi-threaded sampling (each work item owns stream Split(i)
  /// regardless of which thread executes it). Distinct i give streams that
  /// pass the same independence smoke tests as distinct seeds: the child
  /// seed goes through two SplitMix64 finalizer rounds, and the Rng
  /// constructor expands it through four more.
  Rng Split(uint64_t i) const {
    uint64_t s = state_[0] ^ internal::RotLeft(state_[1], 13) ^
                 internal::RotLeft(state_[2], 29) ^ internal::RotLeft(state_[3], 43);
    s += 0x9e3779b97f4a7c15ULL * (i + 1);
    uint64_t child_seed = internal::SplitMix64(s) ^ i;
    return Rng(internal::SplitMix64(child_seed));
  }

 private:
  uint64_t state_[4];
};

}  // namespace asti
