// Wall-clock timer; used by the api/ serving layer for selection-cost
// accounting and by the bench harness for instrumentation.

#pragma once

#include <chrono>

namespace asti {

/// Steady-clock stopwatch; starts at construction.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace asti
