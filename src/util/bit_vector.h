// A fixed-size bit vector with a generation-stamped "epoch reset" variant.
//
// Reverse sampling generates millions of short BFS traversals; clearing a
// visited-bitmap per traversal would dominate runtime. EpochVisitedSet
// instead stamps each slot with the traversal epoch, making Reset() O(1).

#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace asti {

/// Plain dynamic bitset sized at construction.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(size_t size, bool value = false)
      : size_(size), words_((size + 63) / 64, value ? ~0ULL : 0ULL) {}

  size_t size() const { return size_; }

  bool Get(size_t i) const {
    ASM_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void Set(size_t i) {
    ASM_DCHECK(i < size_);
    words_[i >> 6] |= 1ULL << (i & 63);
  }

  void Clear(size_t i) {
    ASM_DCHECK(i < size_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  void Assign(size_t i, bool value) { value ? Set(i) : Clear(i); }

  /// Number of set bits.
  size_t Count() const {
    size_t total = 0;
    for (uint64_t w : words_) total += static_cast<size_t>(__builtin_popcountll(w));
    return total;
  }

  void Reset() { std::fill(words_.begin(), words_.end(), 0ULL); }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

/// Visited-set with O(1) reset via epoch stamping.
class EpochVisitedSet {
 public:
  EpochVisitedSet() = default;
  explicit EpochVisitedSet(size_t size) : stamps_(size, 0) {}

  size_t size() const { return stamps_.size(); }

  /// Starts a new traversal; all slots become unvisited.
  void Reset() {
    ++epoch_;
    if (epoch_ == 0) {  // wrapped: do the rare full clear
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
  }

  bool Visited(size_t i) const {
    ASM_DCHECK(i < stamps_.size());
    return stamps_[i] == epoch_;
  }

  /// Marks i visited; returns true if it was not visited before.
  bool MarkVisited(size_t i) {
    ASM_DCHECK(i < stamps_.size());
    if (stamps_[i] == epoch_) return false;
    stamps_[i] = epoch_;
    return true;
  }

 private:
  std::vector<uint32_t> stamps_;
  uint32_t epoch_ = 0;
};

}  // namespace asti
