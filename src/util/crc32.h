// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-section
// checksum of the snapshot store. Hand-rolled table implementation so the
// library stays dependency-free; matches zlib's crc32() bit for bit, which
// keeps snapshot files checkable with standard tooling.

#pragma once

#include <cstddef>
#include <cstdint>

namespace asti {

/// CRC-32 of `bytes` bytes at `data`. Chain blocks by passing the previous
/// return value as `seed` (seed 0 starts a fresh checksum, like zlib).
uint32_t Crc32(const void* data, size_t bytes, uint32_t seed = 0);

}  // namespace asti
