// Cooperative cancellation and deadlines for long-running requests.
//
// Sampling and coverage work cannot be interrupted preemptively without
// poisoning shared state (a pool worker holds staging buffers mid-merge),
// so cancellation is cooperative: the serving layer polls a cheap stop
// condition at natural pause points — RR-generation chunk boundaries,
// greedy-coverage picks, doubling iterations, adaptive rounds — and
// unwinds without recording partial results. Two pieces:
//
//   * CancelToken — the client-facing handle. One atomic flag; a client
//     (or the engine's admission layer) flips it from any thread, every
//     worker serving the request observes it on its next poll. A token
//     may be shared by several requests (cancel a whole session at once).
//   * CancelScope — the per-execution stop condition: an optional token
//     plus an optional absolute steady-clock deadline, combined into one
//     ShouldStop() poll and one ToStatus() verdict (Cancelled wins over
//     DeadlineExceeded when both hold; a client cancel is an explicit act,
//     the deadline is a default).
//
// Polling cost is one relaxed atomic load, plus one steady_clock read when
// a deadline is set — cheap enough for every chunk/pick boundary. A
// completed request's result is bit-identical with or without a scope
// attached: the polls never touch RNG streams, work partitioning, or
// merge order (determinism contract, src/parallel/README.md).

#pragma once

#include <atomic>
#include <chrono>

#include "util/status.h"

namespace asti {

/// Client-side cancellation handle. Thread-safe; must outlive every
/// request it is attached to (the engine polls it until the request's
/// future resolves).
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Idempotent; callable from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  bool IsCancelled() const { return cancelled_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// The stop condition one request execution polls: client token and/or
/// absolute deadline. Value type, safe to poll concurrently from many
/// workers; the referenced token (if any) is not owned.
class CancelScope {
 public:
  using Clock = std::chrono::steady_clock;

  /// Sentinel for "no deadline".
  static constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

  CancelScope() = default;
  CancelScope(const CancelToken* token, Clock::time_point deadline)
      : token_(token), deadline_(deadline) {}

  bool HasDeadline() const { return deadline_ != kNoDeadline; }

  /// True once the request should unwind: token cancelled or deadline
  /// passed. Monotone — once true, stays true.
  bool ShouldStop() const {
    if (token_ != nullptr && token_->IsCancelled()) return true;
    return HasDeadline() && Clock::now() >= deadline_;
  }

  /// The verdict for a stopped request: Cancelled if the token fired
  /// (explicit client action wins), DeadlineExceeded if only the deadline
  /// passed, OK when ShouldStop() is false.
  Status ToStatus() const {
    if (token_ != nullptr && token_->IsCancelled()) {
      return Status::Cancelled("request cancelled by client");
    }
    if (HasDeadline() && Clock::now() >= deadline_) {
      return Status::DeadlineExceeded("request deadline exceeded");
    }
    return Status::OK();
  }

 private:
  const CancelToken* token_ = nullptr;  // not owned
  Clock::time_point deadline_ = kNoDeadline;
};

/// Null-tolerant poll — the one spelling every optional-scope call site
/// (selector loops, samplers, coverage passes) uses, so a future change
/// to the poll itself happens in one place.
inline bool Fired(const CancelScope* scope) {
  return scope != nullptr && scope->ShouldStop();
}

/// Deadline `seconds` from now (negative = already expired); the helper
/// request builders use.
inline CancelScope::Clock::time_point DeadlineAfter(double seconds) {
  return CancelScope::Clock::now() +
         std::chrono::duration_cast<CancelScope::Clock::duration>(
             std::chrono::duration<double>(seconds));
}

}  // namespace asti
