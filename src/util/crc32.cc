#include "util/crc32.h"

#include <array>

namespace asti {

namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPolynomial : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32(const void* data, size_t bytes, uint32_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < bytes; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace asti
