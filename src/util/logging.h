// Minimal leveled logging to stderr. Benches use it for progress lines;
// library code logs only at kWarning and above.

#pragma once

#include <sstream>
#include <string>

namespace asti {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that will be emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Builds the complete log line — "[LEVEL yyyy-mm-ddThh:mm:ss.mmmZ] message\n".
/// Exposed so tests can pin the format without scraping stderr.
std::string FormatLogLine(LogLevel level, const std::string& message);

/// Formats and writes one whole line to stderr under an internal mutex, so
/// concurrent log statements never interleave mid-line.
void EmitLog(LogLevel level, const std::string& message);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { EmitLog(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace asti

#define ASM_LOG(level) ::asti::internal::LogMessage(::asti::LogLevel::level)
