// Invariant-checking macros, modeled after the CHECK family used across
// database engines (Arrow's DCHECK, RocksDB's assert conventions).
//
// ASM_CHECK fires in all build types: internal invariants of the sampling
// and selection machinery are cheap relative to graph traversal, and a
// violated invariant silently corrupts approximation guarantees.
// ASM_DCHECK compiles out in release builds and may guard O(n) validation.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace asti {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "ASM_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

// Stream collector so call sites can write ASM_CHECK(x) << "context " << v;
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() { CheckFailed(file_, line_, expr_, stream_.str()); }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace asti

#define ASM_CHECK(condition)                                                      \
  if (condition) {                                                               \
  } else                                                                          \
    ::asti::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define ASM_CHECK_EQ(a, b) ASM_CHECK((a) == (b))
#define ASM_CHECK_NE(a, b) ASM_CHECK((a) != (b))
#define ASM_CHECK_LT(a, b) ASM_CHECK((a) < (b))
#define ASM_CHECK_LE(a, b) ASM_CHECK((a) <= (b))
#define ASM_CHECK_GT(a, b) ASM_CHECK((a) > (b))
#define ASM_CHECK_GE(a, b) ASM_CHECK((a) >= (b))

#ifdef NDEBUG
#define ASM_DCHECK(condition) \
  while (false) ASM_CHECK(condition)
#else
#define ASM_DCHECK(condition) ASM_CHECK(condition)
#endif
