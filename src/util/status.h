// Arrow-style Status / StatusOr error handling for fallible boundaries
// (file I/O, configuration parsing). Internal algorithmic code uses
// ASM_CHECK instead; see DESIGN.md §4.

#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace asti {

/// Coarse error taxonomy; mirrors the categories database engines expose.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kIOError,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kResourceExhausted,
  kCancelled,
  kDeadlineExceeded,
};

/// Returns a short human-readable name for a status code ("OK", "IOError"...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error result for operations that return no value.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Dereferencing an errored
/// StatusOr aborts via ASM_CHECK.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : payload_(std::move(value)) {}       // NOLINT implicit
  StatusOr(Status status) : payload_(std::move(status)) {  // NOLINT implicit
    ASM_CHECK(!std::get<Status>(payload_).ok())
        << "StatusOr constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status ok_status = Status::OK();
    return ok() ? ok_status : std::get<Status>(payload_);
  }

  T& value() & {
    ASM_CHECK(ok()) << status().ToString();
    return std::get<T>(payload_);
  }
  const T& value() const& {
    ASM_CHECK(ok()) << status().ToString();
    return std::get<T>(payload_);
  }
  T&& value() && {
    ASM_CHECK(ok()) << status().ToString();
    return std::get<T>(std::move(payload_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace asti

/// Propagates a non-OK status to the caller, Arrow-style.
#define ASM_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::asti::Status _st = (expr);           \
    if (!_st.ok()) return _st;             \
  } while (false)

#define ASM_STATUS_CONCAT_INNER_(a, b) a##b
#define ASM_STATUS_CONCAT_(a, b) ASM_STATUS_CONCAT_INNER_(a, b)

/// Evaluates a StatusOr expression; on error returns its Status, otherwise
/// moves the value into `lhs` (which may be a declaration):
///   ASM_ASSIGN_OR_RETURN(const size_t index, FindSection(type));
#define ASM_ASSIGN_OR_RETURN(lhs, expr)                                     \
  ASM_ASSIGN_OR_RETURN_IMPL_(ASM_STATUS_CONCAT_(_status_or_, __LINE__), lhs, expr)
#define ASM_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                               \
  if (!var.ok()) return var.status();              \
  lhs = std::move(var).value()
