#include "parallel/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace asti {

namespace {
// A worker count above this is always a caller bug (e.g. a negative flag
// value cast to size_t), not a real machine.
constexpr size_t kMaxThreads = 4096;
}  // namespace

TaskGroup::~TaskGroup() {
  // A group destroyed with tasks in flight would leave workers decrementing
  // a dead counter; the owner must Wait() first.
  std::unique_lock<std::mutex> lock(mutex_);
  ASM_CHECK(pending_ == 0) << "TaskGroup destroyed with tasks in flight";
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return pending_ == 0; });
}

void TaskGroup::Add() {
  std::unique_lock<std::mutex> lock(mutex_);
  ++pending_;
}

void TaskGroup::Finish() {
  std::unique_lock<std::mutex> lock(mutex_);
  ASM_CHECK(pending_ > 0);
  if (--pending_ == 0) done_.notify_all();
}

size_t ResolveThreadCount(size_t requested) {
  if (requested == 0) {
    requested = std::max(1u, std::thread::hardware_concurrency());
  }
  ASM_CHECK(requested <= kMaxThreads)
      << "implausible thread count " << requested;
  return requested;
}

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = ResolveThreadCount(num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(TaskGroup& group, std::function<void()> task) {
  ASM_CHECK(task != nullptr);
  group.Add();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.emplace_back(std::move(task), &group);
  }
  task_ready_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    TaskGroup* group = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front().first);
      group = queue_.front().second;
      queue_.pop_front();
    }
    task();
    group->Finish();
  }
}

void ThreadPool::ParallelFor(
    size_t count, const std::function<void(size_t chunk, size_t begin, size_t end)>& fn) {
  if (count == 0) return;
  // A private group per call: two threads running ParallelFor on the same
  // pool each block until exactly their own chunks finish, even while the
  // pool also holds unrelated (possibly long-blocking) tasks.
  TaskGroup group;
  const size_t chunks = std::min(count, NumThreads());
  const size_t chunk_size = (count + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * chunk_size;
    if (begin >= count) break;  // ceil division can leave trailing chunks empty
    const size_t end = std::min(count, begin + chunk_size);
    Submit(group, [&fn, c, begin, end] { fn(c, begin, end); });
  }
  group.Wait();
}

}  // namespace asti
