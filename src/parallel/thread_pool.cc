#include "parallel/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace asti {

namespace {
// A worker count above this is always a caller bug (e.g. a negative flag
// value cast to size_t), not a real machine.
constexpr size_t kMaxThreads = 4096;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  ASM_CHECK(num_threads <= kMaxThreads)
      << "ThreadPool: implausible num_threads " << num_threads;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  ASM_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++unfinished_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return unfinished_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--unfinished_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    size_t count, const std::function<void(size_t chunk, size_t begin, size_t end)>& fn) {
  if (count == 0) return;
  const size_t chunks = std::min(count, NumThreads());
  const size_t chunk_size = (count + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * chunk_size;
    if (begin >= count) break;  // ceil division can leave trailing chunks empty
    const size_t end = std::min(count, begin + chunk_size);
    Submit([&fn, c, begin, end] { fn(c, begin, end); });
  }
  Wait();
}

}  // namespace asti
