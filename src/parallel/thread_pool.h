// A small reusable worker pool with a task-batch / ParallelFor API.
//
// The execution substrate of the parallel sampling engine (and of later
// subsystems: sharded graph partitions, async batch serving). Workers are
// spawned once and reused across batches, so per-batch overhead is one
// mutex round-trip per task rather than a thread spawn. Scheduling is
// deliberately simple — contiguous static chunks — because the engine's
// determinism contract ties work-item index (not thread) to RNG stream and
// output slot; see src/parallel/README.md.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace asti {

/// Fixed-size pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means one per hardware thread.
  explicit ThreadPool(size_t num_threads = 0);

  /// Joins all workers. Pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t NumThreads() const { return workers_.size(); }

  /// Enqueues one task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// Blocking parallel loop over [0, count): splits the range into at most
  /// NumThreads() contiguous chunks and invokes fn(chunk, begin, end) for
  /// each. Chunk boundaries depend only on (count, NumThreads()), and chunk
  /// c always covers indices before chunk c+1 — the property deterministic
  /// index-ordered merges rely on. fn must be safe to call concurrently for
  /// distinct chunks.
  void ParallelFor(size_t count,
                   const std::function<void(size_t chunk, size_t begin, size_t end)>& fn);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t unfinished_ = 0;  // queued + running
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace asti
