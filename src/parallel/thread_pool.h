// A small reusable worker pool with a task-batch / ParallelFor API.
//
// The execution substrate of the parallel sampling engine (and of later
// subsystems: sharded graph partitions, async batch serving). Workers are
// spawned once and reused across batches, so per-batch overhead is one
// mutex round-trip per task rather than a thread spawn. Scheduling is
// deliberately simple — contiguous static chunks — because the engine's
// determinism contract ties work-item index (not thread) to RNG stream and
// output slot; see src/parallel/README.md.
//
// Completion is tracked per TaskGroup, not per pool: callers sharing one
// pool (sampler + coverage engine, or concurrent serving requests) each
// wait on their own batch, never on each other's tasks.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace asti {

class ThreadPool;

/// Resolves a worker/driver-count knob: 0 = one per hardware thread
/// (min 1), k = exactly k. ASM_CHECKs implausible counts — the shared
/// guard for ThreadPool workers and the SeedMinEngine driver pool, and
/// the shield against size_t wraparound from negative CLI flags.
size_t ResolveThreadCount(size_t requested);

/// Completion tracker for one batch of tasks. Several groups can be in
/// flight on the same ThreadPool; Wait() blocks only on tasks submitted
/// against THIS group, so independent callers sharing a pool never wait on
/// (or wake for) each other's work. Must outlive its in-flight tasks —
/// stack allocation around a submit-then-wait sequence is the intended use.
class TaskGroup {
 public:
  TaskGroup() = default;
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Blocks until every task submitted against this group has finished.
  void Wait();

 private:
  friend class ThreadPool;
  void Add();     // one more task in flight
  void Finish();  // one task done; wakes waiters at zero

  std::mutex mutex_;
  std::condition_variable done_;
  size_t pending_ = 0;
};

/// Fixed-size pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means one per hardware thread.
  explicit ThreadPool(size_t num_threads = 0);

  /// Joins all workers. Pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t NumThreads() const { return workers_.size(); }

  /// Enqueues one task against `group`. Tasks must not throw.
  void Submit(TaskGroup& group, std::function<void()> task);

  /// Enqueues one task against the pool-wide default group. Convenience for
  /// single-caller pools; concurrent callers should own a TaskGroup each.
  void Submit(std::function<void()> task) { Submit(default_group_, std::move(task)); }

  /// Blocks until every task submitted via the single-argument Submit has
  /// finished. Tasks submitted against explicit TaskGroups are not waited
  /// for — use TaskGroup::Wait for those.
  void Wait() { default_group_.Wait(); }

  /// Blocking parallel loop over [0, count): splits the range into at most
  /// NumThreads() contiguous chunks and invokes fn(chunk, begin, end) for
  /// each. Chunk boundaries depend only on (count, NumThreads()), and chunk
  /// c always covers indices before chunk c+1 — the property deterministic
  /// index-ordered merges rely on. fn must be safe to call concurrently for
  /// distinct chunks. Waits on a private TaskGroup, so concurrent
  /// ParallelFor calls from different threads are isolated from each other.
  void ParallelFor(size_t count,
                   const std::function<void(size_t chunk, size_t begin, size_t end)>& fn);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::deque<std::pair<std::function<void()>, TaskGroup*>> queue_;
  bool stopping_ = false;
  TaskGroup default_group_;
  std::vector<std::thread> workers_;
};

}  // namespace asti
