#include "parallel/parallel_sampler.h"

namespace asti {

ParallelRrSampler::ParallelRrSampler(const DirectedGraph& graph, DiffusionModel model,
                                     ThreadPool& pool, const CancelScope* cancel,
                                     RequestProfile* profile)
    : pool_(&pool), cancel_(cancel), profile_(profile) {
  workers_.reserve(pool.NumThreads());
  for (size_t i = 0; i < pool.NumThreads(); ++i) {
    workers_.push_back(std::make_unique<Worker>(graph, model));
  }
}

template <class GenerateOne>
void ParallelRrSampler::RunBatch(size_t count, RrCollection& out, Rng& rng,
                                 GenerateOne&& generate_one) {
  if (count == 0) return;
  // Profiling reads the clock only at batch boundaries; generation itself
  // never observes the profile, so sampled content is unchanged by it.
  PhaseSpan span(profile_, RequestPhase::kSampling);
  // One draw per batch: successive batches get fresh stream families while
  // the caller's consumption stays independent of count and thread count.
  const Rng batch_base = rng.Split();
  for (auto& worker : workers_) worker->buffer.Clear();
  // Cancellation polls every kCancelStride sets (and at chunk entry): one
  // atomic load plus a clock read when a deadline is set, amortized over
  // ~µs-scale traversals. A fired scope makes each chunk stop generating;
  // the partial staging buffers still merge (structurally valid sets), and
  // the caller unwinds past the doomed collection.
  constexpr size_t kCancelStride = 64;
  pool_->ParallelFor(count, [&](size_t chunk, size_t begin, size_t end) {
    Worker& worker = *workers_[chunk];
    for (size_t i = begin; i < end; ++i) {
      if ((i - begin) % kCancelStride == 0 && Fired(cancel_)) return;
      Rng set_rng = batch_base.Split(i);
      generate_one(worker, set_rng);
    }
  });
  MergeInto(out);
}

void ParallelRrSampler::MergeInto(RrCollection& out) {
  size_t total_sets = 0;
  size_t total_entries = 0;
  for (const auto& worker : workers_) {
    total_sets += worker->buffer.NumSets();
    total_entries += worker->buffer.TotalEntries();
  }
  out.Reserve(total_sets, total_entries);
  for (auto& worker : workers_) {
    out.AppendBatch(worker->buffer);
    cost_.nodes_visited += worker->rr.cost().nodes_visited + worker->mrr.cost().nodes_visited;
    cost_.edges_examined += worker->rr.cost().edges_examined + worker->mrr.cost().edges_examined;
    worker->rr.ResetCost();
    worker->mrr.ResetCost();
  }
  NoteSampling(profile_, total_sets, out.MemoryBytes());
}

template <class GenerateOne>
void ParallelRrSampler::RunIndexed(size_t first_index, size_t count, RrCollection& out,
                                   const Rng& base, GenerateOne&& generate_one) {
  if (count == 0) return;
  PhaseSpan span(profile_, RequestPhase::kSampling);
  for (auto& worker : workers_) worker->buffer.Clear();
  // Cancellation semantics match RunBatch; here a fired scope leaves the
  // merged output short of `count`, which the shared-collection extender
  // detects and discards (global indices must stay hole-free).
  constexpr size_t kCancelStride = 64;
  pool_->ParallelFor(count, [&](size_t chunk, size_t begin, size_t end) {
    Worker& worker = *workers_[chunk];
    for (size_t i = begin; i < end; ++i) {
      if ((i - begin) % kCancelStride == 0 && Fired(cancel_)) return;
      Rng set_rng = base.Split(first_index + i);
      generate_one(worker, set_rng);
    }
  });
  MergeInto(out);
}

void ParallelRrSampler::GenerateBatch(const std::vector<NodeId>& candidates,
                                      const BitVector* active, size_t count,
                                      RrCollection& out, Rng& rng) {
  RunBatch(count, out, rng, [&](Worker& worker, Rng& set_rng) {
    worker.rr.Generate(candidates, active, worker.buffer, set_rng);
  });
}

void ParallelRrSampler::GenerateMrrBatch(const std::vector<NodeId>& candidates,
                                         const BitVector* active,
                                         const RootSizeSampler& root_size, size_t count,
                                         RrCollection& out, Rng& rng) {
  RunBatch(count, out, rng, [&](Worker& worker, Rng& set_rng) {
    const NodeId num_roots = root_size.Sample(set_rng);
    worker.mrr.Generate(candidates, active, num_roots, worker.buffer, set_rng);
  });
}

void ParallelRrSampler::GenerateIndexed(const std::vector<NodeId>& candidates,
                                        const BitVector* active, size_t first_index,
                                        size_t count, RrCollection& out, const Rng& base) {
  RunIndexed(first_index, count, out, base, [&](Worker& worker, Rng& set_rng) {
    worker.rr.Generate(candidates, active, worker.buffer, set_rng);
  });
}

void ParallelRrSampler::GenerateMrrIndexed(const std::vector<NodeId>& candidates,
                                           const BitVector* active,
                                           const RootSizeSampler& root_size,
                                           size_t first_index, size_t count,
                                           RrCollection& out, const Rng& base) {
  RunIndexed(first_index, count, out, base, [&](Worker& worker, Rng& set_rng) {
    const NodeId num_roots = root_size.Sample(set_rng);
    worker.mrr.Generate(candidates, active, num_roots, worker.buffer, set_rng);
  });
}

}  // namespace asti
