// Multi-threaded (m)RR-set batch generation with a deterministic result.
//
// Each set in a batch owns an RNG stream derived from the caller's Rng by
// index — batch_base.Split(i) — so a set's content is a pure function of
// (caller seed, batch number, set index), independent of the thread that
// generates it and of the pool size. Workers traverse into private
// RrSetBuffers (chunk c of the ParallelFor covers a contiguous index
// range), and the buffers are merged into the shared RrCollection in chunk
// order, which is index order. The collection produced by a batch is
// therefore bit-identical for ANY thread count, and identical to a
// sequential RrSampler driven with the same per-set Split streams.
//
// Traversal-cost counters accumulate per worker and are merged on join, so
// SamplerCost totals stay exact for the Lemma 3.8/3.9 benches.

#pragma once

#include <memory>
#include <vector>

#include "diffusion/model.h"
#include "graph/graph.h"
#include "obs/span.h"
#include "parallel/thread_pool.h"
#include "sampling/mrr_set.h"
#include "sampling/root_size.h"
#include "sampling/rr_buffer.h"
#include "sampling/rr_collection.h"
#include "sampling/rr_set.h"
#include "util/bit_vector.h"
#include "util/cancellation.h"
#include "util/rng.h"

namespace asti {

/// Batch sampler fanning RR/mRR generation across a ThreadPool.
class ParallelRrSampler {
 public:
  /// The graph and pool must outlive the sampler. Worker-local scratch
  /// (visited sets, staging buffers) is allocated once per pool thread.
  /// A non-null `cancel` is polled at generation-stride boundaries inside
  /// every batch: once it fires, workers stop traversing and the batch
  /// merges whatever was staged (the caller unwinds and discards it).
  /// Batches that complete without the scope firing are bit-identical to
  /// an uncancellable run.
  /// A non-null `profile` (not owned) accrues sampling wall time, sets
  /// generated, and collection footprint per batch; it never feeds back
  /// into generation, so results are identical with or without it.
  ParallelRrSampler(const DirectedGraph& graph, DiffusionModel model, ThreadPool& pool,
                    const CancelScope* cancel = nullptr,
                    RequestProfile* profile = nullptr);

  /// Cumulative traversal cost across all batches since construction /
  /// the last ResetCost(); exact (merged from workers after every batch).
  const SamplerCost& cost() const { return cost_; }
  void ResetCost() { cost_ = SamplerCost{}; }

  /// Appends `count` single-root RR-sets to `out`. Advances `rng` by one
  /// draw (the batch stream split), regardless of count or thread count.
  void GenerateBatch(const std::vector<NodeId>& candidates, const BitVector* active,
                     size_t count, RrCollection& out, Rng& rng);

  /// Appends `count` mRR-sets to `out`; set i draws its root count from
  /// `root_size` out of its own stream before traversing, mirroring the
  /// sequential sample-k-then-generate order. Advances `rng` by one draw.
  void GenerateMrrBatch(const std::vector<NodeId>& candidates, const BitVector* active,
                        const RootSizeSampler& root_size, size_t count,
                        RrCollection& out, Rng& rng);

  // --- Index-keyed generation (shared sampler cache) -----------------------
  // Set first_index + i draws its stream directly from
  // base.Split(first_index + i): no batch split, no draws consumed from any
  // caller RNG. Content of a global index is therefore a pure function of
  // (base, index) — independent of request history, extension batching, and
  // thread count — which is the mechanism behind the cached-vs-fresh
  // bit-identity contract (see sampling/sampler_cache.h).

  /// Appends single-root RR-sets for global indices
  /// [first_index, first_index + count) to `out`.
  void GenerateIndexed(const std::vector<NodeId>& candidates, const BitVector* active,
                       size_t first_index, size_t count, RrCollection& out,
                       const Rng& base);

  /// mRR variant; set i samples its root count from `root_size` out of its
  /// own indexed stream before traversing.
  void GenerateMrrIndexed(const std::vector<NodeId>& candidates, const BitVector* active,
                          const RootSizeSampler& root_size, size_t first_index,
                          size_t count, RrCollection& out, const Rng& base);

 private:
  // Scratch owned by ParallelFor chunk index (not OS thread): chunk c
  // writes only to workers_[c], keeping the merge order deterministic.
  struct Worker {
    Worker(const DirectedGraph& graph, DiffusionModel model)
        : rr(graph, model), mrr(graph, model) {}
    RrSampler rr;
    MrrSampler mrr;
    RrSetBuffer buffer;
  };

  // Fans `count` sets across the pool via `generate_one(worker, set_rng)`,
  // then merges buffers and costs.
  template <class GenerateOne>
  void RunBatch(size_t count, RrCollection& out, Rng& rng, GenerateOne&& generate_one);

  // Same fan-out with per-set streams base.Split(first_index + i).
  template <class GenerateOne>
  void RunIndexed(size_t first_index, size_t count, RrCollection& out, const Rng& base,
                  GenerateOne&& generate_one);

  void MergeInto(RrCollection& out);

  ThreadPool* pool_;
  const CancelScope* cancel_;  // not owned; may be null
  RequestProfile* profile_;    // not owned; may be null
  std::vector<std::unique_ptr<Worker>> workers_;
  SamplerCost cost_;
};

/// Owns the pool + batch sampler pair behind a num_threads knob: engaged
/// (non-null get()) when num_threads != 1, a no-op handle otherwise. The
/// one place the engagement policy lives for every selector/baseline.
///
/// When a non-null `shared_pool` is supplied it overrides num_threads: the
/// engine runs its batches on that externally owned pool instead of
/// spawning a private one (the SeedMinEngine serving mode — many selectors
/// multiplexed on one resident pool, isolated by per-batch TaskGroups).
class ParallelEngine {
 public:
  /// `cancel` (optional, not owned) is forwarded to the batch sampler so
  /// in-flight generation aborts at stride boundaries once it fires;
  /// `profile` (optional, not owned) likewise, for sampling-phase
  /// accounting.
  ParallelEngine(const DirectedGraph& graph, DiffusionModel model, size_t num_threads,
                 ThreadPool* shared_pool = nullptr, const CancelScope* cancel = nullptr,
                 RequestProfile* profile = nullptr)
      : shared_pool_(shared_pool) {
    if (shared_pool_ != nullptr) {
      sampler_ = std::make_unique<ParallelRrSampler>(graph, model, *shared_pool_, cancel,
                                                     profile);
    } else if (num_threads != 1) {
      pool_ = std::make_unique<ThreadPool>(num_threads);
      sampler_ =
          std::make_unique<ParallelRrSampler>(graph, model, *pool_, cancel, profile);
    }
  }

  /// The batch sampler, or nullptr when running sequentially.
  ParallelRrSampler* get() { return sampler_.get(); }

  /// The worker pool (owned or shared), or nullptr when running
  /// sequentially. Coverage solvers reuse this pool (one pool per selector,
  /// never a second one); per-batch TaskGroup tracking keeps concurrent
  /// users isolated.
  ThreadPool* pool() { return shared_pool_ != nullptr ? shared_pool_ : pool_.get(); }

 private:
  ThreadPool* shared_pool_ = nullptr;  // not owned
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ParallelRrSampler> sampler_;
};

}  // namespace asti
