#include "benchutil/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace asti {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  ASM_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> row) {
  ASM_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::Print(std::ostream& out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      out << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(header_);
  size_t total = header_.size() - 1;
  for (size_t w : widths) total += w + 1;
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string FormatCount(double value) {
  std::ostringstream out;
  out << std::setprecision(3);
  if (value >= 1e6) {
    out << value / 1e6 << "M";
  } else if (value >= 1e3) {
    out << value / 1e3 << "K";
  } else {
    out << value;
  }
  return out.str();
}

}  // namespace asti
