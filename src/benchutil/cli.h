// Minimal flag parsing for bench/example binaries, plus environment
// overrides shared by the whole harness (ASM_BENCH_SCALE,
// ASM_BENCH_REALIZATIONS, ASM_BENCH_THREADS) so
// `for b in build/bench/*; do $b; done` can be globally scaled without
// editing code.

#pragma once

#include <map>
#include <string>

namespace asti {

/// Parsed --key=value / --key value / --flag command-line options.
class CommandLine {
 public:
  CommandLine(int argc, const char* const* argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key, const std::string& fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Environment variable as double, or fallback when unset/invalid.
double EnvDouble(const char* name, double fallback);

/// Environment variable as non-negative integer, or fallback.
size_t EnvSize(const char* name, size_t fallback);

/// Sampling worker count for a bench binary: ASM_BENCH_THREADS env wins,
/// then the --threads flag, then `fallback` (1 = sequential, 0 = all
/// hardware threads).
size_t NumThreadsOverride(const CommandLine& cli, size_t fallback = 1);

}  // namespace asti
