// Minimal flag parsing for bench/example binaries, plus environment
// overrides shared by the whole harness (ASM_BENCH_SCALE,
// ASM_BENCH_REALIZATIONS, ASM_BENCH_THREADS) so
// `for b in build/bench/*; do $b; done` can be globally scaled without
// editing code.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace asti {

struct SolveRequest;  // api/request.h; full include only in cli.cc

/// Parsed --key=value / --key value / --flag command-line options.
class CommandLine {
 public:
  CommandLine(int argc, const char* const* argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key, const std::string& fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Environment variable as double, or fallback when unset/invalid.
double EnvDouble(const char* name, double fallback);

/// Environment variable as non-negative integer, or fallback.
size_t EnvSize(const char* name, size_t fallback);

/// Sampling worker count for a bench binary: ASM_BENCH_THREADS env wins,
/// then the --threads flag, then `fallback` (1 = sequential, 0 = all
/// hardware threads).
size_t NumThreadsOverride(const CommandLine& cli, size_t fallback = 1);

/// Applies the request-level standard overrides to a SolveRequest in
/// place: --epsilon, --seed, and --realizations (env
/// ASM_BENCH_REALIZATIONS wins over the flag). One struct carries the
/// knobs every harness used to re-thread per algorithm.
void ApplyRequestOverrides(const CommandLine& cli, SolveRequest& request);

/// Parses a comma-separated count list ("1,2,4,8") for sweep flags like
/// --threads / --clients. Crashes with a message naming `flag` on
/// non-numeric tokens, an empty list, or counts below `min_value`.
std::vector<size_t> ParseSizeList(const std::string& spec, const char* flag,
                                  size_t min_value = 0);

/// Parses a comma-separated name list ("nethept,epinions") for routing
/// flags like --graphs. Skips empty tokens; crashes with a message naming
/// `flag` when the list ends up empty.
std::vector<std::string> ParseNameList(const std::string& spec, const char* flag);

/// The graph-routing flag triple shared by asm_tool and the benches:
/// which graph a single-target verb works on, which set of graphs a
/// multi-tenant phase routes across, and how many shards to partition
/// into. Parsed in ONE place (ParseGraphFlags) so the tools cannot drift.
struct GraphFlagSelection {
  /// --graph: primary target (defaults to the first of `graphs`).
  std::string graph;
  /// --graphs: comma-separated routing set; always contains `graph`.
  std::vector<std::string> graphs;
  /// --shards: partition count for sharded serving; >= 1 (1 = unsharded).
  uint32_t shards = 1;
};

/// Parses --graph/--graphs/--shards with the shared semantics above.
/// Crashes with a flag-naming message on an empty --graphs list or a
/// --shards value below 1.
GraphFlagSelection ParseGraphFlags(const CommandLine& cli,
                                   const std::string& default_graph,
                                   const std::string& default_graphs = "");

}  // namespace asti
