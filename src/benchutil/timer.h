// Legacy spelling: WallTimer moved to util/timer.h so the api/ layer can
// use it without depending on bench scaffolding.

#pragma once

#include "util/timer.h"  // IWYU pragma: export
