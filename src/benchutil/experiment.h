// Shared experiment runner behind every figure/table harness.
//
// One "cell" of the paper's plots is (dataset, model, η, algorithm)
// averaged over R hidden realizations. RunCell executes exactly that:
// adaptive algorithms re-run their select-observe loop per realization;
// ATEUC selects once and is evaluated on the same realizations. The R
// hidden realizations are derived from the run seed only, so every
// algorithm faces identical worlds (the paper's §6 protocol).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/trace.h"
#include "diffusion/model.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace asti {

/// Algorithms of the paper's evaluation (§6.1) plus the extra baselines.
enum class AlgorithmId {
  kAsti,      // ASTI = TRIM (batch 1)
  kAsti2,     // ASTI-2 = TRIM-B, b = 2
  kAsti4,     // ASTI-4
  kAsti8,     // ASTI-8
  kAdaptIm,   // adaptive IM baseline
  kAteuc,     // non-adaptive baseline
  kDegree,    // residual-degree heuristic (extra)
  kOracle,    // Monte-Carlo oracle greedy (tiny graphs only)
  kBisection, // non-adaptive bisection-on-k transformation (extra)
};

/// Display name matching the paper's legends.
const char* AlgorithmName(AlgorithmId id);

/// One plot cell: fixed dataset/model/η/algorithm over R realizations.
struct CellConfig {
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  NodeId eta = 1;
  AlgorithmId algorithm = AlgorithmId::kAsti;
  size_t realizations = 5;
  double epsilon = 0.5;        // ε for sampling-based selectors
  uint64_t seed = 1;           // governs hidden realizations & selector RNG
  bool keep_traces = false;    // retain full per-round traces (Fig. 10)
  /// Sampling workers for RR/mRR-based selectors (TRIM, TRIM-B, AdaptIM,
  /// ATEUC): 1 = sequential, 0 = all hardware threads, k = k workers.
  size_t num_threads = 1;
};

/// Aggregated cell outcome.
struct CellResult {
  RunAggregate aggregate;
  std::vector<double> spreads;           // final spread per realization (Fig. 8/9)
  std::vector<size_t> seed_counts;       // per realization
  std::vector<AdaptiveRunTrace> traces;  // only if keep_traces
  /// True iff every realization reached η — Table 3 prints N/A otherwise.
  bool always_reached = false;
};

/// Runs one cell on `graph`.
CellResult RunCell(const DirectedGraph& graph, const CellConfig& config);

/// Improvement ratio of ATEUC over ASTI in seed count: extra seeds ATEUC
/// selects relative to ASTI (Table 3). Returns "N/A" when ATEUC misses the
/// threshold on any realization, matching the paper's table.
std::string ImprovementRatio(const CellResult& asti, const CellResult& ateuc);

}  // namespace asti
