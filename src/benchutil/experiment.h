// Shared experiment runner behind every figure/table harness.
//
// One "cell" of the paper's plots is (dataset, model, η, algorithm)
// averaged over R hidden realizations. RunCell executes exactly that by
// delegating to the SeedMinEngine façade (src/api/): the caller's graph
// is registered as a borrowed snapshot in a throwaway GraphCatalog (the
// engine serves catalog graphs only — the raw-graph engine binding is
// gone), adaptive algorithms re-run their select-observe loop per
// realization, and ATEUC selects once and is evaluated on the same
// realizations. The R hidden realizations are derived from the run seed
// only, so every algorithm faces identical worlds (the paper's §6
// protocol). AlgorithmId and the selector construction live in
// api/algorithm_registry.h; this header keeps the bench-facing CellConfig
// spelling.

#pragma once

#include <string>

#include "api/request.h"
#include "api/seedmin_engine.h"
#include "graph/graph.h"

namespace asti {

/// A cell's outcome is exactly the engine's answer.
using CellResult = SolveResult;

/// One plot cell: fixed dataset/model/η/algorithm over R realizations.
/// A SolveRequest plus the engine-level thread knob, for harnesses that
/// build a throwaway engine per cell.
struct CellConfig {
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  NodeId eta = 1;
  AlgorithmId algorithm = AlgorithmId::kAsti;
  size_t realizations = 5;
  double epsilon = 0.5;        // ε for sampling-based selectors
  uint64_t seed = 1;           // governs hidden realizations & selector RNG
  bool keep_traces = false;    // retain full per-round traces (Fig. 10)
  /// Sampling workers for RR/mRR-based selectors (TRIM, TRIM-B, AdaptIM,
  /// ATEUC): 1 = sequential, 0 = all hardware threads, k = k workers.
  size_t num_threads = 1;

  /// The engine query this cell describes.
  SolveRequest ToRequest() const;
};

/// The catalog name RunCell registers its borrowed snapshot under (the
/// per-call engine serves exactly this one graph).
inline constexpr const char* kRunCellGraphName = "cell";

/// Runs one cell on `graph` through a per-call engine over a throwaway
/// single-graph catalog. Crashes (legacy harness contract) on configs the
/// engine rejects; call SeedMinEngine::Solve directly for
/// Status-returning validation.
CellResult RunCell(const DirectedGraph& graph, const CellConfig& config);

/// Improvement ratio of ATEUC over ASTI in seed count: extra seeds ATEUC
/// selects relative to ASTI (Table 3). Returns "N/A" when ATEUC misses the
/// threshold on any realization, matching the paper's table.
std::string ImprovementRatio(const CellResult& asti, const CellResult& ateuc);

/// One-line phase breakdown of a cell's request profile, e.g.
/// "sampling 62% / coverage 31% / certify 5% of 1.84s (1.2e+05 RR sets)"
/// — percentages of the profiled execution time. "no phase profile" when
/// the engine ran with metrics disabled (all phase slots zero).
std::string SummarizePhases(const RequestProfile& profile);

}  // namespace asti
