// The paper's §6 evaluation sweep: datasets × thresholds × algorithms.
//
// Figures 4-7 and 9 and Table 3 all walk the same grid — four dataset
// surrogates, the large-η grid η/n ∈ {.01, .05, .1, .15, .2} (LiveJournal
// uses the small grid {.01...05}, §6.1), and the six algorithms of the
// paper — differing only in which metric they print. RunEvaluationSweep
// registers every dataset in one GraphCatalog, stands up ONE multi-tenant
// SeedMinEngine over it, and issues one SolveRequest per grid point:
// model/ε/realizations/seed flow through the `base` request (one struct,
// not per-algorithm plumbing), with graph name, algorithm and η
// overwritten per cell.

#pragma once

#include <functional>
#include <vector>

#include "benchutil/experiment.h"
#include "graph/datasets.h"

namespace asti {

/// Grid configuration shared by the figure benches.
struct SweepOptions {
  /// Per-cell request template: model, ε, realizations, seed, keep_traces.
  /// `graph`, `algorithm` and `eta` are overwritten at every grid point.
  SolveRequest base = [] {
    SolveRequest request;
    request.epsilon = 0.5;
    request.realizations = 2;
    request.seed = 7;
    return request;
  }();
  std::vector<AlgorithmId> algorithms = {
      AlgorithmId::kAsti,    AlgorithmId::kAsti2, AlgorithmId::kAsti4,
      AlgorithmId::kAsti8,   AlgorithmId::kAdaptIm, AlgorithmId::kAteuc};
  std::vector<DatasetId> datasets = {DatasetId::kNetHept, DatasetId::kEpinions,
                                     DatasetId::kYoutube, DatasetId::kLiveJournal};
  /// Surrogate scale (ASM_BENCH_SCALE / --scale overrides; see cli.h).
  double scale = 0.5;
  /// Engine pool size per dataset (ASM_BENCH_THREADS / --threads overrides;
  /// 1 = sequential, 0 = all hardware threads).
  size_t num_threads = 1;
};

/// One grid point's outcome.
struct SweepCell {
  DatasetId dataset;
  double eta_fraction = 0.0;
  NodeId eta = 0;
  AlgorithmId algorithm;
  CellResult result;
};

/// The paper's threshold grid for a dataset (LiveJournal gets the small-η
/// grid, everything else the large grid).
std::vector<double> EtaFractionsFor(DatasetId dataset);

/// Runs the full grid; emits one SweepCell per (dataset, η, algorithm).
/// `progress` (optional) is invoked after each cell for logging.
std::vector<SweepCell> RunEvaluationSweep(
    const SweepOptions& options,
    const std::function<void(const SweepCell&)>& progress = nullptr);

/// Applies the standard environment/CLI overrides (--scale, --realizations,
/// --epsilon, --seed; env ASM_BENCH_SCALE, ASM_BENCH_REALIZATIONS) to
/// `options` — the request-level ones land in options.base.
void ApplyStandardOverrides(int argc, const char* const* argv, SweepOptions& options);

}  // namespace asti
