#include "benchutil/experiment.h"

#include <numeric>

#include "baselines/adaptim.h"
#include "baselines/ateuc.h"
#include "baselines/bisection_seedmin.h"
#include "baselines/degree_adaptive.h"
#include "baselines/oracle_greedy.h"
#include "benchutil/table.h"
#include "benchutil/timer.h"
#include "core/asti.h"
#include "core/trim.h"
#include "core/trim_b.h"
#include "diffusion/world.h"
#include "util/check.h"

namespace asti {

const char* AlgorithmName(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kAsti:
      return "ASTI";
    case AlgorithmId::kAsti2:
      return "ASTI-2";
    case AlgorithmId::kAsti4:
      return "ASTI-4";
    case AlgorithmId::kAsti8:
      return "ASTI-8";
    case AlgorithmId::kAdaptIm:
      return "AdaptIM";
    case AlgorithmId::kAteuc:
      return "ATEUC";
    case AlgorithmId::kDegree:
      return "DegreeAdaptive";
    case AlgorithmId::kOracle:
      return "OracleGreedy";
    case AlgorithmId::kBisection:
      return "Bisection";
  }
  return "?";
}

namespace {

// Domain-separated stream derivation via Rng::Split(i): world streams are
// shared by every algorithm (same hidden realizations, the §6 protocol),
// selector streams are distinct per (algorithm, run).
enum StreamDomain : uint64_t {
  kWorldDomain = 0,
  kAteucDomain = 1,
  kBisectionDomain = 2,
  kSelectorDomainBase = 16,  // + AlgorithmId
};

Rng StreamFor(uint64_t seed, uint64_t domain, size_t run) {
  return Rng(seed).Split(domain).Split(run);
}

std::unique_ptr<RoundSelector> MakeSelector(const DirectedGraph& graph,
                                            const CellConfig& config) {
  const DiffusionModel model = config.model;
  TrimOptions trim_options;
  trim_options.epsilon = config.epsilon;
  trim_options.num_threads = config.num_threads;
  TrimBOptions trim_b_options;
  trim_b_options.epsilon = config.epsilon;
  trim_b_options.num_threads = config.num_threads;
  AdaptImOptions adaptim_options;
  adaptim_options.epsilon = config.epsilon;
  adaptim_options.num_threads = config.num_threads;
  switch (config.algorithm) {
    case AlgorithmId::kAsti:
      return std::make_unique<Trim>(graph, model, trim_options);
    case AlgorithmId::kAsti2:
      trim_b_options.batch_size = 2;
      return std::make_unique<TrimB>(graph, model, trim_b_options);
    case AlgorithmId::kAsti4:
      trim_b_options.batch_size = 4;
      return std::make_unique<TrimB>(graph, model, trim_b_options);
    case AlgorithmId::kAsti8:
      trim_b_options.batch_size = 8;
      return std::make_unique<TrimB>(graph, model, trim_b_options);
    case AlgorithmId::kAdaptIm:
      return std::make_unique<AdaptIm>(graph, model, adaptim_options);
    case AlgorithmId::kDegree:
      return std::make_unique<DegreeAdaptive>(graph);
    case AlgorithmId::kOracle:
      return std::make_unique<OracleGreedy>(graph, model);
    case AlgorithmId::kAteuc:
    case AlgorithmId::kBisection:
      break;  // non-adaptive; handled by RunCell directly
  }
  ASM_CHECK(false) << "no selector for algorithm";
  return nullptr;
}

// Hidden realization for run r — shared across algorithms by construction.
Realization HiddenRealization(const DirectedGraph& graph, const CellConfig& config,
                              size_t run) {
  Rng world_rng = StreamFor(config.seed, kWorldDomain, run);
  return config.model == DiffusionModel::kIndependentCascade
             ? Realization::SampleIc(graph, world_rng)
             : Realization::SampleLt(graph, world_rng);
}

CellResult RunAdaptiveCell(const DirectedGraph& graph, const CellConfig& config) {
  CellResult result;
  std::vector<AdaptiveRunTrace> traces;
  for (size_t run = 0; run < config.realizations; ++run) {
    AdaptiveWorld world(graph, config.eta, HiddenRealization(graph, config, run));
    // Selector RNG stream is independent of the hidden world.
    Rng selector_rng = StreamFor(
        config.seed, kSelectorDomainBase + static_cast<uint64_t>(config.algorithm), run);
    std::unique_ptr<RoundSelector> selector = MakeSelector(graph, config);
    AdaptiveRunTrace trace = RunAdaptivePolicy(world, *selector, selector_rng);
    result.spreads.push_back(static_cast<double>(trace.total_activated));
    result.seed_counts.push_back(trace.NumSeeds());
    traces.push_back(std::move(trace));
  }
  result.aggregate = Aggregate(traces);
  result.always_reached =
      result.aggregate.runs_reaching_target == result.aggregate.runs;
  if (config.keep_traces) result.traces = std::move(traces);
  return result;
}

// Evaluates a one-shot (non-adaptive) seed set on the shared hidden
// realizations; `select_seconds` / `num_samples` describe the selection.
CellResult EvaluateNonAdaptive(const DirectedGraph& graph, const CellConfig& config,
                               const std::vector<NodeId>& seeds, double select_seconds,
                               size_t num_samples) {
  CellResult result;
  std::vector<AdaptiveRunTrace> traces;
  ForwardSimulator simulator(graph);
  for (size_t run = 0; run < config.realizations; ++run) {
    const Realization hidden = HiddenRealization(graph, config, run);
    const size_t spread = simulator.Spread(hidden, seeds);
    AdaptiveRunTrace trace;
    trace.eta = config.eta;
    trace.seeds = seeds;
    trace.total_activated = static_cast<NodeId>(spread);
    trace.target_reached = spread >= config.eta;
    trace.seconds = select_seconds;  // selection cost is paid once
    trace.total_samples = num_samples;
    result.spreads.push_back(static_cast<double>(spread));
    result.seed_counts.push_back(seeds.size());
    traces.push_back(std::move(trace));
  }
  result.aggregate = Aggregate(traces);
  result.always_reached =
      result.aggregate.runs_reaching_target == result.aggregate.runs;
  if (config.keep_traces) result.traces = std::move(traces);
  return result;
}

CellResult RunAteucCell(const DirectedGraph& graph, const CellConfig& config) {
  Rng select_rng = StreamFor(config.seed, kAteucDomain, 0);
  AteucOptions options;
  options.num_threads = config.num_threads;
  WallTimer select_timer;
  const AteucResult selection =
      RunAteuc(graph, config.model, config.eta, options, select_rng);
  return EvaluateNonAdaptive(graph, config, selection.seeds, select_timer.Seconds(),
                             selection.num_samples);
}

CellResult RunBisectionCell(const DirectedGraph& graph, const CellConfig& config) {
  Rng select_rng = StreamFor(config.seed, kBisectionDomain, 0);
  BisectionOptions options;
  options.num_threads = config.num_threads;
  WallTimer select_timer;
  const BisectionResult selection =
      RunBisectionSeedMin(graph, config.model, config.eta, options, select_rng);
  return EvaluateNonAdaptive(graph, config, selection.seeds, select_timer.Seconds(),
                             selection.num_samples);
}

}  // namespace

CellResult RunCell(const DirectedGraph& graph, const CellConfig& config) {
  ASM_CHECK(config.realizations >= 1);
  ASM_CHECK(config.eta >= 1 && config.eta <= graph.NumNodes());
  if (config.algorithm == AlgorithmId::kAteuc) return RunAteucCell(graph, config);
  if (config.algorithm == AlgorithmId::kBisection) {
    return RunBisectionCell(graph, config);
  }
  return RunAdaptiveCell(graph, config);
}

std::string ImprovementRatio(const CellResult& asti, const CellResult& ateuc) {
  if (!ateuc.always_reached) return "N/A";
  if (asti.aggregate.mean_seeds <= 0.0) return "N/A";
  const double ratio =
      (ateuc.aggregate.mean_seeds - asti.aggregate.mean_seeds) /
      asti.aggregate.mean_seeds;
  return FormatDouble(100.0 * ratio, 1) + "%";
}

}  // namespace asti
