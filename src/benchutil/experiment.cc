#include "benchutil/experiment.h"

#include "benchutil/table.h"
#include "util/check.h"

namespace asti {

SolveRequest CellConfig::ToRequest() const {
  SolveRequest request;
  request.algorithm = algorithm;
  request.model = model;
  request.eta = eta;
  request.epsilon = epsilon;
  request.realizations = realizations;
  request.seed = seed;
  request.keep_traces = keep_traces;
  return request;
}

CellResult RunCell(const DirectedGraph& graph, const CellConfig& config) {
  // A scoped single-graph catalog: the synchronous call guarantees the
  // caller's graph outlives the borrowed snapshot.
  GraphCatalog catalog;
  ASM_CHECK(catalog.Register(kRunCellGraphName, BorrowSnapshot(graph)).ok());
  SeedMinEngine engine(catalog, {config.num_threads});
  SolveRequest request = config.ToRequest();
  request.graph = kRunCellGraphName;
  StatusOr<SolveResult> result = engine.Solve(request);
  ASM_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

std::string SummarizePhases(const RequestProfile& profile) {
  const double phased = profile.sampling_seconds + profile.coverage_seconds +
                        profile.certify_seconds;
  if (phased <= 0.0) return "no phase profile";
  auto percent = [phased](double seconds) {
    return FormatDouble(100.0 * seconds / phased, 0) + "%";
  };
  return "sampling " + percent(profile.sampling_seconds) + " / coverage " +
         percent(profile.coverage_seconds) + " / certify " +
         percent(profile.certify_seconds) + " of " +
         FormatDouble(profile.total_seconds) + "s (" +
         FormatDouble(static_cast<double>(profile.sets_generated), 0) +
         " RR sets)";
}

std::string ImprovementRatio(const CellResult& asti, const CellResult& ateuc) {
  if (!ateuc.always_reached) return "N/A";
  if (asti.aggregate.mean_seeds <= 0.0) return "N/A";
  const double ratio =
      (ateuc.aggregate.mean_seeds - asti.aggregate.mean_seeds) /
      asti.aggregate.mean_seeds;
  return FormatDouble(100.0 * ratio, 1) + "%";
}

}  // namespace asti
