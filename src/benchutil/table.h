// Plain-text aligned tables for benchmark output. Every figure/table
// harness prints through this so EXPERIMENTS.md rows can be diffed
// directly against bench output.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace asti {

/// Column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must match the header width.
  void AddRow(std::vector<std::string> row);

  size_t NumRows() const { return rows_.size(); }

  /// Renders with single-space-padded columns and a dashed separator.
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("12.34").
std::string FormatDouble(double value, int precision = 2);

/// Scientific-ish compact count formatting ("1.13M", "31.4K", "950").
std::string FormatCount(double value);

}  // namespace asti
