#include "benchutil/sweep.h"

#include "api/graph_catalog.h"
#include "benchutil/cli.h"
#include "util/check.h"
#include "util/logging.h"

namespace asti {

std::vector<double> EtaFractionsFor(DatasetId dataset) {
  if (dataset == DatasetId::kLiveJournal) {
    return {0.01, 0.02, 0.03, 0.04, 0.05};  // the paper's tailored small-η grid
  }
  return {0.01, 0.05, 0.1, 0.15, 0.2};
}

std::vector<SweepCell> RunEvaluationSweep(
    const SweepOptions& options,
    const std::function<void(const SweepCell&)>& progress) {
  // One catalog holding every dataset surrogate, one resident multi-tenant
  // engine (and pool) serving the whole grid: requests are routed per
  // cell by graph name, exactly the serving posture the catalog exists for.
  GraphCatalog catalog;
  for (DatasetId dataset : options.datasets) {
    auto registered =
        RegisterSurrogate(catalog, dataset, options.scale, options.base.seed);
    ASM_CHECK(registered.ok()) << registered.status().ToString();
  }
  SeedMinEngine engine(catalog, {options.num_threads});

  std::vector<SweepCell> cells;
  for (DatasetId dataset : options.datasets) {
    const auto ref = catalog.Get(CanonicalDatasetName(dataset));
    ASM_CHECK(ref.ok()) << ref.status().ToString();
    for (double eta_fraction : EtaFractionsFor(dataset)) {
      const NodeId eta = std::max<NodeId>(
          1, static_cast<NodeId>(eta_fraction * ref->num_nodes()));
      for (AlgorithmId algorithm : options.algorithms) {
        SolveRequest request = options.base;
        request.graph = ref->name();
        request.algorithm = algorithm;
        request.eta = eta;
        StatusOr<SolveResult> result = engine.Solve(request);
        ASM_CHECK(result.ok()) << result.status().ToString();
        SweepCell cell{dataset, eta_fraction, eta, algorithm,
                       std::move(result).value()};
        if (progress) progress(cell);
        cells.push_back(std::move(cell));
      }
    }
  }
  return cells;
}

void ApplyStandardOverrides(int argc, const char* const* argv, SweepOptions& options) {
  const CommandLine cli(argc, argv);
  options.scale = EnvDouble("ASM_BENCH_SCALE", cli.GetDouble("scale", options.scale));
  ApplyRequestOverrides(cli, options.base);
  options.num_threads = NumThreadsOverride(cli, options.num_threads);
}

}  // namespace asti
