#include "benchutil/sweep.h"

#include "benchutil/cli.h"
#include "util/check.h"
#include "util/logging.h"

namespace asti {

std::vector<double> EtaFractionsFor(DatasetId dataset) {
  if (dataset == DatasetId::kLiveJournal) {
    return {0.01, 0.02, 0.03, 0.04, 0.05};  // the paper's tailored small-η grid
  }
  return {0.01, 0.05, 0.1, 0.15, 0.2};
}

std::vector<SweepCell> RunEvaluationSweep(
    const SweepOptions& options,
    const std::function<void(const SweepCell&)>& progress) {
  std::vector<SweepCell> cells;
  for (DatasetId dataset : options.datasets) {
    auto graph = MakeSurrogateDataset(dataset, options.scale, options.seed);
    ASM_CHECK(graph.ok()) << graph.status().ToString();
    for (double eta_fraction : EtaFractionsFor(dataset)) {
      const NodeId eta = std::max<NodeId>(
          1, static_cast<NodeId>(eta_fraction * graph->NumNodes()));
      for (AlgorithmId algorithm : options.algorithms) {
        CellConfig config;
        config.model = options.model;
        config.eta = eta;
        config.algorithm = algorithm;
        config.realizations = options.realizations;
        config.epsilon = options.epsilon;
        config.seed = options.seed;
        config.keep_traces = options.keep_traces;
        config.num_threads = options.num_threads;
        SweepCell cell{dataset, eta_fraction, eta, algorithm, RunCell(*graph, config)};
        if (progress) progress(cell);
        cells.push_back(std::move(cell));
      }
    }
  }
  return cells;
}

void ApplyStandardOverrides(int argc, const char* const* argv, SweepOptions& options) {
  const CommandLine cli(argc, argv);
  options.scale = EnvDouble("ASM_BENCH_SCALE", cli.GetDouble("scale", options.scale));
  options.realizations = EnvSize(
      "ASM_BENCH_REALIZATIONS",
      static_cast<size_t>(cli.GetInt("realizations",
                                     static_cast<int64_t>(options.realizations))));
  options.epsilon = cli.GetDouble("epsilon", options.epsilon);
  options.seed = static_cast<uint64_t>(
      cli.GetInt("seed", static_cast<int64_t>(options.seed)));
  options.num_threads = NumThreadsOverride(cli, options.num_threads);
}

}  // namespace asti
