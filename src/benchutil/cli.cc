#include "benchutil/cli.h"

#include <cstdlib>
#include <sstream>
#include <string>

#include "api/request.h"
#include "util/check.h"

namespace asti {

CommandLine::CommandLine(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) continue;
    const std::string body = token.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_.insert_or_assign(body.substr(0, eq), body.substr(eq + 1));
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_.insert_or_assign(body, std::string(argv[++i]));
    } else {
      values_.insert_or_assign(body, std::string("1"));
    }
  }
}

bool CommandLine::Has(const std::string& key) const { return values_.count(key) > 0; }

std::string CommandLine::GetString(const std::string& key,
                                   const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double CommandLine::GetDouble(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (...) {
    return fallback;
  }
}

int64_t CommandLine::GetInt(const std::string& key, int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (...) {
    return fallback;
  }
}

double EnvDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  try {
    return std::stod(raw);
  } catch (...) {
    return fallback;
  }
}

size_t NumThreadsOverride(const CommandLine& cli, size_t fallback) {
  return EnvSize("ASM_BENCH_THREADS",
                 static_cast<size_t>(cli.GetInt("threads",
                                                static_cast<int64_t>(fallback))));
}

std::vector<size_t> ParseSizeList(const std::string& spec, const char* flag,
                                  size_t min_value) {
  std::vector<size_t> counts;
  std::stringstream stream(spec);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (token.empty()) continue;
    ASM_CHECK(token.find_first_not_of("0123456789") == std::string::npos)
        << flag << " expects a comma-separated list of counts, got '" << token << "'";
    size_t count = 0;
    try {
      count = static_cast<size_t>(std::stoull(token));
    } catch (...) {
      ASM_CHECK(false) << flag << " count '" << token << "' out of range";
    }
    ASM_CHECK(count >= min_value)
        << flag << " counts must be >= " << min_value << ", got " << count;
    counts.push_back(count);
  }
  ASM_CHECK(!counts.empty()) << "empty " << flag << " list";
  return counts;
}

std::vector<std::string> ParseNameList(const std::string& spec, const char* flag) {
  std::vector<std::string> names;
  std::stringstream stream(spec);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) names.push_back(token);
  }
  ASM_CHECK(!names.empty()) << "empty " << flag << " list";
  return names;
}

GraphFlagSelection ParseGraphFlags(const CommandLine& cli,
                                   const std::string& default_graph,
                                   const std::string& default_graphs) {
  GraphFlagSelection selection;
  const std::string graphs_spec =
      cli.GetString("graphs", default_graphs.empty() ? default_graph : default_graphs);
  // An empty spec (asm_tool with the target still to be derived from a
  // snapshot) parses as an empty set; an explicit --graphs list must be
  // non-empty.
  if (!graphs_spec.empty() || cli.Has("graphs")) {
    selection.graphs = ParseNameList(graphs_spec, "--graphs");
  }
  selection.graph = cli.GetString(
      "graph", selection.graphs.empty() ? std::string() : selection.graphs.front());
  // The primary graph is always part of the routing set.
  if (!selection.graph.empty()) {
    bool found = false;
    for (const std::string& name : selection.graphs) found |= name == selection.graph;
    if (!found) selection.graphs.insert(selection.graphs.begin(), selection.graph);
  }
  const int64_t shards = cli.GetInt("shards", 1);
  ASM_CHECK(shards >= 1) << "--shards must be >= 1, got " << shards;
  selection.shards = static_cast<uint32_t>(shards);
  return selection;
}

void ApplyRequestOverrides(const CommandLine& cli, SolveRequest& request) {
  request.epsilon = cli.GetDouble("epsilon", request.epsilon);
  request.seed = static_cast<uint64_t>(
      cli.GetInt("seed", static_cast<int64_t>(request.seed)));
  request.realizations = EnvSize(
      "ASM_BENCH_REALIZATIONS",
      static_cast<size_t>(cli.GetInt(
          "realizations", static_cast<int64_t>(request.realizations))));
}

size_t EnvSize(const char* name, size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  try {
    const long long value = std::stoll(raw);
    return value < 0 ? fallback : static_cast<size_t>(value);
  } catch (...) {
    return fallback;
  }
}

}  // namespace asti
