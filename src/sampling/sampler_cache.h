// Cross-request sampler cache: certified reuse of full-residual RR/mRR
// collections, keyed by what the sampling distribution actually depends on.
//
// A collection is cacheable exactly when its distribution is a pure
// function of the graph snapshot — i.e. when sampling sees the FULL
// residual (every node inactive). That covers the whole of ATEUC and
// Bisection, and round 1 of every adaptive policy (TRIM, TRIM-B, AdaptIM);
// later adaptive rounds condition on observed activations and stay on
// request-owned collections. Within one cache entry, requests needing θ
// sets take the sealed prefix of length exactly θ — the OPIM-C grow-only
// reuse argument — and extend only the shortfall.
//
// Key: (kind rr/mrr, diffusion model); mRR entries additionally carry
// (η, rounding) because the randomized root-count distribution depends on
// them. The graph snapshot itself is NOT in the key: one SamplerCache hangs
// off one engine GraphState, which is already keyed by (name, epoch), so
// GraphCatalog::Swap/Retire invalidate by construction — a hot-swap makes
// requests resolve a fresh GraphState with an empty cache, and live views
// on the old cache stay valid through their chunk pins.
//
// Determinism contract (the load-bearing part): per-set streams are
// base.Split(global_index), where `base` is a pure function of the CACHE
// KEY — never of a request seed. Set i's content is therefore identical no
// matter which request generated it, at what batch size, on how many
// threads, or whether it came from the shared cache or a request-private
// one (`--no-cache`). Cached paths consume ZERO draws from the request RNG,
// so everything downstream of them is also stream-identical cached vs not.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "diffusion/model.h"
#include "graph/graph.h"
#include "obs/span.h"
#include "parallel/thread_pool.h"
#include "sampling/root_size.h"
#include "sampling/shared_collection.h"
#include "stats/truncation.h"
#include "util/cancellation.h"
#include "util/rng.h"

namespace asti {

/// Root of every cache stream family. A fixed constant — NOT a request
/// seed — so cached collections are a pure function of (graph snapshot,
/// cache key), which is what makes any request history produce the same
/// sets. It is also stamped into persisted collection sections (ASMS
/// snapshots) and checked on load, so a snapshot written under a different
/// stream family is refused rather than silently adopted. Changing it is a
/// determinism-breaking change (documented in src/api/README.md).
inline constexpr uint64_t kCacheStreamSeed = 0xa57150cc5eed0007ULL;

/// Version of the sampler determinism contract: the per-set stream
/// derivation (base.Split(global_index) rooted at kCacheStreamSeed) AND
/// the traversal algorithms consuming those streams. Bump on any change
/// that alters what set i contains for a given (graph, key, i) — persisted
/// collections carry it and the snapshot loader refuses a mismatch, which
/// is what keeps "adopted from disk" bit-identical to "generated cold".
inline constexpr uint32_t kSamplerContractVersion = 1;

/// What a full-residual collection's distribution depends on.
struct SamplerCacheKey {
  enum class Kind : uint8_t { kRr, kMrr };

  Kind kind = Kind::kRr;
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  /// mRR only (root-count distribution); 0 for single-root RR.
  NodeId eta = 0;
  /// mRR only; kRandomized for single-root RR.
  RootRounding rounding = RootRounding::kRandomized;

  /// Single-root RR over the full graph (ATEUC / Bisection / AdaptIM
  /// round 1 all share this entry).
  static SamplerCacheKey Rr(DiffusionModel model) {
    return SamplerCacheKey{Kind::kRr, model, 0, RootRounding::kRandomized};
  }

  /// Full-residual mRR with the round-1 root-count law (n_i = n, η_i = η).
  static SamplerCacheKey Mrr(DiffusionModel model, NodeId eta, RootRounding rounding) {
    return SamplerCacheKey{Kind::kMrr, model, eta, rounding};
  }

  friend auto operator<=>(const SamplerCacheKey&, const SamplerCacheKey&) = default;
};

/// Monotone counters, readable while requests run (metrics snapshots).
struct SamplerCacheStats {
  uint64_t hits = 0;        // Acquire served entirely from the sealed prefix
  uint64_t misses = 0;      // Acquire on an empty entry
  uint64_t extensions = 0;  // Acquire had to grow a non-empty entry
  uint64_t sets_reused = 0;
  uint64_t sets_extended = 0;
  uint64_t warm_starts = 0;   // entries created with an adopted disk prefix
  uint64_t sets_adopted = 0;  // sets those prefixes contributed
  uint64_t evictions = 0;     // entries dropped by the byte-budget LRU
};

/// A persisted sealed prefix a cache entry can adopt as its initial
/// extent: flat set storage (same layout as RrCollection — offsets has
/// num_sets+1 entries with offsets[0] == 0) plus the coverage checkpoint
/// after all num_sets sets, all typically spanning an mmap'd snapshot
/// section. `owner` keeps the spanned bytes alive.
struct PersistedSealedPrefix {
  std::span<const uint64_t> offsets;
  std::span<const NodeId> pool;
  std::span<const uint32_t> coverage;  // num_nodes entries
  std::shared_ptr<const void> owner;
};

/// Source of persisted sealed prefixes, implemented by the snapshot store
/// over a mapped file's collection sections. The implementation vouches
/// that an offered prefix was generated under THIS graph snapshot, the
/// current kCacheStreamSeed, and the current kSamplerContractVersion —
/// i.e. that its sets are bit-identical to what cold generation for `key`
/// would produce (the loader checks all three before offering anything).
class CollectionWarmSource {
 public:
  virtual ~CollectionWarmSource() = default;

  /// The persisted prefix for `key`, or nullopt when the snapshot carries
  /// none. Called at most once per cache entry (on creation); must be
  /// thread-safe and must not block on I/O beyond page faults.
  virtual std::optional<PersistedSealedPrefix> Find(const SamplerCacheKey& key) const = 0;
};

/// Pluggable indexed-set generation strategy for cache extensions.
/// Implemented by ShardRuntime (src/shard/runtime.h) to fan an extension
/// across per-shard thread pools; the cache itself stays ignorant of
/// sharding. The contract is exactly the cache's own: set i's content is
/// a pure function of (base, first + i) via base.Split(first + i), sets
/// are appended to `staging` in global index order, and an under-delivery
/// (staging.NumSets() < count, e.g. on cancellation) makes the caller
/// discard the whole extension — partial results must never be
/// index-misaligned, only short.
class IndexedSetGenerator {
 public:
  virtual ~IndexedSetGenerator() = default;

  /// Appends sets [first, first + count) for `key` to `staging`.
  /// `root_size` is non-null exactly for mRR keys. Thread-safe.
  virtual void Generate(const SamplerCacheKey& key, const Rng& base,
                        const RootSizeSampler* root_size,
                        const std::vector<NodeId>& candidates, size_t first,
                        size_t count, RrCollection& staging,
                        const CancelScope* cancel) const = 0;
};

/// One entry's sealed prefix at export time, for the snapshot writer.
struct SealedCollectionExport {
  SamplerCacheKey key;
  /// Pinned view of EXACTLY the sealed sets; valid independent of further
  /// cache growth or the cache's lifetime.
  CollectionView view;
};

/// Per-GraphState cache of SharedRrCollections. Thread-safe: any number of
/// concurrent Acquire calls (readers and extenders mix freely).
class SamplerCache {
 public:
  /// The graph must outlive the cache (the engine's GraphState holds the
  /// snapshot shared_ptr that guarantees this). `warm` (nullable) offers
  /// persisted sealed prefixes: an entry whose key the source recognizes
  /// starts with the adopted prefix already sealed instead of empty —
  /// bit-identical to a cold entry extended to the same length, so the
  /// cached-vs-fresh determinism contract is unchanged. `generator`
  /// (nullable, must outlive the cache) overrides how extensions produce
  /// their sets — the shard-routing hook; null keeps the built-in
  /// pooled/sequential samplers. `byte_budget` (0 = unlimited) bounds
  /// TotalBytes with LRU eviction over whole (kind, model, η, rounding)
  /// entries: after an Acquire pushes the cache past the budget, the
  /// least-recently-acquired OTHER entries are dropped until it fits (the
  /// entry just served is never evicted — one working set always fits).
  /// Eviction is invisible to correctness: live CollectionViews pin their
  /// chunks independently, in-flight extenders hold the entry itself, and
  /// a re-created entry regenerates the identical sets (streams derive
  /// from the key, never from history). Only timing and the eviction
  /// counter observe it.
  explicit SamplerCache(const DirectedGraph& graph,
                        std::shared_ptr<const CollectionWarmSource> warm = nullptr,
                        const IndexedSetGenerator* generator = nullptr,
                        size_t byte_budget = 0);

  /// Returns a view of EXACTLY the first `target` sets of the entry for
  /// `key`, extending the shared collection first if it is short. The view
  /// is only shorter than `target` when `cancel` fired mid-extension; the
  /// caller must treat that as cancellation and unwind.
  ///
  /// `pool` (nullable) runs the extension's traversals in parallel —
  /// results are bit-identical with any pool size including none.
  /// `profile` (nullable) accrues sampling wall time for extensions plus
  /// the reused/extended set counts and the shared-bytes gauge; it never
  /// influences generation.
  CollectionView Acquire(const SamplerCacheKey& key, size_t target, ThreadPool* pool,
                         const CancelScope* cancel, RequestProfile* profile);

  /// Resident bytes across every entry's chunks and checkpoints.
  size_t TotalBytes() const;

  SamplerCacheStats Stats() const;

  /// Pinned views of every entry's current sealed prefix (empty entries
  /// omitted), for the snapshot writer. Each view stays valid however the
  /// cache grows afterwards; the snapshot then freezes exactly the sets
  /// that were sealed at this call.
  std::vector<SealedCollectionExport> ExportSealed() const;

 private:
  struct Entry {
    Entry(const DirectedGraph& graph, const SamplerCacheKey& key);

    SharedRrCollection collection;
    /// Root of every per-set stream: pure function of the key (below).
    Rng base;
    /// mRR entries only.
    std::optional<RootSizeSampler> root_size;
    /// LRU recency: the use_tick_ value of this entry's latest Acquire.
    /// Guarded by the cache mutex_.
    uint64_t last_used = 0;
  };

  /// Creates/touches the entry and returns a pin: eviction may drop the
  /// map slot at any time, so callers work through their own shared_ptr.
  std::shared_ptr<Entry> EntryFor(const SamplerCacheKey& key);

  /// Drops least-recently-used entries (never `just_used`) until
  /// TotalBytes fits the budget or only the just-used entry remains.
  void EnforceBudget(const SamplerCacheKey& just_used);

  const DirectedGraph* graph_;
  /// Persisted-prefix source (nullable); consulted once per entry creation.
  std::shared_ptr<const CollectionWarmSource> warm_;
  /// Extension strategy override (nullable, non-owning).
  const IndexedSetGenerator* generator_;
  /// LRU byte budget; 0 = unlimited (entries live for the epoch).
  const size_t byte_budget_;
  /// Canonical full-residual candidate list (0..n-1); what round 1 of every
  /// policy passes today, and what ATEUC/Bisection call `all_nodes`.
  std::vector<NodeId> all_nodes_;

  mutable std::mutex mutex_;  // guards entries_ map shape + LRU bookkeeping
  std::map<SamplerCacheKey, std::shared_ptr<Entry>> entries_;
  /// Monotone Acquire clock feeding Entry::last_used (guarded by mutex_).
  uint64_t use_tick_ = 0;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> extensions_{0};
  std::atomic<uint64_t> sets_reused_{0};
  std::atomic<uint64_t> sets_extended_{0};
  std::atomic<uint64_t> warm_starts_{0};
  std::atomic<uint64_t> sets_adopted_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace asti
