// Multi-root reverse-reachable (mRR) set sampling — the paper's §3.3.
//
// A random mRR-set starts from a size-k node set K drawn uniformly
// *without replacement* from the residual nodes, where k follows the
// randomized rounding of n_i/η_i (RootSizeSampler), and contains every
// residual node that reaches K in a random realization. The binary
// estimator Γ̃(S) = η_i · 1[S ∩ R ≠ ∅] then satisfies Theorem 3.3:
// (1 − 1/e) E[Γ(S | S_{i-1})] ≤ E[Γ̃(S | S_{i-1})] ≤ E[Γ(S | S_{i-1})].

#pragma once

#include <vector>

#include "diffusion/model.h"
#include "graph/graph.h"
#include "sampling/root_size.h"
#include "sampling/rr_collection.h"
#include "sampling/rr_set.h"
#include "util/bit_vector.h"
#include "util/rng.h"

namespace asti {

/// Sampler of multi-root RR-sets; reusable scratch per graph.
class MrrSampler {
 public:
  MrrSampler(const DirectedGraph& graph, DiffusionModel model)
      : inner_(graph, model) {}

  /// Cumulative traversal cost (shared with the inner traversal engine).
  const SamplerCost& cost() const { return inner_.cost(); }
  void ResetCost() { inner_.ResetCost(); }

  /// Appends one mRR-set to `out`. Roots: `num_roots` distinct nodes drawn
  /// uniformly without replacement from `candidates` (the residual node
  /// list; every entry must be inactive). active == nullptr means the full
  /// graph. num_roots must be in [1, |candidates|]. Sink is any type with
  /// the RrCollection building protocol; instantiated for RrCollection and
  /// RrSetBuffer.
  template <class Sink>
  void Generate(const std::vector<NodeId>& candidates, const BitVector* active,
                NodeId num_roots, Sink& out, Rng& rng);

 private:
  RrSampler inner_;
  std::vector<NodeId> scratch_;  // Fisher-Yates buffer for large num_roots
};

}  // namespace asti
