#include "sampling/root_size.h"

#include <algorithm>

#include "util/check.h"

namespace asti {

RootSizeSampler::RootSizeSampler(NodeId num_inactive, NodeId shortfall,
                                 RootRounding rounding)
    : num_inactive_(num_inactive), rounding_(rounding) {
  ASM_CHECK(shortfall >= 1) << "shortfall must be positive";
  ASM_CHECK(shortfall <= num_inactive)
      << "shortfall " << shortfall << " exceeds inactive nodes " << num_inactive;
  floor_k_ = num_inactive / shortfall;
  fraction_ = static_cast<double>(num_inactive) / static_cast<double>(shortfall) -
              static_cast<double>(floor_k_);
}

NodeId RootSizeSampler::Sample(Rng& rng) const {
  NodeId k = floor_k_;
  switch (rounding_) {
    case RootRounding::kRandomized:
      if (rng.NextBernoulli(fraction_)) ++k;
      break;
    case RootRounding::kFloor:
      break;
    case RootRounding::kCeil:
      if (fraction_ > 0.0) ++k;
      break;
  }
  return std::min<NodeId>(std::max<NodeId>(k, 1), num_inactive_);
}

double RootSizeSampler::ExpectedK() const {
  return static_cast<double>(floor_k_) + fraction_;
}

}  // namespace asti
