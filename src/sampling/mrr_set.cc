#include "sampling/mrr_set.h"

#include "sampling/rr_buffer.h"

namespace asti {

template <class Sink>
void MrrSampler::Generate(const std::vector<NodeId>& candidates, const BitVector* active,
                          NodeId num_roots, Sink& out, Rng& rng) {
  const size_t population = candidates.size();
  ASM_CHECK(num_roots >= 1 && num_roots <= population)
      << "num_roots " << num_roots << " outside [1, " << population << "]";
  inner_.visited_.Reset();

  // Draw the root set K without replacement. Rejection sampling is O(k)
  // while k is a minority of the population; beyond that, a partial
  // Fisher-Yates over a scratch copy is cheaper.
  if (num_roots <= population / 2) {
    NodeId accepted = 0;
    while (accepted < num_roots) {
      const NodeId root = candidates[rng.NextBounded(population)];
      if (!inner_.visited_.MarkVisited(root)) continue;
      out.PushNode(root);
      ++accepted;
    }
  } else {
    scratch_.assign(candidates.begin(), candidates.end());
    for (NodeId i = 0; i < num_roots; ++i) {
      const size_t j = i + rng.NextBounded(population - i);
      std::swap(scratch_[i], scratch_[j]);
      const NodeId root = scratch_[i];
      inner_.visited_.MarkVisited(root);
      out.PushNode(root);
    }
  }

  inner_.TraverseFrom(active, out, rng);
  out.SealSet();
}

template void MrrSampler::Generate<RrCollection>(const std::vector<NodeId>&,
                                                 const BitVector*, NodeId, RrCollection&,
                                                 Rng&);
template void MrrSampler::Generate<RrSetBuffer>(const std::vector<NodeId>&,
                                                const BitVector*, NodeId, RrSetBuffer&,
                                                Rng&);

}  // namespace asti
