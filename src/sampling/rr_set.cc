#include "sampling/rr_set.h"

#include "sampling/rr_buffer.h"

namespace asti {

template <class Sink>
void RrSampler::TraverseFrom(const BitVector* active, Sink& out, Rng& rng) {
  const DirectedGraph& graph = *graph_;
  size_t head = out.InProgressBegin();
  if (model_ == DiffusionModel::kIndependentCascade) {
    // Reverse BFS; each in-edge of a popped node flips an independent coin.
    while (head < out.PoolSize()) {
      const NodeId v = out.PoolNode(head++);
      auto sources = graph.InNeighbors(v);
      auto probs = graph.InProbabilities(v);
      ++cost_.nodes_visited;
      cost_.edges_examined += sources.size();
      for (size_t i = 0; i < sources.size(); ++i) {
        const NodeId u = sources[i];
        if (visited_.Visited(u)) continue;
        if (active != nullptr && active->Get(u)) continue;
        if (!rng.NextBernoulli(probs[i])) continue;
        visited_.MarkVisited(u);
        out.PushNode(u);
      }
    }
  } else {
    // LT live-edge: each popped node keeps at most one in-edge. In-edges
    // from active sources are absent from the residual graph; their mass
    // folds into the "no live in-edge" outcome (DESIGN.md §4).
    while (head < out.PoolSize()) {
      const NodeId v = out.PoolNode(head++);
      auto sources = graph.InNeighbors(v);
      auto probs = graph.InProbabilities(v);
      ++cost_.nodes_visited;
      cost_.edges_examined += sources.size();
      double x = rng.NextDouble();
      for (size_t i = 0; i < sources.size(); ++i) {
        if (x >= probs[i]) {
          x -= probs[i];
          continue;
        }
        const NodeId u = sources[i];
        const bool excluded =
            (active != nullptr && active->Get(u)) || visited_.Visited(u);
        if (!excluded) {
          visited_.MarkVisited(u);
          out.PushNode(u);
        }
        break;  // at most one live in-edge per node
      }
    }
  }
}

template <class Sink>
void RrSampler::Generate(const std::vector<NodeId>& candidates, const BitVector* active,
                         Sink& out, Rng& rng) {
  ASM_CHECK(!candidates.empty());
  visited_.Reset();
  const NodeId root = candidates[rng.NextBounded(candidates.size())];
  ASM_DCHECK(active == nullptr || !active->Get(root));
  visited_.MarkVisited(root);
  out.PushNode(root);
  TraverseFrom(active, out, rng);
  out.SealSet();
}

// The two sinks of the library: the shared collection (sequential path)
// and the worker-local staging buffer (parallel path).
template void RrSampler::TraverseFrom<RrCollection>(const BitVector*, RrCollection&, Rng&);
template void RrSampler::TraverseFrom<RrSetBuffer>(const BitVector*, RrSetBuffer&, Rng&);
template void RrSampler::Generate<RrCollection>(const std::vector<NodeId>&,
                                                const BitVector*, RrCollection&, Rng&);
template void RrSampler::Generate<RrSetBuffer>(const std::vector<NodeId>&,
                                               const BitVector*, RrSetBuffer&, Rng&);

}  // namespace asti
